package lifting_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// runs a (scaled) instance of the corresponding experiment and reports the
// paper's headline quantity via b.ReportMetric, so `go test -bench=. ./...`
// regenerates the whole evaluation in miniature. EXPERIMENTS.md records the
// full-scale numbers produced by cmd/lifting-sim.

import (
	"context"
	gort "runtime"
	"strconv"
	"testing"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/experiment"
	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stats"
	"lifting/internal/swarm"
)

// BenchmarkFig1Health regenerates Figure 1: stream health with and without
// LiFTinG under 25% freeriding. Metrics: health at the largest lag for each
// scenario.
func BenchmarkFig1Health(b *testing.B) {
	p := experiment.DefaultPlanetLabConfig()
	p.N = 100
	p.Duration = 15 * time.Second
	lags := []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second}
	for i := 0; i < b.N; i++ {
		_, base, _ := experiment.Fig1(context.Background(), p, experiment.Fig1NoFreeriders, lags)
		_, collapsed, _ := experiment.Fig1(context.Background(), p, experiment.Fig1Freeriders, lags)
		_, protected, _ := experiment.Fig1(context.Background(), p, experiment.Fig1FreeridersLiFTinG, lags)
		last := len(lags) - 1
		b.ReportMetric(base.Health[last], "health-baseline")
		b.ReportMetric(collapsed.Health[last], "health-freeriders")
		b.ReportMetric(protected.Health[last], "health-lifting")
	}
}

// BenchmarkFig10WrongfulBlames regenerates Figure 10: compensated honest
// scores after one period. Metrics: mean (paper ≈0) and σ (paper 25.6).
// The Serial variant pins Workers=1; the parallel one fans the independent
// per-node trials across GOMAXPROCS workers with bit-identical results —
// compare ns/op between the two on a multi-core machine.
func BenchmarkFig10WrongfulBlamesSerial(b *testing.B) {
	benchFig10(b, 1)
}

func BenchmarkFig10WrongfulBlames(b *testing.B) {
	benchFig10(b, 0) // 0 = GOMAXPROCS
}

func benchFig10(b *testing.B, workers int) {
	cfg := experiment.DefaultScoreConfig()
	cfg.N = 5000
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		_, res, _ := experiment.Fig10(context.Background(), cfg)
		b.ReportMetric(res.HonestM.Mean(), "mean-score")
		b.ReportMetric(res.HonestM.Std(), "sigma-b")
	}
}

// BenchmarkFig11ScoreSeparation regenerates Figure 11: honest vs freerider
// normalized scores after r = 50. Metrics: detection α (paper > 0.99) and
// false positives β (paper < 0.01) at η = −9.75. Serial vs parallel as for
// Figure 10; r = 50 periods per node makes this the heavier sweep, so the
// parallel speedup is closer to linear here.
func BenchmarkFig11ScoreSeparationSerial(b *testing.B) {
	benchFig11(b, 1)
}

func BenchmarkFig11ScoreSeparation(b *testing.B) {
	benchFig11(b, 0)
}

func benchFig11(b *testing.B, workers int) {
	cfg := experiment.DefaultScoreConfig()
	cfg.N = 4000
	cfg.Freeriders = 400
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		_, res, _ := experiment.Fig11(context.Background(), cfg)
		b.ReportMetric(res.Detection, "alpha")
		b.ReportMetric(res.FalsePositives, "beta")
		b.ReportMetric(res.HonestM.Mean()-res.FreeriderM.Mean(), "mode-gap")
	}
}

// BenchmarkChurn measures the churn workload end-to-end on the
// discrete-event backend: joins/leaves mid-stream with manager handoff.
// Metrics: arrival catch-up and the surviving score separation.
func BenchmarkChurn(b *testing.B) {
	cfg := experiment.DefaultChurnConfig()
	cfg.N = 60
	cfg.Joins = 8
	cfg.Leaves = 8
	cfg.Duration = 10 * time.Second
	for i := 0; i < b.N; i++ {
		_, res, _ := experiment.Churn(context.Background(), cfg)
		b.ReportMetric(res.CatchUp.Mean(), "arrival-catch-up")
		b.ReportMetric(res.HonestMean-res.FreeriderMean, "score-gap")
	}
}

// BenchmarkMatrix measures the adversary scenario matrix end-to-end: the
// whole quick sweep (calibration pilots plus seeded repetitions per attack)
// on the sim backend. Metrics: scenarios per run, mean detection over ALL
// rows (blame-spam's by-design 0 included, so the nominal value is ~0.9 and
// any scenario regressing to zero detection moves it), and oracle failures
// (must stay 0).
func BenchmarkMatrix(b *testing.B) {
	// Sim only: nil Backends would pull wise-degree's live/udp rows into
	// the bench, streaming in wall-clock time and exposing the oracle
	// metrics to machine load.
	cfg := experiment.MatrixConfig{Quick: true, Backends: []runtime.Kind{runtime.KindSim}}
	for i := 0; i < b.N; i++ {
		_, res, _ := experiment.Matrix(context.Background(), cfg)
		failures := 0
		var alpha float64
		for _, r := range res.Rows {
			failures += len(r.Failures)
			alpha += r.Detection
		}
		if len(res.Rows) > 0 {
			alpha /= float64(len(res.Rows))
		}
		b.ReportMetric(float64(res.ScenariosRun), "scenarios")
		b.ReportMetric(alpha, "mean-alpha")
		b.ReportMetric(float64(failures), "oracle-failures")
	}
}

// BenchmarkFig12DetectionSweep regenerates Figure 12: α and gain vs δ.
// Metrics: α at the paper's anchor points δ = 0.035 (≈0.5), 0.05 (≈0.65)
// and 0.1 (>0.99).
func BenchmarkFig12DetectionSweep(b *testing.B) {
	cfg := experiment.DefaultScoreConfig()
	deltas := []float64{0.035, 0.05, 0.1}
	for i := 0; i < b.N; i++ {
		_, points, _ := experiment.Fig12(context.Background(), cfg, deltas, 800)
		b.ReportMetric(points[0].Detection, "alpha-0.035")
		b.ReportMetric(points[1].Detection, "alpha-0.05")
		b.ReportMetric(points[2].Detection, "alpha-0.1")
	}
}

// BenchmarkFig13EntropyDistribution regenerates Figure 13: the entropy of
// honest fanout/fanin histories. Metrics: the distribution means (paper:
// both ≈ 9.16, max 9.23) and the fanout minimum vs γ = 8.95.
func BenchmarkFig13EntropyDistribution(b *testing.B) {
	cfg := experiment.DefaultEntropyConfig()
	cfg.N = 3000
	cfg.SampleNodes = 300
	for i := 0; i < b.N; i++ {
		_, res, _ := experiment.Fig13(context.Background(), cfg)
		b.ReportMetric(res.Fanout.Mean(), "fanout-H-mean")
		b.ReportMetric(res.Fanin.Mean(), "fanin-H-mean")
		b.ReportMetric(res.Fanout.Min(), "fanout-H-min")
	}
}

// BenchmarkFig14DetectionOverTime regenerates Figure 14: detection and
// false positives from score CDFs at increasing times on the heterogeneous
// (PlanetLab-like) network. Paper anchor at 30 s, pdcc = 1: 86% / 12%.
func BenchmarkFig14DetectionOverTime(b *testing.B) {
	p := experiment.DefaultPlanetLabConfig()
	p.N = 100
	p.Duration = 30 * time.Second
	p.Delta = [3]float64{2.0 / 7, 0.2, 0.2}
	snaps := []time.Duration{20 * time.Second, 30 * time.Second}
	for i := 0; i < b.N; i++ {
		_, res, _ := experiment.Fig14(context.Background(), p, snaps)
		last := res.Snapshots[len(res.Snapshots)-1]
		b.ReportMetric(last.Detection, "detection")
		b.ReportMetric(last.FalsePositives, "false-positives")
	}
}

// BenchmarkEq7Inversion regenerates §6.3.2's numeric inversion of Equation
// 7. Metric: p*m for γ = 8.95, coalition 25, nh·f = 600 (paper ≈ 0.21).
func BenchmarkEq7Inversion(b *testing.B) {
	var pm float64
	for i := 0; i < b.N; i++ {
		pm = analysis.MaxCollusionBias(8.95, 25, 600)
	}
	b.ReportMetric(pm, "pm-star")
}

// BenchmarkTable1BlameAlgebra measures the pure blame computations of
// Table 1 (they sit on the per-message hot path of every verifier).
func BenchmarkTable1BlameAlgebra(b *testing.B) {
	bp := experiment.BlameProcess{
		P:    analysis.Params{F: 12, R: 4, Loss: 0.07},
		Rand: rng.New(1),
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += bp.SamplePeriod()
	}
	b.ReportMetric(sink/float64(b.N), "blame-per-period")
}

// BenchmarkTable3MessageOverhead regenerates Table 3: verification messages
// per node per period. Metric: total verification messages per node-period
// at pdcc = 1 (theory O(pdcc·f² + M·f)).
func BenchmarkTable3MessageOverhead(b *testing.B) {
	p := experiment.DefaultPlanetLabConfig()
	p.N = 80
	p.Duration = 8 * time.Second
	for i := 0; i < b.N; i++ {
		tab, _ := experiment.Table3(context.Background(), p, []float64{1})
		// Column 5 is "total verif" for the single pdcc row.
		v := mustFloat(b, tab.Rows[0][5])
		b.ReportMetric(v, "verif-msgs-per-node-period")
	}
}

// BenchmarkTable5BandwidthOverhead regenerates Table 5: the relative
// bandwidth overhead at 674 kbps. Metrics: overhead fraction at pdcc = 0
// (paper 1.07%) and pdcc = 1 (paper 8.01%).
func BenchmarkTable5BandwidthOverhead(b *testing.B) {
	p := experiment.DefaultPlanetLabConfig()
	p.N = 80
	p.Duration = 10 * time.Second
	for i := 0; i < b.N; i++ {
		tab, _, _ := experiment.Table5(context.Background(), p, []int{674_000}, []float64{0, 1})
		b.ReportMetric(mustPct(b, tab.Rows[0][1]), "overhead-pdcc0")
		b.ReportMetric(mustPct(b, tab.Rows[0][2]), "overhead-pdcc1")
	}
}

// BenchmarkDisseminationThroughput measures the raw simulator: events per
// second for a full gossip+LiFTinG cluster (capacity planning for the
// larger runs).
func BenchmarkDisseminationThroughput(b *testing.B) {
	p := experiment.DefaultPlanetLabConfig()
	p.N = 60
	p.Duration = 5 * time.Second
	for i := 0; i < b.N; i++ {
		_, _, _ = experiment.Fig14(context.Background(), p, []time.Duration{5 * time.Second})
	}
}

// BenchmarkScale10k measures the sharded discrete-event engine on the
// headline workload: the 10k-node scale run (calibration pilot + 300-node
// baseline + 10k-node target, ~20M events) at a CI-sized 15 s stream.
// Metrics: ns and heap allocations per executed event of the target run,
// and the expulsion verdict as a 0/1 gate (any regression to a partial
// cohort or honest casualties moves it). One iteration is minutes of work;
// the bench driver runs it with -benchtime 1x.
func BenchmarkScale10k(b *testing.B) {
	cfg := experiment.DefaultScaleConfig()
	cfg.Duration = 15 * time.Second
	for i := 0; i < b.N; i++ {
		var m0, m1 gort.MemStats
		gort.ReadMemStats(&m0)
		_, res, err := experiment.Scale(context.Background(), cfg)
		gort.ReadMemStats(&m1)
		if err != nil {
			b.Fatal(err)
		}
		ev := float64(res.Target.Events)
		b.ReportMetric(float64(res.Target.Elapsed.Nanoseconds())/ev, "ns/event")
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/ev, "allocs/event")
		verdict := 0.0
		if res.Agree && res.Target.CohortExpelled() && res.Target.HonestClean() {
			verdict = 1
		}
		b.ReportMetric(verdict, "verdict-clean")
	}
}

// BenchmarkEntropy measures the audit hot path: entropy of a full-size
// history multiset (600 entries).
func BenchmarkEntropy(b *testing.B) {
	r := rng.New(3)
	ms := stats.NewMultiset[uint32]()
	for i := 0; i < 600; i++ {
		ms.Add(uint32(r.IntN(10000)))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ms.Entropy()
	}
	_ = sink
}

func mustFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

func mustPct(b *testing.B, s string) float64 {
	b.Helper()
	if n := len(s); n > 0 && s[n-1] == '%' {
		s = s[:n-1]
	}
	return mustFloat(b, s) / 100
}

// BenchmarkSwarmGuard measures the future-work extension (§9): the TfT
// swarm with LiFTinG guarding opportunistic unchoking. Metrics: leech
// progress with the guard off (the cheap exploit) and on (collapsed).
func BenchmarkSwarmGuard(b *testing.B) {
	leeches := func(id msg.NodeID) swarm.Behavior {
		if id >= 32 {
			return swarm.Leech
		}
		return swarm.Honest
	}
	for i := 0; i < b.N; i++ {
		off := swarm.DefaultConfig()
		off.Guard.Enabled = false
		so := swarm.New(40, off, 2, leeches)
		so.Run(400)
		on := swarm.DefaultConfig()
		on.Guard.Enabled = true
		sg := swarm.New(40, on, 2, leeches)
		sg.Run(400)
		isLeech := func(id msg.NodeID) bool { return id >= 32 }
		b.ReportMetric(so.ProgressStats(isLeech).Mean, "leech-progress-unguarded")
		b.ReportMetric(sg.ProgressStats(isLeech).Mean, "leech-progress-guarded")
	}
}
