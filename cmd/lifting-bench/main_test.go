package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: lifting/internal/msg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncode-8         	  200000	        14.14 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig10-8          	       1	  10580911 ns/op	    -0.1969 mean-score	      25.24 sigma-b
garbage line
BenchmarkBroken-8         	     one	        oops
PASS
`
	results, cpu := parseBenchOutput(out)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	enc := results[0]
	if enc.Name != "BenchmarkEncode" || enc.Package != "lifting/internal/msg" ||
		enc.Iterations != 200000 || enc.NsPerOp != 14.14 || enc.Metrics["allocs/op"] != 0 {
		t.Errorf("encode result wrong: %+v", enc)
	}
	fig := results[1]
	if fig.Metrics["mean-score"] != -0.1969 || fig.Metrics["sigma-b"] != 25.24 {
		t.Errorf("custom metrics wrong: %+v", fig)
	}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEncode-8":          "BenchmarkEncode",
		"BenchmarkEncode":            "BenchmarkEncode",
		"BenchmarkEncode/kind-ack-8": "BenchmarkEncode/kind-ack",
		"BenchmarkEncode/kind-ack":   "BenchmarkEncode/kind-ack",
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Errorf("run(-nope) = %d, want 2", code)
	}
}
