package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: lifting/internal/msg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncode-8         	  200000	        14.14 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig10-8          	       1	  10580911 ns/op	    -0.1969 mean-score	      25.24 sigma-b
garbage line
BenchmarkBroken-8         	     one	        oops
PASS
`
	results, cpu := parseBenchOutput(out)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	enc := results[0]
	if enc.Name != "BenchmarkEncode" || enc.Package != "lifting/internal/msg" ||
		enc.Iterations != 200000 || enc.NsPerOp != 14.14 || enc.Metrics["allocs/op"] != 0 {
		t.Errorf("encode result wrong: %+v", enc)
	}
	fig := results[1]
	if fig.Metrics["mean-score"] != -0.1969 || fig.Metrics["sigma-b"] != 25.24 {
		t.Errorf("custom metrics wrong: %+v", fig)
	}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEncode-8":          "BenchmarkEncode",
		"BenchmarkEncode":            "BenchmarkEncode",
		"BenchmarkEncode/kind-ack-8": "BenchmarkEncode/kind-ack",
		"BenchmarkEncode/kind-ack":   "BenchmarkEncode/kind-ack",
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Errorf("run(-nope) = %d, want 2", code)
	}
}

func TestCompare(t *testing.T) {
	base := Report{
		CalibrationNs: 100,
		Benchmarks: []Result{
			{Name: "BenchmarkA", Package: "p", NsPerOp: 100},
			{Name: "BenchmarkB", Package: "p", NsPerOp: 100},
			{Name: "BenchmarkGone", Package: "p", NsPerOp: 50},
		},
	}
	// Current machine is 2x slower (calibration 200 vs 100), so raw 2x on
	// BenchmarkA is normalized away, while BenchmarkB's raw 4x is a real 2x.
	cur := Report{
		CalibrationNs: 200,
		Benchmarks: []Result{
			{Name: "BenchmarkA", Package: "p", NsPerOp: 200},
			{Name: "BenchmarkB", Package: "p", NsPerOp: 400},
			{Name: "BenchmarkNew", Package: "p", NsPerOp: 10},
		},
	}
	var buf strings.Builder
	if n := compare(base, cur, &buf); n != 1 {
		t.Fatalf("compare = %d regressions, want 1 (BenchmarkB)\n%s", n, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"p BenchmarkB", "REGRESSION", "(no baseline)", "(removed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}

	// A baseline without calibration falls back to raw ns/op: now the 2x on
	// BenchmarkA counts too.
	base.CalibrationNs = 0
	buf.Reset()
	if n := compare(base, cur, &buf); n != 2 {
		t.Fatalf("raw compare = %d regressions, want 2\n%s", n, buf.String())
	}
}

func TestCompareDualGateToleratesCalibrationNoise(t *testing.T) {
	// The current calibration landed on an unloaded instant (2x "faster"
	// machine), inflating the normalized ratio of an unchanged benchmark to
	// 2.4x while its raw ratio is 1.2x. The dual gate must not flag it.
	base := Report{
		CalibrationNs: 100,
		Benchmarks:    []Result{{Name: "BenchmarkA", Package: "p", NsPerOp: 100}},
	}
	cur := Report{
		CalibrationNs: 50,
		Benchmarks:    []Result{{Name: "BenchmarkA", Package: "p", NsPerOp: 120}},
	}
	var buf strings.Builder
	if n := compare(base, cur, &buf); n != 0 {
		t.Fatalf("compare = %d regressions, want 0\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "tolerated: raw 1.20x") {
		t.Errorf("output missing tolerated annotation:\n%s", buf.String())
	}
	if got := regressedResults(base, cur); len(got) != 0 {
		t.Errorf("regressedResults = %+v, want none", got)
	}
	// A real regression exceeds both ratios and is still flagged.
	cur.Benchmarks[0].NsPerOp = 300
	if got := regressedResults(base, cur); len(got) != 1 {
		t.Errorf("regressedResults = %+v, want 1", got)
	}
}

func TestModPath(t *testing.T) {
	cases := map[string]string{
		"./internal/sim/": "lifting/internal/sim",
		"./":              "lifting",
	}
	for in, want := range cases {
		if got := modPath(in); got != want {
			t.Errorf("modPath(%q) = %q, want %q", in, got, want)
		}
	}
}
