// Command lifting-bench runs the repository's performance benchmarks and
// writes the results as one JSON document, so successive PRs leave a
// machine-readable perf trajectory in the repo (BENCH_PR2.json and
// onwards). It shells out to `go test -bench` and parses the standard
// benchmark output format.
//
// Usage:
//
//	go run ./cmd/lifting-bench -out BENCH_PR8.json
//	go run ./cmd/lifting-bench -check -baseline BENCH_PR7.json
//
// or, equivalently, `make bench`. With -check the run additionally compares
// every benchmark against the baseline report and exits nonzero on a > 1.3×
// regression. Normalization divides each ns/op by the machine's score on a
// fixed arithmetic calibration loop (recorded in the report as
// calibration_ns), so a baseline taken on faster hardware does not read as
// a regression on slower hardware — the trajectory files are produced by
// whatever machine ran the PR, not a fixed rig. Baselines that predate the
// calibration field are compared raw, with a warning.
//
// Two defenses keep the gate meaningful on noisy shared machines. A
// benchmark counts as regressed only when BOTH its normalized and its raw
// ratio exceed the limit: the calibration loop is itself one measurement,
// and when it lands on an unloaded instant it inflates every normalized
// ratio uniformly — a real regression shows up raw too. And benchmarks over
// the limit on the first pass are re-run once, keeping the faster of the
// two samples: a genuine slowdown reproduces, a scheduler hiccup does not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document written to -out.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPU         string `json:"cpu,omitempty"`
	// CalibrationNs is the machine's time for one pass of the fixed
	// calibration loop — the per-report speed yardstick -check divides by.
	CalibrationNs float64  `json:"calibration_ns,omitempty"`
	Suites        []string `json:"suites"`
	Benchmarks    []Result `json:"benchmarks"`
}

// suite is one `go test -bench` invocation.
type suite struct {
	pkg       string
	pattern   string
	benchtime string
}

// suites covers the perf trajectory the roadmap tracks: the codec hot path,
// the metrics-collector hot path (every send/deliver crosses it, so it must
// stay allocation-free), the reputation-substrate hot paths (manager lookup
// at 10k nodes, cached vs from-scratch, and the blame-flush cycle), the
// experiment-registry dispatch and the structured-JSON encoder (the
// machine-readable output every consumer now parses), the content plane's
// hot paths (payload hashing, the chunk store, and the payload-carrying
// serve codec), the two Monte-Carlo workhorses (serial and parallel), the
// cluster-scale churn workload, and the adversary-matrix sweep throughput
// (the regression net's own cost).
var suites = []suite{
	{pkg: "./internal/msg/", pattern: "BenchmarkEncode$|BenchmarkEncodeFresh$|BenchmarkDecode$|BenchmarkFrameRoundTrip$|BenchmarkEncodeServePayload$|BenchmarkDecodeServePayload$", benchtime: "200000x"},
	{pkg: "./internal/content/", pattern: "BenchmarkHashBytes$|BenchmarkStorePutGet$", benchtime: "200000x"},
	{pkg: "./internal/metrics/", pattern: "BenchmarkMetricsHotPath$|BenchmarkMetricsHotPathParallel$", benchtime: "2000000x"},
	{pkg: "./internal/membership/", pattern: "BenchmarkManagers$|BenchmarkManagersUncached$", benchtime: "200000x"},
	{pkg: "./internal/reputation/", pattern: "BenchmarkClientFlush$", benchtime: "5000x"},
	{pkg: "./internal/sim/", pattern: "BenchmarkEngineDrain$|BenchmarkEngineSharded$", benchtime: "2000000x"},
	{pkg: "./internal/experiment/", pattern: "BenchmarkRegistryDispatch$|BenchmarkResultJSONEncode$", benchtime: "2000x"},
	{pkg: "./", pattern: "BenchmarkFig10WrongfulBlames$|BenchmarkFig10WrongfulBlamesSerial$|BenchmarkFig11ScoreSeparation$|BenchmarkFig11ScoreSeparationSerial$|BenchmarkChurn$|BenchmarkMatrix$|BenchmarkScale10k$", benchtime: "1x"},
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lifting-bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_PR8.json", "output JSON path")
	baseline := fs.String("baseline", "", "baseline report to compare against (used by -check)")
	check := fs.Bool("check", false, "after writing -out, compare against -baseline and exit 1 on >1.3x normalized ns/op regressions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *check && *baseline == "" {
		fmt.Fprintln(os.Stderr, "lifting-bench: -check needs -baseline")
		return 2
	}

	report := Report{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CalibrationNs: calibrate(),
	}
	for _, s := range suites {
		report.Suites = append(report.Suites, fmt.Sprintf("go test -run ^$ -bench '%s' -benchtime %s %s", s.pattern, s.benchtime, s.pkg))
		results, cpu, err := runSuite(s.pkg, s.pattern, s.benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lifting-bench:", err)
			return 1
		}
		if cpu != "" {
			report.CPU = cpu
		}
		report.Benchmarks = append(report.Benchmarks, results...)
	}

	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "lifting-bench: no benchmark results parsed")
		return 1
	}

	var base Report
	if *check {
		var err error
		base, err = loadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lifting-bench: %v\n", err)
			return 1
		}
		// One retry pass before crying wolf: re-measure anything over the
		// limit and keep the faster sample. A genuine slowdown reproduces;
		// a scheduler hiccup on a shared machine does not.
		if flagged := regressedResults(base, report); len(flagged) > 0 {
			fmt.Printf("re-running %d benchmark(s) over the limit to rule out scheduler noise\n", len(flagged))
			if err := retryFlagged(&report, flagged); err != nil {
				fmt.Fprintln(os.Stderr, "lifting-bench:", err)
				return 1
			}
		}
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lifting-bench: %v\n", err)
		return 1
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lifting-bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(report.Benchmarks), *out)

	if *check {
		if n := compare(base, report, os.Stdout); n > 0 {
			fmt.Fprintf(os.Stderr, "lifting-bench: %d benchmark(s) regressed more than %.1fx vs %s\n", n, regressionRatio, *baseline)
			return 1
		}
		fmt.Printf("no regressions beyond %.1fx vs %s\n", regressionRatio, *baseline)
	}
	return 0
}

// runSuite executes one `go test -bench` invocation and parses its results.
func runSuite(pkg, pattern, benchtime string) ([]Result, string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern, "-benchtime", benchtime, "-benchmem", pkg)
	output, err := cmd.CombinedOutput()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %v\n%s", pkg, err, output)
	}
	results, cpu := parseBenchOutput(string(output))
	return results, cpu, nil
}

// regressionRatio is the normalized slowdown -check tolerates: generous
// enough for run-to-run noise in the 1x cluster benches, tight enough that
// an accidental O(n) → O(n log n) on a hot path trips it.
const regressionRatio = 1.3

// calibrate times one pass of a fixed xorshift loop (2^26 steps, pure
// register arithmetic — no memory traffic, no allocation) and returns the
// best of five trials in nanoseconds. The loop is the report's speed
// yardstick: two reports' ns/op divided by their own calibration_ns are
// comparable across machines of different clock speed.
func calibrate() float64 {
	best := 0.0
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 1<<26; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calSink = x
		if ns := float64(time.Since(start).Nanoseconds()); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// calSink keeps the calibration loop's result observable so the compiler
// cannot delete the loop.
var calSink uint64

func loadReport(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// calScale returns the factor that converts current ns/op into
// baseline-machine ns/op (1 when either report lacks a calibration — the
// comparison is then raw on both sides).
func calScale(base, cur Report) float64 {
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		return base.CalibrationNs / cur.CalibrationNs
	}
	return 1
}

// isRegression applies the dual gate: a benchmark regressed only if it
// exceeds the limit both normalized and raw. The calibration loop is itself
// a single measurement — when it lands on an unloaded instant it deflates
// calibration_ns and inflates every normalized ratio uniformly, and a real
// regression shows up in raw ns/op too (the trajectory files are produced
// by the same class of machine run to run).
func isRegression(b, c Result, scale float64) bool {
	return c.NsPerOp*scale/b.NsPerOp > regressionRatio && c.NsPerOp/b.NsPerOp > regressionRatio
}

// regressedResults returns the current results that fail the dual gate
// against the baseline.
func regressedResults(base, cur Report) []Result {
	scale := calScale(base, cur)
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Package+" "+r.Name] = r
	}
	var out []Result
	for _, c := range cur.Benchmarks {
		if b, ok := baseBy[c.Package+" "+c.Name]; ok && b.NsPerOp > 0 && isRegression(b, c, scale) {
			out = append(out, c)
		}
	}
	return out
}

// retryFlagged re-runs each suite restricted to its flagged benchmarks and
// keeps the faster of the two samples for each benchmark.
func retryFlagged(report *Report, flagged []Result) error {
	names := make(map[int]map[string]bool) // suite index -> top-level bench names
	for _, f := range flagged {
		name := f.Name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i] // sub-benchmarks re-run under their parent
		}
		for si, s := range suites {
			if modPath(s.pkg) == f.Package {
				if names[si] == nil {
					names[si] = make(map[string]bool)
				}
				names[si][name] = true
			}
		}
	}
	index := make(map[string]int, len(report.Benchmarks))
	for i, r := range report.Benchmarks {
		index[r.Package+" "+r.Name] = i
	}
	for si, s := range suites {
		set := names[si]
		if len(set) == 0 {
			continue
		}
		pats := make([]string, 0, len(set))
		for n := range set {
			pats = append(pats, n+"$")
		}
		sort.Strings(pats)
		results, _, err := runSuite(s.pkg, strings.Join(pats, "|"), s.benchtime)
		if err != nil {
			return err
		}
		for _, r := range results {
			if i, ok := index[r.Package+" "+r.Name]; ok && r.NsPerOp > 0 && r.NsPerOp < report.Benchmarks[i].NsPerOp {
				report.Benchmarks[i] = r
			}
		}
	}
	return nil
}

// modPath converts a suite's relative package path ("./internal/sim/") to
// the import path `go test` prints ("lifting/internal/sim").
func modPath(pkg string) string {
	p := strings.Trim(strings.TrimPrefix(pkg, "./"), "/")
	if p == "" {
		return "lifting"
	}
	return "lifting/" + p
}

// compare prints a per-benchmark ratio table (current vs baseline,
// normalized by each report's calibration when both carry one) and returns
// the number of regressions beyond regressionRatio — failing the dual
// normalized-and-raw gate (see isRegression). Benchmarks present in only
// one report are listed but never counted: a new benchmark has no baseline,
// a removed one no current.
func compare(base, cur Report, w io.Writer) int {
	scale := calScale(base, cur)
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		fmt.Fprintf(w, "calibration: baseline %.0f ns, current %.0f ns (machine speed ratio %.2fx); comparing normalized ns/op\n",
			base.CalibrationNs, cur.CalibrationNs, 1/scale)
	} else {
		fmt.Fprintf(w, "calibration missing from baseline; comparing raw ns/op\n")
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Package+" "+r.Name] = r
	}
	keys := make([]string, 0, len(cur.Benchmarks))
	curBy := make(map[string]Result, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		k := r.Package + " " + r.Name
		curBy[k] = r
		keys = append(keys, k)
	}
	sort.Strings(keys)
	regressions := 0
	for _, k := range keys {
		c := curBy[k]
		b, ok := baseBy[k]
		if !ok || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "  %-60s %12.1f ns/op  (no baseline)\n", k, c.NsPerOp)
			continue
		}
		ratio := c.NsPerOp * scale / b.NsPerOp
		verdict := ""
		if isRegression(b, c, scale) {
			verdict = "  REGRESSION"
			regressions++
		} else if ratio > regressionRatio {
			verdict = fmt.Sprintf("  tolerated: raw %.2fx within limit", c.NsPerOp/b.NsPerOp)
		}
		fmt.Fprintf(w, "  %-60s %12.1f ns/op  %6.2fx%s\n", k, c.NsPerOp, ratio, verdict)
		delete(baseBy, k)
	}
	removed := make([]string, 0, len(baseBy))
	for k := range baseBy {
		removed = append(removed, k)
	}
	sort.Strings(removed)
	for _, k := range removed {
		fmt.Fprintf(w, "  %-60s %12s           (removed)\n", k, "-")
	}
	return regressions
}

// stripCPUSuffix removes the trailing "-N" GOMAXPROCS suffix from a
// benchmark name — only the final one, so hyphens inside the name (or in
// sub-benchmark paths) survive.
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchOutput extracts benchmark lines from `go test -bench` output.
// The format per line is
//
//	BenchmarkName-8   100   12.5 ns/op   3 B/op   1 allocs/op   0.97 custom-metric
//
// with "pkg:" and "cpu:" header lines preceding them.
func parseBenchOutput(out string) ([]Result, string) {
	var results []Result
	var pkg, cpu string
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       stripCPUSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if ok {
			results = append(results, r)
		}
	}
	return results, cpu
}
