// Command lifting-bench runs the repository's performance benchmarks and
// writes the results as one JSON document, so successive PRs leave a
// machine-readable perf trajectory in the repo (BENCH_PR2.json and
// onwards). It shells out to `go test -bench` and parses the standard
// benchmark output format.
//
// Usage:
//
//	go run ./cmd/lifting-bench -out BENCH_PR5.json
//
// or, equivalently, `make bench`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document written to -out.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	CPU         string   `json:"cpu,omitempty"`
	Suites      []string `json:"suites"`
	Benchmarks  []Result `json:"benchmarks"`
}

// suite is one `go test -bench` invocation.
type suite struct {
	pkg       string
	pattern   string
	benchtime string
}

// suites covers the perf trajectory the roadmap tracks: the codec hot path,
// the reputation-substrate hot paths (manager lookup at 10k nodes, cached
// vs from-scratch, and the blame-flush cycle), the experiment-registry
// dispatch and the structured-JSON encoder (the machine-readable output
// every consumer now parses), the two Monte-Carlo workhorses (serial and
// parallel), the cluster-scale churn workload, and the adversary-matrix
// sweep throughput (the regression net's own cost).
var suites = []suite{
	{pkg: "./internal/msg/", pattern: "BenchmarkEncode$|BenchmarkEncodeFresh$|BenchmarkDecode$|BenchmarkFrameRoundTrip$", benchtime: "200000x"},
	{pkg: "./internal/membership/", pattern: "BenchmarkManagers$|BenchmarkManagersUncached$", benchtime: "200000x"},
	{pkg: "./internal/reputation/", pattern: "BenchmarkClientFlush$", benchtime: "5000x"},
	{pkg: "./internal/experiment/", pattern: "BenchmarkRegistryDispatch$|BenchmarkResultJSONEncode$", benchtime: "2000x"},
	{pkg: "./", pattern: "BenchmarkFig10WrongfulBlames$|BenchmarkFig10WrongfulBlamesSerial$|BenchmarkFig11ScoreSeparation$|BenchmarkFig11ScoreSeparationSerial$|BenchmarkChurn$|BenchmarkMatrix$", benchtime: "1x"},
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lifting-bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_PR5.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, s := range suites {
		report.Suites = append(report.Suites, fmt.Sprintf("go test -run ^$ -bench '%s' -benchtime %s %s", s.pattern, s.benchtime, s.pkg))
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", s.pattern, "-benchtime", s.benchtime, "-benchmem", s.pkg)
		output, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lifting-bench: %s: %v\n%s", s.pkg, err, output)
			return 1
		}
		results, cpu := parseBenchOutput(string(output))
		if cpu != "" {
			report.CPU = cpu
		}
		report.Benchmarks = append(report.Benchmarks, results...)
	}

	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "lifting-bench: no benchmark results parsed")
		return 1
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lifting-bench: %v\n", err)
		return 1
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lifting-bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(report.Benchmarks), *out)
	return 0
}

// stripCPUSuffix removes the trailing "-N" GOMAXPROCS suffix from a
// benchmark name — only the final one, so hyphens inside the name (or in
// sub-benchmark paths) survive.
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchOutput extracts benchmark lines from `go test -bench` output.
// The format per line is
//
//	BenchmarkName-8   100   12.5 ns/op   3 B/op   1 allocs/op   0.97 custom-metric
//
// with "pkg:" and "cpu:" header lines preceding them.
func parseBenchOutput(out string) ([]Result, string) {
	var results []Result
	var pkg, cpu string
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       stripCPUSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if ok {
			results = append(results, r)
		}
	}
	return results, cpu
}
