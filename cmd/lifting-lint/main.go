// Command lifting-lint runs the determinism-lint suite over the module and
// exits nonzero on any finding. It mechanically enforces the repository's
// byte-identical contract: seeded runs emit identical lifting.experiments/v1
// documents across shard counts, worker counts and OS processes.
//
//	go run ./cmd/lifting-lint ./...
//
// The suite always analyzes the whole module — the contract is module-global
// — so the package pattern argument is accepted for familiarity and
// validated, nothing more. Findings are suppressed in place with
// `//lint:allow <rule> <reason>` on the flagged line or the line above;
// see internal/lint and the "Determinism lint" section of DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lifting/internal/lint"
)

// deterministicPackages is where the byte-identical contract holds: every
// package on the seeded path from root rng stream to emitted document. The
// wall-clock packages — internal/live and internal/transport (real timers
// and sockets are their job), internal/obs and internal/gateway (ops HTTP
// surfaces reporting real uptime and latency), cmd and examples (drivers
// that time and print runs for humans) — are deliberately absent.
var deterministicPackages = lint.PackageSet{
	"lifting",
	"lifting/internal/analysis",
	"lifting/internal/chaos",
	"lifting/internal/cluster",
	"lifting/internal/content",
	"lifting/internal/core",
	"lifting/internal/experiment",
	"lifting/internal/freerider",
	"lifting/internal/gossip",
	"lifting/internal/history",
	"lifting/internal/membership",
	"lifting/internal/metrics",
	"lifting/internal/msg",
	"lifting/internal/net",
	"lifting/internal/reputation",
	"lifting/internal/rng",
	"lifting/internal/runtime",
	"lifting/internal/sim",
	"lifting/internal/stats",
	"lifting/internal/stream",
	"lifting/internal/swarm",
}

// analyzers assembles the suite with this repository's configuration.
func analyzers() []lint.Analyzer {
	documentRoots := []lint.TypeRef{
		{Pkg: "lifting/internal/experiment", Name: "Document"},
	}
	return []lint.Analyzer{
		lint.NoWallclock{Packages: deterministicPackages},
		lint.NoGlobalRand{},
		lint.OrderedMapRange{Packages: deterministicPackages},
		lint.NoFloatInDocument{Roots: documentRoots},
		lint.NoTimeInResults{
			Roots: documentRoots,
			Packages: lint.PackageSet{
				"lifting/internal/experiment",
				"lifting/internal/metrics",
			},
		},
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lifting-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "print the rule catalog and exit")
	dir := fs.String("C", ".", "module root to analyze")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lifting-lint [-C dir] [-rules] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers()
	if *rules {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if !strings.HasPrefix(arg, ".") {
			fmt.Fprintf(stderr, "lifting-lint: unsupported pattern %q (the suite always analyzes the whole module; use ./...)\n", arg)
			return 2
		}
	}
	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "lifting-lint: %v\n", err)
		return 2
	}
	ds := lint.Run(mod, suite)
	for _, d := range ds {
		fmt.Fprintln(stdout, d.String())
	}
	if n := len(ds); n > 0 {
		fmt.Fprintf(stderr, "lifting-lint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
