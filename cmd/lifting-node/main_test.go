package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	gonet "net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/content"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gateway"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stream"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-badflag"},
		{"-peers", "nonsense"},
		{"-peers", ""},                  // no peers at all
		{"-id", "1", "-peers", "1=a:1"}, // only ourselves
		{"-peers", "0=127.0.0.1:1", "extra-arg"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

// TestRunInterrupt pins the daemon's cancellation path: a node started with
// a long duration shuts down promptly — sockets closed, callbacks drained —
// when the interrupt channel closes, exactly as a SIGTERM would via the
// signal context.
func TestRunInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	done := make(chan int, 1)
	var out, errOut bytes.Buffer
	go func() {
		done <- run(context.Background(),
			[]string{"-id", "1", "-peers", "0=127.0.0.1:1", "-duration", "1h"},
			&out, &errOut, interrupt)
	}()
	time.Sleep(300 * time.Millisecond)
	close(interrupt)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("interrupted daemon exited %d:\n%s%s", code, out.String(), errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted daemon did not shut down within 10s")
	}
	if !strings.Contains(out.String(), "DONE 1") {
		t.Errorf("daemon did not complete its shutdown line:\n%s", out.String())
	}
}

// scenario is the shared shape of the multi-process deployment and its
// in-process sim twin: 5 nodes, node 0 the source, node 4 freeriding hard,
// an expulsion threshold the freerider must cross and honest nodes must not.
const (
	scenN     = 5
	scenRider = msg.NodeID(4)
	scenSeed  = 7
	scenF     = scenN - 1
	scenTg    = 100 * time.Millisecond
	scenDelta = 0.6
	scenEta   = -2.5
	scenGrace = 8
	scenDur   = 4 * time.Second
)

// simVerdict runs the scenario on the deterministic discrete-event backend
// with blames travelling as messages — the exact reputation wiring the
// daemons deploy — and returns the verdict the UDP deployment must
// reproduce.
func simVerdict(t *testing.T) (honestMean, riderScore float64, expelled map[msg.NodeID]bool) {
	t.Helper()
	opts := cluster.Options{
		N:       scenN,
		Seed:    scenSeed,
		Backend: runtime.KindSim,
		Gossip: gossip.Config{
			F:              scenF,
			Period:         scenTg,
			ChunkPayload:   1316,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              scenF,
			Period:         scenTg,
			Pdcc:           1,
			HistoryPeriods: 50,
			Gamma:          8.95,
			Eta:            scenEta,
		},
		Rep:              reputation.Config{M: scenN, Eta: scenEta, GracePeriods: scenGrace},
		Stream:           stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults:      net.Uniform(0, 2*time.Millisecond),
		LiFTinG:          true,
		BlameMode:        cluster.BlameMessages,
		ExpelOnDetection: false, // verdict only: managers mark, nobody is removed
		BehaviorFor: func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if id == scenRider {
				return freerider.Degree{Delta1: scenDelta, Delta2: scenDelta, Delta3: scenDelta}
			}
			return nil
		},
	}
	c := cluster.New(opts)
	c.Start()
	c.StartStream(scenDur)
	c.Run(scenDur + 2*scenTg)
	c.Close()

	scores := c.Scores()
	expelled = make(map[msg.NodeID]bool)
	var honest float64
	for i := 1; i < scenN; i++ {
		id := msg.NodeID(i)
		if id == scenRider {
			riderScore = scores[id]
		} else {
			honest += scores[id]
		}
	}
	// Expulsion verdict: min-vote over the managers' marks.
	for i := 1; i < scenN; i++ {
		id := msg.NodeID(i)
		for _, mgr := range c.Managers {
			if _, tracked := mgr.Snapshot(id); !tracked {
				continue
			}
			if e, _ := mgr.Snapshot(id); e.Expelled {
				expelled[id] = true
			}
		}
	}
	return honest / float64(scenN-2), riderScore, expelled
}

// TestMultiProcessDeployment is the acceptance harness for the deployment
// layer: it builds the daemon, launches the quickstart-scale scenario as 5
// OS processes exchanging UDP datagrams on loopback, and asserts the same
// freerider verdict the sim backend produces — the freerider is marked
// expelled with its min-vote score below the honest mean, and no honest node
// is expelled on either backend.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test is slow")
	}

	simHonest, simRider, simExpelled := simVerdict(t)
	t.Logf("sim verdict: honest mean %.2f, rider %.2f, expelled %v", simHonest, simRider, simExpelled)
	if simRider >= simHonest {
		t.Fatalf("sim scenario did not separate the freerider (%.2f vs %.2f)", simRider, simHonest)
	}
	if !simExpelled[scenRider] {
		t.Fatal("sim scenario did not expel the freerider; the harness needs a stronger scenario")
	}
	for id := range simExpelled {
		if id != scenRider {
			t.Fatalf("sim scenario expelled honest node %d", id)
		}
	}

	bin := filepath.Join(t.TempDir(), "lifting-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lifting-node: %v\n%s", err, out)
	}

	// Reserve one loopback port per node so every process can be given the
	// full membership up front.
	ports := make([]int, scenN)
	for i := range ports {
		c, err := gonet.ListenUDP("udp", &gonet.UDPAddr{IP: gonet.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = c.LocalAddr().(*gonet.UDPAddr).Port
		c.Close()
	}
	var peerSpecs []string
	for i, p := range ports {
		peerSpecs = append(peerSpecs, fmt.Sprintf("%d=127.0.0.1:%d", i, p))
	}
	peers := strings.Join(peerSpecs, ",")

	// Reserve TCP ports: node 1's observability endpoint, plus two stream
	// gateways — the source's (with origin regeneration) and node 2's (store
	// backed, upstream = the source's gateway) — both exercised below while
	// the deployment runs.
	tcpPorts := make([]string, 3)
	for i := range tcpPorts {
		tl, err := gonet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tcpPorts[i] = tl.Addr().String()
		tl.Close()
	}
	httpAddr, srcGwAddr, edgeGwAddr := tcpPorts[0], tcpPorts[1], tcpPorts[2]

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	warmup := 700 * time.Millisecond
	outs := make([]bytes.Buffer, scenN)
	cmds := make([]*exec.Cmd, scenN)
	for i := scenN - 1; i >= 0; i-- { // source last: its peers should be listening
		args := []string{
			"-id", strconv.Itoa(i),
			"-listen", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-peers", peers,
			"-seed", strconv.Itoa(scenSeed),
			"-f", strconv.Itoa(scenF),
			"-period", scenTg.String(),
			"-m", strconv.Itoa(scenN),
			"-eta", fmt.Sprintf("%g", scenEta),
			"-grace", strconv.Itoa(scenGrace),
			"-warmup", warmup.String(),
		}
		if i == 0 {
			// The source reports; it finishes first so every peer is still
			// up to answer its score reads.
			args = append(args, "-source", "-report", "-duration", scenDur.String(),
				"-gateway", srcGwAddr)
		} else {
			args = append(args, "-duration", (scenDur + 1500*time.Millisecond).String())
		}
		if msg.NodeID(i) == scenRider {
			args = append(args, "-freeride", fmt.Sprintf("%g", scenDelta))
		}
		if i == 1 {
			args = append(args, "-http", httpAddr)
		}
		if i == 2 {
			args = append(args, "-gateway", edgeGwAddr, "-gateway-source", "http://"+srcGwAddr)
		}
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	// While the nodes stream, download stream bytes through node 2's HTTP
	// gateway and verify every payload against the canonical content
	// generation — the end-to-end hash check of the content plane.
	scrapeGateway(t, edgeGwAddr)
	// ...and scrape node 1's observability endpoints over real HTTP: the
	// exposition must be well-formed and already carry protocol traffic and
	// redundancy accounting.
	scrapeObservability(t, httpAddr)

	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d exited with %v:\n%s", i, err, outs[i].String())
		}
	}
	report := outs[0].String()
	t.Logf("source output:\n%s", report)

	// Parse the source's over-the-wire score reads.
	scores := make(map[msg.NodeID]float64)
	expelled := make(map[msg.NodeID]bool)
	for _, line := range strings.Split(report, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] != "SCORE" {
			continue
		}
		id, _ := strconv.Atoi(fields[1])
		score, _ := strconv.ParseFloat(fields[2], 64)
		exp, _ := strconv.ParseBool(fields[3])
		replies, _ := strconv.Atoi(fields[4])
		if replies == 0 {
			t.Errorf("score read of node %d got no manager replies", id)
		}
		scores[msg.NodeID(id)] = score
		expelled[msg.NodeID(id)] = exp
	}
	if len(scores) != scenN {
		t.Fatalf("source reported %d scores, want %d:\n%s", len(scores), scenN, report)
	}

	// The deployment's verdict must match the sim backend's.
	var honest float64
	for i := 1; i < scenN; i++ {
		id := msg.NodeID(i)
		if id != scenRider {
			honest += scores[id]
		}
	}
	honestMean := honest / float64(scenN-2)
	t.Logf("udp verdict: honest mean %.2f, rider %.2f, expelled rider=%t",
		honestMean, scores[scenRider], expelled[scenRider])
	if scores[scenRider] >= honestMean {
		t.Errorf("deployment did not separate the freerider: %.2f vs honest mean %.2f",
			scores[scenRider], honestMean)
	}
	if !expelled[scenRider] {
		t.Error("sim expelled the freerider, the UDP deployment did not")
	}
	for i := 0; i < scenN; i++ {
		id := msg.NodeID(i)
		if id != scenRider && expelled[id] {
			t.Errorf("honest node %d marked expelled in the deployment (sim expelled none)", id)
		}
	}
}

// TestMultiProcessSoak drives the deployment fault schedule through real OS
// processes: five honest daemons started with -soak independently derive the
// same chaos plan from their shared flags and replay it against their local
// network models — a crash blackhole, a partition, a correlated loss burst,
// standing duplication/reordering and two skewed clocks. The oracles are the
// deployment-level halves of the soak invariants: every process applies the
// identical schedule, nobody expels an honest node under it, the stream
// keeps delivering, and the /metrics scrape exposes the RSS and period-drift
// gauges the long-running harness watches.
func TestMultiProcessSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak test is slow")
	}

	const (
		soakN    = 5
		soakSeed = 11
		soakTg   = 100 * time.Millisecond
		soakDur  = 5 * time.Second
		soakEta  = -6.0 // generous: faults must not look like freeriding
	)

	bin := filepath.Join(t.TempDir(), "lifting-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lifting-node: %v\n%s", err, out)
	}

	ports := make([]int, soakN)
	for i := range ports {
		c, err := gonet.ListenUDP("udp", &gonet.UDPAddr{IP: gonet.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = c.LocalAddr().(*gonet.UDPAddr).Port
		c.Close()
	}
	var peerSpecs []string
	for i, p := range ports {
		peerSpecs = append(peerSpecs, fmt.Sprintf("%d=127.0.0.1:%d", i, p))
	}
	peers := strings.Join(peerSpecs, ",")
	tl, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpAddr := tl.Addr().String()
	tl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Every process gets the SAME -duration: the fault plan is derived from
	// it, so like -seed and -period it must agree across the deployment.
	warmup := 700 * time.Millisecond
	outs := make([]bytes.Buffer, soakN)
	cmds := make([]*exec.Cmd, soakN)
	for i := soakN - 1; i >= 0; i-- { // source last: its peers should be listening
		args := []string{
			"-id", strconv.Itoa(i),
			"-listen", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-peers", peers,
			"-seed", strconv.Itoa(soakSeed),
			"-f", strconv.Itoa(soakN - 1),
			"-period", soakTg.String(),
			"-m", strconv.Itoa(soakN),
			"-eta", fmt.Sprintf("%g", soakEta),
			"-grace", "8",
			"-warmup", warmup.String(),
			"-duration", soakDur.String(),
			"-soak",
		}
		if i == 0 {
			args = append(args, "-source")
		}
		if i == 1 {
			args = append(args, "-http", httpAddr)
		}
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		cmds[i] = cmd
	}

	scrapeSoakGauges(t, httpAddr, soakDur)

	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d exited with %v:\n%s", i, err, outs[i].String())
		}
	}

	// Each process must have announced the same plan, replayed the same
	// events (compared as multisets — near-simultaneous heals may interleave
	// in stdout), and expelled nobody.
	var wantEvents, skewed int
	var wantChaos string
	for i := range outs {
		out := outs[i].String()
		if !strings.Contains(out, fmt.Sprintf("DONE %d", i)) {
			t.Errorf("node %d never completed:\n%s", i, out)
		}
		if strings.Contains(out, "EXPEL") {
			t.Errorf("node %d expelled someone under the fault plan:\n%s", i, out)
		}
		events := -1
		var chaos []string
		for _, line := range strings.Split(out, "\n") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[0] == "SOAK" {
				fmt.Sscanf(fields[2], "events=%d", &events)
				if !strings.HasSuffix(fields[3], "=1.0000") {
					skewed++
				}
			}
			if len(fields) >= 3 && fields[0] == "CHAOS" {
				chaos = append(chaos, strings.Join(fields[2:], " "))
			}
		}
		if events <= 0 {
			t.Fatalf("node %d announced no fault plan:\n%s", i, out)
		}
		if len(chaos) != events {
			t.Errorf("node %d applied %d of %d scheduled events", i, len(chaos), events)
		}
		sort.Strings(chaos)
		applied := strings.Join(chaos, ";")
		if i == 0 {
			wantEvents, wantChaos = events, applied
		} else if events != wantEvents || applied != wantChaos {
			t.Errorf("node %d derived a different plan:\n%s\nvs\n%s", i, applied, wantChaos)
		}
	}
	for _, kind := range []string{"crash", "restart", "partition", "heal", "loss-burst", "loss-heal"} {
		if !strings.Contains(wantChaos, kind+" ") {
			t.Errorf("deployment plan missing a %s event: %s", kind, wantChaos)
		}
	}
	if skewed == 0 {
		t.Error("no process reported a skewed clock; the deployment schedule skews 2")
	}
	t.Logf("soak: %d processes replayed %d events each (%d skewed clocks): %s",
		soakN, wantEvents, skewed, wantChaos)
}

// scrapeSoakGauges polls a soaking node's /metrics until stream traffic is
// flowing, then checks the two gauges the long-running soak harness records:
// heap-in-use (RSS stand-in) must be a sane nonzero size and the
// period-drift gauge must be present and small — the period clock tracks
// wall time even while the fault plan runs.
func scrapeSoakGauges(t *testing.T, addr string, budget time.Duration) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(budget)
	var exposition string
	for {
		var err error
		resp, err := client.Get("http://" + addr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				exposition = string(body)
			}
		}
		if strings.Contains(exposition, "lifting_useful_chunks_total ") &&
			!strings.Contains(exposition, "\nlifting_useful_chunks_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no useful-chunk traffic on the soaking node before deadline (err=%v):\n%s", err, exposition)
		}
		time.Sleep(100 * time.Millisecond)
	}
	sample := func(name string) float64 {
		for _, line := range strings.Split(exposition, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("unparseable %s sample %q: %v", name, rest, err)
				}
				return v
			}
		}
		t.Fatalf("/metrics missing %s:\n%s", name, exposition)
		return 0
	}
	heap := sample("lifting_process_heap_bytes")
	if heap < 1<<18 || heap > 1<<33 {
		t.Errorf("lifting_process_heap_bytes = %g, not a sane process heap", heap)
	}
	drift := sample("lifting_period_drift_periods")
	if drift < -20 || drift > 20 {
		t.Errorf("lifting_period_drift_periods = %g, period clock unmoored from wall clock", drift)
	}
	t.Logf("soak gauges: heap %.0f bytes, drift %.2f periods", heap, drift)
}

// scrapeGateway downloads stream bytes through a running node's HTTP
// gateway and verifies them end-to-end: every payload must match the
// canonical content generation for the deployment seed, whether it came
// from the node's own chunk store (gossip-delivered) or was fetched through
// the upstream chain from the source's origin gateway. It must finish
// before the node's -duration elapses, so it retries quickly.
func scrapeGateway(t *testing.T, gwAddr string) {
	t.Helper()
	base := "http://" + gwAddr
	client := &http.Client{Timeout: 2 * time.Second}
	// The content seed every process derives from the shared -seed; the test
	// regenerates the canonical payloads independently from it.
	contentSeed := rng.New(scenSeed).Derive("content").Seed()
	deadline := time.Now().Add(scenDur)

	// A chunk far beyond the streamed range: never gossiped, so it can only
	// arrive through the upstream chain — node 2's gateway falls back to the
	// source's gateway, whose origin regenerates it. FetchChunk verifies the
	// payload against the advertised hash; the test re-verifies against the
	// canonical bytes.
	const farChunk = msg.ChunkID(1 << 20)
	var payload []byte
	for {
		var err error
		payload, _, err = gateway.FetchChunk(client, base, farChunk)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway upstream fetch of chunk %d never succeeded: %v", farChunk, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if want := content.Generate(contentSeed, farChunk, 1316); !bytes.Equal(payload, want) {
		t.Fatalf("upstream-fetched chunk %d differs from canonical generation", farChunk)
	}

	// Wait until gossip has delivered chunks into node 2's store, then
	// download the newest one the gateway advertises and verify it too.
	var have []uint32
	var newest msg.ChunkID
	for {
		resp, err := client.Get(base + "/stream/have")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&have)
			resp.Body.Close()
		}
		// /stream/have unions the store with the gateway cache, which
		// already holds farChunk — only a different id proves the gossip
		// plane delivered payload bytes into this node's store.
		found := false
		for _, id := range have {
			if msg.ChunkID(id) != farChunk {
				newest, found = msg.ChunkID(id), true
			}
		}
		if err == nil && found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no gossip-delivered chunk on /stream/have before deadline (err=%v, have=%v)", err, have)
		}
		time.Sleep(100 * time.Millisecond)
	}
	payload, _, err := gateway.FetchChunk(client, base, newest)
	if err != nil {
		t.Fatalf("fetching gossip-delivered chunk %d: %v", newest, err)
	}
	if want := content.Generate(contentSeed, newest, 1316); !bytes.Equal(payload, want) {
		t.Fatalf("gossip-delivered chunk %d differs from canonical generation", newest)
	}

	resp, err := client.Get(base + "/stream/stats")
	if err != nil {
		t.Fatalf("gateway /stream/stats: %v", err)
	}
	var st gateway.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("gateway stats JSON: %v", err)
	}
	if st.Requests < 2 || st.BytesServed == 0 {
		t.Fatalf("gateway stats = %+v, want >=2 requests and nonzero bytes", st)
	}
	t.Logf("gateway: verified upstream chunk %d and store chunk %d (%d chunks advertised, %d bytes served)",
		farChunk, newest, len(have), st.BytesServed)
}

// scrapeObservability polls a running node's /metrics and /status until the
// node is past warmup and traffic counters are nonzero, then asserts the
// exposition is well-formed and the status document is coherent. It must
// finish before the node's -duration elapses, so it retries quickly.
func scrapeObservability(t *testing.T, addr string) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	get := func(path string) (string, string, error) {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			return "", "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", "", fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type"), nil
	}

	// The per-kind counters only emit samples once nonzero, so polling for
	// the full sample set doubles as the nonzero-traffic check. Polling (not
	// a single scrape after one counter goes nonzero) matters on a loaded
	// machine: a starved node can have received serves before it ever sent
	// its first propose.
	wantSamples := []string{
		"lifting_verification_overhead_ratio ",
		"lifting_duplicate_chunks_total",
		"lifting_useful_chunks_total ",
		`lifting_sent_messages_total{kind="propose"} `,
		`lifting_recv_messages_total{kind="serve"} `,
		"lifting_protocol_bytes_total ",
		"lifting_verification_bytes_total ",
		"lifting_serve_latency_seconds_count ",
	}
	missing := func(s string) string {
		for _, name := range wantSamples {
			if !strings.Contains(s, name) {
				return name
			}
		}
		return ""
	}
	var exposition, ctype string
	deadline := time.Now().Add(scenDur)
	for {
		var err error
		exposition, ctype, err = get("/metrics")
		if err == nil && missing(exposition) == "" &&
			!strings.Contains(exposition, "\nlifting_useful_chunks_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics incomplete before deadline (err=%v, first missing %q):\n%s",
				err, missing(exposition), exposition)
		}
		time.Sleep(100 * time.Millisecond)
	}

	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	// Well-formed text exposition: every line is a comment or `name[{labels}]
	// value` with a parseable value.
	for _, line := range strings.Split(strings.TrimRight(exposition, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("malformed exposition line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("unparseable sample value in line %q: %v", line, err)
		}
	}

	status, sctype, err := get("/status")
	if err != nil {
		t.Fatalf("/status: %v", err)
	}
	if !strings.HasPrefix(sctype, "application/json") {
		t.Errorf("/status Content-Type = %q", sctype)
	}
	var st struct {
		NodeID        uint32  `json:"node_id"`
		Period        uint64  `json:"period"`
		Members       int     `json:"members"`
		PeerBookSize  int     `json:"peer_book_size"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(status), &st); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, status)
	}
	if st.NodeID != 1 {
		t.Errorf("/status node_id = %d, want 1", st.NodeID)
	}
	if st.Members != scenN {
		t.Errorf("/status members = %d, want %d", st.Members, scenN)
	}
	// The book carries the 4 configured peers plus our own bound address,
	// which the transport registers when the node joins.
	if st.PeerBookSize != scenN {
		t.Errorf("/status peer_book_size = %d, want %d", st.PeerBookSize, scenN)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("/status uptime_seconds = %v", st.UptimeSeconds)
	}
	t.Logf("scraped /metrics (%d bytes) and /status: period %d, %d members",
		len(exposition), st.Period, st.Members)
}
