// Command lifting-node runs ONE LiFTinG gossip node as an OS process over
// real UDP sockets: the deployment unit of the reproduction. A scenario
// becomes N processes on loopback or N machines on a LAN, each started as
//
//	lifting-node -id 3 -listen 127.0.0.1:9003 \
//	    -peers "0=127.0.0.1:9000,1=127.0.0.1:9001,2=127.0.0.1:9002" \
//	    -duration 30s -seed 7
//
// Every process of a deployment must agree on -seed, -period, -f, -m, -eta
// and the membership implied by -peers: the manager assignment, the
// per-node random streams and the score thresholds are all derived from
// them. Node 0 is the source by convention; start it with -source and it
// injects the stream, which then reaches everyone else only over the wire.
//
// On completion a process started with -report performs decentralized
// min-vote score reads of the whole membership over UDP and prints one
//
//	SCORE <id> <score> <expelled> <replies>
//
// line per node, then exits 0. SIGINT/SIGTERM cancel the daemon's context,
// which shuts the node down early but cleanly (pending timers cancelled,
// sockets closed, in-flight callbacks drained) — the same cancellation path
// the experiment API exposes programmatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	goruntime "runtime"
	"sort"
	"sync"
	"syscall"
	"time"

	"lifting/internal/chaos"
	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gateway"
	"lifting/internal/gossip"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/obs"
	"lifting/internal/reputation"
	"lifting/internal/stream"
	"lifting/internal/transport"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run executes the daemon until ctx is cancelled or the deployment duration
// elapses; interrupt, if non-nil, also triggers early shutdown when closed
// (tests use it in place of a signal).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, interrupt <-chan struct{}) int {
	fs := flag.NewFlagSet("lifting-node", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id       = fs.Uint("id", 0, "this node's id")
		listen   = fs.String("listen", "127.0.0.1:0", "UDP address to bind")
		peers    = fs.String("peers", "", "bootstrap peer addresses: comma-separated id=host:port")
		source   = fs.Bool("source", false, "this node injects the stream (node 0 by convention)")
		duration = fs.Duration("duration", 30*time.Second, "how long to stream/run before reporting")
		warmup   = fs.Duration("warmup", 500*time.Millisecond, "delay before the stream starts, so peers can bind")
		seed     = fs.Uint64("seed", 7, "deployment-wide random seed (must match on every process)")
		f        = fs.Int("f", 7, "gossip fanout")
		period   = fs.Duration("period", 500*time.Millisecond, "gossip period Tg")
		m        = fs.Int("m", 10, "reputation managers per node")
		eta      = fs.Float64("eta", -1e9, "expulsion threshold on normalized scores")
		grace    = fs.Int("grace", 8, "periods before eta applies")
		pdcc     = fs.Float64("pdcc", 1, "direct cross-check probability")
		loss     = fs.Float64("loss", 0, "modelled extra UDP loss on top of the real network")
		bitrate  = fs.Int("bitrate", 674_000, "stream bitrate, bits per second")
		payload  = fs.Int("payload", 1316, "chunk payload size, bytes")
		freeride = fs.Float64("freeride", 0, "degree of freeriding in all three dimensions (0 = honest)")
		report   = fs.Bool("report", false, "after the run, read every node's score over the wire and print SCORE lines")
		soak     = fs.Bool("soak", false, "replay the deployment fault schedule (derived from -seed, -duration, -period and the membership) against this process's network model")
		httpAddr = fs.String("http", "", "serve /metrics, /status and /debug/pprof/ on this address (empty = disabled)")
		gwAddr   = fs.String("gateway", "", "serve the HTTP stream gateway (/stream/chunk/{id}) on this address (empty = disabled)")
		gwSource = fs.String("gateway-source", "", "upstream gateway base URL for chunks this node does not hold (e.g. the source's gateway)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "lifting-node: unexpected arguments %v\n", fs.Args())
		return 2
	}

	peerAddrs, err := transport.ParsePeers(*peers)
	if err != nil {
		fmt.Fprintf(stderr, "lifting-node: %v\n", err)
		return 2
	}
	self := msg.NodeID(*id)
	if _, dup := peerAddrs[self]; dup {
		// A full membership file may include ourselves; our own address
		// comes from -listen.
		delete(peerAddrs, self)
	}
	if len(peerAddrs) == 0 {
		fmt.Fprintf(stderr, "lifting-node: -peers must name at least one other node\n")
		return 2
	}

	book := transport.NewBook()
	members := []msg.NodeID{self}
	for pid, addr := range peerAddrs {
		if err := book.Set(pid, addr); err != nil {
			fmt.Fprintf(stderr, "lifting-node: %v\n", err)
			return 2
		}
		members = append(members, pid)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	collector := metrics.NewCollector()
	rt := transport.New(transport.Options{
		Seed:      *seed ^ uint64(self), // per-process loss/jitter draws
		Book:      book,
		Collector: collector,
	})
	if *loss > 0 {
		rt.SetConditions(self, net.Uniform(*loss, 0))
	}
	bound, err := rt.AddNode(self, *listen)
	if err != nil {
		fmt.Fprintf(stderr, "lifting-node: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "LISTEN %d %s\n", self, bound)

	// -soak: every process derives the identical fault plan from the flags
	// the deployment already shares, then replays it against its own local
	// network model. The lowest id is the source by convention and is never
	// a fault target — a faulted source would explain any oracle failure.
	var plan *chaos.Plan
	if *soak {
		plan = chaos.Generate(chaos.DeploymentConfig(*seed, *duration, *period, members[1:]))
		fmt.Fprintf(stdout, "SOAK %d events=%d skew=%.4f\n", self, len(plan.Events), plan.SkewFactor(self))
	}

	var behavior gossip.Behavior
	if *freeride > 0 {
		behavior = freerider.Degree{Delta1: *freeride, Delta2: *freeride, Delta3: *freeride}
	}
	clockSkew := 0.0
	if plan != nil {
		clockSkew = plan.SkewFactor(self)
	}
	host := cluster.NewNodeHost(rt, cluster.NodeOptions{
		ID:      self,
		Members: members,
		Seed:    *seed,
		Gossip: gossip.Config{
			F:              *f,
			Period:         *period,
			ChunkPayload:   *payload,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              *f,
			Period:         *period,
			Pdcc:           *pdcc,
			HistoryPeriods: 50,
			Gamma:          8.95,
			Eta:            *eta,
		},
		Rep:          reputation.Config{M: *m, Eta: *eta, GracePeriods: *grace},
		Stream:       stream.Config{BitrateBps: *bitrate, ChunkPayload: *payload},
		LiFTinG:      true,
		Source:       *source,
		Behavior:     behavior,
		ExpectedLoss: *loss,
		OnExpel: func(target msg.NodeID, reason msg.BlameReason) {
			fmt.Fprintf(stdout, "EXPEL %d %s\n", target, reason)
		},
		Collector: collector,
		ClockSkew: clockSkew,
	})

	if *httpAddr != "" {
		reg := metrics.NewRegistry()
		collector.Register(reg)
		// Soak-harness gauges: memory growth and score-period drift are the
		// two things a long-running scrape watches for. Heap-in-use is the
		// dependency-free stand-in for RSS; drift is measured in periods
		// against the process's own wall clock, so a skewed clock (or a
		// stalled tick loop) shows up as a linear ramp.
		reg.NewGaugeFunc("lifting_process_heap_bytes",
			"process heap in use (runtime.ReadMemStats HeapAlloc)",
			func() float64 {
				var ms goruntime.MemStats
				goruntime.ReadMemStats(&ms)
				return float64(ms.HeapAlloc)
			})
		procStart := time.Now()
		tg := *period
		reg.NewGaugeFunc("lifting_period_drift_periods",
			"local score-period clock minus wall-clock expectation, in periods",
			func() float64 {
				expected := time.Since(procStart).Seconds() / tg.Seconds()
				return float64(host.Period()) - expected
			})
		srv := obs.New(reg, func() obs.Status {
			st := obs.Status{
				NodeID:          uint32(self),
				Period:          uint64(host.Period()),
				MembershipEpoch: host.Dir.Epoch(),
				Members:         len(host.Dir.All()),
				PeerBookSize:    len(book.IDs()),
			}
			for target := range host.Expelled() {
				st.Expelled = append(st.Expelled, uint32(target))
			}
			sort.Slice(st.Expelled, func(i, j int) bool { return st.Expelled[i] < st.Expelled[j] })
			for target, score := range host.LocalScores() {
				st.Scores = append(st.Scores, obs.Score{Node: uint32(target), Score: score})
			}
			sort.Slice(st.Scores, func(i, j int) bool { return st.Scores[i].Node < st.Scores[j].Node })
			return st
		})
		httpBound, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lifting-node: %v\n", err)
			rt.Close()
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "HTTP %d %s\n", self, httpBound)
	}

	if *gwAddr != "" {
		gwOpts := gateway.Options{Store: host.Store, Upstream: *gwSource}
		if *source {
			// Only the source's gateway regenerates arbitrary chunks: it
			// knows the canonical stream. Everyone else serves what the
			// gossip plane delivered, falling back to -gateway-source.
			gwOpts.Origin = host.Content
		}
		gw := gateway.New(gwOpts)
		gwBound, err := gw.Start(*gwAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lifting-node: %v\n", err)
			rt.Close()
			return 1
		}
		defer gw.Close()
		fmt.Fprintf(stdout, "GATEWAY %d %s\n", self, gwBound)
	}

	host.Start()
	if plan != nil {
		newSoakPlane(rt, stdout, self, members, plan, *loss).schedule(*warmup)
	}
	if *source {
		rt.After(*warmup, func() { host.StartStream(*duration) })
	}

	// The run is one context-bounded Run on the transport runtime: signals
	// cancel the context (see main), the test interrupt channel folds into
	// the same path.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if interrupt != nil {
		go func() {
			select {
			case <-interrupt:
				cancel()
			case <-runCtx.Done():
			}
		}()
	}
	interrupted := false
	if err := rt.Run(runCtx, *warmup+*duration+2**period); err != nil {
		fmt.Fprintf(stderr, "lifting-node: %v, shutting down\n", err)
		interrupted = true
	}

	if *report && !interrupted {
		reads := host.ReadScores(members)
		ids := make([]msg.NodeID, 0, len(reads))
		for rid := range reads {
			ids = append(ids, rid)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, rid := range ids {
			r := reads[rid]
			fmt.Fprintf(stdout, "SCORE %d %.6f %t %d\n", rid, r.Score, r.Expelled, r.Replies)
		}
	}

	rt.Close()
	fmt.Fprintf(stdout, "DONE %d\n", self)
	return 0
}

// soakPlane replays a chaos.Plan against ONE process's local network model.
// Every process derives the identical plan from the deployment's shared
// flags and replays it on its own clock, so the fleet agrees on the fault
// timeline up to process start skew (boundaries are fuzzy by at most the
// stagger between process launches, which blame compensation absorbs).
//
// A Crash here is a network-level blackhole — both directions dropped at
// every process, including the victim's own — while the victim's process
// keeps running with its protocol state intact. That is deliberately the
// conservative half of a crash: the state-losing half (rebuild, manager
// score re-adoption) is exercised by the in-process soak experiment, where
// the harness can actually tear a node down. The reputation contract under
// test is the same in both: the blackholed node must not be expelled.
type soakPlane struct {
	rt      *transport.Runtime
	out     io.Writer
	self    msg.NodeID
	members []msg.NodeID
	plan    *chaos.Plan
	base    map[msg.NodeID]net.Conditions

	mu       sync.Mutex
	down     map[msg.NodeID]bool
	minority map[msg.NodeID]bool
	split    bool
	burst    map[msg.NodeID]float64
}

// newSoakPlane builds the per-member baseline: the modelled -loss on our own
// inbound path (the same thing the non-soak path sets), plus the plan's
// standing duplication/reordering on every member.
func newSoakPlane(rt *transport.Runtime, out io.Writer, self msg.NodeID, members []msg.NodeID, plan *chaos.Plan, loss float64) *soakPlane {
	s := &soakPlane{
		rt:      rt,
		out:     out,
		self:    self,
		members: append([]msg.NodeID(nil), members...),
		plan:    plan,
		base:    make(map[msg.NodeID]net.Conditions, len(members)),
		down:    map[msg.NodeID]bool{},
		burst:   map[msg.NodeID]float64{},
	}
	for _, id := range members {
		c := net.Conditions{
			DupProb:      plan.DupProb,
			ReorderProb:  plan.ReorderProb,
			ReorderDelay: plan.ReorderDelay,
		}
		if id == self {
			c.LossIn = loss
		}
		s.base[id] = c
	}
	return s
}

// schedule installs the baseline now and every plan event at offset+ev.At on
// the transport's harness timer.
func (s *soakPlane) schedule(offset time.Duration) {
	s.apply()
	for _, ev := range s.plan.Events {
		ev := ev
		s.rt.After(offset+ev.At, func() { s.fire(ev) })
	}
}

func (s *soakPlane) fire(ev chaos.Event) {
	s.mu.Lock()
	switch ev.Kind {
	case chaos.Crash:
		for _, id := range ev.Nodes {
			s.down[id] = true
		}
	case chaos.Restart:
		for _, id := range ev.Nodes {
			delete(s.down, id)
		}
	case chaos.Partition:
		s.split = true
		s.minority = make(map[msg.NodeID]bool, len(ev.Nodes))
		for _, id := range ev.Nodes {
			s.minority[id] = true
		}
	case chaos.Heal:
		s.split = false
		s.minority = nil
	case chaos.LossBurst:
		for _, id := range ev.Nodes {
			s.burst[id] = ev.Loss
		}
	case chaos.LossHeal:
		for _, id := range ev.Nodes {
			delete(s.burst, id)
		}
	}
	s.mu.Unlock()
	s.apply()
	fmt.Fprintf(s.out, "CHAOS %d %s %v\n", s.self, ev.Kind, ev.Nodes)
}

// apply rebuilds every member's conditions from the baseline plus the
// current fault state. Conditions compose: a node can sit in the partition
// minority AND under a loss burst AND be blackholed.
func (s *soakPlane) apply() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.members {
		c := s.base[id]
		if s.split {
			if s.minority[id] {
				c.PartitionGroup = 2
			} else {
				c.PartitionGroup = 1
			}
		}
		if extra, ok := s.burst[id]; ok {
			c.LossIn = 1 - (1-c.LossIn)*(1-extra)
		}
		if s.down[id] {
			c.Down = true
		}
		s.rt.SetConditions(id, c)
	}
}
