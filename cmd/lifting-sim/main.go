// Command lifting-sim regenerates the tables and figures of the LiFTinG
// paper (Guerraoui et al., Middleware 2010) from the reproduction library.
//
// Usage:
//
//	lifting-sim [flags] <experiment> [flags]
//	lifting-sim list [-json]
//	lifting-sim -describe <experiment>
//
// The experiment inventory lives in the registry of internal/experiment;
// `lifting-sim list` prints it (name, paper artifact, description, default
// parameters), `all` runs every registered experiment, and `-describe`
// explains one. Output is ASCII tables by default; `-json` emits one
// structured JSON document (schema `lifting.experiments/v1`) with every
// table as data, headline metrics, and the pass/fail verdict — the format
// CI and tooling consume. Runs are cancellable: SIGINT/SIGTERM aborts the
// current experiment promptly (sockets closed, goroutines drained) and
// exits 130. A failed experiment verdict (scale, matrix oracles) exits 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lifting/internal/experiment"
	"lifting/internal/runtime"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:]))
}

// stdoutW/stderrW are where results and errors go; tests swap them for
// buffers.
var (
	stdoutW io.Writer = os.Stdout
	stderrW io.Writer = os.Stderr
)

// asciiObserver streams each table as soon as its experiment produces it —
// the incremental output long runs want.
type asciiObserver struct{ w io.Writer }

func (o asciiObserver) OnTable(t *experiment.Table) { t.Render(o.w) }

func run(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("lifting-sim", flag.ContinueOnError)
	fs.SetOutput(stderrW)
	var (
		n        = fs.Int("n", 0, "override system size (0 = experiment default)")
		seed     = fs.Uint64("seed", 0, "override random seed (0 = experiment default)")
		duration = fs.Duration("duration", 0, "override streamed duration (cluster experiments)")
		pdcc     = fs.Float64("pdcc", -1, "override pdcc (fig14; -1 = default)")
		periods  = fs.Int("periods", 0, "override score periods r (fig11/fig12)")
		delta    = fs.Float64("delta", -1, "override degree of freeriding (fig11; -1 = default 0.1)")
		noComp   = fs.Bool("no-compensation", false, "ablation: disable wrongful-blame compensation (fig10/fig11)")
		quick    = fs.Bool("quick", false, "shrink paper-scale experiments for a fast pass")
		workers  = fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		shards   = fs.Int("shards", -1, "discrete-event engine shards for eligible experiments (-1 = one per CPU, 0 = legacy serial engine; results are identical for any count >= 1)")
		backendF = fs.String("backend", "sim", "execution backend: sim, live or udp (matrix accepts a comma list or 'all')")
		filter   = fs.String("filter", "", "matrix: run only scenarios whose name contains this substring")
		jsonOut  = fs.Bool("json", false, "emit one structured JSON document instead of ASCII tables")
		describe = fs.String("describe", "", "describe the named experiment and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lifting-sim [flags] <experiment> [flags]\nexperiments: %s\n",
			strings.Join(append(experiment.Names(), "all", "list"), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *describe != "" {
		return describeExperiment(*describe, *jsonOut)
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	name := strings.ToLower(fs.Arg(0))
	// Flags may also follow the experiment name (`lifting-sim scale -n
	// 10000`): re-parse the remainder with the same flag set.
	if rest := fs.Args()[1:]; len(rest) > 0 {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
	}
	if name == "list" {
		return list(*jsonOut)
	}

	// Resolve the backend set. A multi-backend set (a comma list or "all")
	// only means something to experiments that declare MultiBackend; every
	// other experiment — including the ones inside `all` — takes exactly
	// one.
	var backends []runtime.Kind
	if *backendF != "all" {
		for _, b := range strings.Split(*backendF, ",") {
			k, err := runtime.ParseKind(strings.TrimSpace(b))
			if err != nil {
				fmt.Fprintf(stderrW, "lifting-sim: %v\n", err)
				return 2
			}
			backends = append(backends, k)
		}
	}

	var batch []experiment.Experiment
	if name == "all" {
		batch = experiment.Experiments()
	} else {
		e, ok := experiment.Lookup(name)
		if !ok {
			fmt.Fprintf(stderrW, "lifting-sim: unknown experiment %q (experiments: %s)\n",
				name, strings.Join(append(experiment.Names(), "all", "list"), ", "))
			fs.Usage()
			return 2
		}
		batch = []experiment.Experiment{e}
	}
	if len(backends) != 1 {
		for _, e := range batch {
			if !e.MultiBackend {
				fmt.Fprintf(stderrW, "lifting-sim: experiment %q takes a single -backend\n", name)
				return 2
			}
		}
	}

	params := experiment.Params{
		N:              *n,
		Seed:           *seed,
		Duration:       *duration,
		Periods:        *periods,
		Delta:          *delta,
		Pdcc:           *pdcc,
		Quick:          *quick,
		Workers:        *workers,
		Shards:         *shards,
		Backends:       backends,
		Filter:         *filter,
		NoCompensation: *noComp,
	}

	var obs experiment.Observer
	if !*jsonOut {
		obs = asciiObserver{stdoutW}
	}
	var results []*experiment.Result
	failed := false
	for _, e := range batch {
		start := time.Now()
		res, err := e.Run(ctx, params, obs)
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(stderrW, "lifting-sim: %s interrupted: %v\n", e.Name, err)
			return 130
		case err != nil:
			fmt.Fprintf(stderrW, "lifting-sim: %s: %v\n", e.Name, err)
			return 1
		}
		for _, f := range res.Verdict.Failures {
			fmt.Fprintf(stderrW, "lifting-sim: %s\n", f)
		}
		if !res.Verdict.Pass {
			failed = true
		}
		if *jsonOut {
			results = append(results, res)
		} else {
			fmt.Fprintf(stdoutW, "(%s finished in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		if err := experiment.NewDocument(results).Encode(stdoutW); err != nil {
			fmt.Fprintf(stderrW, "lifting-sim: encoding results: %v\n", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

// list prints the experiment inventory from the registry: plain
// tab-separated lines, or the full entries as JSON.
func list(jsonOut bool) int {
	if jsonOut {
		type entry struct {
			Name          string            `json:"name"`
			Paper         string            `json:"paper"`
			Describe      string            `json:"describe"`
			MultiBackend  bool              `json:"multi_backend,omitempty"`
			DefaultParams experiment.Params `json:"default_params"`
		}
		entries := make([]entry, 0)
		for _, e := range experiment.Experiments() {
			entries = append(entries, entry{e.Name, e.Paper, e.Describe, e.MultiBackend, e.DefaultParams})
		}
		return encodeJSON(entries)
	}
	for _, e := range experiment.Experiments() {
		fmt.Fprintf(stdoutW, "%s\t%s\t%s\n", e.Name, e.Paper, e.Describe)
	}
	return 0
}

// describeExperiment explains one registry entry, defaults included.
func describeExperiment(name string, jsonOut bool) int {
	e, ok := experiment.Lookup(name)
	if !ok {
		fmt.Fprintf(stderrW, "lifting-sim: unknown experiment %q (experiments: %s)\n",
			name, strings.Join(experiment.Names(), ", "))
		return 2
	}
	if jsonOut {
		return encodeJSON(struct {
			Name          string            `json:"name"`
			Paper         string            `json:"paper"`
			Describe      string            `json:"describe"`
			MultiBackend  bool              `json:"multi_backend,omitempty"`
			DefaultParams experiment.Params `json:"default_params"`
		}{e.Name, e.Paper, e.Describe, e.MultiBackend, e.DefaultParams})
	}
	fmt.Fprintf(stdoutW, "%s — %s\n  %s\n", e.Name, e.Paper, e.Describe)
	fmt.Fprintf(stdoutW, "  defaults: n=%d seed=%d duration=%v periods=%d delta=%v pdcc=%v\n",
		e.DefaultParams.N, e.DefaultParams.Seed, e.DefaultParams.Duration,
		e.DefaultParams.Periods, e.DefaultParams.Delta, e.DefaultParams.Pdcc)
	return 0
}

func encodeJSON(v any) int {
	enc := json.NewEncoder(stdoutW)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(stderrW, "lifting-sim: %v\n", err)
		return 1
	}
	return 0
}
