// Command lifting-sim regenerates the tables and figures of the LiFTinG
// paper (Guerraoui et al., Middleware 2010) from the reproduction library.
//
// Usage:
//
//	lifting-sim [flags] <experiment>
//
// Experiments: fig1, fig10, fig11, fig12, fig13, fig14, eq7, table3,
// table5, ablate, churn, scale, matrix, all. See EXPERIMENTS.md for the
// mapping to the paper and the expected shapes. churn is the
// beyond-the-paper workload: nodes joining and leaving mid-stream; run it
// with -backend live to execute on the goroutine runtime instead of the
// discrete-event engine, or with -backend udp to run every node on its own
// real UDP socket (loopback, single process). scale runs the
// freerider-expulsion scenario at a 10k-node population (`lifting-sim scale
// -n 10000`, the default n) and asserts the 300-node baseline's verdict;
// exits nonzero on a verdict mismatch. matrix sweeps every §4/§5 attack
// scenario against its statistical oracle (`lifting-sim matrix [-quick]
// [-backend sim,live,udp|all] [-filter name]`) and exits nonzero on any
// oracle failure. For one-node-per-process deployments see lifting-node.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/experiment"
	"lifting/internal/runtime"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// stderrW is where usage and errors go; tests swap it for a buffer.
var stderrW io.Writer = os.Stderr

// allBatch is what `all` runs, cheap analytic experiments first and the
// long cluster streams (fig14, fig1) last.
var allBatch = []string{
	"fig10", "fig11", "fig12", "fig13", "eq7", "ablate",
	"table3", "table5", "churn", "scale", "matrix", "fig14", "fig1",
}

// experimentNames is every registered experiment, printed by usage and by
// the unknown-name error: the batch plus `all` itself. A test pins this
// list against the dispatch, so help cannot silently go stale.
var experimentNames = append(append([]string{}, allBatch...), "all")

func run(args []string) int {
	fs := flag.NewFlagSet("lifting-sim", flag.ContinueOnError)
	fs.SetOutput(stderrW)
	var (
		n        = fs.Int("n", 0, "override system size (0 = experiment default)")
		seed     = fs.Uint64("seed", 0, "override random seed (0 = experiment default)")
		duration = fs.Duration("duration", 0, "override streamed duration (cluster experiments)")
		pdcc     = fs.Float64("pdcc", -1, "override pdcc (fig14; -1 = default)")
		periods  = fs.Int("periods", 0, "override score periods r (fig11/fig12)")
		delta    = fs.Float64("delta", -1, "override degree of freeriding (fig11; -1 = default 0.1)")
		noComp   = fs.Bool("no-compensation", false, "ablation: disable wrongful-blame compensation (fig10/fig11)")
		quick    = fs.Bool("quick", false, "shrink paper-scale experiments for a fast pass")
		workers  = fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		backendF = fs.String("backend", "sim", "execution backend: sim, live or udp (matrix accepts a comma list or 'all')")
		filter   = fs.String("filter", "", "matrix: run only scenarios whose name contains this substring")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lifting-sim [flags] <experiment> [flags]\nexperiments: %s\n",
			strings.Join(experimentNames, ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	name := strings.ToLower(fs.Arg(0))
	// Flags may also follow the experiment name (`lifting-sim scale -n
	// 10000`): re-parse the remainder with the same flag set.
	if rest := fs.Args()[1:]; len(rest) > 0 {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
	}
	// The matrix takes a backend *set*; every other experiment a single one.
	var matrixBackends []runtime.Kind
	if *backendF != "all" {
		for _, b := range strings.Split(*backendF, ",") {
			k, err := runtime.ParseKind(strings.TrimSpace(b))
			if err != nil {
				fmt.Fprintf(stderrW, "lifting-sim: %v\n", err)
				return 2
			}
			matrixBackends = append(matrixBackends, k)
		}
	}
	backend := runtime.KindSim
	if len(matrixBackends) == 1 {
		backend = matrixBackends[0]
	} else if name != "matrix" {
		// A multi-backend set only means something to the matrix; every
		// other experiment (including the ones inside `all`) would
		// silently fall back to sim.
		fmt.Fprintf(stderrW, "lifting-sim: experiment %q takes a single -backend\n", name)
		return 2
	}

	scoreCfg := func() experiment.ScoreConfig {
		cfg := experiment.DefaultScoreConfig()
		if *quick {
			cfg.N = 2000
			cfg.Freeriders = 200
		}
		if *n > 0 {
			cfg.N = *n
			cfg.Freeriders = *n / 10
		}
		if *seed > 0 {
			cfg.Seed = *seed
		}
		if *periods > 0 {
			cfg.Periods = *periods
		}
		if *delta >= 0 {
			cfg.Delta = analysis.Uniform(*delta)
		}
		cfg.NoCompensation = *noComp
		cfg.Workers = *workers
		return cfg
	}
	plCfg := func() experiment.PlanetLabConfig {
		p := experiment.DefaultPlanetLabConfig()
		if *quick {
			p.N = 100
			p.Duration = 20 * time.Second
		}
		if *n > 0 {
			p.N = *n
		}
		if *seed > 0 {
			p.Seed = *seed
		}
		if *duration > 0 {
			p.Duration = *duration
		}
		if *pdcc >= 0 {
			p.Pdcc = *pdcc
		}
		return p
	}

	verdictFailed := false
	runOne := func(which string) bool {
		start := time.Now()
		switch which {
		case "fig1":
			p := plCfg()
			if p.Duration == experiment.DefaultPlanetLabConfig().Duration && *duration == 0 {
				p.Duration = 45 * time.Second
			}
			var lags []time.Duration
			for s := 0; s <= int(p.Duration/time.Second); s += 5 {
				lags = append(lags, time.Duration(s)*time.Second)
			}
			for _, sc := range []experiment.Fig1Scenario{
				experiment.Fig1NoFreeriders,
				experiment.Fig1Freeriders,
				experiment.Fig1FreeridersLiFTinG,
			} {
				tab, _ := experiment.Fig1(p, sc, lags)
				tab.Render(os.Stdout)
			}
		case "fig10":
			tab, _ := experiment.Fig10(scoreCfg())
			tab.Render(os.Stdout)
		case "fig11":
			tab, _ := experiment.Fig11(scoreCfg())
			tab.Render(os.Stdout)
		case "fig12":
			samples := 4000
			if *quick {
				samples = 1000
			}
			tab, _ := experiment.Fig12(scoreCfg(), nil, samples)
			tab.Render(os.Stdout)
		case "fig13":
			cfg := experiment.DefaultEntropyConfig()
			if *quick {
				cfg.N = 2000
				cfg.SampleNodes = 500
			}
			if *n > 0 {
				cfg.N = *n
			}
			if *seed > 0 {
				cfg.Seed = *seed
			}
			tab, _ := experiment.Fig13(cfg)
			tab.Render(os.Stdout)
		case "fig14":
			p := plCfg()
			for _, pd := range fig14Pdccs(*pdcc) {
				p.Pdcc = pd
				tab, _ := experiment.Fig14(p, nil)
				tab.Render(os.Stdout)
			}
		case "eq7":
			experiment.Eq7(8.95, 600, nil).Render(os.Stdout)
		case "ablate":
			cfg := experiment.DefaultAblationConfig()
			if *quick {
				cfg.ScoreN = 500
				cfg.ClusterN = 50
				cfg.Duration = 8 * time.Second
			}
			if *seed > 0 {
				cfg.Seed = *seed
			}
			experiment.Ablations(cfg).Render(os.Stdout)
		case "table3":
			experiment.Table3(plCfg(), nil).Render(os.Stdout)
		case "table5":
			experiment.Table5(plCfg(), nil, nil).Render(os.Stdout)
		case "scale":
			cfg := experiment.DefaultScaleConfig()
			if *quick {
				cfg.N = 1000
			}
			if *n > 0 {
				cfg.N = *n
			}
			if *seed > 0 {
				cfg.Seed = *seed
			}
			if *duration > 0 {
				cfg.Duration = *duration
			}
			tab, res := experiment.Scale(cfg)
			tab.Render(os.Stdout)
			// The gate is the expected verdict at BOTH populations, not mere
			// agreement: two identically-broken runs must still fail.
			for _, r := range []experiment.ScaleRun{res.Baseline, res.Target} {
				if !r.CohortExpelled() || !r.HonestClean() {
					fmt.Fprintf(stderrW, "lifting-sim: scale N=%d verdict %q, want cohort expelled and honest clean\n",
						r.N, r.Verdict())
					verdictFailed = true
				}
			}
			if !res.Agree {
				fmt.Fprintf(stderrW, "lifting-sim: scale verdict mismatch: baseline %q vs N=%d %q\n",
					res.Baseline.Verdict(), res.Target.N, res.Target.Verdict())
				verdictFailed = true
			}
		case "matrix":
			cfg := experiment.MatrixConfig{
				Quick:    *quick,
				Backends: matrixBackends,
				Filter:   *filter,
				Seed:     *seed,
				Workers:  *workers,
			}
			tab, res := experiment.Matrix(cfg)
			tab.Render(os.Stdout)
			if res.ScenariosRun == 0 {
				// Either the filter matched nothing or the backend set
				// intersected every matching scenario away; name both.
				fmt.Fprintf(stderrW, "lifting-sim: matrix ran no scenario (filter %q, backends %s; scenarios: %s)\n",
					*filter, *backendF, strings.Join(experiment.ScenarioNames(), ", "))
				verdictFailed = true
			}
			for _, r := range res.Rows {
				if len(r.Failures) > 0 {
					fmt.Fprintf(stderrW, "lifting-sim: matrix %s on %s failed its oracle: %s\n",
						r.Scenario, r.Backend, strings.Join(r.Failures, "; "))
				}
			}
			if res.Failed {
				verdictFailed = true
			}
		case "churn":
			cfg := experiment.DefaultChurnConfig()
			cfg.Backend = backend
			if *quick {
				cfg.N = 50
				cfg.Joins, cfg.Leaves = 6, 6
				cfg.Duration = 8 * time.Second
			}
			if *n > 0 {
				cfg.N = *n
			}
			if *seed > 0 {
				cfg.Seed = *seed
			}
			if *duration > 0 {
				cfg.Duration = *duration
			}
			tab, _ := experiment.Churn(cfg)
			tab.Render(os.Stdout)
		default:
			return false
		}
		fmt.Printf("(%s finished in %v)\n\n", which, time.Since(start).Round(time.Millisecond))
		return true
	}

	if name == "all" {
		for _, which := range allBatch {
			if !runOne(which) {
				fmt.Fprintf(stderrW, "lifting-sim: internal error running %s\n", which)
				return 1
			}
		}
		if verdictFailed {
			return 1
		}
		return 0
	}
	if !runOne(name) {
		fmt.Fprintf(stderrW, "lifting-sim: unknown experiment %q (experiments: %s)\n",
			name, strings.Join(experimentNames, ", "))
		fs.Usage()
		return 2
	}
	if verdictFailed {
		return 1
	}
	return 0
}

// fig14Pdccs returns the pdcc values to sweep: the paper shows 1 and 0.5.
func fig14Pdccs(override float64) []float64 {
	if override >= 0 {
		return []float64{override}
	}
	return []float64{1, 0.5}
}
