package main

import "testing"

func TestRunFastExperiments(t *testing.T) {
	// The analytic experiments complete in milliseconds; run them for real.
	for _, args := range [][]string{
		{"eq7"},
		{"-quick", "fig10"},
		{"-quick", "-periods", "10", "fig11"},
		{"-quick", "-n", "500", "fig13"},
	} {
		if code := run(args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

func TestRunChurnAndWorkers(t *testing.T) {
	for _, args := range [][]string{
		{"-quick", "-duration", "4s", "-n", "30", "churn"},
		{"-quick", "-workers", "4", "fig10"},
		{"-quick", "-workers", "1", "fig10"},
	} {
		if code := run(args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

// TestRunChurnOverUDP runs the churn workload end-to-end on the UDP backend:
// every node gets its own loopback socket in this process, and joins bind
// new sockets mid-run. Duration is wall-clock here, so the scenario is kept
// small.
func TestRunChurnOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("udp churn streams in wall-clock time")
	}
	args := []string{"-quick", "-backend", "udp", "-duration", "3s", "-n", "24", "churn"}
	if code := run(args); code != 0 {
		t.Fatalf("run(%v) = %d, want 0", args, code)
	}
}

// TestRunScale runs the scale workload end-to-end at a reduced target
// population, in both flag orders (`-n 600 scale` and `scale -n 600` — the
// documented invocation is `lifting-sim scale -n 10000`).
func TestRunScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale runs a full baseline + target simulation")
	}
	for _, args := range [][]string{
		{"-n", "600", "scale"},
		{"scale", "-n", "600"},
	} {
		if code := run(args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if code := run([]string{"no-such-experiment"}); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if code := run([]string{"-backend", "quantum", "churn"}); code == 0 {
		t.Fatal("unknown backend accepted")
	}
	if code := run([]string{}); code == 0 {
		t.Fatal("missing experiment accepted")
	}
	if code := run([]string{"-bogus-flag", "fig10"}); code == 0 {
		t.Fatal("bad flag accepted")
	}
}

func TestRunOverrides(t *testing.T) {
	if code := run([]string{"-seed", "9", "-delta", "0.2", "-periods", "5", "-n", "400", "fig11"}); code != 0 {
		t.Fatal("overrides rejected")
	}
	if code := run([]string{"-no-compensation", "-n", "300", "-periods", "3", "fig11"}); code != 0 {
		t.Fatal("ablation flag rejected")
	}
}
