package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"lifting/internal/experiment"
)

// capture runs the driver with stdout and stderr swapped for buffers.
func capture(t *testing.T, ctx context.Context, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	oldOut, oldErr := stdoutW, stderrW
	stdoutW, stderrW = &out, &errBuf
	defer func() { stdoutW, stderrW = oldOut, oldErr }()
	code = run(ctx, args)
	return code, out.String(), errBuf.String()
}

func TestRunFastExperiments(t *testing.T) {
	// The analytic experiments complete in milliseconds; run them for real.
	for _, args := range [][]string{
		{"eq7"},
		{"-quick", "fig10"},
		{"-quick", "-periods", "10", "fig11"},
		{"-quick", "-n", "500", "fig13"},
	} {
		if code := run(context.Background(), args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

func TestRunChurnAndWorkers(t *testing.T) {
	for _, args := range [][]string{
		{"-quick", "-duration", "4s", "-n", "30", "churn"},
		{"-quick", "-workers", "4", "fig10"},
		{"-quick", "-workers", "1", "fig10"},
	} {
		if code := run(context.Background(), args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

// TestRunChurnOverUDP runs the churn workload end-to-end on the UDP backend:
// every node gets its own loopback socket in this process, and joins bind
// new sockets mid-run. Duration is wall-clock here, so the scenario is kept
// small.
func TestRunChurnOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("udp churn streams in wall-clock time")
	}
	args := []string{"-quick", "-backend", "udp", "-duration", "3s", "-n", "24", "churn"}
	if code := run(context.Background(), args); code != 0 {
		t.Fatalf("run(%v) = %d, want 0", args, code)
	}
}

// TestRunScale runs the scale workload end-to-end at a reduced target
// population, in both flag orders (`-n 600 scale` and `scale -n 600` — the
// documented invocation is `lifting-sim scale -n 10000`).
func TestRunScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale runs a full baseline + target simulation")
	}
	for _, args := range [][]string{
		{"-n", "600", "scale"},
		{"scale", "-n", "600"},
	} {
		if code := run(context.Background(), args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if code := run(context.Background(), []string{"no-such-experiment"}); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if code := run(context.Background(), []string{"-backend", "quantum", "churn"}); code == 0 {
		t.Fatal("unknown backend accepted")
	}
	if code := run(context.Background(), []string{}); code == 0 {
		t.Fatal("missing experiment accepted")
	}
	if code := run(context.Background(), []string{"-bogus-flag", "fig10"}); code == 0 {
		t.Fatal("bad flag accepted")
	}
}

func TestRunOverrides(t *testing.T) {
	if code := run(context.Background(), []string{"-seed", "9", "-delta", "0.2", "-periods", "5", "-n", "400", "fig11"}); code != 0 {
		t.Fatal("overrides rejected")
	}
	if code := run(context.Background(), []string{"-no-compensation", "-n", "300", "-periods", "3", "fig11"}); code != 0 {
		t.Fatal("ablation flag rejected")
	}
}

// TestUsageListsExperiments covers the help contract: the usage text and
// the unknown-experiment error both enumerate the registry — no pinned name
// list, so a newly registered experiment appears automatically.
func TestUsageListsExperiments(t *testing.T) {
	code, _, out := capture(t, context.Background(), nil)
	if code != 2 {
		t.Fatalf("run with no experiment = %d, want 2", code)
	}
	for _, name := range append(experiment.Names(), "all", "list") {
		if !strings.Contains(out, name) {
			t.Errorf("usage does not list experiment %q:\n%s", name, out)
		}
	}

	code, _, out = capture(t, context.Background(), []string{"no-such-experiment"})
	if code != 2 {
		t.Fatalf("unknown experiment = %d, want 2", code)
	}
	if !strings.Contains(out, `unknown experiment "no-such-experiment"`) ||
		!strings.Contains(out, "matrix") {
		t.Errorf("unknown-experiment error does not list the registry:\n%s", out)
	}
}

// TestRunMatrix runs one matrix scenario end-to-end through the CLI: the
// oracle must hold (exit 0), an unmatched filter must fail, and the
// backend-set parsing must reject garbage.
func TestRunMatrix(t *testing.T) {
	if code := run(context.Background(), []string{"-quick", "-filter", "fanout-decrease", "matrix"}); code != 0 {
		t.Fatalf("quick matrix fanout-decrease = %d, want 0", code)
	}
	code, _, out := capture(t, context.Background(), []string{"-quick", "-filter", "no-such-attack", "matrix"})
	if code == 0 {
		t.Fatal("matrix with unmatched filter reported success")
	}
	if !strings.Contains(out, "ran no scenario") {
		t.Errorf("filter miss not explained:\n%s", out)
	}
	code, _, out = capture(t, context.Background(), []string{"-backend", "sim,quantum", "matrix"})
	if code == 0 {
		t.Fatal("bad backend list accepted")
	}
	if !strings.Contains(out, "unknown backend") {
		t.Errorf("bad backend not explained:\n%s", out)
	}
	code, _, out = capture(t, context.Background(), []string{"-backend", "sim,live", "churn"})
	if code == 0 {
		t.Fatal("backend list accepted for a single-backend experiment")
	}
	if !strings.Contains(out, "takes a single -backend") {
		t.Errorf("multi-backend rejection not explained:\n%s", out)
	}
}

// TestListInventory checks the registry-generated inventory: every
// registered experiment appears in both the plain and the JSON listing, and
// the JSON carries paper sections and default params.
func TestListInventory(t *testing.T) {
	code, out, _ := capture(t, context.Background(), []string{"list"})
	if code != 0 {
		t.Fatalf("list = %d, want 0", code)
	}
	for _, name := range experiment.Names() {
		if !strings.Contains(out, name+"\t") {
			t.Errorf("plain list missing %q:\n%s", name, out)
		}
	}

	code, out, _ = capture(t, context.Background(), []string{"list", "-json"})
	if code != 0 {
		t.Fatalf("list -json = %d, want 0", code)
	}
	var entries []struct {
		Name          string            `json:"name"`
		Paper         string            `json:"paper"`
		Describe      string            `json:"describe"`
		DefaultParams experiment.Params `json:"default_params"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("list -json is not valid JSON: %v\n%s", err, out)
	}
	if len(entries) != len(experiment.Names()) {
		t.Fatalf("list -json has %d entries for %d experiments", len(entries), len(experiment.Names()))
	}
	for i, name := range experiment.Names() {
		if entries[i].Name != name {
			t.Errorf("entry %d is %q, want %q", i, entries[i].Name, name)
		}
		if entries[i].Paper == "" || entries[i].Describe == "" {
			t.Errorf("entry %q lacks paper/describe", name)
		}
	}
}

// TestDescribe covers -describe: a known name explains itself, an unknown
// one fails with the registry list.
func TestDescribe(t *testing.T) {
	code, out, _ := capture(t, context.Background(), []string{"-describe", "fig10"})
	if code != 0 {
		t.Fatalf("-describe fig10 = %d, want 0", code)
	}
	if !strings.Contains(out, "fig10") || !strings.Contains(out, "Figure 10") {
		t.Errorf("describe output incomplete:\n%s", out)
	}
	code, _, errOut := capture(t, context.Background(), []string{"-describe", "nope"})
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("-describe nope = %d (%q), want 2 + unknown-experiment error", code, errOut)
	}
}

// TestJSONOutputDeterministic pins the structured path: the -json document
// of a seeded run is byte-identical across repeated runs and across worker
// counts (the PR 4 determinism contract, extended to the machine-readable
// output).
func TestJSONOutputDeterministic(t *testing.T) {
	args := []string{"-quick", "-n", "600", "-seed", "5", "-json", "fig10"}
	_, first, _ := capture(t, context.Background(), args)
	for _, extra := range [][]string{nil, {"-workers", "1"}, {"-workers", "7"}} {
		code, out, errOut := capture(t, context.Background(), append(append([]string{}, args...), extra...))
		if code != 0 {
			t.Fatalf("run(%v) = %d: %s", extra, code, errOut)
		}
		if out != first {
			t.Fatalf("JSON output diverged for %v:\n--- first ---\n%s--- now ---\n%s", extra, first, out)
		}
	}
	var doc experiment.Document
	if err := json.Unmarshal([]byte(first), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Schema != experiment.Schema || len(doc.Results) != 1 || doc.Results[0].Experiment != "fig10" {
		t.Fatalf("unexpected document: %+v", doc)
	}
}

// TestJSONVerdictFailure: a failed verdict still emits the JSON document
// (with the failure recorded) and exits 1.
func TestJSONVerdictFailure(t *testing.T) {
	code, out, _ := capture(t, context.Background(), []string{"-quick", "-filter", "no-such-attack", "-json", "matrix"})
	if code != 1 {
		t.Fatalf("failed matrix -json = %d, want 1", code)
	}
	var doc experiment.Document
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("failure document is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Results) != 1 || doc.Results[0].Verdict.Pass {
		t.Fatalf("verdict not recorded: %+v", doc.Results[0])
	}
}

// TestRunCancelled: a cancelled context aborts the run with exit 130 before
// any experiment work happens.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, _, errOut := capture(t, ctx, []string{"-quick", "churn"})
	if code != 130 {
		t.Fatalf("cancelled run = %d, want 130", code)
	}
	if !strings.Contains(errOut, "interrupted") {
		t.Errorf("cancellation not reported:\n%s", errOut)
	}
}
