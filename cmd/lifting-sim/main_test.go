package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	// The analytic experiments complete in milliseconds; run them for real.
	for _, args := range [][]string{
		{"eq7"},
		{"-quick", "fig10"},
		{"-quick", "-periods", "10", "fig11"},
		{"-quick", "-n", "500", "fig13"},
	} {
		if code := run(args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

func TestRunChurnAndWorkers(t *testing.T) {
	for _, args := range [][]string{
		{"-quick", "-duration", "4s", "-n", "30", "churn"},
		{"-quick", "-workers", "4", "fig10"},
		{"-quick", "-workers", "1", "fig10"},
	} {
		if code := run(args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

// TestRunChurnOverUDP runs the churn workload end-to-end on the UDP backend:
// every node gets its own loopback socket in this process, and joins bind
// new sockets mid-run. Duration is wall-clock here, so the scenario is kept
// small.
func TestRunChurnOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("udp churn streams in wall-clock time")
	}
	args := []string{"-quick", "-backend", "udp", "-duration", "3s", "-n", "24", "churn"}
	if code := run(args); code != 0 {
		t.Fatalf("run(%v) = %d, want 0", args, code)
	}
}

// TestRunScale runs the scale workload end-to-end at a reduced target
// population, in both flag orders (`-n 600 scale` and `scale -n 600` — the
// documented invocation is `lifting-sim scale -n 10000`).
func TestRunScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale runs a full baseline + target simulation")
	}
	for _, args := range [][]string{
		{"-n", "600", "scale"},
		{"scale", "-n", "600"},
	} {
		if code := run(args); code != 0 {
			t.Fatalf("run(%v) = %d, want 0", args, code)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if code := run([]string{"no-such-experiment"}); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if code := run([]string{"-backend", "quantum", "churn"}); code == 0 {
		t.Fatal("unknown backend accepted")
	}
	if code := run([]string{}); code == 0 {
		t.Fatal("missing experiment accepted")
	}
	if code := run([]string{"-bogus-flag", "fig10"}); code == 0 {
		t.Fatal("bad flag accepted")
	}
}

func TestRunOverrides(t *testing.T) {
	if code := run([]string{"-seed", "9", "-delta", "0.2", "-periods", "5", "-n", "400", "fig11"}); code != 0 {
		t.Fatal("overrides rejected")
	}
	if code := run([]string{"-no-compensation", "-n", "300", "-periods", "3", "fig11"}); code != 0 {
		t.Fatal("ablation flag rejected")
	}
}

// TestUsageListsExperiments covers the help contract: the usage text and
// the unknown-experiment error both enumerate every registered experiment,
// including matrix.
func TestUsageListsExperiments(t *testing.T) {
	capture := func(args []string) (int, string) {
		var buf bytes.Buffer
		old := stderrW
		stderrW = &buf
		defer func() { stderrW = old }()
		code := run(args)
		return code, buf.String()
	}

	code, out := capture(nil)
	if code != 2 {
		t.Fatalf("run with no experiment = %d, want 2", code)
	}
	for _, name := range experimentNames {
		if !strings.Contains(out, name) {
			t.Errorf("usage does not list experiment %q:\n%s", name, out)
		}
	}

	code, out = capture([]string{"no-such-experiment"})
	if code != 2 {
		t.Fatalf("unknown experiment = %d, want 2", code)
	}
	if !strings.Contains(out, `unknown experiment "no-such-experiment"`) ||
		!strings.Contains(out, "matrix") {
		t.Errorf("unknown-experiment error does not list the registry:\n%s", out)
	}
}

// TestRunMatrix runs one matrix scenario end-to-end through the CLI: the
// oracle must hold (exit 0), an unmatched filter must fail, and the
// backend-set parsing must reject garbage.
func TestRunMatrix(t *testing.T) {
	if code := run([]string{"-quick", "-filter", "fanout-decrease", "matrix"}); code != 0 {
		t.Fatalf("quick matrix fanout-decrease = %d, want 0", code)
	}
	var buf bytes.Buffer
	old := stderrW
	stderrW = &buf
	defer func() { stderrW = old }()
	if code := run([]string{"-quick", "-filter", "no-such-attack", "matrix"}); code == 0 {
		t.Fatal("matrix with unmatched filter reported success")
	}
	if !strings.Contains(buf.String(), "ran no scenario") {
		t.Errorf("filter miss not explained:\n%s", buf.String())
	}
	buf.Reset()
	if code := run([]string{"-backend", "sim,quantum", "matrix"}); code == 0 {
		t.Fatal("bad backend list accepted")
	}
	if !strings.Contains(buf.String(), "unknown backend") {
		t.Errorf("bad backend not explained:\n%s", buf.String())
	}
	buf.Reset()
	if code := run([]string{"-backend", "sim,live", "churn"}); code == 0 {
		t.Fatal("backend list accepted for a single-backend experiment")
	}
	if !strings.Contains(buf.String(), "takes a single -backend") {
		t.Errorf("multi-backend rejection not explained:\n%s", buf.String())
	}
}

// TestExperimentNamesMatchDispatch pins the help list against the runOne
// dispatch: every `case "name":` in main.go is listed (plus `all`), and
// vice versa, so neither usage nor the `all` batch can silently go stale.
func TestExperimentNamesMatchDispatch(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	dispatched := map[string]bool{}
	for _, m := range regexp.MustCompile(`case "([a-z0-9]+)":`).FindAllStringSubmatch(string(src), -1) {
		dispatched[m[1]] = true
	}
	listed := map[string]bool{}
	for _, name := range experimentNames {
		if listed[name] {
			t.Errorf("experiment %q listed twice", name)
		}
		listed[name] = true
		if name != "all" && !dispatched[name] {
			t.Errorf("experiment %q listed in help but has no dispatch case", name)
		}
	}
	if !listed["all"] || !listed["matrix"] {
		t.Error("help list must include all and matrix")
	}
	for name := range dispatched {
		if !listed[name] {
			t.Errorf("dispatch case %q missing from the help list", name)
		}
	}
	if len(allBatch) != len(dispatched) {
		t.Errorf("all batch runs %d experiments, dispatch has %d", len(allBatch), len(dispatched))
	}
}
