# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: test race bench fuzz fmt vet lint

test:
	$(GO) build ./...
	$(GO) test -shuffle=on -timeout 600s ./...

# Static gates: formatting, go vet, and the determinism-lint suite
# (cmd/lifting-lint) that mechanically enforces the byte-identical
# document contract — wall-clock reads, global rand, unordered map
# iteration and float/time-typed document fields (see DESIGN.md).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/lifting-lint ./...

# The concurrent halves of the runtime seam under the race detector, plus
# the reputation substrate (manager boards are hit from node goroutines
# while the harness ticks periods and hands state off), the sharded
# discrete-event engine (node events run on shard goroutines inside
# lookahead windows), the metrics collector (striped atomic counters
# hammered from sender goroutines while scrapers render the exposition)
# and the content plane (chunk stores and the HTTP gateway serve shared
# payload slices to concurrent readers).
race:
	$(GO) test -race -timeout 600s ./internal/live/ ./internal/cluster/ ./internal/transport/ ./internal/reputation/ ./internal/membership/ ./internal/sim/ ./internal/metrics/ ./internal/content/ ./internal/gateway/

# Regenerate the perf trajectory document for this PR, gating on the
# previous PR's baseline (normalized by the calibration loop, so a slower
# machine does not read as a regression).
bench:
	$(GO) run ./cmd/lifting-bench -check -baseline BENCH_PR8.json -out BENCH_PR10.json

# Extended fuzzing of the network-facing decoder (the committed seed corpus
# replays on every plain `go test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 60s ./internal/msg/

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
