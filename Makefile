# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: test race bench fuzz fmt vet

test:
	$(GO) build ./...
	$(GO) test -shuffle=on -timeout 600s ./...

# The concurrent halves of the runtime seam under the race detector, plus
# the reputation substrate (manager boards are hit from node goroutines
# while the harness ticks periods and hands state off).
race:
	$(GO) test -race -timeout 600s ./internal/live/ ./internal/cluster/ ./internal/transport/ ./internal/reputation/ ./internal/membership/

# Regenerate the perf trajectory document for this PR.
bench:
	$(GO) run ./cmd/lifting-bench -out BENCH_PR5.json

# Extended fuzzing of the network-facing decoder (the committed seed corpus
# replays on every plain `go test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 60s ./internal/msg/

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
