// Package lifting is a from-scratch Go reproduction of
//
//	LiFTinG: Lightweight Freerider-Tracking in Gossip
//	R. Guerraoui, K. Huguenin, A.-M. Kermarrec, M. Monod, S. Prusty
//	Middleware 2010
//
// The repository contains the three-phase gossip dissemination protocol the
// paper builds on, LiFTinG's verification machinery (direct verification,
// direct cross-checking, local history auditing), the Alliatrust-like
// reputation substrate, the freerider attack strategies, the closed-form
// analysis of §6, and an experiment harness regenerating every table and
// figure of the evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The root package holds the benchmark harness (bench_test.go); the
// implementation lives under internal/, one package per subsystem, and the
// runnable entry points under cmd/ and examples/.
package lifting
