// Churn: nodes joining and leaving a LiFTinG-policed broadcast mid-stream.
//
// The paper deploys on a static membership; this example runs the natural
// next workload. Nodes join and leave while the stream plays: arrivals catch
// up on the chunks generated after their join (infect-and-die gossip does
// not replay history), departures drop out of the sampling population, and
// the Alliatrust-like reputation managers hand their score copies off as the
// manager assignment shifts with the membership. Freerider detection must
// survive all of it.
//
// The example drives the experiment through the first-class registry API —
// the same entry `lifting-sim churn` dispatches — so the scenario, its
// parameter mapping and its structured result are shared with the CLI. The
// same wiring runs on the deterministic discrete-event engine (default) or
// the goroutine-per-node live runtime (-backend live), through the runtime
// seam.
//
// Run with: go run ./examples/churn [-backend live]
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"lifting/internal/experiment"
	"lifting/internal/runtime"
)

func main() {
	backend := runtime.KindSim
	for _, arg := range os.Args[1:] {
		if arg == "-backend=live" || arg == "live" {
			backend = runtime.KindLive
		}
	}
	params := experiment.DefaultParams()
	params.Backends = []runtime.Kind{backend}
	if backend == runtime.KindLive {
		// The live backend runs in wall-clock time; keep the demo short.
		params.Quick = true
		params.N = 40
		params.Duration = 10 * time.Second
	}
	if _, err := run(context.Background(), os.Stdout, params); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

// tableWriter renders each table of the run as it completes.
type tableWriter struct{ w io.Writer }

func (o tableWriter) OnTable(t *experiment.Table) { t.Render(o.w) }

// run executes the churn scenario through the experiment registry and
// returns its structured result.
func run(ctx context.Context, w io.Writer, params experiment.Params) (*experiment.Result, error) {
	churn, ok := experiment.Lookup("churn")
	if !ok {
		panic("churn experiment not registered")
	}
	res, err := churn.Run(ctx, params, tableWriter{w})
	if err != nil {
		return nil, err
	}
	joined, _ := res.Metric("joined")
	catchUp, _ := res.Metric("catch-up")
	handoffs, _ := res.Metric("handoffs")
	gap, _ := res.Metric("score-gap")
	fmt.Fprintf(w, "%.0f arrivals caught %.0f%% of the post-join stream; %.0f manager handoffs\n",
		joined, 100*catchUp, handoffs)
	fmt.Fprintf(w, "kept every replica set populated. Freeriders still score %.2f below the\n", gap)
	fmt.Fprintln(w, "honest mean: detection is a property of the protocol, not of a frozen roster.")
	return res, nil
}
