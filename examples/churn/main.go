// Churn: nodes joining and leaving a LiFTinG-policed broadcast mid-stream.
//
// The paper deploys on a static membership; this example runs the natural
// next workload. Twenty nodes join and twenty leave while the stream plays:
// arrivals catch up on the chunks generated after their join (infect-and-die
// gossip does not replay history), departures drop out of the sampling
// population, and the Alliatrust-like reputation managers hand their score
// copies off as the manager assignment shifts with the membership. Freerider
// detection must survive all of it.
//
// The same wiring runs on the deterministic discrete-event engine (default)
// or the goroutine-per-node live runtime (-backend live), through the
// runtime seam.
//
// Run with: go run ./examples/churn [-backend live]
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"lifting/internal/experiment"
	"lifting/internal/runtime"
)

func main() {
	backend := runtime.KindSim
	for _, arg := range os.Args[1:] {
		if arg == "-backend=live" || arg == "live" {
			backend = runtime.KindLive
		}
	}
	cfg := experiment.DefaultChurnConfig()
	cfg.Backend = backend
	if backend == runtime.KindLive {
		// The live backend runs in wall-clock time; keep the demo short.
		cfg.N = 40
		cfg.Joins, cfg.Leaves = 8, 8
		cfg.Duration = 10 * time.Second
	}
	run(os.Stdout, cfg)
}

// run executes the churn scenario and returns its result.
func run(w io.Writer, cfg experiment.ChurnConfig) *experiment.ChurnResult {
	tab, res := experiment.Churn(cfg)
	tab.Render(w)
	fmt.Fprintf(w, "%d arrivals caught %.0f%% of the post-join stream; %d manager handoffs\n",
		res.Joined, 100*res.CatchUp.Mean(), res.Handoffs)
	fmt.Fprintf(w, "kept every replica set populated. Freeriders still score %.2f below the\n",
		res.HonestMean-res.FreeriderMean)
	fmt.Fprintln(w, "honest mean: detection is a property of the protocol, not of a frozen roster.")
	return res
}
