package main

import (
	"io"
	"testing"
	"time"

	"lifting/internal/experiment"
	"lifting/internal/runtime"
)

// TestChurnExampleCompletes runs the example at reduced scale on both
// backends through the runtime seam.
func TestChurnExampleCompletes(t *testing.T) {
	cfg := experiment.DefaultChurnConfig()
	cfg.N = 40
	cfg.Joins, cfg.Leaves = 5, 5
	cfg.Duration = 6 * time.Second
	res := run(io.Discard, cfg)
	if res.Joined != 5 || res.Departed != 5 {
		t.Fatalf("churn incomplete: %+v", res)
	}
	if res.FreeriderMean >= res.HonestMean {
		t.Fatalf("separation lost: honest %.2f, freeriders %.2f", res.HonestMean, res.FreeriderMean)
	}
}

// TestChurnExampleLiveBackend is the live-runtime smoke test: a short
// wall-clock run must complete with the same invariants.
func TestChurnExampleLiveBackend(t *testing.T) {
	cfg := experiment.DefaultChurnConfig()
	cfg.Backend = runtime.KindLive
	cfg.N = 20
	cfg.Joins, cfg.Leaves = 3, 3
	cfg.Duration = 3 * time.Second
	res := run(io.Discard, cfg)
	if res.Joined != 3 || res.Departed != 3 {
		t.Fatalf("live churn incomplete: %+v", res)
	}
}
