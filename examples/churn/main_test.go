package main

import (
	"context"
	"io"
	"testing"
	"time"

	"lifting/internal/experiment"
	"lifting/internal/runtime"
)

// TestChurnExampleCompletes runs the example at reduced scale through the
// experiment registry on the default discrete-event backend.
func TestChurnExampleCompletes(t *testing.T) {
	params := experiment.DefaultParams()
	params.Quick = true
	params.N = 40
	params.Duration = 6 * time.Second
	res, err := run(context.Background(), io.Discard, params)
	if err != nil {
		t.Fatal(err)
	}
	joined, _ := res.Metric("joined")
	departed, _ := res.Metric("departed")
	if joined != 6 || departed != 6 {
		t.Fatalf("churn incomplete: joined %.0f, departed %.0f", joined, departed)
	}
	if gap, ok := res.Metric("score-gap"); !ok || gap <= 0 {
		t.Fatalf("separation lost: gap %.2f", gap)
	}
}

// TestChurnExampleLiveBackend is the live-runtime smoke test: a short
// wall-clock run must complete with the same invariants.
func TestChurnExampleLiveBackend(t *testing.T) {
	params := experiment.DefaultParams()
	params.Backends = []runtime.Kind{runtime.KindLive}
	params.Quick = true
	params.N = 20
	params.Duration = 3 * time.Second
	res, err := run(context.Background(), io.Discard, params)
	if err != nil {
		t.Fatal(err)
	}
	if joined, _ := res.Metric("joined"); joined == 0 {
		t.Fatal("live churn saw no arrivals")
	}
}

// TestChurnExampleCancels pins the cancellation path end to end: a context
// cancelled mid-run aborts the experiment with context.Canceled.
func TestChurnExampleCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	params := experiment.DefaultParams()
	params.Quick = true
	if _, err := run(ctx, io.Discard, params); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
