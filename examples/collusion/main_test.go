package main

import (
	"io"
	"testing"
	"time"
)

// TestCollusionCompletes runs the example at reduced scale (γ rescaled for
// the smaller membership, as in the package's own scenario tests) and
// checks the audit catches at least part of the coalition.
func TestCollusionCompletes(t *testing.T) {
	expelled := run(io.Discard, 60, 5, 4.5, 8*time.Second)
	if expelled == 0 {
		t.Fatal("audit expelled no colluders at reduced scale")
	}
}
