// Collusion: a coalition of freeriders that covers for each other, and the
// entropy audit that catches them (§5.3 and §6.3.2 of the paper).
//
// Eight colluders bias 80% of their partner selection toward the coalition
// and answer confirmations for each other, which defeats direct
// cross-checking. A local history audit then compares the entropy of their
// fanout/fanin histories against γ and expels them, while honest nodes pass.
// The example also prints the analytical bound: the maximum bias p*m a
// coalition this size could sustain undetected (Equation 7).
//
// Run with: go run ./examples/collusion
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/stream"
)

func main() {
	// gamma is scaled for a 100-node system: honest histories measure ≈6.3
	// (max log2(99) ≈ 6.6).
	run(os.Stdout, 100, 8, 5.5, 25*time.Second)
}

// run executes the collusion story at the given scale and returns how many
// coalition members the audit expelled. gamma must be scaled to the system
// size (honest entropies approach log2(n-1)).
func run(w io.Writer, nodes, coalitionSize int, gamma float64, streamFor time.Duration) (expelled int) {
	const (
		tg   = 500 * time.Millisecond
		bias = 0.8
	)
	coalition := make([]msg.NodeID, coalitionSize)
	for i := range coalition {
		coalition[i] = msg.NodeID(nodes - coalitionSize + i)
	}

	opts := cluster.Options{
		N:    nodes,
		Seed: 11,
		Gossip: gossip.Config{
			F: 7, Period: tg, ChunkPayload: 1316, HistoryPeriods: 50,
		},
		Core: core.Config{
			F: 7, Period: tg, Pdcc: 1, HistoryPeriods: 50,
			Gamma:      gamma,
			GammaFanin: 2.0,
		},
		Rep:         reputation.Config{M: 10},
		Stream:      stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults: net.Uniform(0.02, 5*time.Millisecond),
		LiFTinG:     true,
		BehaviorFor: func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
			for _, m := range coalition {
				if id == m {
					col := freerider.NewColluder(id, coalition, bias, dir, r)
					col.CoverUp = true // confirm anything about the coalition
					return col
				}
			}
			return nil
		},
		ExpelOnDetection: true,
	}

	c := cluster.New(opts)
	var outcomes []core.AuditOutcome
	auditor := c.Auditor(func(out core.AuditOutcome) { outcomes = append(outcomes, out) })
	c.Start()
	c.StartStream(streamFor)

	// Audit every coalition member and a few honest nodes once histories
	// have filled (audits are sporadic and run over TCP, §5.3).
	c.After(streamFor*4/5, func() {
		for _, m := range coalition {
			auditor.Audit(m)
		}
		for _, honest := range []msg.NodeID{10, 20, 30} {
			auditor.Audit(honest)
		}
	})
	c.Run(streamFor + 3*time.Second)

	pm := analysis.MaxCollusionBias(gamma, len(coalition), 50*7)
	fmt.Fprintf(w, "coalition of %d, biasing %.0f%% of pushes toward itself.\n", len(coalition), bias*100)
	fmt.Fprintf(w, "Equation 7: at γ = %.2f a coalition this size could hide a bias of at most\n", gamma)
	fmt.Fprintf(w, "p*m = %.0f%%, so %.0f%% must fail the entropy check.\n\n", pm*100, bias*100)

	fmt.Fprintln(w, "audit outcomes:")
	fmt.Fprintln(w, "node  role      fanout-H  fanin-H  unconfirmed  verdict")
	for _, out := range outcomes {
		role := "honest"
		for _, m := range coalition {
			if out.Target == m {
				role = "colluder"
			}
		}
		verdict := "pass"
		if out.Expel {
			verdict = "EXPEL"
		}
		fmt.Fprintf(w, "%4d  %-8s  %8.2f  %7.2f  %11d  %s\n",
			out.Target, role, out.FanoutEntropy, out.FaninEntropy, out.Unconfirmed, verdict)
	}

	for _, m := range coalition {
		if _, gone := c.Expelled[m]; gone {
			expelled++
		}
	}
	fmt.Fprintf(w, "\nexpelled %d/%d colluders; honest audits passed: the randomness of partner\n",
		expelled, len(coalition))
	fmt.Fprintln(w, "selection is exactly what makes covering each other up statistically visible.")
	return expelled
}
