// Collusion: a coalition of freeriders that covers for each other, and the
// entropy audit that catches them (§5.3 and §6.3.2 of the paper).
//
// Eight colluders bias 80% of their partner selection toward the coalition
// and answer confirmations for each other, which defeats direct
// cross-checking. A local history audit then compares the entropy of their
// fanout/fanin histories against γ and expels them, while honest nodes pass.
// The example also prints the analytical bound: the maximum bias p*m a
// coalition this size could sustain undetected (Equation 7).
//
// Run with: go run ./examples/collusion
package main

import (
	"fmt"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/stream"
)

func main() {
	const (
		nodes = 100
		tg    = 500 * time.Millisecond
		gamma = 5.5 // scaled for a 100-node system: honest histories measure ≈6.3 (max log2(99) ≈ 6.6)
		bias  = 0.8
	)
	coalition := []msg.NodeID{92, 93, 94, 95, 96, 97, 98, 99}

	opts := cluster.Options{
		N:    nodes,
		Seed: 11,
		Gossip: gossip.Config{
			F: 7, Period: tg, ChunkPayload: 1316, HistoryPeriods: 50,
		},
		Core: core.Config{
			F: 7, Period: tg, Pdcc: 1, HistoryPeriods: 50,
			Gamma:      gamma,
			GammaFanin: 2.0,
		},
		Rep:         reputation.Config{M: 10},
		Stream:      stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults: net.Uniform(0.02, 5*time.Millisecond),
		LiFTinG:     true,
		BehaviorFor: func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
			for _, m := range coalition {
				if id == m {
					col := freerider.NewColluder(id, coalition, bias, dir, r)
					col.CoverUp = true // confirm anything about the coalition
					return col
				}
			}
			return nil
		},
		ExpelOnDetection: true,
	}

	c := cluster.New(opts)
	var outcomes []core.AuditOutcome
	auditor := c.Auditor(func(out core.AuditOutcome) { outcomes = append(outcomes, out) })
	c.Start()
	c.StartStream(25 * time.Second)

	// Audit every coalition member and a few honest nodes once histories
	// have filled (audits are sporadic and run over TCP, §5.3).
	c.Engine.After(20*time.Second, func() {
		for _, m := range coalition {
			auditor.Audit(m)
		}
		for _, honest := range []msg.NodeID{10, 20, 30} {
			auditor.Audit(honest)
		}
	})
	c.Run(28 * time.Second)

	pm := analysis.MaxCollusionBias(gamma, len(coalition), 50*7)
	fmt.Printf("coalition of %d, biasing %.0f%% of pushes toward itself.\n", len(coalition), bias*100)
	fmt.Printf("Equation 7: at γ = %.2f a coalition this size could hide a bias of at most\n", gamma)
	fmt.Printf("p*m = %.0f%%, so %.0f%% must fail the entropy check.\n\n", pm*100, bias*100)

	fmt.Println("audit outcomes:")
	fmt.Println("node  role      fanout-H  fanin-H  unconfirmed  verdict")
	for _, out := range outcomes {
		role := "honest"
		for _, m := range coalition {
			if out.Target == m {
				role = "colluder"
			}
		}
		verdict := "pass"
		if out.Expel {
			verdict = "EXPEL"
		}
		fmt.Printf("%4d  %-8s  %8.2f  %7.2f  %11d  %s\n",
			out.Target, role, out.FanoutEntropy, out.FaninEntropy, out.Unconfirmed, verdict)
	}

	expelled := 0
	for _, m := range coalition {
		if _, gone := c.Expelled[m]; gone {
			expelled++
		}
	}
	fmt.Printf("\nexpelled %d/%d colluders; honest audits passed: the randomness of partner\n",
		expelled, len(coalition))
	fmt.Println("selection is exactly what makes covering each other up statistically visible.")
}
