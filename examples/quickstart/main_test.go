package main

import (
	"io"
	"testing"
	"time"
)

// TestQuickstartCompletes runs the example at reduced scale: it must finish
// and still separate the populations.
func TestQuickstartCompletes(t *testing.T) {
	honest, riders, _ := run(io.Discard, 32, 3, 6*time.Second)
	if riders >= honest {
		t.Fatalf("freerider mean %.2f not below honest mean %.2f", riders, honest)
	}
}
