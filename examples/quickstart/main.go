// Quickstart: a 64-node gossip broadcast policed by LiFTinG.
//
// Four nodes freeride by 30% in every dimension (fanout, propose, serve).
// The example streams for 20 seconds of virtual time, then prints each
// population's score statistics and who got expelled.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/stream"
)

func main() {
	run(os.Stdout, 64, 4, 20*time.Second)
}

// run executes the scenario at the given scale and returns the two
// populations' mean scores plus how many freeriders were expelled.
func run(w io.Writer, nodes, freeriders int, duration time.Duration) (honestMean, riderMean float64, detected int) {
	const tg = 500 * time.Millisecond
	opts := cluster.Options{
		N:    nodes,
		Seed: 7,
		Gossip: gossip.Config{
			F:              7,
			Period:         tg,
			ChunkPayload:   1316,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              7,
			Period:         tg,
			Pdcc:           1, // always cross-check
			HistoryPeriods: 50,
			Gamma:          8.95,
		},
		Rep:          reputation.Config{M: 10},
		Stream:       stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults:  net.Uniform(0.04, 5*time.Millisecond), // 4% UDP loss
		LiFTinG:      true,
		ExpectedLoss: 0.04,
		BehaviorFor: func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if int(id) >= nodes-freeriders {
				return freerider.Degree{Delta1: 0.3, Delta2: 0.3, Delta3: 0.3}
			}
			return nil
		},
	}

	// Calibrate the wrongful-blame compensation from an honest pilot, then
	// expel anyone whose normalized score drops below η. Nothing cancels the
	// example, so the background context does.
	cal, err := cluster.Calibrate(context.Background(), opts, duration)
	if err != nil {
		panic(err)
	}
	opts.Rep.Compensation = cal.Compensation
	opts.Rep.Eta = -4 * cal.ScoreStd
	opts.ExpelOnDetection = true

	c := cluster.New(opts)
	c.Start()
	c.StartStream(duration)
	c.Run(duration + 2*tg)

	fmt.Fprintf(w, "compensation b̃ = %.2f blame/period (calibrated), η = %.2f\n\n",
		cal.Compensation, opts.Rep.Eta)
	fmt.Fprintln(w, "node  role       score     expelled")
	scores := c.Scores()
	var honestSum, riderSum float64
	for i := 1; i < nodes; i++ {
		id := msg.NodeID(i)
		role := "honest"
		if c.Freeriders[id] {
			role = "freerider"
			riderSum += scores[id]
		} else {
			honestSum += scores[id]
		}
		if c.Freeriders[id] || i%16 == 0 { // print all freeriders, a few honest
			expelled := ""
			if at, ok := c.Expelled[id]; ok {
				expelled = fmt.Sprintf("at %v", at.Round(time.Second))
			}
			fmt.Fprintf(w, "%4d  %-9s  %8.2f  %s\n", i, role, scores[id], expelled)
		}
	}
	honestMean = honestSum / float64(nodes-1-freeriders)
	riderMean = riderSum / float64(freeriders)
	fmt.Fprintf(w, "\nhonest mean score    %8.2f\n", honestMean)
	fmt.Fprintf(w, "freerider mean score %8.2f\n", riderMean)

	for id := range c.Expelled {
		if c.Freeriders[id] {
			detected++
		}
	}
	fmt.Fprintf(w, "\nexpelled %d/%d freeriders, %d honest nodes\n",
		detected, freeriders, len(c.Expelled)-detected)
	fmt.Fprintln(w, "(an expelled node's displayed score recovers over time: blaming stops")
	fmt.Fprintln(w, " once it is out — detection acts on the score at expulsion time; the")
	fmt.Fprintln(w, " few honest expulsions mirror the paper's §7.3 false positives)")
	return honestMean, riderMean, detected
}
