package main

import (
	"context"
	"io"
	"testing"
	"time"
)

// TestPlanetLabCompletes runs the Figure 14 scenario at reduced scale: the
// run must finish and detect more freeriders than honest false positives at
// the final snapshot.
func TestPlanetLabCompletes(t *testing.T) {
	res := run(context.Background(), io.Discard, 60, 1, 15*time.Second)
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots produced")
	}
	last := res.Snapshots[len(res.Snapshots)-1]
	if last.Detection <= last.FalsePositives {
		t.Fatalf("detection %.2f not above false positives %.2f", last.Detection, last.FalsePositives)
	}
}
