// PlanetLab: the §7 deployment scenario — heterogeneous connectivity, a
// poorly provisioned tail, wise freeriders at ∆ = (1/7, 0.1, 0.1), M = 25
// score managers — observed through score CDF snapshots over time, as in
// Figure 14.
//
// Run with: go run ./examples/planetlab [-n 300]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lifting/internal/experiment"
)

func main() {
	n := flag.Int("n", 150, "system size (paper: 300)")
	pdcc := flag.Float64("pdcc", 1, "cross-checking probability")
	flag.Parse()
	run(context.Background(), os.Stdout, *n, *pdcc, 35*time.Second)
}

// run executes the Figure 14 scenario at the given scale and returns the
// snapshot results.
func run(ctx context.Context, w io.Writer, n int, pdcc float64, duration time.Duration) *experiment.Fig14Result {
	p := experiment.DefaultPlanetLabConfig()
	p.N = n
	p.Pdcc = pdcc
	// A harder ∆ than the paper's (1/7, 0.1, 0.1) keeps the demo short; see
	// EXPERIMENTS.md for the full-length paper setting.
	p.Delta = [3]float64{2.0 / 7, 0.2, 0.2}
	p.Duration = duration

	snapshots := []time.Duration{duration - 10*time.Second, duration - 5*time.Second, duration}
	if snapshots[0] <= 0 {
		snapshots = []time.Duration{duration / 2, duration}
	}
	tab, res, err := experiment.Fig14(ctx, p, snapshots)
	if err != nil {
		fmt.Fprintln(w, "interrupted:", err)
		return nil
	}
	tab.Render(w)

	// Render a coarse CDF of the last snapshot, one line per population —
	// the textual analogue of Figure 14's plots.
	last := res.Snapshots[len(res.Snapshots)-1]
	fmt.Fprintf(w, "score CDFs after %v (threshold η = %.2f):\n\n", last.At, res.Eta)
	printCDF(w, "honest   ", last.Honest, res.Eta)
	printCDF(w, "freerider", last.Freerider, res.Eta)
	fmt.Fprintln(w, "\nThe freerider CDF rises left of the threshold while the honest mass sits")
	fmt.Fprintln(w, "right of it; the honest fraction below η is the poorly connected tail (§7.3).")
	return res
}

func printCDF(w io.Writer, label string, scores []float64, eta float64) {
	if len(scores) == 0 {
		return
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	const cols = 11
	fmt.Fprintf(w, "%s ", label)
	for i := 0; i < cols; i++ {
		x := lo + (hi-lo)*float64(i)/float64(cols-1)
		below := 0
		for _, s := range scores {
			if s <= x {
				below++
			}
		}
		frac := float64(below) / float64(len(scores))
		marker := " "
		if x < eta {
			marker = "*" // below the expulsion threshold
		}
		fmt.Fprintf(w, "%s%.2f@%.0f ", marker, frac, x)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s (%s = fraction of population at or below the score)\n", strings.Repeat(" ", len(label)), "f@s")
}
