package main

import (
	"context"
	"io"
	"testing"
	"time"
)

// TestStreamingCompletes runs the three Figure 1 curves at reduced scale:
// unpoliced freeriding must degrade health below the honest baseline.
func TestStreamingCompletes(t *testing.T) {
	lags := []time.Duration{2 * time.Second, 5 * time.Second}
	healths := run(context.Background(), io.Discard, 50, 10*time.Second, lags)
	if len(healths) != 3 {
		t.Fatalf("got %d curves, want 3", len(healths))
	}
	base := healths[0][len(healths[0])-1]
	collapsed := healths[1][len(healths[1])-1]
	if collapsed >= base {
		t.Fatalf("freeriding did not degrade health: %.2f vs baseline %.2f", collapsed, base)
	}
}
