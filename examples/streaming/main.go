// Streaming: the Figure 1 story at reduced scale.
//
// Three runs of the same 120-node, 674 kbps broadcast with capped uplinks:
// an honest baseline, 25% all-out freeriders without any verification (the
// system collapses), and the same freeriders under LiFTinG coercion — wise
// freeriders can only shave ~3.5% without being caught, so the stream stays
// healthy.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"os"
	"time"

	"lifting/internal/experiment"
)

func main() {
	p := experiment.DefaultPlanetLabConfig()
	p.N = 120
	p.Duration = 30 * time.Second

	lags := []time.Duration{
		2 * time.Second, 5 * time.Second, 10 * time.Second,
		20 * time.Second, 30 * time.Second,
	}

	fmt.Println("Figure 1 — fraction of nodes viewing a clear stream vs stream lag")
	fmt.Printf("(%d nodes, %d kbps, 25%% freeriders where applicable)\n\n", p.N, p.BitrateBps/1000)

	type curve struct {
		name     string
		scenario experiment.Fig1Scenario
	}
	curves := []curve{
		{"no freeriders", experiment.Fig1NoFreeriders},
		{"25% freeriders", experiment.Fig1Freeriders},
		{"25% freeriders (LiFTinG)", experiment.Fig1FreeridersLiFTinG},
	}

	fmt.Printf("%-26s", "lag")
	for _, lag := range lags {
		fmt.Printf("%8s", lag)
	}
	fmt.Println()
	for _, cv := range curves {
		_, res := experiment.Fig1(p, cv.scenario, lags)
		fmt.Printf("%-26s", cv.name)
		for _, h := range res.Health {
			fmt.Printf("%8.2f", h)
		}
		fmt.Println()
	}

	fmt.Fprintln(os.Stdout, `
Expected shape (paper Figure 1): without LiFTinG the freerider curve stays
far below the baseline at every lag; with LiFTinG it returns close to the
baseline because freeriding beyond ~3.5% is detected and expelled.`)
}
