// Streaming: the Figure 1 story at reduced scale.
//
// Three runs of the same 120-node, 674 kbps broadcast with capped uplinks:
// an honest baseline, 25% all-out freeriders without any verification (the
// system collapses), and the same freeriders under LiFTinG coercion — wise
// freeriders can only shave ~3.5% without being caught, so the stream stays
// healthy.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"lifting/internal/experiment"
)

func main() {
	lags := []time.Duration{
		2 * time.Second, 5 * time.Second, 10 * time.Second,
		20 * time.Second, 30 * time.Second,
	}
	run(context.Background(), os.Stdout, 120, 30*time.Second, lags)
}

// run executes the three Figure 1 curves at the given scale and returns the
// health series per scenario, in curve order (baseline, freeriders,
// freeriders+LiFTinG).
func run(ctx context.Context, w io.Writer, n int, duration time.Duration, lags []time.Duration) [][]float64 {
	p := experiment.DefaultPlanetLabConfig()
	p.N = n
	p.Duration = duration

	fmt.Fprintln(w, "Figure 1 — fraction of nodes viewing a clear stream vs stream lag")
	fmt.Fprintf(w, "(%d nodes, %d kbps, 25%% freeriders where applicable)\n\n", p.N, p.BitrateBps/1000)

	type curve struct {
		name     string
		scenario experiment.Fig1Scenario
	}
	curves := []curve{
		{"no freeriders", experiment.Fig1NoFreeriders},
		{"25% freeriders", experiment.Fig1Freeriders},
		{"25% freeriders (LiFTinG)", experiment.Fig1FreeridersLiFTinG},
	}

	fmt.Fprintf(w, "%-26s", "lag")
	for _, lag := range lags {
		fmt.Fprintf(w, "%8s", lag)
	}
	fmt.Fprintln(w)
	healths := make([][]float64, 0, len(curves))
	for _, cv := range curves {
		_, res, err := experiment.Fig1(ctx, p, cv.scenario, lags)
		if err != nil {
			fmt.Fprintln(w, "interrupted:", err)
			return healths
		}
		fmt.Fprintf(w, "%-26s", cv.name)
		for _, h := range res.Health {
			fmt.Fprintf(w, "%8.2f", h)
		}
		fmt.Fprintln(w)
		healths = append(healths, res.Health)
	}

	fmt.Fprintln(w, `
Expected shape (paper Figure 1): without LiFTinG the freerider curve stays
far below the baseline at every lag; with LiFTinG it returns close to the
baseline because freeriding beyond ~3.5% is detected and expelled.`)
	return healths
}
