package freerider

import (
	"math"
	"testing"
	"testing/quick"

	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/rng"
)

func TestDegreeFanout(t *testing.T) {
	cases := []struct {
		d1   float64
		f    int
		want int
	}{
		{0, 7, 7},
		{1.0 / 7, 7, 6}, // the paper's PlanetLab setting: f̂ = 6
		{0.5, 12, 6},
		{1, 7, 0},
		{0.1, 12, 11},
	}
	for _, c := range cases {
		d := Degree{Delta1: c.d1}
		if got := d.Fanout(c.f); got != c.want {
			t.Errorf("Fanout(δ1=%v, f=%d) = %d, want %d", c.d1, c.f, got, c.want)
		}
	}
}

func TestDegreeGain(t *testing.T) {
	// §6.3.1: gain = 1 − (1−δ1)(1−δ2)(1−δ3); ≈ 10% at δ = 0.035.
	d := Degree{Delta1: 0.035, Delta2: 0.035, Delta3: 0.035}
	if g := d.Gain(); math.Abs(g-0.10) > 0.005 {
		t.Fatalf("gain = %v, want ≈ 0.10", g)
	}
	if g := (Degree{}).Gain(); g != 0 {
		t.Fatalf("honest-equivalent gain = %v", g)
	}
}

func TestDegreeFilterProposalDropsWholeServers(t *testing.T) {
	// δ2 = 1 drops everything; chunks from the same server drop together.
	s := rng.New(1)
	origin := func(c msg.ChunkID) msg.NodeID { return msg.NodeID(c % 3) }
	chunks := []msg.ChunkID{0, 1, 2, 3, 4, 5}
	d := Degree{Delta2: 1}
	if out := d.FilterProposal(s, chunks, origin); len(out) != 0 {
		t.Fatalf("δ2=1 kept %v", out)
	}
	d = Degree{Delta2: 0}
	if out := d.FilterProposal(s, chunks, origin); len(out) != 6 {
		t.Fatalf("δ2=0 dropped chunks: %v", out)
	}
	// Per-server atomicity: for any draw, chunks 0 and 3 (same origin)
	// are either both kept or both dropped.
	d = Degree{Delta2: 0.5}
	for trial := 0; trial < 100; trial++ {
		out := d.FilterProposal(s, chunks, origin)
		has := map[msg.ChunkID]bool{}
		for _, c := range out {
			has[c] = true
		}
		if has[0] != has[3] || has[1] != has[4] || has[2] != has[5] {
			t.Fatalf("server's chunks split: %v", out)
		}
	}
}

func TestDegreeFilterProposalRate(t *testing.T) {
	s := rng.New(2)
	origin := func(c msg.ChunkID) msg.NodeID { return msg.NodeID(c) } // all distinct servers
	chunks := make([]msg.ChunkID, 1000)
	for i := range chunks {
		chunks[i] = msg.ChunkID(i)
	}
	d := Degree{Delta2: 0.3}
	kept := len(d.FilterProposal(s, chunks, origin))
	if math.Abs(float64(kept)/1000-0.7) > 0.05 {
		t.Fatalf("kept %d/1000, want ≈700", kept)
	}
}

func TestDegreeFilterServeRate(t *testing.T) {
	s := rng.New(3)
	req := make([]msg.ChunkID, 2000)
	for i := range req {
		req[i] = msg.ChunkID(i)
	}
	d := Degree{Delta3: 0.3}
	served := len(d.FilterServe(s, req))
	if math.Abs(float64(served)/2000-0.7) > 0.04 {
		t.Fatalf("served %d/2000, want ≈1400", served)
	}
	if got := (Degree{}).FilterServe(s, req); len(got) != len(req) {
		t.Fatal("δ3=0 must serve everything")
	}
}

func TestDegreeLiesInAcks(t *testing.T) {
	d := Degree{Delta2: 0.5}
	received := []msg.ChunkID{1, 2, 3}
	proposed := []msg.ChunkID{1} // dropped 2 and 3
	if got := d.AckChunks(received, proposed); len(got) != 3 {
		t.Fatalf("freerider ack = %v, want the full received set (the lie)", got)
	}
	// Honest acks only what was proposed.
	if got := (gossip.Honest{}).AckChunks(received, proposed); len(got) != 1 {
		t.Fatalf("honest ack = %v, want only proposed chunks", got)
	}
}

func TestPeriodStretcher(t *testing.T) {
	if f := (PeriodStretcher{Factor: 2}).PeriodFactor(); f != 2 {
		t.Fatalf("factor = %v, want 2", f)
	}
	if f := (PeriodStretcher{Factor: 0.5}).PeriodFactor(); f != 1 {
		t.Fatalf("sub-unit factor should clamp to 1, got %v", f)
	}
}

func newColluderWorld(t *testing.T, pm float64) (*Colluder, *membership.Directory, *rng.Stream) {
	t.Helper()
	dir := membership.Sequential(100)
	coalition := []msg.NodeID{90, 91, 92, 93, 94}
	c := NewColluder(90, coalition, pm, dir, rng.New(5))
	return c, dir, rng.New(6)
}

func TestColluderBiasesSelection(t *testing.T) {
	c, dir, s := newColluderWorld(t, 0.5)
	inCoalition := 0
	total := 0
	for trial := 0; trial < 500; trial++ {
		for _, p := range c.SelectPartners(s, dir, 90, 7) {
			total++
			if c.Group[p] {
				inCoalition++
			}
		}
	}
	rate := float64(inCoalition) / float64(total)
	// pm = 0.5 but self-picks are rejected: expect a bit under 0.5.
	if rate < 0.3 || rate > 0.55 {
		t.Fatalf("coalition pick rate = %v, want ≈0.45", rate)
	}
}

func TestColluderSelectionValid(t *testing.T) {
	c, dir, s := newColluderWorld(t, 0.9)
	f := func(seed uint16) bool {
		out := c.SelectPartners(rng.New(uint64(seed)), dir, 90, 4)
		seen := map[msg.NodeID]bool{}
		for _, p := range out {
			if p == 90 || seen[p] || !dir.Alive(p) {
				return false
			}
			seen[p] = true
		}
		return len(out) == 4
	}
	_ = s
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestColluderCoverUp(t *testing.T) {
	c, _, _ := newColluderWorld(t, 0.5)
	if !c.ConfirmAnswer(91, false) {
		t.Fatal("colluder did not cover a coalition member")
	}
	if c.ConfirmAnswer(10, false) {
		t.Fatal("colluder lied about a non-member")
	}
	if !c.ConfirmAnswer(10, true) {
		t.Fatal("colluder denied a true statement about a non-member")
	}
	c.CoverUp = false
	if c.ConfirmAnswer(91, false) {
		t.Fatal("cover-up disabled but colluder still lied")
	}
}

func TestColluderMITM(t *testing.T) {
	c, _, _ := newColluderWorld(t, 0.5)
	actual := []msg.NodeID{1, 2, 3}
	if got := c.AckPartners(actual); len(got) != 3 || got[0] != 1 {
		t.Fatalf("non-MITM colluder altered ack partners: %v", got)
	}
	if got := c.ClaimedOrigin(7); got != 7 {
		t.Fatalf("non-MITM colluder altered origin: %v", got)
	}
	c.MITM = true
	forged := c.AckPartners(actual)
	if len(forged) != 3 {
		t.Fatalf("MITM ack partners length = %d", len(forged))
	}
	for _, p := range forged {
		if !c.Group[p] {
			t.Fatalf("MITM claimed non-coalition partner %d", p)
		}
	}
	if got := c.ClaimedOrigin(7); !c.Group[got] {
		t.Fatalf("MITM claimed non-coalition origin %d", got)
	}
}

func TestColluderForgeAudit(t *testing.T) {
	c, _, _ := newColluderWorld(t, 0.5)
	resp := &msg.AuditResp{Sender: 90, Proposals: []msg.ProposalRecord{
		{Period: 1, Partner: 91, Chunks: []msg.ChunkID{1}},
		{Period: 1, Partner: 10, Chunks: []msg.ChunkID{2}},
	}}
	// Without forging, the snapshot passes through.
	if got := c.ForgeAudit(resp); got != resp {
		t.Fatal("non-forging colluder rewrote the snapshot")
	}
	c.ForgeUniform = true
	forged := c.ForgeAudit(resp)
	if forged == resp {
		t.Fatal("forging colluder returned the original")
	}
	if c.Group[forged.Proposals[0].Partner] {
		t.Fatal("coalition partner not rewritten")
	}
	if forged.Proposals[1].Partner != 10 {
		t.Fatal("honest partner should be untouched")
	}
	// The original snapshot is not mutated.
	if resp.Proposals[0].Partner != 91 {
		t.Fatal("ForgeAudit mutated the original snapshot")
	}
}

func TestBehaviorInterfaceCompliance(t *testing.T) {
	// All strategies are valid gossip behaviors.
	var behaviors []gossip.Behavior
	c, _, _ := newColluderWorld(t, 0.2)
	behaviors = append(behaviors,
		Degree{Delta1: 0.1},
		PeriodStretcher{Factor: 2},
		c,
	)
	for _, b := range behaviors {
		if b.PeriodFactor() < 1 {
			t.Fatalf("%T: period factor < 1", b)
		}
	}
}

func TestStretchingColluder(t *testing.T) {
	c, _, _ := newColluderWorld(t, 0.5)
	sc := StretchingColluder{Colluder: c, Factor: 2}
	if f := sc.PeriodFactor(); f != 2 {
		t.Fatalf("factor = %v, want 2", f)
	}
	if f := (StretchingColluder{Colluder: c, Factor: 0.5}).PeriodFactor(); f != 1 {
		t.Fatalf("sub-unit factor should clamp to 1, got %v", f)
	}
	// The coalition attacks compose: cover-up and biased selection survive
	// the embedding.
	if !sc.ConfirmAnswer(91, false) {
		t.Fatal("stretching colluder did not cover a coalition member")
	}
	if got := sc.Fanout(7); got != 7 {
		t.Fatalf("stretching colluder altered fanout: %d", got)
	}
}

func TestBlameSpammer(t *testing.T) {
	dir := membership.Sequential(50)
	b := &BlameSpammer{Self: 7, Dir: dir, Targets: 3, Value: 7}
	s := rng.New(4)
	seenTargets := map[msg.NodeID]bool{}
	for trial := 0; trial < 200; trial++ {
		acc := b.SpamBlames(s)
		if len(acc) != 3 {
			t.Fatalf("got %d accusations, want 3", len(acc))
		}
		perPeriod := map[msg.NodeID]bool{}
		for _, a := range acc {
			if a.Target == 7 {
				t.Fatal("spammer accused itself")
			}
			if a.Value != 7 {
				t.Fatalf("accusation value %v, want 7", a.Value)
			}
			if a.Reason != msg.ReasonNoAck {
				t.Fatalf("accusation reason %v, want no-ack masquerade", a.Reason)
			}
			if perPeriod[a.Target] {
				t.Fatal("duplicate target within one period")
			}
			perPeriod[a.Target] = true
			seenTargets[a.Target] = true
		}
	}
	// Targets are spread over the membership, not fixated.
	if len(seenTargets) < 40 {
		t.Fatalf("spam hit only %d distinct targets over 200 periods", len(seenTargets))
	}
}

func TestBlameSpammerDisabled(t *testing.T) {
	s := rng.New(4)
	if acc := (&BlameSpammer{Self: 1, Targets: 3, Value: 7}).SpamBlames(s); acc != nil {
		t.Fatalf("spammer without a directory emitted %v", acc)
	}
	dir := membership.Sequential(10)
	if acc := (&BlameSpammer{Self: 1, Dir: dir, Value: 7}).SpamBlames(s); acc != nil {
		t.Fatalf("zero-target spammer emitted %v", acc)
	}
	if acc := (&BlameSpammer{Self: 1, Dir: dir, Targets: 2}).SpamBlames(s); acc != nil {
		t.Fatalf("zero-value spammer emitted %v", acc)
	}
}
