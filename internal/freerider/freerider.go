// Package freerider implements the attack strategies of §4 of the paper as
// gossip.Behavior implementations:
//
//   - Degree: the wise freerider of §6.3.1 with degree of freeriding
//     ∆ = (δ1, δ2, δ3) — reduced fanout, partial propose, partial serve —
//     plus the rational lies of §5.2 (claim everything in acks).
//   - PeriodStretcher: the increase-gossip-period attack (§4.1 iv).
//   - Colluder: biased partner selection toward a coalition (§4.1 iii),
//     cover-up in confirmations, the man-in-the-middle attack on direct
//     cross-checking (§5.2, Fig. 8b) and history forgery at audit time
//     (§5.3).
//   - StretchingColluder: a colluder that additionally stretches its gossip
//     period — the combined iii+iv attack.
//   - BlameSpammer: the bad-mouther — blames are not authenticated (§5.1),
//     so a malicious node can flood honest targets with wrongful blame;
//     LiFTinG's defense is statistical (compensation plus the threshold
//     margin), not per-blame.
package freerider

import (
	"math"

	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/rng"
)

// Degree is a wise freerider parameterized by the paper's degree of
// freeriding ∆ = (δ1, δ2, δ3):
//
//   - it contacts only (1−δ1)·f partners per gossip period,
//   - it drops the chunks received from a fraction δ2 of its servers from
//     its proposals (whole servers at a time, following the footnote in
//     §6.3.1: removing chunks from the fewest sources minimizes blame),
//   - it serves only (1−δ3)·|R| of the chunks requested from it.
//
// The resulting upload-bandwidth gain is 1 − (1−δ1)(1−δ2)(1−δ3) (§6.3.1).
// Degree freeriders lie in their acknowledgements (claiming they proposed
// everything they received) because an honest ack would be blamed f
// deterministically while a lie is only caught by cross-checking.
type Degree struct {
	gossip.Honest
	Delta1, Delta2, Delta3 float64
}

var _ gossip.Behavior = Degree{}

// Gain returns the saved fraction of upload bandwidth.
func (d Degree) Gain() float64 {
	return 1 - (1-d.Delta1)*(1-d.Delta2)*(1-d.Delta3)
}

// Fanout implements gossip.Behavior: contact (1−δ1)·f partners.
func (d Degree) Fanout(f int) int {
	reduced := int(math.Round((1 - d.Delta1) * float64(f)))
	if reduced < 0 {
		return 0
	}
	if reduced > f {
		return f
	}
	return reduced
}

// FilterProposal implements gossip.Behavior: drop each server's chunks with
// probability δ2.
func (d Degree) FilterProposal(s *rng.Stream, chunks []msg.ChunkID, originOf func(msg.ChunkID) msg.NodeID) []msg.ChunkID {
	if d.Delta2 <= 0 {
		return chunks
	}
	dropped := make(map[msg.NodeID]bool)
	decided := make(map[msg.NodeID]bool)
	out := make([]msg.ChunkID, 0, len(chunks))
	for _, c := range chunks {
		server := originOf(c)
		if !decided[server] {
			decided[server] = true
			dropped[server] = s.Bernoulli(d.Delta2)
		}
		if !dropped[server] {
			out = append(out, c)
		}
	}
	return out
}

// FilterServe implements gossip.Behavior: serve each requested chunk with
// probability 1−δ3.
func (d Degree) FilterServe(s *rng.Stream, requested []msg.ChunkID) []msg.ChunkID {
	if d.Delta3 <= 0 {
		return requested
	}
	out := make([]msg.ChunkID, 0, len(requested))
	for _, c := range requested {
		if !s.Bernoulli(d.Delta3) {
			out = append(out, c)
		}
	}
	return out
}

// AckChunks implements gossip.Behavior: lie — acknowledge everything
// received regardless of what was proposed, so the incomplete proposal is
// only detectable through witness confirmation (§5.2).
func (d Degree) AckChunks(received, _ []msg.ChunkID) []msg.ChunkID {
	return received
}

// PeriodStretcher increases the gossip period by Factor (> 1), proposing
// less often and therefore older, less interesting chunks (§4.1 iv).
type PeriodStretcher struct {
	gossip.Honest
	Factor float64
}

var _ gossip.Behavior = PeriodStretcher{}

// PeriodFactor implements gossip.Behavior.
func (p PeriodStretcher) PeriodFactor() float64 {
	if p.Factor < 1 {
		return 1
	}
	return p.Factor
}

// Colluder is a member of a freeriding coalition.
type Colluder struct {
	gossip.Honest
	// Self is the colluder's own id.
	Self msg.NodeID
	// Group is the coalition membership (may include Self).
	Group map[msg.NodeID]bool
	// Members is the coalition as a slice for sampling.
	Members []msg.NodeID
	// PM is the probability of picking a colluder as a propose partner
	// (§6.3.2: the maximum undetectable value p*m follows Equation 7).
	PM float64
	// CoverUp makes the colluder confirm any statement about coalition
	// members (§5.2: "if p2 colludes with p1, it will answer that p1 sent a
	// valid proposal regardless of what p1 sent").
	CoverUp bool
	// MITM claims coalition members as ack partners and chunk origins
	// (§5.2, Fig. 8b), deflecting confirm traffic to colluders.
	MITM bool
	// ForgeUniform rewrites the audit snapshot, replacing coalition
	// partners with uniformly random nodes to defeat the entropy check —
	// which a-posteriori cross-checking then exposes (§5.3).
	ForgeUniform bool
	// Dir and Rand support forgery and partner sampling.
	Dir  *membership.Directory
	Rand *rng.Stream
}

var _ gossip.Behavior = (*Colluder)(nil)

// NewColluder builds a colluder for the given coalition.
func NewColluder(self msg.NodeID, coalition []msg.NodeID, pm float64, dir *membership.Directory, rand *rng.Stream) *Colluder {
	group := make(map[msg.NodeID]bool, len(coalition))
	members := make([]msg.NodeID, 0, len(coalition))
	for _, id := range coalition {
		if !group[id] {
			group[id] = true
			members = append(members, id)
		}
	}
	return &Colluder{
		Self:    self,
		Group:   group,
		Members: members,
		PM:      pm,
		CoverUp: true,
		Dir:     dir,
		Rand:    rand,
	}
}

// SelectPartners implements gossip.Behavior: each partner slot is filled by
// a random coalition member with probability PM, and by a uniform random
// node otherwise (the entropy-maximizing strategy of §6.3.2: uniform within
// each class).
func (c *Colluder) SelectPartners(s *rng.Stream, dir *membership.Directory, self msg.NodeID, count int) []msg.NodeID {
	chosen := make(map[msg.NodeID]bool, count)
	out := make([]msg.NodeID, 0, count)
	attempts := 0
	for len(out) < count && attempts < count*20 {
		attempts++
		var pick msg.NodeID
		if s.Bernoulli(c.PM) {
			pick = c.Members[s.IntN(len(c.Members))]
		} else {
			sample := dir.Sample(s, 1, self)
			if len(sample) == 0 {
				break
			}
			pick = sample[0]
		}
		if pick == self || chosen[pick] || !dir.Alive(pick) {
			continue
		}
		chosen[pick] = true
		out = append(out, pick)
	}
	return out
}

// ConfirmAnswer implements gossip.Behavior: cover coalition members up.
func (c *Colluder) ConfirmAnswer(suspect msg.NodeID, truth bool) bool {
	if c.CoverUp && c.Group[suspect] {
		return true
	}
	return truth
}

// AckPartners implements gossip.Behavior: under MITM, claim coalition
// members as the propose partners so the verifier's confirms go to nodes
// that will cover the lie.
func (c *Colluder) AckPartners(actual []msg.NodeID) []msg.NodeID {
	if !c.MITM {
		return actual
	}
	out := make([]msg.NodeID, 0, len(actual))
	for range actual {
		out = append(out, c.Members[c.Rand.IntN(len(c.Members))])
	}
	return out
}

// ClaimedOrigin implements gossip.Behavior: under MITM, claim a coalition
// member as the chunk's origin.
func (c *Colluder) ClaimedOrigin(trueServer msg.NodeID) msg.NodeID {
	if !c.MITM {
		return trueServer
	}
	return c.Members[c.Rand.IntN(len(c.Members))]
}

// StretchingColluder combines the coalition attacks with gossip-period
// stretching (§4.1 iii+iv): the node biases its partner selection toward the
// coalition and proposes only every Factor·Tg. The audit sees both a
// coalition-concentrated fanout history and too few propose phases.
type StretchingColluder struct {
	*Colluder
	Factor float64
}

var _ gossip.Behavior = StretchingColluder{}

// PeriodFactor implements gossip.Behavior: stretch the period.
func (c StretchingColluder) PeriodFactor() float64 {
	if c.Factor < 1 {
		return 1
	}
	return c.Factor
}

// BlameSpammer is a bad-mouther: a node that otherwise follows the protocol
// but floods the reputation substrate with wrongful blames against random
// honest targets. The blame value masquerades as a missed acknowledgement
// (the largest blame a single verification plausibly yields, Table 1), so a
// manager cannot reject it on its face; the system's defense is that a
// bounded spam rate stays inside the compensated threshold margin.
type BlameSpammer struct {
	gossip.Honest
	// Self is excluded from target sampling.
	Self msg.NodeID
	// Dir is the membership view targets are drawn from.
	Dir *membership.Directory
	// Targets is the number of wrongful accusations per gossip period.
	Targets int
	// Value is the per-accusation blame (defaults to 0 = emit nothing; a
	// rational spammer uses NoAckBlame(f) = f).
	Value float64
}

var _ gossip.Behavior = (*BlameSpammer)(nil)

// SpamBlames implements gossip.Behavior: accuse Targets uniform random nodes
// of never acknowledging.
func (b *BlameSpammer) SpamBlames(s *rng.Stream) []gossip.Accusation {
	if b.Dir == nil || b.Targets <= 0 || b.Value <= 0 {
		return nil
	}
	picks := b.Dir.Sample(s, b.Targets, b.Self)
	out := make([]gossip.Accusation, 0, len(picks))
	for _, t := range picks {
		out = append(out, gossip.Accusation{Target: t, Value: b.Value, Reason: msg.ReasonNoAck})
	}
	return out
}

// ForgeAudit implements gossip.Behavior: optionally rewrite coalition
// partners in the snapshot as uniformly random nodes to pass the entropy
// check. The alleged receivers will not confirm these entries, so
// a-posteriori cross-checking blames the forger instead (§5.3).
func (c *Colluder) ForgeAudit(resp *msg.AuditResp) *msg.AuditResp {
	if !c.ForgeUniform || c.Dir == nil || c.Rand == nil {
		return resp
	}
	forged := *resp
	forged.Proposals = make([]msg.ProposalRecord, len(resp.Proposals))
	copy(forged.Proposals, resp.Proposals)
	for i := range forged.Proposals {
		if c.Group[forged.Proposals[i].Partner] {
			if sample := c.Dir.Sample(c.Rand, 1, c.Self); len(sample) == 1 {
				forged.Proposals[i].Partner = sample[0]
			}
		}
	}
	return &forged
}
