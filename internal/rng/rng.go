// Package rng provides deterministic, splittable randomness for simulations.
//
// All randomness in the repository flows from a single root seed through
// named sub-streams, which makes every experiment bit-reproducible: the same
// seed always yields the same partner selections, message losses and
// latencies, regardless of scheduling.
//
// Streams are split with Derive (by name) or ForNode (by node id); splitting
// hashes the parent seed together with the label so sibling streams are
// statistically independent.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"strconv"
)

// Stream is a deterministic pseudo-random stream. It wraps a PCG generator
// seeded from a root seed and a derivation path.
//
// A Stream is not safe for concurrent use; derive one stream per goroutine
// or per simulated node instead of sharing.
type Stream struct {
	seed uint64
	r    *rand.Rand
}

// New returns a root stream for the given seed.
func New(seed uint64) *Stream {
	return &Stream{
		seed: seed,
		r:    rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Derive returns a new independent stream identified by name. Deriving the
// same name from the same parent always yields the same stream.
func (s *Stream) Derive(name string) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return New(h.Sum64())
}

// ForNode returns a per-node sub-stream. Equivalent to Derive("node/<id>").
func (s *Stream) ForNode(id uint32) *Stream {
	return s.Derive("node/" + strconv.FormatUint(uint64(id), 10))
}

// Seed reports the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// NormFloat64 returns a standard normal value.
func (s *Stream) NormFloat64() float64 { return s.r.NormFloat64() }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Stream) ExpFloat64() float64 { return s.r.ExpFloat64() }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// SampleK returns a uniform random k-subset of [0, n) using Floyd's
// algorithm. The result is in random order. It panics if k > n or k < 0.
func (s *Stream) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK: k out of range")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.r.IntN(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	s.r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SampleKFrom returns a uniform random k-subset of the given candidate slice
// without modifying it. It panics if k > len(candidates).
func SampleKFrom[T any](s *Stream, candidates []T, k int) []T {
	idx := s.SampleK(len(candidates), k)
	out := make([]T, 0, k)
	for _, i := range idx {
		out = append(out, candidates[i])
	}
	return out
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if the total weight is not positive.
func (s *Stream) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: WeightedChoice: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: WeightedChoice: total weight must be positive")
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Poisson returns a sample from Poisson(lambda) using Knuth's method for
// small rates and a normal approximation beyond lambda = 64.
func (s *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		k := int(lambda + s.r.NormFloat64()*math.Sqrt(lambda) + 0.5)
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns a sample from Binomial(n, p) by direct simulation for
// small n and a normal approximation for large n (n*p*(1-p) > 100).
func (s *Stream) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial: negative n")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if v := float64(n) * p * (1 - p); v > 100 {
		x := float64(n)*p + s.r.NormFloat64()*math.Sqrt(v)
		k := int(x + 0.5)
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	k := 0
	for i := 0; i < n; i++ {
		if s.r.Float64() < p {
			k++
		}
	}
	return k
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
