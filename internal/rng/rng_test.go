package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive("alpha")
	b := root.Derive("beta")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestDeriveStable(t *testing.T) {
	x := New(7).Derive("x").Uint64()
	y := New(7).Derive("x").Uint64()
	if x != y {
		t.Fatalf("Derive is not stable: %d != %d", x, y)
	}
}

func TestForNodeMatchesDerive(t *testing.T) {
	a := New(3).ForNode(17).Uint64()
	b := New(3).Derive("node/17").Uint64()
	if a != b {
		t.Fatalf("ForNode(17) != Derive(%q)", "node/17")
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(2)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.07) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.07) > 0.005 {
		t.Fatalf("Bernoulli(0.07) hit rate = %v, want ~0.07", rate)
	}
}

func TestSampleKProperties(t *testing.T) {
	s := New(11)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		out := s.SampleK(n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKUniform(t *testing.T) {
	// Each element of [0, n) should appear in a k-subset with probability
	// k/n. Chi-square over inclusion counts should be modest.
	s := New(5)
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleK(n, k) {
			counts[v]++
		}
	}
	expected := float64(trials) * float64(k) / float64(n)
	var chi float64
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	// 19 degrees of freedom; 43.8 is the 0.1% critical value.
	if chi > 43.8 {
		t.Fatalf("SampleK inclusion chi-square = %v, suggests non-uniform sampling", chi)
	}
}

func TestSampleKFullRange(t *testing.T) {
	s := New(9)
	out := s.SampleK(10, 10)
	seen := make(map[int]bool)
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("SampleK(10,10) did not return a permutation: %v", out)
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(3, 4) did not panic")
		}
	}()
	New(1).SampleK(3, 4)
}

func TestSampleKFrom(t *testing.T) {
	s := New(13)
	cands := []string{"a", "b", "c", "d", "e"}
	out := SampleKFrom(s, cands, 3)
	if len(out) != 3 {
		t.Fatalf("got %d elements, want 3", len(out))
	}
	seen := make(map[string]bool)
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("SampleKFrom returned duplicates: %v", out)
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(21)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestBinomialMoments(t *testing.T) {
	s := New(31)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {1000, 0.5}, {100000, 0.07}} {
		var sum, sum2 float64
		const trials = 3000
		for i := 0; i < trials; i++ {
			x := float64(s.Binomial(tc.n, tc.p))
			sum += x
			sum2 += x * x
		}
		mean := sum / trials
		wantMean := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(trials) {
			t.Errorf("Binomial(%d,%v): mean = %v, want ~%v", tc.n, tc.p, mean, wantMean)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(41)
	if got := s.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := s.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d, want 10", got)
	}
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, 0.5) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(51)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("Perm returned a duplicate")
		}
		seen[v] = true
	}
}
