package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
)

func get(t *testing.T, url string) (string, http.Header) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	c := metrics.NewCollector()
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	c.OnSend(1, serve, serve.WireSize())
	c.OnDeliver(2, serve, serve.WireSize())
	reg := metrics.NewRegistry()
	c.Register(reg)

	srv := New(reg, func() Status {
		return Status{
			NodeID:          3,
			Period:          12,
			MembershipEpoch: 2,
			Members:         5,
			PeerBookSize:    4,
			Expelled:        []uint32{7},
			Scores:          []Score{{Node: 1, Score: -0.5}, {Node: 2, Score: 0.1}},
		}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	body, hdr := get(t, "http://"+addr+"/metrics")
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics content type: %q", hdr.Get("Content-Type"))
	}
	for _, want := range []string{
		"lifting_verification_overhead_ratio",
		`lifting_sent_messages_total{kind="serve"} 1`,
		"# TYPE lifting_serve_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, hdr = get(t, "http://"+addr+"/status")
	if hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("status content type: %q", hdr.Get("Content-Type"))
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, body)
	}
	if st.NodeID != 3 || st.Period != 12 || st.Members != 5 || st.PeerBookSize != 4 {
		t.Fatalf("status fields: %+v", st)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime not stamped: %+v", st)
	}
	if len(st.Scores) != 2 || st.Scores[0].Node != 1 {
		t.Fatalf("scores: %+v", st.Scores)
	}

	body, _ = get(t, "http://"+addr+"/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}

	body, _ = get(t, "http://"+addr+"/")
	if !strings.Contains(body, "/metrics") {
		t.Fatalf("index page: %q", body)
	}
}

// TestServerCloseDrainsGoroutines closes the observability server while
// scrapes are in flight — including one parked inside the status callback —
// and asserts Close returns promptly and every server goroutine drains. A
// leaked handler goroutine here would accumulate scrape after scrape in a
// long-running soak.
func TestServerCloseDrainsGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	var once sync.Once
	srv := New(metrics.NewRegistry(), func() Status {
		// First scrape parks inside the node's status provider; later
		// scrapes (and the node itself) must not be blocked by it.
		once.Do(func() { <-release })
		return Status{NodeID: 9}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		path := "/status"
		if i%2 == 0 {
			path = "/metrics"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("http://" + addr + path)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind an in-flight scrape")
	}
	close(release)
	wg.Wait()
	client.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain after Close: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}

func TestServerClose(t *testing.T) {
	srv := New(metrics.NewRegistry(), func() Status { return Status{} })
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	client := &http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
