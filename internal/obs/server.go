// Package obs serves a node's observability surface over HTTP: Prometheus
// text exposition on /metrics, an operator-facing JSON summary on /status,
// and the standard pprof handlers on /debug/pprof/. It is deliberately
// dependency-free: the exposition format is hand-rolled in
// internal/metrics, and everything here is net/http from the standard
// library.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"lifting/internal/metrics"
)

// Score is one entry of the local score view, ordered by node id (a JSON
// map would sort ids lexically: "10" before "2").
type Score struct {
	Node  uint32  `json:"node"`
	Score float64 `json:"score"`
}

// Status is the operator-facing summary served on /status.
type Status struct {
	NodeID          uint32   `json:"node_id"`
	Period          uint64   `json:"period"`
	MembershipEpoch uint64   `json:"membership_epoch"`
	Members         int      `json:"members"`
	PeerBookSize    int      `json:"peer_book_size"`
	UptimeSeconds   float64  `json:"uptime_seconds"`
	Expelled        []uint32 `json:"expelled"`
	Scores          []Score  `json:"scores"`
}

// Server is a small HTTP server exposing one node's metrics and status.
type Server struct {
	mux    *http.ServeMux
	srv    *http.Server
	ln     net.Listener
	start  time.Time
	status func() Status
}

// New assembles a server around a metric registry and a status provider.
// The status callback runs on HTTP handler goroutines; it must be safe to
// call concurrently with the node's operation.
func New(reg *metrics.Registry, status func() Status) *Server {
	s := &Server{mux: http.NewServeMux(), start: time.Now(), status: status}
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := s.status()
		st.UptimeSeconds = time.Since(s.start).Seconds()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "lifting-node\n\n/metrics\n/status\n/debug/pprof/\n")
	})
	return s
}

// Start binds addr (host:port; port 0 picks a free one) and serves in the
// background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
