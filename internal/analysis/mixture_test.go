package analysis

import (
	"math"
	"math/rand/v2"
	"testing"
)

func synthScores(nHonest, nRiders int, gap float64, seed uint64) (scores []float64, isRider []bool) {
	r := rand.New(rand.NewPCG(seed, seed))
	for i := 0; i < nHonest; i++ {
		scores = append(scores, r.NormFloat64()*3)
		isRider = append(isRider, false)
	}
	for i := 0; i < nRiders; i++ {
		scores = append(scores, -gap+r.NormFloat64()*3)
		isRider = append(isRider, true)
	}
	return scores, isRider
}

func TestFitMixtureSeparatesModes(t *testing.T) {
	scores, isRider := synthScores(900, 100, 25, 1)
	m, ok := FitMixture(scores, 100)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(m.Mean[0]-(-25)) > 2 {
		t.Fatalf("freerider mode mean = %v, want ≈ -25", m.Mean[0])
	}
	if math.Abs(m.Mean[1]) > 2 {
		t.Fatalf("honest mode mean = %v, want ≈ 0", m.Mean[1])
	}
	if math.Abs(m.Weight[0]-0.1) > 0.03 {
		t.Fatalf("freerider weight = %v, want ≈ 0.1", m.Weight[0])
	}
	// Classification quality on a clean gap: near-perfect.
	correct := 0
	for i, s := range scores {
		if m.Classify(s) == isRider[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(scores)); frac < 0.99 {
		t.Fatalf("mixture classification accuracy = %v", frac)
	}
	if m.Separation() < 4 {
		t.Fatalf("separation = %v, want a wide gap", m.Separation())
	}
}

func TestFitMixtureDegenerateInputs(t *testing.T) {
	if _, ok := FitMixture([]float64{1, 2}, 10); ok {
		t.Fatal("fit accepted fewer than 4 points")
	}
	if _, ok := FitMixture([]float64{5, 5, 5, 5, 5}, 10); ok {
		t.Fatal("fit accepted zero-variance data")
	}
}

func TestMixtureOrdering(t *testing.T) {
	scores, _ := synthScores(100, 400, 30, 3) // majority are the LOW mode
	m, ok := FitMixture(scores, 100)
	if !ok {
		t.Fatal("fit failed")
	}
	if m.Mean[0] >= m.Mean[1] {
		t.Fatalf("components not ordered: %v >= %v", m.Mean[0], m.Mean[1])
	}
}

func TestPosteriorMonotone(t *testing.T) {
	scores, _ := synthScores(500, 100, 20, 5)
	m, ok := FitMixture(scores, 100)
	if !ok {
		t.Fatal("fit failed")
	}
	prev := 1.1
	for x := -30.0; x <= 10; x += 2 {
		p := m.Posterior(x)
		if p > prev+0.02 {
			t.Fatalf("posterior not decreasing in score at %v", x)
		}
		prev = p
	}
}

// TestMixtureVulnerableToShifting demonstrates why the paper rejects
// relative (mixture-based) detection (§6.2): if freeriders wrongfully blame
// honest nodes and shift the whole distribution, the mixture detector's
// boundary shifts with it, while LiFTinG's absolute threshold η does not.
func TestMixtureVulnerableToShifting(t *testing.T) {
	scores, isRider := synthScores(900, 100, 25, 7)
	shift := -40.0 // a coordinated wrongful-blame campaign
	shifted := make([]float64, len(scores))
	for i, s := range scores {
		shifted[i] = s + shift
	}
	m, ok := FitMixture(shifted, 100)
	if !ok {
		t.Fatal("fit failed")
	}
	// The mixture still flags the same relative population…
	flagged := 0
	for i, s := range shifted {
		if m.Classify(s) && isRider[i] {
			flagged++
		}
	}
	if flagged < 95 {
		t.Fatalf("mixture lost the freeriders after the shift: %d/100", flagged)
	}
	// …but an absolute threshold now condemns everyone — including honest
	// nodes — which is the attack channel: freeriders can weaponize either
	// detector, absolute by shifting others, relative by shifting
	// themselves. LiFTinG chooses absolute + the assumption that freeriders
	// do not wrongfully accuse (§2), making the shift irrational.
	eta := -9.75
	honestBelow := 0
	for i, s := range shifted {
		if !isRider[i] && s < eta {
			honestBelow++
		}
	}
	if honestBelow < 850 {
		t.Fatalf("expected the shifted distribution to drown honest nodes below η, got %d", honestBelow)
	}
}
