// Package analysis implements the closed-form performance analysis of §6 of
// the paper: expected wrongful blames under message loss (Equations 2–5),
// normalized scores and detection/false-positive bounds (§6.3.1), the
// expected blame of a freerider of degree ∆ (b̃′(∆)), the upload-bandwidth
// gain model, and the entropy-threshold inversion of Equation 7 (§6.3.2).
//
// The standard deviations σ(b) and σ(b′(∆)) are derived here from the same
// Bernoulli loss model (the paper defers their derivation to its technical
// report [8]); they are validated against simulation in the experiment
// suite.
package analysis

import (
	"fmt"
	"math"
)

// Params are the system parameters of the analysis.
type Params struct {
	// F is the fanout.
	F int
	// R is |R|, the (constant) number of chunks requested per proposal.
	R int
	// Loss is pl, the Bernoulli message-loss probability (pr = 1 − pl).
	Loss float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.F <= 0 {
		return fmt.Errorf("analysis: fanout must be positive, got %d", p.F)
	}
	if p.R <= 0 {
		return fmt.Errorf("analysis: |R| must be positive, got %d", p.R)
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("analysis: loss must be in [0,1), got %v", p.Loss)
	}
	return nil
}

func (p Params) pr() float64 { return 1 - p.Loss }

// DirectVerificationBlame returns b̃dv (Equation 2): the expected wrongful
// blame applied to an honest node per gossip period by direct verification,
//
//	b̃dv = pr(1 − pr²)·f²
func (p Params) DirectVerificationBlame() float64 {
	pr := p.pr()
	return pr * (1 - pr*pr) * float64(p.F) * float64(p.F)
}

// CrossCheckBlame returns b̃dcc (Equation 3): the expected wrongful blame
// per period from direct cross-checking,
//
//	b̃dcc = pr²(1 − pr^(|R|+4))·f²
func (p Params) CrossCheckBlame() float64 {
	return p.CrossCheckBlameChain() + p.CrossCheckBlameWitness()
}

// CrossCheckBlameChain returns the (a)-term of Equation 3 — the blame f
// applied when a serve or the ack is lost: pr²(1 − pr^(|R|+1))·f². This
// component accrues regardless of pdcc: acks are always expected.
func (p Params) CrossCheckBlameChain() float64 {
	pr := p.pr()
	return pr * pr * (1 - math.Pow(pr, float64(p.R+1))) * float64(p.F) * float64(p.F)
}

// CrossCheckBlameWitness returns the (b)-term of Equation 3 — the
// per-witness blame of 1 when a testimony leg is lost:
// pr²·pr^(|R|+1)·(1 − pr³)·f². This component only accrues when the
// verifier polls, i.e. a fraction pdcc of the time.
func (p Params) CrossCheckBlameWitness() float64 {
	pr := p.pr()
	return pr * pr * math.Pow(pr, float64(p.R+1)) * (1 - pr*pr*pr) * float64(p.F) * float64(p.F)
}

// APostCrossCheckBlame returns b̃apcc (Equation 4): the expected wrongful
// blame of one a-posteriori audit over a history of nh·f proposals,
//
//	b̃apcc = (1 − pr)·nh·f
//
// (polling runs over TCP, so only the original proposal loss matters).
func (p Params) APostCrossCheckBlame(nh int) float64 {
	return (1 - p.pr()) * float64(nh) * float64(p.F)
}

// WrongfulBlame returns b̃ (Equation 5): the total expected wrongful blame
// per gossip period for an honest node with pdcc = 1,
//
//	b̃ = pr(1 + pr − pr² − pr^(|R|+5))·f²
//
// This is the per-period compensation added to every score (§6.2).
func (p Params) WrongfulBlame() float64 {
	pr := p.pr()
	return pr * (1 + pr - pr*pr - math.Pow(pr, float64(p.R+5))) * float64(p.F) * float64(p.F)
}

// WrongfulBlameStd returns σ(b), the standard deviation of the per-period
// wrongful blame of an honest node. Derivation (ours; the paper defers to
// [8]): per partner j of the f partners served, direct verification blames
//
//	Bj = f·1[req lost]·1[prop recv] + (f/|R|)·Bin(|R|, pl)·1[prop+req recv]
//
// and per verifier i of the f verifiers, direct cross-checking blames
//
//	Ci = f·1[ack chain broken] + Σ_{k=1..f} 1[leg lost]·1[chain ok]
//
// with all indicators independent across partners/verifiers. The variance
// sums accordingly.
func (p Params) WrongfulBlameStd() float64 {
	pr := p.pr()
	f := float64(p.F)
	r := float64(p.R)
	pl := 1 - pr

	// Direct verification, one partner.
	// E[Bj] and E[Bj²]:
	meanDV := pr*pl*f + pr*pr*pl*r*(f/r)
	// E[Bj²] = pr·pl·f² + pr²·(f/|R|)²·E[K²], K ~ Bin(|R|, pl).
	ek2 := r*pl*(1-pl) + (r*pl)*(r*pl)
	m2DV := pr*pl*f*f + pr*pr*(f/r)*(f/r)*ek2
	varDV := m2DV - meanDV*meanDV

	// Direct cross-checking, one verifier.
	// Chain-ok probability: proposal+request delivered (pr²) times all |R|
	// serves and the ack delivered (pr^(|R|+1)).
	chainOK := pr * pr * math.Pow(pr, r+1)
	// Broken-chain blame f happens when prop+req delivered but the serve/ack
	// chain broke: probability pr²(1 − pr^(|R|+1)).
	pBreak := pr * pr * (1 - math.Pow(pr, r+1))
	// Given chain ok, each of f witnesses independently fails its 3-leg
	// exchange with probability 1 − pr³.
	pLeg := 1 - pr*pr*pr
	// Ci = f·X + Y·Z, X ~ Bern(pBreak); Z ~ Bern(chainOK) (disjoint from X);
	// Y|Z=1 ~ Bin(f, pLeg).
	meanCC := pBreak*f + chainOK*f*pLeg
	eY2 := f*pLeg*(1-pLeg) + (f*pLeg)*(f*pLeg)
	m2CC := pBreak*f*f + chainOK*eY2
	varCC := m2CC - meanCC*meanCC

	// The number of verifiers per period is Poisson(f) (each of the n·f
	// proposals in the system picks this node with probability 1/n), so by
	// the law of total variance Var(Σ Ci) = f·Var(C) + f·E[C]². This
	// workload randomness is what brings σ(b) to the paper's experimental
	// 25.6; a fixed count of f verifiers would give only ≈19.
	return math.Sqrt(f*varDV + f*varCC + f*meanCC*meanCC)
}

// Delta is the degree of freeriding ∆ = (δ1, δ2, δ3) of §6.3.1: the node
// contacts (1−δ1)·f partners, drops the chunks of a fraction δ2 of its
// servers, and serves (1−δ3)·|R| chunks per request.
type Delta struct {
	D1, D2, D3 float64
}

// Uniform returns ∆ = (δ, δ, δ).
func Uniform(d float64) Delta { return Delta{D1: d, D2: d, D3: d} }

// Gain returns the freerider's saved fraction of upload bandwidth,
// 1 − (1−δ1)(1−δ2)(1−δ3) (§6.3.1).
func (d Delta) Gain() float64 {
	return 1 - (1-d.D1)*(1-d.D2)*(1-d.D3)
}

// FreeriderBlame returns b̃′(∆) (§6.3.1): the expected blame applied to a
// freerider of degree ∆ per gossip period, including wrongful components:
//
//	b̃′(∆) = (1−δ1)·pr(1 − pr²(1−δ3))·f² + δ2·f²
//	      + (1−δ2)·pr²·[pr^(|R|+1)(1 − pr³(1−δ1)) + (1 − pr^(|R|+1))]·f²
func (p Params) FreeriderBlame(d Delta) float64 {
	pr := p.pr()
	f2 := float64(p.F) * float64(p.F)
	r := float64(p.R)
	t1 := (1 - d.D1) * pr * (1 - pr*pr*(1-d.D3)) * f2
	t2 := d.D2 * f2
	t3 := (1 - d.D2) * pr * pr *
		(math.Pow(pr, r+1)*(1-pr*pr*pr*(1-d.D1)) + (1 - math.Pow(pr, r+1))) * f2
	return t1 + t2 + t3
}

// FreeriderBlameStd returns σ(b′(∆)), derived with the same decomposition
// as WrongfulBlameStd with the freerider's deviations folded into the
// per-partner probabilities.
func (p Params) FreeriderBlameStd(d Delta) float64 {
	pr := p.pr()
	f := float64(p.F)
	r := float64(p.R)

	// Direct verification: the freerider is blamed by its (1−δ1)f partners;
	// each requested chunk fails to arrive with probability 1−pr(1−δ3)
	// (dropped or lost).
	partners := (1 - d.D1) * f
	pMiss := 1 - pr*(1-d.D3)
	// Bj = f·1[req lost] + (f/|R|)·Bin(|R|, pMiss)·1[req recv], conditioned
	// on proposal received.
	meanDV := pr*(1-pr)*f + pr*pr*(f/r)*r*pMiss
	ek2 := r*pMiss*(1-pMiss) + (r*pMiss)*(r*pMiss)
	m2DV := pr*(1-pr)*f*f + pr*pr*(f/r)*(f/r)*ek2
	varDV := m2DV - meanDV*meanDV

	// Direct cross-checking: each of the f verifiers sees a broken chain
	// with the δ2-augmented probability; witness legs fail with the
	// δ1-augmented probability.
	chainOK := (1 - d.D2) * pr * pr * math.Pow(pr, r+1)
	pBreak := d.D2*pr*pr + (1-d.D2)*pr*pr*(1-math.Pow(pr, r+1))
	pLeg := 1 - pr*pr*pr*(1-d.D1)
	meanCC := pBreak*f + chainOK*f*pLeg
	eY2 := f*pLeg*(1-pLeg) + (f*pLeg)*(f*pLeg)
	m2CC := pBreak*f*f + chainOK*eY2
	varCC := m2CC - meanCC*meanCC

	// Poisson verifier count, as in WrongfulBlameStd. The δ2 branch adds a
	// fixed blame f per verifier, folded into meanCC's contribution via the
	// total-variance term.
	meanPerVerifier := d.D2*f + (1-d.D2)*meanCC
	varPerVerifier := d.D2*(1-d.D2)*(f-meanCC)*(f-meanCC) + (1-d.D2)*varCC
	v := partners*varDV + f*varPerVerifier + f*meanPerVerifier*meanPerVerifier
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// FalsePositiveBound returns the Bienaymé–Tchebychev upper bound on the
// probability β of wrongfully expelling an honest node after r periods with
// threshold η (< 0):
//
//	β ≤ σ(b)² / (r·η²)
func (p Params) FalsePositiveBound(r int, eta float64) float64 {
	if r <= 0 || eta == 0 {
		return 1
	}
	sigma := p.WrongfulBlameStd()
	bound := sigma * sigma / (float64(r) * eta * eta)
	return math.Min(bound, 1)
}

// DetectionBound returns the Bienaymé–Tchebychev lower bound on the
// probability α of detecting a freerider of degree ∆ after r periods:
//
//	α ≥ 1 − σ(b′(∆))² / (r·(b̃′(∆) − b̃ + η)²)
//
// The freerider's expected normalized score is −(b̃′ − b̃); detection
// requires it to sit below η by a margin the variance cannot bridge. When
// the expected score is above the threshold the bound is vacuous (0).
func (p Params) DetectionBound(d Delta, r int, eta float64) float64 {
	if r <= 0 {
		return 0
	}
	excess := p.FreeriderBlame(d) - p.WrongfulBlame() // expected extra blame per period
	margin := excess + eta                            // distance from −excess down to η
	if margin <= 0 {
		return 0
	}
	sigma := p.FreeriderBlameStd(d)
	bound := 1 - sigma*sigma/(float64(r)*margin*margin)
	return math.Max(bound, 0)
}

// ExpectedScore returns a freerider's expected normalized score,
// −(b̃′(∆) − b̃); for ∆ = 0 this is 0 (honest).
func (p Params) ExpectedScore(d Delta) float64 {
	return -(p.FreeriderBlame(d) - p.WrongfulBlame())
}
