package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

// paperParams are the parameters of Figure 10: pl = 7%, f = 12, |R| = 4.
func paperParams() Params {
	return Params{F: 12, R: 4, Loss: 0.07}
}

func TestValidate(t *testing.T) {
	if err := paperParams().Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := []Params{
		{F: 0, R: 4, Loss: 0.1},
		{F: 12, R: 0, Loss: 0.1},
		{F: 12, R: 4, Loss: -0.1},
		{F: 12, R: 4, Loss: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestWrongfulBlameMatchesPaper(t *testing.T) {
	// §6.2: with pl = 7%, f = 12, |R| = 4 the scores are compensated by
	// −b̃ = 72.95.
	got := paperParams().WrongfulBlame()
	if math.Abs(got-72.95) > 0.05 {
		t.Fatalf("b̃ = %v, paper says 72.95", got)
	}
}

func TestWrongfulBlameIsSumOfComponents(t *testing.T) {
	p := paperParams()
	sum := p.DirectVerificationBlame() + p.CrossCheckBlame()
	if math.Abs(sum-p.WrongfulBlame()) > 1e-9 {
		t.Fatalf("b̃dv + b̃dcc = %v, b̃ = %v (Equation 5 violated)", sum, p.WrongfulBlame())
	}
}

func TestNoLossNoWrongfulBlame(t *testing.T) {
	p := Params{F: 12, R: 4, Loss: 0}
	if b := p.WrongfulBlame(); b != 0 {
		t.Fatalf("b̃ with no loss = %v, want 0", b)
	}
	if s := p.WrongfulBlameStd(); s != 0 {
		t.Fatalf("σ(b) with no loss = %v, want 0", s)
	}
}

func TestAPostCrossCheckBlame(t *testing.T) {
	// Equation 4: (1−pr)·nh·f. With pl = 7%, nh = 50, f = 12: 0.07·600 = 42.
	got := paperParams().APostCrossCheckBlame(50)
	if math.Abs(got-42) > 1e-9 {
		t.Fatalf("b̃apcc = %v, want 42", got)
	}
}

func TestWrongfulBlameStdPlausible(t *testing.T) {
	// §6.2 reports an experimental σ(b) = 25.6 at the Figure 10 parameters.
	// The analytical value should be in the same range.
	got := paperParams().WrongfulBlameStd()
	if got < 15 || got > 40 {
		t.Fatalf("σ(b) = %v, expected near the paper's experimental 25.6", got)
	}
}

func TestFreeriderBlameReducesToHonest(t *testing.T) {
	p := paperParams()
	if diff := math.Abs(p.FreeriderBlame(Delta{}) - p.WrongfulBlame()); diff > 1e-9 {
		t.Fatalf("b̃′(0) differs from b̃ by %v", diff)
	}
	if s := p.ExpectedScore(Delta{}); math.Abs(s) > 1e-9 {
		t.Fatalf("expected score of an honest node = %v, want 0", s)
	}
}

func TestFreeriderBlameMonotone(t *testing.T) {
	// More freeriding ⇒ more expected blame, over the δ range of Figure 12.
	p := paperParams()
	prev := p.FreeriderBlame(Delta{})
	for d := 0.01; d <= 0.2; d += 0.01 {
		b := p.FreeriderBlame(Uniform(d))
		if b <= prev {
			t.Fatalf("b̃′ not increasing at δ=%v: %v then %v", d, prev, b)
		}
		prev = b
	}
}

func TestFreeriderScoreNegative(t *testing.T) {
	p := paperParams()
	for _, d := range []float64{0.05, 0.1, 0.2} {
		if s := p.ExpectedScore(Uniform(d)); s >= 0 {
			t.Fatalf("expected score at δ=%v is %v, want negative", d, s)
		}
	}
}

func TestGain(t *testing.T) {
	if g := (Delta{}).Gain(); g != 0 {
		t.Fatalf("gain of honest node = %v", g)
	}
	// §6.3.1: a gain of 10% is achieved at δ = 0.035.
	if g := Uniform(0.035).Gain(); math.Abs(g-0.10) > 0.005 {
		t.Fatalf("gain at δ=0.035 = %v, paper says ≈0.10", g)
	}
	if g := Uniform(1).Gain(); g != 1 {
		t.Fatalf("gain at δ=1 = %v, want 1", g)
	}
}

func TestGainMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x := float64(a%100) / 100
		y := float64(b%100) / 100
		if x > y {
			x, y = y, x
		}
		return Uniform(x).Gain() <= Uniform(y).Gain()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsBehaveWithTime(t *testing.T) {
	p := paperParams()
	// β bound decreases with r; α bound increases with r.
	if b10, b100 := p.FalsePositiveBound(10, -9.75), p.FalsePositiveBound(100, -9.75); b100 >= b10 {
		t.Fatalf("β bound did not shrink with r: %v → %v", b10, b100)
	}
	d := Uniform(0.1)
	if a10, a100 := p.DetectionBound(d, 10, -9.75), p.DetectionBound(d, 100, -9.75); a100 < a10 {
		t.Fatalf("α bound did not grow with r: %v → %v", a10, a100)
	}
	// As r → ∞, α → 1 and β → 0 (§6.3.1).
	if a := p.DetectionBound(d, 100000, -9.75); a < 0.999 {
		t.Fatalf("α bound at large r = %v, want → 1", a)
	}
	if b := p.FalsePositiveBound(100000, -9.75); b > 0.001 {
		t.Fatalf("β bound at large r = %v, want → 0", b)
	}
}

func TestDetectionBoundVacuousBelowThreshold(t *testing.T) {
	// A freerider whose expected score sits above η cannot be guaranteed
	// detected: the bound collapses to 0.
	p := paperParams()
	if a := p.DetectionBound(Uniform(0.001), 50, -9.75); a != 0 {
		t.Fatalf("α bound for negligible freeriding = %v, want 0", a)
	}
}

func TestBoundsAreProbabilities(t *testing.T) {
	p := paperParams()
	for r := 1; r < 200; r += 10 {
		for d := 0.0; d <= 0.3; d += 0.05 {
			a := p.DetectionBound(Uniform(d), r, -9.75)
			b := p.FalsePositiveBound(r, -9.75)
			if a < 0 || a > 1 || b < 0 || b > 1 {
				t.Fatalf("bounds out of range at r=%d δ=%v: α=%v β=%v", r, d, a, b)
			}
		}
	}
}

func TestCollusionEntropyEquation7(t *testing.T) {
	// The paper inverts Equation 7 for γ = 8.95, a freerider colluding with
	// 25 other nodes (coalition 26 including itself... the text says "a
	// freerider colluding with 25 other nodes" and m′ colluding nodes in
	// the history), nh·f = 600, and finds p*m ≈ 21%.
	for _, coalition := range []int{25, 26} {
		pm := MaxCollusionBias(8.95, coalition, 600)
		if pm < 0.15 || pm > 0.27 {
			t.Fatalf("p*m for coalition %d = %v, paper says ≈0.21", coalition, pm)
		}
	}
}

func TestCollusionEntropyDecreasing(t *testing.T) {
	// Beyond the uniform point, more bias means less entropy.
	prev := math.Inf(1)
	for pm := 0.05; pm <= 1.0; pm += 0.05 {
		h := CollusionEntropy(pm, 26, 600)
		if h > prev+1e-9 {
			t.Fatalf("collusion entropy not decreasing at pm=%v", pm)
		}
		prev = h
	}
}

func TestCollusionEntropyAtFullBias(t *testing.T) {
	// pm = 1: all pushes go to the coalition; entropy = log2(m′).
	h := CollusionEntropy(1, 32, 600)
	if math.Abs(h-5) > 1e-9 {
		t.Fatalf("entropy at pm=1 with coalition 32 = %v, want 5", h)
	}
}

func TestMaxCollusionBiasEdges(t *testing.T) {
	// A trivial threshold lets the freerider push everything at colluders.
	if pm := MaxCollusionBias(1, 26, 600); pm != 1 {
		t.Fatalf("p*m with tiny γ = %v, want 1", pm)
	}
	// An impossibly high threshold forbids any extra bias.
	pm := MaxCollusionBias(12, 26, 600)
	if pm > 26.0/600+1e-9 {
		t.Fatalf("p*m with impossible γ = %v, want uniform share", pm)
	}
}

func TestMaxCollusionBiasMonotoneInCoalition(t *testing.T) {
	// Larger coalitions can absorb more bias at the same threshold.
	prev := 0.0
	for _, m := range []int{5, 10, 25, 50, 100} {
		pm := MaxCollusionBias(8.95, m, 600)
		if pm < prev {
			t.Fatalf("p*m not monotone in coalition size at m=%d: %v < %v", m, pm, prev)
		}
		prev = pm
	}
}

func TestExpectedHonestEntropy(t *testing.T) {
	// Figure 13a: histories of 600 entries in a 10,000-node system have
	// entropy 9.11–9.21 (max 9.23).
	h := ExpectedHonestEntropy(600, 10000)
	if h < 9.05 || h > 9.23 {
		t.Fatalf("expected honest entropy = %v, want within Figure 13's range", h)
	}
	if ExpectedHonestEntropy(1, 10) != 0 {
		t.Fatal("degenerate history should have zero entropy")
	}
}

func TestCrossCheckBlameDecomposition(t *testing.T) {
	// Equation 3 splits into the (a) broken-chain term and the (b) witness
	// term; their sum must equal the closed form.
	p := paperParams()
	sum := p.CrossCheckBlameChain() + p.CrossCheckBlameWitness()
	if math.Abs(sum-p.CrossCheckBlame()) > 1e-9 {
		t.Fatalf("chain %v + witness %v != b̃dcc %v",
			p.CrossCheckBlameChain(), p.CrossCheckBlameWitness(), p.CrossCheckBlame())
	}
	if p.CrossCheckBlameChain() <= 0 || p.CrossCheckBlameWitness() <= 0 {
		t.Fatal("both components must be positive under loss")
	}
}
