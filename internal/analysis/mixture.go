package analysis

import (
	"math"
	"sort"
)

// §6.2 discusses the alternative to LiFTinG's absolute-threshold detection:
// "the score distribution among the nodes is expected to be a mixture of
// two components … likelihood maximization algorithms are traditionally
// used to address decision problems". The paper rejects relative detection
// because (i) freeriders can shift it by wrongfully blaming honest nodes
// and (ii) newcomers' scores are not comparable — but it is the natural
// baseline, so this file implements it: a two-component Gaussian mixture
// fitted by EM, classifying each score by posterior odds.

// Mixture is a two-component 1-D Gaussian mixture, components ordered so
// that component 0 has the lower mean (the freerider mode).
type Mixture struct {
	Weight [2]float64
	Mean   [2]float64
	Std    [2]float64
	// Iterations is the number of EM steps performed.
	Iterations int
}

// FitMixture runs EM on the scores. It returns false when the data cannot
// support two components (fewer than 4 points or zero variance).
func FitMixture(scores []float64, maxIter int) (Mixture, bool) {
	n := len(scores)
	if n < 4 {
		return Mixture{}, false
	}
	sorted := make([]float64, n)
	copy(sorted, scores)
	sort.Float64s(sorted)
	if sorted[0] == sorted[n-1] {
		return Mixture{}, false
	}

	// Initialize from the lower/upper quartiles.
	var m Mixture
	lo := sorted[:n/4+1]
	hi := sorted[3*n/4:]
	m.Mean[0] = meanOf(lo)
	m.Mean[1] = meanOf(hi)
	spread := stdOf(sorted, meanOf(sorted))
	m.Std[0], m.Std[1] = spread/2+1e-9, spread/2+1e-9
	m.Weight[0], m.Weight[1] = 0.5, 0.5

	resp := make([]float64, n) // responsibility of component 0
	for iter := 0; iter < maxIter; iter++ {
		m.Iterations = iter + 1
		// E-step.
		for i, x := range scores {
			p0 := m.Weight[0] * gauss(x, m.Mean[0], m.Std[0])
			p1 := m.Weight[1] * gauss(x, m.Mean[1], m.Std[1])
			if p0+p1 <= 0 {
				resp[i] = 0.5
				continue
			}
			resp[i] = p0 / (p0 + p1)
		}
		// M-step.
		var w0, s0, s1, q0, q1 float64
		for i, x := range scores {
			w0 += resp[i]
			s0 += resp[i] * x
			s1 += (1 - resp[i]) * x
		}
		w1 := float64(n) - w0
		if w0 < 1e-9 || w1 < 1e-9 {
			break // collapsed to one component
		}
		newMean0 := s0 / w0
		newMean1 := s1 / w1
		for i, x := range scores {
			q0 += resp[i] * (x - newMean0) * (x - newMean0)
			q1 += (1 - resp[i]) * (x - newMean1) * (x - newMean1)
		}
		delta := math.Abs(newMean0-m.Mean[0]) + math.Abs(newMean1-m.Mean[1])
		m.Mean[0], m.Mean[1] = newMean0, newMean1
		m.Std[0] = math.Sqrt(q0/w0) + 1e-9
		m.Std[1] = math.Sqrt(q1/w1) + 1e-9
		m.Weight[0] = w0 / float64(n)
		m.Weight[1] = w1 / float64(n)
		if delta < 1e-9 {
			break
		}
	}
	if m.Mean[0] > m.Mean[1] {
		m.Mean[0], m.Mean[1] = m.Mean[1], m.Mean[0]
		m.Std[0], m.Std[1] = m.Std[1], m.Std[0]
		m.Weight[0], m.Weight[1] = m.Weight[1], m.Weight[0]
	}
	return m, true
}

// Posterior returns the probability that score x belongs to the lower
// (freerider) component.
func (m Mixture) Posterior(x float64) float64 {
	p0 := m.Weight[0] * gauss(x, m.Mean[0], m.Std[0])
	p1 := m.Weight[1] * gauss(x, m.Mean[1], m.Std[1])
	if p0+p1 <= 0 {
		return 0.5
	}
	return p0 / (p0 + p1)
}

// Classify flags x as a freerider when the posterior odds favour the lower
// component.
func (m Mixture) Classify(x float64) bool { return m.Posterior(x) > 0.5 }

// Separation reports how far apart the modes are, in pooled standard
// deviations — the visual "gap" of Figure 11a.
func (m Mixture) Separation() float64 {
	pooled := (m.Std[0] + m.Std[1]) / 2
	if pooled <= 0 {
		return 0
	}
	return (m.Mean[1] - m.Mean[0]) / pooled
}

func gauss(x, mean, std float64) float64 {
	if std <= 0 {
		return 0
	}
	z := (x - mean) / std
	return math.Exp(-z*z/2) / (std * math.Sqrt(2*math.Pi))
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stdOf(xs []float64, mean float64) float64 {
	var s float64
	for _, x := range xs {
		s += (x - mean) * (x - mean)
	}
	return math.Sqrt(s / float64(len(xs)))
}
