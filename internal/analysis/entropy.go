package analysis

import "math"

// CollusionEntropy returns the fanout-history entropy of a freerider that
// picks a coalition member with probability pm and an honest node otherwise,
// both classes uniformly (the entropy-maximizing strategy of §6.3.2):
//
//	H = −pm·log2(pm/m′) − (1−pm)·log2((1−pm)/(nh·f − m′))
//
// where m′ is the coalition size and nh·f the history length. This is the
// right-hand side of Equation 7.
func CollusionEntropy(pm float64, coalition, historyLen int) float64 {
	m := float64(coalition)
	hl := float64(historyLen)
	if m <= 0 || hl <= m {
		return math.NaN()
	}
	var h float64
	if pm > 0 {
		h -= pm * math.Log2(pm/m)
	}
	if pm < 1 {
		h -= (1 - pm) * math.Log2((1-pm)/(hl-m))
	}
	return h
}

// MaxCollusionBias numerically inverts Equation 7: it returns p*m, the
// largest probability of serving coalition partners that keeps the fanout
// entropy at or above the threshold γ, for a coalition of the given size and
// a history of historyLen = nh·f entries.
//
// The paper's worked example: γ = 8.95, coalition 26 (a freerider colluding
// with 25 others), nh·f = 600 gives p*m ≈ 0.21 — a freerider can direct 21%
// of its pushes at its coalition without being detected.
//
// CollusionEntropy(pm) is strictly decreasing for pm above the uniform point
// m′/(nh·f), so bisection on [m′/(nh·f), 1] finds the crossing. If even
// pm = 1 stays above γ (tiny γ) the function returns 1; if the entropy is
// below γ already at the uniform point it returns the uniform point (no
// extra bias is safe).
func MaxCollusionBias(gamma float64, coalition, historyLen int) float64 {
	uniform := float64(coalition) / float64(historyLen)
	if CollusionEntropy(1, coalition, historyLen) >= gamma {
		return 1
	}
	if CollusionEntropy(uniform, coalition, historyLen) < gamma {
		return uniform
	}
	lo, hi := uniform, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if CollusionEntropy(mid, coalition, historyLen) >= gamma {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ExpectedHonestEntropy approximates the expected entropy of an honest
// node's history of historyLen uniform draws over n−1 possible partners.
// For k draws over N outcomes with k ≪ N the expected entropy is close to
// log2(k) minus a birthday-collision correction: collisions replace two
// singletons (2/k mass each as separate entries) with one doubleton.
// The exact expectation uses the binomial occupancy distribution; this
// second-order approximation is enough to position γ relative to the
// simulated entropy distribution (Figure 13: 9.11–9.21 for k = 600,
// n = 10000, max 9.23).
func ExpectedHonestEntropy(historyLen, n int) float64 {
	k := float64(historyLen)
	numPartners := float64(n - 1)
	if k <= 1 || numPartners <= 1 {
		return 0
	}
	// Expected number of colliding pairs: C(k,2)/N.
	pairs := k * (k - 1) / 2 / numPartners
	// Each pair collision reduces entropy from log2(k) by
	// (2/k)·log2(2) = 2/k bits (two 1/k masses merge into one 2/k mass:
	// ΔH = (2/k)log2(2/k) − 2·(1/k)log2(1/k) = −2/k · ... ) — net loss of
	// 2/k bits per collision.
	loss := pairs * 2 / k
	h := math.Log2(k) - loss
	if h < 0 {
		return 0
	}
	return h
}
