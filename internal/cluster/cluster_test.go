package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/stats"
	"lifting/internal/stream"
)

const tg = 500 * time.Millisecond

func baseOptions(n int, loss float64) Options {
	return Options{
		N:    n,
		Seed: 1,
		Gossip: gossip.Config{
			F:              7,
			Period:         tg,
			ChunkPayload:   1316,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              7,
			Period:         tg,
			Pdcc:           1,
			HistoryPeriods: 50,
			Gamma:          8.0,
			Eta:            -9.75,
		},
		Rep:          reputation.Config{M: 10, Eta: -9.75},
		Stream:       stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults:  net.Uniform(loss, 2*time.Millisecond),
		LiFTinG:      true,
		ExpectedLoss: loss,
	}
}

func run(c *Cluster, d time.Duration) {
	c.Start()
	c.StartStream(d)
	// Let trailing verifications resolve after the stream ends.
	c.Run(d + time.Second)
}

func TestHonestScoresCenterAtZero(t *testing.T) {
	// The mini Figure 10: an all-honest system under loss; compensated
	// scores must average near zero (§6.2). Compensation is calibrated from
	// an honest pilot (see Calibration) because the chunk workload is
	// lighter than the saturated model of the analysis.
	opts := baseOptions(80, 0.07)
	cal, calErr := Calibrate(context.Background(), opts, 8*time.Second)
	if calErr != nil {
		t.Fatal(calErr)
	}
	if cal.Compensation <= 0 {
		t.Fatalf("calibration found no wrongful blame under 7%% loss: %+v", cal)
	}
	opts.Rep.Compensation = cal.Compensation
	c := New(opts)
	run(c, 8*time.Second)
	var m stats.Moments
	for id, s := range c.Scores() {
		if id == 0 {
			continue // the source serves everyone but requests nothing
		}
		m.Add(s)
	}
	if math.Abs(m.Mean()) > 3*cal.ScoreStd {
		t.Fatalf("honest mean score = %v (σ=%v, cal σ=%v), want ≈0", m.Mean(), m.Std(), cal.ScoreStd)
	}
	if len(c.Expelled) > 4 {
		t.Fatalf("%d honest nodes expelled", len(c.Expelled))
	}
}

func TestFreeridersScoreBelowHonest(t *testing.T) {
	opts := baseOptions(80, 0.05)
	free := map[msg.NodeID]bool{}
	opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
		if id >= 70 { // 10 freeriders
			free[id] = true
			return freerider.Degree{Delta1: 0.3, Delta2: 0.3, Delta3: 0.3}
		}
		return nil
	}
	c := New(opts)
	run(c, 20*time.Second)

	var honest, riders stats.Moments
	for id, s := range c.Scores() {
		if id == 0 {
			continue
		}
		if free[id] {
			riders.Add(s)
		} else {
			honest.Add(s)
		}
	}
	if riders.Mean() >= honest.Mean() {
		t.Fatalf("freerider mean %v not below honest mean %v", riders.Mean(), honest.Mean())
	}
	// The per-period blame gap for δ = 0.3 should be several units.
	if gap := honest.Mean() - riders.Mean(); gap < 5 {
		t.Fatalf("score gap %v too small", gap)
	}
	// The distributions must be nearly separable (the "gap" of Figure 11a);
	// at r ≈ 40 periods a stray low-traffic freerider may still straddle
	// the honest mode, so allow at most one.
	worstHonest := math.Inf(1)
	for id, s := range c.Scores() {
		if id != 0 && !free[id] && s < worstHonest {
			worstHonest = s
		}
	}
	straddlers := 0
	for id, s := range c.Scores() {
		if free[id] && s >= worstHonest {
			straddlers++
		}
	}
	if straddlers > 1 {
		t.Fatalf("%d/10 freeriders scored above the worst honest node (%v)", straddlers, worstHonest)
	}
}

func TestExpelOnDetectionRemovesFreeriders(t *testing.T) {
	opts := baseOptions(60, 0.02)
	cal, calErr := Calibrate(context.Background(), opts, 8*time.Second)
	if calErr != nil {
		t.Fatal(calErr)
	}
	opts.Rep.Compensation = cal.Compensation
	opts.Rep.Eta = -5
	opts.ExpelOnDetection = true
	opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
		if id >= 54 {
			return freerider.Degree{Delta1: 0.4, Delta2: 0.4, Delta3: 0.4}
		}
		return nil
	}
	c := New(opts)
	run(c, 10*time.Second)

	detected := 0
	falsePos := 0
	for id := range c.Expelled {
		if id >= 54 {
			detected++
		} else {
			falsePos++
		}
	}
	if detected < 4 {
		t.Fatalf("only %d/6 aggressive freeriders expelled", detected)
	}
	if falsePos > 6 {
		t.Fatalf("%d honest nodes wrongfully expelled", falsePos)
	}
	// Expelled nodes are really gone.
	for id := range c.Expelled {
		if c.Dir.Alive(id) {
			t.Fatalf("expelled node %d still in membership", id)
		}
		if !c.Nodes[id].Stopped() {
			t.Fatalf("expelled node %d still running", id)
		}
	}
}

func TestMessageModeAgreesWithDirectMode(t *testing.T) {
	// Blames routed through managers (min-vote) must separate freeriders
	// from honest nodes just like the direct board.
	opts := baseOptions(50, 0.02)
	opts.BlameMode = BlameMessages
	opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
		if id >= 45 {
			return freerider.Degree{Delta1: 0.3, Delta2: 0.3, Delta3: 0.3}
		}
		return nil
	}
	c := New(opts)
	run(c, 6*time.Second)
	scores := c.Scores()
	var honest, riders stats.Moments
	for id, s := range scores {
		if id == 0 {
			continue
		}
		if id >= 45 {
			riders.Add(s)
		} else {
			honest.Add(s)
		}
	}
	if riders.Mean() >= honest.Mean() {
		t.Fatalf("message-mode scores do not separate: riders %v vs honest %v", riders.Mean(), honest.Mean())
	}
}

func TestStreamHealthBaseline(t *testing.T) {
	// Without freeriders the stream reaches almost everyone within a small
	// lag.
	opts := baseOptions(60, 0.02)
	opts.LiFTinG = false
	opts.TrackPlayout = true
	c := New(opts)
	run(c, 5*time.Second)
	total := opts.Stream.ChunksBy(4 * time.Second) // ignore the tail chunks
	playouts := make([]*stream.Playout, 0, len(c.Playouts))
	for id, p := range c.Playouts {
		if id == 0 {
			continue
		}
		playouts = append(playouts, p)
	}
	h := stream.Health(playouts, total, []time.Duration{4 * time.Second})
	if h[0] < 0.9 {
		t.Fatalf("baseline health at 4s lag = %v, want > 0.9", h[0])
	}
}

func TestFreeridersDegradeHealthWithoutLiFTinG(t *testing.T) {
	mkOpts := func(withFreeriders bool) Options {
		opts := baseOptions(60, 0.02)
		opts.LiFTinG = false
		opts.TrackPlayout = true
		if withFreeriders {
			opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
				if id >= 45 { // 25% freeride hard
					return freerider.Degree{Delta1: 0.9, Delta2: 0.9, Delta3: 0.9}
				}
				return nil
			}
		}
		return opts
	}
	health := func(opts Options) float64 {
		c := New(opts)
		run(c, 5*time.Second)
		total := opts.Stream.ChunksBy(4 * time.Second)
		playouts := make([]*stream.Playout, 0, len(c.Playouts))
		for id, p := range c.Playouts {
			if id == 0 {
				continue
			}
			playouts = append(playouts, p)
		}
		return stream.Health(playouts, total, []time.Duration{3 * time.Second})[0]
	}
	base := health(mkOpts(false))
	degraded := health(mkOpts(true))
	if degraded >= base {
		t.Fatalf("hard freeriding did not degrade health: %v vs baseline %v", degraded, base)
	}
}

func TestAuditExpelsColluders(t *testing.T) {
	// A coalition pushing most proposals at itself fails the fanout
	// entropy check.
	opts := baseOptions(60, 0.0)
	opts.ExpelOnDetection = true
	opts.Core.Gamma = 4.0
	// Fanin evidence in a 60-node, dozen-period run is naturally skewed
	// (fast nodes win the first-proposal race); the colluders are caught by
	// the fanout check.
	opts.Core.GammaFanin = 2.0
	opts.Core.MinEntropySamples = 16
	coalition := []msg.NodeID{54, 55, 56, 57, 58, 59}
	opts.BehaviorFor = func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
		for _, m := range coalition {
			if id == m {
				return freerider.NewColluder(id, coalition, 0.9, dir, r)
			}
		}
		return nil
	}
	c := New(opts)
	var outcomes []core.AuditOutcome
	auditor := c.Auditor(func(out core.AuditOutcome) { outcomes = append(outcomes, out) })
	c.Start()
	c.StartStream(6 * time.Second)
	// Audit a colluder and an honest node after histories accumulate.
	c.After(5*time.Second, func() {
		auditor.Audit(54)
		auditor.Audit(10)
	})
	c.Run(8 * time.Second)

	if len(outcomes) != 2 {
		t.Fatalf("got %d audit outcomes, want 2", len(outcomes))
	}
	byTarget := map[msg.NodeID]core.AuditOutcome{}
	for _, o := range outcomes {
		byTarget[o.Target] = o
	}
	col := byTarget[54]
	hon := byTarget[10]
	if !col.Expel {
		t.Fatalf("colluder passed the audit: %+v", col)
	}
	if hon.Expel {
		t.Fatalf("honest node failed the audit: %+v", hon)
	}
	if col.FanoutEntropy >= hon.FanoutEntropy {
		t.Fatalf("colluder fanout entropy %v not below honest %v", col.FanoutEntropy, hon.FanoutEntropy)
	}
	if _, gone := c.Expelled[54]; !gone {
		t.Fatal("audit verdict did not expel the colluder")
	}
}

func TestCompensationForScalesWithPdcc(t *testing.T) {
	full := CompensationFor(0.07, 12, 4, 1)
	half := CompensationFor(0.07, 12, 4, 0.5)
	none := CompensationFor(0.07, 12, 4, 0)
	if !(none < half && half < full) {
		t.Fatalf("compensation not increasing in pdcc: %v %v %v", none, half, full)
	}
	// pdcc = 1 equals the paper's b̃ = 72.95.
	if math.Abs(full-72.95) > 0.05 {
		t.Fatalf("compensation at pdcc=1 = %v, want 72.95", full)
	}
}

func TestDeterministicCluster(t *testing.T) {
	runOnce := func() float64 {
		opts := baseOptions(40, 0.05)
		c := New(opts)
		run(c, 3*time.Second)
		scores := c.Scores()
		var sum float64
		for i := 0; i < 40; i++ { // fixed order: float addition is not associative
			sum += scores[msg.NodeID(i)]
		}
		return sum
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("two identical cluster runs diverged: %v vs %v", a, b)
	}
}
