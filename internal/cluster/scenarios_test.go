package cluster

import (
	"testing"
	"time"

	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/rng"
)

// TestMITMColluderCaughtByAudit reproduces the attack of Figure 8b: a
// freerider deflects direct cross-checking onto colluders via forged ack
// partners, so score-based detection is blunted — but the audit sees a
// coalition-concentrated fanout history and expels it (§5.3).
func TestMITMColluderCaughtByAudit(t *testing.T) {
	opts := baseOptions(60, 0.0)
	opts.Core.Gamma = 4.5
	opts.Core.GammaFanin = 2.0
	opts.Core.MinEntropySamples = 16
	coalition := []msg.NodeID{55, 56, 57, 58, 59}
	opts.BehaviorFor = func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
		for _, m := range coalition {
			if id == m {
				col := freerider.NewColluder(id, coalition, 0.9, dir, r)
				col.MITM = true
				return col
			}
		}
		return nil
	}
	c := New(opts)
	var outcomes []core.AuditOutcome
	auditor := c.Auditor(func(out core.AuditOutcome) { outcomes = append(outcomes, out) })
	c.Start()
	c.StartStream(8 * time.Second)
	c.After(7*time.Second, func() {
		auditor.Audit(55)
		auditor.Audit(20)
	})
	c.Run(11 * time.Second)

	byTarget := map[msg.NodeID]core.AuditOutcome{}
	for _, o := range outcomes {
		byTarget[o.Target] = o
	}
	if !byTarget[55].Expel {
		t.Fatalf("MITM colluder passed the audit: %+v", byTarget[55])
	}
	if byTarget[20].Expel {
		t.Fatalf("honest node expelled: %+v", byTarget[20])
	}
}

// TestForgedAuditBlamed checks §5.3's claim: "an inspected freerider
// replacing colluding nodes by honest nodes in its history in order to pass
// the entropic check will not be covered by the honest nodes and will thus
// be blamed accordingly."
func TestForgedAuditBlamed(t *testing.T) {
	opts := baseOptions(60, 0.0)
	opts.Core.Gamma = 4.5
	opts.Core.GammaFanin = 2.0
	opts.Core.MinEntropySamples = 16
	coalition := []msg.NodeID{55, 56, 57, 58, 59}
	opts.BehaviorFor = func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
		for _, m := range coalition {
			if id == m {
				col := freerider.NewColluder(id, coalition, 0.9, dir, r)
				col.ForgeUniform = true
				return col
			}
		}
		return nil
	}
	blames := map[msg.NodeID]float64{}
	opts.OnBlame = func(target msg.NodeID, v float64, reason msg.BlameReason) {
		if reason == msg.ReasonAuditUnconfirmed {
			blames[target] += v
		}
	}
	c := New(opts)
	var outcomes []core.AuditOutcome
	auditor := c.Auditor(func(out core.AuditOutcome) { outcomes = append(outcomes, out) })
	c.Start()
	c.StartStream(8 * time.Second)
	c.After(7*time.Second, func() {
		auditor.Audit(55)
		auditor.Audit(20)
	})
	c.Run(11 * time.Second)

	byTarget := map[msg.NodeID]core.AuditOutcome{}
	for _, o := range outcomes {
		byTarget[o.Target] = o
	}
	forged := byTarget[55]
	honest := byTarget[20]
	// The forged history claims uniform partners who never saw the
	// proposals: far more unconfirmed entries than the honest node.
	if forged.Unconfirmed <= honest.Unconfirmed {
		t.Fatalf("forged history confirmed too well: %d vs honest %d",
			forged.Unconfirmed, honest.Unconfirmed)
	}
	if blames[55] <= blames[20] {
		t.Fatalf("forger blame %v not above honest blame %v", blames[55], blames[20])
	}
}

// TestPeriodStretcherAudited checks the gossip-period check of §5.3: a node
// that doubles Tg shows half the propose phases in its history.
func TestPeriodStretcherAudited(t *testing.T) {
	opts := baseOptions(40, 0.0)
	opts.Core.Gamma = 0 // isolate the period check
	opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
		if id == 30 {
			return freerider.PeriodStretcher{Factor: 2}
		}
		return nil
	}
	stretchBlame := map[msg.NodeID]float64{}
	opts.OnBlame = func(target msg.NodeID, v float64, reason msg.BlameReason) {
		if reason == msg.ReasonPeriodStretch {
			stretchBlame[target] += v
		}
	}
	c := New(opts)
	var outcomes []core.AuditOutcome
	auditor := c.Auditor(func(out core.AuditOutcome) { outcomes = append(outcomes, out) })
	c.Start()
	c.StartStream(12 * time.Second)
	c.After(11*time.Second, func() {
		auditor.Audit(30)
		auditor.Audit(10)
	})
	c.Run(15 * time.Second)

	byTarget := map[msg.NodeID]core.AuditOutcome{}
	for _, o := range outcomes {
		byTarget[o.Target] = o
	}
	if byTarget[30].PeriodBlame <= 0 {
		t.Fatalf("stretcher not blamed: %+v", byTarget[30])
	}
	if byTarget[10].PeriodBlame > 0 {
		t.Fatalf("honest node blamed for period stretching: %+v", byTarget[10])
	}
	if stretchBlame[30] <= stretchBlame[10] {
		t.Fatal("stretch blame not routed")
	}
	// The stretcher's history also shows roughly half the propose phases.
	if got, want := byTarget[30].ProposalPeriods, byTarget[10].ProposalPeriods; got*3 > want*2 {
		t.Fatalf("stretcher proposal periods %d not well below honest %d", got, want)
	}
}

// TestPdccTradeoff verifies §7.3's observation: halving pdcc slows
// detection but does not halve it, because direct verification blames
// partial serves without any cross-check.
func TestPdccTradeoff(t *testing.T) {
	gapFor := func(pdcc float64) float64 {
		opts := baseOptions(60, 0.03)
		opts.Core.Pdcc = pdcc
		opts.Seed = 5
		opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if id >= 54 {
				return freerider.Degree{Delta1: 0.3, Delta2: 0.3, Delta3: 0.3}
			}
			return nil
		}
		c := New(opts)
		run(c, 12*time.Second)
		var honest, riders float64
		scores := c.Scores()
		for i := 1; i < 60; i++ {
			if i >= 54 {
				riders += scores[msg.NodeID(i)]
			} else {
				honest += scores[msg.NodeID(i)]
			}
		}
		return honest/53 - riders/6
	}
	full := gapFor(1)
	half := gapFor(0.5)
	if half <= 0 {
		t.Fatalf("no separation at pdcc=0.5: gap %v", half)
	}
	if full <= half {
		t.Fatalf("pdcc=1 gap %v not above pdcc=0.5 gap %v", full, half)
	}
	// δ3 freeriding is caught by direct verification regardless of pdcc, so
	// the gap must not collapse proportionally.
	if half < full/4 {
		t.Fatalf("pdcc=0.5 gap %v collapsed versus %v", half, full)
	}
}
