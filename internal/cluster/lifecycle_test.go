package cluster

import (
	"sync"
	"testing"
	"time"

	"lifting/internal/runtime"
)

// TestCloseIdempotentAllBackends drives a short scenario on every backend
// and then closes it from many goroutines at once, twice over. Daemons
// handle SIGTERM by closing whatever is running; a double or concurrent
// Close must never panic or deadlock, on any backend.
func TestCloseIdempotentAllBackends(t *testing.T) {
	for _, backend := range []runtime.Kind{runtime.KindSim, runtime.KindLive, runtime.KindUDP} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			opts := fastOptions(backend, 10)
			c := New(opts)
			c.Start()
			c.StartStream(300 * time.Millisecond)
			c.Run(200 * time.Millisecond)

			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c.Close()
				}()
			}
			wg.Wait()
			c.Close()

			// The runtime is drained: post-close harness scheduling is a
			// safe no-op on the concurrent backends.
			if backend != runtime.KindSim {
				c.After(time.Millisecond, func() { t.Error("callback ran after Close") })
				time.Sleep(20 * time.Millisecond)
			}
			if len(c.Scores()) == 0 {
				t.Error("no scores after close")
			}
		})
	}
}
