package cluster

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"lifting/internal/chaos"
	"lifting/internal/msg"
	"lifting/internal/runtime"
)

// chaosPlan builds a hand-written schedule: node 7 crashes at 1s and
// restarts at 1.6s, nodes 3-5 sit in a partition minority from 1.2s to
// 1.8s, and nodes 9-10 take a correlated 30% loss burst from 1s to 1.5s.
func chaosPlan() *chaos.Plan {
	return &chaos.Plan{
		Events: []chaos.Event{
			{At: 1000 * time.Millisecond, Kind: chaos.Crash, Nodes: []msg.NodeID{7}},
			{At: 1000 * time.Millisecond, Kind: chaos.LossBurst, Nodes: []msg.NodeID{9, 10}, Loss: 0.3},
			{At: 1200 * time.Millisecond, Kind: chaos.Partition, Nodes: []msg.NodeID{3, 4, 5}},
			{At: 1500 * time.Millisecond, Kind: chaos.LossHeal, Nodes: []msg.NodeID{9, 10}},
			{At: 1600 * time.Millisecond, Kind: chaos.Restart, Nodes: []msg.NodeID{7}},
			{At: 1800 * time.Millisecond, Kind: chaos.Heal, Nodes: []msg.NodeID{3, 4, 5}},
		},
		Skew: map[msg.NodeID]float64{11: 1.01, 12: 0.99},
	}
}

// TestChaosCrashRestartKeepsScoreState pins the tentpole's reputation
// contract: a crashed-and-restarted node keeps gossiping afterwards, and
// its managers neither reset nor restart its score clock — the tracked
// entry's JoinPeriod still predates the crash.
func TestChaosCrashRestartKeepsScoreState(t *testing.T) {
	opts := fastOptions(runtime.KindSim, 24)
	opts.BlameMode = BlameMessages
	opts.Chaos = chaosPlan()
	c := New(opts)
	c.Start()
	const duration = 3 * time.Second
	c.StartStream(duration)
	c.Run(duration)

	if _, ok := c.Crashed[7]; !ok {
		t.Fatal("scheduled crash of node 7 never happened")
	}
	if _, ok := c.Restarted[7]; !ok {
		t.Fatal("scheduled restart of node 7 never happened")
	}
	if !c.Dir.Alive(7) {
		t.Error("restarted node 7 not alive")
	}
	if c.Nodes[7].Stopped() {
		t.Error("restarted node 7 not running")
	}
	if got := c.Nodes[7].ChunkCount(); got == 0 {
		t.Error("restarted node 7 received no chunks after rejoining")
	}

	crashPeriod := msg.Period(c.Crashed[7] / opts.Gossip.Period)
	tracked := 0
	for _, m := range c.Dir.Managers(7, opts.Rep.M) {
		mgr, ok := c.Managers[m]
		if !ok {
			continue
		}
		e, isTracked := mgr.Snapshot(7)
		if !isTracked {
			continue
		}
		tracked++
		if e.JoinPeriod >= crashPeriod {
			t.Errorf("manager %d restarted node 7's score clock: JoinPeriod %d >= crash period %d",
				m, e.JoinPeriod, crashPeriod)
		}
	}
	if tracked == 0 {
		t.Fatal("no manager tracks node 7 after its restart")
	}

	// Nothing in this run is a freerider and η is -1e9: the fault plan must
	// not expel anyone.
	if len(c.Expelled) != 0 {
		t.Errorf("fault plan expelled nodes: %v", c.Expelled)
	}
	if got, want := c.ChaosApplied(), len(opts.Chaos.Events); got != want {
		t.Errorf("applied %d chaos events, want %d", got, want)
	}
	if c.MaxTrackedPerManager() > 24 {
		t.Errorf("manager state grew past the population: %d tracked", c.MaxTrackedPerManager())
	}
}

// TestChaosDeterministicByteIdentical runs the same chaos-laden seed twice
// and requires byte-identical observable state — the fault plane draws no
// randomness of its own and schedules everything up front.
func TestChaosDeterministicByteIdentical(t *testing.T) {
	run := func() string {
		opts := fastOptions(runtime.KindSim, 24)
		opts.BlameMode = BlameMessages
		opts.Chaos = chaosPlan()
		c := New(opts)
		c.Start()
		c.StartStream(2 * time.Second)
		c.Run(2 * time.Second)
		scores := c.Scores()
		ids := make([]msg.NodeID, 0, len(scores))
		for id := range scores {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := ""
		for _, id := range ids {
			out += fmt.Sprintf("%d:%.9f;", id, scores[id])
		}
		out += fmt.Sprintf("events=%d;handoffs=%d;chunks7=%d",
			c.ChaosApplied(), c.Handoffs(), c.Nodes[7].ChunkCount())
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical chaos runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestChaosPartitionCutsMinority pins the partition semantics at the
// cluster level: while the partition holds, a minority node stops making
// stream progress; after the heal it catches up again.
func TestChaosPartitionCutsMinority(t *testing.T) {
	opts := fastOptions(runtime.KindSim, 16)
	opts.BlameMode = BlameMessages
	opts.Chaos = &chaos.Plan{
		Events: []chaos.Event{
			{At: 800 * time.Millisecond, Kind: chaos.Partition, Nodes: []msg.NodeID{3, 4}},
			{At: 1600 * time.Millisecond, Kind: chaos.Heal, Nodes: []msg.NodeID{3, 4}},
		},
	}
	c := New(opts)
	c.Start()
	const duration = 2400 * time.Millisecond
	c.StartStream(duration)

	var atCut, atHeal int
	c.After(1550*time.Millisecond, func() { atCut = c.Nodes[3].ChunkCount() })
	c.Run(duration)
	atHeal = c.Nodes[3].ChunkCount()

	majorityEnd := c.Nodes[8].ChunkCount()
	if majorityEnd == 0 {
		t.Fatal("majority made no stream progress at all")
	}
	// During [0.8s, 1.55s] the minority node is cut off from the source's
	// side: it may finish chunks already in flight but must fall well
	// behind the majority's pace, then recover after the heal.
	if atCut >= majorityEnd {
		t.Errorf("partitioned node 3 kept pace through the cut: %d chunks vs majority %d", atCut, majorityEnd)
	}
	if atHeal <= atCut {
		t.Errorf("node 3 made no progress after the heal: %d then, %d at end", atCut, atHeal)
	}
}

// TestChaosRunsOnLiveBackend exercises the same fault schedule on the
// wall-clock goroutine runtime: crash, restart, partition and heal all
// apply without deadlock or expulsion.
func TestChaosRunsOnLiveBackend(t *testing.T) {
	opts := fastOptions(runtime.KindLive, 12)
	opts.BlameMode = BlameMessages
	opts.Chaos = &chaos.Plan{
		Events: []chaos.Event{
			{At: 400 * time.Millisecond, Kind: chaos.Crash, Nodes: []msg.NodeID{5}},
			{At: 500 * time.Millisecond, Kind: chaos.Partition, Nodes: []msg.NodeID{2, 3}},
			{At: 800 * time.Millisecond, Kind: chaos.Restart, Nodes: []msg.NodeID{5}},
			{At: 900 * time.Millisecond, Kind: chaos.Heal, Nodes: []msg.NodeID{2, 3}},
		},
		Skew: map[msg.NodeID]float64{7: 1.02},
	}
	c := New(opts)
	c.Start()
	c.StartStream(1500 * time.Millisecond)
	c.Run(1800 * time.Millisecond)
	c.Close()

	if _, ok := c.Crashed[5]; !ok {
		t.Fatal("crash never applied under live backend")
	}
	if _, ok := c.Restarted[5]; !ok {
		t.Fatal("restart never applied under live backend")
	}
	if !c.Dir.Alive(5) {
		t.Error("restarted node 5 not alive")
	}
	if len(c.Expelled) != 0 {
		t.Errorf("fault plan expelled nodes under live backend: %v", c.Expelled)
	}
}
