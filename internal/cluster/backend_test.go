package cluster

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stream"
)

// fastOptions is a scaled-down scenario that finishes in a couple of
// wall-clock seconds under the live backend: short gossip period, small
// population.
func fastOptions(backend runtime.Kind, n int) Options {
	const tg = 60 * time.Millisecond
	return Options{
		N:       n,
		Seed:    3,
		Backend: backend,
		Gossip: gossip.Config{
			F:              6,
			Period:         tg,
			ChunkPayload:   256,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              6,
			Period:         tg,
			Pdcc:           1,
			HistoryPeriods: 50,
			Gamma:          8,
			Eta:            -1e9,
		},
		Rep:         reputation.Config{M: 8, Eta: -1e9},
		Stream:      stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults: net.Uniform(0, 2*time.Millisecond),
		LiFTinG:     true,
	}
}

// TestScenarioAgreesAcrossBackends is the acceptance check for the runtime
// seam: one cluster-assembled freerider scenario executes under the
// discrete-event engine, the goroutine live runtime AND the UDP socket
// transport, and LiFTinG's verdict — freeriders score below honest nodes —
// agrees.
func TestScenarioAgreesAcrossBackends(t *testing.T) {
	const (
		n         = 24
		firstFree = 20
		duration  = 2400 * time.Millisecond
	)
	verdict := func(backend runtime.Kind) (honest, riders float64) {
		opts := fastOptions(backend, n)
		opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if id >= firstFree {
				return freerider.Degree{Delta1: 0.5, Delta2: 0.5, Delta3: 0.5}
			}
			return nil
		}
		c := New(opts)
		c.Start()
		c.StartStream(duration)
		c.Run(duration + 200*time.Millisecond)
		c.Close()
		scores := c.Scores()
		var nh, nr int
		for id, s := range scores {
			switch {
			case id == 0:
			case id >= firstFree:
				riders += s
				nr++
			default:
				honest += s
				nh++
			}
		}
		return honest / float64(nh), riders / float64(nr)
	}

	for _, backend := range []runtime.Kind{runtime.KindSim, runtime.KindLive, runtime.KindUDP} {
		h, r := verdict(backend)
		t.Logf("backend %v: honest mean %.2f, freerider mean %.2f", backend, h, r)
		if r >= h {
			t.Errorf("backend %v: freerider mean %.2f not below honest mean %.2f", backend, r, h)
		}
	}
}

// TestLiveBackendDisseminates checks the plain dissemination path through
// the seam: a chunk injected at the source reaches everyone over the
// goroutine runtime and the codec.
func TestLiveBackendDisseminates(t *testing.T) {
	opts := fastOptions(runtime.KindLive, 16)
	c := New(opts)
	c.Start()
	c.StartStream(time.Second)
	c.Run(1500 * time.Millisecond)
	c.Close()
	total := opts.Stream.ChunksBy(800 * time.Millisecond)
	if total == 0 {
		t.Fatal("no chunks scheduled")
	}
	// Every node should hold most of the early chunks.
	for id, node := range c.Nodes {
		got := 0
		for ch := 0; ch < total; ch++ {
			if node.Have(msg.ChunkID(ch)) {
				got++
			}
		}
		if got*2 < total {
			t.Errorf("node %d received %d/%d chunks over the live backend", id, got, total)
		}
	}
	if c.Collector.SentMsgs(msg.KindAck) == 0 {
		t.Error("no verification traffic crossed the live backend")
	}
}

// metricsFingerprint renders everything a run measures — scores (exact
// bits), expulsions, churn records, traffic counters — into one string.
func metricsFingerprint(c *Cluster) string {
	scores := c.Scores()
	ids := make([]msg.NodeID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ""
	for _, id := range ids {
		out += fmt.Sprintf("s[%d]=%016x\n", id, math.Float64bits(scores[id]))
	}
	for _, id := range ids {
		if at, ok := c.Expelled[id]; ok {
			out += fmt.Sprintf("expelled[%d]=%d\n", id, at)
		}
		if at, ok := c.Joined[id]; ok {
			out += fmt.Sprintf("joined[%d]=%d\n", id, at)
		}
		if at, ok := c.Departed[id]; ok {
			out += fmt.Sprintf("departed[%d]=%d\n", id, at)
		}
	}
	for k := msg.Kind(1); k < 32; k++ {
		if n := c.Collector.SentMsgs(k); n > 0 {
			out += fmt.Sprintf("sent[%d]=%d dropped[%d]=%d\n", k, n, k, c.Collector.Dropped(k))
		}
	}
	out += fmt.Sprintf("handoffs=%d events=%d\n", c.Handoffs(), c.Engine.Events())
	return out
}

// TestSeedReproducibilityByteIdentical runs the same churn-heavy scenario
// twice with the same seed and asserts byte-identical metrics, so the
// runtime seam and the parallelism work cannot silently break determinism.
func TestSeedReproducibilityByteIdentical(t *testing.T) {
	runOnce := func() string {
		opts := fastOptions(runtime.KindSim, 30)
		opts.BlameMode = BlameMessages
		opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if id >= 26 {
				return freerider.Degree{Delta1: 0.4, Delta2: 0.4, Delta3: 0.4}
			}
			return nil
		}
		c := New(opts)
		c.Start()
		c.StartStream(2 * time.Second)
		c.ScheduleJoin(500 * time.Millisecond)
		c.ScheduleJoin(900 * time.Millisecond)
		c.ScheduleLeave(1200*time.Millisecond, 7)
		c.ScheduleLeave(1500*time.Millisecond, 13)
		c.Run(2200 * time.Millisecond)
		return metricsFingerprint(c)
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("two identical seeded runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestChurnScenario exercises joins and leaves mid-stream on the sim
// backend: arrivals catch up with the stream, departures stop receiving,
// manager duties are handed off, and freerider detection keeps working.
func TestChurnScenario(t *testing.T) {
	opts := fastOptions(runtime.KindSim, 40)
	opts.BlameMode = BlameMessages
	opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
		if id >= 36 && id < 40 {
			return freerider.Degree{Delta1: 0.5, Delta2: 0.5, Delta3: 0.5}
		}
		return nil
	}
	c := New(opts)
	c.Start()
	const duration = 3 * time.Second
	c.StartStream(duration)

	var joined []msg.NodeID
	for i := 0; i < 5; i++ {
		joined = append(joined, c.ScheduleJoin(time.Duration(i+1)*300*time.Millisecond))
	}
	leavers := []msg.NodeID{5, 11, 17, 23}
	for i, id := range leavers {
		c.ScheduleLeave(time.Duration(i+4)*300*time.Millisecond, id)
	}
	c.Run(duration + 200*time.Millisecond)

	for _, id := range joined {
		if _, ok := c.Joined[id]; !ok {
			t.Fatalf("scheduled join %d never happened", id)
		}
		if !c.Dir.Alive(id) {
			t.Errorf("joined node %d not alive", id)
		}
		if got := c.Nodes[id].ChunkCount(); got < 20 {
			t.Errorf("churn arrival %d only caught %d chunks", id, got)
		}
	}
	for _, id := range leavers {
		if _, ok := c.Departed[id]; !ok {
			t.Fatalf("scheduled leave %d never happened", id)
		}
		if c.Dir.Alive(id) {
			t.Errorf("departed node %d still alive", id)
		}
		if !c.Nodes[id].Stopped() {
			t.Errorf("departed node %d still running", id)
		}
	}
	if c.Handoffs() == 0 {
		t.Error("membership churn triggered no reputation-manager handoffs")
	}
	if c.Dir.NAlive() != 40+len(joined)-len(leavers) {
		t.Errorf("alive count %d, want %d", c.Dir.NAlive(), 40+len(joined)-len(leavers))
	}

	// Freerider detection must survive churn: min-vote scores of surviving
	// freeriders stay below the honest survivors' mean.
	scores := c.Scores()
	var honest, riders float64
	var nh, nr int
	for _, id := range c.Dir.All() {
		if id == 0 || !c.Dir.Alive(id) {
			continue
		}
		if c.Freeriders[id] {
			riders += scores[id]
			nr++
		} else {
			honest += scores[id]
			nh++
		}
	}
	if nr == 0 {
		t.Fatal("no freeriders survived the scenario")
	}
	if riders/float64(nr) >= honest/float64(nh) {
		t.Errorf("freerider mean %.2f not below honest mean %.2f under churn",
			riders/float64(nr), honest/float64(nh))
	}
}

// TestChurnRunsUnderLiveBackend runs the same churn wiring on the
// goroutine backend: joins and leaves mid-stream with real concurrency.
func TestChurnRunsUnderLiveBackend(t *testing.T) {
	opts := fastOptions(runtime.KindLive, 20)
	opts.BlameMode = BlameMessages
	c := New(opts)
	c.Start()
	c.StartStream(1500 * time.Millisecond)
	id := c.ScheduleJoin(300 * time.Millisecond)
	c.ScheduleLeave(600*time.Millisecond, 5)
	c.Run(1800 * time.Millisecond)
	c.Close()

	if _, ok := c.Joined[id]; !ok {
		t.Fatal("join never happened under the live backend")
	}
	if _, ok := c.Departed[5]; !ok {
		t.Fatal("leave never happened under the live backend")
	}
	if got := c.Nodes[id].ChunkCount(); got == 0 {
		t.Error("live churn arrival received nothing")
	}
	if !c.Nodes[5].Stopped() {
		t.Error("live departed node still running")
	}
}
