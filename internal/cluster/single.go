package cluster

import (
	"sort"
	"sync"
	"time"

	"lifting/internal/content"
	"lifting/internal/core"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stream"
)

// NodeOptions configures the assembly of ONE node of a distributed
// deployment: the node, its verifier, its share of the reputation substrate
// (manager duty plus a blame client), and — when it is the source — the
// stream injection schedule. All peers are remote: they live in other
// processes (the lifting-node daemon) or behind other runtimes, reachable
// only through the runtime's network.
//
// Blames always travel as messages (the BlameMessages mode of the full
// Cluster): there is no shared board across processes.
type NodeOptions struct {
	// ID is this node's identity.
	ID msg.NodeID
	// Members is the full membership, including ID. Every process must use
	// the same member list: the manager assignment is derived from it.
	Members []msg.NodeID
	// Seed roots the deployment's randomness. Every process uses the SAME
	// seed; per-node streams are derived from it exactly as the in-process
	// cluster derives them.
	Seed uint64
	// Gossip is the dissemination configuration.
	Gossip gossip.Config
	// Core is LiFTinG's configuration. Used when LiFTinG is enabled.
	Core core.Config
	// Rep configures the reputation substrate.
	Rep reputation.Config
	// Stream describes the broadcast content (used by the source).
	Stream stream.Config
	// LiFTinG enables the verification machinery.
	LiFTinG bool
	// Source makes this node inject the stream (the cluster convention is
	// that node 0 is the source).
	Source bool
	// Behavior is this node's dissemination behavior; nil means honest.
	Behavior gossip.Behavior
	// ExpectedLoss and ExpectedR feed the default compensation (Equation 5)
	// when Rep.Compensation is zero, mirroring Options.
	ExpectedLoss float64
	ExpectedR    int
	// OnExpel, if non-nil, observes every expulsion this node learns about.
	OnExpel func(target msg.NodeID, reason msg.BlameReason)
	// Collector, if non-nil, receives this node's traffic, redundancy and
	// verification accounting. Pass the same collector to the runtime
	// (transport.Options.Collector) to add wire-level send/recv/drop
	// counts; the host adds the gossip- and reputation-plane events.
	Collector *metrics.Collector
	// StoreCapacity is the node's chunk store capacity in chunks (0 =
	// sized from the stream rate and gossip period via
	// content.StoreCapacityFor). As in the full cluster, the content
	// plane is on whenever Stream is a valid configuration.
	StoreCapacity int
	// ClockSkew is this node's clock-rate factor: 1.02 fires every local
	// timer — gossip rounds, verifier deadlines, the score-period clock —
	// 2% late, drifting against the period auditors on other processes.
	// 0 (or 1) means a true clock.
	ClockSkew float64
}

// NodeHost is one assembled node of a distributed deployment.
type NodeHost struct {
	Opts NodeOptions
	RT   runtime.Runtime
	Dir  *membership.Directory
	Node *gossip.Node
	// Verifier and Manager are nil when LiFTinG is disabled.
	Verifier *core.Verifier
	Manager  *reputation.Manager
	// Store is the node's chunk store and Content the stream's canonical
	// payload source; both are nil when the content plane is off. The HTTP
	// stream gateway reads the store concurrently with node callbacks (the
	// store is internally locked) and uses Content — on the source node —
	// to regenerate chunks that have aged out of the store.
	Store   *content.Store
	Content *content.Source

	client *reputation.Client
	reader *reputation.Reader
	skew   float64 // 0 = true clock; see NodeOptions.ClockSkew

	mu       sync.Mutex
	period   msg.Period
	expelled map[msg.NodeID]msg.BlameReason
}

// ScoreRead is the result of one over-the-wire score read.
type ScoreRead struct {
	// Score is the min-vote over the manager copies that answered.
	Score float64
	// Expelled reports whether any answering manager holds an expulsion
	// verdict.
	Expelled bool
	// Replies is how many manager copies answered before the timeout.
	Replies int
}

// NewNodeHost assembles one node against the given runtime. The runtime is
// typically a transport runtime hosting just this node, with the rest of the
// membership reachable through its address book; any runtime.Runtime works,
// which is what the in-process tests use.
func NewNodeHost(rt runtime.Runtime, opts NodeOptions) *NodeHost {
	if len(opts.Members) < 2 {
		panic("cluster: a deployment needs at least 2 members")
	}
	if opts.ExpectedR == 0 {
		if opts.Gossip.MaxRequest > 0 {
			opts.ExpectedR = opts.Gossip.MaxRequest
		} else {
			opts.ExpectedR = 4
		}
	}
	if opts.Rep.Compensation == 0 && opts.LiFTinG {
		opts.Rep.Compensation = CompensationFor(opts.ExpectedLoss, opts.Gossip.F, opts.ExpectedR, opts.Core.Pdcc)
	}
	if opts.Core.Population == 0 {
		opts.Core.Population = len(opts.Members)
	}

	members := append([]msg.NodeID(nil), opts.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	h := &NodeHost{
		Opts:     opts,
		RT:       rt,
		Dir:      membership.NewDirectory(members),
		expelled: make(map[msg.NodeID]msg.BlameReason),
	}

	id := opts.ID
	nodeRand := rng.New(opts.Seed).ForNode(uint32(id))
	ctx := rt.Context(id)
	if f := opts.ClockSkew; f > 0 && f != 1 {
		h.skew = f
		ctx = skewCtx{Context: ctx, factor: f}
	}
	netw := rt.Network()

	behavior := opts.Behavior
	if behavior == nil {
		behavior = gossip.Honest{}
	}
	gcfg := opts.Gossip
	gcfg.StartOffset = time.Duration(nodeRand.Derive("offset").Float64() * float64(gcfg.Period))

	deps := gossip.Deps{
		Ctx:      ctx,
		Net:      netw,
		Dir:      h.Dir,
		Rand:     nodeRand.Derive("gossip"),
		Behavior: behavior,
		Metrics:  opts.Collector,
	}
	if opts.Stream.Validate() == nil {
		// Same derivation as the in-process cluster: every process of a
		// deployment — and any in-process run of the same seed — generates
		// byte-identical chunk payloads.
		h.Content = content.NewSource(rng.New(opts.Seed).Derive("content").Seed(), opts.Stream.ChunkPayload)
		capacity := opts.StoreCapacity
		if capacity <= 0 {
			capacity = content.StoreCapacityFor(opts.Stream.ChunkInterval(), opts.Gossip.Period)
		}
		h.Store = content.NewStore(capacity)
		deps.Store = h.Store
		if col := opts.Collector; col != nil {
			interval := opts.Stream.ChunkInterval()
			var lastArrival time.Duration
			seenArrival := false
			deps.OnChunk = func(ch msg.ChunkID, at time.Duration) {
				col.OnStreamLag(at - opts.Stream.GenTime(ch))
				if seenArrival {
					col.OnJitter((at - lastArrival) - interval)
				}
				lastArrival, seenArrival = at, true
			}
		}
	}
	node := gossip.NewNode(id, gcfg, deps)

	if opts.LiFTinG {
		repCfg := opts.Rep
		repCfg.OnExpel = h.onExpel
		h.client = reputation.NewClient(id, repCfg, netw, h.Dir)
		var sink core.BlameSink = h.client
		if opts.Collector != nil {
			sink = countingSink{coll: opts.Collector, inner: sink}
		}
		h.Verifier = core.NewVerifier(id, opts.Core, ctx, netw, nodeRand.Derive("verify"), node.History(), behavior, sink)
		h.Manager = reputation.NewManager(id, repCfg, netw, h.Dir)
		h.reader = reputation.NewReader(id, repCfg, ctx, netw, h.Dir, 2*gcfg.Period)
		deps.Monitor = h.Verifier
		deps.Aux = auxChain{h.Verifier, managerAux{h.Manager}, h.reader}
		deps.History = node.History()
		node = gossip.NewNode(id, gcfg, deps)

		// Track, as of period 0, every member this node manages, so r counts
		// time in the system — the same pre-registration the cluster does.
		for _, target := range members {
			for _, m := range h.Dir.Managers(target, repCfg.M) {
				if m == id {
					h.Manager.Track(target, 0)
					break
				}
			}
		}
	}

	h.Node = node
	rt.Attach(id, node)
	return h
}

// onExpel records an expulsion verdict — decided by this node's manager duty
// or learned from another manager's Expel message — and applies it locally:
// the target leaves the sampling population, and a node that learns of its
// own expulsion stops gossiping.
func (h *NodeHost) onExpel(target msg.NodeID, reason msg.BlameReason) {
	h.mu.Lock()
	if _, dup := h.expelled[target]; dup {
		h.mu.Unlock()
		return
	}
	h.expelled[target] = reason
	h.mu.Unlock()
	if h.Opts.Collector != nil {
		h.Opts.Collector.OnExpel()
	}
	h.Dir.Expel(target)
	if target == h.Opts.ID {
		h.RT.Exec(target, h.Node.Stop)
	}
	if h.Opts.OnExpel != nil {
		h.Opts.OnExpel(target, reason)
	}
}

// Start launches the node and its score-period clock.
func (h *NodeHost) Start() {
	h.RT.Exec(h.Opts.ID, h.Node.Start)
	h.scheduleTick(1)
}

// scheduleTick advances the score period every Tg, mirroring Cluster: the
// manager re-evaluates expulsions and the blame client flushes its batch.
// Each process runs its own period clock; periods only feed the r in
// score = b̃ − blame/r, so clocks need to agree in rate, not in phase —
// which is exactly what a skewed clock violates, so ClockSkew stretches
// this timer too and the period-drift gauge can watch the divergence.
func (h *NodeHost) scheduleTick(p msg.Period) {
	tick := h.Opts.Gossip.Period
	if h.skew > 0 {
		tick = time.Duration(float64(tick) * h.skew)
	}
	h.RT.After(tick, func() {
		h.mu.Lock()
		h.period = p
		h.mu.Unlock()
		if h.Manager != nil {
			h.Manager.Tick(p)
		}
		if h.client != nil {
			flushEvery := msg.Period(h.Opts.Rep.FlushEvery)
			if flushEvery < 1 {
				flushEvery = 1
			}
			if p%flushEvery == 0 {
				h.RT.Exec(h.Opts.ID, h.client.Flush)
			}
		}
		h.scheduleTick(p + 1)
	})
}

// Period returns the current score period.
func (h *NodeHost) Period() msg.Period {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.period
}

// Expelled returns the expulsions this node has learned about.
func (h *NodeHost) Expelled() map[msg.NodeID]msg.BlameReason {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[msg.NodeID]msg.BlameReason, len(h.expelled))
	//lint:allow ordered-map-range map-to-map copy; the copy is order-insensitive
	for id, r := range h.expelled {
		out[id] = r
	}
	return out
}

// LocalScores returns this node's manager-duty view: the score each tracked
// target holds on the local manager copy. It is a partial, local view — the
// authoritative score is the min-vote over all M copies — but it is exactly
// what an operator wants from a single daemon's /status.
func (h *NodeHost) LocalScores() map[msg.NodeID]float64 {
	if h.Manager == nil {
		return nil
	}
	return h.Manager.Scores()
}

// StartStream schedules chunk injections for the given duration. Only the
// source calls this; chunks then travel to every other process over the
// wire.
func (h *NodeHost) StartStream(duration time.Duration) {
	if !h.Opts.Source {
		panic("cluster: StartStream on a non-source node")
	}
	total := h.Opts.Stream.ChunksBy(duration)
	ctx := h.RT.Context(h.Opts.ID)
	for i := 0; i < total; i++ {
		ch := msg.ChunkID(i)
		at := h.Opts.Stream.GenTime(ch)
		if at > duration {
			break
		}
		ctx.After(at, func() {
			if h.Content != nil {
				payload, hash := h.Content.Chunk(ch)
				h.Node.InjectChunkData(ch, payload, hash)
			} else {
				h.Node.InjectChunk(ch)
			}
		})
	}
}

// ReadScores performs decentralized score reads for the given targets: each
// target's M managers are queried over the wire and the copies are combined
// by min-vote (§5.1). It blocks until every read resolves or a deadline
// slightly past the reader's timeout expires — a runtime closed mid-read
// (early shutdown) yields partial results, never a hang. Must not be called
// from inside a node callback.
func (h *NodeHost) ReadScores(targets []msg.NodeID) map[msg.NodeID]ScoreRead {
	if h.reader == nil {
		return nil
	}
	out := make(map[msg.NodeID]ScoreRead, len(targets))
	var mu sync.Mutex
	resolved := make(chan struct{}, len(targets)) // buffered: callbacks never block
	h.RT.Exec(h.Opts.ID, func() {
		for _, target := range targets {
			target := target
			h.reader.Read(target, func(score float64, expelled bool, replies int) {
				mu.Lock()
				out[target] = ScoreRead{Score: score, Expelled: expelled, Replies: replies}
				mu.Unlock()
				resolved <- struct{}{}
			})
		}
	})
	// The reader answers every read within its 2·Tg timeout; anything
	// slower means the runtime stopped scheduling our callbacks (Close
	// dropped them), so give up rather than wait on tokens that will never
	// come.
	//lint:allow no-wallclock liveness deadline for the live backend's reader; sim runs resolve every read long before it fires
	deadline := time.NewTimer(4*h.Opts.Gossip.Period + time.Second)
	defer deadline.Stop()
collect:
	for i := 0; i < len(targets); i++ {
		select {
		case <-resolved:
		case <-deadline.C:
			break collect
		}
	}
	mu.Lock()
	defer mu.Unlock()
	copied := make(map[msg.NodeID]ScoreRead, len(out))
	//lint:allow ordered-map-range map-to-map copy; the copy is order-insensitive
	for id, r := range out {
		copied[id] = r
	}
	return copied
}
