package cluster

import (
	"context"
	"errors"
	gort "runtime"
	"testing"
	"time"

	"lifting/internal/runtime"
)

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline. Wall-clock backends park short-lived timer and delivery
// goroutines; a couple of runtime-internal stragglers are tolerated.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := gort.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:gort.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d before cancellation\n%s",
				gort.NumGoroutine(), baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// testCancelMidStream is the cancellation acceptance check for a wall-clock
// backend: a cluster streaming far past the test's patience is cancelled
// mid-run; RunContext must report context.Canceled within a bounded delay,
// and Close must tear everything down — sockets, timers, goroutines —
// without waiting out the remaining schedule.
func testCancelMidStream(t *testing.T, backend runtime.Kind) {
	before := gort.NumGoroutine()

	const streamFor = 30 * time.Second // far beyond the cancellation point
	opts := fastOptions(backend, 12)
	c := New(opts)
	c.Start()
	c.StartStream(streamFor)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(250 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	err := c.RunContext(ctx, streamFor+time.Second)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	// Close after a cancelled run must also be prompt: the backend cancels
	// its pending timers (stream injections scheduled out to 30s) instead of
	// draining them on schedule.
	closeStart := time.Now()
	c.Close()
	if d := time.Since(closeStart); d > 5*time.Second {
		t.Fatalf("Close after cancellation took %v", d)
	}
	waitGoroutines(t, before)
}

func TestRunContextCancelLive(t *testing.T) {
	testCancelMidStream(t, runtime.KindLive)
}

func TestRunContextCancelUDP(t *testing.T) {
	testCancelMidStream(t, runtime.KindUDP)
}

// TestRunContextCancelSim: the discrete-event backend checks the context
// between event bursts, so even a pre-cancelled context aborts before any
// virtual time passes.
func TestRunContextCancelSim(t *testing.T) {
	c := New(fastOptions(runtime.KindSim, 12))
	c.Start()
	c.StartStream(10 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if now := c.RT.Now(); now != 0 {
		t.Fatalf("pre-cancelled run advanced the clock to %v", now)
	}
	c.Close()
}

// TestCalibrateCancels: the honest pilot honors the context too — a matrix
// or scale run interrupted during calibration must not stream on.
func TestCalibrateCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Calibrate(ctx, fastOptions(runtime.KindSim, 12), 5*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Calibrate = %v, want context.Canceled", err)
	}
}

// TestRunContextCompletesUncancelled: a context that is never cancelled
// leaves RunContext equivalent to Run, returning nil after the full advance.
func TestRunContextCompletesUncancelled(t *testing.T) {
	c := New(fastOptions(runtime.KindSim, 10))
	c.Start()
	c.StartStream(500 * time.Millisecond)
	if err := c.RunContext(context.Background(), 600*time.Millisecond); err != nil {
		t.Fatalf("RunContext = %v, want nil", err)
	}
	if now := c.RT.Now(); now != 600*time.Millisecond {
		t.Fatalf("clock at %v, want 600ms", now)
	}
	c.Close()
}
