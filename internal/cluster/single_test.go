package cluster

import (
	"context"
	"testing"
	"time"

	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/msg"
	"lifting/internal/reputation"
	"lifting/internal/stream"
	"lifting/internal/transport"
)

// TestNodeHostDeployment assembles a small deployment the way the
// lifting-node daemon does — one NodeHost per transport runtime, peers
// reachable only through UDP sockets — and checks the distributed verdict:
// chunks disseminate from the source over the wire, and the freerider's
// min-vote score (read over the wire, too) lands below the honest nodes'.
func TestNodeHostDeployment(t *testing.T) {
	const (
		n        = 6
		rider    = msg.NodeID(5)
		tg       = 80 * time.Millisecond
		duration = 2400 * time.Millisecond
	)
	members := make([]msg.NodeID, n)
	for i := range members {
		members[i] = msg.NodeID(i)
	}

	baseOpts := func(id msg.NodeID) NodeOptions {
		return NodeOptions{
			ID:      id,
			Members: members,
			Seed:    11,
			Gossip: gossip.Config{
				F:              n - 1,
				Period:         tg,
				ChunkPayload:   256,
				HistoryPeriods: 50,
			},
			Core: core.Config{
				F:              n - 1,
				Period:         tg,
				Pdcc:           1,
				HistoryPeriods: 50,
				Gamma:          8,
				Eta:            -1e9,
			},
			Rep:     reputation.Config{M: n, Eta: -1e9},
			Stream:  stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
			LiFTinG: true,
			Source:  id == 0,
		}
	}

	// One shared book stands in for the -peers bootstrap specs: every
	// runtime registers its socket there, exactly as daemons exchange
	// pre-agreed ports.
	book := transport.NewBook()
	hosts := make([]*NodeHost, n)
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		rt := transport.New(transport.Options{Seed: uint64(100 + i), Book: book})
		if _, err := rt.AddNode(id, "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		opts := baseOpts(id)
		if id == rider {
			opts.Behavior = freerider.Degree{Delta1: 0.6, Delta2: 0.6, Delta3: 0.6}
		}
		hosts[i] = NewNodeHost(rt, opts)
	}
	for _, h := range hosts {
		h.Start()
	}
	hosts[0].StartStream(duration)
	hosts[0].RT.Run(context.Background(), duration+4*tg)

	// The verdict, read over the wire from node 0 while the deployment is
	// still live.
	reads := hosts[0].ReadScores(members[1:])
	var honest float64
	for id, r := range reads {
		if r.Replies == 0 {
			t.Errorf("score read of node %d got no manager replies", id)
		}
		if id != rider {
			honest += r.Score
		}
	}
	honestMean := honest / float64(n-2)
	t.Logf("honest mean %.2f, freerider %.2f (replies %d)",
		honestMean, reads[rider].Score, reads[rider].Replies)
	if reads[rider].Score >= honestMean {
		t.Errorf("freerider score %.2f not below honest mean %.2f over the deployment",
			reads[rider].Score, honestMean)
	}

	for _, h := range hosts {
		h.RT.Close()
	}

	// Dissemination over the wire: everyone received most of the stream
	// through real sockets. Node state is read only after Close.
	total := hosts[0].Opts.Stream.ChunksBy(duration)
	for _, h := range hosts {
		if got := h.Node.ChunkCount(); got*2 < total {
			t.Errorf("node %d received %d/%d chunks over UDP", h.Opts.ID, got, total)
		}
	}

	// A closed runtime must not hang score reads (early-shutdown path):
	// partial or empty results come back within the reader deadline.
	done := make(chan struct{})
	go func() {
		hosts[0].ReadScores(members[1:])
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(4*hosts[0].Opts.Gossip.Period + 5*time.Second):
		t.Fatal("ReadScores hung on a closed runtime")
	}
}
