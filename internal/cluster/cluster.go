// Package cluster assembles complete simulated LiFTinG systems: gossip
// nodes with their verifiers, the reputation substrate, freerider behaviors,
// a stream source and playout tracking — everything the experiments,
// integration tests and examples need to run end-to-end scenarios under the
// discrete-event engine.
package cluster

import (
	"sort"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/core"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/sim"
	"lifting/internal/stats"
	"lifting/internal/stream"
)

// BlameMode selects how blames reach the scores.
type BlameMode int

// Blame routing modes.
const (
	// BlameDirect applies blames straight onto a shared board — the
	// idealized reputation used by the large-scale score experiments
	// (equivalent to min-vote over loss-free managers).
	BlameDirect BlameMode = iota + 1
	// BlameMessages routes blames as messages to each target's M managers,
	// as deployed on PlanetLab (§7).
	BlameMessages
)

// Options configures a cluster.
type Options struct {
	// N is the number of nodes (ids 0..N-1; node 0 is the stream source
	// and is always honest).
	N int
	// Seed roots all randomness.
	Seed uint64
	// Gossip is the dissemination configuration.
	Gossip gossip.Config
	// Core is LiFTinG's configuration. Used when LiFTinG is enabled.
	Core core.Config
	// Rep configures the reputation substrate. If Rep.Compensation is 0 it
	// is derived from ExpectedLoss via the analysis (Equation 5, scaled by
	// Pdcc-dependent terms are left to the caller).
	Rep reputation.Config
	// Stream describes the broadcast content.
	Stream stream.Config
	// NetDefaults is the default connection quality.
	NetDefaults net.Conditions
	// ConditionsFor, if non-nil, overrides per-node conditions (the
	// PlanetLab heterogeneity of §7).
	ConditionsFor func(id msg.NodeID) (net.Conditions, bool)
	// LiFTinG enables the verification machinery.
	LiFTinG bool
	// BlameMode defaults to BlameDirect.
	BlameMode BlameMode
	// BehaviorFor, if non-nil, supplies per-node behaviors (freeriders).
	// Returning nil means honest. Node 0 (the source) is always honest.
	BehaviorFor func(id msg.NodeID, dir *membership.Directory, rand *rng.Stream) gossip.Behavior
	// ExpelOnDetection removes nodes whose score crosses η (or who fail an
	// audit): they are stopped, marked down, and leave the membership.
	ExpelOnDetection bool
	// ExpectedLoss is the pl used for compensation (defaults to
	// NetDefaults' effective loss).
	ExpectedLoss float64
	// ExpectedR is the |R| used for compensation (defaults to
	// Gossip.MaxRequest, else 4).
	ExpectedR int
	// TrackPlayout enables per-node playout recording for health curves.
	TrackPlayout bool
	// OnBlame, if non-nil, observes every blame emission (diagnostics and
	// per-reason accounting in experiments). Only effective in direct mode.
	OnBlame func(target msg.NodeID, value float64, reason msg.BlameReason)
}

// Cluster is an assembled system.
type Cluster struct {
	Opts      Options
	Engine    *sim.Engine
	Net       *net.SimNet
	Dir       *membership.Directory
	Collector *metrics.Collector
	Nodes     map[msg.NodeID]*gossip.Node
	Verifiers map[msg.NodeID]*core.Verifier
	Managers  map[msg.NodeID]*reputation.Manager
	Board     *reputation.Board // direct mode; nil in message mode
	Playouts  map[msg.NodeID]*stream.Playout
	// Expelled records when each node was expelled (virtual time).
	Expelled map[msg.NodeID]time.Duration
	// Freeriders records which nodes got a non-honest behavior.
	Freeriders map[msg.NodeID]bool

	root    *rng.Stream
	auditor *core.Auditor
	period  msg.Period
	clients []*reputation.Client // message-mode blame clients, flushed per period
}

// auxChain fans a message out to handlers until one claims it.
type auxChain []gossip.AuxHandler

func (c auxChain) HandleAux(from msg.NodeID, m msg.Message) bool {
	for _, h := range c {
		if h != nil && h.HandleAux(from, m) {
			return true
		}
	}
	return false
}

// managerAux adapts a reputation.Manager to gossip.AuxHandler.
type managerAux struct{ m *reputation.Manager }

func (a managerAux) HandleAux(from msg.NodeID, mm msg.Message) bool {
	return a.m.HandleMessage(from, mm)
}

// boardSink adapts a reputation.Board to core.BlameSink.
type boardSink struct {
	b  *reputation.Board
	on func(target msg.NodeID, value float64, reason msg.BlameReason)
}

func (s boardSink) Blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	s.b.AddBlame(target, value)
	if s.on != nil {
		s.on(target, value, reason)
	}
}

// auditorProxy routes audit responses to the cluster's auditor once it
// exists (the auditor is created lazily, after the nodes).
type auditorProxy struct{ c *Cluster }

func (p auditorProxy) HandleAux(from msg.NodeID, m msg.Message) bool {
	if p.c.auditor == nil {
		return false
	}
	return p.c.auditor.HandleAux(from, m)
}

// New assembles a cluster. It panics on invalid configuration (experiments
// are code, not user input).
func New(opts Options) *Cluster {
	if opts.N < 2 {
		panic("cluster: need at least 2 nodes")
	}
	if opts.BlameMode == 0 {
		opts.BlameMode = BlameDirect
	}
	if opts.ExpectedR == 0 {
		if opts.Gossip.MaxRequest > 0 {
			opts.ExpectedR = opts.Gossip.MaxRequest
		} else {
			opts.ExpectedR = 4
		}
	}
	if opts.ExpectedLoss == 0 {
		d := opts.NetDefaults
		opts.ExpectedLoss = 1 - (1-d.LossIn)*(1-d.LossOut)
	}
	if opts.Rep.Compensation == 0 && opts.LiFTinG {
		opts.Rep.Compensation = CompensationFor(opts.ExpectedLoss, opts.Gossip.F, opts.ExpectedR, opts.Core.Pdcc)
	}
	if opts.Core.Population == 0 {
		opts.Core.Population = opts.N
	}
	if opts.ExpelOnDetection && opts.Rep.GracePeriods == 0 {
		// Young scores are noisy (σ(s) ∝ 1/√r); don't act on them.
		opts.Rep.GracePeriods = 8
	}

	c := &Cluster{
		Opts:       opts,
		Engine:     sim.NewEngine(),
		Dir:        membership.Sequential(opts.N),
		Collector:  metrics.NewCollector(),
		Nodes:      make(map[msg.NodeID]*gossip.Node, opts.N),
		Verifiers:  make(map[msg.NodeID]*core.Verifier, opts.N),
		Managers:   make(map[msg.NodeID]*reputation.Manager, opts.N),
		Playouts:   make(map[msg.NodeID]*stream.Playout, opts.N),
		Expelled:   make(map[msg.NodeID]time.Duration),
		Freeriders: make(map[msg.NodeID]bool),
		root:       rng.New(opts.Seed),
	}
	c.Net = net.NewSimNet(c.Engine, c.root.Derive("net"), c.Collector, opts.NetDefaults)

	if opts.BlameMode == BlameDirect {
		c.Board = reputation.NewBoard(opts.Rep.Compensation)
	}
	repCfg := opts.Rep
	repCfg.OnExpel = func(target msg.NodeID, reason msg.BlameReason) { c.expel(target) }

	for i := 0; i < opts.N; i++ {
		id := msg.NodeID(i)
		nodeRand := c.root.ForNode(uint32(i))

		var behavior gossip.Behavior
		if opts.BehaviorFor != nil && id != 0 {
			behavior = opts.BehaviorFor(id, c.Dir, nodeRand.Derive("behavior"))
		}
		if behavior == nil {
			behavior = gossip.Honest{}
		} else {
			c.Freeriders[id] = true
		}

		gcfg := opts.Gossip
		gcfg.StartOffset = time.Duration(nodeRand.Derive("offset").Float64() * float64(gcfg.Period))

		deps := gossip.Deps{
			Ctx:      c.Engine,
			Net:      c.Net,
			Dir:      c.Dir,
			Rand:     nodeRand.Derive("gossip"),
			Behavior: behavior,
		}

		if opts.TrackPlayout {
			p := stream.NewPlayout(opts.Stream)
			c.Playouts[id] = p
			deps.OnChunk = func(ch msg.ChunkID, at time.Duration) { p.Received(ch, at) }
		}

		var aux auxChain
		if opts.LiFTinG {
			var sink core.BlameSink
			if opts.BlameMode == BlameDirect {
				sink = boardSink{b: c.Board, on: opts.OnBlame}
			} else {
				client := reputation.NewClient(id, repCfg, c.Net, c.Dir)
				c.clients = append(c.clients, client)
				sink = client
			}
			node := gossip.NewNode(id, gcfg, deps) // create first to share its history
			v := core.NewVerifier(id, opts.Core, c.Engine, c.Net, nodeRand.Derive("verify"), node.History(), behavior, sink)
			c.Verifiers[id] = v
			aux = append(aux, v)
			if opts.BlameMode == BlameMessages {
				mgr := reputation.NewManager(id, repCfg, c.Net, c.Dir)
				c.Managers[id] = mgr
				aux = append(aux, managerAux{mgr})
			}
			if id == 0 {
				aux = append(aux, auditorProxy{c})
			}
			deps.Monitor = v
			deps.Aux = aux
			deps.History = node.History()
			// Rebuild the node with the full wiring (cheap; state empty).
			node = gossip.NewNode(id, gcfg, deps)
			c.Nodes[id] = node
			c.Net.Attach(id, node)
			continue
		}

		node := gossip.NewNode(id, gcfg, deps)
		c.Nodes[id] = node
		c.Net.Attach(id, node)
	}

	if cf := opts.ConditionsFor; cf != nil {
		for i := 0; i < opts.N; i++ {
			if cond, ok := cf(msg.NodeID(i)); ok {
				c.Net.SetConditions(msg.NodeID(i), cond)
			}
		}
	}

	// Pre-register every node with the scorekeepers at period 0 so r counts
	// time in the system, not time since first blame.
	if opts.LiFTinG {
		switch opts.BlameMode {
		case BlameDirect:
			for i := 0; i < opts.N; i++ {
				c.Board.Join(msg.NodeID(i))
			}
		case BlameMessages:
			for i := 0; i < opts.N; i++ {
				target := msg.NodeID(i)
				for _, m := range c.Dir.Managers(target, opts.Rep.M) {
					if mgr, ok := c.Managers[m]; ok {
						mgr.Track(target, 0)
					}
				}
			}
		}
	}

	return c
}

// CompensationFor returns the per-period compensation b̃ for the given loss,
// fanout, |R| and pdcc. Direct-verification wrongful blames and the
// broken-chain blame (the (a)-term of Equation 3) accrue always; witness
// blames only accrue when the verifier polls, i.e. a fraction pdcc of the
// time (§6.2 analyzes pdcc = 1, where this reduces to Equation 5).
func CompensationFor(loss float64, f, r int, pdcc float64) float64 {
	p := analysis.Params{F: f, R: r, Loss: loss}
	return p.DirectVerificationBlame() + p.CrossCheckBlameChain() + pdcc*p.CrossCheckBlameWitness()
}

// Calibration is the result of an honest pilot run: the empirical wrongful
// blame rate and its spread. The analysis's b̃ (Equation 5) assumes the
// saturated workload of §6.2 — every node receiving f proposals per period,
// each answered by an |R|-chunk request. A real chunk workload is lighter
// (each chunk is served to each node once), so deployments estimate b̃ from
// observed traffic; Calibrate plays that role here.
type Calibration struct {
	// Compensation is the measured mean wrongful blame per node per period
	// (the empirical b̃).
	Compensation float64
	// ScoreStd is the standard deviation of the resulting normalized
	// honest scores; η is typically set at a few multiples of it (the
	// paper's η = −9.75 is ≈ 2.7·σ(s) at its parameters).
	ScoreStd float64
	// Scores is the empirical distribution of honest pilot scores (with
	// Compensation applied). Under heterogeneous connectivity it has a
	// poor-node tail; thresholds are best placed by quantile (the paper's
	// η flags ≈12% of honest nodes, almost all from that tail, §7.3).
	Scores *stats.ECDF
	// Periods is the pilot length used.
	Periods int
}

// Calibrate runs an all-honest pilot with the given options and returns the
// empirical compensation and honest score spread. The pilot ignores
// BehaviorFor, expulsion and playout tracking, and discards the first 25%
// of the run as warmup (the dissemination ramp-up produces atypical blame).
func Calibrate(opts Options, duration time.Duration) Calibration {
	pilot := opts
	pilot.BehaviorFor = nil
	pilot.ExpelOnDetection = false
	pilot.TrackPlayout = false
	pilot.BlameMode = BlameDirect
	pilot.OnBlame = nil
	pilot.Seed = opts.Seed ^ 0x5afec0de
	c := New(pilot)
	c.Start()
	c.StartStream(duration)

	warmup := duration / 4
	c.Run(warmup)
	warmupPeriod := int(c.Board.Period())
	atWarmup := make(map[msg.NodeID]float64, pilot.N)
	for i := 1; i < pilot.N; i++ {
		atWarmup[msg.NodeID(i)] = c.Board.TotalBlame(msg.NodeID(i))
	}
	c.Run(duration + pilot.Gossip.Period)

	periods := int(c.Board.Period()) - warmupPeriod
	if periods < 1 {
		periods = 1
	}
	var blame stats.Moments
	rates := make([]float64, 0, pilot.N-1)
	for i := 1; i < pilot.N; i++ { // skip the source: it never requests
		rate := (c.Board.TotalBlame(msg.NodeID(i)) - atWarmup[msg.NodeID(i)]) / float64(periods)
		blame.Add(rate)
		rates = append(rates, rate)
	}
	// With compensation set to the measured mean, s = comp − total/r, so
	// σ(s) equals the spread of per-period blame rates.
	scores := make([]float64, len(rates))
	for i, r := range rates {
		scores[i] = blame.Mean() - r
	}
	return Calibration{
		Compensation: blame.Mean(),
		ScoreStd:     blame.Std(),
		Scores:       stats.NewECDF(scores),
		Periods:      periods,
	}
}

// Start launches every node (in id order, for reproducibility).
func (c *Cluster) Start() {
	for i := 0; i < c.Opts.N; i++ {
		c.Nodes[msg.NodeID(i)].Start()
	}
	c.scheduleTick(1)
}

// scheduleTick advances the score period every Tg.
func (c *Cluster) scheduleTick(p msg.Period) {
	c.Engine.After(c.Opts.Gossip.Period, func() {
		c.period = p
		if c.Board != nil {
			c.Board.SetPeriod(p)
			if c.Opts.ExpelOnDetection {
				c.detectOnBoard()
			}
		}
		flushEvery := msg.Period(c.Opts.Rep.FlushEvery)
		if flushEvery < 1 {
			flushEvery = 1
		}
		if p%flushEvery == 0 {
			for _, client := range c.clients {
				client.Flush()
			}
		}
		for i := 0; i < c.Opts.N; i++ {
			if m, ok := c.Managers[msg.NodeID(i)]; ok {
				m.Tick(p)
			}
		}
		c.scheduleTick(p + 1)
	})
}

// detectOnBoard expels nodes whose board score crossed η.
func (c *Cluster) detectOnBoard() {
	var toExpel []msg.NodeID
	c.Board.Each(func(id msg.NodeID, e reputation.Entry) {
		if e.Expelled || c.Board.Periods(id) < c.Opts.Rep.GracePeriods {
			return
		}
		if c.Board.Score(id) < c.Opts.Rep.Eta {
			toExpel = append(toExpel, id)
		}
	})
	sort.Slice(toExpel, func(i, j int) bool { return toExpel[i] < toExpel[j] })
	for _, id := range toExpel {
		c.Board.MarkExpelled(id, msg.ReasonUnknown)
		c.expel(id)
	}
}

// expel removes a node from the running system.
func (c *Cluster) expel(id msg.NodeID) {
	if _, done := c.Expelled[id]; done {
		return
	}
	c.Expelled[id] = c.Engine.Now()
	if c.Opts.ExpelOnDetection {
		c.Dir.Expel(id)
		c.Net.SetDown(id, true)
		if n, ok := c.Nodes[id]; ok {
			n.Stop()
		}
	}
}

// StartStream schedules chunk injections at the source (node 0) for the
// given duration.
func (c *Cluster) StartStream(duration time.Duration) {
	total := c.Opts.Stream.ChunksBy(duration)
	source := c.Nodes[0]
	for i := 0; i < total; i++ {
		ch := msg.ChunkID(i)
		at := c.Opts.Stream.GenTime(ch)
		if at > duration {
			break
		}
		c.Engine.After(at, func() { source.InjectChunk(ch) })
		if p, ok := c.Playouts[0]; ok {
			p.Received(ch, at)
		}
	}
}

// Run advances the simulation to the given virtual time.
func (c *Cluster) Run(until time.Duration) { c.Engine.Run(until) }

// Auditor lazily creates the system's auditor, hosted at the source node
// (audits run sporadically from any node; one auditor keeps the experiments
// deterministic). Its outcomes expel on verdict when ExpelOnDetection is
// set.
func (c *Cluster) Auditor(onOutcome func(core.AuditOutcome)) *core.Auditor {
	if c.auditor != nil {
		return c.auditor
	}
	var sink core.BlameSink
	if c.Board != nil {
		sink = boardSink{b: c.Board, on: c.Opts.OnBlame}
	} else {
		client := reputation.NewClient(0, c.Opts.Rep, c.Net, c.Dir)
		c.clients = append(c.clients, client)
		sink = client
	}
	c.auditor = core.NewAuditor(0, c.Opts.Core, c.Engine, c.Net, c.root.Derive("auditor"), sink,
		func(out core.AuditOutcome) {
			if out.Expel {
				c.expel(out.Target)
			}
			if onOutcome != nil {
				onOutcome(out)
			}
		})
	return c.auditor
}

// Scores returns every node's current score: the board score in direct
// mode, or the min-vote over manager copies in message mode.
func (c *Cluster) Scores() map[msg.NodeID]float64 {
	out := make(map[msg.NodeID]float64, c.Opts.N)
	if c.Board != nil {
		for i := 0; i < c.Opts.N; i++ {
			out[msg.NodeID(i)] = c.Board.Score(msg.NodeID(i))
		}
		return out
	}
	for i := 0; i < c.Opts.N; i++ {
		target := msg.NodeID(i)
		var copies []float64
		for _, m := range c.Dir.Managers(target, c.Opts.Rep.M) {
			if mgr, ok := c.Managers[m]; ok && mgr.Board().Tracked(target) {
				copies = append(copies, mgr.Board().Score(target))
			}
		}
		score, _ := reputation.MinVoteScore(copies, nil)
		out[target] = score
	}
	return out
}

// Period returns the current score period.
func (c *Cluster) Period() msg.Period { return c.period }
