// Package cluster assembles complete LiFTinG systems: gossip nodes with
// their verifiers, the reputation substrate, freerider behaviors, a stream
// source and playout tracking — everything the experiments, integration
// tests and examples need to run end-to-end scenarios.
//
// Assembly is written against the runtime.Runtime seam, so the same wiring
// executes under the deterministic discrete-event engine (Options.Backend =
// runtime.KindSim, the default), under the goroutine-per-node live runtime
// (runtime.KindLive), or over real UDP sockets on loopback
// (runtime.KindUDP, one socket per node). Scenarios — quickstart,
// collusion, PlanetLab heterogeneity, churn — are therefore written once
// and run on any backend. For deployments where each node is its own OS
// process, see NodeHost.
package cluster

import (
	"context"
	"fmt"
	gort "runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/chaos"
	"lifting/internal/content"
	"lifting/internal/core"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/sim"
	"lifting/internal/stats"
	"lifting/internal/stream"

	// Execution backends register themselves with the runtime registry;
	// importing them here makes every Options.Backend constructible.
	_ "lifting/internal/live"
	_ "lifting/internal/transport"
)

// BlameMode selects how blames reach the scores.
type BlameMode int

// Blame routing modes.
const (
	// BlameDirect applies blames straight onto a shared board — the
	// idealized reputation used by the large-scale score experiments
	// (equivalent to min-vote over loss-free managers).
	BlameDirect BlameMode = iota + 1
	// BlameMessages routes blames as messages to each target's M managers,
	// as deployed on PlanetLab (§7).
	BlameMessages
)

// Options configures a cluster.
type Options struct {
	// N is the number of nodes (ids 0..N-1; node 0 is the stream source
	// and is always honest). Churn may add nodes beyond N mid-run.
	N int
	// Seed roots all randomness.
	Seed uint64
	// Backend selects the execution backend: the deterministic
	// discrete-event engine (runtime.KindSim, the zero value), the
	// goroutine-per-node live runtime (runtime.KindLive), or the UDP
	// socket transport in single-process-many-sockets mode
	// (runtime.KindUDP).
	Backend runtime.Kind
	// Shards partitions the discrete-event engine for eligible
	// configurations (sim-backend LiFTinG runs in message mode with no
	// external harness callbacks): 0 keeps the legacy serial engine, -1
	// uses one shard per CPU, n >= 1 forces exactly n shards. Seeded
	// results are byte-identical for every shard count >= 1 — including -1
	// on any machine — but sharded runs legitimately differ from serial
	// ones: the sharded network draws each node's latency and loss from a
	// per-node random stream instead of one shared stream.
	Shards int
	// Gossip is the dissemination configuration.
	Gossip gossip.Config
	// Core is LiFTinG's configuration. Used when LiFTinG is enabled.
	Core core.Config
	// Rep configures the reputation substrate. If Rep.Compensation is 0 it
	// is derived from ExpectedLoss via the analysis (Equation 5, scaled by
	// Pdcc-dependent terms are left to the caller).
	Rep reputation.Config
	// Stream describes the broadcast content.
	Stream stream.Config
	// NetDefaults is the default connection quality.
	NetDefaults net.Conditions
	// ConditionsFor, if non-nil, overrides per-node conditions (the
	// PlanetLab heterogeneity of §7).
	ConditionsFor func(id msg.NodeID) (net.Conditions, bool)
	// LiFTinG enables the verification machinery.
	LiFTinG bool
	// BlameMode defaults to BlameDirect.
	BlameMode BlameMode
	// BehaviorFor, if non-nil, supplies per-node behaviors (freeriders).
	// Returning nil means honest. Node 0 (the source) is always honest.
	BehaviorFor func(id msg.NodeID, dir *membership.Directory, rand *rng.Stream) gossip.Behavior
	// ExpelOnDetection removes nodes whose score crosses η (or who fail an
	// audit): they are stopped, marked down, and leave the membership.
	ExpelOnDetection bool
	// ExpectedLoss is the pl used for compensation (defaults to
	// NetDefaults' effective loss).
	ExpectedLoss float64
	// ExpectedR is the |R| used for compensation (defaults to
	// Gossip.MaxRequest, else 4).
	ExpectedR int
	// TrackPlayout enables per-node playout recording for health curves.
	TrackPlayout bool
	// StoreCapacity is the per-node chunk store capacity in chunks (0 =
	// sized from the stream rate and gossip period via
	// content.StoreCapacityFor). The content plane — real payload
	// bytes in serves, hash verification on receipt — is on whenever Stream
	// is a valid configuration; an invalid/zero Stream keeps the legacy
	// modelled-size behavior.
	StoreCapacity int
	// OnBlame, if non-nil, observes every blame emission (diagnostics and
	// per-reason accounting in experiments). Only effective in direct mode.
	// Under the live backend it is invoked concurrently from node
	// goroutines with no lock held; synchronize externally if it mutates
	// shared state.
	OnBlame func(target msg.NodeID, value float64, reason msg.BlameReason)
	// Chaos, if non-nil, layers a deterministic fault schedule onto the
	// run: crash→restart cycles with manager score handoff, partitions,
	// correlated loss bursts, standing duplication/reordering and per-node
	// clock skew. Events apply from harness timers (the sharded engine's
	// global phase), and the plan itself is pure data, so an eligible
	// configuration stays shardable and byte-identical across shard
	// counts. Keep the stream source out of the plan's candidates.
	Chaos *chaos.Plan
	// OnPeriodSnapshot, if non-nil, receives a deterministic metrics
	// snapshot at the start of every score period, before the period's
	// flushes and expulsion checks. Under the sharded engine it fires in
	// the global phase with every shard parked at the barrier, so the
	// counts are byte-identical across shard and worker counts; the
	// callback receives a value copy and cannot perturb the run.
	OnPeriodSnapshot func(p msg.Period, s metrics.Snapshot)
}

// Cluster is an assembled system.
type Cluster struct {
	Opts Options
	// RT is the execution backend everything is wired to.
	RT runtime.Runtime
	// Engine and Net expose the discrete-event internals; both are nil
	// under the live backend.
	Engine    *sim.Engine
	Net       *net.SimNet
	Dir       *membership.Directory
	Collector *metrics.Collector
	// Content is the stream's canonical payload source (nil when the
	// content plane is off). Its memoized slices are shared by every
	// node's store, so large populations hold one copy of the stream.
	Content   *content.Source
	Nodes     map[msg.NodeID]*gossip.Node
	Verifiers map[msg.NodeID]*core.Verifier
	Managers  map[msg.NodeID]*reputation.Manager
	Board     *reputation.Board // direct mode; nil in message mode
	Playouts  map[msg.NodeID]*stream.Playout
	// Expelled records when each node was expelled (virtual time).
	Expelled map[msg.NodeID]time.Duration
	// Joined records when each churn arrival entered the system.
	Joined map[msg.NodeID]time.Duration
	// Departed records when each node voluntarily left (churn).
	Departed map[msg.NodeID]time.Duration
	// Crashed records when each node last crashed (fault plane); Restarted
	// when it last came back.
	Crashed   map[msg.NodeID]time.Duration
	Restarted map[msg.NodeID]time.Duration
	// Freeriders records which nodes got a non-honest behavior.
	Freeriders map[msg.NodeID]bool

	// mu guards the mutable maps above plus period/clients/handoffs: under
	// the live backend churn, expulsion and ticks run on separate
	// goroutines. boardMu serializes all access to Board and OnBlame.
	mu      sync.Mutex
	boardMu sync.Mutex

	root          *rng.Stream
	repCfg        reputation.Config
	auditor       *core.Auditor
	period        msg.Period
	clients       []ownedClient // message-mode blame clients, flushed per period
	nextID        msg.NodeID
	handoffs      int
	rebalance     bool // a manager rebalance is scheduled
	rebalanceFull bool // ...and must rescan every assignment (a join)

	// Message-mode rebalance bookkeeping: the manager set last applied per
	// target, its reverse index (manager -> targets it manages), and the
	// nodes removed since the last rebalance. Together they make a
	// removal-triggered rebalance O(affected targets) instead of O(N·M):
	// only the departed managers' targets can change assignment.
	lastMgrs       map[msg.NodeID][]msg.NodeID
	mgrTargets     map[msg.NodeID]map[msg.NodeID]bool
	pendingRemoved []msg.NodeID

	// Fault-plane state (guarded by mu): nodes currently down from a crash,
	// the current partition's minority island, the loss-burst overlays, and
	// how many plan events have been applied.
	crashedNow   map[msg.NodeID]bool
	partMinority map[msg.NodeID]bool
	partitioned  bool
	burstLoss    map[msg.NodeID]float64
	chaosApplied int
}

// ownedClient pairs a blame client with the node whose execution context
// serializes it.
type ownedClient struct {
	owner  msg.NodeID
	client *reputation.Client
}

// auxChain fans a message out to handlers until one claims it.
type auxChain []gossip.AuxHandler

func (c auxChain) HandleAux(from msg.NodeID, m msg.Message) bool {
	for _, h := range c {
		if h != nil && h.HandleAux(from, m) {
			return true
		}
	}
	return false
}

// skewCtx runs one node's timers on a drifting local clock: every delay is
// scaled by a constant rate factor, so a node with factor 1.02 fires its
// gossip periods 2% late and slowly drifts against the period auditor. Now
// stays on true time — arrival timestamps (QoE, playout) measure when
// chunks actually land. Scaling is a pure function of the delay, so skewed
// runs remain deterministic and shard-count-invariant.
type skewCtx struct {
	sim.Context
	factor float64
}

func (s skewCtx) After(d time.Duration, fn func()) {
	s.Context.After(time.Duration(float64(d)*s.factor), fn)
}

// managerAux adapts a reputation.Manager to gossip.AuxHandler.
type managerAux struct{ m *reputation.Manager }

func (a managerAux) HandleAux(from msg.NodeID, mm msg.Message) bool {
	return a.m.HandleMessage(from, mm)
}

// boardSink routes blames onto the shared board under the board lock. The
// observer callback runs outside it, so it may freely read cluster state
// (Scores, the board) without self-deadlocking.
type boardSink struct{ c *Cluster }

func (s boardSink) Blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	s.c.boardMu.Lock()
	s.c.Board.AddBlame(target, value)
	s.c.boardMu.Unlock()
	if s.c.Opts.OnBlame != nil {
		s.c.Opts.OnBlame(target, value, reason)
	}
}

// countingSink wraps a BlameSink with per-reason issue accounting. The
// counter adds commute, so wrapping does not affect sharded determinism.
type countingSink struct {
	coll  *metrics.Collector
	inner core.BlameSink
}

func (s countingSink) Blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	s.coll.OnBlameIssued(reason.String())
	s.inner.Blame(target, value, reason)
}

// auditorProxy routes audit responses to the cluster's auditor once it
// exists (the auditor is created lazily, after the nodes).
type auditorProxy struct{ c *Cluster }

func (p auditorProxy) HandleAux(from msg.NodeID, m msg.Message) bool {
	if p.c.auditor == nil {
		return false
	}
	return p.c.auditor.HandleAux(from, m)
}

// New assembles a cluster. It panics on invalid configuration (experiments
// are code, not user input).
func New(opts Options) *Cluster {
	if opts.N < 2 {
		panic("cluster: need at least 2 nodes")
	}
	if opts.BlameMode == 0 {
		opts.BlameMode = BlameDirect
	}
	if opts.ExpectedR == 0 {
		if opts.Gossip.MaxRequest > 0 {
			opts.ExpectedR = opts.Gossip.MaxRequest
		} else {
			opts.ExpectedR = 4
		}
	}
	if opts.ExpectedLoss == 0 {
		d := opts.NetDefaults
		opts.ExpectedLoss = 1 - (1-d.LossIn)*(1-d.LossOut)
	}
	if opts.Rep.Compensation == 0 && opts.LiFTinG {
		opts.Rep.Compensation = CompensationFor(opts.ExpectedLoss, opts.Gossip.F, opts.ExpectedR, opts.Core.Pdcc)
	}
	if opts.Core.Population == 0 {
		opts.Core.Population = opts.N
	}
	if opts.ExpelOnDetection && opts.Rep.GracePeriods == 0 {
		// Young scores are noisy (σ(s) ∝ 1/√r); don't act on them.
		opts.Rep.GracePeriods = 8
	}
	if opts.Chaos != nil {
		// The plan's standing link perturbations apply to every node for
		// the whole run, so they fold into the default conditions before
		// the backend is built.
		if opts.Chaos.DupProb > 0 {
			opts.NetDefaults.DupProb = opts.Chaos.DupProb
		}
		if opts.Chaos.ReorderProb > 0 {
			opts.NetDefaults.ReorderProb = opts.Chaos.ReorderProb
			opts.NetDefaults.ReorderDelay = opts.Chaos.ReorderDelay
		}
	}

	c := &Cluster{
		Opts:       opts,
		Dir:        membership.Sequential(opts.N),
		Collector:  metrics.NewCollector(),
		Nodes:      make(map[msg.NodeID]*gossip.Node, opts.N),
		Verifiers:  make(map[msg.NodeID]*core.Verifier, opts.N),
		Managers:   make(map[msg.NodeID]*reputation.Manager, opts.N),
		Playouts:   make(map[msg.NodeID]*stream.Playout, opts.N),
		Expelled:   make(map[msg.NodeID]time.Duration),
		Joined:     make(map[msg.NodeID]time.Duration),
		Departed:   make(map[msg.NodeID]time.Duration),
		Crashed:    make(map[msg.NodeID]time.Duration),
		Restarted:  make(map[msg.NodeID]time.Duration),
		Freeriders: make(map[msg.NodeID]bool),
		root:       rng.New(opts.Seed),
		nextID:     msg.NodeID(opts.N),
		lastMgrs:   make(map[msg.NodeID][]msg.NodeID),
		mgrTargets: make(map[msg.NodeID]map[msg.NodeID]bool),

		crashedNow:   make(map[msg.NodeID]bool),
		partMinority: make(map[msg.NodeID]bool),
		burstLoss:    make(map[msg.NodeID]float64),
	}
	if opts.Stream.Validate() == nil {
		// The content seed derives from the root exactly as NodeHost derives
		// it, so an in-process cluster and a multi-process deployment of the
		// same seed broadcast byte-identical streams.
		c.Content = content.NewSource(c.root.Derive("content").Seed(), opts.Stream.ChunkPayload)
	}

	if opts.Backend == runtime.KindSim {
		var engine *sim.Engine
		if s := c.shardable(); s > 0 {
			engine = sim.NewSharded(s, opts.NetDefaults.LatencyBase)
		} else {
			engine = sim.NewEngine()
		}
		simnet := net.NewSimNet(engine, c.root.Derive("net"), c.Collector, opts.NetDefaults)
		c.Engine = engine
		c.Net = simnet
		c.RT = runtime.NewSim(engine, simnet)
	} else {
		rt, err := runtime.New(opts.Backend, runtime.BackendOptions{
			Seed:      c.root.Derive("net").Seed(),
			Collector: c.Collector,
			Defaults:  opts.NetDefaults,
		})
		if err != nil {
			panic(fmt.Sprintf("cluster: backend %v: %v", opts.Backend, err))
		}
		c.RT = rt
	}

	if opts.BlameMode == BlameDirect {
		c.Board = reputation.NewBoard(opts.Rep.Compensation)
	}
	c.repCfg = opts.Rep

	for i := 0; i < opts.N; i++ {
		c.buildNode(msg.NodeID(i))
	}

	if cf := opts.ConditionsFor; cf != nil {
		for i := 0; i < opts.N; i++ {
			if cond, ok := cf(msg.NodeID(i)); ok {
				c.RT.SetConditions(msg.NodeID(i), cond)
			}
		}
	}

	// Pre-register every node with the scorekeepers at period 0 so r counts
	// time in the system, not time since first blame.
	if opts.LiFTinG {
		for i := 0; i < opts.N; i++ {
			c.registerScorekeepers(msg.NodeID(i), 0)
		}
	}

	return c
}

// buildNode assembles one node — gossip, verifier, manager duty, behavior —
// and attaches it to the runtime. The caller registers scorekeepers and
// per-node conditions.
func (c *Cluster) buildNode(id msg.NodeID) {
	opts := c.Opts
	nodeRand := c.root.ForNode(uint32(id))
	ctx := c.RT.Context(id)
	if opts.Chaos != nil {
		if f := opts.Chaos.SkewFactor(id); f != 1 {
			ctx = skewCtx{Context: ctx, factor: f}
		}
	}
	netw := c.RT.Network()

	var behavior gossip.Behavior
	if opts.BehaviorFor != nil && id != 0 {
		behavior = opts.BehaviorFor(id, c.Dir, nodeRand.Derive("behavior"))
	}
	isFreerider := behavior != nil
	if behavior == nil {
		behavior = gossip.Honest{}
	}

	gcfg := opts.Gossip
	gcfg.StartOffset = time.Duration(nodeRand.Derive("offset").Float64() * float64(gcfg.Period))

	deps := gossip.Deps{
		Ctx:      ctx,
		Net:      netw,
		Dir:      c.Dir,
		Rand:     nodeRand.Derive("gossip"),
		Behavior: behavior,
		Metrics:  c.Collector,
	}

	if c.Content != nil {
		capacity := opts.StoreCapacity
		if capacity <= 0 {
			capacity = content.StoreCapacityFor(opts.Stream.ChunkInterval(), opts.Gossip.Period)
		}
		deps.Store = content.NewStore(capacity)
	}

	var playout *stream.Playout
	if opts.TrackPlayout {
		playout = stream.NewPlayout(opts.Stream)
	}
	if playout != nil || c.Content != nil {
		// QoE accounting rides the same per-chunk callback as playout
		// tracking. The closure state (previous arrival) is only touched
		// from the node's serialized execution context, and the collector
		// sums are commuting integer adds, so sharded runs stay
		// byte-identical across shard counts.
		var interval time.Duration
		if c.Content != nil {
			interval = opts.Stream.ChunkInterval()
		}
		var lastArrival time.Duration
		seenArrival := false
		deps.OnChunk = func(ch msg.ChunkID, at time.Duration) {
			if playout != nil {
				playout.Received(ch, at)
			}
			if c.Content == nil {
				return
			}
			c.Collector.OnStreamLag(at - opts.Stream.GenTime(ch))
			if seenArrival {
				c.Collector.OnJitter((at - lastArrival) - interval)
			}
			lastArrival, seenArrival = at, true
		}
	}

	node := gossip.NewNode(id, gcfg, deps)
	var verifier *core.Verifier
	var manager *reputation.Manager
	if opts.LiFTinG {
		var sink core.BlameSink
		var client *reputation.Client
		if opts.BlameMode == BlameDirect {
			sink = boardSink{c}
		} else {
			client = reputation.NewClient(id, c.repCfg, netw, c.Dir)
			sink = client
		}
		sink = countingSink{coll: c.Collector, inner: sink}
		verifier = core.NewVerifier(id, opts.Core, ctx, netw, nodeRand.Derive("verify"), node.History(), behavior, sink)
		var aux auxChain
		aux = append(aux, verifier)
		if opts.BlameMode == BlameMessages {
			// The expulsion callback carries the hosting manager's id: under
			// a sharded engine it fires inside a lookahead window, and the
			// resulting membership mutation must be deferred to the global
			// phase keyed by the node that triggered it.
			mcfg := c.repCfg
			mcfg.OnExpel = func(target msg.NodeID, _ msg.BlameReason) { c.expelFrom(id, target) }
			manager = reputation.NewManager(id, mcfg, netw, c.Dir)
			aux = append(aux, managerAux{manager})
		}
		if id == 0 {
			aux = append(aux, auditorProxy{c})
		}
		deps.Monitor = verifier
		deps.Aux = aux
		deps.History = node.History()
		// Rebuild the node with the full wiring (cheap; state empty).
		node = gossip.NewNode(id, gcfg, deps)
		if client != nil {
			c.mu.Lock()
			c.clients = append(c.clients, ownedClient{owner: id, client: client})
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	if isFreerider {
		c.Freeriders[id] = true
	}
	c.Nodes[id] = node
	if verifier != nil {
		c.Verifiers[id] = verifier
	}
	if manager != nil {
		c.Managers[id] = manager
	}
	if playout != nil {
		c.Playouts[id] = playout
	}
	c.mu.Unlock()

	c.RT.Attach(id, node)
}

// registerScorekeepers starts tracking id's score as of period p.
func (c *Cluster) registerScorekeepers(id msg.NodeID, p msg.Period) {
	switch c.Opts.BlameMode {
	case BlameDirect:
		c.boardMu.Lock()
		c.Board.Join(id)
		c.boardMu.Unlock()
	case BlameMessages:
		set := c.Dir.Managers(id, c.Opts.Rep.M)
		c.mu.Lock()
		c.setAssignmentLocked(id, set)
		mgrs := make([]*reputation.Manager, 0, len(set))
		for _, m := range set {
			if mgr, ok := c.Managers[m]; ok {
				mgrs = append(mgrs, mgr)
			}
		}
		c.mu.Unlock()
		for _, mgr := range mgrs {
			mgr.Track(id, p)
		}
	}
}

// setAssignmentLocked records set as target's current manager assignment
// and maintains the reverse index. Callers hold c.mu. The slice comes from
// Directory.Managers and is shared and read-only.
func (c *Cluster) setAssignmentLocked(target msg.NodeID, set []msg.NodeID) {
	for _, m := range c.lastMgrs[target] {
		delete(c.mgrTargets[m], target)
	}
	c.lastMgrs[target] = set
	for _, m := range set {
		ts := c.mgrTargets[m]
		if ts == nil {
			ts = make(map[msg.NodeID]bool)
			c.mgrTargets[m] = ts
		}
		ts[target] = true
	}
}

// shardable returns the shard count to run the discrete-event engine with,
// or 0 for the legacy serial engine. Sharding requires the sim backend, a
// positive base latency (the lookahead window), and a configuration whose
// harness stays out of the event hot path: LiFTinG in message mode (the
// direct-mode board is a shared mutable global), no per-blame observer and
// no per-node condition overrides.
func (c *Cluster) shardable() int {
	o := &c.Opts
	if o.Shards == 0 || !o.LiFTinG || o.BlameMode != BlameMessages || o.OnBlame != nil ||
		o.ConditionsFor != nil || o.NetDefaults.LatencyBase <= 0 {
		return 0
	}
	if o.Shards > 0 {
		return o.Shards
	}
	return max(1, gort.GOMAXPROCS(0))
}

// ShardCount reports how many shards the engine runs (0 when serial or on
// a non-sim backend).
func (c *Cluster) ShardCount() int {
	if c.Engine == nil {
		return 0
	}
	return c.Engine.ShardCount()
}

// expelFrom expels target on behalf of owner. Inside a sharded engine
// window the membership mutation is deferred to the global phase, keyed by
// owner so the expulsion order is shard-count-independent; everywhere else
// it applies immediately.
func (c *Cluster) expelFrom(owner msg.NodeID, target msg.NodeID) {
	if c.Engine != nil && c.Engine.Sharded() && c.Engine.InWindow() {
		c.Engine.DeferGlobal(int(owner), func() { c.expel(target) })
		return
	}
	c.expel(target)
}

// CompensationFor returns the per-period compensation b̃ for the given loss,
// fanout, |R| and pdcc. Direct-verification wrongful blames and the
// broken-chain blame (the (a)-term of Equation 3) accrue always; witness
// blames only accrue when the verifier polls, i.e. a fraction pdcc of the
// time (§6.2 analyzes pdcc = 1, where this reduces to Equation 5).
func CompensationFor(loss float64, f, r int, pdcc float64) float64 {
	p := analysis.Params{F: f, R: r, Loss: loss}
	return p.DirectVerificationBlame() + p.CrossCheckBlameChain() + pdcc*p.CrossCheckBlameWitness()
}

// Calibration is the result of an honest pilot run: the empirical wrongful
// blame rate and its spread. The analysis's b̃ (Equation 5) assumes the
// saturated workload of §6.2 — every node receiving f proposals per period,
// each answered by an |R|-chunk request. A real chunk workload is lighter
// (each chunk is served to each node once), so deployments estimate b̃ from
// observed traffic; Calibrate plays that role here.
type Calibration struct {
	// Compensation is the measured mean wrongful blame per node per period
	// (the empirical b̃).
	Compensation float64
	// ScoreStd is the standard deviation of the resulting normalized
	// honest scores; η is typically set at a few multiples of it (the
	// paper's η = −9.75 is ≈ 2.7·σ(s) at its parameters).
	ScoreStd float64
	// Scores is the empirical distribution of honest pilot scores (with
	// Compensation applied). Under heterogeneous connectivity it has a
	// poor-node tail; thresholds are best placed by quantile (the paper's
	// η flags ≈12% of honest nodes, almost all from that tail, §7.3).
	Scores *stats.ECDF
	// Periods is the pilot length used.
	Periods int
}

// Calibrate runs an all-honest pilot with the given options and returns the
// empirical compensation and honest score spread. The pilot always runs on
// the discrete-event backend (it is a Monte-Carlo measurement, not an
// integration test), ignores BehaviorFor, expulsion and playout tracking,
// and discards the first 25% of the run as warmup (the dissemination
// ramp-up produces atypical blame). Cancelling ctx aborts the pilot and
// returns ctx.Err() with a zero Calibration.
func Calibrate(ctx context.Context, opts Options, duration time.Duration) (Calibration, error) {
	pilot := opts
	pilot.Backend = runtime.KindSim
	pilot.BehaviorFor = nil
	pilot.ExpelOnDetection = false
	pilot.TrackPlayout = false
	pilot.BlameMode = BlameDirect
	pilot.OnBlame = nil
	pilot.Seed = opts.Seed ^ 0x5afec0de
	c := New(pilot)
	c.Start()
	c.StartStream(duration)

	warmup := duration / 4
	if err := c.RunContext(ctx, warmup); err != nil {
		c.Close()
		return Calibration{}, err
	}
	warmupPeriod := int(c.Board.Period())
	atWarmup := make(map[msg.NodeID]float64, pilot.N)
	for i := 1; i < pilot.N; i++ {
		atWarmup[msg.NodeID(i)] = c.Board.TotalBlame(msg.NodeID(i))
	}
	if err := c.RunContext(ctx, duration+pilot.Gossip.Period); err != nil {
		c.Close()
		return Calibration{}, err
	}

	periods := int(c.Board.Period()) - warmupPeriod
	if periods < 1 {
		periods = 1
	}
	var blame stats.Moments
	rates := make([]float64, 0, pilot.N-1)
	for i := 1; i < pilot.N; i++ { // skip the source: it never requests
		rate := (c.Board.TotalBlame(msg.NodeID(i)) - atWarmup[msg.NodeID(i)]) / float64(periods)
		blame.Add(rate)
		rates = append(rates, rate)
	}
	// With compensation set to the measured mean, s = comp − total/r, so
	// σ(s) equals the spread of per-period blame rates.
	scores := make([]float64, len(rates))
	for i, r := range rates {
		scores[i] = blame.Mean() - r
	}
	return Calibration{
		Compensation: blame.Mean(),
		ScoreStd:     blame.Std(),
		Scores:       stats.NewECDF(scores),
		Periods:      periods,
	}, nil
}

// Start launches every node (in id order, for reproducibility).
func (c *Cluster) Start() {
	for i := 0; i < c.Opts.N; i++ {
		c.Nodes[msg.NodeID(i)].Start()
	}
	c.scheduleTick(1)
	c.startChaos()
}

// scheduleTick advances the score period every Tg.
func (c *Cluster) scheduleTick(p msg.Period) {
	c.RT.After(c.Opts.Gossip.Period, func() {
		c.tick(p)
		c.scheduleTick(p + 1)
	})
}

// tick runs one score-period advance: board clock, expulsion checks, blame
// flushes and manager ticks. Under the live backend it runs on a harness
// goroutine outside any node lock.
func (c *Cluster) tick(p msg.Period) {
	if c.Opts.OnPeriodSnapshot != nil {
		// Sampled before the period's flushes so the snapshot reflects
		// exactly the traffic of completed periods.
		c.Opts.OnPeriodSnapshot(p, c.Collector.SnapshotAt(uint64(p)))
	}
	c.mu.Lock()
	c.period = p
	clients := make([]ownedClient, len(c.clients))
	copy(clients, c.clients)
	mgrIDs := make([]msg.NodeID, 0, len(c.Managers))
	//lint:allow ordered-map-range collect-then-sort: ids are sorted before the period fan-out
	for id := range c.Managers {
		// A crashed node's manager replica is frozen, not authoritative:
		// it must not advance its clock or issue expulsion verdicts while
		// the process is down. Its entries stay readable for handoff.
		if c.crashedNow[id] {
			continue
		}
		mgrIDs = append(mgrIDs, id)
	}
	c.mu.Unlock()

	if c.Board != nil {
		c.boardMu.Lock()
		c.Board.SetPeriod(p)
		var toExpel []msg.NodeID
		if c.Opts.ExpelOnDetection {
			c.Board.Each(func(id msg.NodeID, e reputation.Entry) {
				if e.Expelled || c.Board.Periods(id) < c.Opts.Rep.GracePeriods {
					return
				}
				if c.Board.Score(id) < c.Opts.Rep.Eta {
					toExpel = append(toExpel, id)
				}
			})
			sort.Slice(toExpel, func(i, j int) bool { return toExpel[i] < toExpel[j] })
			for _, id := range toExpel {
				c.Board.MarkExpelled(id, msg.ReasonUnknown)
			}
		}
		c.boardMu.Unlock()
		for _, id := range toExpel {
			c.expel(id)
		}
	}

	flushEvery := msg.Period(c.Opts.Rep.FlushEvery)
	if flushEvery < 1 {
		flushEvery = 1
	}
	if p%flushEvery == 0 {
		for _, oc := range clients {
			client := oc.client
			// Client state is written by the owner's verifier under the
			// node's serialization; flush there too.
			c.RT.Exec(oc.owner, client.Flush)
		}
	}

	sort.Slice(mgrIDs, func(i, j int) bool { return mgrIDs[i] < mgrIDs[j] })
	c.mu.Lock()
	mgrs := make([]*reputation.Manager, 0, len(mgrIDs))
	for _, id := range mgrIDs {
		mgrs = append(mgrs, c.Managers[id])
	}
	c.mu.Unlock()
	for _, m := range mgrs {
		m.Tick(p)
	}
}

// expel removes a node from the running system.
func (c *Cluster) expel(id msg.NodeID) {
	c.mu.Lock()
	if _, done := c.Expelled[id]; done {
		c.mu.Unlock()
		return
	}
	if _, gone := c.Departed[id]; gone {
		c.mu.Unlock()
		return
	}
	c.Expelled[id] = c.RT.Now()
	node := c.Nodes[id]
	c.mu.Unlock()
	c.Collector.OnExpel()
	if c.Opts.ExpelOnDetection {
		c.remove(id, node)
	}
}

// remove takes a node out of the running system: out of the sampling
// population, off the network, stopped.
func (c *Cluster) remove(id msg.NodeID, node *gossip.Node) {
	c.Dir.Expel(id)
	c.RT.SetDown(id, true)
	if node != nil {
		c.RT.Exec(id, node.Stop)
	}
	c.mu.Lock()
	c.pendingRemoved = append(c.pendingRemoved, id)
	c.mu.Unlock()
	// A removal only adds one replacement manager per affected target (the
	// assignment probes over the unchanged registration set, skipping the
	// departed node), so the cheap gains-only rebalance suffices.
	c.scheduleRebalance(false)
}

// StartStream schedules chunk injections at the source (node 0) for the
// given duration.
func (c *Cluster) StartStream(duration time.Duration) {
	total := c.Opts.Stream.ChunksBy(duration)
	source := c.Nodes[0]
	ctx := c.RT.Context(0)
	for i := 0; i < total; i++ {
		ch := msg.ChunkID(i)
		at := c.Opts.Stream.GenTime(ch)
		if at > duration {
			break
		}
		ctx.After(at, func() {
			if c.Content != nil {
				payload, hash := c.Content.Chunk(ch)
				source.InjectChunkData(ch, payload, hash)
			} else {
				source.InjectChunk(ch)
			}
		})
		if p, ok := c.Playouts[0]; ok {
			p.Received(ch, at)
		}
	}
}

// Run advances the cluster to the given time: virtual under the
// discrete-event backend, wall-clock under the live one. It is
// RunContext with a background context — for runs nothing cancels.
func (c *Cluster) Run(until time.Duration) { c.RT.Run(context.Background(), until) }

// RunContext advances the cluster like Run but aborts promptly when ctx is
// cancelled, returning ctx.Err(). After a cancelled advance the cluster is
// still consistent; call Close to tear it down (wall-clock backends cancel
// their pending timers there, so an interrupted run does not wait out the
// rest of its schedule).
func (c *Cluster) RunContext(ctx context.Context, until time.Duration) error {
	return c.RT.Run(ctx, until)
}

// After schedules a harness callback at d from now (audits, churn events,
// mid-run probes), outside any node's serialization.
func (c *Cluster) After(d time.Duration, fn func()) { c.RT.After(d, fn) }

// Close shuts the backend down and waits for in-flight callbacks. Call it
// before reading node state after a live run; it is a no-op under the
// discrete-event backend.
func (c *Cluster) Close() { c.RT.Close() }

// Auditor lazily creates the system's auditor, hosted at the source node
// (audits run sporadically from any node; one auditor keeps the experiments
// deterministic). Its outcomes expel on verdict when ExpelOnDetection is
// set.
func (c *Cluster) Auditor(onOutcome func(core.AuditOutcome)) *core.Auditor {
	if c.auditor != nil {
		return c.auditor
	}
	var sink core.BlameSink
	if c.Board != nil {
		sink = boardSink{c}
	} else {
		client := reputation.NewClient(0, c.repCfg, c.RT.Network(), c.Dir)
		c.mu.Lock()
		c.clients = append(c.clients, ownedClient{owner: 0, client: client})
		c.mu.Unlock()
		sink = client
	}
	sink = countingSink{coll: c.Collector, inner: sink}
	c.auditor = core.NewAuditor(0, c.Opts.Core, c.RT.Context(0), c.RT.Network(), c.root.Derive("auditor"), sink,
		func(out core.AuditOutcome) {
			c.Collector.OnAuditOutcome(out.Responded, !out.Expel)
			if out.Expel {
				c.expelFrom(0, out.Target)
			}
			if onOutcome != nil {
				onOutcome(out)
			}
		})
	return c.auditor
}

// Scores returns every known node's current score: the board score in
// direct mode, or the min-vote over manager copies in message mode. Under
// the live backend call it after Close (or accept slightly stale reads).
func (c *Cluster) Scores() map[msg.NodeID]float64 {
	ids := c.Dir.All()
	out := make(map[msg.NodeID]float64, len(ids))
	if c.Board != nil {
		c.boardMu.Lock()
		for _, id := range ids {
			out[id] = c.Board.Score(id)
		}
		c.boardMu.Unlock()
		return out
	}
	c.mu.Lock()
	mgrByID := make(map[msg.NodeID]*reputation.Manager, len(c.Managers))
	//lint:allow ordered-map-range map-to-map copy; the copy is order-insensitive
	for id, m := range c.Managers {
		mgrByID[id] = m
	}
	c.mu.Unlock()
	for _, target := range ids {
		var copies []float64
		for _, m := range c.Dir.Managers(target, c.Opts.Rep.M) {
			mgr, ok := mgrByID[m]
			if !ok {
				continue
			}
			if s, tracked := mgr.Score(target); tracked {
				copies = append(copies, s)
			}
		}
		score, _ := reputation.MinVoteScore(copies, nil)
		out[target] = score
	}
	return out
}

// Period returns the current score period.
func (c *Cluster) Period() msg.Period {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.period
}

// Handoffs returns how many reputation-manager state transfers membership
// changes have triggered so far.
func (c *Cluster) Handoffs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handoffs
}

// --- churn ---

// ScheduleJoin arranges for a fresh node to join the system at time at. The
// node's id is allocated immediately (and returned); the node itself — with
// its behavior from BehaviorFor, verifier and manager duty — is assembled
// and started when the time comes. Scorekeepers pick it up at the
// then-current period, and in message mode the manager assignment is
// rebalanced with state handoff.
func (c *Cluster) ScheduleJoin(at time.Duration) msg.NodeID {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	c.mu.Unlock()
	c.RT.After(at, func() { c.join(id) })
	return id
}

// ScheduleLeave arranges for id to leave the system voluntarily at time at:
// it stops gossiping, drops off the network and exits the sampling
// population. In message mode its manager duties are handed off.
func (c *Cluster) ScheduleLeave(at time.Duration, id msg.NodeID) {
	c.RT.After(at, func() { c.leave(id) })
}

// join brings a scheduled churn arrival into the running system.
func (c *Cluster) join(id msg.NodeID) {
	c.Dir.Join(id)
	c.buildNode(id)
	if cf := c.Opts.ConditionsFor; cf != nil {
		if cond, ok := cf(id); ok {
			c.RT.SetConditions(id, cond)
		}
	}
	if c.Opts.Chaos != nil {
		// A node joining mid-partition lands on the majority side.
		c.applyChaosConditions(id)
	}
	c.mu.Lock()
	c.Joined[id] = c.RT.Now()
	p := c.period
	node := c.Nodes[id]
	c.mu.Unlock()
	if c.Opts.LiFTinG {
		c.registerScorekeepers(id, p)
	}
	// The node starts inside its own serialization domain.
	c.RT.Exec(id, node.Start)
	// A join grows the registration set, which can reshuffle the manager
	// assignment of every existing target: full rebalance.
	c.scheduleRebalance(true)
}

// leave removes a voluntarily departing node.
func (c *Cluster) leave(id msg.NodeID) {
	c.mu.Lock()
	if _, gone := c.Departed[id]; gone {
		c.mu.Unlock()
		return
	}
	if _, done := c.Expelled[id]; done {
		c.mu.Unlock()
		return
	}
	c.Departed[id] = c.RT.Now()
	node := c.Nodes[id]
	c.mu.Unlock()
	c.remove(id, node)
}

// --- fault plane ---

// startChaos schedules every event of the configured fault plan. All
// scheduling happens up front, in the plan's (sorted, deterministic) order,
// from harness timers — under the sharded engine they fire in the global
// phase, where membership and condition mutations are safe and
// shard-count-invariant.
func (c *Cluster) startChaos() {
	plan := c.Opts.Chaos
	if plan == nil {
		return
	}
	for _, e := range plan.Events {
		ev := e
		c.RT.After(ev.At, func() { c.applyChaosEvent(ev) })
	}
}

// applyChaosEvent performs one fault transition.
func (c *Cluster) applyChaosEvent(ev chaos.Event) {
	c.mu.Lock()
	c.chaosApplied++
	c.mu.Unlock()
	switch ev.Kind {
	case chaos.Crash:
		for _, id := range ev.Nodes {
			c.crash(id)
		}
	case chaos.Restart:
		for _, id := range ev.Nodes {
			c.restart(id)
		}
	case chaos.Partition:
		c.mu.Lock()
		c.partitioned = true
		for _, id := range ev.Nodes {
			c.partMinority[id] = true
		}
		c.mu.Unlock()
		c.applyChaosConditionsAll()
	case chaos.Heal:
		c.mu.Lock()
		c.partitioned = false
		c.partMinority = make(map[msg.NodeID]bool)
		c.mu.Unlock()
		c.applyChaosConditionsAll()
	case chaos.LossBurst:
		c.mu.Lock()
		for _, id := range ev.Nodes {
			c.burstLoss[id] = ev.Loss
		}
		c.mu.Unlock()
		for _, id := range ev.Nodes {
			c.applyChaosConditions(id)
		}
	case chaos.LossHeal:
		c.mu.Lock()
		for _, id := range ev.Nodes {
			delete(c.burstLoss, id)
		}
		c.mu.Unlock()
		for _, id := range ev.Nodes {
			c.applyChaosConditions(id)
		}
	}
}

// chaosConditionsLocked rebuilds node id's effective conditions from its
// base (defaults or ConditionsFor) plus the current fault overlays. Caller
// holds c.mu.
func (c *Cluster) chaosConditionsLocked(id msg.NodeID) net.Conditions {
	cond := c.Opts.NetDefaults
	if cf := c.Opts.ConditionsFor; cf != nil {
		if o, ok := cf(id); ok {
			cond = o
		}
	}
	if c.partitioned {
		if c.partMinority[id] {
			cond.PartitionGroup = 2
		} else {
			cond.PartitionGroup = 1
		}
	}
	if extra, ok := c.burstLoss[id]; ok {
		// The correlated burst stacks on the link's own loss.
		cond.LossIn = 1 - (1-cond.LossIn)*(1-extra)
	}
	if _, gone := c.Expelled[id]; gone {
		cond.Down = true
	}
	if _, gone := c.Departed[id]; gone {
		cond.Down = true
	}
	if c.crashedNow[id] {
		cond.Down = true
	}
	return cond
}

// applyChaosConditions pushes node id's rebuilt conditions to the backend.
func (c *Cluster) applyChaosConditions(id msg.NodeID) {
	c.mu.Lock()
	cond := c.chaosConditionsLocked(id)
	c.mu.Unlock()
	c.RT.SetConditions(id, cond)
}

// applyChaosConditionsAll reapplies conditions for every id ever seen —
// partition transitions change the group of all nodes, including down ones
// (whose Down flag the rebuild preserves).
func (c *Cluster) applyChaosConditionsAll() {
	c.mu.Lock()
	limit := c.nextID
	c.mu.Unlock()
	for id := msg.NodeID(0); id < limit; id++ {
		c.applyChaosConditions(id)
	}
}

// crash takes node id down hard: off the membership and the network, its
// process state (gossip history, pending blames, its manager replica's
// clock) frozen. The node's own score lives on its remote managers and is
// untouched. No-op for nodes already gone.
func (c *Cluster) crash(id msg.NodeID) {
	c.mu.Lock()
	if _, gone := c.Expelled[id]; gone {
		c.mu.Unlock()
		return
	}
	if _, gone := c.Departed[id]; gone {
		c.mu.Unlock()
		return
	}
	if c.crashedNow[id] {
		c.mu.Unlock()
		return
	}
	c.crashedNow[id] = true
	c.Crashed[id] = c.RT.Now()
	node := c.Nodes[id]
	// The crashed process's unflushed blames die with it.
	kept := c.clients[:0]
	for _, oc := range c.clients {
		if oc.owner != id {
			kept = append(kept, oc)
		}
	}
	c.clients = kept
	c.mu.Unlock()
	c.remove(id, node)
}

// restart brings a crashed node back with fresh protocol state, as a churn
// join of the same id: its managers re-track it at the current period (a
// no-op where the entry survived — Track does not reset tracked state), and
// the full rebalance re-adopts the most pessimistic surviving replica onto
// its fresh local manager. A node expelled or departed while down stays out.
func (c *Cluster) restart(id msg.NodeID) {
	c.mu.Lock()
	if !c.crashedNow[id] {
		c.mu.Unlock()
		return
	}
	if _, gone := c.Expelled[id]; gone {
		c.mu.Unlock()
		return
	}
	if _, gone := c.Departed[id]; gone {
		c.mu.Unlock()
		return
	}
	delete(c.crashedNow, id)
	c.Restarted[id] = c.RT.Now()
	c.mu.Unlock()

	c.Dir.Join(id)
	c.buildNode(id)
	if cf := c.Opts.ConditionsFor; cf != nil {
		if cond, ok := cf(id); ok {
			c.RT.SetConditions(id, cond)
		}
	}
	// Rebuilding conditions clears Down and restores any standing overlays
	// (partition side, loss burst) the node is still subject to.
	c.applyChaosConditions(id)

	c.mu.Lock()
	p := c.period
	node := c.Nodes[id]
	c.mu.Unlock()
	if c.Opts.LiFTinG {
		c.registerScorekeepers(id, p)
	}
	c.RT.Exec(id, node.Start)
	c.scheduleRebalance(true)
}

// ChaosApplied returns how many fault-plan events have fired so far.
func (c *Cluster) ChaosApplied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chaosApplied
}

// MaxTrackedPerManager returns the largest per-manager tracked-target count
// (message mode; 0 in direct mode). The soak invariants bound it by the
// total population ever seen.
func (c *Cluster) MaxTrackedPerManager() int {
	c.mu.Lock()
	mgrs := make([]*reputation.Manager, 0, len(c.Managers))
	//lint:allow ordered-map-range max reduction over the collected managers commutes
	for _, m := range c.Managers {
		mgrs = append(mgrs, m)
	}
	c.mu.Unlock()
	most := 0
	for _, m := range mgrs {
		if n := m.TrackedCount(); n > most {
			most = n
		}
	}
	return most
}

// scheduleRebalance queues a manager-assignment rebalance (message mode
// only). It runs as a harness event so no manager locks are held when it
// starts, and coalesces bursts of membership changes (a full request
// upgrades a pending cheap one).
func (c *Cluster) scheduleRebalance(full bool) {
	if c.Opts.BlameMode != BlameMessages || !c.Opts.LiFTinG {
		return
	}
	c.mu.Lock()
	c.rebalanceFull = c.rebalanceFull || full
	if c.rebalance {
		c.mu.Unlock()
		return
	}
	c.rebalance = true
	c.mu.Unlock()
	c.RT.After(0, c.rebalanceManagers)
}

// rebalanceManagers recomputes manager assignments after a membership
// change and performs the state handoff: a manager that became responsible
// for a target adopts the most pessimistic replica (consistent with
// min-vote reads), and managers no longer responsible drop their copy.
// Deterministic under the simulator: targets in id order, candidate
// replicas in id order.
//
// The pass is incremental. The directory's probe assignment only changes a
// target's manager set when one of the recorded managers left (a removal)
// or the registration set grew (a join), so a removal-triggered rebalance
// visits only the departed nodes' targets — found through the reverse
// index — and a join-triggered one walks every target but short-circuits
// the unchanged assignments. Handoff candidates are the union of the old
// and new sets: the old set is by construction exactly the target's live
// tracker set (registration seeds it, every rebalance re-establishes it),
// so no live replica escapes the pessimism scan. Replicas frozen on
// long-expelled managers are not candidates — they are equally invisible
// to min-vote reads, which only consult the current assignment.
func (c *Cluster) rebalanceManagers() {
	c.mu.Lock()
	c.rebalance = false
	full := c.rebalanceFull
	c.rebalanceFull = false
	removed := c.pendingRemoved
	c.pendingRemoved = nil
	p := c.period
	mgrByID := make(map[msg.NodeID]*reputation.Manager, len(c.Managers))
	//lint:allow ordered-map-range map-to-map copy; the copy is order-insensitive
	for id, m := range c.Managers {
		mgrByID[id] = m
	}
	var targets []msg.NodeID
	if full {
		targets = c.Dir.All()
	} else {
		seen := make(map[msg.NodeID]bool)
		for _, r := range removed {
			//lint:allow ordered-map-range collect-then-sort: targets are deduped then sorted below
			for t := range c.mgrTargets[r] {
				if !seen[t] {
					seen[t] = true
					targets = append(targets, t)
				}
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	}
	c.mu.Unlock()

	// A replica's pessimism is its per-period blame rate — the score is
	// comp − blame/r, so the lowest score is the highest rate, not the
	// largest raw blame (a freshly joined entry with little blame but tiny
	// r can be the most damning copy). Expulsion verdicts trump rates.
	rate := func(e reputation.Entry) float64 {
		r := int(p) - int(e.JoinPeriod)
		if r < 1 {
			r = 1
		}
		return e.TotalBlame / float64(r)
	}
	worse := func(a, b reputation.Entry) bool { // is a more pessimistic than b?
		if a.Expelled != b.Expelled {
			return a.Expelled
		}
		return rate(a) > rate(b)
	}
	transfers := 0
	for _, target := range targets {
		newSet := c.Dir.Managers(target, c.Opts.Rep.M)
		c.mu.Lock()
		oldSet := c.lastMgrs[target]
		if slices.Equal(oldSet, newSet) {
			c.mu.Unlock()
			continue
		}
		c.setAssignmentLocked(target, newSet)
		c.mu.Unlock()
		cand := make([]msg.NodeID, 0, len(oldSet)+len(newSet))
		cand = append(cand, oldSet...)
		for _, m := range newSet {
			if !slices.Contains(oldSet, m) {
				cand = append(cand, m)
			}
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
		// The most pessimistic replica seeds (or upgrades) the responsible
		// managers, so the min-vote score cannot jump up through a handoff.
		var best reputation.Entry
		bestOK := false
		for _, id := range cand {
			mgr, ok := mgrByID[id]
			if !ok {
				continue
			}
			if e, tracked := mgr.Snapshot(target); tracked {
				if !bestOK || worse(e, best) {
					best, bestOK = e, true
				}
			}
		}
		for _, m := range newSet {
			mgr, ok := mgrByID[m]
			if !ok {
				continue
			}
			if e, tracked := mgr.Snapshot(target); tracked {
				// Already tracking, but perhaps only a near-empty entry from
				// an in-flight blame: adopt the historical copy if it is
				// more pessimistic, or the outgoing managers would discard
				// the target's record.
				if full && bestOK && worse(best, e) {
					mgr.Adopt(target, best, p)
					transfers++
				}
				continue
			}
			if bestOK {
				mgr.Adopt(target, best, p)
				transfers++
			} else {
				mgr.Track(target, p)
			}
		}
		if !full {
			// A removal never strips an alive manager of responsibility:
			// gains only, no drops.
			continue
		}
		for _, id := range cand {
			if slices.Contains(newSet, id) {
				continue
			}
			mgr, ok := mgrByID[id]
			if !ok {
				continue
			}
			if _, tracked := mgr.Snapshot(target); tracked {
				mgr.Drop(target)
			}
		}
	}
	c.mu.Lock()
	c.handoffs += transfers
	c.mu.Unlock()
}
