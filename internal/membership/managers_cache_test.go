package membership

import (
	"reflect"
	"sync"
	"testing"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// managersFresh recomputes the assignment from scratch, bypassing the epoch
// cache — the reference the cache is tested against.
func (d *Directory) managersFresh(target msg.NodeID, m int) []msg.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.managersLocked(target, m)
}

// TestManagersCachedMatchesFreshUnderChurn is the cache-correctness property
// test: across a random Join/Expel sequence, the cached result must be
// bit-identical to a from-scratch computation at every epoch.
func TestManagersCachedMatchesFreshUnderChurn(t *testing.T) {
	d := Sequential(80)
	r := rng.New(99).Derive("churn")
	next := msg.NodeID(80)
	check := func() {
		for _, m := range []int{1, 5, 25} {
			for _, target := range d.All() {
				cached := d.Managers(target, m)
				fresh := d.managersFresh(target, m)
				if !reflect.DeepEqual(cached, fresh) {
					t.Fatalf("epoch %d: Managers(%d, %d) cached %v != fresh %v",
						d.Epoch(), target, m, cached, fresh)
				}
			}
		}
	}
	check()
	for step := 0; step < 60; step++ {
		switch r.IntN(3) {
		case 0: // brand-new join
			d.Join(next)
			next++
		case 1: // revival of a possibly-departed node
			d.Join(d.All()[r.IntN(d.N())])
		default: // departure
			d.Expel(d.All()[r.IntN(d.N())])
		}
		check()
	}
}

// TestManagersStableAcrossExpel pins the assignment-stability property churn
// relies on: expelling a node never reassigns the surviving managers of any
// target — the probe sequence runs over the unchanged registration set, so
// the new set is the old set minus the departed node (order preserved) plus
// replacements appended at the tail.
func TestManagersStableAcrossExpel(t *testing.T) {
	d := Sequential(200)
	const m = 25
	before := make(map[msg.NodeID][]msg.NodeID)
	for _, target := range d.All() {
		before[target] = d.Managers(target, m)
	}
	victim := d.Managers(7, m)[3] // a manager of target 7, so both cases occur
	d.Expel(victim)
	for _, target := range d.All() {
		after := d.Managers(target, m)
		kept := make([]msg.NodeID, 0, m)
		for _, id := range before[target] {
			if id != victim {
				kept = append(kept, id)
			}
		}
		if len(after) < len(kept) {
			t.Fatalf("target %d lost managers beyond the expelled one: %v -> %v", target, before[target], after)
		}
		if !reflect.DeepEqual(after[:len(kept)], kept) {
			t.Fatalf("target %d: surviving managers reshuffled: %v -> %v", target, kept, after[:len(kept)])
		}
		for _, id := range after {
			if id == victim {
				t.Fatalf("target %d still assigned the expelled manager %d", target, victim)
			}
		}
	}
}

// TestManagersCacheInvalidatedOnJoin ensures a stale cache entry never
// survives a membership change: a join grows the registration set, which can
// reshuffle assignments, and the post-join result must match a fresh
// computation (not the pre-join cached one).
func TestManagersCacheInvalidatedOnJoin(t *testing.T) {
	d := Sequential(50)
	stale := d.Managers(9, 10) // populate the cache
	d.Join(500)
	got := d.Managers(9, 10)
	want := d.managersFresh(9, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-join Managers = %v, want fresh %v (stale: %v)", got, want, stale)
	}
}

// TestManagersHitAllocsZero is the hot-path guarantee the 10k-node scale
// workload rests on: a cache hit performs no allocation.
func TestManagersHitAllocsZero(t *testing.T) {
	d := Sequential(1000)
	d.Managers(42, 25) // warm
	avg := testing.AllocsPerRun(100, func() {
		d.Managers(42, 25)
	})
	if avg != 0 {
		t.Fatalf("cache hit allocates %.1f/op, want 0", avg)
	}
}

// TestManagersConcurrentWithChurn drives lookups from several goroutines
// while the membership shifts — the shape the live and UDP backends produce.
// Run with -race to check the cache's locking.
func TestManagersConcurrentWithChurn(t *testing.T) {
	d := Sequential(100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				out := d.Managers(msg.NodeID(i%100), 10)
				for _, id := range out {
					if id == msg.NodeID(i%100) {
						t.Error("target assigned as its own manager")
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			d.Expel(msg.NodeID(i % 100))
			d.Join(msg.NodeID(i % 100))
		}
	}()
	wg.Wait()
}

// BenchmarkManagers measures the steady-state manager lookup at 10k nodes —
// the per-blame/per-read/per-rebalance hot path. All lookups after the first
// epoch-warming pass are cache hits: 0 allocs/op.
func BenchmarkManagers(b *testing.B) {
	const n, m = 10000, 25
	d := Sequential(n)
	for i := 0; i < n; i++ {
		d.Managers(msg.NodeID(i), m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Managers(msg.NodeID(i%n), m)
	}
}

// BenchmarkManagersUncached measures the from-scratch computation the cache
// amortizes (the pre-cache cost of every lookup).
func BenchmarkManagersUncached(b *testing.B) {
	const n, m = 10000, 25
	d := Sequential(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.managersFresh(msg.NodeID(i%n), m)
	}
}
