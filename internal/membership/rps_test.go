package membership

import (
	"math"
	"testing"

	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/stats"
)

func newRPSNet(t *testing.T, n int) *RPSNetwork {
	t.Helper()
	return NewRPSNetwork(n, 16, 8, rng.New(3))
}

func TestRPSInvalidSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid sizes did not panic")
		}
	}()
	NewRPS(1, 4, 8, nil, rng.New(1))
}

func TestRPSViewNeverContainsSelfOrDuplicates(t *testing.T) {
	net := newRPSNet(t, 60)
	for round := 0; round < 50; round++ {
		net.Round()
		for id, node := range net.nodes {
			seen := map[msg.NodeID]bool{}
			for _, v := range node.ViewIDs() {
				if v == id {
					t.Fatalf("round %d: node %d has itself in view", round, id)
				}
				if seen[v] {
					t.Fatalf("round %d: node %d has duplicate %d", round, id, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestRPSViewsFill(t *testing.T) {
	net := newRPSNet(t, 60)
	for round := 0; round < 30; round++ {
		net.Round()
	}
	for id, node := range net.nodes {
		if len(node.ViewIDs()) < 12 {
			t.Fatalf("node %d view has only %d entries after 30 rounds", id, len(node.ViewIDs()))
		}
	}
}

func TestRPSMixesBeyondRingNeighbours(t *testing.T) {
	// Bootstrap is a ring; after shuffling, views must reach far nodes.
	const n = 100
	net := newRPSNet(t, n)
	for round := 0; round < 40; round++ {
		net.Round()
	}
	farCount := 0
	total := 0
	for id, node := range net.nodes {
		for _, v := range node.ViewIDs() {
			total++
			d := int(v) - int(id)
			if d < 0 {
				d = -d
			}
			if d > n/2 {
				d = n - d
			}
			if d > 10 {
				farCount++
			}
		}
	}
	if frac := float64(farCount) / float64(total); frac < 0.5 {
		t.Fatalf("views still ring-local after mixing: only %v far entries", frac)
	}
}

func TestRPSSamplingApproximatelyUniform(t *testing.T) {
	// Sampling one partner per round from a node's view, over many rounds,
	// must hit the whole population roughly uniformly — the property the
	// gossip protocol needs from its peer sampling service (§2).
	const n = 80
	net := newRPSNet(t, n)
	for round := 0; round < 30; round++ {
		net.Round()
	}
	counts := make([]int, n)
	const rounds = 4000
	node := net.Node(0)
	for i := 0; i < rounds; i++ {
		net.Round()
		for _, p := range node.Sample(2) {
			counts[p]++
		}
	}
	if counts[0] != 0 {
		t.Fatal("node sampled itself")
	}
	chi := stats.ChiSquareUniform(counts[1:])
	// 78 degrees of freedom; 1e-4 critical value ≈ 135. The shuffle is not
	// a perfect sampler (that is exactly why γ must tolerate deviation,
	// §5.3), so the bar is loose but still two-sided meaningful.
	if chi > 220 {
		t.Fatalf("RPS sampling chi-square = %v, far from uniform", chi)
	}
}

func TestRPSHistoryEntropyPassesGamma(t *testing.T) {
	// The paper's γ must tolerate the imperfection of peer sampling
	// (§5.3). Build nh·f = 600-entry histories by sampling from RPS views
	// and check their entropy against a γ scaled for this population
	// (n = 200 → max ≈ log2(min(600, 199)) = 7.6; the paper's 8.95 assumes
	// n = 10,000).
	const n = 200
	net := newRPSNet(t, n)
	for round := 0; round < 30; round++ {
		net.Round()
	}
	node := net.Node(5)
	hist := stats.NewMultiset[msg.NodeID]()
	for len(hist.Elements()) < 600 {
		net.Round()
		for _, p := range node.Sample(12) {
			hist.Add(p)
		}
	}
	h := hist.Entropy()
	maxH := math.Log2(float64(n - 1))
	if h < 0.93*maxH {
		t.Fatalf("RPS-driven history entropy %v too far below max %v — γ would wrongly expel", h, maxH)
	}
}

func TestRPSRemoveNodeHealsViews(t *testing.T) {
	net := newRPSNet(t, 40)
	for round := 0; round < 20; round++ {
		net.Round()
	}
	net.Remove(7)
	for round := 0; round < 60; round++ {
		net.Round()
	}
	for id, node := range net.nodes {
		for _, v := range node.ViewIDs() {
			if v == 7 {
				t.Fatalf("node %d still references removed node after 60 rounds", id)
			}
		}
	}
}

func TestRPSDeterministic(t *testing.T) {
	runOnce := func() []msg.NodeID {
		net := NewRPSNetwork(30, 8, 4, rng.New(9))
		for round := 0; round < 25; round++ {
			net.Round()
		}
		return net.Node(3).ViewIDs()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("runs diverged in view size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical runs produced different views")
		}
	}
}
