package membership

import (
	"fmt"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// RPS is a Cyclon-style random peer sampling instance: each node keeps a
// small partial view and periodically shuffles a random slice of it with
// its oldest neighbour. After a few rounds the view is a fresh uniform
// sample of the live population, which is the service the paper assumes as
// an alternative to full membership (§2, [13, 18]).
//
// The shuffle exchange is modelled as a direct state swap between the two
// instances (the dissemination and verification layers are the subject of
// this reproduction; the sampling layer is a substrate). RPSNetwork drives
// the rounds.
type RPS struct {
	self       msg.NodeID
	viewSize   int
	shuffleLen int
	rand       *rng.Stream
	view       []viewEntry
}

type viewEntry struct {
	id  msg.NodeID
	age int
}

// NewRPS creates an instance with the given view size and shuffle length,
// bootstrapped from seed peers (typically a few contacts).
func NewRPS(self msg.NodeID, viewSize, shuffleLen int, seedPeers []msg.NodeID, rand *rng.Stream) *RPS {
	if viewSize <= 0 || shuffleLen <= 0 || shuffleLen > viewSize {
		panic(fmt.Sprintf("membership: invalid RPS sizes view=%d shuffle=%d", viewSize, shuffleLen))
	}
	r := &RPS{self: self, viewSize: viewSize, shuffleLen: shuffleLen, rand: rand}
	for _, p := range seedPeers {
		if p != self && len(r.view) < viewSize {
			r.view = append(r.view, viewEntry{id: p})
		}
	}
	return r
}

// Self returns the owner's id.
func (r *RPS) Self() msg.NodeID { return r.self }

// ViewIDs returns the current view (copy).
func (r *RPS) ViewIDs() []msg.NodeID {
	out := make([]msg.NodeID, len(r.view))
	for i, e := range r.view {
		out[i] = e.id
	}
	return out
}

// Sample returns up to k distinct peers drawn from the current view. The
// freshness guarantees of the shuffle make repeated samples approximate
// uniform sampling over the population.
func (r *RPS) Sample(k int) []msg.NodeID {
	if k > len(r.view) {
		k = len(r.view)
	}
	if k <= 0 {
		return nil
	}
	idx := r.rand.SampleK(len(r.view), k)
	out := make([]msg.NodeID, 0, k)
	for _, i := range idx {
		out = append(out, r.view[i].id)
	}
	return out
}

// oldest returns the index of the oldest view entry.
func (r *RPS) oldest() int {
	best := 0
	for i, e := range r.view {
		if e.age > r.view[best].age {
			best = i
		}
	}
	return best
}

// shuffleSubset picks l view indices, always including must (or -1 for
// none).
func (r *RPS) shuffleSubset(l, must int) []int {
	idx := r.rand.SampleK(len(r.view), min(l, len(r.view)))
	if must >= 0 {
		found := false
		for _, i := range idx {
			if i == must {
				found = true
				break
			}
		}
		if !found {
			idx[0] = must
		}
	}
	return idx
}

// integrate merges received entries into the view, dropping entries that
// were sent away first, then duplicates, then the oldest.
func (r *RPS) integrate(received []viewEntry, sentAway map[msg.NodeID]bool) {
	have := make(map[msg.NodeID]int, len(r.view))
	for i, e := range r.view {
		have[e.id] = i
	}
	for _, in := range received {
		if in.id == r.self {
			continue
		}
		if j, dup := have[in.id]; dup {
			if in.age < r.view[j].age {
				r.view[j].age = in.age
			}
			continue
		}
		if len(r.view) < r.viewSize {
			r.view = append(r.view, in)
			have[in.id] = len(r.view) - 1
			continue
		}
		// Replace an entry that was just shuffled away, else the oldest.
		replaced := false
		for j, e := range r.view {
			if sentAway[e.id] {
				delete(have, e.id)
				delete(sentAway, e.id)
				r.view[j] = in
				have[in.id] = j
				replaced = true
				break
			}
		}
		if !replaced {
			j := r.oldest()
			delete(have, r.view[j].id)
			r.view[j] = in
			have[in.id] = j
		}
	}
}

// RPSNetwork drives the shuffle rounds over a set of instances.
type RPSNetwork struct {
	nodes map[msg.NodeID]*RPS
	order []msg.NodeID
}

// NewRPSNetwork builds n instances with a ring bootstrap (each node knows
// its few successors), the standard worst-case start for peer sampling.
func NewRPSNetwork(n, viewSize, shuffleLen int, root *rng.Stream) *RPSNetwork {
	net := &RPSNetwork{nodes: make(map[msg.NodeID]*RPS, n)}
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		seeds := make([]msg.NodeID, 0, 3)
		for d := 1; d <= 3; d++ {
			seeds = append(seeds, msg.NodeID((i+d)%n))
		}
		net.nodes[id] = NewRPS(id, viewSize, shuffleLen, seeds, root.ForNode(uint32(i)))
		net.order = append(net.order, id)
	}
	return net
}

// Node returns the instance for id.
func (n *RPSNetwork) Node(id msg.NodeID) *RPS { return n.nodes[id] }

// Round performs one shuffle per node, in id order (deterministic).
func (n *RPSNetwork) Round() {
	for _, id := range n.order {
		a := n.nodes[id]
		if len(a.view) == 0 {
			continue
		}
		for i := range a.view {
			a.view[i].age++
		}
		oldIdx := a.oldest()
		peer := a.view[oldIdx].id
		b, ok := n.nodes[peer]
		if !ok {
			// Departed peer: drop it.
			a.view = append(a.view[:oldIdx], a.view[oldIdx+1:]...)
			continue
		}

		// A sends a subset including a fresh self-entry, removing the
		// oldest entry (the shuffle partner).
		aIdx := a.shuffleSubset(a.shuffleLen-1, oldIdx)
		aSent := make([]viewEntry, 0, len(aIdx)+1)
		aAway := make(map[msg.NodeID]bool, len(aIdx))
		for _, i := range aIdx {
			aSent = append(aSent, a.view[i])
			aAway[a.view[i].id] = true
		}
		aSent = append(aSent, viewEntry{id: a.self, age: 0})

		bIdx := b.shuffleSubset(b.shuffleLen, -1)
		bSent := make([]viewEntry, 0, len(bIdx))
		bAway := make(map[msg.NodeID]bool, len(bIdx))
		for _, i := range bIdx {
			bSent = append(bSent, b.view[i])
			bAway[b.view[i].id] = true
		}

		a.integrate(bSent, aAway)
		b.integrate(aSent, bAway)
	}
}

// Remove deletes a node (crash/expulsion); stale references age out of the
// other views through the shuffle.
func (n *RPSNetwork) Remove(id msg.NodeID) {
	delete(n.nodes, id)
	for i, o := range n.order {
		if o == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
}
