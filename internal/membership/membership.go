// Package membership implements the full-membership directory and uniform
// random peer sampling the paper assumes (§2): every node can pick a uniform
// random subset of the live nodes. It also provides the deterministic
// manager assignment used by the Alliatrust-like reputation substrate
// (§5.1): every node is assigned M pseudo-random managers.
package membership

import (
	"fmt"
	"sync"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// Directory is the full-membership view of the system. Nodes that are
// expelled (or depart) are removed from the sampling population but remain
// known, so manager assignment stays stable; nodes may also join mid-run
// (churn).
//
// Directory is safe for concurrent use: the live runtime samples from many
// node goroutines while churn events mutate the view. Under the
// single-threaded simulator the lock is uncontended.
type Directory struct {
	mu      sync.RWMutex
	all     []msg.NodeID
	known   map[msg.NodeID]bool
	alive   []msg.NodeID
	aliveAt map[msg.NodeID]int // index into alive, for O(1) removal

	// epoch counts membership changes (Join/Expel that actually changed the
	// view). The manager-assignment cache below is valid for exactly one
	// epoch: Managers is the hot path of every blame flush, score read and
	// rebalance, and at 10k nodes recomputing the probe sequence (plus its
	// dedup map) on every call dominated those paths.
	epoch      uint64
	mgrCache   map[mgrKey][]msg.NodeID
	cacheEpoch uint64
}

// mgrKey indexes the manager cache: the assignment depends on the target and
// the requested set size only (given the membership view of one epoch).
type mgrKey struct {
	target msg.NodeID
	m      int
}

// NewDirectory creates a directory over the given node ids, all alive.
// It panics on duplicate ids.
func NewDirectory(ids []msg.NodeID) *Directory {
	d := &Directory{
		all:      make([]msg.NodeID, len(ids)),
		known:    make(map[msg.NodeID]bool, len(ids)),
		alive:    make([]msg.NodeID, len(ids)),
		aliveAt:  make(map[msg.NodeID]int, len(ids)),
		mgrCache: make(map[mgrKey][]msg.NodeID),
	}
	copy(d.all, ids)
	copy(d.alive, ids)
	for i, id := range ids {
		if d.known[id] {
			panic(fmt.Sprintf("membership: duplicate node id %d", id))
		}
		d.known[id] = true
		d.aliveAt[id] = i
	}
	return d
}

// Sequential returns a directory over ids 0..n-1.
func Sequential(n int) *Directory {
	ids := make([]msg.NodeID, n)
	for i := range ids {
		ids[i] = msg.NodeID(i)
	}
	return NewDirectory(ids)
}

// N returns the total number of nodes ever registered.
func (d *Directory) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.all)
}

// NAlive returns the number of live (non-expelled, non-departed) nodes.
func (d *Directory) NAlive() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.alive)
}

// All returns a copy of all node ids ever registered, in registration order.
func (d *Directory) All() []msg.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]msg.NodeID, len(d.all))
	copy(out, d.all)
	return out
}

// Alive reports whether id is currently live.
func (d *Directory) Alive(id msg.NodeID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.aliveAt[id]
	return ok
}

// Join adds id to the directory as a live node: a fresh registration for a
// new id, a revival for a previously departed one. It reports whether the
// membership changed (joining an already-live node is a no-op).
func (d *Directory) Join(id msg.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, live := d.aliveAt[id]; live {
		return false
	}
	if !d.known[id] {
		d.known[id] = true
		d.all = append(d.all, id)
	}
	d.aliveAt[id] = len(d.alive)
	d.alive = append(d.alive, id)
	d.epoch++
	return true
}

// Expel removes id from the sampling population (expulsion or voluntary
// departure). It reports whether the node was live. Expelling is idempotent.
func (d *Directory) Expel(id msg.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	i, ok := d.aliveAt[id]
	if !ok {
		return false
	}
	last := len(d.alive) - 1
	moved := d.alive[last]
	d.alive[i] = moved
	d.aliveAt[moved] = i
	d.alive = d.alive[:last]
	delete(d.aliveAt, id)
	d.epoch++
	return true
}

// Epoch returns the membership epoch: a counter of effective Join/Expel
// events. Two calls observing the same epoch observed the same view.
func (d *Directory) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// Sample returns k distinct live nodes chosen uniformly at random, never
// including self. If fewer than k candidates exist, all of them are
// returned. The result order is random.
func (d *Directory) Sample(s *rng.Stream, k int, self msg.NodeID) []msg.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	candidates := len(d.alive)
	if _, selfAlive := d.aliveAt[self]; selfAlive {
		candidates--
	}
	if k > candidates {
		k = candidates
	}
	if k <= 0 {
		return nil
	}
	out := make([]msg.NodeID, 0, k)
	// Floyd's algorithm over the alive slice, skipping self by re-drawing:
	// rejection is cheap because self occupies a single slot.
	seen := make(map[int]struct{}, k+1)
	if i, ok := d.aliveAt[self]; ok {
		seen[i] = struct{}{}
	}
	n := len(d.alive)
	for len(out) < k {
		i := s.IntN(n)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, d.alive[i])
	}
	return out
}

// Managers returns the M managers of target: a deterministic pseudo-random
// set of live nodes derived by hashing the target id, excluding the target
// itself. Every node with the same membership view computes the same
// managers without coordination (§5.1). Departed nodes are skipped, so a
// manager's duties migrate when it leaves — the caller performs the state
// handoff.
//
// Results are cached per membership epoch: a cache hit takes a read lock and
// a map probe, no allocation. The returned slice is shared — callers must
// treat it as read-only (every caller only iterates it).
func (d *Directory) Managers(target msg.NodeID, m int) []msg.NodeID {
	key := mgrKey{target: target, m: m}
	d.mu.RLock()
	if d.cacheEpoch == d.epoch {
		if out, ok := d.mgrCache[key]; ok {
			d.mu.RUnlock()
			return out
		}
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cacheEpoch != d.epoch {
		clear(d.mgrCache)
		d.cacheEpoch = d.epoch
	}
	if out, ok := d.mgrCache[key]; ok {
		return out
	}
	out := d.managersLocked(target, m)
	d.mgrCache[key] = out
	return out
}

// FNV-1a parameters (identical to hash/fnv's 64-bit variant, inlined so a
// manager-assignment probe allocates no hasher).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// managerHash is FNV-1a over the big-endian (target, salt) pair —
// bit-identical to the hash/fnv code it replaced, so assignments (and every
// seeded experiment) are unchanged.
func managerHash(target msg.NodeID, salt uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range [8]byte{
		byte(target >> 24), byte(target >> 16), byte(target >> 8), byte(target),
		byte(salt >> 24), byte(salt >> 16), byte(salt >> 8), byte(salt),
	} {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// managersLocked computes the assignment from scratch. Callers hold d.mu.
func (d *Directory) managersLocked(target msg.NodeID, m int) []msg.NodeID {
	n := len(d.all)
	if n <= 1 {
		return nil
	}
	alive := len(d.alive)
	if _, selfAlive := d.aliveAt[target]; selfAlive {
		alive--
	}
	if m > alive {
		m = alive
	}
	if m <= 0 {
		return nil
	}
	out := make([]msg.NodeID, 0, m)
	used := map[msg.NodeID]struct{}{target: {}}
	for salt := uint32(0); len(out) < m; salt++ {
		id := d.all[managerHash(target, salt)%uint64(n)]
		if _, dup := used[id]; dup {
			continue
		}
		if _, live := d.aliveAt[id]; !live {
			used[id] = struct{}{}
			continue
		}
		used[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
