// Package membership implements the full-membership directory and uniform
// random peer sampling the paper assumes (§2): every node can pick a uniform
// random subset of the live nodes. It also provides the deterministic
// manager assignment used by the Alliatrust-like reputation substrate
// (§5.1): every node is assigned M pseudo-random managers.
package membership

import (
	"fmt"
	"hash/fnv"
	"sync"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// Directory is the full-membership view of the system. Nodes that are
// expelled (or depart) are removed from the sampling population but remain
// known, so manager assignment stays stable; nodes may also join mid-run
// (churn).
//
// Directory is safe for concurrent use: the live runtime samples from many
// node goroutines while churn events mutate the view. Under the
// single-threaded simulator the lock is uncontended.
type Directory struct {
	mu      sync.RWMutex
	all     []msg.NodeID
	known   map[msg.NodeID]bool
	alive   []msg.NodeID
	aliveAt map[msg.NodeID]int // index into alive, for O(1) removal
}

// NewDirectory creates a directory over the given node ids, all alive.
// It panics on duplicate ids.
func NewDirectory(ids []msg.NodeID) *Directory {
	d := &Directory{
		all:     make([]msg.NodeID, len(ids)),
		known:   make(map[msg.NodeID]bool, len(ids)),
		alive:   make([]msg.NodeID, len(ids)),
		aliveAt: make(map[msg.NodeID]int, len(ids)),
	}
	copy(d.all, ids)
	copy(d.alive, ids)
	for i, id := range ids {
		if d.known[id] {
			panic(fmt.Sprintf("membership: duplicate node id %d", id))
		}
		d.known[id] = true
		d.aliveAt[id] = i
	}
	return d
}

// Sequential returns a directory over ids 0..n-1.
func Sequential(n int) *Directory {
	ids := make([]msg.NodeID, n)
	for i := range ids {
		ids[i] = msg.NodeID(i)
	}
	return NewDirectory(ids)
}

// N returns the total number of nodes ever registered.
func (d *Directory) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.all)
}

// NAlive returns the number of live (non-expelled, non-departed) nodes.
func (d *Directory) NAlive() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.alive)
}

// All returns a copy of all node ids ever registered, in registration order.
func (d *Directory) All() []msg.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]msg.NodeID, len(d.all))
	copy(out, d.all)
	return out
}

// Alive reports whether id is currently live.
func (d *Directory) Alive(id msg.NodeID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.aliveAt[id]
	return ok
}

// Join adds id to the directory as a live node: a fresh registration for a
// new id, a revival for a previously departed one. It reports whether the
// membership changed (joining an already-live node is a no-op).
func (d *Directory) Join(id msg.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, live := d.aliveAt[id]; live {
		return false
	}
	if !d.known[id] {
		d.known[id] = true
		d.all = append(d.all, id)
	}
	d.aliveAt[id] = len(d.alive)
	d.alive = append(d.alive, id)
	return true
}

// Expel removes id from the sampling population (expulsion or voluntary
// departure). It reports whether the node was live. Expelling is idempotent.
func (d *Directory) Expel(id msg.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	i, ok := d.aliveAt[id]
	if !ok {
		return false
	}
	last := len(d.alive) - 1
	moved := d.alive[last]
	d.alive[i] = moved
	d.aliveAt[moved] = i
	d.alive = d.alive[:last]
	delete(d.aliveAt, id)
	return true
}

// Sample returns k distinct live nodes chosen uniformly at random, never
// including self. If fewer than k candidates exist, all of them are
// returned. The result order is random.
func (d *Directory) Sample(s *rng.Stream, k int, self msg.NodeID) []msg.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	candidates := len(d.alive)
	if _, selfAlive := d.aliveAt[self]; selfAlive {
		candidates--
	}
	if k > candidates {
		k = candidates
	}
	if k <= 0 {
		return nil
	}
	out := make([]msg.NodeID, 0, k)
	// Floyd's algorithm over the alive slice, skipping self by re-drawing:
	// rejection is cheap because self occupies a single slot.
	seen := make(map[int]struct{}, k+1)
	if i, ok := d.aliveAt[self]; ok {
		seen[i] = struct{}{}
	}
	n := len(d.alive)
	for len(out) < k {
		i := s.IntN(n)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, d.alive[i])
	}
	return out
}

// Managers returns the M managers of target: a deterministic pseudo-random
// set of live nodes derived by hashing the target id, excluding the target
// itself. Every node with the same membership view computes the same
// managers without coordination (§5.1). Departed nodes are skipped, so a
// manager's duties migrate when it leaves — the caller performs the state
// handoff.
func (d *Directory) Managers(target msg.NodeID, m int) []msg.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.all)
	if n <= 1 {
		return nil
	}
	alive := len(d.alive)
	if _, selfAlive := d.aliveAt[target]; selfAlive {
		alive--
	}
	if m > alive {
		m = alive
	}
	if m <= 0 {
		return nil
	}
	out := make([]msg.NodeID, 0, m)
	used := map[msg.NodeID]struct{}{target: {}}
	for salt := uint32(0); len(out) < m; salt++ {
		h := fnv.New64a()
		var buf [8]byte
		buf[0] = byte(target >> 24)
		buf[1] = byte(target >> 16)
		buf[2] = byte(target >> 8)
		buf[3] = byte(target)
		buf[4] = byte(salt >> 24)
		buf[5] = byte(salt >> 16)
		buf[6] = byte(salt >> 8)
		buf[7] = byte(salt)
		_, _ = h.Write(buf[:])
		id := d.all[h.Sum64()%uint64(n)]
		if _, dup := used[id]; dup {
			continue
		}
		if _, live := d.aliveAt[id]; !live {
			used[id] = struct{}{}
			continue
		}
		used[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
