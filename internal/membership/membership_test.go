package membership

import (
	"testing"
	"testing/quick"

	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/stats"
)

func TestSequential(t *testing.T) {
	d := Sequential(5)
	if d.N() != 5 || d.NAlive() != 5 {
		t.Fatalf("N/NAlive = %d/%d, want 5/5", d.N(), d.NAlive())
	}
	for i := 0; i < 5; i++ {
		if !d.Alive(msg.NodeID(i)) {
			t.Fatalf("node %d not alive", i)
		}
	}
	if d.Alive(99) {
		t.Fatal("unknown node reported alive")
	}
}

func TestDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ids did not panic")
		}
	}()
	NewDirectory([]msg.NodeID{1, 1})
}

func TestExpel(t *testing.T) {
	d := Sequential(4)
	if !d.Expel(2) {
		t.Fatal("Expel(2) returned false")
	}
	if d.Alive(2) {
		t.Fatal("expelled node still alive")
	}
	if d.NAlive() != 3 {
		t.Fatalf("NAlive = %d, want 3", d.NAlive())
	}
	if d.Expel(2) {
		t.Fatal("second Expel returned true")
	}
	if d.N() != 4 {
		t.Fatal("N changed after expulsion")
	}
	// Remaining nodes still sampleable.
	s := rng.New(1)
	got := d.Sample(s, 3, 0)
	for _, id := range got {
		if id == 2 || id == 0 {
			t.Fatalf("Sample returned expelled or self node: %v", got)
		}
	}
	if len(got) != 2 {
		t.Fatalf("Sample(3 excluding self among 3 alive) returned %d, want 2", len(got))
	}
}

func TestSampleNeverSelfNeverDup(t *testing.T) {
	d := Sequential(30)
	s := rng.New(7)
	for trial := 0; trial < 500; trial++ {
		out := d.Sample(s, 12, 5)
		if len(out) != 12 {
			t.Fatalf("len = %d, want 12", len(out))
		}
		seen := make(map[msg.NodeID]bool)
		for _, id := range out {
			if id == 5 {
				t.Fatal("sample contains self")
			}
			if seen[id] {
				t.Fatal("sample contains duplicate")
			}
			seen[id] = true
		}
	}
}

func TestSampleUniformity(t *testing.T) {
	// Inclusion frequency must be uniform across all non-self nodes.
	d := Sequential(50)
	s := rng.New(3)
	counts := make([]int, 50)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, id := range d.Sample(s, 7, 0) {
			counts[id]++
		}
	}
	if counts[0] != 0 {
		t.Fatal("self was sampled")
	}
	chi := stats.ChiSquareUniform(counts[1:])
	// 48 degrees of freedom; 0.1% critical value ~ 88.
	if chi > 88 {
		t.Fatalf("sample inclusion chi-square = %v, too non-uniform", chi)
	}
}

func TestSampleKLargerThanPopulation(t *testing.T) {
	d := Sequential(4)
	s := rng.New(1)
	out := d.Sample(s, 10, 1)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3 (everyone but self)", len(out))
	}
}

func TestSampleZeroAndEmpty(t *testing.T) {
	d := Sequential(3)
	s := rng.New(1)
	if out := d.Sample(s, 0, 0); out != nil {
		t.Fatalf("Sample(0) = %v, want nil", out)
	}
	d1 := Sequential(1)
	if out := d1.Sample(s, 5, 0); out != nil {
		t.Fatalf("Sample from single-node system = %v, want nil", out)
	}
}

func TestSampleExternalSelf(t *testing.T) {
	// A sampler that is not itself a member (e.g. the stream source with a
	// dedicated id) must still be able to sample everyone.
	d := Sequential(5)
	s := rng.New(2)
	out := d.Sample(s, 5, 1000)
	if len(out) != 5 {
		t.Fatalf("len = %d, want 5", len(out))
	}
}

func TestManagersDeterministicAndValid(t *testing.T) {
	d := Sequential(100)
	a := d.Managers(42, 25)
	b := d.Managers(42, 25)
	if len(a) != 25 {
		t.Fatalf("len = %d, want 25", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("manager assignment is not deterministic")
		}
	}
	seen := make(map[msg.NodeID]bool)
	for _, id := range a {
		if id == 42 {
			t.Fatal("target is its own manager")
		}
		if seen[id] {
			t.Fatal("duplicate manager")
		}
		seen[id] = true
	}
}

func TestManagersDifferPerTarget(t *testing.T) {
	d := Sequential(1000)
	a := d.Managers(1, 25)
	b := d.Managers(2, 25)
	same := 0
	inA := make(map[msg.NodeID]bool)
	for _, id := range a {
		inA[id] = true
	}
	for _, id := range b {
		if inA[id] {
			same++
		}
	}
	if same == 25 {
		t.Fatal("different targets share an identical manager set")
	}
}

func TestManagersSmallSystem(t *testing.T) {
	d := Sequential(3)
	ms := d.Managers(0, 25)
	if len(ms) != 2 {
		t.Fatalf("managers in 3-node system = %d, want 2", len(ms))
	}
	d1 := Sequential(1)
	if ms := d1.Managers(0, 5); ms != nil {
		t.Fatalf("managers in 1-node system = %v, want nil", ms)
	}
}

func TestSamplePropertyQuick(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8, selfRaw uint8) bool {
		n := int(nRaw%50) + 2
		k := int(kRaw % 20)
		self := msg.NodeID(selfRaw % uint8(n))
		d := Sequential(n)
		s := rng.New(uint64(nRaw)<<16 | uint64(kRaw)<<8 | uint64(selfRaw))
		out := d.Sample(s, k, self)
		want := k
		if want > n-1 {
			want = n - 1
		}
		if len(out) != want {
			return false
		}
		seen := make(map[msg.NodeID]bool)
		for _, id := range out {
			if id == self || seen[id] || !d.Alive(id) {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
