package net

import (
	"math"
	"testing"
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

type capture struct {
	from []msg.NodeID
	msgs []msg.Message
	at   []time.Duration
	eng  *sim.Engine
}

func (c *capture) HandleMessage(from msg.NodeID, m msg.Message) {
	c.from = append(c.from, from)
	c.msgs = append(c.msgs, m)
	if c.eng != nil {
		c.at = append(c.at, c.eng.Now())
	}
}

func newNet(t *testing.T, defaults Conditions) (*sim.Engine, *SimNet, *metrics.Collector) {
	t.Helper()
	eng := sim.NewEngine()
	col := metrics.NewCollector()
	n := NewSimNet(eng, rng.New(1), col, defaults)
	return eng, n, col
}

func TestLosslessDelivery(t *testing.T) {
	eng, n, _ := newNet(t, Uniform(0, 10*time.Millisecond))
	rx := &capture{eng: eng}
	n.Attach(2, rx)
	n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 9}, Unreliable)
	eng.RunAll()
	if len(rx.msgs) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(rx.msgs))
	}
	if rx.from[0] != 1 {
		t.Fatalf("from = %d, want 1", rx.from[0])
	}
	if rx.at[0] != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", rx.at[0])
	}
}

func TestLossRate(t *testing.T) {
	eng, n, col := newNet(t, Uniform(0.07, time.Millisecond))
	rx := &capture{}
	n.Attach(2, rx)
	const total = 50000
	for i := 0; i < total; i++ {
		n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	}
	eng.RunAll()
	got := float64(total-len(rx.msgs)) / total
	if math.Abs(got-0.07) > 0.01 {
		t.Fatalf("observed loss %v, want ~0.07", got)
	}
	if col.Dropped(msg.KindScoreReq) != uint64(total-len(rx.msgs)) {
		t.Fatal("drop counter does not match undelivered messages")
	}
}

func TestReliableNeverLoses(t *testing.T) {
	eng, n, _ := newNet(t, Uniform(0.5, time.Millisecond))
	rx := &capture{}
	n.Attach(2, rx)
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(1, 2, &msg.AuditReq{Sender: 1, Horizon: time.Second}, Reliable)
	}
	eng.RunAll()
	if len(rx.msgs) != total {
		t.Fatalf("reliable mode delivered %d/%d", len(rx.msgs), total)
	}
}

func TestReliableSlowerThanUnreliable(t *testing.T) {
	eng, n, _ := newNet(t, Uniform(0, 10*time.Millisecond))
	rx := &capture{eng: eng}
	n.Attach(2, rx)
	n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	n.Send(1, 2, &msg.AuditReq{Sender: 1, Horizon: time.Second}, Reliable)
	eng.RunAll()
	if len(rx.at) != 2 {
		t.Fatal("expected two deliveries")
	}
	if rx.at[1] <= rx.at[0] {
		t.Fatalf("reliable delivery (%v) should be slower than unreliable (%v)", rx.at[1], rx.at[0])
	}
}

func TestDownNodeDropsBothDirections(t *testing.T) {
	eng, n, _ := newNet(t, Uniform(0, time.Millisecond))
	rx := &capture{}
	n.Attach(2, rx)
	n.SetDown(1, true)
	n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	n.SetDown(1, false)
	n.SetDown(2, true)
	n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	eng.RunAll()
	if len(rx.msgs) != 0 {
		t.Fatalf("down node received %d messages", len(rx.msgs))
	}
}

func TestDownAtDeliveryTime(t *testing.T) {
	// A node that goes down while a message is in flight must not receive it.
	eng, n, _ := newNet(t, Uniform(0, 10*time.Millisecond))
	rx := &capture{}
	n.Attach(2, rx)
	n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	eng.After(time.Millisecond, func() { n.SetDown(2, true) })
	eng.RunAll()
	if len(rx.msgs) != 0 {
		t.Fatal("message delivered to a node that went down in flight")
	}
}

func TestUnattachedDestinationDrops(t *testing.T) {
	eng, n, col := newNet(t, Uniform(0, time.Millisecond))
	n.Send(1, 99, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	eng.RunAll()
	if col.Dropped(msg.KindScoreReq) != 1 {
		t.Fatal("message to unattached node was not counted as dropped")
	}
}

func TestUplinkSerialization(t *testing.T) {
	// Two 1000-byte-ish messages over a 10 kB/s uplink must be ~0.1 s apart.
	eng, n, _ := newNet(t, Conditions{UplinkBps: 10000, LatencyBase: 0})
	rx := &capture{eng: eng}
	n.Attach(2, rx)
	big := &msg.Serve{Sender: 1, Chunk: 1}
	big.PayloadSize = 1000 - big.WireSize()
	n.Send(1, 2, big, Unreliable)
	n.Send(1, 2, big, Unreliable)
	eng.RunAll()
	if len(rx.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(rx.at))
	}
	gap := rx.at[1] - rx.at[0]
	if math.Abs(gap.Seconds()-0.1) > 0.001 {
		t.Fatalf("uplink gap = %v, want ~100ms", gap)
	}
}

func TestUplinkUnlimitedWhenZero(t *testing.T) {
	eng, n, _ := newNet(t, Conditions{LatencyBase: time.Millisecond})
	rx := &capture{eng: eng}
	n.Attach(2, rx)
	n.Send(1, 2, &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1 << 20}, Unreliable)
	eng.RunAll()
	if rx.at[0] != time.Millisecond {
		t.Fatalf("unlimited uplink delivery at %v, want 1ms", rx.at[0])
	}
}

func TestPerNodeConditionsOverride(t *testing.T) {
	eng, n, _ := newNet(t, Uniform(0, time.Millisecond))
	n.SetConditions(3, Conditions{LossIn: 1})
	rx := &capture{}
	n.Attach(3, rx)
	for i := 0; i < 100; i++ {
		n.Send(1, 3, &msg.ScoreReq{Sender: 1, Target: 3}, Unreliable)
	}
	eng.RunAll()
	if len(rx.msgs) != 0 {
		t.Fatal("LossIn=1 node still received messages")
	}
	if got := n.ConditionsOf(3).LossIn; got != 1 {
		t.Fatalf("ConditionsOf(3).LossIn = %v, want 1", got)
	}
}

func TestLatencyJitterRange(t *testing.T) {
	eng, n, _ := newNet(t, Conditions{LatencyBase: 10 * time.Millisecond, LatencyJitter: 10 * time.Millisecond})
	rx := &capture{eng: eng}
	n.Attach(2, rx)
	for i := 0; i < 500; i++ {
		n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
	}
	eng.RunAll()
	var minAt, maxAt = rx.at[0], rx.at[0]
	for _, a := range rx.at {
		if a < minAt {
			minAt = a
		}
		if a > maxAt {
			maxAt = a
		}
	}
	if minAt < 10*time.Millisecond {
		t.Fatalf("delivery before base latency: %v", minAt)
	}
	if maxAt >= 20*time.Millisecond {
		t.Fatalf("delivery beyond base+jitter: %v", maxAt)
	}
	if maxAt-minAt < time.Millisecond {
		t.Fatal("jitter appears inactive")
	}
}

func TestMetricsAccounting(t *testing.T) {
	eng, n, col := newNet(t, Uniform(0, time.Millisecond))
	rx := &capture{}
	n.Attach(2, rx)
	serve := &msg.Serve{Sender: 1, Chunk: 1, PayloadSize: 1000}
	blame := &msg.Blame{Sender: 1, Target: 5, Value: 2}
	n.Send(1, 2, serve, Unreliable)
	n.Send(1, 2, blame, Unreliable)
	eng.RunAll()
	if col.SentMsgs(msg.KindServe) != 1 || col.SentMsgs(msg.KindBlame) != 1 {
		t.Fatal("sent counters wrong")
	}
	_, vb := col.VerificationTotals()
	_, pb := col.ProtocolTotals()
	if vb != uint64(blame.WireSize()) {
		t.Fatalf("verification bytes = %d, want %d", vb, blame.WireSize())
	}
	if pb != uint64(serve.WireSize()) {
		t.Fatalf("protocol bytes = %d, want %d", pb, serve.WireSize())
	}
	if ov := col.Overhead(); math.Abs(ov-float64(vb)/float64(pb)) > 1e-12 {
		t.Fatalf("overhead = %v", ov)
	}
	node1 := col.Node(1)
	if node1.SentMsgs != 2 || node1.SentBytes == 0 {
		t.Fatal("per-node counters wrong")
	}
	node2 := col.Node(2)
	if node2.RecvMsgs != 2 {
		t.Fatal("receiver counters wrong")
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []time.Duration {
		eng := sim.NewEngine()
		n := NewSimNet(eng, rng.New(99), nil, Conditions{LatencyBase: time.Millisecond, LatencyJitter: 5 * time.Millisecond, LossIn: 0.1})
		rx := &capture{eng: eng}
		n.Attach(2, rx)
		for i := 0; i < 200; i++ {
			n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
		}
		eng.RunAll()
		return rx.at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("deliveries differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("delivery times diverged between identical runs")
		}
	}
}

// TestTrafficConservation pins the collector symmetry PR 7 fixed: on the
// sim backend every sent message (and byte) is delivered or recorded as a
// drop — exactly one of the two — once the engine drains. Lossless runs
// must show zero drops; lossy runs must balance to the message.
func TestTrafficConservation(t *testing.T) {
	for _, loss := range []float64{0, 0.2} {
		eng, n, col := newNet(t, Uniform(loss, time.Millisecond))
		rx := &capture{}
		n.Attach(2, rx)
		const total = 5000
		for i := 0; i < total; i++ {
			n.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, Unreliable)
		}
		eng.RunAll()
		k := msg.KindScoreReq
		if col.SentMsgs(k) != total {
			t.Fatalf("loss=%v: sent %d, want %d", loss, col.SentMsgs(k), total)
		}
		if got := col.RecvMsgs(k) + col.Dropped(k); got != total {
			t.Fatalf("loss=%v: delivered %d + dropped %d != sent %d",
				loss, col.RecvMsgs(k), col.Dropped(k), total)
		}
		if got := col.RecvBytes(k) + col.DroppedBytes(k); got != col.SentBytes(k) {
			t.Fatalf("loss=%v: byte accounting unbalanced: %d + %d != %d",
				loss, col.RecvBytes(k), col.DroppedBytes(k), col.SentBytes(k))
		}
		if loss == 0 && col.Dropped(k) != 0 {
			t.Fatalf("lossless run recorded %d drops", col.Dropped(k))
		}
		if loss > 0 && col.Dropped(k) == 0 {
			t.Fatal("lossy run recorded no drops")
		}
	}
}
