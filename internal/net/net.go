// Package net provides the simulated network substrate that replaces the
// paper's PlanetLab deployment: lossy UDP-like and reliable TCP-like message
// delivery with per-node loss rates, latency jitter and uplink bandwidth
// caps. Heterogeneous node conditions reproduce the "nodes with poor
// connectivity" population responsible for most of the paper's false
// positives (§7.3).
package net

import (
	"time"

	"lifting/internal/msg"
)

// Mode selects delivery semantics for a message.
type Mode uint8

// Delivery modes. Unreliable models UDP (messages lost with the link's loss
// probability); Reliable models TCP (no loss, connection setup latency).
// LiFTinG sends direct cross-checking over UDP and audits over TCP (§5).
const (
	Unreliable Mode = iota + 1
	Reliable
)

// Handler receives messages addressed to a node. Implementations are invoked
// serially per node by both runtimes.
type Handler interface {
	HandleMessage(from msg.NodeID, m msg.Message)
}

// Network is the sending side seen by protocol nodes.
type Network interface {
	// Send transmits m from one node to another with the given delivery
	// semantics. Delivery is asynchronous.
	Send(from, to msg.NodeID, m msg.Message, mode Mode)
}

// Conditions models one node's connection quality.
type Conditions struct {
	// LossIn and LossOut are per-message Bernoulli loss probabilities
	// applied to unreliable traffic entering/leaving the node. The
	// effective loss of a link is 1-(1-out)(1-in).
	LossIn, LossOut float64
	// LatencyBase is the one-way propagation delay; LatencyJitter adds a
	// uniform random component in [0, LatencyJitter).
	LatencyBase, LatencyJitter time.Duration
	// UplinkBps caps the node's upload bandwidth in bytes per second;
	// 0 means unlimited. Messages queue at the uplink, which is how a
	// poorly provisioned node ends up late (and wrongfully blamed).
	UplinkBps float64
	// Down marks the node as departed or expelled: all its traffic is
	// dropped in both directions.
	Down bool
	// PartitionGroup places the node in a network partition. Two nodes
	// whose groups are both nonzero and different cannot exchange traffic;
	// group 0 (the default) is unpartitioned and reaches everyone. The
	// fault-injection plane flips these to model split-brain episodes.
	PartitionGroup uint8
	// DupProb duplicates each unreliable message leaving the node with
	// this probability: a second identical copy is transmitted (and
	// accounted) right behind the first.
	DupProb float64
	// ReorderProb delays an unreliable message leaving the node by an
	// extra ReorderDelay with this probability, letting later sends
	// overtake it on the wire.
	ReorderProb  float64
	ReorderDelay time.Duration
}

// Partitioned reports whether traffic between nodes with groups a and b is
// cut by a partition.
func Partitioned(a, b uint8) bool {
	return a != 0 && b != 0 && a != b
}

// Uniform returns homogeneous conditions with the given loss probability and
// latency, unlimited bandwidth. This matches the i.i.d. Bernoulli loss model
// of the paper's analysis (§6.2).
func Uniform(loss float64, latency time.Duration) Conditions {
	return Conditions{
		// Attribute the whole link loss to the receiving side so that a
		// single Bernoulli draw with parameter pl governs each message,
		// exactly as in the analysis.
		LossIn:      loss,
		LatencyBase: latency,
	}
}
