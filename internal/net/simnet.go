package net

import (
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

// reliableSetupFactor models the extra one-way latency of establishing a TCP
// connection (SYN/SYN-ACK) relative to a bare datagram.
const reliableSetupFactor = 3

// SimNet delivers messages through the discrete-event engine. It is the
// simulation-side implementation of Network.
//
// Under a serial engine all sends draw loss and jitter from one shared
// stream, in send order — the legacy behavior, preserved bit for bit.
// Under a sharded engine sends from different nodes run concurrently, so
// each sender draws from its own derived stream and tracks its own uplink,
// keyed by node id: the draw sequence then depends only on the sender's own
// event order, which is what makes results shard-count-invariant.
type SimNet struct {
	engine    *sim.Engine
	rand      *rng.Stream
	collector *metrics.Collector
	handlers  map[msg.NodeID]Handler
	conds     map[msg.NodeID]*Conditions
	uplink    map[msg.NodeID]time.Duration // uplink busy-until, per node (serial)
	defaults  Conditions

	// Sharded-engine state. Only a node's own shard touches its slots
	// during a window; the slices grow in Attach, which is global-phase
	// work.
	sharded    bool
	nodeRand   []*rng.Stream
	nodeUplink []time.Duration
}

var _ Network = (*SimNet)(nil)
var _ sim.Sink = (*SimNet)(nil)

// NewSimNet creates a network on the given engine. rand is the loss/latency
// randomness source; collector may be nil to disable accounting; defaults
// apply to nodes without explicit conditions.
func NewSimNet(engine *sim.Engine, rand *rng.Stream, collector *metrics.Collector, defaults Conditions) *SimNet {
	return &SimNet{
		engine:    engine,
		rand:      rand,
		collector: collector,
		handlers:  make(map[msg.NodeID]Handler),
		conds:     make(map[msg.NodeID]*Conditions),
		uplink:    make(map[msg.NodeID]time.Duration),
		defaults:  defaults,
		sharded:   engine.Sharded(),
	}
}

// Attach registers the handler for a node. A nil handler detaches the node.
func (n *SimNet) Attach(id msg.NodeID, h Handler) {
	if h == nil {
		delete(n.handlers, id)
		return
	}
	n.handlers[id] = h
	if n.sharded {
		for len(n.nodeRand) <= int(id) {
			n.nodeRand = append(n.nodeRand, nil)
			n.nodeUplink = append(n.nodeUplink, 0)
		}
		if n.nodeRand[id] == nil {
			// Derivation hashes the parent seed with the id — independent
			// of attach order, so churn joins stay deterministic.
			n.nodeRand[id] = n.rand.ForNode(uint32(id))
		}
	}
}

// SetConditions overrides the connection quality of a node.
func (n *SimNet) SetConditions(id msg.NodeID, c Conditions) {
	cc := c
	n.conds[id] = &cc
}

// ConditionsOf returns the effective conditions of a node.
func (n *SimNet) ConditionsOf(id msg.NodeID) Conditions {
	if c, ok := n.conds[id]; ok {
		return *c
	}
	return n.defaults
}

// SetDown marks a node as departed (true) or alive (false), preserving its
// other conditions.
func (n *SimNet) SetDown(id msg.NodeID, down bool) {
	c := n.ConditionsOf(id)
	c.Down = down
	n.conds[id] = &c
}

// Send implements Network. The message is delivered through the event queue
// after uplink serialization and propagation delay, unless it is lost.
// Under a sharded engine Send must be called from the sending node's own
// callbacks (or the global phase) — the same serialization the rest of a
// node's state already requires.
func (n *SimNet) Send(from, to msg.NodeID, m msg.Message, mode Mode) {
	size := m.WireSize()
	if n.collector != nil {
		n.collector.OnSend(from, m, size)
	}
	src := n.ConditionsOf(from)
	dst := n.ConditionsOf(to)
	if src.Down || dst.Down || Partitioned(src.PartitionGroup, dst.PartitionGroup) {
		n.drop(m, size)
		return
	}
	rand := n.rand
	now := n.engine.Now()
	if n.sharded {
		rand = n.nodeRand[from]
		now = n.engine.NodeNow(int(from))
	}
	if mode == Unreliable {
		if rand.Bernoulli(src.LossOut) || rand.Bernoulli(dst.LossIn) {
			n.drop(m, size)
			return
		}
	}

	start := now
	var busy time.Duration
	if n.sharded {
		busy = n.nodeUplink[from]
	} else {
		busy = n.uplink[from]
	}
	if busy > start {
		start = busy
	}
	var tx time.Duration
	if src.UplinkBps > 0 {
		tx = time.Duration(float64(size) / src.UplinkBps * float64(time.Second))
	}
	if n.sharded {
		n.nodeUplink[from] = start + tx
	} else {
		n.uplink[from] = start + tx
	}

	latency := src.LatencyBase/2 + dst.LatencyBase/2
	jitter := src.LatencyJitter/2 + dst.LatencyJitter/2
	if jitter > 0 {
		latency += time.Duration(rand.Float64() * float64(jitter))
	}
	if mode == Reliable {
		latency *= reliableSetupFactor
	}
	if mode == Unreliable && rand.Bernoulli(src.ReorderProb) {
		// Hold the datagram back so later sends overtake it.
		latency += src.ReorderDelay
	}

	n.engine.Deliver(int32(from), int32(to), start+tx+latency-now, n, m, int32(size))

	if mode == Unreliable && rand.Bernoulli(src.DupProb) {
		// In-network duplication: a second identical copy arrives right
		// behind the first (no extra uplink charge). It is accounted as
		// a send of its own so the sent/recv/dropped books still balance.
		if n.collector != nil {
			n.collector.OnSend(from, m, size)
		}
		n.engine.Deliver(int32(from), int32(to), start+tx+latency-now, n, m, int32(size))
	}
}

// Deliver implements sim.Sink: the arrival half of Send, fired by the
// engine at delivery time. Handler lookup and down-ness are evaluated on
// arrival, exactly as the closure-based path did.
func (n *SimNet) Deliver(from, to int32, payload any, size int32) {
	m := payload.(msg.Message)
	h, ok := n.handlers[msg.NodeID(to)]
	if !ok || n.ConditionsOf(msg.NodeID(to)).Down {
		n.drop(m, int(size))
		return
	}
	if n.collector != nil {
		n.collector.OnDeliver(msg.NodeID(to), m, int(size))
	}
	h.HandleMessage(msg.NodeID(from), m)
}

func (n *SimNet) drop(m msg.Message, size int) {
	if n.collector != nil {
		n.collector.OnDrop(m, size)
	}
}
