package net

import (
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

// reliableSetupFactor models the extra one-way latency of establishing a TCP
// connection (SYN/SYN-ACK) relative to a bare datagram.
const reliableSetupFactor = 3

// SimNet delivers messages through the discrete-event engine. It is the
// simulation-side implementation of Network.
type SimNet struct {
	engine    *sim.Engine
	rand      *rng.Stream
	collector *metrics.Collector
	handlers  map[msg.NodeID]Handler
	conds     map[msg.NodeID]*Conditions
	uplink    map[msg.NodeID]time.Duration // uplink busy-until, per node
	defaults  Conditions
}

var _ Network = (*SimNet)(nil)

// NewSimNet creates a network on the given engine. rand is the loss/latency
// randomness source; collector may be nil to disable accounting; defaults
// apply to nodes without explicit conditions.
func NewSimNet(engine *sim.Engine, rand *rng.Stream, collector *metrics.Collector, defaults Conditions) *SimNet {
	return &SimNet{
		engine:    engine,
		rand:      rand,
		collector: collector,
		handlers:  make(map[msg.NodeID]Handler),
		conds:     make(map[msg.NodeID]*Conditions),
		uplink:    make(map[msg.NodeID]time.Duration),
		defaults:  defaults,
	}
}

// Attach registers the handler for a node. A nil handler detaches the node.
func (n *SimNet) Attach(id msg.NodeID, h Handler) {
	if h == nil {
		delete(n.handlers, id)
		return
	}
	n.handlers[id] = h
}

// SetConditions overrides the connection quality of a node.
func (n *SimNet) SetConditions(id msg.NodeID, c Conditions) {
	cc := c
	n.conds[id] = &cc
}

// ConditionsOf returns the effective conditions of a node.
func (n *SimNet) ConditionsOf(id msg.NodeID) Conditions {
	if c, ok := n.conds[id]; ok {
		return *c
	}
	return n.defaults
}

// SetDown marks a node as departed (true) or alive (false), preserving its
// other conditions.
func (n *SimNet) SetDown(id msg.NodeID, down bool) {
	c := n.ConditionsOf(id)
	c.Down = down
	n.conds[id] = &c
}

// Send implements Network. The message is delivered through the event queue
// after uplink serialization and propagation delay, unless it is lost.
func (n *SimNet) Send(from, to msg.NodeID, m msg.Message, mode Mode) {
	size := m.WireSize()
	if n.collector != nil {
		n.collector.OnSend(from, m, size)
	}
	src := n.ConditionsOf(from)
	dst := n.ConditionsOf(to)
	if src.Down || dst.Down {
		n.drop(m)
		return
	}
	if mode == Unreliable {
		if n.rand.Bernoulli(src.LossOut) || n.rand.Bernoulli(dst.LossIn) {
			n.drop(m)
			return
		}
	}

	now := n.engine.Now()
	start := now
	if busy := n.uplink[from]; busy > start {
		start = busy
	}
	var tx time.Duration
	if src.UplinkBps > 0 {
		tx = time.Duration(float64(size) / src.UplinkBps * float64(time.Second))
	}
	n.uplink[from] = start + tx

	latency := src.LatencyBase/2 + dst.LatencyBase/2
	jitter := src.LatencyJitter/2 + dst.LatencyJitter/2
	if jitter > 0 {
		latency += time.Duration(n.rand.Float64() * float64(jitter))
	}
	if mode == Reliable {
		latency *= reliableSetupFactor
	}

	deliverAt := start + tx + latency - now
	n.engine.After(deliverAt, func() {
		h, ok := n.handlers[to]
		if !ok || n.ConditionsOf(to).Down {
			n.drop(m)
			return
		}
		if n.collector != nil {
			n.collector.OnDeliver(to, m, size)
		}
		h.HandleMessage(from, m)
	})
}

func (n *SimNet) drop(m msg.Message) {
	if n.collector != nil {
		n.collector.OnDrop(m)
	}
}
