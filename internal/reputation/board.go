// Package reputation implements the Alliatrust-like distributed reputation
// substrate LiFTinG relies on (§5.1 of the paper): every node has M
// pseudo-random managers that each keep a copy of its score; blames are sent
// to the managers; scores are read by querying the managers and taking the
// minimum (which makes score inflation by colluding managers ineffective);
// expulsion is triggered through the same managers.
//
// The package provides two layers:
//
//   - Board: the pure score algebra — blame accumulation, per-period
//     compensation of wrongful blames (b̃ of Equation 5) and normalization
//     by the time spent in the system (Equation 6). Large-scale experiments
//     use a Board directly.
//   - Manager/Client: the message-driven layer used at PlanetLab scale,
//     where blames and score reads travel as (lossy) messages.
package reputation

import (
	"lifting/internal/msg"
)

// Entry is one tracked node's state on a board.
type Entry struct {
	TotalBlame float64
	JoinPeriod msg.Period
	Expelled   bool
	Reason     msg.BlameReason
}

// Board accumulates blames and computes normalized, compensated scores.
// The zero value is not usable; create one with NewBoard.
type Board struct {
	compensation float64
	period       msg.Period
	entries      map[msg.NodeID]*Entry
}

// NewBoard creates a board. compensation is b̃, the expected wrongful blame
// applied to an honest node per gossip period (Equation 5); it is added back
// each period so honest scores average zero (§6.2).
func NewBoard(compensation float64) *Board {
	return &Board{
		compensation: compensation,
		entries:      make(map[msg.NodeID]*Entry),
	}
}

// Compensation returns b̃.
func (b *Board) Compensation() float64 { return b.compensation }

// SetPeriod advances the board's clock to period p. Scores are normalized by
// the number of periods a node has been tracked.
func (b *Board) SetPeriod(p msg.Period) {
	if p > b.period {
		b.period = p
	}
}

// Period returns the board's current period.
func (b *Board) Period() msg.Period { return b.period }

// Join starts tracking id as of the board's current period. Joining an
// already-tracked node is a no-op.
func (b *Board) Join(id msg.NodeID) {
	if _, ok := b.entries[id]; ok {
		return
	}
	b.entries[id] = &Entry{JoinPeriod: b.period}
}

// Tracked reports whether id is tracked.
func (b *Board) Tracked(id msg.NodeID) bool {
	_, ok := b.entries[id]
	return ok
}

// AddBlame applies a blame value to target, tracking it first if needed.
func (b *Board) AddBlame(target msg.NodeID, value float64) {
	b.Join(target)
	b.entries[target].TotalBlame += value
}

// TotalBlame returns the raw accumulated blame of target.
func (b *Board) TotalBlame(target msg.NodeID) float64 {
	if e, ok := b.entries[target]; ok {
		return e.TotalBlame
	}
	return 0
}

// Periods returns r, the number of gossip periods target has been tracked
// (at least 1 once tracked, so scores are always defined).
func (b *Board) Periods(target msg.NodeID) int {
	e, ok := b.entries[target]
	if !ok {
		return 0
	}
	r := int(b.period) - int(e.JoinPeriod)
	if r < 1 {
		r = 1
	}
	return r
}

// Score returns the normalized, compensated score of target (Equation 6):
//
//	s = −(1/r) · Σᵢ (bᵢ − b̃) = b̃ − (Σᵢ bᵢ)/r
//
// Honest nodes have E[s] = 0; freeriders drift negative. Untracked nodes
// score 0.
func (b *Board) Score(target msg.NodeID) float64 {
	e, ok := b.entries[target]
	if !ok {
		return 0
	}
	r := float64(b.Periods(target))
	return b.compensation - e.TotalBlame/r
}

// MarkExpelled flags target as expelled with the given reason and reports
// whether this was the first expulsion. Untracked targets are joined first.
func (b *Board) MarkExpelled(target msg.NodeID, reason msg.BlameReason) bool {
	b.Join(target)
	e := b.entries[target]
	if e.Expelled {
		return false
	}
	e.Expelled = true
	e.Reason = reason
	return true
}

// Expelled reports whether target is flagged as expelled.
func (b *Board) Expelled(target msg.NodeID) bool {
	if e, ok := b.entries[target]; ok {
		return e.Expelled
	}
	return false
}

// Adopt installs a copy of a replica's entry for target, overwriting any
// local state. It is the state-transfer half of a reputation-manager
// handoff: the join period, accumulated blame and expulsion verdict all
// migrate with the entry.
func (b *Board) Adopt(target msg.NodeID, e Entry) {
	ee := e
	b.entries[target] = &ee
}

// Drop stops tracking target, discarding its entry.
func (b *Board) Drop(target msg.NodeID) {
	delete(b.entries, target)
}

// Entry returns a copy of target's entry and whether it is tracked.
func (b *Board) Entry(target msg.NodeID) (Entry, bool) {
	if e, ok := b.entries[target]; ok {
		return *e, true
	}
	return Entry{}, false
}

// Len returns how many nodes the board tracks. The soak invariants bound
// it: per-manager state must stay O(population), not grow with run length.
func (b *Board) Len() int { return len(b.entries) }

// Each calls fn for every tracked node. Iteration order is unspecified:
// callers that fold or emit must canonicalize (collect-then-sort) on their
// side.
func (b *Board) Each(fn func(id msg.NodeID, e Entry)) {
	//lint:allow ordered-map-range order is the documented contract; every caller collects then sorts or reduces commutatively
	for id, e := range b.entries {
		fn(id, *e)
	}
}
