package reputation

import (
	"sort"
	"sync"

	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
)

// Config parameterizes the message-driven reputation layer.
type Config struct {
	// M is the number of managers per node (25 in the paper's deployment).
	M int
	// Compensation is b̃, the per-period wrongful-blame compensation.
	Compensation float64
	// Eta is the expulsion threshold η on normalized scores (−9.75 in the
	// paper).
	Eta float64
	// GracePeriods is the minimum number of gossip periods a node must have
	// been tracked before η applies: σ(s) shrinks as 1/√r (§6.3.1), so very
	// young scores are too noisy to act on.
	GracePeriods int
	// FlushEvery batches client blames over this many gossip periods before
	// reporting them to the managers (default 1). Scores only matter on the
	// timescale of r ≈ 50 periods, so coarse batching keeps the blaming
	// bandwidth negligible (Table 5) at a small detection-latency cost.
	FlushEvery int
	// OnExpel, if non-nil, is invoked the first time a manager decides to
	// expel a node (used by the harness to remove the node from the
	// membership and record detection latency).
	OnExpel func(target msg.NodeID, reason msg.BlameReason)
}

// Manager is the manager-side duty of one node: it holds score copies for
// the targets it manages and serves blame/score/expel traffic.
//
// A Manager's board operations are guarded by an internal mutex: under the
// live runtime its messages arrive on the owning node's goroutine while the
// harness ticks periods and hands off state from other goroutines.
type Manager struct {
	self  msg.NodeID
	cfg   Config
	mu    sync.Mutex
	board *Board
	netw  net.Network
	dir   *membership.Directory
}

// NewManager creates the manager component of node self.
func NewManager(self msg.NodeID, cfg Config, netw net.Network, dir *membership.Directory) *Manager {
	return &Manager{
		self:  self,
		cfg:   cfg,
		board: NewBoard(cfg.Compensation),
		netw:  netw,
		dir:   dir,
	}
}

// Board exposes the manager's local score copies (read-mostly; used by the
// harness for min-vote reads without extra message traffic). Callers must
// not use it while the manager is live on another goroutine.
func (m *Manager) Board() *Board { return m.board }

// Tick advances the manager's period clock and re-evaluates expulsion for
// every tracked node: scores change with r even without new blames.
func (m *Manager) Tick(p msg.Period) {
	m.mu.Lock()
	m.board.SetPeriod(p)
	var toExpel []msg.NodeID
	m.board.Each(func(id msg.NodeID, e Entry) {
		if e.Expelled || m.board.Periods(id) < m.cfg.GracePeriods {
			return
		}
		if m.board.Score(id) < m.cfg.Eta {
			toExpel = append(toExpel, id)
		}
	})
	m.mu.Unlock()
	sort.Slice(toExpel, func(i, j int) bool { return toExpel[i] < toExpel[j] })
	for _, id := range toExpel {
		m.expel(id, msg.ReasonUnknown)
	}
}

// Track registers target with this manager as of period p.
func (m *Manager) Track(target msg.NodeID, p msg.Period) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.board.SetPeriod(p)
	m.board.Join(target)
}

// Snapshot returns a copy of the manager's entry for target, and whether
// the target is tracked here.
func (m *Manager) Snapshot(target msg.NodeID) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.board.Entry(target)
}

// Adopt installs a replica's entry for target as of period p, overwriting
// local state. The harness uses it to hand score state to a manager that
// became responsible for target after a membership change.
func (m *Manager) Adopt(target msg.NodeID, e Entry, p msg.Period) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.board.SetPeriod(p)
	m.board.Adopt(target, e)
}

// TrackedCount returns how many targets this manager currently tracks.
func (m *Manager) TrackedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.board.Len()
}

// Drop stops tracking target (the manager is no longer responsible for it).
func (m *Manager) Drop(target msg.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.board.Drop(target)
}

// Score returns the manager's current normalized score copy for target and
// whether the target is tracked here.
func (m *Manager) Score(target msg.NodeID) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.board.Tracked(target) {
		return 0, false
	}
	return m.board.Score(target), true
}

// Scores returns the manager's current normalized score for every target it
// tracks — the local manager-duty view an operator sees on /status.
func (m *Manager) Scores() map[msg.NodeID]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[msg.NodeID]float64)
	m.board.Each(func(id msg.NodeID, _ Entry) {
		out[id] = m.board.Score(id)
	})
	return out
}

// HandleMessage processes reputation traffic addressed to this node. It
// reports whether the message kind belonged to the reputation layer.
func (m *Manager) HandleMessage(from msg.NodeID, mm msg.Message) bool {
	switch v := mm.(type) {
	case *msg.Blame:
		m.mu.Lock()
		m.board.AddBlame(v.Target, v.Value)
		doomed := !m.board.Expelled(v.Target) &&
			m.board.Periods(v.Target) >= m.cfg.GracePeriods &&
			m.board.Score(v.Target) < m.cfg.Eta
		m.mu.Unlock()
		if doomed {
			m.expel(v.Target, v.Reason)
		}
		return true
	case *msg.ScoreReq:
		// Answer honestly about targets this manager does not track (churn
		// handoffs move score copies around): a fabricated 0 would poison the
		// reader's min-vote. The reply still goes out — readers count it
		// toward "all managers answered" — but carries Tracked=false and no
		// score.
		m.mu.Lock()
		resp := &msg.ScoreResp{
			Sender:  m.self,
			Target:  v.Target,
			Tracked: m.board.Tracked(v.Target),
		}
		if resp.Tracked {
			resp.Score = m.board.Score(v.Target)
			resp.Expelled = m.board.Expelled(v.Target)
		}
		m.mu.Unlock()
		m.netw.Send(m.self, from, resp, net.Unreliable)
		return true
	case *msg.Expel:
		// Another manager of the target decided to expel: adopt the verdict
		// so reads from this manager agree.
		m.mu.Lock()
		first := m.board.MarkExpelled(v.Target, v.Reason)
		m.mu.Unlock()
		if first && m.cfg.OnExpel != nil {
			m.cfg.OnExpel(v.Target, v.Reason)
		}
		return true
	default:
		return false
	}
}

// expel marks the target expelled, notifies the harness and informs the
// target's other managers so their copies converge. Side effects run
// outside the manager lock: OnExpel re-enters the harness, which may call
// back into managers.
func (m *Manager) expel(target msg.NodeID, reason msg.BlameReason) {
	m.mu.Lock()
	first := m.board.MarkExpelled(target, reason)
	m.mu.Unlock()
	if !first {
		return
	}
	if m.cfg.OnExpel != nil {
		m.cfg.OnExpel(target, reason)
	}
	for _, mgr := range m.dir.Managers(target, m.cfg.M) {
		if mgr == m.self {
			continue
		}
		m.netw.Send(m.self, mgr, &msg.Expel{Sender: m.self, Target: target, Reason: reason}, net.Unreliable)
	}
}

// Client is the verifier-side interface to the reputation substrate: it
// routes blames to the target's managers. Blames against the same target
// are batched until Flush (typically once per gossip period): the blame
// values of different verifications are designed to be summable (§5), so
// batching costs nothing in fidelity and keeps the messaging overhead
// proportional to the number of blamed targets rather than of blame events.
type Client struct {
	self    msg.NodeID
	cfg     Config
	netw    net.Network
	dir     *membership.Directory
	pending map[msg.NodeID]*pendingBlame
	order   []msg.NodeID
}

type pendingBlame struct {
	value  float64
	reason msg.BlameReason
}

// NewClient creates the client component of node self.
func NewClient(self msg.NodeID, cfg Config, netw net.Network, dir *membership.Directory) *Client {
	return &Client{
		self:    self,
		cfg:     cfg,
		netw:    netw,
		dir:     dir,
		pending: make(map[msg.NodeID]*pendingBlame),
	}
}

// Blame accumulates a blame of the given value against target; the batch is
// sent to the target's M managers on the next Flush. The recorded reason is
// the first one of the batch.
func (c *Client) Blame(target msg.NodeID, value float64, reason msg.BlameReason) {
	if value <= 0 {
		return
	}
	if p, ok := c.pending[target]; ok {
		p.value += value
		return
	}
	c.pending[target] = &pendingBlame{value: value, reason: reason}
	c.order = append(c.order, target)
}

// Flush sends one aggregated blame message per blamed target to each of its
// M managers (§5.1). Blames travel over the unreliable transport; min-vote
// reads tolerate the resulting divergence between manager copies.
//
// One Blame value is shared by all M sends of a target: every backend treats
// messages as immutable once handed to Send (the UDP transport serializes
// them on the spot through the pooled AppendEncode path), so the per-manager
// re-allocation this replaced bought nothing. The pending map is cleared in
// place for the same reason — Flush runs once per blamed target per period
// on every node, which makes it a rebalance-scale hot path at 10k nodes.
func (c *Client) Flush() {
	for _, target := range c.order {
		p := c.pending[target]
		b := &msg.Blame{Sender: c.self, Target: target, Value: p.value, Reason: p.reason}
		for _, mgr := range c.dir.Managers(target, c.cfg.M) {
			c.netw.Send(c.self, mgr, b, net.Unreliable)
		}
	}
	clear(c.pending)
	c.order = c.order[:0]
}

// PendingTargets returns the number of targets with unflushed blames.
func (c *Client) PendingTargets() int { return len(c.pending) }

// MinVoteScore aggregates manager score copies with the paper's voting
// function: the minimum over the returned values (§5.1). It also reports
// whether any manager flagged the target as expelled.
func MinVoteScore(copies []float64, expelledFlags []bool) (score float64, expelled bool) {
	if len(copies) == 0 {
		return 0, false
	}
	score = copies[0]
	for _, s := range copies[1:] {
		if s < score {
			score = s
		}
	}
	for _, e := range expelledFlags {
		if e {
			expelled = true
			break
		}
	}
	return score, expelled
}
