package reputation

import (
	"math"
	"testing"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// TestManagerHandoffRoundTripProperty is the property test behind manager
// handoff and crash/restart re-adoption: for randomized blame histories, a
// Snapshot/Adopt round-trip transfers the ENTIRE observable state — the
// recipient scores the target identically at the handoff period and keeps
// scoring it identically under any shared continuation of blames and ticks.
// Re-Tracking an adopted target (what the harness does when a crashed node
// rejoins) must neither reset its score clock nor double-count its blame,
// and adopting the same entry twice is idempotent.
func TestManagerHandoffRoundTripProperty(t *testing.T) {
	r := rng.New(0x68616e646f66) // "handof"
	cfg := Config{M: 4, Compensation: 0.3, Eta: -1e9, GracePeriods: 4}
	const target = msg.NodeID(42)

	for trial := 0; trial < 200; trial++ {
		a := NewManager(1, cfg, nil, nil)
		joinP := msg.Period(r.IntN(5))
		a.Track(target, joinP)

		// A random prefix of history on the original manager: interleaved
		// blames and period advances.
		p := joinP
		for i, n := 0, r.IntN(30); i < n; i++ {
			if r.Bernoulli(0.5) {
				p++
				a.Tick(p)
			} else {
				a.mu.Lock()
				a.board.AddBlame(target, r.Float64()*3)
				a.mu.Unlock()
			}
		}

		// Handoff: B becomes responsible for target at period p.
		e, tracked := a.Snapshot(target)
		if !tracked {
			t.Fatalf("trial %d: target untracked on the original manager", trial)
		}
		b := NewManager(2, cfg, nil, nil)
		b.Adopt(target, e, p)

		scoreA, _ := a.Score(target)
		scoreB, ok := b.Score(target)
		if !ok {
			t.Fatalf("trial %d: adopted target not tracked", trial)
		}
		if math.Abs(scoreA-scoreB) > 1e-12 {
			t.Fatalf("trial %d: handoff changed the score: %.12f vs %.12f", trial, scoreA, scoreB)
		}

		// Crash/restart: the target rejoins and the harness re-Tracks it on
		// both replicas at a later period. JoinPeriod and blame must survive.
		before, _ := b.Snapshot(target)
		restartP := p + msg.Period(1+r.IntN(10))
		a.Track(target, restartP)
		b.Track(target, restartP)
		after, _ := b.Snapshot(target)
		if after.JoinPeriod != before.JoinPeriod {
			t.Fatalf("trial %d: re-Track reset the score clock: JoinPeriod %d -> %d",
				trial, before.JoinPeriod, after.JoinPeriod)
		}
		if after.TotalBlame != before.TotalBlame {
			t.Fatalf("trial %d: re-Track changed accumulated blame: %v -> %v",
				trial, before.TotalBlame, after.TotalBlame)
		}

		// Double-adopt of the same snapshot is idempotent — a repeated
		// rebalance must not double-count anything.
		b.Adopt(target, e, p)
		if again, _ := b.Snapshot(target); again != before {
			t.Fatalf("trial %d: double-adopt changed the entry: %+v -> %+v", trial, before, again)
		}

		// A shared continuation: identical blames and ticks applied to both
		// replicas keep their scores identical — nothing about the handoff
		// leaks into future scoring.
		p = restartP
		a.Tick(p)
		b.Tick(p)
		for i, n := 0, r.IntN(30); i < n; i++ {
			if r.Bernoulli(0.5) {
				p++
				a.Tick(p)
				b.Tick(p)
			} else {
				v := r.Float64() * 3
				a.mu.Lock()
				a.board.AddBlame(target, v)
				a.mu.Unlock()
				b.mu.Lock()
				b.board.AddBlame(target, v)
				b.mu.Unlock()
			}
		}
		scoreA, _ = a.Score(target)
		scoreB, _ = b.Score(target)
		if math.Abs(scoreA-scoreB) > 1e-12 {
			t.Fatalf("trial %d: replicas diverged after a shared continuation: %.12f vs %.12f",
				trial, scoreA, scoreB)
		}
		// And the score clock still predates the restart on both: r grows
		// from the ORIGINAL join, so a restarted node's history keeps
		// amortizing instead of restarting.
		if ea, _ := a.Snapshot(target); ea.JoinPeriod != e.JoinPeriod {
			t.Fatalf("trial %d: original replica's JoinPeriod drifted: %d -> %d",
				trial, e.JoinPeriod, ea.JoinPeriod)
		}
	}
}

// TestManagerAdoptCarriesExpulsion pins the other half of the handoff
// contract: an expulsion verdict travels with the entry, so a rebalance
// cannot resurrect an expelled node.
func TestManagerAdoptCarriesExpulsion(t *testing.T) {
	cfg := Config{M: 4, Compensation: 0.1, Eta: -1e9}
	a := NewManager(1, cfg, nil, nil)
	a.Track(7, 0)
	a.mu.Lock()
	a.board.AddBlame(7, 12)
	a.board.MarkExpelled(7, msg.ReasonAuditEntropy)
	a.mu.Unlock()

	e, _ := a.Snapshot(7)
	b := NewManager(2, cfg, nil, nil)
	b.Adopt(7, e, 5)
	got, _ := b.Snapshot(7)
	if !got.Expelled || got.Reason != msg.ReasonAuditEntropy {
		t.Fatalf("adopted entry lost the expulsion verdict: %+v", got)
	}
}
