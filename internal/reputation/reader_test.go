package reputation

import (
	"math"
	"testing"
	"time"

	"lifting/internal/msg"
)

func TestReaderMinVote(t *testing.T) {
	cfg := Config{M: 5, Compensation: 2, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 30, cfg, 0)

	// Seed different copies at the target's managers.
	mgrs := dir.Managers(7, 5)
	for i, m := range mgrs {
		managers[m].Track(7, 0)
		managers[m].Board().AddBlame(7, float64(i)) // scores 2, 1, 0, -1, -2
		managers[m].Tick(1)
	}

	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	var gotReplies int
	reader.Read(7, func(score float64, expelled bool, replies int) {
		gotScore, gotReplies = score, replies
	})
	eng.RunAll()
	if gotReplies != 5 {
		t.Fatalf("replies = %d, want 5", gotReplies)
	}
	// Min over {2, 1, 0, -1, -2} = -2.
	if math.Abs(gotScore-(-2)) > 1e-12 {
		t.Fatalf("min-vote score = %v, want -2", gotScore)
	}
}

func TestReaderToleratesLossAndInflation(t *testing.T) {
	// Half the managers are colluders returning +1000; message loss kills
	// some replies. The minimum still tracks the most-blamed honest copy.
	cfg := Config{M: 6, Compensation: 0, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 40, cfg, 0.1)
	mgrs := dir.Managers(9, 6)
	for i, m := range mgrs {
		managers[m].Track(9, 0)
		if i%2 == 0 {
			managers[m].Board().AddBlame(9, -1000) // inflating colluder
		} else {
			managers[m].Board().AddBlame(9, 50)
		}
		managers[m].Tick(1)
	}
	reader := NewReader(1, cfg, eng, netw, dir, 200*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	var gotReplies int
	reader.Read(9, func(score float64, _ bool, replies int) { gotScore, gotReplies = score, replies })
	eng.RunAll()
	if gotReplies == 0 {
		t.Skip("all replies lost at 10% loss (unlucky seed)")
	}
	// If any honest reply survived, the min is at most -50.
	if gotScore > -50+1e-9 && gotReplies >= 4 {
		t.Fatalf("min-vote %v did not resist inflation (replies %d)", gotScore, gotReplies)
	}
}

func TestReaderExpelledFlag(t *testing.T) {
	cfg := Config{M: 3, Compensation: 0, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 20, cfg, 0)
	m0 := dir.Managers(5, 3)[0]
	managers[m0].Track(5, 0)
	managers[m0].Board().MarkExpelled(5, msg.ReasonAuditEntropy)
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotExpelled bool
	reader.Read(5, func(_ float64, expelled bool, _ int) { gotExpelled = expelled })
	eng.RunAll()
	if !gotExpelled {
		t.Fatal("expelled flag not surfaced by the read")
	}
}

func TestReaderConcurrentReadRejected(t *testing.T) {
	cfg := Config{M: 3, Compensation: 0, Eta: -1e9}
	eng, netw, dir, _, _ := managed(t, 10, cfg, 0)
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	calls := 0
	reader.Read(5, func(_ float64, _ bool, _ int) { calls++ })
	rejected := false
	reader.Read(5, func(_ float64, _ bool, replies int) {
		if replies == 0 {
			rejected = true
		}
	})
	eng.RunAll()
	if !rejected {
		t.Fatal("concurrent read was not rejected")
	}
	if calls != 1 {
		t.Fatalf("first read callback ran %d times", calls)
	}
}

func TestReaderIgnoresForeignMessages(t *testing.T) {
	cfg := Config{M: 3}
	eng, netw, dir, _, _ := managed(t, 10, cfg, 0)
	_ = eng
	reader := NewReader(1, cfg, eng, netw, dir, time.Millisecond)
	if reader.HandleAux(2, &msg.Propose{Sender: 2}) {
		t.Fatal("reader claimed a gossip message")
	}
	// A stray score response with no outstanding read is consumed quietly.
	if !reader.HandleAux(2, &msg.ScoreResp{Sender: 2, Target: 9}) {
		t.Fatal("reader rejected a score response")
	}
}
