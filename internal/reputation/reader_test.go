package reputation

import (
	"math"
	"testing"
	"time"

	"lifting/internal/msg"
)

func TestReaderMinVote(t *testing.T) {
	cfg := Config{M: 5, Compensation: 2, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 30, cfg, 0)

	// Seed different copies at the target's managers.
	mgrs := dir.Managers(7, 5)
	for i, m := range mgrs {
		managers[m].Track(7, 0)
		managers[m].Board().AddBlame(7, float64(i)) // scores 2, 1, 0, -1, -2
		managers[m].Tick(1)
	}

	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	var gotReplies int
	reader.Read(7, func(score float64, expelled bool, replies int) {
		gotScore, gotReplies = score, replies
	})
	eng.RunAll()
	if gotReplies != 5 {
		t.Fatalf("replies = %d, want 5", gotReplies)
	}
	// Min over {2, 1, 0, -1, -2} = -2.
	if math.Abs(gotScore-(-2)) > 1e-12 {
		t.Fatalf("min-vote score = %v, want -2", gotScore)
	}
}

func TestReaderToleratesLossAndInflation(t *testing.T) {
	// Half the managers are colluders returning +1000; message loss kills
	// some replies. The minimum still tracks the most-blamed honest copy.
	cfg := Config{M: 6, Compensation: 0, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 40, cfg, 0.1)
	mgrs := dir.Managers(9, 6)
	for i, m := range mgrs {
		managers[m].Track(9, 0)
		if i%2 == 0 {
			managers[m].Board().AddBlame(9, -1000) // inflating colluder
		} else {
			managers[m].Board().AddBlame(9, 50)
		}
		managers[m].Tick(1)
	}
	reader := NewReader(1, cfg, eng, netw, dir, 200*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	var gotReplies int
	reader.Read(9, func(score float64, _ bool, replies int) { gotScore, gotReplies = score, replies })
	eng.RunAll()
	if gotReplies == 0 {
		t.Skip("all replies lost at 10% loss (unlucky seed)")
	}
	// If any honest reply survived, the min is at most -50.
	if gotScore > -50+1e-9 && gotReplies >= 4 {
		t.Fatalf("min-vote %v did not resist inflation (replies %d)", gotScore, gotReplies)
	}
}

func TestReaderExpelledFlag(t *testing.T) {
	cfg := Config{M: 3, Compensation: 0, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 20, cfg, 0)
	m0 := dir.Managers(5, 3)[0]
	managers[m0].Track(5, 0)
	managers[m0].Board().MarkExpelled(5, msg.ReasonAuditEntropy)
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotExpelled bool
	reader.Read(5, func(_ float64, expelled bool, _ int) { gotExpelled = expelled })
	eng.RunAll()
	if !gotExpelled {
		t.Fatal("expelled flag not surfaced by the read")
	}
}

func TestReaderConcurrentReadRejected(t *testing.T) {
	cfg := Config{M: 3, Compensation: 0, Eta: -1e9}
	eng, netw, dir, _, _ := managed(t, 10, cfg, 0)
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	calls := 0
	reader.Read(5, func(_ float64, _ bool, _ int) { calls++ })
	rejected := false
	reader.Read(5, func(_ float64, _ bool, replies int) {
		if replies == 0 {
			rejected = true
		}
	})
	eng.RunAll()
	if !rejected {
		t.Fatal("concurrent read was not rejected")
	}
	if calls != 1 {
		t.Fatalf("first read callback ran %d times", calls)
	}
}

// TestReaderDiscardsUntrackedReplies is the regression test for min-vote
// score poisoning: after a churn handoff a manager in the target's current
// set may not (yet) track it. Its reply must not inject a fabricated 0 into
// the vote — before the Tracked flag, a mildly-blamed node with genuine
// copies at 1.5 read as 0.
func TestReaderDiscardsUntrackedReplies(t *testing.T) {
	cfg := Config{M: 5, Compensation: 2, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 30, cfg, 0)

	// Four managers hold genuine copies of a blamed node (score 2 − 1/2 =
	// 1.5); the fifth lost the target in a handoff and tracks nothing.
	mgrs := dir.Managers(7, 5)
	for _, m := range mgrs[:4] {
		managers[m].Track(7, 0)
		managers[m].Board().AddBlame(7, 1)
		managers[m].Tick(2)
	}
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	gotReplies := -1
	reader.Read(7, func(score float64, _ bool, replies int) {
		gotScore, gotReplies = score, replies
	})
	eng.RunAll()
	if gotReplies != 4 {
		t.Fatalf("replies = %d, want 4 (untracked reply must not count as a copy)", gotReplies)
	}
	if math.Abs(gotScore-1.5) > 1e-12 {
		t.Fatalf("min-vote score = %v, want 1.5 (a fabricated 0 poisoned the vote)", gotScore)
	}
}

// TestReaderAllUntrackedReportsNoReplies covers the worst handoff case: none
// of the target's current managers holds a copy. The read must report zero
// replies — indistinguishable before this fix from a confident score of 0.
func TestReaderAllUntrackedReportsNoReplies(t *testing.T) {
	cfg := Config{M: 4, Compensation: 2, Eta: -1e9}
	eng, netw, dir, _, _ := managed(t, 20, cfg, 0)
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	gotReplies := -1
	reader.Read(8, func(_ float64, _ bool, replies int) { gotReplies = replies })
	eng.RunAll()
	if gotReplies != 0 {
		t.Fatalf("replies = %d, want 0 for a target nobody tracks", gotReplies)
	}
}

// TestReaderCompletesBeforeTimeout is the regression test for the read
// latency bug: with every manager reply in hand the read must resolve
// immediately instead of sleeping out the full timeout. The verdict must be
// the one the timeout path would have produced.
func TestReaderCompletesBeforeTimeout(t *testing.T) {
	cfg := Config{M: 5, Compensation: 2, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 30, cfg, 0)
	mgrs := dir.Managers(7, 5)
	for i, m := range mgrs {
		managers[m].Track(7, 0)
		managers[m].Board().AddBlame(7, float64(i))
		managers[m].Tick(1)
	}
	const timeout = 10 * time.Second
	reader := NewReader(1, cfg, eng, netw, dir, timeout)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	gotReplies := -1
	doneAt := time.Duration(-1)
	reader.Read(7, func(score float64, _ bool, replies int) {
		gotScore, gotReplies, doneAt = score, replies, eng.Now()
	})
	eng.RunAll()
	if gotReplies != 5 {
		t.Fatalf("replies = %d, want 5", gotReplies)
	}
	if doneAt < 0 || doneAt >= timeout {
		t.Fatalf("read resolved at %v, want before the %v timeout", doneAt, timeout)
	}
	// Bit-identical verdict: min over {2, 1, 0, -1, -2} as with the old
	// timeout-driven completion.
	if math.Abs(gotScore-(-2)) > 1e-12 {
		t.Fatalf("early-completed score = %v, want -2", gotScore)
	}
}

// TestReaderIgnoresForgedSenders: ScoreResps from nodes the read never
// queried must neither terminate the read early nor inject copies into the
// vote — otherwise a colluder flooding Tracked=false forgeries from M fake
// ids could suppress a blamed node's genuine low copies.
func TestReaderIgnoresForgedSenders(t *testing.T) {
	cfg := Config{M: 3, Compensation: 0, Eta: -1e9}
	eng, netw, dir, managers, _ := managed(t, 20, cfg, 0)
	mgrs := dir.Managers(7, 3)
	for _, m := range mgrs {
		managers[m].Track(7, 0)
		managers[m].Board().AddBlame(7, 50) // genuine copies at -50
		managers[m].Tick(1)
	}
	reader := NewReader(1, cfg, eng, netw, dir, 100*time.Millisecond)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		reader.HandleAux(from, m)
	}))
	var gotScore float64
	gotReplies := -1
	reader.Read(7, func(score float64, _ bool, replies int) { gotScore, gotReplies = score, replies })
	// Forgeries from ids outside the manager set arrive before the genuine
	// replies: M untracked ones (early-termination attempt) and one tracked
	// with an inflated score (injection attempt).
	isMgr := map[msg.NodeID]bool{}
	for _, m := range mgrs {
		isMgr[m] = true
	}
	forger := msg.NodeID(0)
	for forger = 2; isMgr[forger] || forger == 1; forger++ {
	}
	for i := 0; i < 3; i++ {
		reader.HandleAux(forger, &msg.ScoreResp{Sender: forger + msg.NodeID(i)*100, Target: 7, Tracked: false})
	}
	reader.HandleAux(forger, &msg.ScoreResp{Sender: forger, Target: 7, Tracked: true, Score: 1000})
	eng.RunAll()
	if gotReplies != 3 {
		t.Fatalf("replies = %d, want 3 genuine copies", gotReplies)
	}
	if math.Abs(gotScore-(-50)) > 1e-12 {
		t.Fatalf("min-vote score = %v, want -50 (forged replies perturbed the vote)", gotScore)
	}
}

func TestReaderIgnoresForeignMessages(t *testing.T) {
	cfg := Config{M: 3}
	eng, netw, dir, _, _ := managed(t, 10, cfg, 0)
	_ = eng
	reader := NewReader(1, cfg, eng, netw, dir, time.Millisecond)
	if reader.HandleAux(2, &msg.Propose{Sender: 2}) {
		t.Fatal("reader claimed a gossip message")
	}
	// A stray score response with no outstanding read is consumed quietly.
	if !reader.HandleAux(2, &msg.ScoreResp{Sender: 2, Target: 9}) {
		t.Fatal("reader rejected a score response")
	}
}
