package reputation

import (
	"time"

	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/sim"
)

// Reader performs decentralized score reads: it queries a target's M
// managers and votes over the returned copies with the minimum (§5.1 —
// the minimum makes score inflation by colluding managers ineffective,
// and blame-message loss can only raise individual copies, never lower
// the minimum below the truth).
//
// Replies flagged Tracked=false carry no genuine score copy (the manager
// lost the target in a churn handoff, or never had it) and are discarded:
// they count toward "every manager answered" but contribute nothing to the
// vote, so a read that reaches only such managers reports zero replies
// instead of a fabricated score.
//
// Trust model: like every layer of this substrate, the reader trusts the
// self-declared Sender id — there is no message authentication anywhere in
// the protocol, and an adversary able to forge sender ids already owns
// strictly stronger moves (a forged Expel marks the target expelled
// outright; forged Blames poison every manager copy directly). The queried
// set below therefore defends against ids from OUTSIDE the manager set
// (cheap, and keeps forgeries from crowding out the vote or terminating
// the read), not against an adversary impersonating the managers
// themselves. A reply credited from a manager answering a previous,
// timed-out read of the same target is likewise accepted: it is a genuine
// copy from the right manager, merely milliseconds staler.
type Reader struct {
	self    msg.NodeID
	cfg     Config
	ctx     sim.Context
	netw    net.Network
	dir     *membership.Directory
	timeout time.Duration

	pending map[msg.NodeID]*readState
}

type readState struct {
	copies   []float64
	expelled []bool
	// queried holds the managers this read actually contacted, flipped to
	// false as each answers: only their replies count — toward the vote and
	// toward the all-managers-answered early completion — so a node forging
	// ScoreResps from ids outside the manager set can neither terminate the
	// read early nor crowd genuine low copies out of the minimum.
	queried  map[msg.NodeID]bool
	awaiting int
	done     bool
	callback func(score float64, expelled bool, replies int)
}

// NewReader creates a score reader hosted at node self. timeout bounds how
// long a read waits for manager replies.
func NewReader(self msg.NodeID, cfg Config, ctx sim.Context, netw net.Network, dir *membership.Directory, timeout time.Duration) *Reader {
	return &Reader{
		self:    self,
		cfg:     cfg,
		ctx:     ctx,
		netw:    netw,
		dir:     dir,
		timeout: timeout,
		pending: make(map[msg.NodeID]*readState),
	}
}

// Read queries target's managers and delivers the min-vote result to fn.
// The read completes as soon as all queried managers have replied; the
// timeout only covers replies lost on the unreliable transport. Concurrent
// reads of the same target are rejected (fn is called with zero replies).
// Reads with no genuine score copies at all report a zero score with zero
// replies.
func (r *Reader) Read(target msg.NodeID, fn func(score float64, expelled bool, replies int)) {
	if _, dup := r.pending[target]; dup {
		fn(0, false, 0)
		return
	}
	mgrs := r.dir.Managers(target, r.cfg.M)
	st := &readState{
		callback: fn,
		queried:  make(map[msg.NodeID]bool, len(mgrs)),
		awaiting: len(mgrs),
	}
	r.pending[target] = st
	for _, mgr := range mgrs {
		st.queried[mgr] = true
		r.netw.Send(r.self, mgr, &msg.ScoreReq{Sender: r.self, Target: target}, net.Unreliable)
	}
	if st.awaiting == 0 {
		r.finish(target, st)
		return
	}
	r.ctx.After(r.timeout, func() { r.finish(target, st) })
}

// finish resolves an outstanding read exactly once.
func (r *Reader) finish(target msg.NodeID, st *readState) {
	if st.done {
		return
	}
	st.done = true
	delete(r.pending, target)
	score, expelled := MinVoteScore(st.copies, st.expelled)
	st.callback(score, expelled, len(st.copies))
}

// HandleAux consumes ScoreResp messages addressed to this reader. It
// reports whether the message belonged to an outstanding read.
func (r *Reader) HandleAux(_ msg.NodeID, m msg.Message) bool {
	resp, ok := m.(*msg.ScoreResp)
	if !ok {
		return false
	}
	st, ok := r.pending[resp.Target]
	if !ok || st.done {
		return true
	}
	// Unqueried senders (forgeries, duplicates) are consumed but ignored.
	if !st.queried[resp.Sender] {
		return true
	}
	st.queried[resp.Sender] = false
	st.awaiting--
	if resp.Tracked {
		st.copies = append(st.copies, resp.Score)
		st.expelled = append(st.expelled, resp.Expelled)
	}
	if st.awaiting <= 0 {
		r.finish(resp.Target, st)
	}
	return true
}
