package reputation

import (
	"time"

	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/sim"
)

// Reader performs decentralized score reads: it queries a target's M
// managers and votes over the returned copies with the minimum (§5.1 —
// the minimum makes score inflation by colluding managers ineffective,
// and blame-message loss can only raise individual copies, never lower
// the minimum below the truth).
type Reader struct {
	self    msg.NodeID
	cfg     Config
	ctx     sim.Context
	netw    net.Network
	dir     *membership.Directory
	timeout time.Duration

	pending map[msg.NodeID]*readState
}

type readState struct {
	copies   []float64
	expelled []bool
	done     bool
	callback func(score float64, expelled bool, replies int)
}

// NewReader creates a score reader hosted at node self. timeout bounds how
// long a read waits for manager replies.
func NewReader(self msg.NodeID, cfg Config, ctx sim.Context, netw net.Network, dir *membership.Directory, timeout time.Duration) *Reader {
	return &Reader{
		self:    self,
		cfg:     cfg,
		ctx:     ctx,
		netw:    netw,
		dir:     dir,
		timeout: timeout,
		pending: make(map[msg.NodeID]*readState),
	}
}

// Read queries target's managers and delivers the min-vote result to fn.
// Concurrent reads of the same target are rejected (fn is called with zero
// replies). Reads with no replies at all report a zero score.
func (r *Reader) Read(target msg.NodeID, fn func(score float64, expelled bool, replies int)) {
	if _, dup := r.pending[target]; dup {
		fn(0, false, 0)
		return
	}
	st := &readState{callback: fn}
	r.pending[target] = st
	for _, mgr := range r.dir.Managers(target, r.cfg.M) {
		r.netw.Send(r.self, mgr, &msg.ScoreReq{Sender: r.self, Target: target}, net.Unreliable)
	}
	r.ctx.After(r.timeout, func() {
		if st.done {
			return
		}
		st.done = true
		delete(r.pending, target)
		score, expelled := MinVoteScore(st.copies, st.expelled)
		st.callback(score, expelled, len(st.copies))
	})
}

// HandleAux consumes ScoreResp messages addressed to this reader. It
// reports whether the message belonged to an outstanding read.
func (r *Reader) HandleAux(_ msg.NodeID, m msg.Message) bool {
	resp, ok := m.(*msg.ScoreResp)
	if !ok {
		return false
	}
	st, ok := r.pending[resp.Target]
	if !ok || st.done {
		return true
	}
	st.copies = append(st.copies, resp.Score)
	st.expelled = append(st.expelled, resp.Expelled)
	return true
}
