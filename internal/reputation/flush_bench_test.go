package reputation

import (
	"testing"

	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
)

// discardNet swallows sends: the flush benchmarks measure the client's own
// work (batch walk, manager lookup, message construction), not a backend.
type discardNet struct{ sends int }

func (d *discardNet) Send(from, to msg.NodeID, m msg.Message, mode net.Mode) { d.sends++ }

// flushTargets is the per-period blamed-target batch the benchmark drives:
// large enough to amortize the fixed per-flush cost, small compared to M·N.
const flushTargets = 64

// BenchmarkClientFlush measures one blame-accumulate-and-flush cycle against
// a 10k-node membership with M=25 managers per target — the message-mode hot
// path of every verifier every FlushEvery periods. Guards allocations/op:
// the Blame value is hoisted out of the per-manager loop (one allocation per
// blamed target, not per manager) and the pending map is cleared in place,
// so allocs/op stays proportional to blamed targets, not to M·targets.
func BenchmarkClientFlush(b *testing.B) {
	dir := membership.Sequential(10000)
	nw := &discardNet{}
	client := NewClient(0, Config{M: 25}, nw, dir)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < flushTargets; t++ {
			client.Blame(msg.NodeID(t+1), 1.5, msg.ReasonNoAck)
		}
		client.Flush()
	}
	b.StopTimer()
	b.ReportMetric(float64(nw.sends)/float64(b.N), "sends/op")
	b.ReportMetric(float64(flushTargets), "targets/op")
}

// TestFlushAllocsBounded is the regression guard behind BenchmarkClientFlush:
// a full accumulate+flush cycle over flushTargets targets must allocate on
// the order of two allocations per blamed target (the pendingBlame entry and
// the one shared Blame message) — not one per manager send, and not a fresh
// pending map per flush.
func TestFlushAllocsBounded(t *testing.T) {
	dir := membership.Sequential(10000)
	client := NewClient(0, Config{M: 25}, &discardNet{}, dir)
	// Warm: the order slice and the pending map reach steady-state capacity,
	// and the directory's manager cache fills for the blamed targets.
	for i := 0; i < 3; i++ {
		for n := 0; n < flushTargets; n++ {
			client.Blame(msg.NodeID(n+1), 1, msg.ReasonNoAck)
		}
		client.Flush()
	}
	avg := testing.AllocsPerRun(50, func() {
		for n := 0; n < flushTargets; n++ {
			client.Blame(msg.NodeID(n+1), 1, msg.ReasonNoAck)
		}
		client.Flush()
	})
	// 2 allocs per target plus slack; the pre-fix code allocated M=25 Blame
	// values per target (~1664 total).
	if max := float64(3 * flushTargets); avg > max {
		t.Fatalf("accumulate+flush of %d targets allocates %.0f/run, want ≤ %.0f", flushTargets, avg, max)
	}
}
