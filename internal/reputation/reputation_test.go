package reputation

import (
	"math"
	"testing"
	"time"

	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

func TestBoardScoreFormula(t *testing.T) {
	// s = b̃ − Σb/r (Equation 6 rewritten). With b̃=10, 3 periods, total
	// blame 45: s = 10 − 15 = −5.
	b := NewBoard(10)
	b.Join(1)
	b.SetPeriod(3)
	b.AddBlame(1, 45)
	if got := b.Score(1); math.Abs(got-(-5)) > 1e-12 {
		t.Fatalf("score = %v, want -5", got)
	}
}

func TestBoardHonestAveragesZero(t *testing.T) {
	// A node blamed exactly b̃ per period scores exactly 0.
	b := NewBoard(72.95)
	b.Join(1)
	for p := msg.Period(1); p <= 50; p++ {
		b.SetPeriod(p)
		b.AddBlame(1, 72.95)
	}
	if got := b.Score(1); math.Abs(got) > 1e-9 {
		t.Fatalf("score = %v, want 0", got)
	}
}

func TestBoardUntracked(t *testing.T) {
	b := NewBoard(5)
	if b.Score(9) != 0 || b.Tracked(9) || b.Periods(9) != 0 {
		t.Fatal("untracked node should report zeros")
	}
}

func TestBoardMinPeriodsOne(t *testing.T) {
	b := NewBoard(0)
	b.Join(1)
	b.AddBlame(1, 7)
	// Same period as join: r clamps to 1.
	if got := b.Score(1); math.Abs(got-(-7)) > 1e-12 {
		t.Fatalf("score = %v, want -7", got)
	}
}

func TestBoardScoreRecovers(t *testing.T) {
	// A node blamed heavily once recovers as r grows (σ(s) ~ 1/√r in the
	// analysis; here the mean effect).
	b := NewBoard(0)
	b.Join(1)
	b.SetPeriod(1)
	b.AddBlame(1, 100)
	s1 := b.Score(1)
	b.SetPeriod(100)
	s100 := b.Score(1)
	if s100 <= s1 {
		t.Fatalf("score did not recover: %v then %v", s1, s100)
	}
}

func TestBoardExpelIdempotent(t *testing.T) {
	b := NewBoard(0)
	if !b.MarkExpelled(3, msg.ReasonAuditEntropy) {
		t.Fatal("first MarkExpelled returned false")
	}
	if b.MarkExpelled(3, msg.ReasonAuditEntropy) {
		t.Fatal("second MarkExpelled returned true")
	}
	if !b.Expelled(3) {
		t.Fatal("node not expelled")
	}
	e, ok := b.Entry(3)
	if !ok || e.Reason != msg.ReasonAuditEntropy {
		t.Fatal("entry reason wrong")
	}
}

func TestMinVoteScore(t *testing.T) {
	s, e := MinVoteScore([]float64{3, -2, 7}, []bool{false, false, false})
	if s != -2 || e {
		t.Fatalf("min-vote = %v/%v, want -2/false", s, e)
	}
	// Colluding managers inflating their copies cannot raise the minimum.
	s, _ = MinVoteScore([]float64{-11, 1000, 1000}, nil)
	if s != -11 {
		t.Fatalf("inflated copies changed the min: %v", s)
	}
	_, e = MinVoteScore([]float64{0}, []bool{true})
	if !e {
		t.Fatal("expelled flag not propagated")
	}
	s, e = MinVoteScore(nil, nil)
	if s != 0 || e {
		t.Fatal("empty vote should be zero")
	}
}

// managed builds a small message-driven reputation world: n nodes, each
// hosting a Manager, plus a Client at node 0.
func managed(t *testing.T, n int, cfg Config, loss float64) (*sim.Engine, *net.SimNet, *membership.Directory, map[msg.NodeID]*Manager, *Client) {
	t.Helper()
	eng := sim.NewEngine()
	netw := net.NewSimNet(eng, rng.New(77), metrics.NewCollector(), net.Uniform(loss, time.Millisecond))
	dir := membership.Sequential(n)
	managers := make(map[msg.NodeID]*Manager, n)
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		m := NewManager(id, cfg, netw, dir)
		managers[id] = m
		netw.Attach(id, handlerFunc(func(from msg.NodeID, mm msg.Message) {
			managers[id].HandleMessage(from, mm)
		}))
	}
	client := NewClient(0, cfg, netw, dir)
	return eng, netw, dir, managers, client
}

type handlerFunc func(from msg.NodeID, m msg.Message)

func (f handlerFunc) HandleMessage(from msg.NodeID, m msg.Message) { f(from, m) }

func TestClientBlameReachesAllManagers(t *testing.T) {
	cfg := Config{M: 5, Compensation: 0, Eta: -1e9}
	eng, _, dir, managers, client := managed(t, 30, cfg, 0)
	client.Blame(7, 3, msg.ReasonPartialServe)
	client.Flush()
	eng.RunAll()
	for _, mgr := range dir.Managers(7, 5) {
		if got := managers[mgr].Board().TotalBlame(7); got != 3 {
			t.Fatalf("manager %d has blame %v, want 3", mgr, got)
		}
	}
	// A non-manager holds nothing.
	isMgr := map[msg.NodeID]bool{}
	for _, id := range dir.Managers(7, 5) {
		isMgr[id] = true
	}
	for id, m := range managers {
		if !isMgr[id] && m.Board().Tracked(7) {
			t.Fatalf("non-manager %d tracked the target", id)
		}
	}
}

func TestClientIgnoresNonPositiveBlame(t *testing.T) {
	cfg := Config{M: 5, Compensation: 0, Eta: -1e9}
	eng, _, dir, managers, client := managed(t, 10, cfg, 0)
	client.Blame(7, 0, msg.ReasonPartialServe)
	client.Blame(7, -4, msg.ReasonPartialServe)
	client.Flush()
	eng.RunAll()
	for _, mgr := range dir.Managers(7, 5) {
		if managers[mgr].Board().Tracked(7) {
			t.Fatal("non-positive blame reached a manager")
		}
	}
}

func TestExpulsionPropagatesAcrossManagers(t *testing.T) {
	expelled := map[msg.NodeID]int{}
	cfg := Config{M: 5, Compensation: 0, Eta: -9.75}
	cfg.OnExpel = func(target msg.NodeID, _ msg.BlameReason) { expelled[target]++ }
	eng, _, dir, managers, client := managed(t, 30, cfg, 0)
	// Track the target everywhere at period 1, then blame hard.
	for _, mgr := range dir.Managers(7, 5) {
		managers[mgr].Track(7, 1)
	}
	client.Blame(7, 1000, msg.ReasonPartialServe)
	client.Flush()
	eng.RunAll()
	for _, mgr := range dir.Managers(7, 5) {
		if !managers[mgr].Board().Expelled(7) {
			t.Fatalf("manager %d did not adopt the expulsion", mgr)
		}
	}
	if expelled[7] == 0 {
		t.Fatal("OnExpel was not invoked")
	}
}

func TestTickTriggersExpulsion(t *testing.T) {
	// A large one-off blame at period 1 may not cross η at once if
	// compensation is large, but with the clock advancing scores settle;
	// conversely here we check Tick evaluates score afresh.
	var got []msg.NodeID
	cfg := Config{M: 3, Compensation: 0, Eta: -5}
	cfg.OnExpel = func(target msg.NodeID, _ msg.BlameReason) { got = append(got, target) }
	eng, netw, dir, managers, _ := managed(t, 10, cfg, 0)
	_ = netw
	mgr := managers[dir.Managers(4, 3)[0]]
	mgr.Track(4, 0)
	mgr.Board().AddBlame(4, 12) // below η at r=1: score -12
	mgr.Tick(1)
	eng.RunAll()
	if len(got) == 0 || got[0] != 4 {
		t.Fatalf("Tick did not expel: %v", got)
	}
}

func TestScoreReqResp(t *testing.T) {
	cfg := Config{M: 3, Compensation: 2, Eta: -1e9}
	eng, netw, dir, managers, client := managed(t, 20, cfg, 0)
	_ = client
	mgrID := dir.Managers(9, 3)[0]
	managers[mgrID].Track(9, 0)
	managers[mgrID].Board().AddBlame(9, 6)
	managers[mgrID].Tick(3)

	var resp *msg.ScoreResp
	reader := msg.NodeID(1)
	netw.Attach(reader, handlerFunc(func(from msg.NodeID, mm msg.Message) {
		if r, ok := mm.(*msg.ScoreResp); ok {
			resp = r
		}
	}))
	netw.Send(reader, mgrID, &msg.ScoreReq{Sender: reader, Target: 9}, net.Unreliable)
	eng.RunAll()
	if resp == nil {
		t.Fatal("no score response")
	}
	if want := 2.0 - 6.0/3.0; math.Abs(resp.Score-want) > 1e-12 {
		t.Fatalf("score = %v, want %v", resp.Score, want)
	}
}

func TestManagerHandleMessageIgnoresOtherKinds(t *testing.T) {
	cfg := Config{M: 3}
	_, netw, dir, managers, _ := managed(t, 5, cfg, 0)
	_ = netw
	_ = dir
	if managers[0].HandleMessage(1, &msg.Propose{Sender: 1}) {
		t.Fatal("manager claimed a gossip message")
	}
}
