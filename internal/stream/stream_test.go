package stream

import (
	"math"
	"testing"
	"time"

	"lifting/internal/msg"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{BitrateBps: 0, ChunkPayload: 1}).Validate(); err == nil {
		t.Fatal("zero bitrate accepted")
	}
	if err := (Config{BitrateBps: 1, ChunkPayload: 0}).Validate(); err == nil {
		t.Fatal("zero payload accepted")
	}
}

func TestChunkInterval674(t *testing.T) {
	cfg := DefaultConfig()
	// 674 kbps / 8 = 84250 B/s; 1316-byte chunks → ~64 chunks/s.
	if cps := cfg.ChunksPerSecond(); math.Abs(cps-64) > 1 {
		t.Fatalf("chunks per second = %v, want ~64", cps)
	}
	if iv := cfg.ChunkInterval(); math.Abs(iv.Seconds()-1.0/64) > 0.001 {
		t.Fatalf("chunk interval = %v, want ~15.6ms", iv)
	}
}

func TestGenTimeMonotone(t *testing.T) {
	cfg := DefaultConfig()
	prev := time.Duration(-1)
	for i := 0; i < 100; i++ {
		g := cfg.GenTime(msg.ChunkID(i))
		if g <= prev {
			t.Fatalf("GenTime not strictly increasing at %d", i)
		}
		prev = g
	}
	if cfg.GenTime(0) != 0 {
		t.Fatal("first chunk should be generated at t=0")
	}
}

func TestChunksBy(t *testing.T) {
	cfg := Config{BitrateBps: 8000, ChunkPayload: 1000} // 1 chunk per second
	if got := cfg.ChunksBy(0); got != 1 {
		t.Fatalf("ChunksBy(0) = %d, want 1", got)
	}
	if got := cfg.ChunksBy(2500 * time.Millisecond); got != 3 {
		t.Fatalf("ChunksBy(2.5s) = %d, want 3", got)
	}
	if got := cfg.ChunksBy(-time.Second); got != 0 {
		t.Fatalf("ChunksBy(-1s) = %d, want 0", got)
	}
}

func TestPlayoutEarliestArrivalWins(t *testing.T) {
	p := NewPlayout(DefaultConfig())
	p.Received(5, 100*time.Millisecond)
	p.Received(5, 50*time.Millisecond)
	p.Received(5, 200*time.Millisecond)
	if p.Count() != 1 {
		t.Fatalf("Count = %d, want 1", p.Count())
	}
	// The earliest arrival (50ms) must be the one retained: with total=6 the
	// chunk is on time for a 50ms lag but would not be at its later arrivals.
	cfg := DefaultConfig()
	lag := 50*time.Millisecond - cfg.GenTime(5)
	if r := p.DeliveredRatio(6, lag); math.Abs(r-1.0/6) > 1e-12 {
		t.Fatalf("ratio = %v, want 1/6 (earliest arrival retained)", r)
	}
}

func TestDeliveredRatio(t *testing.T) {
	cfg := Config{BitrateBps: 8000, ChunkPayload: 1000} // 1 chunk/s
	p := NewPlayout(cfg)
	// Chunks 0,1,2 generated at 0s,1s,2s. Receive 0 at 1s (lag 1s),
	// 1 at 3s (lag 2s); chunk 2 never arrives.
	p.Received(0, time.Second)
	p.Received(1, 3*time.Second)
	if r := p.DeliveredRatio(3, time.Second); math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("ratio at lag 1s = %v, want 1/3", r)
	}
	if r := p.DeliveredRatio(3, 2*time.Second); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("ratio at lag 2s = %v, want 2/3", r)
	}
	if r := p.DeliveredRatio(3, 10*time.Second); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("missing chunk should cap ratio at 2/3, got %v", r)
	}
	if r := p.DeliveredRatio(0, time.Second); r != 0 {
		t.Fatalf("ratio over zero chunks = %v, want 0", r)
	}
}

func TestViewsClearStream(t *testing.T) {
	cfg := Config{BitrateBps: 8000, ChunkPayload: 1000}
	p := NewPlayout(cfg)
	for i := 0; i < 99; i++ {
		p.Received(msg.ChunkID(i), cfg.GenTime(msg.ChunkID(i))+time.Millisecond)
	}
	// 99/100 on time: clear at threshold 0.99, not at 1.0.
	if !p.ViewsClearStream(100, time.Second, 0.99) {
		t.Fatal("99% delivery should be clear at threshold 0.99")
	}
	if p.ViewsClearStream(100, time.Second, 1.0) {
		t.Fatal("99% delivery should not be clear at threshold 1.0")
	}
}

func TestHealthCurveMonotone(t *testing.T) {
	cfg := Config{BitrateBps: 8000, ChunkPayload: 1000}
	var playouts []*Playout
	for n := 0; n < 10; n++ {
		p := NewPlayout(cfg)
		for i := 0; i < 50; i++ {
			// Node n receives chunk i with lag n·100ms.
			p.Received(msg.ChunkID(i), cfg.GenTime(msg.ChunkID(i))+time.Duration(n)*100*time.Millisecond)
		}
		playouts = append(playouts, p)
	}
	lags := []time.Duration{0, 250 * time.Millisecond, 450 * time.Millisecond, time.Second}
	h := Health(playouts, 50, lags)
	// Health must be non-decreasing in lag and reach 1 at 1s.
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatalf("health not monotone: %v", h)
		}
	}
	if h[len(h)-1] != 1 {
		t.Fatalf("health at 1s = %v, want 1", h[len(h)-1])
	}
	// At lag 250ms, nodes 0,1,2 view clear (lag 0,100,200ms): 3/10.
	if math.Abs(h[1]-0.3) > 1e-12 {
		t.Fatalf("health at 250ms = %v, want 0.3", h[1])
	}
}

func TestHealthEmpty(t *testing.T) {
	h := Health(nil, 10, []time.Duration{0, time.Second})
	for _, v := range h {
		if v != 0 {
			t.Fatal("health of empty population should be 0")
		}
	}
}
