// Package live runs the same protocol nodes as the discrete-event simulator
// on a goroutine-per-node runtime over real (wall-clock) time. Messages are
// serialized through the binary codec on every hop, delivered asynchronously
// with configurable loss and latency, and handled under a per-node lock so
// node logic stays single-threaded — the concurrency contract sim.Context
// promises.
//
// The live runtime trades determinism for realism: integration tests use it
// to check that LiFTinG's verdicts do not depend on the simulator's
// idealized scheduling.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/sim"
)

func init() {
	runtime.Register(runtime.KindLive, func(o runtime.BackendOptions) (runtime.Runtime, error) {
		return NewRuntime(o.Seed, o.Collector, o.Defaults), nil
	})
}

// Runtime hosts a set of live nodes.
type Runtime struct {
	start     time.Time
	collector *metrics.Collector
	defaults  net.Conditions

	mu      sync.Mutex
	rand    *rng.Stream
	nodes   map[msg.NodeID]*nodeCtx
	conds   map[msg.NodeID]net.Conditions
	stopped bool

	// timers tracks every pending AfterFunc so Close can cancel the not-yet
	// fired ones instead of waiting out their delays (a run cancelled
	// mid-stream has chunk injections scheduled all the way to its horizon).
	timers   runtime.Timers
	inflight sync.WaitGroup
}

var (
	_ net.Network     = (*Runtime)(nil)
	_ runtime.Runtime = (*Runtime)(nil)
)

// NewRuntime creates a live runtime. collector may be nil.
func NewRuntime(seed uint64, collector *metrics.Collector, defaults net.Conditions) *Runtime {
	return &Runtime{
		start:     time.Now(),
		collector: collector,
		defaults:  defaults,
		rand:      rng.New(seed),
		nodes:     make(map[msg.NodeID]*nodeCtx),
		conds:     make(map[msg.NodeID]net.Conditions),
	}
}

// nodeCtx is one node's execution context: a lock serializing all its
// callbacks plus the shared clock.
type nodeCtx struct {
	rt *Runtime
	id msg.NodeID
	mu sync.Mutex
	h  net.Handler
}

var _ sim.Context = (*nodeCtx)(nil)

// Now implements sim.Context: time elapsed since the runtime started.
func (n *nodeCtx) Now() time.Duration { return time.Since(n.rt.start) }

// After implements sim.Context: fn runs on a timer goroutine under the
// node's lock, unless the runtime has been closed.
func (n *nodeCtx) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.rt.schedule(d, func() {
		defer n.rt.inflight.Done()
		if n.rt.isStopped() {
			return
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		fn()
	})
}

// Attach registers the message handler for a node; a nil handler detaches
// it. Use Context for the node's execution context. Attaching mid-run is
// allowed (churn): the handler is installed under the node's lock, after
// releasing the runtime lock — handlers send while holding the node lock,
// so nesting the other way would deadlock.
func (r *Runtime) Attach(id msg.NodeID, h net.Handler) {
	r.mu.Lock()
	ctx, ok := r.nodes[id]
	if !ok {
		ctx = &nodeCtx{rt: r, id: id}
		r.nodes[id] = ctx
	}
	r.mu.Unlock()
	ctx.mu.Lock()
	ctx.h = h
	ctx.mu.Unlock()
}

// Network implements runtime.Runtime: the runtime is its own network.
func (r *Runtime) Network() net.Network { return r }

// Context returns the execution context for a node attached earlier, or a
// fresh detached one.
func (r *Runtime) Context(id msg.NodeID) sim.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ctx, ok := r.nodes[id]; ok {
		return ctx
	}
	ctx := &nodeCtx{rt: r, id: id}
	r.nodes[id] = ctx
	return ctx
}

// SetConditions overrides a node's connection quality.
func (r *Runtime) SetConditions(id msg.NodeID, c net.Conditions) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conds[id] = c
}

// SetDown marks a node as departed (true) or alive (false), preserving its
// other conditions.
func (r *Runtime) SetDown(id msg.NodeID, down bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.conds[id]
	if !ok {
		c = r.defaults
	}
	c.Down = down
	r.conds[id] = c
}

// After schedules a harness callback d from now. It runs on a timer
// goroutine outside any node's lock, unless the runtime has been closed.
func (r *Runtime) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	r.schedule(d, func() {
		defer r.inflight.Done()
		if r.isStopped() {
			return
		}
		fn()
	})
}

// Exec schedules fn to run under node id's lock, serialized with its
// message handlers and timers.
func (r *Runtime) Exec(id msg.NodeID, fn func()) {
	r.Context(id).After(0, fn)
}

// Now returns the wall-clock time elapsed since the runtime started.
func (r *Runtime) Now() time.Duration { return time.Since(r.start) }

// Run blocks until the runtime is `until` old: the live analogue of
// advancing virtual time. Message handling continues on the node goroutines
// while the caller sleeps. Cancelling ctx wakes the sleep immediately and
// returns ctx.Err(); delivery keeps running until Close.
func (r *Runtime) Run(ctx context.Context, until time.Duration) error {
	d := until - r.Now()
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runtime) conditionsOf(id msg.NodeID) net.Conditions {
	if c, ok := r.conds[id]; ok {
		return c
	}
	return r.defaults
}

func (r *Runtime) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// schedule atomically — with respect to Close — registers one in-flight
// callback AND its timer, unless the runtime has stopped (then nothing is
// scheduled and false is returned). Both steps happen under the runtime
// lock: Close flips stopped under the same lock before cancelling timers
// and waiting, so every timer either registers in time to be cancelled by
// StopAll or never registers at all — a timer slipping through the gap
// would stall Close for its full delay, and a late inflight.Add would
// race the WaitGroup contract.
func (r *Runtime) schedule(d time.Duration, fn func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false
	}
	r.inflight.Add(1)
	r.timers.AfterFunc(d, fn)
	return true
}

// Send implements net.Network. The message round-trips through the binary
// codec and is delivered on its own goroutine after the modelled latency.
func (r *Runtime) Send(from, to msg.NodeID, m msg.Message, mode net.Mode) {
	size := m.WireSize()
	if r.collector != nil {
		r.collector.OnSend(from, m, size)
	}

	encoded, err := msg.Encode(m)
	if err != nil {
		// Outbound messages are constructed by our own protocol code; an
		// encoding failure is a programming error.
		panic(fmt.Sprintf("live: encoding %T: %v", m, err))
	}

	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	src := r.conditionsOf(from)
	dst := r.conditionsOf(to)
	drop := src.Down || dst.Down || net.Partitioned(src.PartitionGroup, dst.PartitionGroup)
	if mode == net.Unreliable && !drop {
		drop = r.rand.Bernoulli(src.LossOut) || r.rand.Bernoulli(dst.LossIn)
	}
	latency := src.LatencyBase/2 + dst.LatencyBase/2
	if jitter := src.LatencyJitter/2 + dst.LatencyJitter/2; jitter > 0 {
		latency += time.Duration(r.rand.Float64() * float64(jitter))
	}
	if mode == net.Reliable {
		latency *= 3
	}
	duplicate := false
	if mode == net.Unreliable && !drop {
		if r.rand.Bernoulli(src.ReorderProb) {
			// Hold the datagram back so later sends overtake it.
			latency += src.ReorderDelay
		}
		duplicate = r.rand.Bernoulli(src.DupProb)
	}
	dstCtx := r.nodes[to]
	r.mu.Unlock()

	if drop || dstCtx == nil {
		if r.collector != nil {
			r.collector.OnDrop(m, size)
		}
		return
	}

	deliver := func() {
		defer r.inflight.Done()
		if r.isStopped() {
			return
		}
		decoded, err := msg.Decode(encoded)
		if err != nil {
			if r.collector != nil {
				r.collector.OnDrop(m, size)
			}
			return
		}
		if r.collector != nil {
			r.collector.OnDeliver(to, decoded, size)
		}
		dstCtx.mu.Lock()
		defer dstCtx.mu.Unlock()
		if dstCtx.h != nil {
			dstCtx.h.HandleMessage(from, decoded)
		}
	}
	delivered := r.schedule(latency, deliver)
	if !delivered && r.collector != nil {
		r.collector.OnDrop(m, size)
	}
	if duplicate {
		// In-network duplication: a second identical copy follows the
		// first, accounted as a send of its own so the books balance.
		if r.collector != nil {
			r.collector.OnSend(from, m, size)
		}
		if !r.schedule(latency, deliver) && r.collector != nil {
			r.collector.OnDrop(m, size)
		}
	}
}

// Close stops delivery, cancels every timer that has not fired, and waits
// for in-flight callbacks to finish. It is idempotent and safe to call from
// several goroutines: every caller returns only after the drain completes.
func (r *Runtime) Close() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	// A cancelled timer's callback never runs, so its in-flight count is
	// released here; timers caught mid-fire release their own.
	r.timers.StopAll(r.inflight.Done)
	r.inflight.Wait()
}
