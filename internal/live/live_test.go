package live

import (
	"io"
	"sync"
	"testing"
	"time"

	"lifting/internal/core"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
)

// buildLive assembles a small live system: n gossip nodes with LiFTinG
// verifiers blaming into a shared (mutex-guarded) board.
type liveWorld struct {
	rt    *Runtime
	nodes map[msg.NodeID]*gossip.Node
	board *guardedBoard
	col   *metrics.Collector
	dir   *membership.Directory
}

type guardedBoard struct {
	mu    chan struct{}
	board *reputation.Board
}

func newGuardedBoard() *guardedBoard {
	g := &guardedBoard{mu: make(chan struct{}, 1), board: reputation.NewBoard(0)}
	g.mu <- struct{}{}
	return g
}

func (g *guardedBoard) Blame(target msg.NodeID, value float64, _ msg.BlameReason) {
	<-g.mu
	g.board.AddBlame(target, value)
	g.mu <- struct{}{}
}

func (g *guardedBoard) Total(target msg.NodeID) float64 {
	<-g.mu
	defer func() { g.mu <- struct{}{} }()
	return g.board.TotalBlame(target)
}

func buildLive(t *testing.T, n int, loss float64, behaviors map[msg.NodeID]gossip.Behavior) *liveWorld {
	t.Helper()
	col := metrics.NewCollector()
	w := &liveWorld{
		rt:    NewRuntime(1, col, net.Uniform(loss, 2*time.Millisecond)),
		nodes: make(map[msg.NodeID]*gossip.Node, n),
		board: newGuardedBoard(),
		col:   col,
		dir:   membership.Sequential(n),
	}
	gcfg := gossip.Config{
		F:              6,
		Period:         50 * time.Millisecond,
		ChunkPayload:   100,
		HistoryPeriods: 50,
	}
	ccfg := core.Config{
		F:              6,
		Period:         50 * time.Millisecond,
		Pdcc:           1,
		HistoryPeriods: 50,
		Gamma:          8,
		Eta:            -1e9,
	}
	root := rng.New(9)
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		ctx := w.rt.Context(id)
		var node *gossip.Node
		deps := gossip.Deps{
			Ctx:      ctx,
			Net:      w.rt,
			Dir:      w.dir,
			Rand:     root.ForNode(uint32(i)),
			Behavior: behaviors[id],
			Metrics:  col,
		}
		node = gossip.NewNode(id, gcfg, deps)
		v := core.NewVerifier(id, ccfg, ctx, w.rt, root.ForNode(uint32(i)).Derive("v"), node.History(), behaviors[id], w.board)
		deps.Monitor = v
		deps.Aux = v
		deps.History = node.History()
		node = gossip.NewNode(id, gcfg, deps)
		w.nodes[id] = node
		w.rt.Attach(id, node)
	}
	return w
}

// inject and have access node state under the node's lock, as the runtime's
// concurrency contract requires.
func (w *liveWorld) inject(id msg.NodeID, c msg.ChunkID) {
	ctx := w.rt.nodes[id]
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	w.nodes[id].InjectChunk(c)
}

func (w *liveWorld) have(id msg.NodeID, c msg.ChunkID) bool {
	ctx := w.rt.nodes[id]
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return w.nodes[id].Have(c)
}

func (w *liveWorld) haveCount(c msg.ChunkID) int {
	got := 0
	for id := range w.nodes {
		if w.have(id, c) {
			got++
		}
	}
	return got
}

func TestLiveDissemination(t *testing.T) {
	w := buildLive(t, 16, 0, nil)
	for _, n := range w.nodes {
		n.Start()
	}
	w.inject(0, 7)
	deadline := time.After(3 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-deadline:
			w.rt.Close()
			t.Fatalf("only %d/16 nodes received the chunk before the deadline", w.haveCount(7))
		case <-tick.C:
			if w.haveCount(7) == 16 {
				w.rt.Close()
				return
			}
		}
	}
}

func TestLiveCodecExercised(t *testing.T) {
	w := buildLive(t, 8, 0, nil)
	for _, n := range w.nodes {
		n.Start()
	}
	for i := 0; i < 10; i++ {
		w.inject(0, msg.ChunkID(i))
	}
	time.Sleep(500 * time.Millisecond)
	w.rt.Close()
	// Every message crossed the codec; acks prove the verification layer
	// ran end-to-end over serialized bytes.
	if w.col.SentMsgs(msg.KindPropose) == 0 {
		t.Fatal("no proposals flowed")
	}
	if w.col.SentMsgs(msg.KindAck) == 0 {
		t.Fatal("no acks flowed through the live runtime")
	}
}

func TestLiveFreeriderBlamedMore(t *testing.T) {
	behaviors := map[msg.NodeID]gossip.Behavior{
		7: harshFreerider{},
	}
	w := buildLive(t, 8, 0, behaviors)
	for _, n := range w.nodes {
		n.Start()
	}
	// Continuous workload so verifications have material.
	stop := make(chan struct{})
	go func() {
		id := msg.ChunkID(0)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				w.inject(0, id)
				id++
			}
		}
	}()
	time.Sleep(1500 * time.Millisecond)
	close(stop)
	w.rt.Close()

	free := w.board.Total(7)
	var honestMax float64
	for i := 1; i < 7; i++ {
		if b := w.board.Total(msg.NodeID(i)); b > honestMax {
			honestMax = b
		}
	}
	if free <= honestMax {
		t.Fatalf("freerider blame %v not above honest max %v", free, honestMax)
	}
}

// harshFreerider drops half of everything it should serve and contacts
// half the partners.
type harshFreerider struct{ gossip.Honest }

func (harshFreerider) Fanout(f int) int { return f / 2 }

func (harshFreerider) FilterServe(s *rng.Stream, requested []msg.ChunkID) []msg.ChunkID {
	return requested[:len(requested)/2]
}

func TestLiveLossStillDisseminates(t *testing.T) {
	w := buildLive(t, 12, 0.05, nil)
	for _, n := range w.nodes {
		n.Start()
	}
	w.inject(0, 1)
	time.Sleep(time.Second)
	got := w.haveCount(1)
	w.rt.Close()
	if got < 10 {
		t.Fatalf("only %d/12 nodes got the chunk under 5%% loss", got)
	}
}

func TestLiveCloseStopsDelivery(t *testing.T) {
	w := buildLive(t, 4, 0, nil)
	w.rt.Close()
	// Sends after close are dropped without panicking.
	w.rt.Send(0, 1, &msg.ScoreReq{Sender: 0, Target: 1}, net.Unreliable)
	time.Sleep(20 * time.Millisecond)
	if w.col.SentMsgs(msg.KindScoreReq) == 0 {
		t.Fatal("send not recorded")
	}
	if w.have(1, 0) {
		t.Fatal("unexpected state change after close")
	}
}

func TestLiveDownNode(t *testing.T) {
	w := buildLive(t, 6, 0, nil)
	cond := net.Uniform(0, time.Millisecond)
	cond.Down = true
	w.rt.SetConditions(3, cond)
	for _, n := range w.nodes {
		n.Start()
	}
	w.inject(0, 1)
	time.Sleep(700 * time.Millisecond)
	got := w.have(3, 1)
	w.rt.Close()
	if got {
		t.Fatal("down node received the chunk")
	}
}

// TestLiveMetricsScrapeUnderRace hammers the collector's striped atomic
// counters from every node goroutine of a streaming live system while a
// scraper concurrently renders the Prometheus exposition and takes
// deterministic snapshots — the exact /metrics-under-load access pattern,
// run under -race by CI and `make race`.
func TestLiveMetricsScrapeUnderRace(t *testing.T) {
	w := buildLive(t, 8, 0.05, nil)
	reg := metrics.NewRegistry()
	w.col.Register(reg)
	for _, n := range w.nodes {
		n.Start()
	}

	stop := make(chan struct{})
	var workload sync.WaitGroup
	workload.Add(2)
	go func() { // continuous chunk stream: senders keep the counters hot
		defer workload.Done()
		id := msg.ChunkID(0)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				w.inject(0, id)
				id++
			}
		}
	}()
	go func() { // concurrent scraper: exposition + snapshot, flat out
		defer workload.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.WritePrometheus(io.Discard)
				_ = w.col.SnapshotAt(0)
			}
		}
	}()

	time.Sleep(time.Second)
	close(stop)
	workload.Wait()
	w.rt.Close()

	sent, _ := w.col.Totals(func(msg.Kind) bool { return true })
	recv := w.col.SnapshotAt(0)
	if sent == 0 {
		t.Fatal("no traffic flowed")
	}
	if recv.UsefulChunks == 0 {
		t.Fatal("no chunks delivered while scraping")
	}
	// Conservation bound: each send is delivered or dropped at most once
	// (messages still in flight when Close cancels their timers are the
	// only ones unaccounted, so ≤ rather than =; the lossless sim backend
	// pins the exact equality).
	var sentN, recvN, dropN uint64
	for k := msg.Kind(1); k <= msg.KindAuditPollResp; k++ {
		sentN += w.col.SentMsgs(k)
		recvN += w.col.RecvMsgs(k)
		dropN += w.col.Dropped(k)
	}
	if recvN+dropN > sentN {
		t.Fatalf("conservation broke: sent %d, delivered %d + dropped %d", sentN, recvN, dropN)
	}
	if dropN == 0 {
		t.Fatal("5% loss produced no recorded drops")
	}
}
