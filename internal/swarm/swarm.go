// Package swarm implements the paper's stated future work (§1, §9):
// coupling LiFTinG with a symmetric, tit-for-tat content exchange to secure
// its opportunistic-unchoking mechanism.
//
// In TfT swarming (BitTorrent-style), reciprocal slots are safe — a node
// that does not upload is choked — but the *optimistic* slot is an
// asymmetric gift: it uploads to a random peer expecting nothing back.
// Freeriders exploit exactly this ([23, 24]: "free riding in BitTorrent is
// cheap"): by camping optimistic slots across many neighbours they download
// without contributing.
//
// LiFTinG's coercive verification transfers directly: an optimistic push
// creates the same obligation as a gossip push — the receiver must OFFER
// the received pieces onward (in gossip terms: propose them; if nobody
// requests, no upload is owed — a topological laggard is not a freerider).
// The pusher later polls a random sample of the receiver's neighbours for
// the offers they saw from it (cross-checking by testimony, random
// witnesses preventing cover-up) and blames silent receivers. Blamed nodes
// lose optimistic eligibility, which collapses the exploit.
//
// The exchange is modelled in rounds (a choke interval per round) rather
// than packets: the phenomenon under study is slot allocation, not
// transport.
package swarm

import (
	"fmt"
	"sort"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// Config parameterizes the swarm.
type Config struct {
	// Pieces is the number of pieces in the content.
	Pieces int
	// Neighbors is each node's neighbourhood size.
	Neighbors int
	// ReciprocalSlots is the number of TfT upload slots.
	ReciprocalSlots int
	// OptimisticSlots is the number of optimistic-unchoke slots.
	OptimisticSlots int
	// UploadPerSlot is the pieces a slot transfers per round.
	UploadPerSlot int
	// Window is the reciprocation-ranking window, in rounds.
	Window int
	// Guard enables the LiFTinG verification of optimistic pushes.
	Guard GuardConfig
}

// GuardConfig tunes the LiFTinG guard on optimistic slots.
type GuardConfig struct {
	// Enabled turns the guard on.
	Enabled bool
	// Witnesses is how many of the receiver's neighbours are polled.
	Witnesses int
	// Lag is how many rounds after a push the obligation is checked.
	Lag int
	// MinForwardRatio is the fraction of the pushed pieces the receiver
	// must have uploaded (to anyone) by the check.
	MinForwardRatio float64
	// MaxBlame is the accumulated-blame threshold beyond which a node
	// loses optimistic eligibility (the swarm-side analogue of crossing η).
	MaxBlame float64
	// Decay is the per-round multiplicative blame decay. Bootstrap-phase
	// wrongful blame (a freshly joined node may genuinely have nothing to
	// forward) must heal with time, just as LiFTinG normalizes scores by
	// the time spent in the system; a leech accrues faster than it decays.
	Decay float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Pieces <= 0 || c.Neighbors <= 0 || c.UploadPerSlot <= 0 || c.Window <= 0 {
		return fmt.Errorf("swarm: non-positive sizes in %+v", c)
	}
	if c.ReciprocalSlots < 0 || c.OptimisticSlots <= 0 {
		return fmt.Errorf("swarm: need at least one optimistic slot")
	}
	return nil
}

// DefaultConfig returns a small, BitTorrent-flavoured setup.
func DefaultConfig() Config {
	return Config{
		Pieces:          400,
		Neighbors:       12,
		ReciprocalSlots: 3,
		OptimisticSlots: 1,
		UploadPerSlot:   2,
		Window:          8,
		Guard: GuardConfig{
			Witnesses:       8,
			Lag:             6,
			MinForwardRatio: 0.2,
			MaxBlame:        25,
			Decay:           0.98,
		},
	}
}

// Behavior is a node's upload policy.
type Behavior int

// Behaviors.
const (
	// Honest reciprocates and fills every slot.
	Honest Behavior = iota + 1
	// Leech uploads nothing and lives off optimistic slots (the large-view
	// exploit of [24]).
	Leech
)

type node struct {
	id       msg.NodeID
	behavior Behavior
	have     []bool
	haveN    int
	// receivedFrom / uploadedTo / offersSeen are windowed ledgers (per
	// round ring). offersSeen records how many pieces each neighbour
	// advertised to this node — the witness evidence of the guard.
	receivedFrom  []map[msg.NodeID]int
	uploadedTo    []map[msg.NodeID]int
	offersSeen    []map[msg.NodeID]int
	recvLastRound int
	neighbors     []msg.NodeID
	// blame is the node's accumulated LiFTinG blame (guard mode); banned
	// latches once blame crosses the threshold (LiFTinG expels, §5).
	blame    float64
	banned   bool
	lastFail int // round of the last failed obligation check
	// pushLog records optimistic pushes received: round → pieces.
	pushLog map[int]int
}

func (n *node) window(cfg Config, round int) (recv, sent map[msg.NodeID]int) {
	recv = make(map[msg.NodeID]int)
	sent = make(map[msg.NodeID]int)
	for i := 0; i < cfg.Window; i++ {
		idx := (round - i + len(n.receivedFrom)*cfg.Window) % cfg.Window
		//lint:allow ordered-map-range commutative integer sums into a map; no order escapes
		for p, v := range n.receivedFrom[idx] {
			recv[p] += v
		}
		//lint:allow ordered-map-range commutative integer sums into a map; no order escapes
		for p, v := range n.uploadedTo[idx] {
			sent[p] += v
		}
	}
	return recv, sent
}

// offersFrom sums the offers this node saw from peer over the window.
func (n *node) offersFrom(cfg Config, peer msg.NodeID) int {
	total := 0
	for i := 0; i < cfg.Window; i++ {
		total += n.offersSeen[i][peer]
	}
	return total
}

// Swarm is a round-based symmetric exchange simulation.
type Swarm struct {
	cfg   Config
	rand  *rng.Stream
	nodes map[msg.NodeID]*node
	order []msg.NodeID
	round int
	// pending guard checks: (checkRound, receiver, pieces pushed).
	checks []guardCheck
}

type guardCheck struct {
	due      int
	pusher   msg.NodeID
	receiver msg.NodeID
	pieces   int
}

// New creates a swarm of n nodes; behaviorFor assigns policies (nil means
// Honest). Node 0 is the seed: it starts with the full content and is
// always honest.
func New(nTotal int, cfg Config, seed uint64, behaviorFor func(msg.NodeID) Behavior) *Swarm {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Swarm{
		cfg:   cfg,
		rand:  rng.New(seed),
		nodes: make(map[msg.NodeID]*node, nTotal),
	}
	for i := 0; i < nTotal; i++ {
		id := msg.NodeID(i)
		b := Honest
		if behaviorFor != nil && i != 0 {
			if bb := behaviorFor(id); bb != 0 {
				b = bb
			}
		}
		nd := &node{
			id:           id,
			behavior:     b,
			have:         make([]bool, cfg.Pieces),
			receivedFrom: ledger(cfg.Window),
			uploadedTo:   ledger(cfg.Window),
			offersSeen:   ledger(cfg.Window),
			pushLog:      make(map[int]int),
		}
		if i == 0 {
			for p := range nd.have {
				nd.have[p] = true
			}
			nd.haveN = cfg.Pieces
		}
		s.nodes[id] = nd
		s.order = append(s.order, id)
	}
	// Random (symmetric) neighbourhoods.
	for _, id := range s.order {
		nd := s.nodes[id]
		for len(nd.neighbors) < cfg.Neighbors {
			cand := s.order[s.rand.IntN(nTotal)]
			if cand == id || contains(nd.neighbors, cand) {
				continue
			}
			other := s.nodes[cand]
			if len(other.neighbors) >= cfg.Neighbors*2 {
				continue
			}
			nd.neighbors = append(nd.neighbors, cand)
			if !contains(other.neighbors, id) {
				other.neighbors = append(other.neighbors, id)
			}
		}
	}
	return s
}

func ledger(window int) []map[msg.NodeID]int {
	out := make([]map[msg.NodeID]int, window)
	for i := range out {
		out[i] = make(map[msg.NodeID]int)
	}
	return out
}

func contains(xs []msg.NodeID, v msg.NodeID) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Round runs one choke interval: slot selection, transfers, guard checks.
func (s *Swarm) Round() {
	s.round++
	slot := s.round % s.cfg.Window
	for _, id := range s.order {
		nd := s.nodes[id]
		nd.receivedFrom[slot] = make(map[msg.NodeID]int)
		nd.uploadedTo[slot] = make(map[msg.NodeID]int)
		nd.offersSeen[slot] = make(map[msg.NodeID]int)
	}

	// Advertise: honest nodes offer the pieces they received last round to
	// every neighbour (the propose phase of the gossip analogy). Leeches
	// stay silent — advertising would invite requests they refuse to serve,
	// and an unserved request is direct-verification blame anyway.
	for _, id := range s.order {
		nd := s.nodes[id]
		if nd.behavior == Leech || nd.recvLastRound == 0 {
			continue
		}
		for _, w := range nd.neighbors {
			s.nodes[w].offersSeen[slot][id] += nd.recvLastRound
		}
	}
	for _, id := range s.order {
		s.nodes[id].recvLastRound = 0
	}

	for _, id := range s.order {
		s.runNode(s.nodes[id], slot)
	}
	s.runGuardChecks()
	if s.cfg.Guard.Enabled && s.cfg.Guard.Decay > 0 {
		for _, id := range s.order {
			s.nodes[id].blame *= s.cfg.Guard.Decay
		}
	}
}

func (s *Swarm) runNode(nd *node, slot int) {
	if nd.behavior == Leech {
		return // uploads nothing, ever
	}
	recv, _ := nd.window(s.cfg, slot)

	// Reciprocal slots: the top uploaders to us, among interested
	// neighbours.
	type ranked struct {
		id msg.NodeID
		by int
	}
	var candidates []ranked
	for _, p := range nd.neighbors {
		if s.interested(p, nd) {
			candidates = append(candidates, ranked{id: p, by: recv[p]})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].by != candidates[j].by {
			return candidates[i].by > candidates[j].by
		}
		return candidates[i].id < candidates[j].id
	})
	// Tit-for-tat proper: reciprocal slots go only to peers that actually
	// uploaded to us in the window. Zero-contributors can only hope for an
	// optimistic slot — that is the entire point of TfT, and what makes the
	// optimistic slot the sole attack surface (§1).
	unchoked := make(map[msg.NodeID]bool)
	for i := 0; i < len(candidates) && len(unchoked) < s.cfg.ReciprocalSlots; i++ {
		if candidates[i].by == 0 {
			break
		}
		unchoked[candidates[i].id] = true
	}

	// Optimistic slots: uniform random among the remaining interested
	// neighbours — excluding, under the guard, peers whose blame crossed η.
	var optPool []msg.NodeID
	for _, c := range candidates {
		if unchoked[c.id] {
			continue
		}
		if s.cfg.Guard.Enabled && s.nodes[c.id].banned {
			continue
		}
		optPool = append(optPool, c.id)
	}
	for i := 0; i < s.cfg.OptimisticSlots && len(optPool) > 0; i++ {
		k := s.rand.IntN(len(optPool))
		peer := optPool[k]
		optPool = append(optPool[:k], optPool[k+1:]...)
		moved := s.transfer(nd, s.nodes[peer], slot)
		if moved > 0 && s.cfg.Guard.Enabled {
			s.nodes[peer].pushLog[s.round] += moved
			s.checks = append(s.checks, guardCheck{
				due:      s.round + s.cfg.Guard.Lag,
				pusher:   nd.id,
				receiver: peer,
				pieces:   moved,
			})
		}
	}
	// Serve reciprocal slots in rank order (deterministic).
	for i := 0; i < len(candidates); i++ {
		if unchoked[candidates[i].id] {
			s.transfer(nd, s.nodes[candidates[i].id], slot)
		}
	}
}

// interested reports whether p wants pieces nd has.
func (s *Swarm) interested(p msg.NodeID, nd *node) bool {
	other := s.nodes[p]
	return other.haveN < s.cfg.Pieces
}

// transfer moves up to UploadPerSlot needed pieces from src to dst. Pieces
// are probed from a random offset (the round-based analogue of BitTorrent's
// random-first/rarest-first selection): sequential selection would leave
// every node holding a prefix of its neighbours' pieces, killing
// reciprocation.
func (s *Swarm) transfer(src, dst *node, slot int) int {
	moved := 0
	start := s.rand.IntN(s.cfg.Pieces)
	for i := 0; i < s.cfg.Pieces && moved < s.cfg.UploadPerSlot; i++ {
		p := (start + i) % s.cfg.Pieces
		if src.have[p] && !dst.have[p] {
			dst.have[p] = true
			dst.haveN++
			moved++
		}
	}
	if moved > 0 {
		dst.receivedFrom[slot][src.id] += moved
		src.uploadedTo[slot][dst.id] += moved
		dst.recvLastRound += moved
	}
	return moved
}

// runGuardChecks performs due obligations: the pusher polls a sample of the
// receiver's neighbours for the bytes the receiver uploaded to them since
// the push; too little onward contribution earns blame proportional to the
// gift, exactly LiFTinG's "pushes must be paid forward" principle.
func (s *Swarm) runGuardChecks() {
	if !s.cfg.Guard.Enabled {
		s.checks = nil
		return
	}
	live := s.checks[:0]
	for _, chk := range s.checks {
		if chk.due > s.round {
			live = append(live, chk)
			continue
		}
		receiver := s.nodes[chk.receiver]
		witnesses := s.sampleNeighbors(receiver, s.cfg.Guard.Witnesses)
		reported := 0
		for _, w := range witnesses {
			reported += s.nodes[w].offersFrom(s.cfg, chk.receiver)
		}
		// Offers go to every neighbour, so any single truthful witness
		// suffices; no sample scaling is needed.
		if float64(reported) < s.cfg.Guard.MinForwardRatio*float64(chk.pieces) {
			// Blame only repeated failures: a single missed obligation can
			// be sampling noise or a node with momentarily nothing to
			// offer; a leech fails every check.
			if s.round-receiver.lastFail <= 3*s.cfg.Guard.Lag {
				receiver.blame += float64(chk.pieces)
				if receiver.blame > s.cfg.Guard.MaxBlame {
					receiver.banned = true
				}
			}
			receiver.lastFail = s.round
		}
	}
	s.checks = live
}

func (s *Swarm) sampleNeighbors(nd *node, k int) []msg.NodeID {
	if k > len(nd.neighbors) {
		k = len(nd.neighbors)
	}
	if k <= 0 {
		return nil
	}
	return rng.SampleKFrom(s.rand, nd.neighbors, k)
}

// Run executes rounds rounds.
func (s *Swarm) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		s.Round()
	}
}

// Progress returns the fraction of the content node id holds.
func (s *Swarm) Progress(id msg.NodeID) float64 {
	nd := s.nodes[id]
	return float64(nd.haveN) / float64(s.cfg.Pieces)
}

// Blame returns the accumulated guard blame of id.
func (s *Swarm) Blame(id msg.NodeID) float64 { return s.nodes[id].blame }

// Banned reports whether id has lost optimistic eligibility for good.
func (s *Swarm) Banned(id msg.NodeID) bool { return s.nodes[id].banned }

// Stats aggregates progress for a predicate-selected population.
type Stats struct {
	Mean float64
	Min  float64
	N    int
}

// ProgressStats summarizes progress over nodes matching keep.
func (s *Swarm) ProgressStats(keep func(msg.NodeID) bool) Stats {
	st := Stats{Min: 1}
	var sum float64
	for _, id := range s.order {
		if id == 0 || !keep(id) {
			continue
		}
		p := s.Progress(id)
		sum += p
		if p < st.Min {
			st.Min = p
		}
		st.N++
	}
	if st.N > 0 {
		st.Mean = sum / float64(st.N)
	}
	return st
}
