package swarm

import (
	"testing"

	"lifting/internal/msg"
)

func leechesAbove(n, firstLeech int) func(msg.NodeID) Behavior {
	return func(id msg.NodeID) Behavior {
		if int(id) >= firstLeech {
			return Leech
		}
		return Honest
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.OptimisticSlots = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero optimistic slots accepted")
	}
	bad = DefaultConfig()
	bad.Pieces = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero pieces accepted")
	}
}

func TestHonestSwarmCompletes(t *testing.T) {
	s := New(40, DefaultConfig(), 1, nil)
	s.Run(600)
	st := s.ProgressStats(func(msg.NodeID) bool { return true })
	if st.Mean < 0.99 {
		t.Fatalf("honest swarm mean progress = %v, want ≈1", st.Mean)
	}
	if st.Min < 0.95 {
		t.Fatalf("honest swarm min progress = %v", st.Min)
	}
}

func TestLeechExploitsOptimisticSlots(t *testing.T) {
	// The large-view exploit: without the guard, leeches still make solid
	// progress riding optimistic slots ("free riding in BitTorrent is
	// cheap", [23, 24]).
	cfg := DefaultConfig()
	cfg.Guard.Enabled = false
	s := New(40, cfg, 2, leechesAbove(40, 32))
	s.Run(600)
	leeches := s.ProgressStats(func(id msg.NodeID) bool { return id >= 32 })
	honest := s.ProgressStats(func(id msg.NodeID) bool { return id < 32 })
	if leeches.Mean < 0.5 {
		t.Fatalf("unguarded leech progress = %v — exploit should be cheap", leeches.Mean)
	}
	if honest.Mean < 0.9 {
		t.Fatalf("honest progress = %v", honest.Mean)
	}
}

func TestGuardCollapsesTheExploit(t *testing.T) {
	// Same swarm, guard on: leeches are blamed for unpaid gifts and lose
	// optimistic eligibility; their progress collapses while honest nodes
	// are unharmed.
	run := func(guard bool) (leech, honest Stats) {
		cfg := DefaultConfig()
		cfg.Guard.Enabled = guard
		s := New(40, cfg, 2, leechesAbove(40, 32))
		s.Run(600)
		return s.ProgressStats(func(id msg.NodeID) bool { return id >= 32 }),
			s.ProgressStats(func(id msg.NodeID) bool { return id < 32 })
	}
	leechOff, honestOff := run(false)
	leechOn, honestOn := run(true)

	if leechOn.Mean > leechOff.Mean/2 {
		t.Fatalf("guard did not collapse the exploit: %v (guarded) vs %v (unguarded)",
			leechOn.Mean, leechOff.Mean)
	}
	if honestOn.Mean < honestOff.Mean-0.05 {
		t.Fatalf("guard hurt honest nodes: %v vs %v", honestOn.Mean, honestOff.Mean)
	}
}

func TestGuardBansLeechesNotHonest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Guard.Enabled = true
	s := New(40, cfg, 3, leechesAbove(40, 34))
	s.Run(300)
	for i := 1; i < 40; i++ {
		banned := s.Banned(msg.NodeID(i))
		if i >= 34 && !banned {
			t.Fatalf("leech %d escaped the ban", i)
		}
		if i < 34 && banned {
			t.Fatalf("honest node %d wrongfully banned", i)
		}
	}
}

func TestReciprocityRewardsUploaders(t *testing.T) {
	// With the guard on, an honest node's download comes mostly through
	// reciprocal slots; a leech's only through (eventually closed)
	// optimistic ones — so honest progress must dominate early too.
	cfg := DefaultConfig()
	cfg.Guard.Enabled = true
	s := New(40, cfg, 4, leechesAbove(40, 34))
	s.Run(120)
	leeches := s.ProgressStats(func(id msg.NodeID) bool { return id >= 34 })
	honest := s.ProgressStats(func(id msg.NodeID) bool { return id < 34 })
	if honest.Mean <= leeches.Mean {
		t.Fatalf("honest progress %v not above leech progress %v", honest.Mean, leeches.Mean)
	}
}

func TestDeterministicSwarm(t *testing.T) {
	runOnce := func() float64 {
		s := New(30, DefaultConfig(), 9, leechesAbove(30, 26))
		s.Run(200)
		var sum float64
		for i := 1; i < 30; i++ {
			sum += s.Progress(msg.NodeID(i))
		}
		return sum
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("identical swarm runs diverged: %v vs %v", a, b)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(10, Config{}, 1, nil)
}
