package stats

import (
	"math/rand"
	"testing"
)

// faninCounts is a histogram shape for which the naive (unsorted) float fold
// provably diverges under permutation: summing -q·log2(q) over these counts
// forward vs. over a shuffle differs in the last ulp. Regression for the
// Multiset.Entropy determinism bug: counts were collected in map iteration
// order, which Go randomizes per range loop, so the same multiset could
// return different float64 entropies on consecutive calls.
var faninCounts = []int{
	96, 45, 31, 38, 59, 40, 81, 81, 68, 80, 52, 30, 6, 5, 40, 94,
	95, 18, 48, 61, 69, 46, 68, 22, 84, 45, 91, 62, 26, 25, 15, 78,
	93, 70, 29, 51, 48, 94, 63, 40, 30, 84, 10, 41, 68, 81,
}

// TestEntropyOfCountsPermutationInvariant pins the bit-exactness contract:
// EntropyOfCounts must return the identical float64 for every permutation of
// its input, because multiset callers assemble the slice in nondeterministic
// map order.
func TestEntropyOfCountsPermutationInvariant(t *testing.T) {
	ref := EntropyOfCounts(faninCounts)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := append([]int(nil), faninCounts...)
		r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		if got := EntropyOfCounts(p); got != ref {
			t.Fatalf("trial %d: EntropyOfCounts permuted = %.17g, want %.17g (diff %g)",
				trial, got, ref, got-ref)
		}
	}
}

// TestEntropyOfCountsDoesNotMutateInput guards the defensive copy: the fold
// sorts internally, but the caller's slice must come back untouched.
func TestEntropyOfCountsDoesNotMutateInput(t *testing.T) {
	in := []int{5, 1, 3, 2}
	EntropyOfCounts(in)
	for i, want := range []int{5, 1, 3, 2} {
		if in[i] != want {
			t.Fatalf("EntropyOfCounts mutated its input: %v", in)
		}
	}
}

// TestMultisetEntropyStableAcrossCalls is the end-to-end regression: a
// multiset whose count histogram has an order-sensitive fold must report the
// identical entropy on every call, even though each call ranges its internal
// map in a fresh randomized order.
func TestMultisetEntropyStableAcrossCalls(t *testing.T) {
	m := NewMultiset[int]()
	for elem, c := range faninCounts {
		m.AddN(elem, c)
	}
	ref := m.Entropy()
	for call := 0; call < 100; call++ {
		if got := m.Entropy(); got != ref {
			t.Fatalf("call %d: Entropy() = %.17g, want %.17g (map-order-dependent fold)",
				call, got, ref)
		}
	}
}
