package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEntropyUniform(t *testing.T) {
	for _, k := range []int{2, 4, 8, 600} {
		probs := make([]float64, k)
		for i := range probs {
			probs[i] = 1
		}
		h := Entropy(probs)
		if !almostEqual(h, math.Log2(float64(k)), 1e-9) {
			t.Errorf("Entropy(uniform %d) = %v, want %v", k, h, math.Log2(float64(k)))
		}
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Fatalf("Entropy(point mass) = %v, want 0", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Fatalf("Entropy(nil) = %v, want 0", h)
	}
	if h := Entropy([]float64{0, 0}); h != 0 {
		t.Fatalf("Entropy(zeros) = %v, want 0", h)
	}
	if !math.IsNaN(Entropy([]float64{-1, 2})) {
		t.Fatal("Entropy with negative mass should be NaN")
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	// 0 <= H <= log2(k) for any distribution over k outcomes.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		probs := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			probs[i] = float64(r)
			total += probs[i]
		}
		if total == 0 {
			return Entropy(probs) == 0
		}
		h := Entropy(probs)
		return h >= -1e-12 && h <= math.Log2(float64(len(raw)))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyOfCountsMatchesEntropy(t *testing.T) {
	counts := []int{3, 1, 0, 4}
	probs := []float64{3, 1, 0, 4}
	if !almostEqual(EntropyOfCounts(counts), Entropy(probs), 1e-12) {
		t.Fatal("EntropyOfCounts disagrees with Entropy")
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log2(0.5/0.25) + 0.5*math.Log2(0.5/0.75)
	if got := KLDivergence(p, q); !almostEqual(got, want, 1e-12) {
		t.Fatalf("KL = %v, want %v", got, want)
	}
	if got := KLDivergence(p, p); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("KL(p,p) = %v, want 0", got)
	}
	if !math.IsInf(KLDivergence([]float64{1, 0}, []float64{0, 1}), 1) {
		t.Fatal("KL with unsupported mass should be +Inf")
	}
	if !math.IsNaN(KLDivergence([]float64{1}, []float64{1, 0})) {
		t.Fatal("KL with mismatched lengths should be NaN")
	}
}

func TestUniformKLIdentity(t *testing.T) {
	// D(p ‖ uniform) == log2(k) − H(p), the identity behind the paper's
	// entropy-threshold audit.
	p := []float64{0.1, 0.2, 0.3, 0.4}
	u := []float64{1, 1, 1, 1}
	direct := KLDivergence(p, u)
	viaEntropy := UniformKLFromEntropy(Entropy(p), 4)
	if !almostEqual(direct, viaEntropy, 1e-12) {
		t.Fatalf("KL from uniform = %v, via entropy = %v", direct, viaEntropy)
	}
}

func TestMoments(t *testing.T) {
	var m Moments
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		m.Add(x)
	}
	if m.N() != len(xs) {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEqual(m.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m.Mean())
	}
	if !almostEqual(m.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", m.Std())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", m.Min(), m.Max())
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Var() != 0 || m.Std() != 0 {
		t.Fatal("empty Moments should report zeros")
	}
}

func TestMomentsMatchesBatch(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var m Moments
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			m.Add(xs[i])
		}
		return almostEqual(m.Mean(), Mean(xs), 1e-9) && almostEqual(m.Std(), Std(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1}}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 4 || e.N() != 4 {
		t.Fatal("ECDF Min/Max/N wrong")
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Fatalf("Quantile(0.5) = %v, want 3", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", q)
	}
	if q := e.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", q)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []int8, probes []int8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		e := NewECDF(xs)
		prev := -1.0
		for _, pr := range probes {
			// probe in increasing order
			_ = pr
		}
		for x := -130.0; x <= 130; x += 5 {
			v := e.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Counts[i])
		}
	}
	h.Add(-5)  // clamps into first bin
	h.Add(100) // clamps into last bin
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatal("out-of-range samples were not clamped")
	}
	if h.Total() != 12 {
		t.Fatalf("Total = %d, want 12", h.Total())
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almostEqual(h.Fraction(0), 2.0/12, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(2.5)
	h.Add(2.2)
	h.Add(0.1)
	if m := h.Mode(); !almostEqual(m, 2.5, 1e-12) {
		t.Fatalf("Mode = %v, want 2.5", m)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with hi <= lo did not panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestChiSquareUniform(t *testing.T) {
	if chi := ChiSquareUniform([]int{10, 10, 10, 10}); chi != 0 {
		t.Fatalf("chi-square of exactly uniform counts = %v, want 0", chi)
	}
	if chi := ChiSquareUniform([]int{40, 0, 0, 0}); chi <= 0 {
		t.Fatal("chi-square of a point mass should be positive")
	}
	if chi := ChiSquareUniform(nil); chi != 0 {
		t.Fatal("chi-square of empty input should be 0")
	}
}

func TestMaxEntropy(t *testing.T) {
	if MaxEntropy(1) != 0 || MaxEntropy(0) != 0 {
		t.Fatal("MaxEntropy of degenerate sizes should be 0")
	}
	// The paper's bound for a history of nh·f = 600 entries: log2(600) = 9.23.
	if !almostEqual(MaxEntropy(600), 9.2288, 1e-3) {
		t.Fatalf("MaxEntropy(600) = %v, want ~9.23 (paper §6.3.2)", MaxEntropy(600))
	}
}
