// Package stats provides the statistical toolkit used by LiFTinG's
// entropy-based audits (§5.3 of the paper) and by the experiment harness:
// Shannon entropy, Kullback-Leibler divergence, multisets, histograms,
// empirical CDFs and streaming moments.
package stats

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy, in bits, of the distribution given by
// probs. Entries that are zero contribute nothing (0·log 0 = 0 by
// convention). The input need not be normalized: values are divided by their
// sum. Entropy returns 0 for an empty or all-zero input.
func Entropy(probs []float64) float64 {
	var total float64
	for _, p := range probs {
		if p < 0 {
			return math.NaN()
		}
		total += p
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, p := range probs {
		if p == 0 {
			continue
		}
		q := p / total
		h -= q * math.Log2(q)
	}
	return h
}

// EntropyOfCounts returns the Shannon entropy, in bits, of the empirical
// distribution given by integer counts.
//
// The result is invariant under permutation of counts: the fold runs over a
// sorted copy, so callers that collect counts from a map (randomized
// iteration order) get bit-identical results on every call. Float addition
// is not associative — folding the same terms in two different orders can
// differ in the last ulp, which is enough to break the byte-identical
// document contract when the value reaches a table or a JSON field.
func EntropyOfCounts(counts []int) float64 {
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Ints(sorted)
	var total float64
	for _, c := range sorted {
		if c < 0 {
			return math.NaN()
		}
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range sorted {
		if c == 0 {
			continue
		}
		q := float64(c) / total
		h -= q * math.Log2(q)
	}
	return h
}

// MaxEntropy returns log2(k), the maximum entropy of a distribution over k
// outcomes (the paper's bound log2(nh·f) for a history of nh·f entries all
// distinct). It returns 0 for k <= 1.
func MaxEntropy(k int) float64 {
	if k <= 1 {
		return 0
	}
	return math.Log2(float64(k))
}

// KLDivergence returns the Kullback-Leibler divergence D(p‖q) in bits.
// Inputs are normalized first. The result is +Inf if p has mass where q has
// none, and NaN if the inputs differ in length or are not distributions.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		return math.NaN()
	}
	var sp, sq float64
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return math.NaN()
		}
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return math.NaN()
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		pi := p[i] / sp
		qi := q[i] / sq
		if qi == 0 {
			return math.Inf(1)
		}
		d += pi * math.Log2(pi/qi)
	}
	return d
}

// UniformKLFromEntropy returns D(p‖uniform_k) = log2(k) − H(p), the KL
// divergence of a distribution over k outcomes from the uniform one, given
// its entropy. This is the identity the paper invokes when it reduces the
// uniformity check to an entropy threshold (§5.3).
func UniformKLFromEntropy(entropy float64, k int) float64 {
	return MaxEntropy(k) - entropy
}

// Moments accumulates streaming mean/variance using Welford's algorithm.
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples added.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean (0 if empty).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance (0 if fewer than two samples).
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVar returns the unbiased sample variance (0 if fewer than two samples).
func (m *Moments) SampleVar() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest sample (0 if empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest sample (0 if empty).
func (m *Moments) Max() float64 { return m.max }

// ECDF is an empirical cumulative distribution function over a fixed sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples.
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1].
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(q * float64(len(e.sorted)))
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// Min returns the smallest sample.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest sample.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Histogram is a fixed-width binned histogram over [Lo, Hi). Samples outside
// the range are clamped into the first/last bin so no mass is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
// It panics if hi <= lo or bins <= 0.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic("stats: NewHistogram: invalid bounds or bins")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add incorporates x.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// ChiSquareUniform returns the chi-square statistic of counts against the
// uniform distribution over len(counts) categories. Large values indicate
// non-uniformity; the degrees of freedom are len(counts)−1.
func ChiSquareUniform(counts []int) float64 {
	k := len(counts)
	if k == 0 {
		return 0
	}
	var n float64
	for _, c := range counts {
		n += float64(c)
	}
	if n == 0 {
		return 0
	}
	expected := n / float64(k)
	var chi float64
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
