package stats

// Multiset is a counted set over a comparable element type. LiFTinG's local
// history auditing (§5.3) operates on two multisets per node: Fh, the nodes
// the audited node proposed to, and F'h, the nodes that served it (fanin).
type Multiset[T comparable] struct {
	counts map[T]int
	size   int
}

// NewMultiset returns an empty multiset.
func NewMultiset[T comparable]() *Multiset[T] {
	return &Multiset[T]{counts: make(map[T]int)}
}

// Add inserts one occurrence of v.
func (m *Multiset[T]) Add(v T) { m.AddN(v, 1) }

// AddN inserts n occurrences of v. It panics if n < 0.
func (m *Multiset[T]) AddN(v T, n int) {
	if n < 0 {
		panic("stats: Multiset.AddN: negative count")
	}
	if n == 0 {
		return
	}
	m.counts[v] += n
	m.size += n
}

// Remove deletes one occurrence of v if present and reports whether it did.
func (m *Multiset[T]) Remove(v T) bool {
	c, ok := m.counts[v]
	if !ok {
		return false
	}
	if c == 1 {
		delete(m.counts, v)
	} else {
		m.counts[v] = c - 1
	}
	m.size--
	return true
}

// Count returns the number of occurrences of v.
func (m *Multiset[T]) Count(v T) int { return m.counts[v] }

// Len returns the total number of occurrences.
func (m *Multiset[T]) Len() int { return m.size }

// Distinct returns the number of distinct elements.
func (m *Multiset[T]) Distinct() int { return len(m.counts) }

// Entropy returns the Shannon entropy, in bits, of the empirical
// distribution of elements. This is H(d̃h) of Equation (1) in the paper.
func (m *Multiset[T]) Entropy() float64 {
	if m.size == 0 {
		return 0
	}
	counts := make([]int, 0, len(m.counts))
	//lint:allow ordered-map-range EntropyOfCounts sorts the counts, so the fold is permutation-invariant
	for _, c := range m.counts {
		counts = append(counts, c)
	}
	return EntropyOfCounts(counts)
}

// Each calls fn for every distinct element with its count. Iteration order
// is unspecified.
func (m *Multiset[T]) Each(fn func(v T, count int)) {
	//lint:allow ordered-map-range order is the documented contract; callers must canonicalize
	for v, c := range m.counts {
		fn(v, c)
	}
}

// Elements returns all occurrences as a slice (each element repeated by its
// count). Order is unspecified.
func (m *Multiset[T]) Elements() []T {
	out := make([]T, 0, m.size)
	//lint:allow ordered-map-range order is the documented contract; callers must canonicalize
	for v, c := range m.counts {
		for i := 0; i < c; i++ {
			out = append(out, v)
		}
	}
	return out
}

// Merge adds every occurrence in other into m.
func (m *Multiset[T]) Merge(other *Multiset[T]) {
	other.Each(func(v T, c int) { m.AddN(v, c) })
}

// Clone returns a deep copy.
func (m *Multiset[T]) Clone() *Multiset[T] {
	out := NewMultiset[T]()
	out.Merge(m)
	return out
}
