package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultisetBasics(t *testing.T) {
	m := NewMultiset[string]()
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Fatal("new multiset not empty")
	}
	m.Add("a")
	m.Add("a")
	m.Add("b")
	if m.Count("a") != 2 || m.Count("b") != 1 || m.Count("c") != 0 {
		t.Fatal("counts wrong")
	}
	if m.Len() != 3 || m.Distinct() != 2 {
		t.Fatalf("Len/Distinct = %d/%d, want 3/2", m.Len(), m.Distinct())
	}
}

func TestMultisetRemove(t *testing.T) {
	m := NewMultiset[int]()
	m.AddN(7, 2)
	if !m.Remove(7) {
		t.Fatal("Remove existing element returned false")
	}
	if m.Count(7) != 1 || m.Len() != 1 {
		t.Fatal("count after remove wrong")
	}
	if !m.Remove(7) {
		t.Fatal("Remove second occurrence returned false")
	}
	if m.Remove(7) {
		t.Fatal("Remove missing element returned true")
	}
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Fatal("multiset not empty after removals")
	}
}

func TestMultisetAddNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddN(-1) did not panic")
		}
	}()
	NewMultiset[int]().AddN(1, -1)
}

func TestMultisetEntropyUniform(t *testing.T) {
	m := NewMultiset[int]()
	for i := 0; i < 64; i++ {
		m.Add(i)
	}
	if h := m.Entropy(); math.Abs(h-6) > 1e-12 {
		t.Fatalf("entropy of 64 distinct singletons = %v, want 6", h)
	}
}

func TestMultisetEntropyPointMass(t *testing.T) {
	m := NewMultiset[int]()
	m.AddN(1, 100)
	if h := m.Entropy(); h != 0 {
		t.Fatalf("entropy of a point mass = %v, want 0", h)
	}
	if h := NewMultiset[int]().Entropy(); h != 0 {
		t.Fatalf("entropy of empty multiset = %v, want 0", h)
	}
}

func TestMultisetEntropyBoundProperty(t *testing.T) {
	// Entropy of any multiset is within [0, log2(distinct)].
	f := func(raw []uint8) bool {
		m := NewMultiset[uint8]()
		for _, v := range raw {
			m.Add(v)
		}
		h := m.Entropy()
		if m.Len() == 0 {
			return h == 0
		}
		return h >= -1e-12 && h <= math.Log2(float64(m.Distinct()))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMultisetElementsAndMerge(t *testing.T) {
	m := NewMultiset[string]()
	m.AddN("x", 2)
	m.Add("y")
	el := m.Elements()
	if len(el) != 3 {
		t.Fatalf("Elements len = %d, want 3", len(el))
	}
	counts := map[string]int{}
	for _, v := range el {
		counts[v]++
	}
	if counts["x"] != 2 || counts["y"] != 1 {
		t.Fatalf("Elements content wrong: %v", counts)
	}

	other := NewMultiset[string]()
	other.Add("x")
	other.Add("z")
	m.Merge(other)
	if m.Count("x") != 3 || m.Count("z") != 1 || m.Len() != 5 {
		t.Fatal("Merge result wrong")
	}
}

func TestMultisetClone(t *testing.T) {
	m := NewMultiset[int]()
	m.AddN(1, 3)
	c := m.Clone()
	c.Add(2)
	if m.Count(2) != 0 {
		t.Fatal("Clone is not independent of the original")
	}
	if c.Count(1) != 3 || c.Count(2) != 1 {
		t.Fatal("Clone content wrong")
	}
}
