package runtime_test

import (
	"context"
	"testing"
	"time"

	"lifting/internal/live"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/sim"
)

func newSimBackend() *runtime.SimBackend {
	engine := sim.NewEngine()
	simnet := net.NewSimNet(engine, rng.New(1), metrics.NewCollector(), net.Conditions{})
	return runtime.NewSim(engine, simnet)
}

// TestSimBackendContract exercises the Runtime interface on the
// discrete-event backend: global scheduling, inline Exec, virtual time.
func TestSimBackendContract(t *testing.T) {
	var rt runtime.Runtime = newSimBackend()

	var order []string
	rt.After(10*time.Millisecond, func() { order = append(order, "after") })
	rt.Exec(3, func() { order = append(order, "exec") }) // inline, before any event
	if len(order) != 1 || order[0] != "exec" {
		t.Fatalf("sim Exec not inline: %v", order)
	}
	rt.Run(context.Background(), 20*time.Millisecond)
	if len(order) != 2 || order[1] != "after" {
		t.Fatalf("After callback did not run: %v", order)
	}
	if rt.Now() != 20*time.Millisecond {
		t.Fatalf("Now() = %v after Run(20ms)", rt.Now())
	}
	rt.Close() // no-op, must not panic
}

type recordingHandler struct {
	got []msg.Message
}

func (h *recordingHandler) HandleMessage(_ msg.NodeID, m msg.Message) { h.got = append(h.got, m) }

// TestSimBackendDelivery checks Attach/Network/SetDown through the seam.
func TestSimBackendDelivery(t *testing.T) {
	b := newSimBackend()
	var rt runtime.Runtime = b
	h := &recordingHandler{}
	rt.Attach(2, h)

	rt.Network().Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, net.Reliable)
	rt.Run(context.Background(), time.Second)
	if len(h.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(h.got))
	}

	rt.SetDown(2, true)
	rt.Network().Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 2}, net.Reliable)
	rt.Run(context.Background(), 2*time.Second)
	if len(h.got) != 1 {
		t.Fatal("down node received a message")
	}
}

// TestLiveImplementsRuntime pins that the live runtime satisfies the seam
// and honors the per-node Exec serialization path.
func TestLiveImplementsRuntime(t *testing.T) {
	var rt runtime.Runtime = live.NewRuntime(1, nil, net.Conditions{})
	done := make(chan struct{})
	rt.Exec(5, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("live Exec never ran")
	}
	rt.Close()
}

func TestKindString(t *testing.T) {
	if runtime.KindSim.String() != "sim" || runtime.KindLive.String() != "live" || runtime.KindUDP.String() != "udp" {
		t.Fatalf("kind names wrong: %v %v %v", runtime.KindSim, runtime.KindLive, runtime.KindUDP)
	}
}

func TestParseKind(t *testing.T) {
	for _, want := range []runtime.Kind{runtime.KindSim, runtime.KindLive, runtime.KindUDP} {
		got, err := runtime.ParseKind(want.String())
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := runtime.ParseKind("tcp"); err == nil {
		t.Error("ParseKind accepted an unknown backend")
	}
}

// TestRegistryBuildsBackends constructs every registered backend through the
// registry and runs a trivial schedule on it. KindLive registers via the
// live import above; KindSim registers in-package.
func TestRegistryBuildsBackends(t *testing.T) {
	for _, k := range []runtime.Kind{runtime.KindSim, runtime.KindLive} {
		rt, err := runtime.New(k, runtime.BackendOptions{Seed: 1})
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		fired := make(chan struct{})
		rt.After(time.Millisecond, func() { close(fired) })
		rt.Run(context.Background(), 5*time.Millisecond)
		if k == runtime.KindSim {
			// Virtual time: the callback ran synchronously during Run.
		}
		select {
		case <-fired:
		case <-time.After(2 * time.Second):
			t.Fatalf("backend %v never fired the timer", k)
		}
		rt.Close()
		rt.Close() // Close is idempotent on every backend
	}
}

func TestRegistryRejectsUnregistered(t *testing.T) {
	if _, err := runtime.New(runtime.Kind(99), runtime.BackendOptions{}); err == nil {
		t.Fatal("New on an unregistered kind succeeded")
	}
}
