package runtime

import (
	"sync"
	"time"
)

// Timers tracks the outstanding time.AfterFunc timers of a wall-clock
// backend so its Close can cancel callbacks that have not fired yet instead
// of waiting out their delays. Without it, a backend that counts a callback
// in-flight at scheduling time (the pattern both the live and the UDP
// runtimes use to make Close a full drain) would block Close until every
// pre-scheduled stream injection and gossip tick has come due — minutes,
// for a run cancelled seconds in.
//
// The zero value is ready to use. All methods are safe for concurrent use.
type Timers struct {
	mu     sync.Mutex
	timers map[*timerEntry]struct{}
}

type timerEntry struct {
	t *time.Timer
}

// AfterFunc schedules fn after d, like time.AfterFunc, and tracks the timer
// until it fires or StopAll cancels it. fn runs on the timer goroutine; it
// is never called after a StopAll that caught the timer pending.
func (s *Timers) AfterFunc(d time.Duration, fn func()) {
	s.mu.Lock()
	if s.timers == nil {
		s.timers = make(map[*timerEntry]struct{})
	}
	e := &timerEntry{}
	// The callback's first action takes the same lock, so it cannot observe
	// e.t unassigned or its entry missing even when d is zero.
	//lint:allow no-wallclock this type IS the wall-clock half of the backend seam; only the live/udp runtimes construct it
	e.t = time.AfterFunc(d, func() {
		s.mu.Lock()
		delete(s.timers, e)
		s.mu.Unlock()
		fn()
	})
	s.timers[e] = struct{}{}
	s.mu.Unlock()
}

// StopAll cancels every timer that has not fired yet, invoking onCancel once
// per cancelled timer (backends use it to release the in-flight count a
// cancelled callback will never release itself). Timers already firing
// complete their callback as usual. StopAll may be called repeatedly.
func (s *Timers) StopAll(onCancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow ordered-map-range cancellation is per-entry and commutative; no order reaches the caller
	for e := range s.timers {
		if e.t.Stop() {
			delete(s.timers, e)
			if onCancel != nil {
				onCancel()
			}
		}
		// Stop() == false: the callback is running or already ran; it removes
		// its own entry (possibly blocked on our lock right now) and performs
		// its own cleanup.
	}
}
