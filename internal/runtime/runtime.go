// Package runtime defines the execution seam between protocol assembly and
// protocol execution. A Runtime bundles everything a running LiFTinG system
// needs from its host — a clock, per-node timers, a message-passing network
// and node lifecycle control — without fixing how any of it is implemented.
//
// Two backends implement the interface:
//
//   - the deterministic discrete-event pair sim.Engine + net.SimNet, wrapped
//     by SimBackend in this package (virtual time, single-threaded,
//     bit-reproducible — the Monte-Carlo workhorse of §6);
//   - the goroutine-per-node live.Runtime (wall-clock time, real
//     concurrency, messages round-tripped through the binary codec — the
//     integration-realism backend of §7).
//
// internal/cluster assembles gossip nodes, verifiers, reputation and
// freerider behaviors against this interface only, so every end-to-end
// scenario — quickstart, collusion, PlanetLab heterogeneity, churn — runs
// identically under either backend.
package runtime

import (
	"context"
	"fmt"
	"time"

	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/sim"
)

// Kind selects an execution backend.
type Kind int

// Available backends. KindSim is the zero value: deterministic simulation is
// the default everywhere.
const (
	// KindSim is the single-threaded discrete-event engine over virtual
	// time.
	KindSim Kind = iota
	// KindLive is the goroutine-per-node runtime over wall-clock time.
	KindLive
	// KindUDP is the socket-backed runtime in internal/transport: one UDP
	// socket per locally hosted node, messages framed through the binary
	// codec, wall-clock time. It is the deployment backend — a scenario
	// becomes N sockets in one process or N OS processes on a network.
	KindUDP
)

// String returns the backend name.
func (k Kind) String() string {
	switch k {
	case KindSim:
		return "sim"
	case KindLive:
		return "live"
	case KindUDP:
		return "udp"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind as its name, so experiment parameters and
// structured results stay readable ("sim", not 0).
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a kind from its name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return fmt.Errorf("runtime: kind must be a JSON string, got %s", s)
	}
	parsed, err := ParseKind(s[1 : len(s)-1])
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind maps a backend name ("sim", "live", "udp") to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "sim":
		return KindSim, nil
	case "live":
		return KindLive, nil
	case "udp":
		return KindUDP, nil
	default:
		return 0, fmt.Errorf("runtime: unknown backend %q (want sim, live or udp)", s)
	}
}

// Runtime is the execution environment a protocol deployment runs on.
//
// The concurrency contract mirrors sim.Context: all callbacks for one node
// (message handling, timers, Exec functions) are serialized; callbacks for
// different nodes may run concurrently under a live backend. Harness
// callbacks scheduled with After run outside any node's serialization.
type Runtime interface {
	// Context returns the execution context (clock + one-shot timers) for a
	// node. Contexts may be requested before the node's handler is attached.
	Context(id msg.NodeID) sim.Context
	// Attach registers the message handler for a node; a nil handler
	// detaches it.
	Attach(id msg.NodeID, h net.Handler)
	// Network returns the sending side shared by all nodes.
	Network() net.Network
	// SetConditions overrides a node's connection quality.
	SetConditions(id msg.NodeID, c net.Conditions)
	// SetDown marks a node as departed (true) or alive (false), preserving
	// its other conditions.
	SetDown(id msg.NodeID, down bool)
	// After schedules a harness callback d from now, outside any node's
	// serialization. Used for global events: score-period ticks, stream
	// injections, churn arrivals.
	After(d time.Duration, fn func())
	// Exec runs fn serialized with node id's callbacks. Under the
	// discrete-event backend it runs inline (the whole simulation is one
	// goroutine); under a live backend it is scheduled asynchronously under
	// the node's lock. Do not call Exec from a callback already running
	// under a node's serialization if that could form a lock cycle.
	Exec(id msg.NodeID, fn func())
	// Now returns the time elapsed since the runtime started.
	Now() time.Duration
	// Run advances the runtime to time until: the discrete-event backend
	// drains its queue up to that virtual instant, the live backend blocks
	// until that much wall-clock time has elapsed. Cancelling ctx aborts the
	// advance promptly — the discrete-event backend checks between bounded
	// event bursts, the wall-clock backends wake from their sleep — and Run
	// returns ctx.Err(). A nil error means the full advance completed. After
	// a cancelled Run the runtime is still consistent; call Close to tear it
	// down (wall-clock backends cancel their pending timers there, so a
	// cancelled run does not wait out its schedule).
	Run(ctx context.Context, until time.Duration) error
	// Close stops the runtime and waits for in-flight callbacks. Closing a
	// discrete-event backend is a no-op (nothing runs between events).
	Close()
}

// SimBackend adapts the deterministic sim.Engine + net.SimNet pair to the
// Runtime interface.
type SimBackend struct {
	engine *sim.Engine
	netw   *net.SimNet
}

var _ Runtime = (*SimBackend)(nil)

// NewSim wraps an engine and its simulated network as a Runtime.
func NewSim(engine *sim.Engine, netw *net.SimNet) *SimBackend {
	return &SimBackend{engine: engine, netw: netw}
}

// Engine exposes the underlying discrete-event engine (event-queue
// inspection, direct scheduling in tests).
func (s *SimBackend) Engine() *sim.Engine { return s.engine }

// SimNet exposes the underlying simulated network.
func (s *SimBackend) SimNet() *net.SimNet { return s.netw }

// Context implements Runtime: under a serial engine every node shares the
// engine (the whole run is one goroutine); under a sharded engine each node
// gets its shard-bound domain, which serializes that node's callbacks on
// its shard.
func (s *SimBackend) Context(id msg.NodeID) sim.Context { return s.engine.Domain(int(id)) }

// Attach implements Runtime.
func (s *SimBackend) Attach(id msg.NodeID, h net.Handler) { s.netw.Attach(id, h) }

// Network implements Runtime.
func (s *SimBackend) Network() net.Network { return s.netw }

// SetConditions implements Runtime.
func (s *SimBackend) SetConditions(id msg.NodeID, c net.Conditions) { s.netw.SetConditions(id, c) }

// SetDown implements Runtime.
func (s *SimBackend) SetDown(id msg.NodeID, down bool) { s.netw.SetDown(id, down) }

// After implements Runtime.
func (s *SimBackend) After(d time.Duration, fn func()) { s.engine.After(d, fn) }

// Exec implements Runtime: the simulation is single-threaded, so fn runs
// inline, preserving the exact event ordering of a direct call.
func (s *SimBackend) Exec(_ msg.NodeID, fn func()) { fn() }

// Now implements Runtime.
func (s *SimBackend) Now() time.Duration { return s.engine.Now() }

// runChunkEvents is how many discrete events the sim backend executes
// between cancellation checks: large enough that the check is free next to
// the event work (a 10k-node run executes ~180k events/s, so this is a check
// every few tens of milliseconds), small enough that SIGINT lands promptly.
const runChunkEvents = 8192

// Run implements Runtime: events execute in exactly the order of an
// uninterrupted engine.Run, with a cancellation check between bounded
// bursts. RunChunk returning 0 is the done signal for both engine modes —
// the sharded engine advances in whole lookahead windows, so a burst may
// overshoot the chunk size but never reports 0 while work remains.
func (s *SimBackend) Run(ctx context.Context, until time.Duration) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.engine.RunChunk(until, runChunkEvents) == 0 {
			return ctx.Err()
		}
	}
}

// Close implements Runtime: a no-op, nothing runs between events.
func (s *SimBackend) Close() {}
