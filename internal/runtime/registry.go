package runtime

import (
	"fmt"
	"sort"
	"sync"

	"lifting/internal/metrics"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

// The discrete-event backend lives in this package, so it registers here.
// The live and udp backends register from their own packages.
func init() {
	Register(KindSim, func(o BackendOptions) (Runtime, error) {
		engine := sim.NewEngine()
		return NewSim(engine, net.NewSimNet(engine, rng.New(o.Seed), o.Collector, o.Defaults)), nil
	})
}

// BackendOptions carries everything a backend factory needs to build a
// Runtime. In-process backends ignore the socket-specific fields.
type BackendOptions struct {
	// Seed roots the backend's randomness (loss draws, latency jitter).
	Seed uint64
	// Collector receives traffic accounting; may be nil.
	Collector *metrics.Collector
	// Defaults is the connection quality of nodes without an override.
	Defaults net.Conditions
	// ListenTemplate is the address socket-backed backends bind each locally
	// hosted node to ("127.0.0.1:0" when empty: loopback, kernel-assigned
	// port). A ":0" port is required when more than one node is hosted.
	ListenTemplate string
}

// Factory builds a Runtime from backend options.
type Factory func(BackendOptions) (Runtime, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[Kind]Factory)
)

// Register installs the factory for a backend kind. Backends register
// themselves from an init function (importing the backend package for effect
// is enough to make its Kind constructible); registering the same kind twice
// panics.
func Register(k Kind, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[k]; dup {
		panic(fmt.Sprintf("runtime: backend %v registered twice", k))
	}
	registry[k] = f
}

// New builds a Runtime of the given kind via its registered factory. It
// fails if the kind has no registered backend — typically a missing blank
// import of the backend package.
func New(k Kind, o BackendOptions) (Runtime, error) {
	registryMu.RLock()
	f, ok := registry[k]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: no backend registered for %v (registered: %v)", k, Registered())
	}
	return f(o)
}

// Registered lists the kinds with a registered factory, in Kind order.
func Registered() []Kind {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]Kind, 0, len(registry))
	//lint:allow ordered-map-range collect-then-sort: kinds are sorted before return
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
