// Package transport is the deployment backend of the runtime seam: the same
// protocol nodes that run under the discrete-event simulator and the
// goroutine live runtime here exchange real UDP datagrams through the binary
// codec and the datagram framing of internal/msg.
//
// Every locally hosted node owns one UDP socket; peers are found through an
// address Book seeded from bootstrap specs and extended passively from
// inbound traffic. A runtime may host a whole population on loopback (the
// single-process-many-sockets mode behind `lifting-sim -backend udp`) or a
// single node whose peers live in other OS processes or on other machines
// (the lifting-node daemon) — the paper's PlanetLab deployment shape (§7).
//
// The concurrency contract matches sim.Context and the live runtime: all
// callbacks for one node — inbound messages, timers, Exec functions — are
// serialized under that node's lock; callbacks for different nodes run
// concurrently.
package transport

import (
	"context"
	"errors"
	"fmt"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/sim"
)

func init() {
	runtime.Register(runtime.KindUDP, func(o runtime.BackendOptions) (runtime.Runtime, error) {
		return New(Options{
			Seed:           o.Seed,
			Collector:      o.Collector,
			Defaults:       o.Defaults,
			ListenTemplate: o.ListenTemplate,
		}), nil
	})
}

// Options configures a UDP runtime.
type Options struct {
	// Seed roots the randomness used for modelled loss and latency jitter.
	Seed uint64
	// Collector receives traffic accounting; may be nil.
	Collector *metrics.Collector
	// Defaults is the connection quality of nodes without an override. Loss
	// and latency are modelled on top of the real sockets, so loopback
	// scenarios can reproduce the lossy conditions of the simulations.
	Defaults net.Conditions
	// ListenTemplate is the address each implicitly created local socket
	// binds to; defaults to "127.0.0.1:0". Nodes added explicitly with
	// AddNode choose their own address.
	ListenTemplate string
	// Book, if non-nil, is used as the address book — pass a shared Book to
	// let several runtimes in one process discover each other, or a
	// pre-seeded one for remote peers. Nil creates an empty private book.
	Book *Book
}

// Runtime hosts a set of nodes over real UDP sockets.
type Runtime struct {
	start          time.Time
	collector      *metrics.Collector
	defaults       net.Conditions
	listenTemplate string
	book           *Book

	// mu guards nodes, conds and closed. The wire hot paths (Send, one
	// recvLoop per socket) only read, so they share RLock and run
	// concurrently; writers (AddNode, SetConditions, churn, Close) are
	// rare.
	mu     sync.RWMutex
	nodes  map[msg.NodeID]*nodeCtx
	conds  map[msg.NodeID]net.Conditions
	closed bool

	// randMu guards the loss/jitter stream. Taken only when a draw is
	// actually needed (nonzero loss or jitter), so lossless scenarios pay
	// nothing.
	randMu sync.Mutex
	rand   *rng.Stream

	bufs sync.Pool // frame buffers on the send path

	// fragID numbers outbound fragmented messages so receivers can group
	// their fragments. Uniqueness per (sender socket, recent window) is all
	// reassembly needs.
	fragID atomic.Uint32

	// timers tracks pending AfterFuncs so Close can cancel the not-yet fired
	// ones instead of waiting out their delays.
	timers   runtime.Timers
	inflight sync.WaitGroup // timers, Execs and delayed sends
	loops    sync.WaitGroup // per-socket receive loops
}

var (
	_ net.Network     = (*Runtime)(nil)
	_ runtime.Runtime = (*Runtime)(nil)
)

// New creates a UDP runtime with no sockets yet. Sockets appear as nodes are
// added — explicitly via AddNode, or implicitly on the first Context/Attach
// for an unknown id (bound to ListenTemplate).
func New(o Options) *Runtime {
	if o.ListenTemplate == "" {
		o.ListenTemplate = "127.0.0.1:0"
	}
	book := o.Book
	if book == nil {
		book = NewBook()
	}
	return &Runtime{
		start:          time.Now(),
		collector:      o.Collector,
		defaults:       o.Defaults,
		listenTemplate: o.ListenTemplate,
		book:           book,
		rand:           rng.New(o.Seed),
		nodes:          make(map[msg.NodeID]*nodeCtx),
		conds:          make(map[msg.NodeID]net.Conditions),
		bufs: sync.Pool{New: func() any {
			b := make([]byte, 0, msg.FrameHeaderSize+512)
			return &b
		}},
	}
}

// nodeCtx is one locally hosted node: its socket plus the lock serializing
// all its callbacks.
type nodeCtx struct {
	rt   *Runtime
	id   msg.NodeID
	conn *gonet.UDPConn
	mu   sync.Mutex
	h    net.Handler
}

var _ sim.Context = (*nodeCtx)(nil)

// Now implements sim.Context: time elapsed since the runtime started.
func (n *nodeCtx) Now() time.Duration { return time.Since(n.rt.start) }

// After implements sim.Context: fn runs on a timer goroutine under the
// node's lock, unless the runtime has been closed.
func (n *nodeCtx) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.rt.schedule(d, func() {
		defer n.rt.inflight.Done()
		if n.rt.isClosed() {
			return
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		fn()
	})
}

// Book returns the runtime's address book.
func (r *Runtime) Book() *Book { return r.book }

// AddNode binds a UDP socket for a locally hosted node and starts its
// receive loop. The bound address (with the kernel-assigned port when listen
// ends in ":0") is recorded in the address book and returned. Adding a node
// twice fails.
func (r *Runtime) AddNode(id msg.NodeID, listen string) (*gonet.UDPAddr, error) {
	addr, err := gonet.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving listen address %q: %w", listen, err)
	}
	conn, err := gonet.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: binding node %d to %q: %w", id, listen, err)
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return nil, errors.New("transport: runtime is closed")
	}
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("transport: node %d already hosted here", id)
	}
	n := &nodeCtx{rt: r, id: id, conn: conn}
	r.nodes[id] = n
	r.loops.Add(1)
	r.mu.Unlock()

	bound := conn.LocalAddr().(*gonet.UDPAddr)
	r.book.SetAddr(id, bound)
	go r.recvLoop(n)
	return bound, nil
}

// localNode returns the context for a locally hosted node, binding a socket
// on the listen template the first time an id is seen. It panics if the bind
// fails (the runtime interface has no error path; use AddNode to handle bind
// errors gracefully).
func (r *Runtime) localNode(id msg.NodeID) *nodeCtx {
	r.mu.RLock()
	n, ok := r.nodes[id]
	r.mu.RUnlock()
	if ok {
		return n
	}
	if _, err := r.AddNode(id, r.listenTemplate); err != nil {
		r.mu.RLock()
		n, ok = r.nodes[id] // lost a race to another implicit add?
		r.mu.RUnlock()
		if ok {
			return n
		}
		panic(err)
	}
	r.mu.RLock()
	n = r.nodes[id]
	r.mu.RUnlock()
	return n
}

// Context implements runtime.Runtime. For an id not hosted here yet it binds
// a socket on the listen template.
func (r *Runtime) Context(id msg.NodeID) sim.Context { return r.localNode(id) }

// Attach implements runtime.Runtime: it registers the message handler for a
// locally hosted node (binding its socket if needed); a nil handler detaches
// it.
func (r *Runtime) Attach(id msg.NodeID, h net.Handler) {
	n := r.localNode(id)
	n.mu.Lock()
	n.h = h
	n.mu.Unlock()
}

// Network implements runtime.Runtime: the runtime is its own network.
func (r *Runtime) Network() net.Network { return r }

// SetConditions implements runtime.Runtime.
func (r *Runtime) SetConditions(id msg.NodeID, c net.Conditions) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conds[id] = c
}

// SetDown implements runtime.Runtime.
func (r *Runtime) SetDown(id msg.NodeID, down bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.conds[id]
	if !ok {
		c = r.defaults
	}
	c.Down = down
	r.conds[id] = c
}

// After implements runtime.Runtime: a harness callback outside any node's
// serialization.
func (r *Runtime) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	r.schedule(d, func() {
		defer r.inflight.Done()
		if r.isClosed() {
			return
		}
		fn()
	})
}

// Exec implements runtime.Runtime: fn runs under node id's lock.
func (r *Runtime) Exec(id msg.NodeID, fn func()) {
	r.Context(id).After(0, fn)
}

// Now implements runtime.Runtime.
func (r *Runtime) Now() time.Duration { return time.Since(r.start) }

// Run implements runtime.Runtime: it blocks until the runtime is `until`
// old; sockets keep delivering on their own goroutines meanwhile. Cancelling
// ctx wakes the sleep immediately and returns ctx.Err(); sockets stay open
// until Close.
func (r *Runtime) Run(ctx context.Context, until time.Duration) error {
	d := until - r.Now()
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runtime) conditionsOf(id msg.NodeID) net.Conditions {
	if c, ok := r.conds[id]; ok {
		return c
	}
	return r.defaults
}

func (r *Runtime) isClosed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// schedule atomically — with respect to Close — registers one in-flight
// callback AND its timer, unless the runtime has closed (then nothing is
// scheduled and false is returned). Both steps happen while the closed flag
// is held shared: Close flips the flag under the exclusive lock before
// cancelling timers and waiting, so every timer either registers in time to
// be cancelled by StopAll or never registers — a timer slipping through the
// gap would stall Close for its full delay, and a late inflight.Add would
// race the WaitGroup contract.
func (r *Runtime) schedule(d time.Duration, fn func()) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return false
	}
	r.inflight.Add(1)
	r.timers.AfterFunc(d, fn)
	return true
}

// bernoulli draws from the shared loss stream; p = 0 short-circuits without
// touching the stream.
func (r *Runtime) bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	r.randMu.Lock()
	defer r.randMu.Unlock()
	return r.rand.Bernoulli(p)
}

// jitter draws a uniform latency jitter in [0, j); j = 0 short-circuits.
func (r *Runtime) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	r.randMu.Lock()
	defer r.randMu.Unlock()
	return time.Duration(r.rand.Float64() * float64(j))
}

// Send implements net.Network: the message is framed through the binary
// codec and shipped as one UDP datagram to the destination's address-book
// entry. Loss and latency from the node conditions are modelled on top of
// the real socket (loopback is effectively lossless and instant, and
// scenarios still want the paper's 4%-loss PlanetLab links); messages to
// down or unknown destinations are dropped like any other network loss.
//
// Each side of a link applies its own conditions: the sender draws LossOut
// and delays by its half of the latency, the receiver draws LossIn and
// delays by its half before dispatching. In a multi-process deployment a
// process only knows its own conditions, so this split is what makes -loss
// and per-node latency work there; in single-process mode it adds up to the
// same end-to-end link model as the other backends.
func (r *Runtime) Send(from, to msg.NodeID, m msg.Message, mode net.Mode) {
	size := m.WireSize()
	if r.collector != nil {
		r.collector.OnSend(from, m, size)
	}

	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return
	}
	src := r.conditionsOf(from)
	dst := r.conditionsOf(to)
	// Partition state is locally applied for every known id (the soak
	// schedule is replayed by each process), so the sender can cut
	// cross-partition traffic before it touches the wire.
	drop := src.Down || dst.Down || net.Partitioned(src.PartitionGroup, dst.PartitionGroup)
	sender := r.nodes[from]
	if sender == nil {
		// Harness traffic from an id not hosted here: use any local socket.
		for _, n := range r.nodes {
			sender = n
			break
		}
	}
	r.mu.RUnlock()
	if !drop && mode == net.Unreliable {
		drop = r.bernoulli(src.LossOut)
	}
	latency := src.LatencyBase/2 + r.jitter(src.LatencyJitter/2)
	if mode == net.Reliable {
		// Connection-setup cost of the reliable transport, as modelled by
		// the sim and live backends; each side scales its own half.
		latency *= 3
	}
	copies := 1
	if !drop && mode == net.Unreliable {
		if r.bernoulli(src.ReorderProb) {
			// Hold the datagram back so later sends overtake it.
			latency += src.ReorderDelay
		}
		if r.bernoulli(src.DupProb) {
			// In-network duplication: ship a second identical datagram,
			// accounted as a send of its own so the books balance.
			copies = 2
			if r.collector != nil {
				r.collector.OnSend(from, m, size)
			}
		}
	}

	addr, known := r.book.Lookup(to)
	if drop || !known || sender == nil {
		if r.collector != nil {
			r.collector.OnDrop(m, size)
		}
		return
	}

	var flags uint8
	if mode == net.Reliable {
		flags |= msg.FlagReliable
	}
	bufp := r.bufs.Get().(*[]byte)
	frame, err := msg.AppendFrame((*bufp)[:0], m, flags)
	if err != nil {
		// Outbound messages are constructed by our own protocol code; an
		// encoding failure is a programming error — except for messages that
		// outgrew a datagram (big audit histories, oversized chunks), which
		// ship as a train of fragment frames instead.
		r.bufs.Put(bufp)
		if errors.Is(err, msg.ErrPayloadTooLarge) {
			r.sendFragments(sender, addr, m, size, flags, latency, copies)
			return
		}
		panic(fmt.Sprintf("transport: encoding %T: %v", m, err))
	}
	*bufp = frame

	write := func() {
		for i := 0; i < copies; i++ {
			_, werr := sender.conn.WriteToUDP(frame, addr)
			if werr != nil && r.collector != nil {
				r.collector.OnDrop(m, size)
			}
		}
		r.bufs.Put(bufp)
	}
	if latency <= 0 {
		write()
		return
	}
	if !r.schedule(latency, func() {
		defer r.inflight.Done()
		if r.isClosed() {
			r.bufs.Put(bufp)
			return
		}
		write()
	}) {
		r.bufs.Put(bufp)
	}
}

// sendFragments ships a message too large for one datagram as a train of
// fragment frames; the receiver's reassembler rebuilds the encoding before
// dispatch. All fragments share the modelled latency draw — they leave one
// socket back-to-back. copies > 1 replays the whole train (fault-injected
// duplication); the reassembler ignores the repeats.
func (r *Runtime) sendFragments(sender *nodeCtx, addr *gonet.UDPAddr, m msg.Message, size int, flags uint8, latency time.Duration, copies int) {
	body, err := msg.Encode(m)
	if err != nil {
		panic(fmt.Sprintf("transport: encoding %T: %v", m, err))
	}
	count := (len(body) + msg.MaxFragmentBody - 1) / msg.MaxFragmentBody
	if count > 0xFFFF {
		if r.collector != nil {
			r.collector.OnDrop(m, size)
		}
		return
	}
	msgID := r.fragID.Add(1)
	frames := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		start, end := i*msg.MaxFragmentBody, (i+1)*msg.MaxFragmentBody
		if end > len(body) {
			end = len(body)
		}
		f, err := msg.AppendFragment(nil, msgID, uint16(i), uint16(count), body[start:end], flags)
		if err != nil {
			panic(fmt.Sprintf("transport: fragmenting %T: %v", m, err))
		}
		frames = append(frames, f)
	}
	write := func() {
		for i := 0; i < copies; i++ {
			for _, f := range frames {
				if _, werr := sender.conn.WriteToUDP(f, addr); werr != nil {
					if r.collector != nil {
						r.collector.OnDrop(m, size)
					}
					return
				}
			}
		}
	}
	if latency <= 0 {
		write()
		return
	}
	r.schedule(latency, func() {
		defer r.inflight.Done()
		if !r.isClosed() {
			write()
		}
	})
}

// maxReassembly bounds the half-built messages a socket keeps. Overflow (a
// burst of loss, or garbage from a hostile peer) clears the table: losing
// half-built state is a retry, keeping it unbounded is a memory hole.
const maxReassembly = 256

// reassembler rebuilds fragmented messages for one receive loop. Keyed by
// (source address, message id); fragment bodies are copied out of the shared
// read buffer. Single-goroutine use, no locking.
type reassembler struct {
	entries map[string]*reasmEntry
}

type reasmEntry struct {
	count uint16
	got   uint16
	parts [][]byte
}

// add folds in one fragment frame payload and returns the full message
// encoding once every fragment has arrived.
func (ra *reassembler) add(src string, payload []byte) ([]byte, bool) {
	msgID, index, count, body, err := msg.ParseFragment(payload)
	if err != nil || len(body) == 0 {
		// sendFragments never emits an empty fragment body; dropping them
		// here keeps a hostile peer from completing a zero-byte "message"
		// (found by FuzzReassembly).
		return nil, false
	}
	key := fmt.Sprintf("%s#%d", src, msgID)
	e := ra.entries[key]
	if e == nil {
		if len(ra.entries) >= maxReassembly {
			ra.entries = make(map[string]*reasmEntry)
		}
		e = &reasmEntry{count: count, parts: make([][]byte, count)}
		ra.entries[key] = e
	}
	if e.count != count || int(index) >= len(e.parts) {
		// Contradictory fragment train; throw the whole message away.
		delete(ra.entries, key)
		return nil, false
	}
	if e.parts[index] == nil {
		e.parts[index] = append([]byte(nil), body...)
		e.got++
	}
	if e.got < e.count {
		return nil, false
	}
	delete(ra.entries, key)
	var out []byte
	for _, p := range e.parts {
		out = append(out, p...)
	}
	return out, true
}

// recvLoop reads datagrams off one node's socket until the runtime closes:
// validate the frame, reassemble fragments, learn the sender's address,
// dispatch under the node's lock. Malformed datagrams are dropped —
// FuzzDecode guarantees the decoder survives anything the network delivers.
func (r *Runtime) recvLoop(n *nodeCtx) {
	defer r.loops.Done()
	buf := make([]byte, 1<<16)
	reasm := &reassembler{entries: make(map[string]*reasmEntry)}
	for {
		sz, srcAddr, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			if r.isClosed() || errors.Is(err, gonet.ErrClosed) {
				return
			}
			continue
		}
		payload, flags, err := msg.RawFrame(buf[:sz])
		if err != nil {
			continue
		}
		var m msg.Message
		if flags&msg.FlagFragment != 0 {
			body, done := reasm.add(srcAddr.String(), payload)
			if !done {
				continue
			}
			// body is freshly assembled memory; a serve payload aliasing it
			// is owned by the decoded message, no clone needed.
			if m, err = msg.Decode(body); err != nil {
				continue
			}
		} else {
			if m, err = msg.Decode(payload); err != nil {
				continue
			}
			// Decode aliases the reused read buffer; clone retained bytes
			// before the next datagram overwrites them.
			if s, isServe := m.(*msg.Serve); isServe && s.Payload != nil {
				s.Payload = append([]byte(nil), s.Payload...)
			}
		}
		from := m.From()
		r.book.Learn(from, srcAddr)

		r.mu.RLock()
		closed := r.closed
		cond := r.conditionsOf(n.id)
		r.mu.RUnlock()
		if closed {
			return
		}
		// The receiver's side of the link: its inbound loss and its half of
		// the latency apply here, where the node's own conditions are known
		// even when the sender is another process.
		lost := flags&msg.FlagReliable == 0 && r.bernoulli(cond.LossIn)
		if cond.Down || lost {
			if r.collector != nil {
				r.collector.OnDrop(m, m.WireSize())
			}
			continue
		}
		dispatch := func() {
			if r.collector != nil {
				r.collector.OnDeliver(n.id, m, m.WireSize())
			}
			if n.h != nil {
				n.h.HandleMessage(from, m)
			}
		}
		delay := cond.LatencyBase/2 + r.jitter(cond.LatencyJitter/2)
		if flags&msg.FlagReliable != 0 {
			delay *= 3 // the receiver's half of the reliable-setup cost
		}
		if delay > 0 {
			n.After(delay, dispatch) // serialized under the node's lock
			continue
		}
		n.mu.Lock()
		dispatch()
		n.mu.Unlock()
	}
}

// Close implements runtime.Runtime: it stops delivery, closes every socket,
// cancels every timer that has not fired, and waits for receive loops and
// in-flight callbacks to drain. Close is idempotent and safe to call
// concurrently; every caller returns only after the drain completes.
func (r *Runtime) Close() {
	r.mu.Lock()
	first := !r.closed
	r.closed = true
	var conns []*gonet.UDPConn
	if first {
		for _, n := range r.nodes {
			conns = append(conns, n.conn)
		}
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	// A cancelled timer's callback never runs (a delayed send's frame buffer
	// is simply dropped); release the in-flight count it holds.
	r.timers.StopAll(r.inflight.Done)
	r.inflight.Wait()
	r.loops.Wait()
}
