package transport

import (
	"io"
	gonet "net"
	"sync"
	"testing"
	"time"

	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/runtime"
)

// collect is a handler that records everything delivered to a node.
type collect struct {
	mu   sync.Mutex
	got  []msg.Message
	from []msg.NodeID
}

func (c *collect) HandleMessage(from msg.NodeID, m msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, m)
	c.from = append(c.from, from)
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSendReceiveOverRealSockets(t *testing.T) {
	coll := metrics.NewCollector()
	rt := New(Options{Seed: 1, Collector: coll})
	defer rt.Close()

	sink := &collect{}
	rt.Attach(1, nil) // binds node 1's socket
	rt.Attach(2, sink)

	sent := &msg.Propose{Sender: 1, Period: 3, Chunks: []msg.ChunkID{7, 8}}
	rt.Send(1, 2, sent, net.Unreliable)
	waitFor(t, "delivery", func() bool { return sink.count() > 0 })

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.from[0] != 1 {
		t.Errorf("delivered from %d, want 1", sink.from[0])
	}
	got, ok := sink.got[0].(*msg.Propose)
	if !ok || got.Period != sent.Period || len(got.Chunks) != 2 {
		t.Errorf("delivered %#v, want %#v", sink.got[0], sent)
	}
	if coll.SentMsgs(msg.KindPropose) != 1 {
		t.Errorf("collector counted %d proposes", coll.SentMsgs(msg.KindPropose))
	}
}

// TestCrossRuntimeDelivery is the daemon shape: two runtimes in this process
// (standing in for two OS processes), a bootstrap seed for one direction,
// and address learning for the reply path.
func TestCrossRuntimeDelivery(t *testing.T) {
	a := New(Options{Seed: 1})
	b := New(Options{Seed: 2})
	defer a.Close()
	defer b.Close()

	addrB, err := b.AddNode(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddNode(1, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// a only knows b through a bootstrap seed; b has no seed for a at all.
	a.Book().SetAddr(2, addrB)

	sinkA, sinkB := &collect{}, &collect{}
	a.Attach(1, sinkA)
	b.Attach(2, sinkB)

	a.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 9}, net.Unreliable)
	waitFor(t, "forward delivery", func() bool { return sinkB.count() > 0 })

	// b learned a's address from the inbound datagram: the reply needs no
	// seed.
	b.Send(2, 1, &msg.ScoreResp{Sender: 2, Target: 9, Score: -1.5}, net.Unreliable)
	waitFor(t, "reply via learned address", func() bool { return sinkA.count() > 0 })
}

// TestSharedBook is the single-process cluster shape: many runtimes (or one)
// sharing an address book discover each other with no explicit seeding.
func TestSharedBook(t *testing.T) {
	book := NewBook()
	a := New(Options{Seed: 1, Book: book})
	b := New(Options{Seed: 2, Book: book})
	defer a.Close()
	defer b.Close()

	sink := &collect{}
	a.Attach(1, nil)
	b.Attach(2, sink)

	a.Send(1, 2, &msg.Blame{Sender: 1, Target: 3, Value: 2}, net.Unreliable)
	waitFor(t, "delivery through shared book", func() bool { return sink.count() > 0 })
}

// TestMalformedDatagramsIgnored blasts garbage at a node's socket: nothing
// may crash, and real traffic must keep flowing afterwards.
func TestMalformedDatagramsIgnored(t *testing.T) {
	rt := New(Options{Seed: 1})
	defer rt.Close()
	sink := &collect{}
	rt.Attach(1, nil)
	rt.Attach(2, sink)
	addr, _ := rt.Book().Lookup(2)

	raw, err := gonet.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	payloads := [][]byte{
		{},
		{0x00},
		[]byte("not a frame at all, definitely longer than a header"),
		{'L', 'F', 99, 0, 0, 0, 0, 0, 0, 0},                    // bad version
		{'L', 'F', 1, 0, 0xFF, 0xFF, 0, 0, 0, 0},               // length lies
		{'L', 'F', 1, 0, 0, 1, 0, 0, 0, 0, 0xEE},               // checksum lies
		append([]byte{'L', 'F', 1, 0, 0, 2, 0, 0, 0, 0}, 1, 2), // valid-ish frame, garbage payload
	}
	for _, p := range payloads {
		if _, err := raw.Write(p); err != nil {
			t.Fatal(err)
		}
	}

	rt.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	waitFor(t, "valid message after garbage", func() bool { return sink.count() > 0 })
	if got := sink.count(); got != 1 {
		t.Errorf("delivered %d messages, want exactly the valid one", got)
	}
}

func TestSetDownDropsTraffic(t *testing.T) {
	coll := metrics.NewCollector()
	rt := New(Options{Seed: 1, Collector: coll})
	defer rt.Close()
	sink := &collect{}
	rt.Attach(1, nil)
	rt.Attach(2, sink)

	rt.SetDown(2, true)
	rt.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	time.Sleep(50 * time.Millisecond)
	if sink.count() != 0 {
		t.Fatal("down node received traffic")
	}
	if coll.Dropped(msg.KindScoreReq) == 0 {
		t.Error("drop not accounted")
	}

	rt.SetDown(2, false)
	rt.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	waitFor(t, "delivery after coming back up", func() bool { return sink.count() > 0 })
}

// TestInboundLossAppliedAtReceiver pins the cross-process loss contract:
// LossIn is drawn by the receiving runtime, so a node's conditions take
// effect even when the sender is another process that knows nothing about
// them. Reliable-class traffic is exempt, as in the other backends.
func TestInboundLossAppliedAtReceiver(t *testing.T) {
	book := NewBook()
	a := New(Options{Seed: 1, Book: book})
	b := New(Options{Seed: 2, Book: book})
	defer a.Close()
	defer b.Close()

	sink := &collect{}
	a.Attach(1, nil)
	b.Attach(2, sink)
	// Only the receiving process knows node 2 is fully lossy inbound.
	b.SetConditions(2, net.Conditions{LossIn: 1})

	for i := 0; i < 20; i++ {
		a.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	}
	time.Sleep(80 * time.Millisecond)
	if got := sink.count(); got != 0 {
		t.Fatalf("lossy receiver delivered %d unreliable messages, want 0", got)
	}

	a.Send(1, 2, &msg.AuditReq{Sender: 1, Horizon: time.Second}, net.Reliable)
	waitFor(t, "reliable-class delivery through inbound loss", func() bool { return sink.count() > 0 })
}

func TestModelledLatency(t *testing.T) {
	rt := New(Options{Seed: 1, Defaults: net.Conditions{LatencyBase: 80 * time.Millisecond}})
	defer rt.Close()
	sink := &collect{}
	rt.Attach(1, nil)
	rt.Attach(2, sink)

	start := time.Now()
	rt.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	waitFor(t, "delayed delivery", func() bool { return sink.count() > 0 })
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("delivered after %v, want the modelled ~80ms latency", elapsed)
	}

	// Reliable-class traffic pays the 3x connection-setup factor on both
	// halves of the link, as under the sim and live backends.
	start = time.Now()
	rt.Send(1, 2, &msg.AuditReq{Sender: 1, Horizon: time.Second}, net.Reliable)
	waitFor(t, "reliable delayed delivery", func() bool { return sink.count() > 1 })
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("reliable delivered after %v, want the modelled ~240ms (3x) latency", elapsed)
	}
}

func TestTimersAndExecSerialized(t *testing.T) {
	rt := New(Options{Seed: 1})
	defer rt.Close()
	ctx := rt.Context(5)

	var mu sync.Mutex
	var order []int
	fired := make(chan struct{})
	ctx.After(20*time.Millisecond, func() {
		mu.Lock()
		order = append(order, 2)
		mu.Unlock()
		close(fired)
	})
	rt.Exec(5, func() {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
	})
	<-fired
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("callback order %v, want [1 2]", order)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	rt := New(Options{Seed: 1})
	rt.Attach(1, &collect{})
	rt.Attach(2, &collect{})
	for i := 0; i < 50; i++ {
		rt.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Close()
		}()
	}
	wg.Wait()
	rt.Close() // and once more after the drain

	// Post-close operations are safe no-ops.
	rt.Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	rt.After(time.Millisecond, func() { t.Error("callback ran after Close") })
	if _, err := rt.AddNode(9, "127.0.0.1:0"); err == nil {
		t.Error("AddNode succeeded on a closed runtime")
	}
	time.Sleep(20 * time.Millisecond)
}

func TestRegistryBuildsUDP(t *testing.T) {
	rt, err := runtime.New(runtime.KindUDP, runtime.BackendOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	sink := &collect{}
	rt.Attach(1, nil)
	rt.Attach(2, sink)
	rt.Network().Send(1, 2, &msg.ScoreReq{Sender: 1, Target: 4}, net.Unreliable)
	waitFor(t, "delivery via registry-built runtime", func() bool { return sink.count() > 0 })
}

func TestAddNodeRejectsDuplicate(t *testing.T) {
	rt := New(Options{Seed: 1})
	defer rt.Close()
	if _, err := rt.AddNode(1, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddNode(1, "127.0.0.1:0"); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
}

func TestOversizedMessageFragmentedAndReassembled(t *testing.T) {
	// A message too large for one datagram (a long audit history) ships as a
	// fragment train and arrives intact — v2 dropped it silently.
	coll := metrics.NewCollector()
	rt := New(Options{Seed: 1, Collector: coll})
	defer rt.Close()
	sink := &collect{}
	rt.Attach(1, nil)
	rt.Attach(2, sink)

	huge := &msg.AuditResp{Sender: 1}
	for i := 0; i < 5000; i++ {
		huge.Proposals = append(huge.Proposals, msg.ProposalRecord{
			Period: msg.Period(i), Partner: 2, Chunks: []msg.ChunkID{1, 2, 3, 4},
		})
	}
	rt.Send(1, 2, huge, net.Reliable)
	waitFor(t, "fragmented message delivery", func() bool { return sink.count() > 0 })
	sink.mu.Lock()
	got, ok := sink.got[0].(*msg.AuditResp)
	sink.mu.Unlock()
	if !ok {
		t.Fatalf("delivered %T, want *msg.AuditResp", got)
	}
	if len(got.Proposals) != 5000 || got.Proposals[4999].Period != 4999 {
		t.Fatalf("reassembled audit history mangled: %d proposals", len(got.Proposals))
	}
	if coll.Dropped(msg.KindAuditResp) != 0 {
		t.Fatal("fragmented message counted as dropped")
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("0=127.0.0.1:9000, 3=host.example:9003,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "127.0.0.1:9000" || got[3] != "host.example:9003" {
		t.Fatalf("ParsePeers = %v", got)
	}
	for _, bad := range []string{"nope", "x=1:2", "1=a:1,1=b:2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) succeeded", bad)
		}
	}
}

func TestBookLearnDoesNotClobberSeeds(t *testing.T) {
	b := NewBook()
	if err := b.Set(1, "127.0.0.1:9000"); err != nil {
		t.Fatal(err)
	}
	learned := &gonet.UDPAddr{IP: gonet.IPv4(127, 0, 0, 1), Port: 1234}
	b.Learn(1, learned)
	if a, _ := b.Lookup(1); a.Port != 9000 {
		t.Fatalf("Learn overwrote a seed: %v", a)
	}
	b.Learn(2, learned)
	if a, ok := b.Lookup(2); !ok || a.Port != 1234 {
		t.Fatalf("Learn did not record a new peer: %v %v", a, ok)
	}
	if ids := b.IDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("IDs = %v", ids)
	}
}

// TestMetricsConcurrentSendersScrape hammers one shared collector from
// concurrent sender goroutines over real UDP sockets while a scraper
// renders the exposition and snapshots — the daemon's /metrics access
// pattern, run under -race by CI and `make race`.
func TestMetricsConcurrentSendersScrape(t *testing.T) {
	coll := metrics.NewCollector()
	reg := metrics.NewRegistry()
	coll.Register(reg)
	rt := New(Options{Seed: 1, Collector: coll})
	defer rt.Close()

	const nodes = 4
	sinks := make([]*collect, nodes)
	for i := 0; i < nodes; i++ {
		sinks[i] = &collect{}
		rt.Attach(msg.NodeID(i), sinks[i])
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.WritePrometheus(io.Discard)
				_ = coll.SnapshotAt(0)
			}
		}
	}()

	var senders sync.WaitGroup
	for i := 0; i < nodes; i++ {
		senders.Add(1)
		go func(from msg.NodeID) {
			defer senders.Done()
			for j := 0; j < 500; j++ {
				to := msg.NodeID((int(from) + 1 + j%(nodes-1)) % nodes)
				rt.Send(from, to, &msg.Propose{Sender: from, Period: msg.Period(j), Chunks: []msg.ChunkID{msg.ChunkID(j)}}, net.Unreliable)
				if j%50 == 49 {
					time.Sleep(time.Millisecond) // don't outrun loopback socket buffers
				}
			}
		}(msg.NodeID(i))
	}
	senders.Wait()
	// UDP offers no delivery guarantee even on loopback (bursts can overrun
	// socket buffers), so wait for a solid majority, not all 2000.
	waitFor(t, "deliveries", func() bool {
		n := 0
		for _, s := range sinks {
			n += s.count()
		}
		return n >= nodes*250
	})
	close(stop)
	scraper.Wait()

	if got := coll.SentMsgs(msg.KindPropose); got != nodes*500 {
		t.Fatalf("sent counter = %d, want %d", got, nodes*500)
	}
	if coll.RecvMsgs(msg.KindPropose) == 0 {
		t.Fatal("no deliveries counted")
	}
	snap := coll.SnapshotAt(0)
	if snap.ProtocolBytes == 0 {
		t.Fatal("no protocol bytes accounted")
	}
}

func TestServePayloadSurvivesBufferReuse(t *testing.T) {
	// The receive loop decodes into a reused buffer; serve payloads must be
	// cloned before the next datagram lands on top of them.
	rt := New(Options{Seed: 1})
	defer rt.Close()
	sink := &collect{}
	rt.Attach(1, nil)
	rt.Attach(2, sink)

	payloads := make([][]byte, 10)
	for i := range payloads {
		p := make([]byte, 1316)
		for j := range p {
			p[j] = byte(i)
		}
		payloads[i] = p
		rt.Send(1, 2, &msg.Serve{
			Sender: 1, Period: 1, Chunk: msg.ChunkID(i),
			PayloadSize: len(p), Hash: uint64(i), Payload: p,
		}, net.Unreliable)
	}
	waitFor(t, "all serves delivered", func() bool { return sink.count() == len(payloads) })
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, m := range sink.got {
		s := m.(*msg.Serve)
		want := payloads[s.Chunk]
		for j := range want {
			if s.Payload[j] != want[j] {
				t.Fatalf("chunk %d payload corrupted at byte %d (buffer reuse)", s.Chunk, j)
			}
		}
	}
}
