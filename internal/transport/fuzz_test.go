package transport

import (
	"bytes"
	"testing"

	"lifting/internal/msg"
)

// FuzzReassembly feeds the receive loop's fragment reassembler an arbitrary
// sequence of datagram payloads — truncated headers, contradictory trains,
// duplicate indices, interleavings from two sources — and then proves the
// properties the transport relies on still hold: no panic, the half-built
// table never exceeds its bound, and a legitimate fragment train delivered
// afterwards (with duplicates, out of order) reassembles byte-exactly.
//
// The input is a length-prefixed stream: each record is one byte N followed
// by N payload bytes, handed to the reassembler as if RawFrame had unwrapped
// it off the socket, alternating between two source addresses.
func FuzzReassembly(f *testing.F) {
	// A complete single-fragment message, a two-source split train with a
	// contradictory count, a short header, raw garbage.
	f.Add([]byte("\t\x00\x00\x00\x01\x00\x00\x00\x01A"))
	f.Add([]byte("\n\x00\x00\x00\x02\x00\x00\x00\x02xx\n\x00\x00\x00\x02\x00\x01\x00\x03yy"))
	f.Add([]byte("\x03abc"))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, stream []byte) {
		ra := &reassembler{entries: make(map[string]*reasmEntry)}
		srcs := [2]string{"10.0.0.1:9000", "10.0.0.2:9000"}
		for i, n := 0, 0; i < len(stream); n++ {
			ln := int(stream[i])
			i++
			end := i + ln
			if end > len(stream) {
				end = len(stream)
			}
			out, done := ra.add(srcs[n%2], stream[i:end])
			i = end
			if done && len(out) == 0 {
				t.Fatal("reassembler reported a completed message with no bytes")
			}
			if len(ra.entries) > maxReassembly {
				t.Fatalf("reassembly table overflowed its bound: %d entries", len(ra.entries))
			}
		}

		// Whatever state the garbage left behind, a well-formed train from a
		// fresh source must still get through. Build a body from the fuzz
		// input itself, fragment it exactly as sendFragments does, and
		// deliver the train out of order with every fragment duplicated.
		body := append(append([]byte(nil), stream...), "tail"...)
		for len(body) < msg.MaxFragmentBody+1 {
			body = append(body, body...)
		}
		count := (len(body) + msg.MaxFragmentBody - 1) / msg.MaxFragmentBody
		frames := make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			start, end := i*msg.MaxFragmentBody, (i+1)*msg.MaxFragmentBody
			if end > len(body) {
				end = len(body)
			}
			frame, err := msg.AppendFragment(nil, 7, uint16(i), uint16(count), body[start:end], msg.FlagFragment)
			if err != nil {
				t.Fatalf("fragmenting %d bytes: %v", len(body), err)
			}
			frames = append(frames, frame)
		}
		var got []byte
		completions := 0
		for i := range frames {
			// Reverse order, each fragment twice: reassembly must tolerate
			// both reordering and fault-injected duplication.
			frame := frames[len(frames)-1-i]
			payload, _, err := msg.RawFrame(frame)
			if err != nil {
				t.Fatalf("unwrapping our own fragment frame: %v", err)
			}
			for rep := 0; rep < 2; rep++ {
				if out, done := ra.add("10.0.0.3:9000", payload); done {
					got = out
					completions++
				}
			}
		}
		if completions != 1 {
			t.Fatalf("valid train completed %d times, want exactly once", completions)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("reassembled %d bytes differ from the %d-byte original", len(got), len(body))
		}
	})
}
