package transport

import (
	"fmt"
	gonet "net"
	"sort"
	"strconv"
	"strings"
	"sync"

	"lifting/internal/msg"
)

// Book is the peer address book: it maps node ids to UDP addresses. A
// deployment seeds it from bootstrap peer specs (-peers on the daemon);
// the runtime adds every socket it binds and learns the addresses of peers
// it hears from, so a book only needs enough seeds to reach the rest of the
// membership. A Book is safe for concurrent use and may be shared by
// several runtimes in one process (the single-process-many-sockets mode).
type Book struct {
	mu    sync.RWMutex
	addrs map[msg.NodeID]*gonet.UDPAddr
}

// NewBook returns an empty address book.
func NewBook() *Book {
	return &Book{addrs: make(map[msg.NodeID]*gonet.UDPAddr)}
}

// Set resolves addr ("host:port") and records it as id's address,
// overwriting any previous entry.
func (b *Book) Set(id msg.NodeID, addr string) error {
	u, err := gonet.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolving %q for node %d: %w", addr, id, err)
	}
	b.SetAddr(id, u)
	return nil
}

// SetAddr records a resolved address for id, overwriting any previous entry.
func (b *Book) SetAddr(id msg.NodeID, addr *gonet.UDPAddr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

// Learn records an address for id only if none is known — the passive path
// fed by inbound datagrams, which must never clobber a bootstrap seed.
func (b *Book) Learn(id msg.NodeID, addr *gonet.UDPAddr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, known := b.addrs[id]; !known {
		b.addrs[id] = addr
	}
}

// Lookup returns id's address.
func (b *Book) Lookup(id msg.NodeID) (*gonet.UDPAddr, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.addrs[id]
	return a, ok
}

// IDs returns every node with a known address, in id order.
func (b *Book) IDs() []msg.NodeID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ids := make([]msg.NodeID, 0, len(b.addrs))
	for id := range b.addrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ParsePeers parses a bootstrap peer spec: comma-separated "id=host:port"
// entries, e.g. "0=127.0.0.1:9000,1=127.0.0.1:9001". Empty entries are
// skipped so trailing commas are harmless.
func ParsePeers(spec string) (map[msg.NodeID]string, error) {
	out := make(map[msg.NodeID]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("transport: peer %q is not id=host:port", entry)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(id), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("transport: peer %q: bad node id: %w", entry, err)
		}
		if _, dup := out[msg.NodeID(n)]; dup {
			return nil, fmt.Errorf("transport: node %d appears twice in peer spec", n)
		}
		out[msg.NodeID(n)] = strings.TrimSpace(addr)
	}
	return out, nil
}
