package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lifting/internal/content"
)

// TestMidChainCorruptionDoesNotPoison drives a three-tier chain — origin →
// mid → edge — where the mid tier corrupts payloads for a while: the edge
// must reject every corrupted chunk (hash verification), must not cache the
// rejected bytes, and must serve the correct payload as soon as the mid
// tier heals, proving a transient corrupting hop leaves no poison behind.
func TestMidChainCorruptionDoesNotPoison(t *testing.T) {
	src := content.NewSource(7, 1024)
	originGW := New(Options{Origin: src})
	originTS := httptest.NewServer(originGW.Handler())
	defer originTS.Close()

	// The mid tier proxies the origin but flips a payload byte while
	// corrupt is set — a byzantine relay, not a byzantine origin.
	var corrupt atomic.Bool
	corrupt.Store(true)
	mid := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		payload, hash, err := FetchChunk(nil, originTS.URL, 5)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if corrupt.Load() {
			payload = append([]byte(nil), payload...)
			payload[0] ^= 0xff
		}
		w.Header().Set(HashHeader, fmt.Sprintf("%016x", hash))
		_, _ = w.Write(payload)
	}))
	defer mid.Close()

	edge := New(Options{Upstream: mid.URL})
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := FetchChunk(nil, edgeTS.URL, 5); err == nil {
			t.Fatal("edge served a chunk corrupted mid-chain")
		}
	}
	if st := edge.Stats(); st.Misses != 3 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v, want 3 misses and no cache hit — corrupt bytes must not enter the cache", st)
	}

	corrupt.Store(false)
	payload, _, err := FetchChunk(nil, edgeTS.URL, 5)
	if err != nil {
		t.Fatalf("fetch after the mid tier healed: %v", err)
	}
	if want, _ := src.Chunk(5); !bytes.Equal(payload, want) {
		t.Fatal("edge served wrong bytes after the heal")
	}
	if st := edge.Stats(); st.UpstreamHits != 1 {
		t.Fatalf("upstream hits = %d, want exactly 1 after the heal", st.UpstreamHits)
	}
}

// TestClientDisconnectDuringSingleflight pins the miss-dedup path under a
// departing leader: the first client to miss a chunk starts the upstream
// fetch and disconnects before it finishes, while followers are parked on
// the same flight. The followers must still receive the verified payload,
// and the flight table must drain — no entry stuck behind a dead client.
func TestClientDisconnectDuringSingleflight(t *testing.T) {
	src := content.NewSource(13, 512)
	release := make(chan struct{})
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold every fetch until the leader has gone away
		payload, hash := src.Chunk(9)
		w.Header().Set(HashHeader, fmt.Sprintf("%016x", hash))
		_, _ = w.Write(payload)
	}))
	defer upstream.Close()

	edge := New(Options{Upstream: upstream.URL})
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Leader: cancels its request while the upstream fetch is in flight.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(leaderCtx, "GET", edgeTS.URL+"/stream/chunk/9", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderDone <- err
	}()

	// Followers: join the same flight while the leader's fetch is parked.
	const followers = 4
	var wg sync.WaitGroup
	errs := make(chan error, followers)
	time.Sleep(100 * time.Millisecond) // let the leader reach the upstream
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, _, err := FetchChunk(nil, edgeTS.URL, 9)
			if err != nil {
				errs <- err
				return
			}
			if want, _ := src.Chunk(9); !bytes.Equal(payload, want) {
				errs <- fmt.Errorf("follower got wrong payload")
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // park the followers on the flight
	cancelLeader()
	<-leaderDone // leader is gone; the fetch it started is still running
	close(release)

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("follower after leader disconnect: %v", err)
	}
	edge.mu.Lock()
	inflight := len(edge.flight)
	edge.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d flight entries stuck after all clients finished", inflight)
	}
	// The chunk landed in the cache despite the leader's departure.
	if _, _, ok := edge.cache.Get(9); !ok {
		t.Fatal("fetched chunk never reached the cache")
	}
}

// TestGatewayCloseUnderLoad closes the gateway while slow requests are in
// flight: Close must not hang, and every server goroutine must drain even
// though clients were mid-response.
func TestGatewayCloseUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		http.Error(w, "too late", http.StatusNotFound)
	}))
	defer upstream.Close()

	g := New(Options{Upstream: upstream.URL})
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A handful of clients blocked on the parked upstream fetch.
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("http://" + addr + "/stream/chunk/1")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- g.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind in-flight requests")
	}
	close(release)
	wg.Wait()
	client.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain after Close: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}
