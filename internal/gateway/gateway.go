// Package gateway exposes a node's stream over HTTP: the bridge between the
// gossip content plane and ordinary HTTP clients (players, curl, tests).
//
// The design follows the proxy/cache/downloader split of BitTorrent-backed
// HTTP proxies: a request for a chunk is answered from the gateway's own
// bounded cache, then from the hosting node's chunk store, then — on the
// source node — regenerated from the canonical content source, and finally
// fetched from an upstream gateway over HTTP. Every payload that enters
// through the upstream path is verified against its advertised content hash
// before it is cached or served, so a chain of gateways preserves the same
// end-to-end integrity the gossip plane enforces.
//
// Routes:
//
//	GET /stream/chunk/{id}  the chunk payload (X-Lifting-Hash, X-Lifting-Source)
//	GET /stream/have        JSON array of chunk ids currently serveable locally
//	GET /stream/stats       JSON counters (requests, hit sources, bytes served)
package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lifting/internal/content"
	"lifting/internal/msg"
)

// Header names of the chunk transfer.
const (
	// HashHeader carries the 64-bit content hash (content.HashBytes) as 16
	// hex digits.
	HashHeader = "X-Lifting-Hash"
	// SourceHeader reports where the payload came from: cache, store,
	// origin or upstream.
	SourceHeader = "X-Lifting-Source"
)

// Options configures a gateway.
type Options struct {
	// Store is the hosting node's chunk store (nil = no local store).
	Store *content.Store
	// Origin, if non-nil, regenerates any chunk on demand — set it on the
	// stream source's gateway only, where the canonical payloads are known.
	Origin *content.Source
	// Upstream is the base URL of another gateway to fall back to (e.g.
	// "http://127.0.0.1:8080"); empty disables the upstream path.
	Upstream string
	// CacheCapacity bounds the gateway's own chunk cache
	// (0 = content.DefaultStoreCapacity).
	CacheCapacity int
	// Client performs upstream fetches (nil = a client with a 5 s timeout).
	Client *http.Client
}

// Stats is a point-in-time snapshot of the gateway's counters.
type Stats struct {
	Requests     uint64 `json:"requests"`
	CacheHits    uint64 `json:"cache_hits"`
	StoreHits    uint64 `json:"store_hits"`
	OriginHits   uint64 `json:"origin_hits"`
	UpstreamHits uint64 `json:"upstream_hits"`
	Misses       uint64 `json:"misses"`
	BytesServed  uint64 `json:"bytes_served"`
}

// Gateway is an HTTP stream gateway. Create with New, serve with Start (or
// mount Handler under an existing server), stop with Close.
type Gateway struct {
	opts   Options
	cache  *content.Store
	client *http.Client
	mux    *http.ServeMux
	srv    *http.Server

	mu     sync.Mutex
	flight map[msg.ChunkID]*flightCall

	requests     atomic.Uint64
	cacheHits    atomic.Uint64
	storeHits    atomic.Uint64
	originHits   atomic.Uint64
	upstreamHits atomic.Uint64
	misses       atomic.Uint64
	bytesServed  atomic.Uint64
}

// flightCall deduplicates concurrent misses on the same chunk: followers
// wait for the leader's fetch instead of hammering the store/upstream.
type flightCall struct {
	done    chan struct{}
	payload []byte
	hash    uint64
	src     string
	ok      bool
}

// New assembles a gateway.
func New(opts Options) *Gateway {
	g := &Gateway{
		opts:   opts,
		cache:  content.NewStore(opts.CacheCapacity),
		client: opts.Client,
		flight: make(map[msg.ChunkID]*flightCall),
	}
	if g.client == nil {
		g.client = &http.Client{Timeout: 5 * time.Second}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stream/chunk/{id}", g.handleChunk)
	mux.HandleFunc("GET /stream/have", g.handleHave)
	mux.HandleFunc("GET /stream/stats", g.handleStats)
	g.mux = mux
	return g
}

// Handler returns the gateway's HTTP handler, for mounting under an
// existing server.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Start binds addr (host:port, port 0 for ephemeral) and serves until Close.
// It returns the bound address.
func (g *Gateway) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: %w", err)
	}
	g.srv = &http.Server{Handler: g.mux}
	go func() { _ = g.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the HTTP server. Safe to call without Start.
func (g *Gateway) Close() error {
	if g.srv == nil {
		return nil
	}
	return g.srv.Close()
}

// Stats returns the current counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Requests:     g.requests.Load(),
		CacheHits:    g.cacheHits.Load(),
		StoreHits:    g.storeHits.Load(),
		OriginHits:   g.originHits.Load(),
		UpstreamHits: g.upstreamHits.Load(),
		Misses:       g.misses.Load(),
		BytesServed:  g.bytesServed.Load(),
	}
}

func (g *Gateway) handleChunk(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		http.Error(w, "bad chunk id", http.StatusBadRequest)
		return
	}
	payload, hash, src, ok := g.lookup(msg.ChunkID(id))
	if !ok {
		http.Error(w, "chunk not available", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HashHeader, fmt.Sprintf("%016x", hash))
	w.Header().Set(SourceHeader, src)
	_, _ = w.Write(payload)
	g.bytesServed.Add(uint64(len(payload)))
}

// lookup resolves a chunk through the cache → store → origin → upstream
// chain. The returned slice is shared and read-only.
func (g *Gateway) lookup(c msg.ChunkID) ([]byte, uint64, string, bool) {
	if payload, hash, ok := g.cache.Get(c); ok {
		g.cacheHits.Add(1)
		return payload, hash, "cache", true
	}

	g.mu.Lock()
	if call, inflight := g.flight[c]; inflight {
		g.mu.Unlock()
		<-call.done
		return call.payload, call.hash, call.src, call.ok
	}
	call := &flightCall{done: make(chan struct{})}
	g.flight[c] = call
	g.mu.Unlock()

	call.payload, call.hash, call.src, call.ok = g.fetch(c)
	g.mu.Lock()
	delete(g.flight, c)
	g.mu.Unlock()
	close(call.done)
	return call.payload, call.hash, call.src, call.ok
}

// fetch is the miss path: the node's store, then the origin generator, then
// the upstream gateway. Whatever it finds lands in the cache.
func (g *Gateway) fetch(c msg.ChunkID) ([]byte, uint64, string, bool) {
	if g.opts.Store != nil {
		if payload, hash, ok := g.opts.Store.Get(c); ok {
			g.storeHits.Add(1)
			g.cache.Put(c, payload, hash)
			return payload, hash, "store", true
		}
	}
	if g.opts.Origin != nil {
		payload, hash := g.opts.Origin.Chunk(c)
		if payload != nil {
			g.originHits.Add(1)
			g.cache.Put(c, payload, hash)
			return payload, hash, "origin", true
		}
	}
	if g.opts.Upstream != "" {
		if payload, hash, err := FetchChunk(g.client, g.opts.Upstream, c); err == nil {
			g.upstreamHits.Add(1)
			g.cache.Put(c, payload, hash)
			return payload, hash, "upstream", true
		}
	}
	g.misses.Add(1)
	return nil, 0, "", false
}

func (g *Gateway) handleHave(w http.ResponseWriter, _ *http.Request) {
	seen := make(map[msg.ChunkID]bool)
	ids := []uint32{}
	add := func(s *content.Store) {
		if s == nil {
			return
		}
		for _, c := range s.Chunks() {
			if !seen[c] {
				seen[c] = true
				ids = append(ids, uint32(c))
			}
		}
	}
	// Store first, cache second: Chunks() is sorted per store and the test
	// surface only needs set semantics, but keep the union stable anyway.
	add(g.opts.Store)
	add(g.cache)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ids)
}

func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(g.Stats())
}

// FetchChunk downloads chunk c from the gateway at base URL and verifies the
// payload against the advertised content hash. It is the client side of the
// gateway protocol — the upstream path uses it, and so do tests and tools.
func FetchChunk(client *http.Client, base string, c msg.ChunkID) ([]byte, uint64, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Get(fmt.Sprintf("%s/stream/chunk/%d", base, uint32(c)))
	if err != nil {
		return nil, 0, fmt.Errorf("gateway: fetch chunk %d: %w", c, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("gateway: fetch chunk %d: %s", c, resp.Status)
	}
	hash, err := strconv.ParseUint(resp.Header.Get(HashHeader), 16, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("gateway: chunk %d: bad %s header: %w", c, HashHeader, err)
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, msg.MaxChunkPayload+1))
	if err != nil {
		return nil, 0, fmt.Errorf("gateway: chunk %d: %w", c, err)
	}
	if len(payload) > msg.MaxChunkPayload {
		return nil, 0, fmt.Errorf("gateway: chunk %d: payload exceeds %d bytes", c, msg.MaxChunkPayload)
	}
	if !content.Verify(payload, hash) {
		return nil, 0, fmt.Errorf("gateway: chunk %d: content hash mismatch", c)
	}
	return payload, hash, nil
}
