package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"lifting/internal/content"
	"lifting/internal/msg"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, body
}

func TestServeFromStoreThenCache(t *testing.T) {
	src := content.NewSource(11, 1316)
	store := content.NewStore(8)
	payload, hash := src.Chunk(3)
	store.Put(3, payload, hash)

	g := New(Options{Store: store})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/stream/chunk/3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !bytes.Equal(body, payload) {
		t.Fatal("served payload differs from stored payload")
	}
	if got := resp.Header.Get(HashHeader); got != fmt.Sprintf("%016x", hash) {
		t.Fatalf("%s = %q, want %016x", HashHeader, got, hash)
	}
	if got := resp.Header.Get(SourceHeader); got != "store" {
		t.Fatalf("%s = %q, want store", SourceHeader, got)
	}

	// A repeat of the same chunk is a cache hit: the store is not consulted.
	resp, _ = get(t, ts.URL+"/stream/chunk/3")
	if got := resp.Header.Get(SourceHeader); got != "cache" {
		t.Fatalf("repeat %s = %q, want cache", SourceHeader, got)
	}
	st := g.Stats()
	if st.StoreHits != 1 || st.CacheHits != 1 || st.Requests != 2 {
		t.Fatalf("stats = %+v, want 1 store hit, 1 cache hit, 2 requests", st)
	}
	if st.BytesServed != uint64(2*len(payload)) {
		t.Fatalf("bytes served = %d, want %d", st.BytesServed, 2*len(payload))
	}
}

func TestOriginRegeneratesAnyChunk(t *testing.T) {
	src := content.NewSource(42, 512)
	g := New(Options{Origin: src})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Chunk 9999 was never stored anywhere; the origin regenerates it.
	resp, body := get(t, ts.URL+"/stream/chunk/9999")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	want := content.Generate(42, 9999, 512)
	if !bytes.Equal(body, want) {
		t.Fatal("origin payload differs from canonical generation")
	}
	if got := resp.Header.Get(SourceHeader); got != "origin" {
		t.Fatalf("%s = %q, want origin", SourceHeader, got)
	}
}

func TestMissAndBadRequest(t *testing.T) {
	g := New(Options{Store: content.NewStore(4)})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, _ := get(t, ts.URL+"/stream/chunk/7")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing chunk status = %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/stream/chunk/notanumber")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status = %d, want 400", resp.StatusCode)
	}
	if st := g.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestUpstreamChainVerifiesAndCaches(t *testing.T) {
	src := content.NewSource(7, 1024)
	originGW := New(Options{Origin: src})
	originTS := httptest.NewServer(originGW.Handler())
	defer originTS.Close()

	edge := New(Options{Upstream: originTS.URL})
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	want, wantHash := src.Chunk(5)
	payload, hash, err := FetchChunk(nil, edgeTS.URL, 5)
	if err != nil {
		t.Fatalf("fetch through edge: %v", err)
	}
	if !bytes.Equal(payload, want) || hash != wantHash {
		t.Fatal("edge delivered wrong payload or hash")
	}
	if st := edge.Stats(); st.UpstreamHits != 1 {
		t.Fatalf("edge upstream hits = %d, want 1", st.UpstreamHits)
	}
	// The edge now holds the chunk: a repeat is a local cache hit.
	if _, _, err := FetchChunk(nil, edgeTS.URL, 5); err != nil {
		t.Fatalf("repeat fetch: %v", err)
	}
	if st := edge.Stats(); st.CacheHits != 1 {
		t.Fatalf("edge cache hits = %d, want 1", st.CacheHits)
	}
}

func TestUpstreamCorruptionRejected(t *testing.T) {
	// An upstream that serves corrupted bytes under a truthful hash header
	// must be rejected by the edge's verification, surfacing as a 404.
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		good := content.Generate(7, 5, 1024)
		w.Header().Set(HashHeader, fmt.Sprintf("%016x", content.HashBytes(good)))
		good[0] ^= 0xff
		_, _ = w.Write(good)
	}))
	defer evil.Close()

	edge := New(Options{Upstream: evil.URL})
	ts := httptest.NewServer(edge.Handler())
	defer ts.Close()

	resp, _ := get(t, ts.URL+"/stream/chunk/5")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupted upstream chunk status = %d, want 404", resp.StatusCode)
	}
	if st := edge.Stats(); st.Misses != 1 || st.UpstreamHits != 0 {
		t.Fatalf("stats = %+v, want a miss and no upstream hit", st)
	}
}

func TestHaveEndpoint(t *testing.T) {
	src := content.NewSource(3, 64)
	store := content.NewStore(8)
	for _, c := range []msg.ChunkID{1, 4, 6} {
		p, h := src.Chunk(c)
		store.Put(c, p, h)
	}
	g := New(Options{Store: store})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	_, body := get(t, ts.URL+"/stream/have")
	var ids []uint32
	if err := json.Unmarshal(body, &ids); err != nil {
		t.Fatalf("have JSON: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("have = %v, want 3 ids", ids)
	}
}

// TestGatewayConcurrentLoad is the load smoke CI runs with -race: a few
// hundred concurrent HTTP clients against one loopback gateway, asserting
// every request succeeds with verified bytes, goodput is nonzero, and the
// server's goroutines drain after Close (no leak).
func TestGatewayConcurrentLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	src := content.NewSource(99, 1316)
	store := content.NewStore(64)
	for c := msg.ChunkID(0); c < 16; c++ {
		p, h := src.Chunk(c)
		store.Put(c, p, h)
	}
	g := New(Options{Store: store, CacheCapacity: 64})
	addr, err := g.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	const clients = 300
	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c := msg.ChunkID(i % 16)
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, _, err := FetchChunk(client, base, c)
			if err != nil {
				errs <- err
				return
			}
			want, _ := src.Chunk(c)
			if !bytes.Equal(payload, want) {
				errs <- fmt.Errorf("chunk %d: payload mismatch", c)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := g.Stats()
	if st.Requests != clients {
		t.Fatalf("requests = %d, want %d", st.Requests, clients)
	}
	if st.BytesServed != uint64(clients*1316) {
		t.Fatalf("bytes served = %d, want %d (nonzero goodput, all verified)", st.BytesServed, clients*1316)
	}
	if st.Misses != 0 {
		t.Fatalf("misses = %d, want 0", st.Misses)
	}

	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	client.CloseIdleConnections()
	// The server's per-connection goroutines drain after Close; allow a
	// little slack for the runtime's own background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}
