package chaos

import (
	"reflect"
	"testing"
	"time"

	"lifting/internal/msg"
)

func testConfig() Config {
	cands := make([]msg.NodeID, 0, 20)
	for i := 1; i <= 20; i++ {
		cands = append(cands, msg.NodeID(i))
	}
	return Config{
		Seed:          42,
		Duration:      20 * time.Second,
		Candidates:    cands,
		Crashes:       3,
		Outage:        time.Second,
		Partitions:    2,
		PartitionSpan: 2 * time.Second,
		PartitionSize: 5,
		LossBursts:    2,
		BurstLoss:     0.3,
		BurstSpan:     time.Second,
		BurstSize:     4,
		DupProb:       0.01,
		ReorderProb:   0.02,
		ReorderDelay:  20 * time.Millisecond,
		SkewCount:     4,
		SkewMax:       0.02,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testConfig())
	b := Generate(testConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different plans:\n%+v\nvs\n%+v", a, b)
	}
	other := testConfig()
	other.Seed++
	c := Generate(other)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := testConfig()
	p := Generate(cfg)

	counts := p.Counts()
	if counts[Crash] != cfg.Crashes || counts[Restart] != cfg.Crashes {
		t.Fatalf("want %d crash/restart pairs, got %d/%d",
			cfg.Crashes, counts[Crash], counts[Restart])
	}
	if counts[Partition] != cfg.Partitions || counts[Heal] != cfg.Partitions {
		t.Fatalf("want %d partition/heal pairs, got %d/%d",
			cfg.Partitions, counts[Partition], counts[Heal])
	}
	if counts[LossBurst] != cfg.LossBursts || counts[LossHeal] != cfg.LossBursts {
		t.Fatalf("want %d burst/heal pairs, got %d/%d",
			cfg.LossBursts, counts[LossBurst], counts[LossHeal])
	}
	if len(p.Skew) != cfg.SkewCount {
		t.Fatalf("want %d skewed clocks, got %d", cfg.SkewCount, len(p.Skew))
	}

	candidate := map[msg.NodeID]bool{}
	for _, id := range cfg.Candidates {
		candidate[id] = true
	}
	lo, hi := cfg.Duration/4, cfg.Duration*3/4
	last := time.Duration(0)
	for _, e := range p.Events {
		if e.At < lo || e.At > hi {
			t.Fatalf("event %v at %v outside fault window [%v, %v]", e.Kind, e.At, lo, hi)
		}
		if e.At < last {
			t.Fatalf("events not sorted: %v after %v", e.At, last)
		}
		last = e.At
		if len(e.Nodes) == 0 {
			t.Fatalf("event %v has no targets", e.Kind)
		}
		for _, id := range e.Nodes {
			if !candidate[id] {
				t.Fatalf("event %v targets non-candidate %d", e.Kind, id)
			}
		}
	}
	for id, f := range p.Skew {
		if !candidate[id] {
			t.Fatalf("skew targets non-candidate %d", id)
		}
		if f < 1-cfg.SkewMax || f > 1+cfg.SkewMax {
			t.Fatalf("skew factor %v outside ±%v", f, cfg.SkewMax)
		}
	}
}

func TestGeneratePairsOrdered(t *testing.T) {
	p := Generate(testConfig())
	down := map[msg.NodeID]bool{}
	for _, e := range p.Events {
		switch e.Kind {
		case Crash:
			for _, id := range e.Nodes {
				down[id] = true
			}
		case Restart:
			for _, id := range e.Nodes {
				if !down[id] {
					t.Fatalf("restart of %d before its crash", id)
				}
				down[id] = false
			}
		}
	}
	for id, stillDown := range down {
		if stillDown {
			t.Fatalf("node %d crashed but never restarted", id)
		}
	}
}

func TestGenerateZeroConfig(t *testing.T) {
	p := Generate(Config{Seed: 1})
	if len(p.Events) != 0 || len(p.Skew) != 0 {
		t.Fatalf("zero config should produce an empty plan, got %+v", p)
	}
	if p.SkewFactor(3) != 1 {
		t.Fatalf("unskewed node should have factor 1")
	}
}
