// Package chaos is the deterministic fault-injection plane: a seeded
// schedule of crashes, restarts, partitions, correlated loss bursts and
// standing duplication/reordering/clock-skew that layers onto any runtime
// backend. The schedule is materialized up front as a Plan — a plain value
// derived only from a Config — so the same seed produces the same faults on
// the simulator, the live runtime and a multi-process UDP deployment, and
// the sharded simulator stays byte-identical across shard counts (events
// are applied from the harness timer, which runs in the engine's global
// phase).
//
// LiFTinG's guarantees (conf_middleware_GuerraouiHKMP10 §4–§5) are
// statistical claims about detection under faulty conditions; this package
// is what lets the soak experiment assert them as standing invariants
// instead of clean-room point checks.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"lifting/internal/msg"
	"lifting/internal/rng"
)

// EventKind identifies one scheduled fault transition.
type EventKind uint8

const (
	// Crash takes the target nodes down hard: their processes stop, their
	// traffic is dropped in both directions, and their in-memory protocol
	// state is lost. Reputation state survives on the (remote) managers.
	Crash EventKind = iota + 1
	// Restart brings previously crashed nodes back with fresh protocol
	// state; their manager score entries must be re-adopted, not reset.
	Restart
	// Partition splits the network: Nodes form the minority island, every
	// other alive node the majority. Traffic across the cut is dropped.
	Partition
	// Heal removes the partition installed by the preceding Partition
	// event.
	Heal
	// LossBurst overlays a correlated inbound loss probability (Loss) on
	// the target nodes — the "regional outage" pattern.
	LossBurst
	// LossHeal removes the loss burst from the target nodes.
	LossHeal
)

// String names the kind for transcripts and tables.
func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case LossBurst:
		return "loss-burst"
	case LossHeal:
		return "loss-heal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fault transition at a virtual-time offset from the start of
// the run.
type Event struct {
	At    time.Duration
	Kind  EventKind
	Nodes []msg.NodeID // crash/restart targets, partition minority, burst set
	Loss  float64      // LossBurst only: the correlated inbound loss
}

// Plan is a complete fault schedule plus the standing link perturbations
// applied for the whole run. A Plan is pure data: generating it draws all
// randomness up front, so applying it costs no draws and cannot perturb the
// protocol's random streams.
type Plan struct {
	Events []Event
	// Skew maps a node to its clock-rate factor: 1.05 fires every local
	// timer 5% late, against which the period auditor must hold.
	Skew map[msg.NodeID]float64
	// Standing duplication/reordering applied to every node's uplink for
	// the whole run.
	DupProb      float64
	ReorderProb  float64
	ReorderDelay time.Duration
}

// Config seeds a Plan. The zero value of any knob disables that fault class.
type Config struct {
	Seed     uint64
	Duration time.Duration
	// Candidates are the nodes faults may target. Keep the stream source
	// (and any node whose expulsion an oracle asserts) out of this list.
	Candidates []msg.NodeID

	Crashes int           // crash→restart cycles, one node each
	Outage  time.Duration // down time between a crash and its restart

	Partitions    int           // partition→heal episodes
	PartitionSpan time.Duration // how long each partition holds
	PartitionSize int           // minority island size (nodes)

	LossBursts int           // correlated-loss episodes
	BurstLoss  float64       // inbound loss overlaid during a burst
	BurstSpan  time.Duration // how long each burst holds
	BurstSize  int           // nodes per burst

	DupProb      float64 // standing duplication probability, all nodes
	ReorderProb  float64 // standing reordering probability, all nodes
	ReorderDelay time.Duration

	SkewCount int     // how many candidates run skewed clocks
	SkewMax   float64 // max relative skew, e.g. 0.02 = ±2%
}

// Generate materializes the deterministic fault schedule for cfg. All
// randomness is drawn here, from a stream derived from cfg.Seed alone, in a
// fixed order — two calls with equal configs return identical plans.
//
// Faults land in the middle half of the run, [Duration/4, 3·Duration/4]:
// the first quarter lets the protocol ramp up cleanly and the last quarter
// gives every heal time to recover, which is what the soak's
// goodput-recovery and zero-honest-expulsion oracles measure.
func Generate(cfg Config) *Plan {
	r := rng.New(cfg.Seed).Derive("chaos")
	p := &Plan{
		Skew:         map[msg.NodeID]float64{},
		DupProb:      cfg.DupProb,
		ReorderProb:  cfg.ReorderProb,
		ReorderDelay: cfg.ReorderDelay,
	}
	if len(cfg.Candidates) == 0 || cfg.Duration <= 0 {
		return p
	}
	window := cfg.Duration / 2
	start := cfg.Duration / 4
	at := func(s *rng.Stream) time.Duration {
		return start + time.Duration(s.Float64()*float64(window))
	}

	cr := r.Derive("crash")
	ncr := cfg.Crashes
	if ncr > len(cfg.Candidates) {
		ncr = len(cfg.Candidates)
	}
	// Distinct targets: one crash→restart cycle per node keeps every
	// cycle well-formed even when outages overlap in time.
	for _, idx := range cr.SampleK(len(cfg.Candidates), ncr) {
		target := cfg.Candidates[idx]
		t := at(cr)
		up := t + cfg.Outage
		if up > start+window {
			up = start + window
		}
		p.Events = append(p.Events,
			Event{At: t, Kind: Crash, Nodes: []msg.NodeID{target}},
			Event{At: up, Kind: Restart, Nodes: []msg.NodeID{target}})
	}

	pa := r.Derive("partition")
	for i := 0; i < cfg.Partitions; i++ {
		size := cfg.PartitionSize
		if size <= 0 || size > len(cfg.Candidates) {
			size = len(cfg.Candidates) / 4
		}
		if size == 0 {
			break
		}
		island := pa.SampleK(len(cfg.Candidates), size)
		nodes := make([]msg.NodeID, 0, size)
		for _, idx := range island {
			nodes = append(nodes, cfg.Candidates[idx])
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		t := at(pa)
		heal := t + cfg.PartitionSpan
		if heal > start+window {
			heal = start + window
		}
		p.Events = append(p.Events,
			Event{At: t, Kind: Partition, Nodes: nodes},
			Event{At: heal, Kind: Heal, Nodes: nodes})
	}

	lb := r.Derive("burst")
	for i := 0; i < cfg.LossBursts; i++ {
		size := cfg.BurstSize
		if size <= 0 || size > len(cfg.Candidates) {
			size = len(cfg.Candidates) / 4
		}
		if size == 0 {
			break
		}
		hit := lb.SampleK(len(cfg.Candidates), size)
		nodes := make([]msg.NodeID, 0, size)
		for _, idx := range hit {
			nodes = append(nodes, cfg.Candidates[idx])
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		t := at(lb)
		heal := t + cfg.BurstSpan
		if heal > start+window {
			heal = start + window
		}
		p.Events = append(p.Events,
			Event{At: t, Kind: LossBurst, Nodes: nodes, Loss: cfg.BurstLoss},
			Event{At: heal, Kind: LossHeal, Nodes: nodes})
	}

	sk := r.Derive("skew")
	if cfg.SkewCount > 0 && cfg.SkewMax > 0 {
		count := cfg.SkewCount
		if count > len(cfg.Candidates) {
			count = len(cfg.Candidates)
		}
		for _, idx := range sk.SampleK(len(cfg.Candidates), count) {
			// Uniform in [-SkewMax, +SkewMax], excluding the exact center
			// only by measure zero; 1.0 would just be a no-op.
			p.Skew[cfg.Candidates[idx]] = 1 + (sk.Float64()*2-1)*cfg.SkewMax
		}
	}

	sortEvents(p.Events)
	return p
}

// DeploymentConfig returns the standard fault schedule for a multi-process
// deployment: every knob is a pure function of the flags all processes
// already share (seed, duration, gossip period) and the candidate list, so
// each lifting-node process generates the identical Plan independently and
// replays it on its own clock.
func DeploymentConfig(seed uint64, duration, period time.Duration, candidates []msg.NodeID) Config {
	n := len(candidates)
	island := n / 5
	if island < 1 {
		island = 1
	}
	crashes := n / 8
	if crashes < 1 {
		crashes = 1
	}
	if crashes > 3 {
		crashes = 3
	}
	return Config{
		Seed:       seed,
		Duration:   duration,
		Candidates: candidates,

		Crashes: crashes,
		Outage:  4 * period,

		Partitions:    1,
		PartitionSpan: 8 * period,
		PartitionSize: island,

		LossBursts: 1,
		BurstLoss:  0.25,
		BurstSpan:  8 * period,
		BurstSize:  island,

		DupProb:      0.01,
		ReorderProb:  0.02,
		ReorderDelay: period / 10,

		SkewCount: 2,
		SkewMax:   0.02,
	}
}

// sortEvents orders the schedule by time, breaking ties by kind then first
// target so application order is deterministic.
func sortEvents(ev []Event) {
	sort.SliceStable(ev, func(i, j int) bool {
		if ev[i].At != ev[j].At {
			return ev[i].At < ev[j].At
		}
		if ev[i].Kind != ev[j].Kind {
			return ev[i].Kind < ev[j].Kind
		}
		if len(ev[i].Nodes) > 0 && len(ev[j].Nodes) > 0 {
			return ev[i].Nodes[0] < ev[j].Nodes[0]
		}
		return false
	})
}

// Counts tallies the schedule by kind, for tables and transcripts.
func (p *Plan) Counts() map[EventKind]int {
	c := map[EventKind]int{}
	for _, e := range p.Events {
		c[e.Kind]++
	}
	return c
}

// SkewFactor returns the clock-rate factor for a node (1.0 when unskewed).
func (p *Plan) SkewFactor(id msg.NodeID) float64 {
	if f, ok := p.Skew[id]; ok && f > 0 {
		return f
	}
	return 1
}
