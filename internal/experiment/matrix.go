package experiment

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stream"
)

// The adversary scenario matrix turns every rational deviation the paper
// enumerates (§4 attacks, §5 lies) into a reproducible scenario with a
// statistical pass/fail oracle. Each scenario assembles a LiFTinG-policed
// cluster with an adversary cohort, runs seeded Monte-Carlo repetitions
// (fanned across the parallel Workers driver), and classifies the outcome
// against the paper's claims: detection α above a bound, false positives β
// below a bound, honest/adversary score-mode separation, and expulsion
// verdicts. The matrix is the standing regression net every later scaling or
// performance PR must keep green.

// DetectMode selects how a scenario decides that an adversary was caught.
type DetectMode int

// Detection modes.
const (
	// DetectScore flags nodes whose normalized score falls below the
	// calibrated threshold η (or who were expelled) — the score-based
	// detection of §5.1/§6.
	DetectScore DetectMode = iota
	// DetectAudit runs a local-history audit (§5.3) of every adversary and
	// an equal honest sample; detection is the audit's expulsion verdict
	// (entropy checks, refused audits).
	DetectAudit
	// DetectAuditBlame also audits, but detection is a majority of polled
	// history entries going unconfirmed — the a-posteriori cross-checking
	// signal that catches history forgers whose entropy looks fine (§5.3).
	DetectAuditBlame
	// DetectAuditPeriod audits and detects through the gossip-period check:
	// nonzero period-stretch blame (§5.3). Score-based detection misses a
	// stretcher whose acks still land inside the 2·Tg timeout.
	DetectAuditPeriod
)

// Oracle is the statistical pass/fail contract of one scenario.
type Oracle struct {
	// MinDetection is the α lower bound over all repetitions. Negative
	// disables the check (bad-mouthers are undetectable by design; the
	// oracle for them is that honest nodes survive).
	MinDetection float64
	// MaxFalsePositive is the β upper bound over all repetitions.
	MaxFalsePositive float64
	// MinGap is the lower bound on the mean honest-minus-adversary score
	// gap. Zero disables the check (audit scenarios deliberately blunt
	// score separation — that is what makes them audit scenarios).
	MinGap float64
	// NoHonestExpulsion requires that no honest node was expelled in any
	// repetition (the blame-spam oracle).
	NoHonestExpulsion bool
}

// Scenario is one registry entry: an attack, the backends it runs on, the
// cluster shape, and the oracle its outcome must satisfy.
type Scenario struct {
	// Name identifies the scenario (`lifting-sim matrix -filter <name>`).
	Name string
	// Attack cites the paper's section for the strategy under test.
	Attack string
	// Backends are the execution backends the scenario supports. The first
	// entry is the Monte-Carlo backend (repetitions run there); wall-clock
	// backends (live, udp) always run a single repetition.
	Backends []runtime.Kind
	// Detect selects the detection criterion.
	Detect DetectMode
	// Oracle is the pass/fail contract.
	Oracle Oracle

	// Population shape: N nodes, the top Adversaries ids adversarial.
	// Quick* override under MatrixConfig.Quick (0 = same as full).
	N, Adversaries           int
	QuickN, QuickAdversaries int
	F                        int
	Loss                     float64
	Period                   time.Duration
	Duration, QuickDuration  time.Duration
	// BlameMode defaults to cluster.BlameDirect.
	BlameMode cluster.BlameMode
	// Expel turns on expulsion at the calibrated η, after Grace periods
	// (0 = the cluster default).
	Expel bool
	Grace int
	// EtaSigma and EtaFloor place the threshold: η = −max(EtaSigma·σ,
	// EtaFloor) with σ from an honest calibration pilot. Defaults: 6, 1.5.
	EtaSigma, EtaFloor float64
	// Entropy-audit knobs (DetectAudit/DetectAuditBlame scenarios).
	Gamma, GammaFanin float64
	MinEntropySamples int
	// Behavior builds the adversary behavior for id; adv is the adversary
	// cohort in ascending id order.
	Behavior func(id msg.NodeID, dir *membership.Directory, r *rng.Stream, adv []msg.NodeID) gossip.Behavior
}

// Scenarios returns the full attack registry: every §4/§5 deviation as a
// runnable scenario. The returned slice is freshly built; callers may filter
// it freely.
func Scenarios() []Scenario {
	degree := func(d1, d2, d3 float64) func(msg.NodeID, *membership.Directory, *rng.Stream, []msg.NodeID) gossip.Behavior {
		return func(msg.NodeID, *membership.Directory, *rng.Stream, []msg.NodeID) gossip.Behavior {
			return freerider.Degree{Delta1: d1, Delta2: d2, Delta3: d3}
		}
	}
	colluder := func(mitm, forge bool) func(msg.NodeID, *membership.Directory, *rng.Stream, []msg.NodeID) gossip.Behavior {
		return func(id msg.NodeID, dir *membership.Directory, r *rng.Stream, adv []msg.NodeID) gossip.Behavior {
			c := freerider.NewColluder(id, adv, 0.9, dir, r)
			c.MITM = mitm
			c.ForgeUniform = forge
			return c
		}
	}
	return []Scenario{
		{
			Name: "fanout-decrease", Attack: "§4.1(i) reduced fanout",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectScore,
			Oracle:   Oracle{MinDetection: 0.9, MaxFalsePositive: 0.02, MinGap: 2},
			Behavior: degree(0.5, 0, 0),
		},
		{
			Name: "partial-propose", Attack: "§4.1(ii) partial propose + §5.2 ack lie",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectScore,
			Oracle:   Oracle{MinDetection: 0.9, MaxFalsePositive: 0.02, MinGap: 2},
			Behavior: degree(0, 0.6, 0),
		},
		{
			Name: "partial-serve", Attack: "§4.3(i) partial serve",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectScore,
			Oracle:   Oracle{MinDetection: 0.9, MaxFalsePositive: 0.02, MinGap: 2},
			Behavior: degree(0, 0, 0.6),
		},
		{
			// The wise freerider of §6.3.1 with every rational lie of §5.2;
			// the one entry that runs on every backend, so the matrix pins
			// the cross-backend verdict agreement of the runtime seam.
			Name: "wise-degree", Attack: "§6.3.1 ∆=(.5,.5,.5) + §5.2 ack lies",
			Backends: []runtime.Kind{runtime.KindSim, runtime.KindLive, runtime.KindUDP},
			Detect:   DetectScore,
			Oracle:   Oracle{MinDetection: 0.75, MaxFalsePositive: 0.1, MinGap: 3},
			N:        24, Adversaries: 4, F: 6, Period: 60 * time.Millisecond,
			Duration: 2400 * time.Millisecond, QuickDuration: 2400 * time.Millisecond,
			EtaFloor: 3,
			Behavior: degree(0.5, 0.5, 0.5),
		},
		{
			Name: "period-stretch", Attack: "§4.1(iv) gossip-period ×2",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectAuditPeriod,
			Oracle: Oracle{MinDetection: 0.9, MaxFalsePositive: 0},
			Behavior: func(msg.NodeID, *membership.Directory, *rng.Stream, []msg.NodeID) gossip.Behavior {
				return freerider.PeriodStretcher{Factor: 2}
			},
		},
		{
			Name: "biased-selection", Attack: "§4.1(iii) coalition bias pm=0.9",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectAudit,
			Oracle:   Oracle{MinDetection: 0.9, MaxFalsePositive: 0},
			Behavior: colluder(false, false),
		},
		{
			Name: "mitm", Attack: "§5.2 Fig 8b ack-partner substitution",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectAudit,
			Oracle:   Oracle{MinDetection: 0.9, MaxFalsePositive: 0},
			Behavior: colluder(true, false),
		},
		{
			Name: "history-forgery", Attack: "§5.3 uniform audit forgery",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectAuditBlame,
			Oracle:   Oracle{MinDetection: 0.9, MaxFalsePositive: 0},
			Behavior: colluder(false, true),
		},
		{
			Name: "colluder-stretcher", Attack: "§4.1(iii)+(iv) combined",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectAudit,
			Oracle: Oracle{MinDetection: 0.9, MaxFalsePositive: 0},
			Behavior: func(id msg.NodeID, dir *membership.Directory, r *rng.Stream, adv []msg.NodeID) gossip.Behavior {
				return freerider.StretchingColluder{
					Colluder: freerider.NewColluder(id, adv, 0.9, dir, r),
					Factor:   2,
				}
			},
		},
		{
			// The bad-mouther is undetectable by construction (blames carry
			// no proof, §5.1); the claim under test is resilience: a bounded
			// spam rate must not push any honest node over the threshold.
			Name: "blame-spam", Attack: "§5.1 bad-mouthing (wrongful blame flood)",
			Backends: []runtime.Kind{runtime.KindSim}, Detect: DetectScore,
			Oracle:    Oracle{MinDetection: -1, MaxFalsePositive: 0, NoHonestExpulsion: true},
			BlameMode: cluster.BlameMessages, Expel: true, Grace: 16,
			EtaFloor: 6,
			Behavior: func(id msg.NodeID, dir *membership.Directory, _ *rng.Stream, _ []msg.NodeID) gossip.Behavior {
				return &freerider.BlameSpammer{Self: id, Dir: dir, Targets: 2, Value: 7}
			},
		},
	}
}

// ScenarioNames returns the registry's scenario names in order.
func ScenarioNames() []string {
	scs := Scenarios()
	names := make([]string, len(scs))
	for i, s := range scs {
		names[i] = s.Name
	}
	return names
}

// MatrixConfig parameterizes a matrix sweep.
type MatrixConfig struct {
	// Quick shrinks populations, durations and repetitions for a smoke pass.
	Quick bool
	// Backends restricts scenarios to these backends (intersection with
	// each scenario's declared set). Nil means every backend a scenario
	// declares; lifting-sim defaults to sim so wall-clock backends stay
	// opt-in on the command line.
	Backends []runtime.Kind
	// Filter keeps only scenarios whose name contains this substring.
	Filter string
	// Seed roots all randomness (0 = 1).
	Seed uint64
	// Reps is the Monte-Carlo repetition count on the sim backend
	// (0 = 3 full, 1 quick). Wall-clock backends always run one.
	Reps int
	// Workers fans repetitions across goroutines (0 = GOMAXPROCS).
	Workers int
	// Shards partitions the discrete-event engine inside each repetition
	// (0 = serial legacy engine, −1 = one shard per CPU, n ≥ 1 = exactly
	// n). Scenarios the engine cannot shard deterministically run serial
	// regardless; for the rest, results are byte-identical for every
	// shard count ≥ 1.
	Shards int
}

// MatrixRow is the aggregated outcome of one scenario on one backend.
type MatrixRow struct {
	Scenario, Attack string
	Backend          runtime.Kind
	Reps             int
	// Eta is the calibrated detection threshold the scenario classified
	// against.
	Eta float64
	// Detection is α: caught adversaries / adversaries, over all reps.
	Detection float64
	// FalsePositives is β: flagged honest / honest, over all reps.
	FalsePositives float64
	// Gap is the mean honest-minus-adversary normalized score gap.
	Gap float64
	// HonestExpelled counts honest expulsions across all reps.
	HonestExpelled int
	// Overhead is verification bytes over dissemination bytes, summed
	// across all reps (the Table 5 ratio, measured on the attack workload).
	Overhead float64
	// DupRatio is duplicate serves over all serves across all reps — the
	// gossip redundancy the adversary's fanout distortion induces.
	DupRatio float64
	// GoodputBytes is the verified payload first-delivered over the content
	// plane, summed across all reps. Every scenario streams real bytes, so a
	// zero here fails the row regardless of its oracle.
	GoodputBytes uint64
	// StreamLag and StreamJitter are the mean chunk lag and inter-arrival
	// jitter, averaged over reps. Both are sim-time quantities derived from
	// the collector's integer nanosecond counters, not wall-clock readings.
	//lint:allow no-time-in-results sim-time means derived from integer ns counters; byte-stable for a fixed seed
	StreamLag, StreamJitter time.Duration
	// Failures lists violated oracle bounds (empty = pass).
	Failures []string
}

// Verdict renders the row's oracle outcome.
func (r MatrixRow) Verdict() string {
	if len(r.Failures) == 0 {
		return "ok"
	}
	return "FAIL: " + strings.Join(r.Failures, "; ")
}

// MatrixResult is the whole sweep.
type MatrixResult struct {
	Rows []MatrixRow
	// ScenariosRun is the number of distinct scenarios that ran.
	ScenariosRun int
	// Failed reports whether any oracle failed.
	Failed bool
}

// repOutcome is the classification of a single repetition.
type repOutcome struct {
	advDetected, advTotal      int
	honestFlagged, honestTotal int
	honestMean, advMean        float64
	honestExpelled             int
	// Wire accounting for the row's overhead/redundancy columns.
	protoBytes, verifBytes  uint64
	dupChunks, usefulChunks uint64
	// Content-plane QoE for the row's goodput/lag/jitter columns.
	goodputBytes            uint64
	lagMeanNs, jitterMeanNs uint64
}

// shape is a Scenario with sizing defaults resolved.
type shape struct {
	Scenario
	n, adv int
	dur    time.Duration
	// shards is the engine-shard request passed through to every
	// repetition's cluster (scenarios that are not shardable — direct
	// blame, per-node conditions — fall back to the serial engine there).
	shards int
}

func (s Scenario) resolve(quick bool) shape {
	sh := shape{Scenario: s, n: s.N, adv: s.Adversaries, dur: s.Duration}
	if sh.n == 0 {
		sh.n = 60
	}
	if sh.adv == 0 {
		sh.adv = 6
	}
	if sh.dur == 0 {
		sh.dur = 10 * time.Second
	}
	if sh.F == 0 {
		sh.F = 7
	}
	if sh.Period == 0 {
		sh.Period = 100 * time.Millisecond
	}
	if sh.BlameMode == 0 {
		sh.BlameMode = cluster.BlameDirect
	}
	if sh.EtaSigma == 0 {
		sh.EtaSigma = 6
	}
	if sh.EtaFloor == 0 {
		sh.EtaFloor = 1.5
	}
	if quick {
		if s.QuickN > 0 {
			sh.n = s.QuickN
		} else if s.N == 0 {
			sh.n = 40
		}
		// The adversary cohort does not shrink: coalition attacks need
		// enough colluders to concentrate the fanout history.
		if s.QuickAdversaries > 0 {
			sh.adv = s.QuickAdversaries
		}
		if s.QuickDuration > 0 {
			sh.dur = s.QuickDuration
		} else if s.Duration == 0 {
			sh.dur = 5 * time.Second
		}
	}
	return sh
}

// adversaryIDs returns the cohort: the top adv ids.
func (sh shape) adversaryIDs() []msg.NodeID {
	ids := make([]msg.NodeID, 0, sh.adv)
	for i := sh.n - sh.adv; i < sh.n; i++ {
		ids = append(ids, msg.NodeID(i))
	}
	return ids
}

// options assembles the cluster options for one repetition.
func (sh shape) options(backend runtime.Kind, seed uint64) cluster.Options {
	adv := sh.adversaryIDs()
	first := adv[0]
	gamma := sh.Gamma
	if gamma == 0 {
		gamma = 4.5
	}
	gammaFanin := sh.GammaFanin
	if gammaFanin == 0 {
		gammaFanin = 2.0
	}
	minSamples := sh.MinEntropySamples
	if minSamples == 0 {
		minSamples = 16
	}
	return cluster.Options{
		N:       sh.n,
		Seed:    seed,
		Backend: backend,
		Shards:  sh.shards,
		Gossip: gossip.Config{
			F:              sh.F,
			Period:         sh.Period,
			ChunkPayload:   1316,
			HistoryPeriods: 50,
			// Without jitter the propose order — and with it each node's
			// share of the first-proposal race — is frozen at start time,
			// so an adversary's service demand (the thing partial-serve
			// blame is proportional to) becomes a lottery over offsets.
			PhaseJitter: sh.Period / 2,
		},
		Core: core.Config{
			F:                 sh.F,
			Period:            sh.Period,
			Pdcc:              1,
			HistoryPeriods:    50,
			Gamma:             gamma,
			GammaFanin:        gammaFanin,
			MinEntropySamples: minSamples,
			// An honest node skips a propose phase whenever jittered
			// arrivals leave it nothing pending, so the period check needs
			// more slack than the default 0.8 to keep honest histories
			// clean while still condemning a ×2 stretcher (~0.5).
			PeriodCheckSlack: 0.6,
			Eta:              -1e9,
		},
		Rep:    reputation.Config{M: 8, Eta: -1e9},
		Stream: stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		// Latency jitter matters: with a constant delay the first-proposal
		// race has a fixed winner per pair, so one adversary can end up
		// with no service demand — and no blame — by accident of its start
		// offset rather than by strategy.
		NetDefaults: net.Conditions{
			LossIn:        sh.Loss,
			LatencyBase:   2 * time.Millisecond,
			LatencyJitter: 4 * time.Millisecond,
		},
		LiFTinG:      true,
		BlameMode:    sh.BlameMode,
		ExpectedLoss: sh.Loss,
		BehaviorFor: func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
			if id >= first && id < msg.NodeID(sh.n) {
				return sh.Behavior(id, dir, r, adv)
			}
			return nil
		},
	}
}

// runRep executes one seeded repetition and classifies it against eta. On
// cancellation it tears the cluster down and returns a zero outcome — the
// caller discards everything once it sees the context error.
func (sh shape) runRep(ctx context.Context, backend runtime.Kind, seed uint64, comp, eta float64) repOutcome {
	opts := sh.options(backend, seed)
	opts.Rep.Compensation = comp
	if sh.Expel {
		opts.ExpelOnDetection = true
		opts.Rep.Eta = eta
		opts.Rep.GracePeriods = sh.Grace
	}
	c := cluster.New(opts)

	var mu sync.Mutex
	audits := make(map[msg.NodeID]core.AuditOutcome)
	auditing := sh.Detect != DetectScore
	adv := sh.adversaryIDs()
	if auditing {
		auditor := c.Auditor(func(o core.AuditOutcome) {
			mu.Lock()
			audits[o.Target] = o
			mu.Unlock()
		})
		targets := append([]msg.NodeID{}, adv...)
		// An equal-sized honest control sample: the same audit must not
		// condemn protocol-faithful histories.
		for i := 1; len(targets) < 2*len(adv) && i < sh.n-sh.adv; i++ {
			targets = append(targets, msg.NodeID(i))
		}
		c.After(sh.dur, func() {
			for _, id := range targets {
				auditor.Audit(id)
			}
		})
	}

	c.Start()
	c.StartStream(sh.dur)
	tail := 6 * sh.Period
	if auditing {
		tail = 12 * sh.Period // AuditReq + poll round-trips (4·Tg timeouts each)
	}
	if err := c.RunContext(ctx, sh.dur+tail); err != nil {
		c.Close()
		return repOutcome{}
	}
	c.Close()

	isAdv := make(map[msg.NodeID]bool, len(adv))
	for _, id := range adv {
		isAdv[id] = true
	}
	out := repOutcome{}
	_, out.protoBytes = c.Collector.ProtocolTotals()
	_, out.verifBytes = c.Collector.VerificationTotals()
	out.dupChunks = c.Collector.DupChunks()
	out.usefulChunks = c.Collector.UsefulChunks()
	out.goodputBytes = c.Collector.GoodputBytes()
	out.lagMeanNs = c.Collector.StreamLagMeanNs()
	out.jitterMeanNs = c.Collector.StreamJitterMeanNs()
	scores := c.Scores()
	ids := make([]msg.NodeID, 0, len(scores))
	//lint:allow ordered-map-range collect-then-sort: ids are sorted before classification
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	detected := func(id msg.NodeID) bool {
		_, expelled := c.Expelled[id]
		switch sh.Detect {
		case DetectAudit:
			return audits[id].Expel
		case DetectAuditBlame:
			o := audits[id]
			return o.Polled > 0 && 2*o.Unconfirmed > o.Polled
		case DetectAuditPeriod:
			return audits[id].PeriodBlame > 0
		default:
			return scores[id] < eta || expelled
		}
	}
	audited := func(id msg.NodeID) bool {
		_, ok := audits[id]
		return ok
	}
	for _, id := range ids {
		if id == 0 {
			// The source serves everyone but requests nothing, so it is
			// excluded from the score statistics — but not from the
			// expulsion count: a spam flood that expels node 0 kills the
			// stream for everyone and must fail NoHonestExpulsion.
			if _, expelled := c.Expelled[id]; expelled {
				out.honestExpelled++
			}
			continue
		}
		if isAdv[id] {
			out.advMean += scores[id]
			if !auditing || audited(id) {
				out.advTotal++
				if detected(id) {
					out.advDetected++
				}
			}
			continue
		}
		out.honestMean += scores[id]
		if _, expelled := c.Expelled[id]; expelled {
			out.honestExpelled++
		}
		if !auditing || audited(id) {
			out.honestTotal++
			if detected(id) {
				out.honestFlagged++
			}
		}
	}
	if nh := sh.n - 1 - sh.adv; nh > 0 {
		out.honestMean /= float64(nh)
	}
	if sh.adv > 0 {
		out.advMean /= float64(sh.adv)
	}
	return out
}

// check applies the oracle to an aggregated row.
func (o Oracle) check(r *MatrixRow) {
	if o.MinDetection >= 0 && r.Detection < o.MinDetection {
		r.Failures = append(r.Failures, fmt.Sprintf("α %.2f < %.2f", r.Detection, o.MinDetection))
	}
	if r.FalsePositives > o.MaxFalsePositive {
		r.Failures = append(r.Failures, fmt.Sprintf("β %.3f > %.3f", r.FalsePositives, o.MaxFalsePositive))
	}
	if o.MinGap != 0 && r.Gap < o.MinGap {
		r.Failures = append(r.Failures, fmt.Sprintf("gap %.2f < %.2f", r.Gap, o.MinGap))
	}
	if o.NoHonestExpulsion && r.HonestExpelled > 0 {
		r.Failures = append(r.Failures, fmt.Sprintf("%d honest expelled", r.HonestExpelled))
	}
}

// Matrix runs the adversary scenario sweep and renders the attack ×
// (α, β, gap, verdict) table. The result's Failed flag is the caller's exit
// code: any oracle violation means the detection claims regressed.
// Cancelling ctx aborts the sweep — mid-calibration or mid-repetition — and
// returns ctx.Err().
func Matrix(ctx context.Context, cfg MatrixConfig) (*Table, *MatrixResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 3
		if cfg.Quick {
			reps = 1
		}
	}
	root := rng.New(cfg.Seed).Derive("matrix")

	res := &MatrixResult{}
	for _, sc := range Scenarios() {
		if cfg.Filter != "" && !strings.Contains(sc.Name, cfg.Filter) {
			continue
		}
		backends := sc.Backends
		if cfg.Backends != nil {
			backends = nil
			for _, b := range sc.Backends {
				if slices.Contains(cfg.Backends, b) {
					backends = append(backends, b)
				}
			}
		}
		if len(backends) == 0 {
			continue
		}
		sh := sc.resolve(cfg.Quick)
		sh.shards = cfg.Shards
		scRoot := root.Derive(sc.Name)

		// Calibrate b̃ and η once per scenario from an honest pilot (always
		// on the discrete-event backend): the analysis's saturated-workload
		// b̃ over-compensates the real chunk workload, and the threshold
		// must sit at a margin below the empirical honest spread.
		cal, err := cluster.Calibrate(ctx, sh.options(runtime.KindSim, scRoot.Derive("cal").Seed()), sh.dur)
		if err != nil {
			return nil, nil, err
		}
		eta := -sh.EtaSigma * cal.ScoreStd
		if floor := -sh.EtaFloor; eta > floor {
			eta = floor
		}

		ran := false
		for _, backend := range backends {
			n := reps
			if backend != runtime.KindSim {
				n = 1 // wall-clock backends stream in real time
			}
			outs := make([]repOutcome, n)
			if err := parallelRange(ctx, cfg.Workers, n, func(i int) {
				seed := scRoot.Derive(fmt.Sprintf("rep/%d", i)).Seed()
				outs[i] = sh.runRep(ctx, backend, seed, cal.Compensation, eta)
			}); err != nil {
				return nil, nil, err
			}

			row := MatrixRow{
				Scenario: sc.Name,
				Attack:   sc.Attack,
				Backend:  backend,
				Reps:     n,
				Eta:      eta,
			}
			var advDet, advTot, honFlag, honTot int
			var proto, verif, dup, useful uint64
			var lagNs, jitterNs uint64
			for _, o := range outs {
				advDet += o.advDetected
				advTot += o.advTotal
				honFlag += o.honestFlagged
				honTot += o.honestTotal
				row.Gap += o.honestMean - o.advMean
				row.HonestExpelled += o.honestExpelled
				proto += o.protoBytes
				verif += o.verifBytes
				dup += o.dupChunks
				useful += o.usefulChunks
				row.GoodputBytes += o.goodputBytes
				lagNs += o.lagMeanNs
				jitterNs += o.jitterMeanNs
			}
			if advTot > 0 {
				row.Detection = float64(advDet) / float64(advTot)
			}
			if honTot > 0 {
				row.FalsePositives = float64(honFlag) / float64(honTot)
			}
			if proto > 0 {
				row.Overhead = float64(verif) / float64(proto)
			}
			if dup+useful > 0 {
				row.DupRatio = float64(dup) / float64(dup+useful)
			}
			row.Gap /= float64(n)
			row.StreamLag = time.Duration(lagNs / uint64(n))
			row.StreamJitter = time.Duration(jitterNs / uint64(n))
			sc.Oracle.check(&row)
			// Universal QoE oracle: every scenario streams real payload, so
			// zero goodput means the content plane itself broke — fail the
			// row even when the detection oracle is satisfied.
			if row.GoodputBytes == 0 {
				row.Failures = append(row.Failures, "no goodput")
			}
			res.Rows = append(res.Rows, row)
			if len(row.Failures) > 0 {
				res.Failed = true
			}
			ran = true
		}
		if ran {
			res.ScenariosRun++
		}
	}

	t := &Table{
		Title:   "Adversary matrix — §4/§5 attacks × statistical oracles",
		Columns: []string{"scenario", "attack", "backend", "reps", "η", "detection α", "false pos β", "gap", "overhead", "dup serves", "goodput", "lag", "jitter", "verdict"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Scenario, r.Attack, r.Backend.String(),
			F(float64(r.Reps), 0), F(r.Eta, 2), Pct(r.Detection),
			Pct(r.FalsePositives), F(r.Gap, 2), Pct(r.Overhead),
			Pct(r.DupRatio), F(float64(r.GoodputBytes), 0)+" B",
			r.StreamLag.Round(time.Millisecond).String(),
			r.StreamJitter.Round(time.Millisecond).String(),
			r.Verdict())
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d scenarios, %d rows; b̃ and η calibrated per scenario from an honest pilot", res.ScenariosRun, len(res.Rows)),
		"overhead = verification bytes / dissemination bytes on the attack workload; dup serves = duplicate / all serves",
		"goodput = verified payload bytes first-delivered (zero fails the row); lag/jitter = mean chunk delay and inter-arrival deviation",
		"score scenarios classify score < η; audit scenarios use the §5.3 expulsion verdict (or majority-unconfirmed history for forgers)",
		"blame-spam's α is 0 by design — bad-mouthers are unidentifiable; its oracle is that no honest node crosses η or is expelled")
	return t, res, nil
}
