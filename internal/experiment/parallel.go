package experiment

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: non-positive means one worker
// per available CPU (GOMAXPROCS).
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelRange splits [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi) on each concurrently, blocking until all complete. With one
// worker it degenerates to a plain call — the serial baseline.
//
// Determinism contract: callers write results into preallocated slots
// indexed by item (never append from workers) and derive per-item rng
// streams from a shared root by item index (rng.Stream derivation reads the
// parent seed without mutating it), so the outcome is bit-identical for any
// worker count. Aggregation happens serially afterwards, in index order:
// float addition is not associative.
func parallelRange(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
