package experiment

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: non-positive means one worker
// per available CPU (GOMAXPROCS).
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelRange splits [0, n) into one contiguous chunk per worker and runs
// fn(i) for every index concurrently, blocking until all workers stop. With
// one worker it degenerates to a plain loop — the serial baseline.
//
// Cancellation: every worker checks ctx between items and stops early when
// it is cancelled; parallelRange then returns ctx.Err(). Callers must treat
// their result slots as garbage on a non-nil return — some items never ran.
//
// Determinism contract: callers write results into preallocated slots
// indexed by item (never append from workers) and derive per-item rng
// streams from a shared root by item index (rng.Stream derivation reads the
// parent seed without mutating it), so the outcome is bit-identical for any
// worker count. Aggregation happens serially afterwards, in index order:
// float addition is not associative.
func parallelRange(ctx context.Context, workers, n int, fn func(i int)) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	runChunk := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			select {
			case <-done:
				return
			default:
			}
			fn(i)
		}
	}
	if workers <= 1 {
		runChunk(0, n)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			runChunk(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
