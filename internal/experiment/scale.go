package experiment

import (
	"context"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stream"
)

// ScaleConfig describes the scale workload: the same LiFTinG-policed
// broadcast with a freerider cohort run at two population sizes — a
// 300-node baseline (the paper's deployment scale, §7) and a large target
// population — asserting that the expulsion verdict is scale-invariant.
// Per-node verification traffic depends on the fanout f, not on N, so the
// calibrated compensation and threshold transfer from the baseline to the
// target population; what the large run actually stresses is the substrate:
// manager assignment (the epoch cache), blame flushing and min-vote reads
// at 10k+ nodes, all in message mode.
type ScaleConfig struct {
	// N is the target population (10000 for the headline run).
	N int
	// BaselineN is the reference population whose verdict N must reproduce
	// (300, the paper's deployment size). The blame compensation and the
	// expulsion threshold are calibrated once, at this scale.
	BaselineN int
	// FreeriderPct of each population freerides at degree Delta.
	FreeriderPct float64
	Delta        [3]float64
	F            int
	Period       time.Duration
	// M managers per node; blames and score reads travel as messages.
	M        int
	MeanLoss float64
	Duration time.Duration
	Seed     uint64
	// Shards partitions the discrete-event engine (0 = serial legacy
	// engine, −1 = one shard per CPU, n ≥ 1 = exactly n). The workload is
	// message-mode with uniform 5 ms base latency, so it is always
	// eligible; results are byte-identical for every shard count ≥ 1.
	Shards int
}

// DefaultScaleConfig returns the 10k-node scenario.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		N:            10000,
		BaselineN:    300,
		FreeriderPct: 0.10,
		// Hard freeriding in fanout and propose, full serves: δ1/δ2 blame is
		// self-contained (acks reveal the shrunken partner list, witnesses
		// fail the confirms), whereas a δ3 freerider wrongfully blames its
		// honest receivers for never acking chunks it silently dropped —
		// which would push the honest tail toward the threshold and make a
		// clean verdict unattainable at any scale.
		Delta:  [3]float64{0.7, 0.7, 0},
		F:      7,
		Period: 500 * time.Millisecond,
		M:      25,
		// 1% loss: wrongful blame grows superlinearly with loss (broken
		// chains compound), and the workload's subject is the substrate at
		// scale, not loss tolerance (Fig. 10/11 cover that axis).
		MeanLoss: 0.01,
		Duration: 20 * time.Second,
		Seed:     23,
		Shards:   -1,
	}
}

// ScaleRun is the outcome of one population's run.
type ScaleRun struct {
	N, Freeriders      int
	FreeridersExpelled int
	HonestExpelled     int
	// DetectionMean is the mean expulsion time of the detected freeriders,
	// on the engine's virtual clock — a seed-determined quantity.
	//lint:allow no-time-in-results sim-time mean on the engine clock; byte-stable for a fixed seed
	DetectionMean time.Duration
	// Events is the number of discrete events the engine executed.
	Events uint64
	// OverheadPpm is the verification overhead (verification bytes /
	// dissemination bytes) in parts per million — integral so the run
	// stays a comparable struct and seeded output stays byte-stable.
	OverheadPpm uint64
	// DupChunks and UsefulChunks split received serves into redundant
	// copies and first deliveries.
	DupChunks, UsefulChunks uint64
	// GoodputBytes is the verified chunk payload delivered to first-time
	// receivers — the content plane's QoE headline.
	GoodputBytes uint64
	// StreamLagMeanNs and StreamJitterMeanNs are the mean source-to-receiver
	// chunk lag and the mean inter-arrival deviation from the chunk interval,
	// in integer nanoseconds so the run stays a comparable struct.
	StreamLagMeanNs, StreamJitterMeanNs uint64
	// Elapsed is the wall-clock cost of the run, for the bench harness. It
	// never reaches tables or the JSON document; document-building callers
	// must keep it out (see Scale's table construction).
	//lint:allow no-time-in-results bench-only wall-clock cost; excluded from tables and the JSON document
	Elapsed time.Duration
}

// StreamLag returns the mean chunk lag as a duration.
func (r ScaleRun) StreamLag() time.Duration { return time.Duration(r.StreamLagMeanNs) }

// StreamJitter returns the mean inter-arrival jitter as a duration.
func (r ScaleRun) StreamJitter() time.Duration { return time.Duration(r.StreamJitterMeanNs) }

// Overhead returns the verification overhead as a ratio.
func (r ScaleRun) Overhead() float64 { return float64(r.OverheadPpm) / 1e6 }

// DupRatio returns the share of received serves that were redundant.
func (r ScaleRun) DupRatio() float64 {
	total := r.DupChunks + r.UsefulChunks
	if total == 0 {
		return 0
	}
	return float64(r.DupChunks) / float64(total)
}

// CohortExpelled reports whether every freerider was expelled.
func (r ScaleRun) CohortExpelled() bool { return r.FreeridersExpelled == r.Freeriders }

// HonestClean reports whether no honest node was expelled.
func (r ScaleRun) HonestClean() bool { return r.HonestExpelled == 0 }

// Verdict summarizes the run's expulsion outcome.
func (r ScaleRun) Verdict() string {
	switch {
	case r.CohortExpelled() && r.HonestClean():
		return "cohort expelled, honest clean"
	case r.CohortExpelled():
		return "cohort expelled, honest casualties"
	default:
		return "cohort not fully expelled"
	}
}

// ScaleResult aggregates the baseline and target runs.
type ScaleResult struct {
	Baseline, Target ScaleRun
	// Compensation and Eta are the calibrated b̃ and threshold shared by
	// both runs.
	Compensation, Eta float64
	// Agree reports whether the target population reproduced the baseline's
	// verdict.
	Agree bool
	// TargetSnapshots are the target run's periodic metrics snapshots
	// (every snapshotEvery periods), deterministic across shard and worker
	// counts — they become the JSON document's metrics_snapshots section.
	TargetSnapshots []metrics.Snapshot
}

// snapshotEvery is the period sampling interval of the metrics snapshots.
const snapshotEvery = 5

// chunkPayload is 4x the paper's 1316-byte chunk at the same bitrate: 8
// chunks per gossip period instead of 32. The chunk rate sets both the
// discrete-event cost per node (what caps the 10k-node run) and the blame
// quantum of a late acknowledgement (expectations are per served chunk), so
// coarser chunks keep the honest blame tail within the calibrated spread.
const chunkPayload = 5264

// scaleOptions assembles the cluster for one population of the workload.
func (cfg ScaleConfig) scaleOptions(n int) cluster.Options {
	nFree := int(cfg.FreeriderPct * float64(n))
	firstFree := msg.NodeID(n - nFree)
	return cluster.Options{
		N:    n,
		Seed: cfg.Seed,
		// The discrete-event engine: 10k real sockets or goroutines is a
		// deployment question, not this workload's.
		Backend: runtime.KindSim,
		Shards:  cfg.Shards,
		Gossip: gossip.Config{
			F:              cfg.F,
			Period:         cfg.Period,
			ChunkPayload:   chunkPayload,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              cfg.F,
			Period:         cfg.Period,
			Pdcc:           1,
			HistoryPeriods: 50,
			Gamma:          8.95,
		},
		// Grace of 24 periods: a single late-ack burst (the heavy tail of
		// honest wrongful blame — one lost ack forfeits a whole period of
		// per-chunk serve expectations) amortizes over r ≥ 24 before η ever
		// applies, while δ = 0.7 freeriders accrue blame steadily and are not
		// latency-bound (§6.3.1: σ(s) shrinks as 1/√r).
		Rep:          reputation.Config{M: cfg.M, FlushEvery: 5, GracePeriods: 24},
		Stream:       stream.Config{BitrateBps: 674_000, ChunkPayload: chunkPayload},
		NetDefaults:  net.Uniform(cfg.MeanLoss, 5*time.Millisecond),
		LiFTinG:      true,
		BlameMode:    cluster.BlameMessages,
		ExpectedLoss: cfg.MeanLoss,
		BehaviorFor: func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if id >= firstFree && id < msg.NodeID(n) {
				return freerider.Degree{Delta1: cfg.Delta[0], Delta2: cfg.Delta[1], Delta3: cfg.Delta[2]}
			}
			return nil
		},
	}
}

// scaleRun executes one population with the shared compensation/threshold.
// Alongside the outcome it returns the run's periodic metrics snapshots,
// sampled on period boundaries (sim time), every snapshotEvery periods.
func (cfg ScaleConfig) scaleRun(ctx context.Context, n int, compensation, eta float64) (ScaleRun, []metrics.Snapshot, error) {
	//lint:allow no-wallclock bench-only wall-clock cost kept out of the document
	start := time.Now()
	opts := cfg.scaleOptions(n)
	opts.Rep.Compensation = compensation
	opts.Rep.Eta = eta
	opts.ExpelOnDetection = true
	var snaps []metrics.Snapshot
	opts.OnPeriodSnapshot = func(p msg.Period, snap metrics.Snapshot) {
		if p%snapshotEvery == 0 {
			snaps = append(snaps, snap)
		}
	}
	c := cluster.New(opts)
	c.Start()
	c.StartStream(cfg.Duration)
	if err := c.RunContext(ctx, cfg.Duration+2*cfg.Period); err != nil {
		c.Close()
		return ScaleRun{}, nil, err
	}
	c.Close()

	//lint:allow no-wallclock bench-only wall-clock cost kept out of the document
	run := ScaleRun{N: n, Freeriders: len(c.Freeriders), Elapsed: time.Since(start)}
	if c.Engine != nil {
		run.Events = c.Engine.Events()
	}
	_, vb := c.Collector.VerificationTotals()
	_, pb := c.Collector.ProtocolTotals()
	if pb > 0 {
		run.OverheadPpm = vb * 1_000_000 / pb
	}
	run.DupChunks = c.Collector.DupChunks()
	run.UsefulChunks = c.Collector.UsefulChunks()
	run.GoodputBytes = c.Collector.GoodputBytes()
	run.StreamLagMeanNs = c.Collector.StreamLagMeanNs()
	run.StreamJitterMeanNs = c.Collector.StreamJitterMeanNs()
	var latency time.Duration
	//lint:allow ordered-map-range commutative integer sums and counts; order cannot affect the totals
	for id, at := range c.Expelled {
		if c.Freeriders[id] {
			run.FreeridersExpelled++
			latency += at
		} else {
			run.HonestExpelled++
		}
	}
	if run.FreeridersExpelled > 0 {
		run.DetectionMean = latency / time.Duration(run.FreeridersExpelled)
	}
	return run, snaps, nil
}

// Scale runs the scale workload: calibrate at the baseline population, run
// the baseline and the target population with the shared threshold, and
// compare expulsion verdicts. Cancelling ctx aborts whichever phase is
// running — calibration, baseline or the large population.
func Scale(ctx context.Context, cfg ScaleConfig) (*Table, *ScaleResult, error) {
	// Calibrate b̃ and η once, from an honest pilot at baseline scale: the
	// per-node wrongful-blame rate depends on fanout and loss, not on N, so
	// the threshold is meaningful at both populations — and a 300-node pilot
	// costs nothing next to the 10k-node run.
	cal, err := cluster.Calibrate(ctx, cfg.scaleOptions(cfg.BaselineN), cfg.Duration)
	if err != nil {
		return nil, nil, err
	}
	// −10σ: the honest extreme over 10k nodes — including one amortized
	// late-ack burst — stays above it, while the least-blamed δ = 0.7
	// freerider sits a full unit below it by grace expiry.
	eta := -10 * cal.ScoreStd

	res := &ScaleResult{Compensation: cal.Compensation, Eta: eta}
	if res.Baseline, _, err = cfg.scaleRun(ctx, cfg.BaselineN, cal.Compensation, eta); err != nil {
		return nil, nil, err
	}
	if res.Target, res.TargetSnapshots, err = cfg.scaleRun(ctx, cfg.N, cal.Compensation, eta); err != nil {
		return nil, nil, err
	}
	res.Agree = res.Baseline.Verdict() == res.Target.Verdict()

	// The table carries only seed-determined quantities (virtual detection
	// time, event counts) — wall-clock cost stays in ScaleRun.Elapsed for
	// programmatic callers, so the structured JSON document of a seeded run
	// is byte-identical across repetitions.
	t := &Table{
		Title: "Scale — expulsion verdict at baseline vs large population (message-mode reputation)",
		Columns: []string{"population", "freeriders", "expelled", "honest expelled",
			"mean detection", "events", "overhead", "dup serves",
			"goodput", "lag", "jitter", "verdict"},
	}
	for _, r := range []ScaleRun{res.Baseline, res.Target} {
		t.AddRow(
			F(float64(r.N), 0),
			F(float64(r.Freeriders), 0),
			F(float64(r.FreeridersExpelled), 0),
			F(float64(r.HonestExpelled), 0),
			r.DetectionMean.Round(time.Millisecond).String(),
			F(float64(r.Events), 0),
			Pct(r.Overhead()),
			Pct(r.DupRatio()),
			F(float64(r.GoodputBytes), 0)+" B",
			r.StreamLag().Round(time.Millisecond).String(),
			r.StreamJitter().Round(time.Millisecond).String(),
			r.Verdict(),
		)
	}
	agree := "yes"
	if !res.Agree {
		agree = "NO"
	}
	t.Notes = append(t.Notes,
		"verdicts agree: "+agree,
		"b̃ = "+F(cal.Compensation, 2)+" blame/period and η = "+F(eta, 2)+" calibrated once at baseline scale (per-node traffic depends on f, not N)",
		"all blames and expulsions travel as messages to each target's M managers; manager assignment served from the epoch cache",
		"overhead = verification bytes / dissemination bytes (Table 5's metric); dup serves = share of received serves the node already held",
		"goodput = verified payload bytes first-delivered over the content plane; lag = mean source-to-receiver chunk delay; jitter = mean inter-arrival deviation from the chunk interval")
	return t, res, nil
}
