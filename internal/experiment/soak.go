package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"lifting/internal/chaos"
	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stream"
)

// SoakConfig describes the soak workload: churn plus one adversary cohort
// plus a seeded fault schedule (crashes with restarts, partitions, loss
// bursts, duplication, reordering, clock skew), all running at once against
// a set of standing invariants checked at every score period. Where the
// other cluster experiments each isolate one axis, the soak's subject is
// composition: LiFTinG's §4–§5 guarantees are statistical claims about
// detection under faulty conditions, so the expulsion verdict must survive
// the faults happening *while* the attack runs — and honest nodes that
// merely crashed, rebooted or sat behind a partition must not be expelled
// for it.
type SoakConfig struct {
	// N is the initial population.
	N int
	// FreeriderPct of the initial population runs the attack behavior.
	FreeriderPct float64
	// Attack selects the adversary cohort's behavior: "freeride" (degree
	// Delta, the default), "blame-spam" (§5.1 bad-mouthing) or
	// "period-stretch" (§4.1(iv) gossip-period ×2).
	Attack string
	Delta  [3]float64
	F      int
	Period time.Duration
	// M managers per node; blames and score reads travel as messages so the
	// crash→restart manager handoff is actually exercised.
	M        int
	MeanLoss float64
	Duration time.Duration
	Seed     uint64
	// Grace is the minimum tracked age before η applies.
	Grace int
	// Shards partitions the discrete-event engine (sim backend only; same
	// semantics as ScaleConfig.Shards).
	Shards int
	// Backend selects the execution backend; the soak runs on all three.
	Backend runtime.Kind

	// Joins and Leaves are mid-stream arrivals/departures, spread over the
	// middle half of the run — the same window the fault plan uses.
	Joins, Leaves int

	// Fault-plan knobs, passed through to chaos.Generate. Candidates are
	// derived: honest non-source nodes that are not scheduled to leave.
	Crashes       int
	Outage        time.Duration
	Partitions    int
	PartitionSpan time.Duration
	PartitionSize int
	LossBursts    int
	BurstLoss     float64
	BurstSpan     time.Duration
	BurstSize     int
	DupProb       float64
	ReorderProb   float64
	ReorderDelay  time.Duration
	SkewCount     int
	SkewMax       float64

	// RecoveryPeriods bounds recovery: after every heal-like event
	// (restart, partition heal, loss heal) cumulative goodput must have
	// grown within this many periods.
	RecoveryPeriods int

	// EtaSigma and EtaFloor place the threshold: η = −max(EtaSigma·σ,
	// EtaFloor) with σ from an honest chaos-free calibration pilot.
	// EtaFloor 0 means the attack-specific default (6 for blame-spam,
	// whose whole point is wrongful blame pressure on honest scores; 3
	// otherwise).
	EtaSigma, EtaFloor float64
}

// DefaultSoakConfig returns the full soak scenario: 120 nodes, 30 s of
// stream, churn, a 10% freerider cohort and a fault plan touching roughly a
// third of the honest population.
func DefaultSoakConfig() SoakConfig {
	return SoakConfig{
		N:            120,
		FreeriderPct: 0.10,
		Attack:       "freeride",
		// Hard freeriding in fanout and propose, full serves — the same
		// self-contained δ profile the scale workload uses (δ3 blame would
		// land on honest receivers and poison the no-honest-expulsion
		// invariant by construction).
		Delta:    [3]float64{0.7, 0.7, 0},
		F:        7,
		Period:   250 * time.Millisecond,
		M:        12,
		MeanLoss: 0.01,
		Duration: 30 * time.Second,
		Seed:     29,
		Grace:    24,
		Shards:   -1,

		Joins:  10,
		Leaves: 10,

		Crashes:       4,
		Outage:        time.Second,
		Partitions:    2,
		PartitionSpan: 2 * time.Second,
		PartitionSize: 8,
		LossBursts:    2,
		BurstLoss:     0.25,
		BurstSpan:     2 * time.Second,
		BurstSize:     8,
		DupProb:       0.01,
		ReorderProb:   0.02,
		ReorderDelay:  20 * time.Millisecond,
		SkewCount:     4,
		SkewMax:       0.02,

		RecoveryPeriods: 16,
		// 16σ: a 25% correlated loss burst costs a victim ≈10σ of transient
		// blame before it amortizes (blame grows superlinearly with loss),
		// while δ = 0.7 freeriders sit several times deeper by grace expiry.
		EtaSigma: 16,
	}
}

// QuickSoakConfig shrinks the scenario to CI-smoke size: it must finish in
// well under a minute per backend, wall-clock bound on live/udp. Three
// knobs differ from a plain shrink, all for the wall-clock backends where
// scheduler jitter rides on top of the fault plan: the window is 25 s (a
// marginal freerider's Total/r needs the extra periods to converge past η
// when blame messages are lost in the burst), η gets an absolute floor of
// 8 (the longer calibration pilot measures a smaller σ, which would
// otherwise move η *up* toward the honest fault transients it must
// clear), and the cohort freerides harder (δ = 0.85 vs the full run's
// 0.7) so its blame-rate asymptote sits well below that floor even when
// the burst eats a fraction of the blame messages. At N = 48 the honest
// and freerider score distributions are close enough that a single
// jittery run can smear δ = 0.7 across an η safe for honest transients;
// the full-size run keeps the paper-faithful profile.
func QuickSoakConfig() SoakConfig {
	cfg := DefaultSoakConfig()
	cfg.N = 48
	cfg.Duration = 25 * time.Second
	cfg.EtaFloor = 8
	cfg.Delta = [3]float64{0.85, 0.85, 0}
	cfg.Grace = 16
	cfg.Joins, cfg.Leaves = 4, 4
	cfg.Crashes = 2
	cfg.Outage = 750 * time.Millisecond
	cfg.Partitions = 1
	cfg.PartitionSize = 5
	cfg.LossBursts = 1
	cfg.BurstSize = 5
	cfg.SkewCount = 3
	cfg.RecoveryPeriods = 12
	return cfg
}

// SoakResult aggregates one soak run.
type SoakResult struct {
	N, Freeriders    int
	Joined, Departed int
	Handoffs         int
	// PlanEvents and ChaosApplied pin schedule execution: every generated
	// fault event must actually have fired.
	PlanEvents   int
	ChaosApplied int
	// CrashCycles/PartitionEpisodes/LossBurstEpisodes/SkewedNodes describe
	// the generated plan (each episode is an apply+heal event pair).
	CrashCycles       int
	PartitionEpisodes int
	LossBurstEpisodes int
	SkewedNodes       int
	// Expulsion split. DepartedExpelled counts nodes blamed past η after
	// they had already left voluntarily — a verdict about a node no longer
	// in the system, tracked separately from live honest casualties.
	FreeridersExpelled int
	HonestExpelled     int
	DepartedExpelled   int
	// PeriodsChecked is how many period snapshots the standing invariants
	// ran against; MaxTracked is the largest per-manager tracked-target
	// count ever observed.
	PeriodsChecked int
	MaxTracked     int
	// Violations lists every standing-invariant violation, in period order.
	Violations []string
	// GoodputBytes and OverheadPpm summarize the content plane.
	GoodputBytes uint64
	OverheadPpm  uint64
	// Compensation and Eta are the calibrated b̃ and threshold.
	Compensation, Eta float64
	// Snapshots are the periodic metrics snapshots (every snapshotEvery
	// periods) — the JSON document's metrics_snapshots section.
	Snapshots []metrics.Snapshot
}

// HonestClean reports whether no live honest node was expelled.
func (r *SoakResult) HonestClean() bool { return r.HonestExpelled == 0 }

// CohortExpelled reports whether the whole adversary cohort was expelled.
func (r *SoakResult) CohortExpelled() bool { return r.FreeridersExpelled == r.Freeriders }

// etaFloor returns the configured or attack-specific threshold floor.
func (cfg SoakConfig) etaFloor() float64 {
	if cfg.EtaFloor > 0 {
		return cfg.EtaFloor
	}
	if cfg.Attack == "blame-spam" {
		return 6
	}
	return 3
}

// attackBehavior maps the attack name onto a cohort behavior constructor,
// or nil for an unknown name.
func (cfg SoakConfig) attackBehavior(firstFree msg.NodeID) func(msg.NodeID, *membership.Directory, *rng.Stream) gossip.Behavior {
	n := msg.NodeID(cfg.N)
	inCohort := func(id msg.NodeID) bool { return id >= firstFree && id < n }
	switch cfg.Attack {
	case "", "freeride":
		return func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if inCohort(id) {
				return freerider.Degree{Delta1: cfg.Delta[0], Delta2: cfg.Delta[1], Delta3: cfg.Delta[2]}
			}
			return nil
		}
	case "blame-spam":
		return func(id msg.NodeID, dir *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if inCohort(id) {
				return &freerider.BlameSpammer{Self: id, Dir: dir, Targets: 2, Value: 7}
			}
			return nil
		}
	case "period-stretch":
		return func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if inCohort(id) {
				return freerider.PeriodStretcher{Factor: 2}
			}
			return nil
		}
	}
	return nil
}

// soakOptions assembles the cluster options (threshold fields are filled in
// after calibration).
func (cfg SoakConfig) soakOptions(behavior func(msg.NodeID, *membership.Directory, *rng.Stream) gossip.Behavior) cluster.Options {
	return cluster.Options{
		N:       cfg.N,
		Seed:    cfg.Seed,
		Backend: cfg.Backend,
		Shards:  cfg.Shards,
		Gossip: gossip.Config{
			F:              cfg.F,
			Period:         cfg.Period,
			ChunkPayload:   1316,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              cfg.F,
			Period:         cfg.Period,
			Pdcc:           1,
			HistoryPeriods: 50,
			Gamma:          8,
		},
		Rep:          reputation.Config{M: cfg.M, GracePeriods: cfg.Grace},
		Stream:       stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults:  net.Uniform(cfg.MeanLoss, 5*time.Millisecond),
		LiFTinG:      true,
		BlameMode:    cluster.BlameMessages,
		ExpectedLoss: cfg.MeanLoss,
		BehaviorFor:  behavior,
	}
}

// soakMaxViolations caps the violation transcript: a systemic breakage
// would otherwise flood the result with one line per period per kind.
const soakMaxViolations = 24

// soakChecker holds the standing-invariant state checked at every period
// snapshot: counter monotonicity, sent ≥ recv + dropped conservation,
// bounded per-manager reputation state, and the per-period goodput history
// the post-run recovery check reads.
type soakChecker struct {
	maxPop     int
	prevKinds  []metrics.KindCount
	prevSnap   metrics.Snapshot
	havePrev   bool
	goodput    map[msg.Period]uint64
	last       msg.Period
	periods    int
	maxTracked int
	truncated  bool
	violations []string
	snaps      []metrics.Snapshot
}

func newSoakChecker(maxPop int) *soakChecker {
	return &soakChecker{maxPop: maxPop, goodput: make(map[msg.Period]uint64)}
}

func (k *soakChecker) fail(format string, args ...any) {
	if len(k.violations) >= soakMaxViolations {
		if !k.truncated {
			k.truncated = true
			k.violations = append(k.violations, "… further violations truncated")
		}
		return
	}
	k.violations = append(k.violations, fmt.Sprintf(format, args...))
}

// check runs the per-period invariants against one snapshot. tracked is the
// largest per-manager tracked-target count at this period.
func (k *soakChecker) check(p msg.Period, snap metrics.Snapshot, tracked int) {
	k.periods++
	if tracked > k.maxTracked {
		k.maxTracked = tracked
	}
	if tracked > k.maxPop {
		k.fail("period %d: a manager tracks %d targets, population ever is %d", p, tracked, k.maxPop)
	}
	cur := make(map[string]metrics.KindCount, len(snap.Kinds))
	for _, kc := range snap.Kinds {
		cur[kc.Kind] = kc
		// Conservation: every sent message is eventually received or
		// dropped; the difference is in flight and never negative. (The
		// inequality direction also tolerates kernel-level UDP loss, which
		// the collector cannot see.)
		if kc.RecvMsgs+kc.DropMsgs > kc.SentMsgs {
			k.fail("period %d: %s messages not conserved: recv %d + dropped %d > sent %d",
				p, kc.Kind, kc.RecvMsgs, kc.DropMsgs, kc.SentMsgs)
		}
		if kc.RecvBytes+kc.DropBytes > kc.SentBytes {
			k.fail("period %d: %s bytes not conserved: recv %d + dropped %d > sent %d",
				p, kc.Kind, kc.RecvBytes, kc.DropBytes, kc.SentBytes)
		}
	}
	if k.havePrev {
		// Monotonicity, iterated in the previous snapshot's (deterministic)
		// kind order so a violation transcript is stable too.
		for _, pv := range k.prevKinds {
			cv, ok := cur[pv.Kind]
			if !ok {
				k.fail("period %d: %s counters disappeared from the snapshot", p, pv.Kind)
				continue
			}
			if cv.SentMsgs < pv.SentMsgs || cv.RecvMsgs < pv.RecvMsgs || cv.DropMsgs < pv.DropMsgs ||
				cv.SentBytes < pv.SentBytes || cv.RecvBytes < pv.RecvBytes || cv.DropBytes < pv.DropBytes {
				k.fail("period %d: %s counters moved backwards", p, pv.Kind)
			}
		}
		for _, m := range []struct {
			name       string
			prev, curr uint64
		}{
			{"goodput bytes", k.prevSnap.GoodputBytes, snap.GoodputBytes},
			{"useful chunks", k.prevSnap.UsefulChunks, snap.UsefulChunks},
			{"dup chunks", k.prevSnap.DupChunks, snap.DupChunks},
			{"blames received", k.prevSnap.BlamesReceived, snap.BlamesReceived},
			{"expulsions", k.prevSnap.Expulsions, snap.Expulsions},
		} {
			if m.curr < m.prev {
				k.fail("period %d: %s moved backwards: %d → %d", p, m.name, m.prev, m.curr)
			}
		}
	}
	k.prevKinds = snap.Kinds
	k.prevSnap = snap
	k.havePrev = true
	k.goodput[p] = snap.GoodputBytes
	if p > k.last {
		k.last = p
	}
	if int(p)%snapshotEvery == 0 {
		k.snaps = append(k.snaps, snap)
	}
}

// recovery runs the post-run goodput-recovery invariant: within
// recoveryPeriods of every heal-like event, cumulative goodput must have
// grown — the stream went back to delivering after the fault cleared.
func (k *soakChecker) recovery(plan *chaos.Plan, period time.Duration, recoveryPeriods int) {
	if k.last == 0 || period <= 0 {
		return
	}
	for _, ev := range plan.Events {
		switch ev.Kind {
		case chaos.Restart, chaos.Heal, chaos.LossHeal:
		default:
			continue
		}
		hp := msg.Period(ev.At/period) + 1
		cp := hp + msg.Period(recoveryPeriods)
		if cp > k.last {
			cp = k.last
		}
		if hp >= cp {
			continue
		}
		before, okB := k.goodput[hp]
		after, okA := k.goodput[cp]
		if !okB || !okA {
			continue
		}
		if after <= before {
			k.fail("no goodput recovery after %s at %s: %d bytes at period %d, still %d at period %d",
				ev.Kind, ev.At, before, hp, after, cp)
		}
	}
}

// Soak runs the soak workload: calibrate a threshold on an honest
// chaos-free pilot, then stream under churn, the configured attack and the
// generated fault plan, with the standing invariants checked at every score
// period. Cancelling ctx aborts the run.
func Soak(ctx context.Context, cfg SoakConfig) (*Table, *SoakResult, error) {
	nFree := int(cfg.FreeriderPct * float64(cfg.N))
	firstFree := msg.NodeID(cfg.N - nFree)
	behavior := cfg.attackBehavior(firstFree)
	if behavior == nil {
		return nil, nil, fmt.Errorf("soak: unknown attack %q (want freeride, blame-spam or period-stretch)", cfg.Attack)
	}

	// Draw the departure set before generating the fault plan: a node that
	// leaves voluntarily cannot also crash or sit in a partition minority,
	// so the plan's candidates are the honest stayers. The adversary cohort
	// and the source stay out too — their fates are what the oracles
	// assert, so a fault must never be an alternative explanation.
	churnRand := rng.New(cfg.Seed).Derive("soak-churn")
	leavePool := int(firstFree) - 1
	leaves := cfg.Leaves
	if leaves > leavePool {
		leaves = leavePool
	}
	leaveIdx := churnRand.SampleK(leavePool, leaves)
	leaving := make(map[msg.NodeID]bool, leaves)
	for _, idx := range leaveIdx {
		leaving[msg.NodeID(idx+1)] = true
	}
	candidates := make([]msg.NodeID, 0, leavePool-leaves)
	for id := msg.NodeID(1); id < firstFree; id++ {
		if !leaving[id] {
			candidates = append(candidates, id)
		}
	}
	plan := chaos.Generate(chaos.Config{
		Seed:          cfg.Seed,
		Duration:      cfg.Duration,
		Candidates:    candidates,
		Crashes:       cfg.Crashes,
		Outage:        cfg.Outage,
		Partitions:    cfg.Partitions,
		PartitionSpan: cfg.PartitionSpan,
		PartitionSize: cfg.PartitionSize,
		LossBursts:    cfg.LossBursts,
		BurstLoss:     cfg.BurstLoss,
		BurstSpan:     cfg.BurstSpan,
		BurstSize:     cfg.BurstSize,
		DupProb:       cfg.DupProb,
		ReorderProb:   cfg.ReorderProb,
		ReorderDelay:  cfg.ReorderDelay,
		SkewCount:     cfg.SkewCount,
		SkewMax:       cfg.SkewMax,
	})

	opts := cfg.soakOptions(behavior)
	// Calibrate on the clean configuration: b̃ and σ describe honest
	// behavior on the healthy network; the faults are what the threshold
	// must then tolerate.
	calOpts := opts
	calOpts.Chaos = nil
	cal, err := cluster.Calibrate(ctx, calOpts, cfg.Duration)
	if err != nil {
		return nil, nil, err
	}
	eta := -math.Max(cfg.EtaSigma*cal.ScoreStd, cfg.etaFloor())
	opts.Chaos = plan
	opts.Rep.Compensation = cal.Compensation
	opts.Rep.Eta = eta
	opts.ExpelOnDetection = true

	chk := newSoakChecker(cfg.N + cfg.Joins)
	var c *cluster.Cluster
	opts.OnPeriodSnapshot = func(p msg.Period, snap metrics.Snapshot) {
		chk.check(p, snap, c.MaxTrackedPerManager())
	}
	c = cluster.New(opts)
	c.Start()
	c.StartStream(cfg.Duration)

	// Churn rides the same middle-half window as the fault plan: the soak's
	// point is everything at once.
	window := cfg.Duration / 2
	windowStart := cfg.Duration / 4
	for i := 0; i < cfg.Joins; i++ {
		at := windowStart + time.Duration(float64(i)/float64(cfg.Joins)*float64(window))
		c.ScheduleJoin(at)
	}
	for i, idx := range leaveIdx {
		at := windowStart + time.Duration(float64(i)/float64(leaves)*float64(window))
		c.ScheduleLeave(at, msg.NodeID(idx+1))
	}

	if err := c.RunContext(ctx, cfg.Duration+2*cfg.Period); err != nil {
		c.Close()
		return nil, nil, err
	}
	c.Close()
	chk.recovery(plan, cfg.Period, cfg.RecoveryPeriods)

	counts := plan.Counts()
	res := &SoakResult{
		N:                 cfg.N,
		Freeriders:        len(c.Freeriders),
		Joined:            len(c.Joined),
		Departed:          len(c.Departed),
		Handoffs:          c.Handoffs(),
		PlanEvents:        len(plan.Events),
		ChaosApplied:      c.ChaosApplied(),
		CrashCycles:       counts[chaos.Crash],
		PartitionEpisodes: counts[chaos.Partition],
		LossBurstEpisodes: counts[chaos.LossBurst],
		SkewedNodes:       len(plan.Skew),
		PeriodsChecked:    chk.periods,
		MaxTracked:        chk.maxTracked,
		Violations:        chk.violations,
		Compensation:      cal.Compensation,
		Eta:               eta,
		Snapshots:         chk.snaps,
	}
	//lint:allow ordered-map-range commutative counts partitioned per id; order cannot affect the totals
	for id := range c.Expelled {
		switch {
		case c.Freeriders[id]:
			res.FreeridersExpelled++
		default:
			if _, gone := c.Departed[id]; gone {
				res.DepartedExpelled++
			} else {
				res.HonestExpelled++
			}
		}
	}
	res.GoodputBytes = c.Collector.GoodputBytes()
	_, vb := c.Collector.VerificationTotals()
	_, pb := c.Collector.ProtocolTotals()
	if pb > 0 {
		res.OverheadPpm = vb * 1_000_000 / pb
	}

	t := &Table{
		Title:   "Soak — churn + " + cfg.Attack + " + fault plan under standing invariants (backend " + cfg.Backend.String() + ")",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("population / cohort", F(float64(cfg.N), 0)+" / "+F(float64(res.Freeriders), 0))
	t.AddRow("joined / departed", F(float64(res.Joined), 0)+" / "+F(float64(res.Departed), 0))
	t.AddRow("fault events applied", F(float64(res.ChaosApplied), 0)+" of "+F(float64(res.PlanEvents), 0))
	t.AddRow("crash cycles / partitions / bursts",
		F(float64(res.CrashCycles), 0)+" / "+F(float64(res.PartitionEpisodes), 0)+" / "+F(float64(res.LossBurstEpisodes), 0))
	t.AddRow("skewed clocks", F(float64(res.SkewedNodes), 0))
	t.AddRow("manager handoffs", F(float64(res.Handoffs), 0))
	t.AddRow("cohort expelled", F(float64(res.FreeridersExpelled), 0)+" of "+F(float64(res.Freeriders), 0))
	t.AddRow("honest expelled (live / departed)",
		F(float64(res.HonestExpelled), 0)+" / "+F(float64(res.DepartedExpelled), 0))
	t.AddRow("periods checked", F(float64(res.PeriodsChecked), 0))
	t.AddRow("max tracked per manager", F(float64(res.MaxTracked), 0))
	t.AddRow("invariant violations", F(float64(len(res.Violations)), 0))
	t.AddRow("goodput", F(float64(res.GoodputBytes), 0)+" B")
	t.AddRow("overhead", Pct(float64(res.OverheadPpm)/1e6))
	t.Notes = append(t.Notes,
		"b̃ = "+F(cal.Compensation, 2)+" blame/period and η = "+F(eta, 2)+" calibrated on an honest chaos-free pilot",
		"standing invariants, checked at every score period: counters monotone, sent ≥ recv + dropped per kind, per-manager state bounded by the population, goodput recovering within "+F(float64(cfg.RecoveryPeriods), 0)+" periods of every heal",
		"fault candidates are honest stayers only: a crash must never be an alternative explanation for a verdict the oracles assert")
	for _, v := range res.Violations {
		t.Notes = append(t.Notes, "VIOLATION: "+v)
	}
	return t, res, nil
}
