package experiment

import (
	"context"
	"time"

	"lifting/internal/analysis"
	"lifting/internal/cluster"
	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/stream"
)

// AblationConfig sizes the ablation study.
type AblationConfig struct {
	// ScoreN/ScorePeriods size the blame-process runs.
	ScoreN       int
	ScorePeriods int
	// ClusterN/Duration size the packet-level runs.
	ClusterN int
	Duration time.Duration
	Seed     uint64
}

// DefaultAblationConfig returns a laptop-scale study.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		ScoreN:       3000,
		ScorePeriods: 50,
		ClusterN:     80,
		Duration:     15 * time.Second,
		Seed:         21,
	}
}

// Ablations quantifies the contribution of each LiFTinG mechanism by
// disabling it and measuring what breaks:
//
//  1. wrongful-blame compensation (§6.2) — without it every honest node
//     sits at −b̃ and is expelled;
//  2. direct cross-checking (pdcc, §5.2) — without it partial-propose and
//     fanout attacks go unblamed and the score gap narrows;
//  3. loss recovery in the dissemination layer — without re-requesting
//     from alternative proposers, UDP losses permanently blind nodes and
//     baseline health drops (this repository's addition; see DESIGN.md).
func Ablations(ctx context.Context, cfg AblationConfig) (*Table, error) {
	t := &Table{
		Title:   "Ablations — what each mechanism buys",
		Columns: []string{"configuration", "metric", "enabled", "disabled"},
	}

	// 1. Compensation.
	sc := DefaultScoreConfig()
	sc.N = cfg.ScoreN
	sc.Freeriders = 0
	sc.Periods = cfg.ScorePeriods
	sc.Seed = cfg.Seed
	on, err := RunScores(ctx, sc)
	if err != nil {
		return nil, err
	}
	sc.NoCompensation = true
	off, err := RunScores(ctx, sc)
	if err != nil {
		return nil, err
	}
	t.AddRow("compensation (Eq. 5)", "honest false positives β",
		Pct(on.FalsePositives), Pct(off.FalsePositives))

	// 2. Cross-checking: the score gap between honest nodes and freeriders
	// attacking only the propose phase (δ2) — the attack only
	// cross-checking can see.
	gap := func(pdcc float64) float64 {
		p := analysis.Params{F: 12, R: 4, Loss: 0.07}
		delta := analysis.Delta{D2: 0.3}
		comp := p.DirectVerificationBlame() + p.CrossCheckBlameChain() + pdcc*p.CrossCheckBlameWitness()
		root := rng.New(cfg.Seed)
		honest := BlameProcess{P: p, Rand: root.Derive("h" + F(pdcc, 2))}
		rider := BlameProcess{P: p, Delta: delta, Rand: root.Derive("f" + F(pdcc, 2))}
		var hs, fs float64
		const samples = 400
		for i := 0; i < samples; i++ {
			hs += sampleScorePdcc(&honest, cfg.ScorePeriods, comp, pdcc)
			fs += sampleScorePdcc(&rider, cfg.ScorePeriods, comp, pdcc)
		}
		return (hs - fs) / samples
	}
	t.AddRow("direct cross-checking (pdcc)", "score gap for a δ2=0.3 freerider",
		F(gap(1), 1), F(gap(0), 1))

	// 3. Loss recovery.
	health := func(retry bool) (float64, error) {
		p := DefaultPlanetLabConfig()
		p.N = cfg.ClusterN
		p.Seed = cfg.Seed
		p.PoorPct = 0
		p.FreeriderPct = 0
		opts := p.buildOptions()
		opts.LiFTinG = false
		opts.BehaviorFor = nil
		opts.TrackPlayout = true
		if !retry {
			// A retry window longer than the run disables recovery.
			opts.Gossip.RequestRetry = time.Hour
		}
		c := cluster.New(opts)
		c.Start()
		c.StartStream(cfg.Duration)
		if err := c.RunContext(ctx, cfg.Duration+2*time.Second); err != nil {
			c.Close()
			return 0, err
		}
		total := opts.Stream.ChunksBy(cfg.Duration - time.Second)
		playouts := make([]*stream.Playout, 0, cfg.ClusterN-1)
		for i := 1; i < cfg.ClusterN; i++ {
			playouts = append(playouts, c.Playouts[msg.NodeID(i)])
		}
		return stream.Health(playouts, total, []time.Duration{cfg.Duration})[0], nil
	}
	healthOn, err := health(true)
	if err != nil {
		return nil, err
	}
	healthOff, err := health(false)
	if err != nil {
		return nil, err
	}
	t.AddRow("loss recovery (re-request)", "baseline health under 4% loss",
		F(healthOn, 3), F(healthOff, 3))

	t.Notes = append(t.Notes,
		"compensation off: every honest score sits at ≈ −b̃, below η (§6.2's motivation)",
		"pdcc off: propose-phase freeriding becomes invisible to the score")
	return t, nil
}

// sampleScorePdcc draws a normalized score after r periods under partial
// cross-checking.
func sampleScorePdcc(bp *BlameProcess, r int, compensation, pdcc float64) float64 {
	if r < 1 {
		r = 1
	}
	var total float64
	for i := 0; i < r; i++ {
		total += bp.SamplePeriodPdcc(pdcc)
	}
	return compensation - total/float64(r)
}
