package experiment

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// TestTableRenderAlignsMultibyteRunes is the regression test for the column
// widths: they must count runes, not bytes. The tables print Greek and
// diacritic symbols (η, α, β, δ), each 2 bytes in UTF-8 — byte-counted
// widths padded those cells short and pushed every following column out of
// alignment.
func TestTableRenderAlignsMultibyteRunes(t *testing.T) {
	tab := &Table{
		Title:   "alignment",
		Columns: []string{"η", "detection α", "value"},
		Rows: [][]string{
			{"-1.50", "90.0%", "ok"},
			{"δδδδδδδ", "β", "x"},
		},
	}
	var b strings.Builder
	tab.Render(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("unexpected render shape (%d lines):\n%s", len(lines), b.String())
	}

	// Column starts must line up when measured in runes. Widths: col0 =
	// max(1, 5, 7) = 7, col1 = max(11, 5, 1) = 11; every line after the
	// title is "  " + col0 padded to 7 + "  " + col1 padded to 11 + "  " +
	// col2.
	content := lines[1:]
	// The third column starts after 2+7+2+11+2 runes on every line.
	const col2Start = 2 + 7 + 2 + 11 + 2
	for li, line := range content {
		runes := []rune(line)
		if len(runes) < col2Start {
			t.Fatalf("line %d too short: %q", li, line)
		}
		cell := strings.TrimSpace(string(runes[col2Start:]))
		switch li {
		case 0:
			if cell != "value" {
				t.Errorf("header column 3 misaligned: %q (line %q)", cell, line)
			}
		case 2:
			if cell != "ok" {
				t.Errorf("row 1 column 3 misaligned: %q (line %q)", cell, line)
			}
		case 3:
			if cell != "x" {
				t.Errorf("row 2 column 3 misaligned: %q (line %q)", cell, line)
			}
		}
	}

	// The separator's dashes match the rune widths exactly.
	sep := strings.Fields(content[1])
	wantWidths := []int{7, 11, 5}
	if len(sep) != len(wantWidths) {
		t.Fatalf("separator has %d runs: %q", len(sep), content[1])
	}
	for i, s := range sep {
		if utf8.RuneCountInString(s) != wantWidths[i] {
			t.Errorf("separator %d is %d dashes, want %d", i, utf8.RuneCountInString(s), wantWidths[i])
		}
	}
}

// TestPadCountsRunes pins the padding primitive directly.
func TestPadCountsRunes(t *testing.T) {
	if got := pad("η", 3); got != "η  " {
		t.Errorf("pad(η, 3) = %q", got)
	}
	if got := pad("abc", 2); got != "abc" {
		t.Errorf("pad over-width = %q", got)
	}
	if got := utf8.RuneCountInString(pad("β", 5)); got != 5 {
		t.Errorf("padded rune width = %d, want 5", got)
	}
}

// TestDisplayWidthCombiningMarks: b̃ — the compensation symbol the tables
// print — is base letter + combining tilde: two runes, one display cell. A
// plain rune count would pad it one column short.
func TestDisplayWidthCombiningMarks(t *testing.T) {
	if got := displayWidth("b̃"); got != 1 {
		t.Fatalf("displayWidth(b̃) = %d, want 1", got)
	}
	if got := displayWidth("compensation b̃ (Eq. 5)"); got != 22 {
		t.Fatalf("displayWidth(fig10 label) = %d, want 22", got)
	}
	tab := &Table{
		Title:   "combining",
		Columns: []string{"b̃", "v"},
		Rows:    [][]string{{"123456", "x"}},
	}
	var b strings.Builder
	tab.Render(&b)
	lines := strings.Split(b.String(), "\n")
	if want := "  " + pad("b̃", 6) + "  v"; lines[1] != want {
		t.Errorf("header = %q, want %q", lines[1], want)
	}
	if want := "  123456  x"; lines[3] != want {
		t.Errorf("row = %q, want %q", lines[3], want)
	}
}
