package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"lifting/internal/runtime"
)

// TestMatrixRegistryCoversAttackSpace pins the registry to the §4/§5 attack
// enumeration: every strategy the paper names has a scenario, and the sweep
// is large enough for the acceptance bar of ≥ 8 distinct attacks.
func TestMatrixRegistryCoversAttackSpace(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 8 {
		t.Fatalf("registry has %d scenarios, want >= 8", len(scs))
	}
	want := []string{
		"fanout-decrease", "partial-propose", "partial-serve", "wise-degree",
		"period-stretch", "biased-selection", "mitm", "history-forgery",
		"colluder-stretcher", "blame-spam",
	}
	byName := map[string]Scenario{}
	for _, s := range scs {
		if _, dup := byName[s.Name]; dup {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		byName[s.Name] = s
	}
	for _, name := range want {
		s, ok := byName[name]
		if !ok {
			t.Errorf("registry missing scenario %q", name)
			continue
		}
		if len(s.Backends) == 0 {
			t.Errorf("scenario %q declares no backend", name)
		}
		if s.Behavior == nil {
			t.Errorf("scenario %q has no behavior constructor", name)
		}
	}
	// The cross-backend entry must cover the whole runtime seam.
	if wd := byName["wise-degree"]; len(wd.Backends) != 3 {
		t.Errorf("wise-degree covers %d backends, want sim+live+udp", len(wd.Backends))
	}
}

// TestMatrixQuickAllScenariosPass runs the whole quick sweep on the sim
// backend — the same regression net CI runs — and requires every oracle to
// hold.
func TestMatrixQuickAllScenariosPass(t *testing.T) {
	tab, res, err := Matrix(context.Background(), MatrixConfig{Quick: true, Backends: []runtime.Kind{runtime.KindSim}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosRun < 8 {
		t.Fatalf("quick matrix ran %d scenarios, want >= 8", res.ScenariosRun)
	}
	if res.Failed {
		for _, r := range res.Rows {
			if len(r.Failures) > 0 {
				t.Errorf("%s on %s: %s", r.Scenario, r.Backend, strings.Join(r.Failures, "; "))
			}
		}
		t.Fatal("quick matrix failed its oracles")
	}
	if len(tab.Rows) != len(res.Rows) {
		t.Fatalf("table has %d rows for %d results", len(tab.Rows), len(res.Rows))
	}
}

// rowFingerprint renders everything a row measures — exact float bits, no
// wall-clock — for byte-identity comparisons.
func rowFingerprint(rows []MatrixRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s|%s|%d|%016x|%016x|%016x|%016x|%d|%v\n",
			r.Scenario, r.Backend, r.Reps,
			math.Float64bits(r.Eta), math.Float64bits(r.Detection),
			math.Float64bits(r.FalsePositives), math.Float64bits(r.Gap),
			r.HonestExpelled, r.Failures)
	}
	return b.String()
}

// TestMatrixDeterministicPerBackend runs one matrix scenario under varied
// execution knobs with the same seed and asserts byte-identical outcomes on
// the deterministic backend: the registry, the per-rep seed derivation, the
// parallel repetition driver and the sharded engine must not leak
// scheduling into the results.
func TestMatrixDeterministicPerBackend(t *testing.T) {
	// history-forgery is the regression scenario: the forger's rewrite
	// draws consume randomness in audit-snapshot record order, so a
	// map-ordered history snapshot made seeded runs diverge. blame-spam is
	// the message-mode scenario, the one that actually runs sharded — its
	// rows must be identical for every shard count.
	for _, tc := range []struct {
		filter string
		shards []int // engine shard counts beyond the base run's
	}{
		{"fanout-decrease", nil},
		{"history-forgery", nil},
		{"blame-spam", []int{2, 8}},
	} {
		cfg := MatrixConfig{
			Quick:    true,
			Filter:   tc.filter,
			Backends: []runtime.Kind{runtime.KindSim},
			Seed:     42,
			Reps:     2,
		}
		if tc.shards != nil {
			cfg.Shards = 1
		}
		_, a, errA := Matrix(context.Background(), cfg)
		cfg.Workers = 1 // worker count must not change a single bit either
		_, b, errB := Matrix(context.Background(), cfg)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a.ScenariosRun != 1 || b.ScenariosRun != 1 {
			t.Fatalf("filter %q matched %d/%d scenarios, want 1", tc.filter, a.ScenariosRun, b.ScenariosRun)
		}
		fa, fb := rowFingerprint(a.Rows), rowFingerprint(b.Rows)
		if fa != fb {
			t.Fatalf("two identically seeded %s runs diverged:\n--- first ---\n%s--- second ---\n%s", tc.filter, fa, fb)
		}
		for _, s := range tc.shards {
			cfg.Shards = s
			_, c, err := Matrix(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fc := rowFingerprint(c.Rows); fc != fa {
				t.Fatalf("%s with %d engine shards diverged from 1 shard:\n--- S=1 ---\n%s--- S=%d ---\n%s",
					tc.filter, s, fa, s, fc)
			}
		}
	}
}

// TestMatrixScenarioAgreesAcrossBackends is the matrix extension of the
// cluster-level TestScenarioAgreesAcrossBackends: the wise-degree matrix
// entry runs under the discrete-event engine and the goroutine live
// runtime, and the oracle verdict — freeriders detected, honest clean,
// modes separated — agrees.
func TestMatrixScenarioAgreesAcrossBackends(t *testing.T) {
	_, res, err := Matrix(context.Background(), MatrixConfig{
		Quick:    true,
		Filter:   "wise-degree",
		Backends: []runtime.Kind{runtime.KindSim, runtime.KindLive},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want sim and live", len(res.Rows))
	}
	// Both rows passing IS the agreement pinned here: the same oracle —
	// freeriders detected, honest clean, modes separated — holds under
	// both execution backends.
	for _, r := range res.Rows {
		if len(r.Failures) > 0 {
			t.Errorf("%s on %s failed: %s", r.Scenario, r.Backend, strings.Join(r.Failures, "; "))
		}
	}
}

// TestMatrixOracleBounds exercises the oracle algebra directly: each bound
// fails exactly when violated, and disabled checks stay silent.
func TestMatrixOracleBounds(t *testing.T) {
	cases := []struct {
		name   string
		o      Oracle
		row    MatrixRow
		failed bool
	}{
		{"pass", Oracle{MinDetection: 0.9, MaxFalsePositive: 0.02, MinGap: 2},
			MatrixRow{Detection: 0.95, FalsePositives: 0.01, Gap: 3}, false},
		{"alpha", Oracle{MinDetection: 0.9}, MatrixRow{Detection: 0.5}, true},
		{"alpha-disabled", Oracle{MinDetection: -1}, MatrixRow{Detection: 0}, false},
		{"beta", Oracle{MaxFalsePositive: 0.01}, MatrixRow{FalsePositives: 0.02}, true},
		{"gap", Oracle{MinGap: 2}, MatrixRow{Gap: 1}, true},
		{"gap-disabled", Oracle{}, MatrixRow{Gap: -5}, false},
		{"expulsion", Oracle{NoHonestExpulsion: true}, MatrixRow{HonestExpelled: 1}, true},
	}
	for _, c := range cases {
		row := c.row
		c.o.check(&row)
		if got := len(row.Failures) > 0; got != c.failed {
			t.Errorf("%s: failed=%v (%v), want %v", c.name, got, row.Failures, c.failed)
		}
	}
}

// TestMatrixFilterMiss: an unmatched filter runs nothing and reports it.
func TestMatrixFilterMiss(t *testing.T) {
	_, res, err := Matrix(context.Background(), MatrixConfig{Quick: true, Filter: "no-such-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScenariosRun != 0 || len(res.Rows) != 0 {
		t.Fatalf("unmatched filter ran %d scenarios", res.ScenariosRun)
	}
}
