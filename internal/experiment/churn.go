package experiment

import (
	"context"
	"sort"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/runtime"
	"lifting/internal/stats"
	"lifting/internal/stream"
)

// ChurnConfig describes the churn workload: a LiFTinG-policed broadcast in
// which nodes join and leave mid-stream. The paper deploys on a static
// membership (§2 assumes a full-membership view); churn is the natural next
// workload for the reproduction — arrivals must catch up with the stream,
// departures must not strand score state, and the reputation managers must
// hand their duties off as the membership shifts.
type ChurnConfig struct {
	// N is the initial population.
	N int
	// Joins and Leaves are the number of mid-stream arrivals/departures,
	// spread uniformly over the middle half of the run.
	Joins, Leaves int
	// FreeriderPct of the initial population freerides at degree Delta.
	FreeriderPct float64
	Delta        [3]float64
	F            int
	Period       time.Duration
	// M managers per node; blames travel as messages (the handoff path).
	M        int
	MeanLoss float64
	Duration time.Duration
	Seed     uint64
	// Backend selects the execution backend; churn runs identically on the
	// discrete-event engine and the live goroutine runtime.
	Backend runtime.Kind
}

// DefaultChurnConfig returns a medium-scale churn scenario.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		N:            120,
		Joins:        20,
		Leaves:       20,
		FreeriderPct: 0.10,
		Delta:        [3]float64{0.3, 0.3, 0.3},
		F:            7,
		Period:       500 * time.Millisecond,
		M:            10,
		MeanLoss:     0.02,
		Duration:     30 * time.Second,
		Seed:         17,
	}
}

// ChurnResult aggregates the run.
type ChurnResult struct {
	Joined, Departed int
	// Handoffs counts reputation-manager state transfers.
	Handoffs int
	// CatchUp is the distribution over arrivals of (chunks received) /
	// (chunks generated after the join).
	CatchUp stats.Moments
	// HonestMean and FreeriderMean are the min-vote score means over the
	// surviving population.
	HonestMean, FreeriderMean float64
	// AliveEnd is the population size at the end.
	AliveEnd int
}

// Churn runs the churn scenario and reports whether LiFTinG's separation
// survives a shifting membership. Cancelling ctx aborts the run mid-stream.
func Churn(ctx context.Context, cfg ChurnConfig) (*Table, *ChurnResult, error) {
	nFree := int(cfg.FreeriderPct * float64(cfg.N))
	firstFree := msg.NodeID(cfg.N - nFree)
	opts := cluster.Options{
		N:       cfg.N,
		Seed:    cfg.Seed,
		Backend: cfg.Backend,
		Gossip: gossip.Config{
			F:              cfg.F,
			Period:         cfg.Period,
			ChunkPayload:   1316,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              cfg.F,
			Period:         cfg.Period,
			Pdcc:           1,
			HistoryPeriods: 50,
			Gamma:          8,
			Eta:            -1e9,
		},
		Rep:          reputation.Config{M: cfg.M, Eta: -1e9},
		Stream:       stream.Config{BitrateBps: 674_000, ChunkPayload: 1316},
		NetDefaults:  net.Uniform(cfg.MeanLoss, 5*time.Millisecond),
		LiFTinG:      true,
		BlameMode:    cluster.BlameMessages,
		ExpectedLoss: cfg.MeanLoss,
		BehaviorFor: func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
			if id >= firstFree && id < msg.NodeID(cfg.N) {
				return freerider.Degree{Delta1: cfg.Delta[0], Delta2: cfg.Delta[1], Delta3: cfg.Delta[2]}
			}
			return nil
		},
	}
	c := cluster.New(opts)
	c.Start()
	c.StartStream(cfg.Duration)

	// Churn events are spread over the middle half of the run: the ramp-up
	// and the tail stay quiet so catch-up and separation are measurable.
	churnRand := rng.New(cfg.Seed).Derive("churn")
	window := cfg.Duration / 2
	windowStart := cfg.Duration / 4
	joinAt := make(map[msg.NodeID]time.Duration, cfg.Joins)
	for i := 0; i < cfg.Joins; i++ {
		at := windowStart + time.Duration(float64(i)/float64(cfg.Joins)*float64(window))
		joinAt[c.ScheduleJoin(at)] = at
	}
	// Departures are drawn from the honest initial population (the source
	// excluded); freeriders staying put keeps the separation readable.
	leavePool := int(firstFree) - 1
	if cfg.Leaves > leavePool {
		cfg.Leaves = leavePool
	}
	for i, idx := range churnRand.SampleK(leavePool, cfg.Leaves) {
		at := windowStart + time.Duration(float64(i)/float64(cfg.Leaves)*float64(window))
		c.ScheduleLeave(at, msg.NodeID(idx+1))
	}

	if err := c.RunContext(ctx, cfg.Duration+cfg.Period); err != nil {
		c.Close()
		return nil, nil, err
	}
	c.Close()

	res := &ChurnResult{
		Joined:   len(c.Joined),
		Departed: len(c.Departed),
		Handoffs: c.Handoffs(),
		AliveEnd: c.Dir.NAlive(),
	}
	totalChunks := opts.Stream.ChunksBy(cfg.Duration)
	// Accumulate in sorted id order: the Moments mean is a float fold, so
	// map-order iteration would break bit-reproducibility.
	arrivals := make([]msg.NodeID, 0, len(joinAt))
	//lint:allow ordered-map-range collect-then-sort: ids are sorted before the float fold below
	for id := range joinAt {
		arrivals = append(arrivals, id)
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
	for _, id := range arrivals {
		node, ok := c.Nodes[id]
		if !ok {
			// Under the live backend a join timer due near the end of the
			// run can be suppressed by Close; the arrival never existed.
			continue
		}
		missed := opts.Stream.ChunksBy(joinAt[id])
		generatedAfter := totalChunks - missed
		if generatedAfter <= 0 {
			continue
		}
		ratio := float64(node.ChunkCount()) / float64(generatedAfter)
		if ratio > 1 {
			ratio = 1
		}
		res.CatchUp.Add(ratio)
	}
	scores := c.Scores()
	var nh, nr int
	for _, id := range c.Dir.All() {
		if id == 0 || !c.Dir.Alive(id) {
			continue
		}
		if c.Freeriders[id] {
			res.FreeriderMean += scores[id]
			nr++
		} else {
			res.HonestMean += scores[id]
			nh++
		}
	}
	if nh > 0 {
		res.HonestMean /= float64(nh)
	}
	if nr > 0 {
		res.FreeriderMean /= float64(nr)
	}

	t := &Table{
		Title:   "Churn — joins/leaves mid-stream with manager handoff (backend " + cfg.Backend.String() + ")",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("initial population", F(float64(cfg.N), 0))
	t.AddRow("joined mid-stream", F(float64(res.Joined), 0))
	t.AddRow("departed mid-stream", F(float64(res.Departed), 0))
	t.AddRow("alive at end", F(float64(res.AliveEnd), 0))
	t.AddRow("manager handoffs", F(float64(res.Handoffs), 0))
	t.AddRow("arrival catch-up (mean)", Pct(res.CatchUp.Mean()))
	t.AddRow("honest mean score", F(res.HonestMean, 2))
	t.AddRow("freerider mean score", F(res.FreeriderMean, 2))
	t.AddRow("separation gap", F(res.HonestMean-res.FreeriderMean, 2))
	t.Notes = append(t.Notes,
		"arrivals catch up on chunks generated after their join (infect-and-die does not replay history)",
		"manager duties migrate on every membership change; gaining managers adopt the most pessimistic replica")
	return t, res, nil
}
