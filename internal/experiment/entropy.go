package experiment

import (
	"context"

	"lifting/internal/analysis"
	"lifting/internal/msg"
	"lifting/internal/rng"
	"lifting/internal/stats"
)

// EntropyConfig parameterizes the Figure 13 experiment: the distribution of
// history entropies under full-membership uniform partner selection.
// Defaults match the paper: n = 10,000, nh = 50, f = 12 (nh·f = 600).
type EntropyConfig struct {
	N       int
	History int // nh
	F       int
	Seed    uint64
	// SampleNodes bounds how many nodes' entropies are computed (0 = all);
	// fanin entropies require simulating everyone's draws regardless.
	SampleNodes int
}

// DefaultEntropyConfig returns the paper's parameters.
func DefaultEntropyConfig() EntropyConfig {
	return EntropyConfig{N: 10_000, History: 50, F: 12, Seed: 1}
}

// EntropyResult carries the two distributions of Figure 13.
type EntropyResult struct {
	Fanout stats.Moments
	Fanin  stats.Moments
	// FanoutMin/Max and FaninMin/Max delimit the observed ranges the paper
	// reports (9.11–9.21 and 8.98–9.34 respectively).
	MaxAttainable float64
}

// Fig13 reproduces Figure 13: every node draws nh·f uniform partners; the
// fanout entropy is the entropy of its own draw multiset, the fanin entropy
// that of the nodes that drew it. The paper observes fanout entropy in
// [9.11, 9.21] (max log2(600) = 9.23) and fanin entropy in [8.98, 9.34],
// and sets γ = 8.95 just below both.
func Fig13(ctx context.Context, cfg EntropyConfig) (*Table, *EntropyResult, error) {
	root := rng.New(cfg.Seed)
	draws := cfg.History * cfg.F

	res := &EntropyResult{MaxAttainable: stats.MaxEntropy(draws)}
	fanin := make([]*stats.Multiset[msg.NodeID], cfg.N)
	for i := range fanin {
		fanin[i] = stats.NewMultiset[msg.NodeID]()
	}

	sample := cfg.SampleNodes
	if sample <= 0 || sample > cfg.N {
		sample = cfg.N
	}
	for i := 0; i < cfg.N; i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		r := root.ForNode(uint32(i))
		fanout := stats.NewMultiset[msg.NodeID]()
		for d := 0; d < draws; d++ {
			// Uniform partner, excluding self, as the membership layer
			// guarantees (§2).
			p := r.IntN(cfg.N - 1)
			if p >= i {
				p++
			}
			fanout.Add(msg.NodeID(p))
			fanin[p].Add(msg.NodeID(i))
		}
		if i < sample {
			res.Fanout.Add(fanout.Entropy())
		}
	}
	for i := 0; i < sample; i++ {
		res.Fanin.Add(fanin[i].Entropy())
	}

	t := &Table{
		Title:   "Figure 13 — entropy of honest histories (nh·f = " + F(float64(draws), 0) + ", n = " + F(float64(cfg.N), 0) + ")",
		Columns: []string{"multiset", "paper range", "measured range", "mean"},
	}
	t.AddRow("fanout Fh", "[9.11, 9.21]",
		"["+F(res.Fanout.Min(), 2)+", "+F(res.Fanout.Max(), 2)+"]", F(res.Fanout.Mean(), 3))
	t.AddRow("fanin F'h", "[8.98, 9.34]",
		"["+F(res.Fanin.Min(), 2)+", "+F(res.Fanin.Max(), 2)+"]", F(res.Fanin.Mean(), 3))
	t.AddRow("max log2(nh·f)", "9.23", F(res.MaxAttainable, 2), "")
	t.Notes = append(t.Notes, "γ = 8.95 must sit below every honest entropy (no wrongful expulsion)")
	return t, res, nil
}

// Eq7 reproduces the numeric inversion of Equation 7 (§6.3.2): the maximum
// collusion bias p*m a freerider can apply without crossing the entropy
// threshold γ, as a function of the coalition size. The paper's worked
// example: γ = 8.95, colluding with 25 other nodes, nh·f = 600 → p*m ≈ 21%.
func Eq7(gamma float64, historyLen int, coalitions []int) *Table {
	if len(coalitions) == 0 {
		coalitions = []int{5, 10, 25, 26, 50, 100}
	}
	t := &Table{
		Title:   "Equation 7 — maximum undetectable collusion bias p*m (γ = " + F(gamma, 2) + ")",
		Columns: []string{"coalition m'", "p*m", "entropy at p*m"},
	}
	for _, m := range coalitions {
		pm := analysis.MaxCollusionBias(gamma, m, historyLen)
		t.AddRow(F(float64(m), 0), Pct(pm), F(analysis.CollusionEntropy(pm, m, historyLen), 3))
	}
	t.Notes = append(t.Notes, "paper: a freerider colluding with 25 others can bias 21% of its pushes")
	return t
}
