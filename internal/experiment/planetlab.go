package experiment

import (
	"context"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/core"
	"lifting/internal/freerider"
	"lifting/internal/gossip"
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/reputation"
	"lifting/internal/rng"
	"lifting/internal/stats"
	"lifting/internal/stream"
)

// PlanetLabConfig describes the §7 deployment scenario: 300 nodes, 674 kbps
// stream, fanout 7, Tg = 500 ms, M = 25 managers, 10% freeriders of degree
// (1/7, 0.1, 0.1), mean loss 4% with a tail of poorly connected nodes.
type PlanetLabConfig struct {
	N            int
	BitrateBps   int
	F            int
	Period       time.Duration
	M            int
	FreeriderPct float64
	Delta        [3]float64
	Pdcc         float64
	MeanLoss     float64
	// PoorPct is the fraction of honest nodes with degraded connectivity
	// (higher loss, capped uplink) — the population behind the paper's
	// false positives (§7.3).
	PoorPct float64
	Seed    uint64
	// Duration is the streamed time.
	Duration time.Duration
}

// DefaultPlanetLabConfig returns the paper's deployment parameters.
func DefaultPlanetLabConfig() PlanetLabConfig {
	return PlanetLabConfig{
		N:            300,
		BitrateBps:   674_000,
		F:            7,
		Period:       500 * time.Millisecond,
		M:            25,
		FreeriderPct: 0.10,
		Delta:        [3]float64{1.0 / 7, 0.1, 0.1},
		Pdcc:         1,
		MeanLoss:     0.04,
		PoorPct:      0.10,
		Seed:         42,
		Duration:     35 * time.Second,
	}
}

// buildOptions assembles cluster options for the scenario. Freeriders are
// the highest node ids; poor honest nodes are drawn deterministically from
// the seed.
func (p PlanetLabConfig) buildOptions() cluster.Options {
	// The chunk rate is held constant across stream rates (≈64 chunks/s, as
	// in the paper's streaming substrate [6]): a faster stream means bigger
	// chunks, not more of them. This is why Table 5's overhead falls as the
	// bitrate grows — verification traffic depends on the chunk rate only.
	payload := 1316 * p.BitrateBps / 674_000
	streamCfg := stream.Config{BitrateBps: p.BitrateBps, ChunkPayload: payload}
	opts := cluster.Options{
		N:    p.N,
		Seed: p.Seed,
		Gossip: gossip.Config{
			F:              p.F,
			Period:         p.Period,
			ChunkPayload:   streamCfg.ChunkPayload,
			HistoryPeriods: 50,
		},
		Core: core.Config{
			F:              p.F,
			Period:         p.Period,
			Pdcc:           p.Pdcc,
			HistoryPeriods: 50,
			Gamma:          8.95,
			Eta:            -9.75,
		},
		// Blames are reported to the managers every 10 gossip periods:
		// scores act on the r ≈ 50-period timescale, and per-period
		// reporting to M = 25 managers would alone exceed the paper's
		// measured blaming overhead (Table 5).
		Rep:          reputation.Config{M: p.M, Eta: -9.75, FlushEvery: 10},
		Stream:       streamCfg,
		NetDefaults:  net.Uniform(p.MeanLoss, 20*time.Millisecond),
		LiFTinG:      true,
		ExpectedLoss: p.MeanLoss,
	}
	// Heterogeneity: a PoorPct tail of honest nodes suffers triple loss and
	// a capped uplink — they cannot contribute their fair share even though
	// they follow the protocol (§7.3's false-positive population).
	poor := rng.New(p.Seed).Derive("poor")
	opts.ConditionsFor = func(id msg.NodeID) (net.Conditions, bool) {
		if id == 0 || p.freerider(id) {
			return net.Conditions{}, false
		}
		if poor.Bernoulli(p.PoorPct) {
			// Doubled loss and high latency jitter: blamed like a mild
			// freerider (§7.3: the false positives "do not deliberately
			// freeride, but their connection does not allow them to
			// contribute their fair share").
			c := net.Uniform(2*p.MeanLoss, 60*time.Millisecond)
			c.LatencyJitter = 60 * time.Millisecond
			return c, true
		}
		return net.Conditions{}, false
	}
	nFree := int(p.FreeriderPct * float64(p.N))
	first := msg.NodeID(p.N - nFree)
	opts.BehaviorFor = func(id msg.NodeID, _ *membership.Directory, _ *rng.Stream) gossip.Behavior {
		if id >= first {
			return freerider.Degree{Delta1: p.Delta[0], Delta2: p.Delta[1], Delta3: p.Delta[2]}
		}
		return nil
	}
	return opts
}

func (p PlanetLabConfig) freerider(id msg.NodeID) bool {
	nFree := int(p.FreeriderPct * float64(p.N))
	return int(id) >= p.N-nFree
}

// Fig14Snapshot is one CDF snapshot of Figure 14.
type Fig14Snapshot struct {
	// At is the snapshot's offset on the run's virtual clock — one of the
	// configured sample points, not a wall-clock reading.
	//lint:allow no-time-in-results configured sim-time sample point; not a measured time
	At        time.Duration
	Honest    []float64
	Freerider []float64
	// Detection and FalsePositives at the calibrated threshold.
	Detection      float64
	FalsePositives float64
}

// Fig14Result aggregates the experiment.
type Fig14Result struct {
	Pdcc      float64
	Eta       float64
	Snapshots []Fig14Snapshot
}

// Fig14 reproduces Figure 14: cumulative score distributions of honest
// nodes and freeriders after 25, 30 and 35 seconds, for the given pdcc. The
// paper's anchor: with pdcc = 1 after 30 s, 86% of freeriders are below the
// threshold and 12% of honest nodes (mostly the poorly connected tail) sit
// below it too; pdcc = 0.5 at 35 s looks like pdcc = 1 at 30 s.
//
// Compensation and the threshold are calibrated from an honest pilot run
// (our chunk workload is lighter than the saturated analysis model; the
// paper instead compensates analytically from the measured 4% loss).
func Fig14(ctx context.Context, p PlanetLabConfig, snapshots []time.Duration) (*Table, *Fig14Result, error) {
	if len(snapshots) == 0 {
		snapshots = []time.Duration{25 * time.Second, 30 * time.Second, 35 * time.Second}
	}
	opts := p.buildOptions()

	cal, err := cluster.Calibrate(ctx, opts, p.Duration)
	if err != nil {
		return nil, nil, err
	}
	opts.Rep.Compensation = cal.Compensation
	opts.BlameMode = cluster.BlameDirect

	c := cluster.New(opts)
	c.Start()
	c.StartStream(p.Duration + time.Second)

	// The detection threshold is placed from the observed mixture at the
	// first snapshot, at the quantile expected to be flagged: freeriders
	// plus the poorly connected tail. The paper arrives at its fixed
	// η = −9.75 the same way — from the empirical score CDF of Figure 11 —
	// and accepts ≈12% honest flags, "most of them nodes whose decreased
	// contribution is due to poor capabilities" (§7.3).
	var eta float64
	res := &Fig14Result{Pdcc: p.Pdcc}
	for si, at := range snapshots {
		if err := c.RunContext(ctx, at); err != nil {
			c.Close()
			return nil, nil, err
		}
		snap := Fig14Snapshot{At: at}
		scores := c.Scores()
		if si == 0 {
			all := make([]float64, 0, p.N-1)
			for i := 1; i < p.N; i++ {
				all = append(all, scores[msg.NodeID(i)])
			}
			flagged := p.FreeriderPct + p.PoorPct
			eta = stats.NewECDF(all).Quantile(flagged)
			res.Eta = eta
		}
		for i := 1; i < p.N; i++ {
			id := msg.NodeID(i)
			s := scores[id]
			if p.freerider(id) {
				snap.Freerider = append(snap.Freerider, s)
				if s < eta {
					snap.Detection++
				}
			} else {
				snap.Honest = append(snap.Honest, s)
				if s < eta {
					snap.FalsePositives++
				}
			}
		}
		if len(snap.Freerider) > 0 {
			snap.Detection /= float64(len(snap.Freerider))
		}
		if len(snap.Honest) > 0 {
			snap.FalsePositives /= float64(len(snap.Honest))
		}
		res.Snapshots = append(res.Snapshots, snap)
	}

	t := &Table{
		Title: "Figure 14 — score CDF snapshots (pdcc = " + F(p.Pdcc, 2) + ", η = " + F(eta, 2) + ")",
		Columns: []string{
			"time", "detection", "false positives", "paper (pdcc=1 @30s)",
		},
	}
	for _, s := range res.Snapshots {
		t.AddRow(s.At.String(), Pct(s.Detection), Pct(s.FalsePositives), "86% / 12%")
	}
	t.Notes = append(t.Notes,
		"compensation calibrated to "+F(cal.Compensation, 2)+" per period (honest pilot)",
		"false positives concentrate on the poorly connected tail, as in §7.3")
	return t, res, nil
}

// Fig1Scenario identifies one curve of Figure 1.
type Fig1Scenario int

// Figure 1 curves.
const (
	Fig1NoFreeriders Fig1Scenario = iota + 1
	Fig1Freeriders
	Fig1FreeridersLiFTinG
)

// Fig1Result carries one health curve.
type Fig1Result struct {
	Scenario Fig1Scenario
	// Lags is the configured x-axis grid of stream lags the health curve is
	// evaluated at — inputs, not measurements.
	//lint:allow no-time-in-results configured sim-time lag grid; not a measured time
	Lags   []time.Duration
	Health []float64
}

// Fig1 reproduces Figure 1: the fraction of nodes viewing a clear stream as
// a function of the stream lag, for (a) no freeriders, (b) 25% freeriders
// without LiFTinG — the system collapses, and (c) 25% freeriders policed by
// LiFTinG — wise freeriders can only deviate marginally (δ = 0.035 keeps
// P(caught) < 50%, §6.3.1) and the aggressive ones are expelled, so the
// curve stays near the baseline.
func Fig1(ctx context.Context, p PlanetLabConfig, scenario Fig1Scenario, lags []time.Duration) (*Table, *Fig1Result, error) {
	if len(lags) == 0 {
		for s := 0; s <= 60; s += 5 {
			lags = append(lags, time.Duration(s)*time.Second)
		}
	}
	p.FreeriderPct = 0.25
	p.PoorPct = 0 // Figure 1 isolates the freeriding effect
	opts := p.buildOptions()
	opts.TrackPlayout = true

	// Finite upload capacity: every node's uplink is twice the stream rate.
	// The system fits when everyone contributes (demand ≈ 1× per node) but
	// not when 25% leech (honest demand rises by a third, and burstiness beyond that) — the regime in
	// which Figure 1's middle curve collapses. PlanetLab itself imposed
	// this constraint physically. The broadcast source is provisioned
	// separately (its f partners pull the whole stream from it).
	opts.NetDefaults.UplinkBps = 2.0 * float64(p.BitrateBps) / 8
	prevCond := opts.ConditionsFor
	opts.ConditionsFor = func(id msg.NodeID) (net.Conditions, bool) {
		if id == 0 {
			c := opts.NetDefaults
			c.UplinkBps = 0 // unlimited
			return c, true
		}
		if prevCond != nil {
			return prevCond(id)
		}
		return net.Conditions{}, false
	}

	switch scenario {
	case Fig1NoFreeriders:
		opts.LiFTinG = false
		opts.BehaviorFor = nil
	case Fig1Freeriders:
		// No verification: rational freeriders decrease their contribution
		// "as much as possible" (§1) — to nothing.
		opts.LiFTinG = false
		prev := opts.BehaviorFor
		opts.BehaviorFor = func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
			if prev(id, dir, r) != nil {
				return freerider.Degree{Delta1: 1, Delta2: 1, Delta3: 1}
			}
			return nil
		}
	case Fig1FreeridersLiFTinG:
		// Coerced: wise freeriders keep P(caught) < 50% → δ = 0.035.
		cal, err := cluster.Calibrate(ctx, opts, 10*time.Second)
		if err != nil {
			return nil, nil, err
		}
		opts.Rep.Compensation = cal.Compensation
		opts.Rep.Eta = -2.5 * cal.ScoreStd
		opts.ExpelOnDetection = true
		prev := opts.BehaviorFor
		opts.BehaviorFor = func(id msg.NodeID, dir *membership.Directory, r *rng.Stream) gossip.Behavior {
			if prev(id, dir, r) != nil {
				return freerider.Degree{Delta1: 0.035, Delta2: 0.035, Delta3: 0.035}
			}
			return nil
		}
	}

	c := cluster.New(opts)
	c.Start()
	c.StartStream(p.Duration)
	maxLag := lags[len(lags)-1]
	if err := c.RunContext(ctx, p.Duration+maxLag); err != nil {
		c.Close()
		return nil, nil, err
	}

	total := opts.Stream.ChunksBy(p.Duration - time.Second)
	playouts := make([]*stream.Playout, 0, p.N-1)
	for i := 1; i < p.N; i++ {
		playouts = append(playouts, c.Playouts[msg.NodeID(i)])
	}
	health := stream.Health(playouts, total, lags)

	res := &Fig1Result{Scenario: scenario, Lags: lags, Health: health}
	t := &Table{
		Title:   "Figure 1 — fraction of nodes viewing a clear stream vs stream lag (scenario " + fig1Name(scenario) + ")",
		Columns: []string{"lag", "health"},
	}
	for i, lag := range lags {
		t.AddRow(lag.String(), F(health[i], 3))
	}
	return t, res, nil
}

func fig1Name(s Fig1Scenario) string {
	switch s {
	case Fig1NoFreeriders:
		return "no freeriders"
	case Fig1Freeriders:
		return "25% freeriders"
	case Fig1FreeridersLiFTinG:
		return "25% freeriders + LiFTinG"
	default:
		return "unknown"
	}
}
