package experiment

import (
	"context"
	"math"
	"testing"

	"lifting/internal/analysis"
	"lifting/internal/rng"
	"lifting/internal/stats"
)

func paperParams() analysis.Params {
	return analysis.Params{F: 12, R: 4, Loss: 0.07}
}

func TestBlameProcessMatchesEquation5(t *testing.T) {
	// The Monte-Carlo mean must converge to the closed form b̃ = 72.95.
	bp := BlameProcess{P: paperParams(), Rand: rng.New(3)}
	var m stats.Moments
	for i := 0; i < 20000; i++ {
		m.Add(bp.SamplePeriod())
	}
	want := paperParams().WrongfulBlame()
	if math.Abs(m.Mean()-want) > 0.5 {
		t.Fatalf("MC mean = %v, closed form b̃ = %v", m.Mean(), want)
	}
	// And the spread must match the paper's experimental σ(b) = 25.6.
	if m.Std() < 22 || m.Std() > 29 {
		t.Fatalf("MC σ(b) = %v, paper reports 25.6", m.Std())
	}
	// Our analytical σ(b) should agree with the MC too.
	if aStd := paperParams().WrongfulBlameStd(); math.Abs(aStd-m.Std()) > 2 {
		t.Fatalf("analytical σ(b) = %v vs MC %v", aStd, m.Std())
	}
}

func TestBlameProcessFreeriderMatchesBPrime(t *testing.T) {
	for _, d := range []float64{0.05, 0.1, 0.2} {
		delta := analysis.Uniform(d)
		bp := BlameProcess{P: paperParams(), Delta: delta, Rand: rng.New(7)}
		var m stats.Moments
		for i := 0; i < 20000; i++ {
			m.Add(bp.SamplePeriod())
		}
		want := paperParams().FreeriderBlame(delta)
		// The sampler rounds (1−δ1)·f to an integer partner count; allow a
		// correspondingly loose tolerance.
		if math.Abs(m.Mean()-want) > 0.05*want+2 {
			t.Fatalf("δ=%v: MC mean %v vs closed form b̃′ = %v", d, m.Mean(), want)
		}
	}
}

func TestFig10CentersAtZero(t *testing.T) {
	cfg := DefaultScoreConfig()
	cfg.N = 5000
	_, res, err := Fig10(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: mean < 0.01 at n = 10,000; scale tolerance with sample size:
	// σ(mean) = σ(b)/√n ≈ 25.6/70 ≈ 0.37.
	if math.Abs(res.HonestM.Mean()) > 1.2 {
		t.Fatalf("Fig10 mean = %v, want ≈0", res.HonestM.Mean())
	}
	if res.HonestM.Std() < 22 || res.HonestM.Std() > 29 {
		t.Fatalf("Fig10 σ = %v, paper reports 25.6", res.HonestM.Std())
	}
}

func TestFig11SeparatesModes(t *testing.T) {
	cfg := DefaultScoreConfig()
	cfg.N = 3000
	cfg.Freeriders = 300
	_, res, err := Fig11(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: two disjoint modes; α > 99% and β < 1% at η = −9.75 for
	// ∆ = (0.1, 0.1, 0.1) after r = 50.
	if res.Detection < 0.99 {
		t.Fatalf("detection = %v, paper says >99%% at δ=0.1", res.Detection)
	}
	if res.FalsePositives > 0.01 {
		t.Fatalf("false positives = %v, paper says <1%%", res.FalsePositives)
	}
	// The pdf modes are disjoint up to sub-percent tails (Figure 11a shows
	// a clear gap; extreme order statistics may graze at finite samples).
	if lo, hi := res.Honest.Quantile(0.005), res.Freerider.Quantile(0.995); lo <= hi {
		t.Fatalf("modes overlap beyond tails: honest q0.5%% %v vs freerider q99.5%% %v", lo, hi)
	}
}

func TestFig11NoCompensationAblation(t *testing.T) {
	// Without compensation every score shifts down by b̃ ≈ 72.95: honest
	// nodes land far below η and would all be expelled. This is the
	// motivation for §6.2.
	cfg := DefaultScoreConfig()
	cfg.N = 1000
	cfg.Freeriders = 0
	cfg.NoCompensation = true
	res, err := RunScores(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives < 0.99 {
		t.Fatalf("without compensation honest nodes should sit below η; β = %v", res.FalsePositives)
	}
}

func TestFig12Anchors(t *testing.T) {
	cfg := DefaultScoreConfig()
	deltas := []float64{0, 0.035, 0.05, 0.1, 0.2}
	_, points, err := Fig12(context.Background(), cfg, deltas, 1500)
	if err != nil {
		t.Fatal(err)
	}
	byDelta := map[float64]Fig12Point{}
	for _, p := range points {
		byDelta[p.Delta] = p
	}
	// Paper anchors (§6.3.1 / Figure 12):
	// δ=0.05 → α ≈ 65%; δ ≥ 0.1 → α > 99%; δ=0.035 → α ≈ 50%, gain ≈ 10%.
	if p := byDelta[0.05]; p.Detection < 0.45 || p.Detection > 0.85 {
		t.Fatalf("α(0.05) = %v, paper says ≈0.65", p.Detection)
	}
	if p := byDelta[0.1]; p.Detection < 0.99 {
		t.Fatalf("α(0.1) = %v, paper says >0.99", p.Detection)
	}
	if p := byDelta[0.035]; p.Detection < 0.25 || p.Detection > 0.75 {
		t.Fatalf("α(0.035) = %v, paper says ≈0.5", p.Detection)
	}
	if p := byDelta[0.035]; math.Abs(p.Gain-0.10) > 0.01 {
		t.Fatalf("gain(0.035) = %v, paper says ≈0.10", p.Gain)
	}
	// Honest nodes are almost never flagged.
	if p := byDelta[0.0]; p.Detection > 0.02 {
		t.Fatalf("α(0) = %v, honest nodes should pass", p.Detection)
	}
	// Detection is monotone in δ.
	prev := -1.0
	for _, d := range deltas {
		if byDelta[d].Detection < prev-0.05 {
			t.Fatalf("detection not monotone at δ=%v", d)
		}
		prev = byDelta[d].Detection
	}
}

func TestCDFSeries(t *testing.T) {
	e := stats.NewECDF([]float64{1, 2, 3})
	pts := CDFSeries(e, 0, 4, 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][1] != 0 || pts[4][1] != 1 {
		t.Fatalf("CDF endpoints wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF series not monotone")
		}
	}
}

func TestRunScoresDeterministic(t *testing.T) {
	cfg := DefaultScoreConfig()
	cfg.N = 500
	cfg.Freeriders = 50
	a, _ := RunScores(context.Background(), cfg)
	b, _ := RunScores(context.Background(), cfg)
	if a.HonestM.Mean() != b.HonestM.Mean() || a.Detection != b.Detection {
		t.Fatal("identical configs produced different results")
	}
}
