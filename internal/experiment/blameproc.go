package experiment

import (
	"lifting/internal/analysis"
	"lifting/internal/rng"
)

// BlameProcess samples the per-period blame applied to one node under the
// workload model of the paper's analysis (§6.2): every period the node
// proposes to (1−δ1)·f partners, each answering with an |R|-chunk request,
// and is itself served by f verifiers that run direct cross-checking with
// pdcc = 1. Message losses are i.i.d. Bernoulli(pl).
//
// The sampler's event structure mirrors Equations (2), (3) and b̃′(∆)
// term-for-term, so its empirical mean converges to the closed forms — the
// Monte-Carlo validation the paper reports in §6. Figures 10-12 are
// regenerated from it.
type BlameProcess struct {
	P     analysis.Params
	Delta analysis.Delta
	Rand  *rng.Stream
}

// SamplePeriod draws one period's total blame with pdcc = 1 (the setting
// the paper analyzes).
func (bp *BlameProcess) SamplePeriod() float64 {
	return bp.SamplePeriodPdcc(1)
}

// SamplePeriodPdcc draws one period's total blame when verifiers poll
// witnesses with probability pdcc. Direct verification and the
// missing/incomplete-ack blame are pdcc-independent; witness contradictions
// (including the detection of dropped proposals, δ2) require a poll.
func (bp *BlameProcess) SamplePeriodPdcc(pdcc float64) float64 {
	pr := 1 - bp.P.Loss
	f := bp.P.F
	r := bp.P.R
	var blame float64

	// Direct verification: the node proposed to (1−δ1)·f partners. For each
	// partner, the proposal and the request each travel once; requested
	// chunks are dropped by the node with probability δ3 and lost with
	// probability pl.
	partners := int((1-bp.Delta.D1)*float64(f) + 0.5)
	for j := 0; j < partners; j++ {
		if !bp.Rand.Bernoulli(pr) {
			continue // proposal lost: the partner never requests
		}
		if !bp.Rand.Bernoulli(pr) {
			blame += float64(f) // request lost: blamed f ((a) of Eq. 2)
			continue
		}
		for k := 0; k < r; k++ {
			if !bp.Rand.Bernoulli(pr * (1 - bp.Delta.D3)) {
				blame += float64(f) / float64(r)
			}
		}
	}

	// Direct cross-checking: the node received chunks from its servers,
	// whose count per period is Poisson(f) — each of the n·f proposals in
	// the system targets this node with probability 1/n. (This workload
	// randomness is what lifts the paper's experimental σ(b) to 25.6 from
	// the 19.3 a fixed verifier count would give.) With probability δ2 the
	// node dropped a verifier's chunks entirely (blamed f — the δ2·f² term
	// of b̃′); otherwise the serve/ack chain must survive (pr² for
	// proposal+request, pr^(|R|+1) for serves+ack), and each of the f
	// witnesses answers through a 3-leg exchange whose legs the node's
	// reduced fanout (δ1) breaks.
	verifiers := bp.Rand.Poisson(float64(f))
	for i := 0; i < verifiers; i++ {
		if bp.Rand.Bernoulli(bp.Delta.D2) {
			// Dropped this verifier's chunks; the lie in the ack is only
			// exposed when the verifier polls its witnesses.
			if bp.Rand.Bernoulli(pdcc) {
				blame += float64(f)
			}
			continue
		}
		if !bp.Rand.Bernoulli(pr * pr) {
			continue // the verifier never served: nothing to check
		}
		chainOK := true
		for k := 0; k < r+1; k++ {
			if !bp.Rand.Bernoulli(pr) {
				chainOK = false
				break
			}
		}
		if !chainOK {
			blame += float64(f) // (a) of Eq. 3: expected regardless of pdcc
			continue
		}
		if !bp.Rand.Bernoulli(pdcc) {
			continue
		}
		for k := 0; k < f; k++ {
			if !bp.Rand.Bernoulli(pr * pr * pr * (1 - bp.Delta.D1)) {
				blame++
			}
		}
	}
	return blame
}

// SampleScore draws a normalized score after r periods with the given
// compensation (Equation 6): s = −(1/r)·Σ(bᵢ − b̃).
func (bp *BlameProcess) SampleScore(r int, compensation float64) float64 {
	if r < 1 {
		r = 1
	}
	var total float64
	for i := 0; i < r; i++ {
		total += bp.SamplePeriod()
	}
	return compensation - total/float64(r)
}
