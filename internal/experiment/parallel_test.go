package experiment

import (
	"context"
	"math"
	"testing"
)

// TestRunScoresParallelMatchesSerial pins the determinism contract of the
// parallel Monte-Carlo driver: any worker count produces bit-identical
// results, because per-node streams are derived independently and
// aggregation is serial.
func TestRunScoresParallelMatchesSerial(t *testing.T) {
	cfg := DefaultScoreConfig()
	cfg.N = 1200
	cfg.Freeriders = 120
	cfg.Periods = 5

	cfg.Workers = 1
	serial, err := RunScores(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 64} {
		cfg.Workers = workers
		par, err := RunScores(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		pairs := [][2]float64{
			{serial.HonestM.Mean(), par.HonestM.Mean()},
			{serial.HonestM.Std(), par.HonestM.Std()},
			{serial.FreeriderM.Mean(), par.FreeriderM.Mean()},
			{serial.Detection, par.Detection},
			{serial.FalsePositives, par.FalsePositives},
			{serial.Honest.Min(), par.Honest.Min()},
			{serial.Honest.Max(), par.Honest.Max()},
			{serial.Freerider.Min(), par.Freerider.Min()},
		}
		for i, p := range pairs {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("workers=%d: metric %d diverged from serial: %v vs %v", workers, i, p[0], p[1])
			}
		}
	}
}

// TestFig12ParallelMatchesSerial does the same for the delta sweep.
func TestFig12ParallelMatchesSerial(t *testing.T) {
	cfg := DefaultScoreConfig()
	cfg.Periods = 10
	deltas := []float64{0.02, 0.05, 0.08, 0.12}

	cfg.Workers = 1
	_, serial, err := Fig12(context.Background(), cfg, deltas, 150)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	_, par, err := Fig12(context.Background(), cfg, deltas, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("sweep point %d diverged: %+v vs %+v", i, serial[i], par[i])
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must resolve to at least one worker")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}
