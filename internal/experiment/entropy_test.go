package experiment

import (
	"context"
	"math"
	"testing"
)

func TestFig13PaperRanges(t *testing.T) {
	// Scaled to n = 2000 with the paper's history length nh·f = 600; the
	// entropy ranges shift only marginally with n (the birthday correction
	// grows as k²/n).
	cfg := DefaultEntropyConfig()
	cfg.N = 2000
	cfg.SampleNodes = 500
	_, res, err := Fig13(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Max attainable is log2(600) = 9.23.
	if math.Abs(res.MaxAttainable-9.2288) > 0.001 {
		t.Fatalf("max entropy = %v, want 9.23", res.MaxAttainable)
	}
	// Fanout entropies concentrate just below the max (paper: 9.11–9.21 at
	// n = 10,000; at n = 2,000 collisions push slightly lower).
	if res.Fanout.Min() < 8.8 || res.Fanout.Max() > res.MaxAttainable {
		t.Fatalf("fanout entropy range [%v, %v] implausible", res.Fanout.Min(), res.Fanout.Max())
	}
	// Fanin entropies straddle the max (sizes vary): paper 8.98–9.34.
	if res.Fanin.Min() < 8.6 || res.Fanin.Max() > 9.6 {
		t.Fatalf("fanin entropy range [%v, %v] implausible", res.Fanin.Min(), res.Fanin.Max())
	}
	// γ = 8.95 would sit below every honest fanout entropy here — the
	// paper's "negligible wrongful expulsion" claim — modulo the small-n
	// collision shift.
	if res.Fanout.Mean() < 8.9 {
		t.Fatalf("fanout mean %v too low", res.Fanout.Mean())
	}
	// Fanin mean ≈ fanout mean (both ≈ uniform over ≈600 draws).
	if math.Abs(res.Fanin.Mean()-res.Fanout.Mean()) > 0.15 {
		t.Fatalf("fanin mean %v far from fanout mean %v", res.Fanin.Mean(), res.Fanout.Mean())
	}
}

func TestFig13AtPaperScaleSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10k-node entropy simulation in -short mode")
	}
	cfg := DefaultEntropyConfig() // n = 10,000
	cfg.SampleNodes = 300
	_, res, err := Fig13(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper ranges: fanout [9.11, 9.21], fanin [8.98, 9.34].
	if res.Fanout.Min() < 9.05 || res.Fanout.Max() > 9.24 {
		t.Fatalf("fanout range [%v, %v], paper says [9.11, 9.21]", res.Fanout.Min(), res.Fanout.Max())
	}
	if res.Fanin.Min() < 8.9 || res.Fanin.Max() > 9.45 {
		t.Fatalf("fanin range [%v, %v], paper says [8.98, 9.34]", res.Fanin.Min(), res.Fanin.Max())
	}
	// Every honest node passes γ = 8.95 on fanout (no wrongful expulsion).
	if res.Fanout.Min() < 8.95 {
		t.Fatalf("an honest fanout entropy %v fell below γ = 8.95", res.Fanout.Min())
	}
}

func TestEq7Table(t *testing.T) {
	tab := Eq7(8.95, 600, []int{25, 26, 50})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The 25/26-coalition rows carry the paper's 21% anchor; checked
	// numerically in the analysis package — here we check the table wiring.
	if tab.Rows[0][0] != "25" {
		t.Fatalf("first row = %v", tab.Rows[0])
	}
}
