package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"lifting/internal/metrics"
	"lifting/internal/runtime"
)

// The experiment registry is the public face of this package: every table
// and figure runner registers an Experiment value, and everything downstream
// — the lifting-sim driver, its `all` batch, `list`, usage text, the JSON
// output CI consumes — derives from the registry instead of hand-maintained
// name lists and per-experiment flag plumbing. Adding an experiment is
// registering a value; the CLI, the batch and the docs pick it up without
// another edit.

// Params is the one typed parameter set every experiment runs from. It
// carries exactly the overrides the lifting-sim flags expose; each
// experiment maps the fields it understands onto its own config (via the
// same rules the old per-experiment flag plumbing applied) and ignores the
// rest. The zero value of the sentinel fields means "experiment default":
// use DefaultParams as the base so Delta and Pdcc start at −1.
type Params struct {
	// N overrides the system size (0 = experiment default).
	N int `json:"n,omitempty"`
	// Seed overrides the root random seed (0 = experiment default).
	Seed uint64 `json:"seed,omitempty"`
	// Duration overrides the streamed duration of cluster experiments
	// (JSON: nanoseconds). It is an input knob echoed into the document,
	// not a measurement.
	//lint:allow no-time-in-results configured input echoed verbatim; not a measured time
	Duration time.Duration `json:"duration,omitempty"`
	// Periods overrides the score-period count r (fig11/fig12).
	Periods int `json:"periods,omitempty"`
	// Delta overrides the degree of freeriding (fig11; −1 = default).
	//lint:allow no-float-in-document configured input echoed verbatim; no reduction touches it
	Delta float64 `json:"delta"`
	// Pdcc overrides the cross-check probability (fig14; −1 = default).
	//lint:allow no-float-in-document configured input echoed verbatim; no reduction touches it
	Pdcc float64 `json:"pdcc"`
	// Quick shrinks paper-scale experiments for a fast pass.
	Quick bool `json:"quick,omitempty"`
	// Workers fans Monte-Carlo work across goroutines (0 = GOMAXPROCS,
	// 1 = serial). Results are bit-identical for any worker count, which is
	// why it is excluded from the JSON echo: it is an execution knob, not a
	// result parameter, and the document of a seeded run must not depend on
	// the machine that produced it.
	Workers int `json:"-"`
	// Shards partitions the discrete-event engine within a run (cluster
	// experiments that opt in: scale, matrix): 0 = the serial single-heap
	// engine, −1 = one shard per CPU, n ≥ 1 = exactly n shards. Results
	// are bit-identical for every shard count ≥ 1 — the engine's lockstep
	// merge guarantees it — so like Workers this is an execution knob,
	// excluded from the JSON echo. Only 0 (the serial engine, with its
	// shared randomness stream) changes results.
	Shards int `json:"-"`
	// Backends restricts execution backends. Nil means the experiment
	// default (sim; for the matrix, every backend a scenario declares).
	// Single-backend experiments use the first entry.
	Backends []runtime.Kind `json:"backends,omitempty"`
	// Filter keeps only matrix scenarios whose name contains the substring.
	Filter string `json:"filter,omitempty"`
	// NoCompensation disables wrongful-blame compensation (ablation).
	NoCompensation bool `json:"no_compensation,omitempty"`
}

// DefaultParams returns the neutral parameter set: every override off, the
// Delta/Pdcc sentinels at −1 and the engine sharding on auto.
func DefaultParams() Params {
	return Params{Delta: -1, Pdcc: -1, Shards: -1}
}

// backend returns the single execution backend the params select.
func (p Params) backend() runtime.Kind {
	if len(p.Backends) > 0 {
		return p.Backends[0]
	}
	return runtime.KindSim
}

// backendsLabel names the backend set for messages ("all" when unrestricted).
func (p Params) backendsLabel() string {
	if len(p.Backends) == 0 {
		return "all"
	}
	s := ""
	for i, k := range p.Backends {
		if i > 0 {
			s += ","
		}
		s += k.String()
	}
	return s
}

// Metric is one named scalar of a structured result.
type Metric struct {
	Name string `json:"name"`
	// Value is computed by a serial, seed-determined reduction in every
	// experiment (worker fan-out never reorders the fold), so the formatted
	// bytes are identical across worker and shard counts.
	//lint:allow no-float-in-document serial seed-determined reduction; byte-stable across worker and shard counts
	Value float64 `json:"value"`
}

// Verdict is an experiment's pass/fail outcome. Experiments without an
// acceptance gate always pass; gated ones (scale, matrix) list every
// violated bound.
type Verdict struct {
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// Result is the structured outcome of one experiment run: the tables as
// data, scalar metrics, and the verdict. Everything in it is deterministic
// for a fixed seed — wall-clock timings deliberately stay out, so the JSON
// encoding of a seeded run is byte-identical across repetitions and worker
// counts.
type Result struct {
	// Experiment is the registry name that produced this result.
	Experiment string `json:"experiment"`
	// Paper cites the paper artifact the experiment reproduces.
	Paper string `json:"paper"`
	// Params echoes the parameters the run used.
	Params Params `json:"params"`
	// Tables holds the experiment's tables in render order.
	Tables []*Table `json:"tables"`
	// Metrics are the headline scalars, in a fixed per-experiment order.
	Metrics []Metric `json:"metrics,omitempty"`
	// MetricsSnapshots is the run's periodic metrics section: cumulative
	// traffic/redundancy/verification counts sampled on sim-time period
	// boundaries. Counts and integer ratios only — no wall-clock — so a
	// seeded run's document is byte-identical across repetitions, worker
	// counts and engine shard counts.
	MetricsSnapshots []metrics.Snapshot `json:"metrics_snapshots,omitempty"`
	// Verdict is the pass/fail outcome.
	Verdict Verdict `json:"verdict"`
}

// Metric returns the named scalar, if the result carries it.
func (r *Result) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// addTable records a table and streams it to the observer.
func (r *Result) addTable(obs Observer, t *Table) {
	r.Tables = append(r.Tables, t)
	if obs != nil {
		obs.OnTable(t)
	}
}

// addMetric records one named scalar.
func (r *Result) addMetric(name string, value float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value})
}

// fail records a verdict failure.
func (r *Result) fail(format string, args ...any) {
	r.Verdict.Pass = false
	r.Verdict.Failures = append(r.Verdict.Failures, fmt.Sprintf(format, args...))
}

// Observer streams experiment progress to a consumer. A nil Observer is
// always allowed. OnTable is invoked from the experiment's goroutine as each
// table completes, in render order — the lifting-sim ASCII mode prints them
// incrementally, exactly as the pre-registry driver did.
type Observer interface {
	OnTable(t *Table)
}

// RunFunc executes an experiment: it maps Params onto the experiment's
// config, runs, and returns the structured result. Implementations must
// honor ctx (they thread it into cluster runs and Monte-Carlo drivers) and
// return ctx.Err() — not a partial result — when cancelled.
type RunFunc func(ctx context.Context, p Params, obs Observer) (*Result, error)

// Experiment is one registry entry.
type Experiment struct {
	// Name is the CLI name (`lifting-sim <name>`).
	Name string
	// Paper cites the paper artifact ("§6.2, Figure 10") or names the
	// beyond-the-paper workload.
	Paper string
	// Describe is a one-line description for `lifting-sim list`.
	Describe string
	// MultiBackend marks experiments that accept a backend *set* (the
	// matrix); every other experiment takes exactly one backend, which the
	// driver enforces generically from this flag.
	MultiBackend bool
	// DefaultParams are the effective defaults a parameterless run uses,
	// for `list -json` and `-describe` (informational; Run applies them).
	DefaultParams Params
	// Run executes the experiment.
	Run RunFunc
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Experiment)
	// registryOrder keeps registration order: cheap analytic experiments
	// first, long cluster streams last — the order `all` executes and usage
	// lists.
	registryOrder []string
)

// Register installs an experiment. Registering a nameless, runless or
// duplicate experiment panics: the registry is assembled from init
// functions, so a bad entry is a programming error.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiment: Register needs a name and a run function")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("experiment: %q registered twice", e.Name))
	}
	registry[e.Name] = e
	registryOrder = append(registryOrder, e.Name)
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Experiments returns every registered experiment in registration order —
// the order `lifting-sim all` runs them.
func Experiments() []Experiment {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Experiment, 0, len(registryOrder))
	for _, name := range registryOrder {
		out = append(out, registry[name])
	}
	return out
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), registryOrder...)
}

// Schema identifies the JSON document layout. Bump it when the shape of
// Document/Result changes; the golden-schema test pins the current shape.
const Schema = "lifting.experiments/v1"

// Document is the JSON document `lifting-sim -json` emits: one entry per
// experiment run, in run order. lifting-bench and CI consume it directly.
type Document struct {
	Schema  string    `json:"schema"`
	Results []*Result `json:"results"`
}

// NewDocument wraps results in a versioned document.
func NewDocument(results []*Result) *Document {
	return &Document{Schema: Schema, Results: results}
}

// Encode writes the document as indented JSON with a trailing newline. The
// bytes are deterministic: encoding/json is order-stable and the document
// carries no wall-clock fields.
func (d *Document) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
