package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"lifting/internal/rng"
)

func TestAblationsTable(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.ScoreN = 500
	cfg.ClusterN = 50
	cfg.Duration = 8 * time.Second
	tab, err := Ablations(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}

	// 1. Compensation: β jumps from ≈0 to ≈1 when disabled.
	betaOn := parsePct(t, tab.Rows[0][2])
	betaOff := parsePct(t, tab.Rows[0][3])
	if betaOn > 0.05 {
		t.Fatalf("β with compensation = %v, want ≈0", betaOn)
	}
	if betaOff < 0.95 {
		t.Fatalf("β without compensation = %v, want ≈1", betaOff)
	}

	// 2. Cross-checking: the δ2 gap collapses when pdcc = 0.
	gapOn := parseNum(t, tab.Rows[1][2])
	gapOff := parseNum(t, tab.Rows[1][3])
	if gapOn < 5*gapOff && gapOn < gapOff+10 {
		t.Fatalf("pdcc gap %v vs %v: cross-checking contributed too little", gapOn, gapOff)
	}

	// 3. Loss recovery: health drops without re-requests.
	healthOn := parseNum(t, tab.Rows[2][2])
	healthOff := parseNum(t, tab.Rows[2][3])
	if healthOn <= healthOff {
		t.Fatalf("recovery off did not hurt: %v vs %v", healthOn, healthOff)
	}
	if healthOn < 0.85 {
		t.Fatalf("baseline health with recovery = %v", healthOn)
	}
}

func TestSamplePeriodPdccZeroDropsWitnessBlame(t *testing.T) {
	// With pdcc = 0, expected blame = DV + chain terms only.
	bp := BlameProcess{P: paperParams(), Rand: rng.New(7)}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += bp.SamplePeriodPdcc(0)
	}
	mean := sum / n
	want := paperParams().DirectVerificationBlame() + paperParams().CrossCheckBlameChain()
	if diff := mean - want; diff > 0.6 || diff < -0.6 {
		t.Fatalf("pdcc=0 mean blame %v, want %v", mean, want)
	}
}

func TestAblationsRender(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.ScoreN = 200
	cfg.ScorePeriods = 10
	cfg.ClusterN = 30
	cfg.Duration = 5 * time.Second
	tab, err := Ablations(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"compensation", "cross-checking", "loss recovery"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
