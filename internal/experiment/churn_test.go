package experiment

import (
	"context"
	"testing"
	"time"
)

func quickChurnConfig() ChurnConfig {
	cfg := DefaultChurnConfig()
	cfg.N = 50
	cfg.Joins = 6
	cfg.Leaves = 6
	cfg.Duration = 8 * time.Second
	return cfg
}

func TestChurnSeparationSurvives(t *testing.T) {
	_, res, err := Churn(context.Background(), quickChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Joined != 6 || res.Departed != 6 {
		t.Fatalf("churn events incomplete: joined %d, departed %d", res.Joined, res.Departed)
	}
	if res.AliveEnd != 50 {
		t.Errorf("alive at end = %d, want 50 (6 in, 6 out)", res.AliveEnd)
	}
	if res.Handoffs == 0 {
		t.Error("no manager handoffs under churn")
	}
	if res.CatchUp.Mean() < 0.5 {
		t.Errorf("arrivals caught only %.0f%% of the post-join stream", 100*res.CatchUp.Mean())
	}
	if res.FreeriderMean >= res.HonestMean {
		t.Errorf("separation lost under churn: honest %.2f vs freeriders %.2f",
			res.HonestMean, res.FreeriderMean)
	}
}

func TestChurnDeterministic(t *testing.T) {
	_, a, errA := Churn(context.Background(), quickChurnConfig())
	_, b, errB := Churn(context.Background(), quickChurnConfig())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.HonestMean != b.HonestMean || a.FreeriderMean != b.FreeriderMean ||
		a.Handoffs != b.Handoffs || a.CatchUp.Mean() != b.CatchUp.Mean() {
		t.Fatalf("two identical churn runs diverged: %+v vs %+v", a, b)
	}
}
