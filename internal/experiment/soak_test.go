package experiment

import (
	"context"
	"encoding/json"
	"testing"

	"lifting/internal/runtime"
)

// TestSoakQuickVerdict pins the soak's acceptance contract on the sim
// backend: the full fault plan executes, the standing invariants hold at
// every period, honest nodes survive every crash/partition/burst, and the
// freerider cohort is still expelled.
func TestSoakQuickVerdict(t *testing.T) {
	cfg := QuickSoakConfig()
	_, res, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChaosApplied != res.PlanEvents {
		t.Errorf("fault plan incomplete: applied %d of %d events", res.ChaosApplied, res.PlanEvents)
	}
	if res.PlanEvents == 0 {
		t.Error("fault plan empty — the soak soaked nothing")
	}
	for _, v := range res.Violations {
		t.Errorf("standing invariant violated: %s", v)
	}
	if !res.HonestClean() {
		t.Errorf("%d live honest nodes expelled, want 0", res.HonestExpelled)
	}
	if !res.CohortExpelled() {
		t.Errorf("freerider cohort not fully expelled: %d of %d", res.FreeridersExpelled, res.Freeriders)
	}
	if res.Joined == 0 || res.Departed == 0 {
		t.Errorf("churn did not run: joined %d, departed %d", res.Joined, res.Departed)
	}
	if res.GoodputBytes == 0 {
		t.Error("no verified payload delivered")
	}
	if res.MaxTracked > cfg.N+cfg.Joins {
		t.Errorf("per-manager state unbounded: %d tracked, population ever %d", res.MaxTracked, cfg.N+cfg.Joins)
	}
	if len(res.Snapshots) == 0 {
		t.Error("no metrics snapshots recorded")
	}
}

// TestSoakShardInvariant runs the same quick soak on 1 and 4 engine shards
// and requires identical results — the fault plane applies everything from
// the engine's global phase, so sharding must not change a single byte.
func TestSoakShardInvariant(t *testing.T) {
	run := func(shards int) []byte {
		cfg := QuickSoakConfig()
		cfg.Shards = shards
		_, res, err := Soak(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(1), run(4)
	if string(a) != string(b) {
		t.Fatalf("soak diverged across shard counts:\n--- 1 shard ---\n%s\n--- 4 shards ---\n%s", a, b)
	}
}

// TestSoakUnknownAttack pins the attack-name validation.
func TestSoakUnknownAttack(t *testing.T) {
	cfg := QuickSoakConfig()
	cfg.Attack = "ddos"
	if _, _, err := Soak(context.Background(), cfg); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

// TestSoakAltAttacks runs the two non-default attacks briefly: the soak
// must hold its no-honest-expulsion invariant under bad-mouthing, and the
// stretch cohort must not destabilize the stream.
func TestSoakAltAttacks(t *testing.T) {
	for _, attack := range []string{"blame-spam", "period-stretch"} {
		t.Run(attack, func(t *testing.T) {
			cfg := QuickSoakConfig()
			cfg.Attack = attack
			cfg.Backend = runtime.KindSim
			_, res, err := Soak(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("standing invariant violated: %s", v)
			}
			if !res.HonestClean() {
				t.Errorf("%d live honest nodes expelled under %s, want 0", res.HonestExpelled, attack)
			}
			if res.GoodputBytes == 0 {
				t.Error("no verified payload delivered")
			}
		})
	}
}
