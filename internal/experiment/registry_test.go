package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"testing"

	"lifting/internal/runtime"
)

// wantExperiments is the inventory this PR ships, in `all` execution order:
// cheap analytic experiments first, long cluster streams last.
var wantExperiments = []string{
	"fig10", "fig11", "fig12", "fig13", "eq7", "ablate",
	"table3", "table5", "churn", "scale", "soak", "matrix", "fig14", "fig1",
}

// TestRegistryInventory pins the registry: every experiment of the
// reproduction is registered, in batch order, with paper citation,
// description and a run function.
func TestRegistryInventory(t *testing.T) {
	names := Names()
	if len(names) != len(wantExperiments) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(names), len(wantExperiments), names)
	}
	for i, want := range wantExperiments {
		if names[i] != want {
			t.Errorf("registry order [%d] = %q, want %q", i, names[i], want)
		}
	}
	for _, e := range Experiments() {
		if e.Paper == "" || e.Describe == "" || e.Run == nil {
			t.Errorf("experiment %q is missing paper/describe/run", e.Name)
		}
		if e.DefaultParams.Delta != -1 && e.Name != "fig11" {
			t.Errorf("experiment %q default Delta = %v, want the -1 sentinel", e.Name, e.DefaultParams.Delta)
		}
	}
	if e, ok := Lookup("matrix"); !ok || !e.MultiBackend {
		t.Error("matrix must be registered as the multi-backend experiment")
	}
	if _, ok := Lookup("no-such"); ok {
		t.Error("Lookup invented an experiment")
	}
}

// collectObserver records the tables streamed during a run.
type collectObserver struct{ tables []*Table }

func (o *collectObserver) OnTable(t *Table) { o.tables = append(o.tables, t) }

// TestRegistryRunStreamsTables: the observer sees exactly the tables the
// result carries, in order — the contract the ASCII renderer builds on.
func TestRegistryRunStreamsTables(t *testing.T) {
	e, _ := Lookup("eq7")
	obs := &collectObserver{}
	res, err := e.Run(context.Background(), DefaultParams(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(obs.tables) != len(res.Tables) {
		t.Fatalf("observer saw %d tables, result carries %d", len(obs.tables), len(res.Tables))
	}
	for i := range res.Tables {
		if obs.tables[i] != res.Tables[i] {
			t.Fatalf("table %d streamed out of order", i)
		}
	}
	if !res.Verdict.Pass {
		t.Fatalf("eq7 verdict failed: %v", res.Verdict.Failures)
	}
	if res.Experiment != "eq7" || res.Paper == "" {
		t.Fatalf("result not self-describing: %+v", res)
	}
}

// encodeRun executes a registry experiment and returns its JSON document
// bytes.
func encodeRun(t *testing.T, name string, p Params) []byte {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewDocument([]*Result{res}).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStructuredOutputDeterministic extends the PR 4 determinism tests to
// the structured path: the JSON document of a seeded matrix scenario — the
// workload whose map-order and scheduling hazards PR 4 chased — is
// byte-identical across repeated runs and across worker counts.
func TestStructuredOutputDeterministic(t *testing.T) {
	base := DefaultParams()
	base.Quick = true
	base.Seed = 42
	base.Filter = "fanout-decrease"
	base.Backends = []runtime.Kind{runtime.KindSim}

	first := encodeRun(t, "matrix", base)
	for _, workers := range []int{0, 1, 7} {
		p := base
		p.Workers = workers
		got := encodeRun(t, "matrix", p)
		if !bytes.Equal(got, first) {
			t.Fatalf("workers=%d produced different JSON:\n--- first ---\n%s--- now ---\n%s",
				workers, first, got)
		}
	}
	if again := encodeRun(t, "matrix", base); !bytes.Equal(again, first) {
		t.Fatal("repeated seeded run produced different JSON")
	}
}

// keysOf returns the sorted key set of a JSON object.
func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func assertKeys(t *testing.T, what string, m map[string]json.RawMessage, required, optional []string) {
	t.Helper()
	allowed := map[string]bool{}
	for _, k := range append(append([]string{}, required...), optional...) {
		allowed[k] = true
	}
	for _, k := range required {
		if _, ok := m[k]; !ok {
			t.Errorf("%s: missing required key %q (has %v)", what, k, keysOf(m))
		}
	}
	for k := range m {
		if !allowed[k] {
			t.Errorf("%s: unexpected key %q — the JSON schema drifted; bump experiment.Schema and update this golden test", what, k)
		}
	}
}

// TestJSONGoldenSchema pins the shape of the -json document so it cannot
// drift silently: top-level keys, result keys, params keys, table keys,
// verdict keys. Consumers (CI, lifting-bench, dashboards) parse exactly
// this.
func TestJSONGoldenSchema(t *testing.T) {
	p := DefaultParams()
	p.Quick = true
	p.N = 400
	p.Seed = 3
	doc := encodeRun(t, "fig10", p)

	var top map[string]json.RawMessage
	if err := json.Unmarshal(doc, &top); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "document", top, []string{"schema", "results"}, nil)

	var schema string
	if err := json.Unmarshal(top["schema"], &schema); err != nil || schema != Schema {
		t.Fatalf("schema = %q (%v), want %q", schema, err, Schema)
	}

	var results []map[string]json.RawMessage
	if err := json.Unmarshal(top["results"], &results); err != nil || len(results) != 1 {
		t.Fatalf("results malformed: %v", err)
	}
	res := results[0]
	assertKeys(t, "result", res,
		[]string{"experiment", "paper", "params", "tables", "verdict"},
		[]string{"metrics", "metrics_snapshots"})

	var params map[string]json.RawMessage
	if err := json.Unmarshal(res["params"], &params); err != nil {
		t.Fatal(err)
	}
	// workers is deliberately absent: an execution knob that cannot change
	// results must not break byte-identity of the document across machines.
	assertKeys(t, "params", params,
		[]string{"delta", "pdcc"},
		[]string{"n", "seed", "duration", "periods", "quick", "backends", "filter", "no_compensation"})

	var tables []map[string]json.RawMessage
	if err := json.Unmarshal(res["tables"], &tables); err != nil || len(tables) == 0 {
		t.Fatalf("tables malformed: %v", err)
	}
	assertKeys(t, "table", tables[0], []string{"title", "columns", "rows"}, []string{"notes"})

	var verdict map[string]json.RawMessage
	if err := json.Unmarshal(res["verdict"], &verdict); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "verdict", verdict, []string{"pass"}, []string{"failures"})

	if raw, ok := res["metrics"]; ok {
		var metrics []map[string]json.RawMessage
		if err := json.Unmarshal(raw, &metrics); err != nil || len(metrics) == 0 {
			t.Fatalf("metrics malformed: %v", err)
		}
		assertKeys(t, "metric", metrics[0], []string{"name", "value"}, nil)
	} else {
		t.Error("fig10 result carries no metrics")
	}
}

// TestRegistryRunCancels: a cancelled context aborts a cluster-streaming
// experiment through the registry with context.Canceled and no result.
func TestRegistryRunCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"churn", "fig12", "matrix"} {
		e, _ := Lookup(name)
		p := DefaultParams()
		p.Quick = true
		res, err := e.Run(ctx, p, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled run returned %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: cancelled run still produced a result", name)
		}
	}
}

// TestRegisterRejectsBadEntries: the registry panics on nameless, runless
// and duplicate registrations — they are programming errors.
func TestRegisterRejectsBadEntries(t *testing.T) {
	expectPanic := func(what string, e Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register accepted %s", what)
			}
		}()
		Register(e)
	}
	expectPanic("a nameless experiment", Experiment{Run: func(context.Context, Params, Observer) (*Result, error) { return nil, nil }})
	expectPanic("a runless experiment", Experiment{Name: "runless"})
	expectPanic("a duplicate", Experiment{Name: "fig10", Run: func(context.Context, Params, Observer) (*Result, error) { return nil, nil }})
}
