package experiment

import (
	"math"
	"testing"

	"lifting/internal/analysis"
	"lifting/internal/rng"
)

// TestChebyshevBoundsHoldEmpirically validates the §6.3.1 bounds against
// the blame-process Monte Carlo: the Bienaymé–Tchebychev inequalities must
// never be violated by the empirical α and β, across δ and r.
func TestChebyshevBoundsHoldEmpirically(t *testing.T) {
	p := analysis.Params{F: 12, R: 4, Loss: 0.07}
	comp := p.WrongfulBlame()
	const eta = -9.75
	const samples = 1500

	for _, r := range []int{10, 50, 100} {
		for _, d := range []float64{0, 0.05, 0.1, 0.15} {
			delta := analysis.Uniform(d)
			bp := BlameProcess{P: p, Delta: delta, Rand: rng.New(uint64(r*1000) + uint64(d*100))}
			below := 0
			for i := 0; i < samples; i++ {
				if bp.SampleScore(r, comp) < eta {
					below++
				}
			}
			frac := float64(below) / samples

			if d == 0 {
				// β ≤ σ(b)²/(r·η²): the false-positive bound.
				bound := p.FalsePositiveBound(r, eta)
				if frac > bound+0.02 {
					t.Errorf("r=%d: empirical β %v exceeds bound %v", r, frac, bound)
				}
				continue
			}
			// α ≥ 1 − σ(b′)²/(r·(b̃′−b̃+η)²): the detection bound.
			bound := p.DetectionBound(delta, r, eta)
			if frac < bound-0.02 {
				t.Errorf("r=%d δ=%v: empirical α %v below bound %v", r, d, frac, bound)
			}
		}
	}
}

// TestFreeriderStdMatchesMC cross-validates our σ(b′(∆)) derivation (the
// paper defers it to its technical report) against the Monte Carlo.
func TestFreeriderStdMatchesMC(t *testing.T) {
	p := analysis.Params{F: 12, R: 4, Loss: 0.07}
	for _, d := range []float64{0, 0.1, 0.2} {
		delta := analysis.Uniform(d)
		bp := BlameProcess{P: p, Delta: delta, Rand: rng.New(uint64(100 + d*1000))}
		var sum, sum2 float64
		const n = 30000
		for i := 0; i < n; i++ {
			x := bp.SamplePeriod()
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		varMC := sum2/n - mean*mean
		stdMC := math.Sqrt(math.Max(varMC, 0))
		want := p.FreeriderBlameStd(delta)
		if relErr := math.Abs(stdMC-want) / want; relErr > 0.08 {
			t.Errorf("δ=%v: σ(b′) MC %v vs closed form %v (rel err %v)", d, stdMC, want, relErr)
		}
	}
}
