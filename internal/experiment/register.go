package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lifting/internal/analysis"
)

// This file registers every experiment. Registration order is execution
// order for `lifting-sim all`: cheap analytic experiments first, the long
// cluster streams (fig14, fig1) last. The parameter mapping in each wrapper
// is the contract the lifting-sim flags used to implement per-experiment;
// it lives here now so a library caller and the CLI resolve overrides
// identically.

// scoreConfig maps Params onto the Monte-Carlo score experiments
// (fig10/fig11/fig12).
func scoreConfig(p Params) ScoreConfig {
	cfg := DefaultScoreConfig()
	if p.Quick {
		cfg.N = 2000
		cfg.Freeriders = 200
	}
	if p.N > 0 {
		cfg.N = p.N
		cfg.Freeriders = p.N / 10
	}
	if p.Seed > 0 {
		cfg.Seed = p.Seed
	}
	if p.Periods > 0 {
		cfg.Periods = p.Periods
	}
	if p.Delta >= 0 {
		cfg.Delta = analysis.Uniform(p.Delta)
	}
	cfg.NoCompensation = p.NoCompensation
	cfg.Workers = p.Workers
	return cfg
}

// planetLabConfig maps Params onto the §7 deployment scenario
// (fig1/fig14/table3/table5).
func planetLabConfig(p Params) PlanetLabConfig {
	pl := DefaultPlanetLabConfig()
	if p.Quick {
		pl.N = 100
		pl.Duration = 20 * time.Second
	}
	if p.N > 0 {
		pl.N = p.N
	}
	if p.Seed > 0 {
		pl.Seed = p.Seed
	}
	if p.Duration > 0 {
		pl.Duration = p.Duration
	}
	if p.Pdcc >= 0 {
		pl.Pdcc = p.Pdcc
	}
	return pl
}

// newResult starts a passing result for the named experiment.
func newResult(name string, p Params) *Result {
	e, _ := Lookup(name)
	return &Result{Experiment: name, Paper: e.Paper, Params: p, Verdict: Verdict{Pass: true}}
}

// fig14Pdccs returns the pdcc values fig14 sweeps: the paper shows 1 and
// 0.5; an explicit override pins a single value.
func fig14Pdccs(override float64) []float64 {
	if override >= 0 {
		return []float64{override}
	}
	return []float64{1, 0.5}
}

func init() {
	Register(Experiment{
		Name: "fig10", Paper: "§6.2, Figure 10",
		Describe:      "compensated honest scores after one period under message loss",
		DefaultParams: Params{N: 10_000, Seed: 1, Periods: 1, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			tab, res, err := Fig10(ctx, scoreConfig(p))
			if err != nil {
				return nil, err
			}
			out := newResult("fig10", p)
			out.addTable(obs, tab)
			out.addMetric("mean-score", res.HonestM.Mean())
			out.addMetric("sigma-b", res.HonestM.Std())
			return out, nil
		},
	})
	Register(Experiment{
		Name: "fig11", Paper: "§6.3.1, Figure 11",
		Describe:      "normalized score separation, honest vs freeriders, after r periods",
		DefaultParams: Params{N: 10_000, Seed: 1, Periods: 50, Delta: 0.1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			tab, res, err := Fig11(ctx, scoreConfig(p))
			if err != nil {
				return nil, err
			}
			out := newResult("fig11", p)
			out.addTable(obs, tab)
			out.addMetric("detection", res.Detection)
			out.addMetric("false-positives", res.FalsePositives)
			out.addMetric("mode-gap", res.HonestM.Mean()-res.FreeriderM.Mean())
			return out, nil
		},
	})
	Register(Experiment{
		Name: "fig12", Paper: "§6.3.1, Figure 12",
		Describe:      "detection probability and bandwidth gain vs degree of freeriding",
		DefaultParams: Params{N: 10_000, Seed: 1, Periods: 50, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			samples := 4000
			if p.Quick {
				samples = 1000
			}
			tab, _, err := Fig12(ctx, scoreConfig(p), nil, samples)
			if err != nil {
				return nil, err
			}
			out := newResult("fig12", p)
			out.addTable(obs, tab)
			return out, nil
		},
	})
	Register(Experiment{
		Name: "fig13", Paper: "§6.3.2, Figure 13",
		Describe:      "entropy of honest fanout/fanin histories vs the audit threshold γ",
		DefaultParams: Params{N: 10_000, Seed: 1, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			cfg := DefaultEntropyConfig()
			if p.Quick {
				cfg.N = 2000
				cfg.SampleNodes = 500
			}
			if p.N > 0 {
				cfg.N = p.N
			}
			if p.Seed > 0 {
				cfg.Seed = p.Seed
			}
			tab, res, err := Fig13(ctx, cfg)
			if err != nil {
				return nil, err
			}
			out := newResult("fig13", p)
			out.addTable(obs, tab)
			out.addMetric("fanout-H-mean", res.Fanout.Mean())
			out.addMetric("fanin-H-mean", res.Fanin.Mean())
			out.addMetric("fanout-H-min", res.Fanout.Min())
			return out, nil
		},
	})
	Register(Experiment{
		Name: "eq7", Paper: "§6.3.2, Equation 7",
		Describe:      "maximum undetectable collusion bias p*m vs coalition size",
		DefaultParams: Params{Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out := newResult("eq7", p)
			out.addTable(obs, Eq7(8.95, 600, nil))
			return out, nil
		},
	})
	Register(Experiment{
		Name: "ablate", Paper: "beyond the paper — mechanism ablations",
		Describe:      "what compensation, cross-checking and loss recovery each buy",
		DefaultParams: Params{Seed: 21, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			cfg := DefaultAblationConfig()
			if p.Quick {
				cfg.ScoreN = 500
				cfg.ClusterN = 50
				cfg.Duration = 8 * time.Second
			}
			if p.Seed > 0 {
				cfg.Seed = p.Seed
			}
			tab, err := Ablations(ctx, cfg)
			if err != nil {
				return nil, err
			}
			out := newResult("ablate", p)
			out.addTable(obs, tab)
			return out, nil
		},
	})
	Register(Experiment{
		Name: "table3", Paper: "§6.1/§7.2, Table 3",
		Describe:      "verification messages per node per gossip period, swept over pdcc",
		DefaultParams: Params{N: 300, Seed: 42, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			tab, err := Table3(ctx, planetLabConfig(p), nil)
			if err != nil {
				return nil, err
			}
			out := newResult("table3", p)
			out.addTable(obs, tab)
			return out, nil
		},
	})
	Register(Experiment{
		Name: "table5", Paper: "§7.2, Table 5",
		Describe:      "relative bandwidth overhead across stream rates and pdcc",
		DefaultParams: Params{N: 300, Seed: 42, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			tab, points, err := Table5(ctx, planetLabConfig(p), nil, nil)
			if err != nil {
				return nil, err
			}
			out := newResult("table5", p)
			out.addTable(obs, tab)
			ratio := map[[2]int]float64{}
			for _, pt := range points {
				out.addMetric(fmt.Sprintf("overhead-%dkbps-pdcc%.2f", pt.BitrateBps/1000, pt.Pdcc), pt.Ratio)
				ratio[[2]int{pt.BitrateBps, int(pt.Pdcc * 100)}] = pt.Ratio
			}
			// The standing overhead oracle. The paper's headline is <8%
			// bandwidth overhead at full cross-checking (674 kbps, pdcc=1,
			// measured 8.01%); our reproduction lands at ~8.8% because acks
			// are costlier here (see EXPERIMENTS.md), so the worst cell is
			// gated with a 2-point tolerance while the higher stream rates —
			// where the claim is unambiguous — must stay strictly under 8%.
			if r, ok := ratio[[2]int{674_000, 100}]; ok && (r <= 0 || r >= 0.10) {
				out.fail("overhead at 674 kbps / pdcc=1 is %.2f%%, want within (0%%, 10%%)", 100*r)
			}
			for _, rate := range []int{1_082_000, 2_036_000} {
				if r, ok := ratio[[2]int{rate, 100}]; ok && (r <= 0 || r >= 0.08) {
					out.fail("overhead at %d kbps / pdcc=1 is %.2f%%, want under the paper's 8%%", rate/1000, 100*r)
				}
			}
			// And Table 5's two shapes: overhead grows with pdcc and
			// shrinks as the stream rate grows.
			for _, rate := range []int{674_000, 1_082_000, 2_036_000} {
				r0, ok0 := ratio[[2]int{rate, 0}]
				r1, ok1 := ratio[[2]int{rate, 100}]
				if ok0 && ok1 && r1 <= r0 {
					out.fail("overhead at %d kbps not increasing in pdcc: %.2f%% → %.2f%%", rate/1000, 100*r0, 100*r1)
				}
			}
			low, okLow := ratio[[2]int{674_000, 100}]
			high, okHigh := ratio[[2]int{2_036_000, 100}]
			if okLow && okHigh && high >= low {
				out.fail("overhead did not shrink with bitrate: %.2f%% (674k) vs %.2f%% (2036k)", 100*low, 100*high)
			}
			return out, nil
		},
	})
	Register(Experiment{
		Name: "churn", Paper: "beyond the paper — churn workload",
		Describe:      "joins and leaves mid-stream with reputation-manager handoff",
		DefaultParams: Params{N: 120, Seed: 17, Duration: 30 * time.Second, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			cfg := DefaultChurnConfig()
			cfg.Backend = p.backend()
			if p.Quick {
				cfg.N = 50
				cfg.Joins, cfg.Leaves = 6, 6
				cfg.Duration = 8 * time.Second
			}
			if p.N > 0 {
				cfg.N = p.N
			}
			if p.Seed > 0 {
				cfg.Seed = p.Seed
			}
			if p.Duration > 0 {
				cfg.Duration = p.Duration
			}
			tab, res, err := Churn(ctx, cfg)
			if err != nil {
				return nil, err
			}
			out := newResult("churn", p)
			out.addTable(obs, tab)
			out.addMetric("joined", float64(res.Joined))
			out.addMetric("departed", float64(res.Departed))
			out.addMetric("handoffs", float64(res.Handoffs))
			out.addMetric("catch-up", res.CatchUp.Mean())
			out.addMetric("score-gap", res.HonestMean-res.FreeriderMean)
			return out, nil
		},
	})
	Register(Experiment{
		Name: "scale", Paper: "beyond the paper — 10k-node scale workload",
		Describe:      "expulsion verdict at a large population vs the 300-node baseline",
		DefaultParams: Params{N: 10_000, Seed: 23, Duration: 20 * time.Second, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			cfg := DefaultScaleConfig()
			if p.Quick {
				cfg.N = 1000
			}
			if p.N > 0 {
				cfg.N = p.N
			}
			if p.Seed > 0 {
				cfg.Seed = p.Seed
			}
			if p.Duration > 0 {
				cfg.Duration = p.Duration
			}
			cfg.Shards = p.Shards
			tab, res, err := Scale(ctx, cfg)
			if err != nil {
				return nil, err
			}
			out := newResult("scale", p)
			out.addTable(obs, tab)
			out.addMetric("target-freeriders-expelled", float64(res.Target.FreeridersExpelled))
			out.addMetric("target-honest-expelled", float64(res.Target.HonestExpelled))
			out.addMetric("target-overhead", res.Target.Overhead())
			out.addMetric("target-dup-ratio", res.Target.DupRatio())
			out.addMetric("target-goodput-bytes", float64(res.Target.GoodputBytes))
			out.addMetric("target-stream-lag", res.Target.StreamLag().Seconds())
			out.addMetric("target-stream-jitter", res.Target.StreamJitter().Seconds())
			out.MetricsSnapshots = res.TargetSnapshots
			// The scale workload uses 4x chunks (fewer, larger serves), so
			// its verification overhead is NOT Table 5's figure — but it
			// must stay in the same order of magnitude, and the stream must
			// be overwhelmingly useful traffic.
			if o := res.Target.Overhead(); o <= 0 || o >= 0.25 {
				out.fail("target verification overhead %.2f%% outside (0%%, 25%%)", 100*o)
			}
			if d := res.Target.DupRatio(); d >= 0.5 {
				out.fail("duplicate serves are the majority of received serves: %.2f%%", 100*d)
			}
			// QoE oracles: the content plane must actually deliver verified
			// payload, with first arrivals trailing the source by less than
			// the run and spacing close to the chunk interval.
			for _, r := range []ScaleRun{res.Baseline, res.Target} {
				if r.GoodputBytes == 0 {
					out.fail("scale N=%d delivered no verified payload (goodput 0)", r.N)
				}
				if lag := r.StreamLag(); lag <= 0 || lag >= cfg.Duration {
					out.fail("scale N=%d mean stream lag %s outside (0, %s)", r.N, lag, cfg.Duration)
				}
				if jit := r.StreamJitter(); jit >= cfg.Period {
					out.fail("scale N=%d mean jitter %s >= gossip period %s", r.N, jit, cfg.Period)
				}
			}
			// The gate is the expected verdict at BOTH populations, not mere
			// agreement: two identically-broken runs must still fail.
			for _, r := range []ScaleRun{res.Baseline, res.Target} {
				if !r.CohortExpelled() || !r.HonestClean() {
					out.fail("scale N=%d verdict %q, want cohort expelled and honest clean", r.N, r.Verdict())
				}
			}
			if !res.Agree {
				out.fail("scale verdict mismatch: baseline %q vs N=%d %q",
					res.Baseline.Verdict(), res.Target.N, res.Target.Verdict())
			}
			return out, nil
		},
	})
	Register(Experiment{
		Name: "soak", Paper: "beyond the paper — fault-plane soak",
		Describe:      "churn + one attack + a seeded fault schedule under standing invariant checkers",
		DefaultParams: Params{N: 120, Seed: 29, Duration: 30 * time.Second, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			cfg := DefaultSoakConfig()
			if p.Quick {
				cfg = QuickSoakConfig()
			}
			cfg.Backend = p.backend()
			cfg.Shards = p.Shards
			if p.N > 0 {
				cfg.N = p.N
			}
			if p.Seed > 0 {
				cfg.Seed = p.Seed
			}
			if p.Duration > 0 {
				cfg.Duration = p.Duration
			}
			// -filter selects the attack for the soak (freeride, blame-spam,
			// period-stretch); the flag is free-form, Soak validates it.
			if p.Filter != "" {
				cfg.Attack = p.Filter
			}
			tab, res, err := Soak(ctx, cfg)
			if err != nil {
				return nil, err
			}
			out := newResult("soak", p)
			out.addTable(obs, tab)
			out.addMetric("chaos-events", float64(res.ChaosApplied))
			out.addMetric("joined", float64(res.Joined))
			out.addMetric("departed", float64(res.Departed))
			out.addMetric("handoffs", float64(res.Handoffs))
			out.addMetric("freeriders-expelled", float64(res.FreeridersExpelled))
			out.addMetric("honest-expelled", float64(res.HonestExpelled))
			out.addMetric("max-tracked-per-manager", float64(res.MaxTracked))
			out.addMetric("invariant-violations", float64(len(res.Violations)))
			out.addMetric("goodput-bytes", float64(res.GoodputBytes))
			out.MetricsSnapshots = res.Snapshots
			// The standing invariants are the verdict: any per-period
			// violation fails the run, as does a schedule that did not fully
			// execute or a stream that delivered nothing.
			for _, v := range res.Violations {
				out.fail("invariant violated: %s", v)
			}
			if res.ChaosApplied != res.PlanEvents {
				out.fail("fault plan incomplete: applied %d of %d events", res.ChaosApplied, res.PlanEvents)
			}
			if res.GoodputBytes == 0 {
				out.fail("soak delivered no verified payload (goodput 0)")
			}
			// Detection oracles: honest nodes survive every fault; the
			// freerider cohort does not (cohort expulsion is only asserted
			// for the freeride attack — bad-mouthers are undetectable by
			// construction and stretchers are an audit subject).
			if !res.HonestClean() {
				out.fail("%d live honest nodes expelled under the fault plan, want 0", res.HonestExpelled)
			}
			if cfg.Attack == "freeride" && !res.CohortExpelled() {
				out.fail("freerider cohort not fully expelled: %d of %d", res.FreeridersExpelled, res.Freeriders)
			}
			return out, nil
		},
	})
	Register(Experiment{
		Name: "matrix", Paper: "§4/§5 adversary matrix",
		Describe:      "every §4/§5 attack scenario against its statistical oracle",
		MultiBackend:  true,
		DefaultParams: Params{Seed: 1, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			tab, res, err := Matrix(ctx, MatrixConfig{
				Quick:    p.Quick,
				Backends: p.Backends,
				Filter:   p.Filter,
				Seed:     p.Seed,
				Workers:  p.Workers,
				Shards:   p.Shards,
			})
			if err != nil {
				return nil, err
			}
			out := newResult("matrix", p)
			out.addTable(obs, tab)
			out.addMetric("scenarios", float64(res.ScenariosRun))
			out.addMetric("rows", float64(len(res.Rows)))
			failures := 0
			if res.ScenariosRun == 0 {
				// Either the filter matched nothing or the backend set
				// intersected every matching scenario away; name both.
				out.fail("matrix ran no scenario (filter %q, backends %s; scenarios: %s)",
					p.Filter, p.backendsLabel(), strings.Join(ScenarioNames(), ", "))
			}
			for _, r := range res.Rows {
				if len(r.Failures) > 0 {
					failures += len(r.Failures)
					out.fail("matrix %s on %s failed its oracle: %s",
						r.Scenario, r.Backend, strings.Join(r.Failures, "; "))
				}
			}
			out.addMetric("oracle-failures", float64(failures))
			return out, nil
		},
	})
	Register(Experiment{
		Name: "fig14", Paper: "§7.3, Figure 14",
		Describe:      "score CDF snapshots over time on the heterogeneous deployment",
		DefaultParams: Params{N: 300, Seed: 42, Duration: 35 * time.Second, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			pl := planetLabConfig(p)
			out := newResult("fig14", p)
			for _, pd := range fig14Pdccs(p.Pdcc) {
				pl.Pdcc = pd
				tab, res, err := Fig14(ctx, pl, nil)
				if err != nil {
					return nil, err
				}
				out.addTable(obs, tab)
				last := res.Snapshots[len(res.Snapshots)-1]
				out.addMetric("detection@pdcc="+F(pd, 2), last.Detection)
				out.addMetric("false-positives@pdcc="+F(pd, 2), last.FalsePositives)
			}
			return out, nil
		},
	})
	Register(Experiment{
		Name: "fig1", Paper: "§1/§7.3, Figure 1",
		Describe:      "stream health vs lag: baseline, unpoliced freeriders, LiFTinG",
		DefaultParams: Params{N: 300, Seed: 42, Duration: 45 * time.Second, Delta: -1, Pdcc: -1},
		Run: func(ctx context.Context, p Params, obs Observer) (*Result, error) {
			pl := planetLabConfig(p)
			if pl.Duration == DefaultPlanetLabConfig().Duration && p.Duration == 0 {
				pl.Duration = 45 * time.Second
			}
			var lags []time.Duration
			for s := 0; s <= int(pl.Duration/time.Second); s += 5 {
				lags = append(lags, time.Duration(s)*time.Second)
			}
			out := newResult("fig1", p)
			metrics := []string{"health-no-freeriders", "health-freeriders", "health-lifting"}
			for i, sc := range []Fig1Scenario{Fig1NoFreeriders, Fig1Freeriders, Fig1FreeridersLiFTinG} {
				tab, res, err := Fig1(ctx, pl, sc, lags)
				if err != nil {
					return nil, err
				}
				out.addTable(obs, tab)
				out.addMetric(metrics[i], res.Health[len(res.Health)-1])
			}
			return out, nil
		},
	})
}
