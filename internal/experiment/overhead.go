package experiment

import (
	"context"
	"time"

	"lifting/internal/cluster"
	"lifting/internal/msg"
)

// Table3 reproduces Table 3 of the paper: the per-node, per-period message
// overhead of the verifications, for a sweep of pdcc values. The paper gives
// the asymptotics — O(pdcc·f²) confirm traffic for the verifier and each
// witness, O(pdcc·f) for the inspected node, plus O(M·f) blames — which the
// measured counts must track.
func Table3(ctx context.Context, p PlanetLabConfig, pdccs []float64) (*Table, error) {
	if len(pdccs) == 0 {
		pdccs = []float64{0, 0.5, 1}
	}
	t := &Table{
		Title: "Table 3 — verification messages per node per gossip period",
		Columns: []string{
			"pdcc", "ack", "confirm", "confirm-resp", "blame", "total verif",
			"theory confirm O(pdcc·f²)",
		},
	}
	for _, pdcc := range pdccs {
		pc := p
		pc.Pdcc = pdcc
		opts := pc.buildOptions()
		opts.BlameMode = cluster.BlameMessages
		c := cluster.New(opts)
		c.Start()
		c.StartStream(pc.Duration)
		if err := c.RunContext(ctx, pc.Duration+time.Second); err != nil {
			c.Close()
			return nil, err
		}

		periods := float64(pc.Duration / pc.Period)
		perNodePeriod := func(k msg.Kind) float64 {
			return float64(c.Collector.SentMsgs(k)) / float64(pc.N) / periods
		}
		verifMsgs, _ := c.Collector.VerificationTotals()
		t.AddRow(
			F(pdcc, 2),
			F(perNodePeriod(msg.KindAck), 2),
			F(perNodePeriod(msg.KindConfirm), 2),
			F(perNodePeriod(msg.KindConfirmResp), 2),
			F(perNodePeriod(msg.KindBlame), 2),
			F(float64(verifMsgs)/float64(pc.N)/periods, 2),
			F(pdcc*float64(pc.F*pc.F), 1),
		)
	}
	t.Notes = append(t.Notes,
		"acks flow even at pdcc = 0 (they are what makes later polling possible)",
		"confirm counts stay below the O(pdcc·f²) bound because the real workload has fewer than f servers per period")
	return t, nil
}

// Table5 reproduces Table 5: LiFTinG's relative bandwidth overhead
// (verification bytes / dissemination bytes) for pdcc ∈ {0, 0.5, 1} and the
// three stream rates of the paper. The paper's measurements:
//
//	stream    pdcc=0   pdcc=0.5  pdcc=1
//	 674 kbps  1.07%    4.53%     8.01%
//	1082 kbps  0.69%    3.51%     5.04%
//	2036 kbps  0.38%    1.69%     2.76%
//
// The shape to reproduce: overhead grows with pdcc and shrinks as the
// stream rate grows (verification traffic is rate-independent while the
// payload is not).
// OverheadPoint is one measured cell of Table 5.
type OverheadPoint struct {
	BitrateBps int
	Pdcc       float64
	// Ratio is verification bytes / dissemination bytes.
	Ratio float64
}

func Table5(ctx context.Context, p PlanetLabConfig, bitrates []int, pdccs []float64) (*Table, []OverheadPoint, error) {
	if len(bitrates) == 0 {
		bitrates = []int{674_000, 1_082_000, 2_036_000}
	}
	if len(pdccs) == 0 {
		pdccs = []float64{0, 0.5, 1}
	}
	t := &Table{
		Title:   "Table 5 — bandwidth overhead of cross-checking and blaming",
		Columns: append([]string{"stream"}, pdccHeader(pdccs)...),
	}
	paper := map[int][]string{
		674_000:   {"1.07%", "4.53%", "8.01%"},
		1_082_000: {"0.69%", "3.51%", "5.04%"},
		2_036_000: {"0.38%", "1.69%", "2.76%"},
	}
	var points []OverheadPoint
	for _, rate := range bitrates {
		row := []string{F(float64(rate)/1000, 0) + " kbps"}
		for _, pdcc := range pdccs {
			pc := p
			pc.Pdcc = pdcc
			pc.BitrateBps = rate
			opts := pc.buildOptions()
			opts.BlameMode = cluster.BlameMessages
			c := cluster.New(opts)
			c.Start()
			c.StartStream(pc.Duration)
			if err := c.RunContext(ctx, pc.Duration+time.Second); err != nil {
				c.Close()
				return nil, nil, err
			}
			ratio := c.Collector.Overhead()
			points = append(points, OverheadPoint{BitrateBps: rate, Pdcc: pdcc, Ratio: ratio})
			row = append(row, Pct(ratio))
		}
		if ref, ok := paper[rate]; ok && len(pdccs) == 3 {
			row = append(row, "paper: "+ref[0]+" / "+ref[1]+" / "+ref[2])
		}
		t.AddRow(row...)
	}
	if len(pdccs) == 3 {
		t.Columns = append(t.Columns, "paper (pdcc 0 / 0.5 / 1)")
	}
	return t, points, nil
}

func pdccHeader(pdccs []float64) []string {
	out := make([]string, len(pdccs))
	for i, p := range pdccs {
		out[i] = "pdcc=" + F(p, 2)
	}
	return out
}
