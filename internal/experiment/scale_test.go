package experiment

import (
	"context"
	"testing"
	"time"
)

// TestScaleVerdictScaleInvariant runs the scale workload at a reduced
// target population: the expulsion verdict — whole freerider cohort out,
// no honest casualties — must match the 300-node baseline's. The 10k-node
// target is exercised by `lifting-sim scale` and the CI smoke step; here it
// would dominate the package's test time.
func TestScaleVerdictScaleInvariant(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.N = 1000
	if testing.Short() {
		cfg.N = 600
	}
	_, res, err := Scale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agree {
		t.Fatalf("verdicts disagree: baseline %q vs target %q", res.Baseline.Verdict(), res.Target.Verdict())
	}
	for _, run := range []ScaleRun{res.Baseline, res.Target} {
		if !run.CohortExpelled() {
			t.Errorf("N=%d: %d/%d freeriders expelled", run.N, run.FreeridersExpelled, run.Freeriders)
		}
		if !run.HonestClean() {
			t.Errorf("N=%d: %d honest nodes expelled", run.N, run.HonestExpelled)
		}
	}
	if res.Eta >= 0 {
		t.Fatalf("calibrated η = %v, want negative", res.Eta)
	}
	if res.Target.DetectionMean <= 0 || res.Target.DetectionMean > cfg.Duration {
		t.Fatalf("mean detection %v outside the run", res.Target.DetectionMean)
	}
}

// TestScaleShortDuration pins the configuration the CI 10k smoke uses: a
// 15-second stream still leaves room for the 24-period grace plus detection
// slack, so shrinking the smoke's duration must not shrink the verdict.
func TestScaleShortDuration(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestScaleVerdictScaleInvariant in short mode")
	}
	cfg := DefaultScaleConfig()
	cfg.N = 800
	cfg.Duration = 15 * time.Second
	_, res, err := Scale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agree || !res.Target.CohortExpelled() || !res.Target.HonestClean() {
		t.Fatalf("15s run verdict broke: agree=%v target=%q", res.Agree, res.Target.Verdict())
	}
}
