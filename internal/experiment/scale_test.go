package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"lifting/internal/cluster"
)

// TestScaleVerdictScaleInvariant runs the scale workload at a reduced
// target population: the expulsion verdict — whole freerider cohort out,
// no honest casualties — must match the 300-node baseline's. The 10k-node
// target is exercised by `lifting-sim scale` and the CI smoke step; here it
// would dominate the package's test time.
func TestScaleVerdictScaleInvariant(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.N = 1000
	if testing.Short() {
		cfg.N = 600
	}
	_, res, err := Scale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agree {
		t.Fatalf("verdicts disagree: baseline %q vs target %q", res.Baseline.Verdict(), res.Target.Verdict())
	}
	for _, run := range []ScaleRun{res.Baseline, res.Target} {
		if !run.CohortExpelled() {
			t.Errorf("N=%d: %d/%d freeriders expelled", run.N, run.FreeridersExpelled, run.Freeriders)
		}
		if !run.HonestClean() {
			t.Errorf("N=%d: %d honest nodes expelled", run.N, run.HonestExpelled)
		}
	}
	if res.Eta >= 0 {
		t.Fatalf("calibrated η = %v, want negative", res.Eta)
	}
	if res.Target.DetectionMean <= 0 || res.Target.DetectionMean > cfg.Duration {
		t.Fatalf("mean detection %v outside the run", res.Target.DetectionMean)
	}

	// Content-plane QoE: the stream carries real verified payload, arrivals
	// trail the source by less than the run, and spacing stays within a
	// gossip period of the chunk interval.
	for _, run := range []ScaleRun{res.Baseline, res.Target} {
		if run.GoodputBytes == 0 {
			t.Errorf("N=%d: no goodput", run.N)
		}
		if lag := run.StreamLag(); lag <= 0 || lag >= cfg.Duration {
			t.Errorf("N=%d: mean stream lag %v outside (0, %v)", run.N, lag, cfg.Duration)
		}
		if jit := run.StreamJitter(); jit >= cfg.Period {
			t.Errorf("N=%d: mean jitter %v >= period %v", run.N, jit, cfg.Period)
		}
	}

	// The periodic metrics section: sampled every snapshotEvery periods,
	// monotone in period and in every cumulative count, with the JSON keys
	// the document schema promises.
	snaps := res.TargetSnapshots
	if len(snaps) < 2 {
		t.Fatalf("target run produced %d snapshots", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Period <= snaps[i-1].Period {
			t.Fatalf("snapshot periods not increasing: %d then %d", snaps[i-1].Period, snaps[i].Period)
		}
		if snaps[i].UsefulChunks < snaps[i-1].UsefulChunks {
			t.Fatalf("useful chunks not cumulative at snapshot %d", i)
		}
	}
	last := snaps[len(snaps)-1]
	if last.UsefulChunks == 0 || last.ProtocolBytes == 0 || last.VerificationBytes == 0 {
		t.Fatalf("final snapshot empty: %+v", last)
	}
	if last.GoodputBytes == 0 || last.StreamLagMeanNs == 0 {
		t.Fatalf("final snapshot has no QoE accounting: %+v", last)
	}
	encoded, err := json.Marshal(last)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"period"`, `"kinds"`, `"protocol_bytes"`, `"verification_bytes"`,
		`"overhead_ppm"`, `"dup_chunks"`, `"useful_chunks"`, `"blames_received"`,
		`"audits"`, `"expulsions"`, `"serve_latency"`,
		`"goodput_bytes"`, `"invalid_serves"`, `"stream_lag_mean_ns"`, `"stream_jitter_mean_ns"`} {
		if !bytes.Contains(encoded, []byte(key)) {
			t.Fatalf("snapshot JSON missing %s: %s", key, encoded)
		}
	}
}

// TestScaleShardInvariant pins the sharded engine's contract at the
// workload level: one calibration, then the same seeded population run
// under 1, 2 and 8 engine shards must produce identical results — same
// expulsions, same virtual detection times, same event count. (Serial — 0
// shards — legitimately differs: it draws network randomness from one
// shared stream instead of per-node streams.)
func TestScaleShardInvariant(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.N = 600
	cfg.Duration = 15 * time.Second
	cal, err := cluster.Calibrate(context.Background(), cfg.scaleOptions(cfg.BaselineN), cfg.Duration)
	if err != nil {
		t.Fatal(err)
	}
	eta := -10 * cal.ScoreStd
	var ref ScaleRun
	var refSnaps []byte
	for i, s := range []int{1, 2, 8} {
		cfg.Shards = s
		run, snaps, err := cfg.scaleRun(context.Background(), cfg.N, cal.Compensation, eta)
		if err != nil {
			t.Fatal(err)
		}
		run.Elapsed = 0 // wall clock is the one legitimately varying field
		encoded, err := json.Marshal(snaps)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref, refSnaps = run, encoded
			if !run.CohortExpelled() || !run.HonestClean() {
				t.Fatalf("S=1 verdict %q, want cohort expelled and honest clean", run.Verdict())
			}
			if len(snaps) == 0 {
				t.Fatal("run produced no metrics snapshots")
			}
			if run.UsefulChunks == 0 || run.OverheadPpm == 0 {
				t.Fatalf("redundancy/overhead accounting empty: %+v", run)
			}
			if run.GoodputBytes == 0 || run.StreamLagMeanNs == 0 {
				t.Fatalf("QoE accounting empty: %+v", run)
			}
			continue
		}
		if run != ref {
			t.Fatalf("S=%d diverged from S=1:\n S=1: %+v\n S=%d: %+v", s, ref, s, run)
		}
		// The metrics snapshots — every counter, every histogram bucket —
		// must be byte-identical across shard counts too: they are sampled
		// at global-phase barriers over commuting atomic adds.
		if !bytes.Equal(encoded, refSnaps) {
			t.Fatalf("S=%d metrics snapshots diverged from S=1:\n S=1: %s\n S=%d: %s", s, refSnaps, s, encoded)
		}
	}
}

// TestScaleShortDuration pins the configuration the CI 10k smoke uses: a
// 15-second stream still leaves room for the 24-period grace plus detection
// slack, so shrinking the smoke's duration must not shrink the verdict.
func TestScaleShortDuration(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestScaleVerdictScaleInvariant in short mode")
	}
	cfg := DefaultScaleConfig()
	cfg.N = 800
	cfg.Duration = 15 * time.Second
	_, res, err := Scale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agree || !res.Target.CohortExpelled() || !res.Target.HonestClean() {
		t.Fatalf("15s run verdict broke: agree=%v target=%q", res.Agree, res.Target.Verdict())
	}
}
