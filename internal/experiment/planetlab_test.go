package experiment

import (
	"context"
	"strconv"
	"testing"
	"time"
)

// smallPL shrinks the PlanetLab scenario so the full pipeline runs in test
// time; the paper-scale runs live behind the CLI and the benchmarks.
func smallPL() PlanetLabConfig {
	p := DefaultPlanetLabConfig()
	p.N = 80
	p.Duration = 15 * time.Second
	return p
}

func TestFig14DetectionShape(t *testing.T) {
	p := smallPL()
	// More pronounced freeriding than the paper's (1/7, 0.1, 0.1) to get a
	// clean signal from 8 freeriders within a minute of simulated time (the
	// test system's chunk workload yields fewer blame opportunities per
	// period than PlanetLab's saturated one).
	p.Delta = [3]float64{3.0 / 7, 0.3, 0.3}
	p.Duration = 30 * time.Second
	tab, res, err := Fig14(context.Background(), p, []time.Duration{18 * time.Second, 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || len(res.Snapshots) != 2 {
		t.Fatal("missing snapshots")
	}
	early, late := res.Snapshots[0], res.Snapshots[1]
	// Detection must grow over time (the widening gap of Figure 14) and be
	// substantial by the end.
	if late.Detection < early.Detection-0.05 {
		t.Fatalf("detection shrank over time: %v → %v", early.Detection, late.Detection)
	}
	if late.Detection < 0.5 {
		t.Fatalf("late detection = %v, want a majority of freeriders flagged", late.Detection)
	}
	// False positives stay a small minority (the paper's 12% were mostly
	// the poorly connected tail).
	if late.FalsePositives > 0.25 {
		t.Fatalf("false positives = %v, too many honest nodes flagged", late.FalsePositives)
	}
	// Freeriders score lower than honest nodes on average.
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(late.Freerider) >= mean(late.Honest) {
		t.Fatal("freerider scores not below honest scores")
	}
}

func TestFig1Shape(t *testing.T) {
	p := smallPL()
	p.Duration = 12 * time.Second
	lags := []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second, 12 * time.Second}

	_, base, _ := Fig1(context.Background(), p, Fig1NoFreeriders, lags)
	_, collapsed, _ := Fig1(context.Background(), p, Fig1Freeriders, lags)
	_, protected, _ := Fig1(context.Background(), p, Fig1FreeridersLiFTinG, lags)

	last := len(lags) - 1
	// Health curves are monotone in lag.
	for _, r := range []*Fig1Result{base, collapsed, protected} {
		for i := 1; i < len(r.Health); i++ {
			if r.Health[i] < r.Health[i-1]-1e-9 {
				t.Fatalf("health not monotone for scenario %v: %v", r.Scenario, r.Health)
			}
		}
	}
	// The baseline reaches (almost) everyone.
	if base.Health[last] < 0.85 {
		t.Fatalf("baseline health = %v, want > 0.85", base.Health[last])
	}
	// Hard freeriding without LiFTinG collapses the system (Figure 1's
	// middle curve).
	if collapsed.Health[last] > base.Health[last]-0.15 {
		t.Fatalf("25%% hard freeriders did not hurt: %v vs baseline %v",
			collapsed.Health[last], base.Health[last])
	}
	// With LiFTinG, coerced freeriders (δ = 0.035) leave health near the
	// baseline and far above the collapse.
	if protected.Health[last] < collapsed.Health[last]+0.1 {
		t.Fatalf("LiFTinG did not restore health: %v vs collapsed %v",
			protected.Health[last], collapsed.Health[last])
	}
	if protected.Health[last] < base.Health[last]-0.2 {
		t.Fatalf("LiFTinG health %v too far below baseline %v",
			protected.Health[last], base.Health[last])
	}
}

func TestTable5OverheadShape(t *testing.T) {
	p := smallPL()
	p.Duration = 10 * time.Second
	tab, points, err := Table5(context.Background(), p, []int{674_000, 2_036_000}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 { return parsePct(t, s) }
	low0, low1 := parse(tab.Rows[0][1]), parse(tab.Rows[0][2])
	high0, high1 := parse(tab.Rows[1][1]), parse(tab.Rows[1][2])
	// Overhead grows with pdcc…
	if low1 <= low0 || high1 <= high0 {
		t.Fatalf("overhead not increasing in pdcc: %v→%v, %v→%v", low0, low1, high0, high1)
	}
	// …and shrinks with the stream rate (Table 5's second shape).
	if high1 >= low1 {
		t.Fatalf("overhead did not shrink with bitrate: %v (674k) vs %v (2036k)", low1, high1)
	}
	// Magnitudes in the paper's ballpark: ≤ ~12% at pdcc=1, ≥ ~0.1% at 0.
	if low1 > 0.15 || low0 < 0.001 {
		t.Fatalf("overhead magnitudes off: pdcc0=%v pdcc1=%v", low0, low1)
	}
	// The measured points mirror the rendered cells exactly.
	if len(points) != 4 {
		t.Fatalf("points = %+v", points)
	}
	for _, pt := range points {
		var cell float64
		switch {
		case pt.BitrateBps == 674_000 && pt.Pdcc == 0:
			cell = low0
		case pt.BitrateBps == 674_000 && pt.Pdcc == 1:
			cell = low1
		case pt.BitrateBps == 2_036_000 && pt.Pdcc == 0:
			cell = high0
		default:
			cell = high1
		}
		if diff := pt.Ratio - cell; diff > 0.001 || diff < -0.001 {
			t.Fatalf("point %+v disagrees with rendered cell %v", pt, cell)
		}
	}
}

func TestTable3MessageCounts(t *testing.T) {
	p := smallPL()
	p.Duration = 8 * time.Second
	tab, err := Table3(context.Background(), p, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 { return parseNum(t, s) }
	// pdcc = 0: no confirm traffic, but acks flow.
	if c := parse(tab.Rows[0][2]); c != 0 {
		t.Fatalf("confirms at pdcc=0: %v", c)
	}
	if a := parse(tab.Rows[0][1]); a <= 0 {
		t.Fatal("no acks at pdcc=0")
	}
	// pdcc = 1: confirm traffic present and bounded by O(f²).
	c1 := parse(tab.Rows[1][2])
	if c1 <= 0 {
		t.Fatal("no confirms at pdcc=1")
	}
	if c1 > float64(p.F*p.F) {
		t.Fatalf("confirms per node-period %v exceed f² = %d", c1, p.F*p.F)
	}
}

// parsePct parses a "12.3%" cell into a fraction.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	if n := len(s); n > 0 && s[n-1] == '%' {
		s = s[:n-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q: %v", s, err)
	}
	return v / 100
}

// parseNum parses a plain numeric cell.
func parseNum(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", s, err)
	}
	return v
}
