package experiment

import (
	"context"
	"io"
	"testing"
)

// BenchmarkRegistryDispatch measures the overhead of the experiment API
// itself: lookup, parameter mapping and result assembly around the cheapest
// registered experiment (eq7, a closed-form inversion). The registry path
// must stay negligible next to any real experiment.
func BenchmarkRegistryDispatch(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		e, ok := Lookup("eq7")
		if !ok {
			b.Fatal("eq7 not registered")
		}
		res, err := e.Run(context.Background(), p, nil)
		if err != nil || len(res.Tables) == 0 {
			b.Fatalf("dispatch failed: %v", err)
		}
	}
}

// BenchmarkResultJSONEncode measures the structured-output hot path: one
// Document with a representative multi-table result (the eq7 table plus a
// synthetic 64-row table) through the deterministic JSON encoder.
func BenchmarkResultJSONEncode(b *testing.B) {
	e, _ := Lookup("eq7")
	res, err := e.Run(context.Background(), DefaultParams(), nil)
	if err != nil {
		b.Fatal(err)
	}
	big := &Table{Title: "synthetic", Columns: []string{"a", "b", "c", "d"}}
	for i := 0; i < 64; i++ {
		big.AddRow(F(float64(i), 0), Pct(float64(i)/64), F(float64(i)*1.5, 2), "ok")
	}
	res.Tables = append(res.Tables, big)
	doc := NewDocument([]*Result{res})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := doc.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
