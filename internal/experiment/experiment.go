// Package experiment contains one runner per table and figure of the
// paper's evaluation (§6 analysis/simulation and §7 PlanetLab deployment).
// Each runner builds the workload, executes it (on the discrete-event
// cluster or on the blame-process Monte Carlo), and returns the same rows or
// series the paper reports, as renderable tables.
package experiment

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// Table is a renderable experiment result: the rows of a paper table or the
// series of a paper figure. It is pure data — the Result JSON emits it as-is
// — with Render as the ASCII view.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned ASCII. Column widths count display
// cells, not bytes: the symbols the tables actually print (η, α, β, δ) are
// multi-byte, and byte-counted widths pushed every column after them out of
// alignment; b̃ is two runes (base + combining tilde) occupying one cell,
// so a plain rune count would still misalign it by one.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = displayWidth(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && displayWidth(cell) > widths[i] {
				widths[i] = displayWidth(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// displayWidth counts the terminal cells a string occupies: one per rune,
// except combining marks (Unicode category Mn), which overlay the previous
// cell. The tables stick to single-cell symbols otherwise, so no wide-rune
// handling is needed.
func displayWidth(s string) int {
	n := 0
	for _, r := range s {
		if !unicode.Is(unicode.Mn, r) {
			n++
		}
	}
	return n
}

func pad(s string, w int) string {
	if n := displayWidth(s); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
