// Package experiment contains one runner per table and figure of the
// paper's evaluation (§6 analysis/simulation and §7 PlanetLab deployment).
// Each runner builds the workload, executes it (on the discrete-event
// cluster or on the blame-process Monte Carlo), and returns the same rows or
// series the paper reports, as renderable tables.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a renderable experiment result: the rows of a paper table or the
// series of a paper figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
