package experiment

import (
	"context"

	"lifting/internal/analysis"
	"lifting/internal/rng"
	"lifting/internal/stats"
)

// ScoreConfig parameterizes the score-distribution experiments (Figures
// 10-12). Defaults reproduce the paper: n = 10,000, f = 12, |R| = 4,
// pl = 7%, m = 1,000 freeriders of degree (0.1, 0.1, 0.1), r = 50 periods,
// η = −9.75.
type ScoreConfig struct {
	N          int
	Freeriders int
	Params     analysis.Params
	Delta      analysis.Delta
	Periods    int
	Eta        float64
	Seed       uint64
	// NoCompensation disables wrongful-blame compensation (ablation: shows
	// why Figure 10's centering matters).
	NoCompensation bool
	// Workers fans independent per-node trials across this many goroutines
	// (0 = GOMAXPROCS, 1 = the serial baseline). Results are bit-identical
	// for any worker count: every node's blame process draws from its own
	// seed-derived stream, and aggregation stays serial in node order.
	Workers int
}

// DefaultScoreConfig returns the paper's parameters.
func DefaultScoreConfig() ScoreConfig {
	return ScoreConfig{
		N:          10_000,
		Freeriders: 1_000,
		Params:     analysis.Params{F: 12, R: 4, Loss: 0.07},
		Delta:      analysis.Uniform(0.1),
		Periods:    50,
		Eta:        -9.75,
		Seed:       1,
	}
}

// ScoreResult carries the sampled distributions.
type ScoreResult struct {
	Honest     *stats.ECDF
	Freerider  *stats.ECDF
	HonestM    stats.Moments
	FreeriderM stats.Moments
	// Detection is α: the fraction of freeriders below η.
	Detection float64
	// FalsePositives is β: the fraction of honest nodes below η.
	FalsePositives float64
}

// RunScores samples the normalized score of every node under the
// blame-process model and classifies against η. The per-node trials are
// independent Monte-Carlo draws, fanned across cfg.Workers goroutines;
// aggregation is serial in node order, so the result does not depend on the
// worker count. Cancelling ctx aborts between per-node trials.
func RunScores(ctx context.Context, cfg ScoreConfig) (*ScoreResult, error) {
	comp := cfg.Params.WrongfulBlame()
	if cfg.NoCompensation {
		comp = 0
	}
	root := rng.New(cfg.Seed)
	res := &ScoreResult{}

	scores := make([]float64, cfg.N)
	err := parallelRange(ctx, cfg.Workers, cfg.N, func(i int) {
		bp := BlameProcess{P: cfg.Params, Rand: root.ForNode(uint32(i))}
		if i < cfg.Freeriders {
			bp.Delta = cfg.Delta
		}
		scores[i] = bp.SampleScore(cfg.Periods, comp)
	})
	if err != nil {
		return nil, err
	}

	honest := make([]float64, 0, cfg.N-cfg.Freeriders)
	riders := make([]float64, 0, cfg.Freeriders)
	for i, s := range scores {
		if i < cfg.Freeriders {
			riders = append(riders, s)
			res.FreeriderM.Add(s)
			if s < cfg.Eta {
				res.Detection++
			}
		} else {
			honest = append(honest, s)
			res.HonestM.Add(s)
			if s < cfg.Eta {
				res.FalsePositives++
			}
		}
	}
	if cfg.Freeriders > 0 {
		res.Detection /= float64(cfg.Freeriders)
	}
	if n := cfg.N - cfg.Freeriders; n > 0 {
		res.FalsePositives /= float64(n)
	}
	res.Honest = stats.NewECDF(honest)
	res.Freerider = stats.NewECDF(riders)
	return res, nil
}

// Fig10 reproduces Figure 10: the distribution of compensated scores after
// one gossip period in an all-honest 10,000-node system with pl = 7%,
// f = 12, |R| = 4. The paper reports mean < 0.01 (compensation −b̃ = 72.95
// applied) and experimental σ(b) = 25.6.
func Fig10(ctx context.Context, cfg ScoreConfig) (*Table, *ScoreResult, error) {
	cfg.Freeriders = 0
	cfg.Periods = 1
	res, err := RunScores(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:   "Figure 10 — impact of message losses (honest scores after one period)",
		Columns: []string{"quantity", "paper", "measured"},
	}
	t.AddRow("compensation b̃ (Eq. 5)", "72.95", F(cfg.Params.WrongfulBlame(), 2))
	t.AddRow("mean score", "≈0 (<0.01)", F(res.HonestM.Mean(), 3))
	t.AddRow("σ(b)", "25.6", F(res.HonestM.Std(), 1))
	t.AddRow("analytical σ(b)", "-", F(cfg.Params.WrongfulBlameStd(), 1))
	t.Notes = append(t.Notes,
		"score range ["+F(res.Honest.Min(), 1)+", "+F(res.Honest.Max(), 1)+
			"] — compare Figure 10's x-axis of [-250, 50]")
	return t, res, nil
}

// Fig11 reproduces Figure 11: normalized score distributions of honest
// nodes vs 1,000 freeriders of degree (0.1, 0.1, 0.1) after r = 50 periods,
// with the detection threshold η = −9.75.
func Fig11(ctx context.Context, cfg ScoreConfig) (*Table, *ScoreResult, error) {
	res, err := RunScores(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Figure 11 — normalized scores, honest vs freeriders (∆=(0.1,0.1,0.1), r=50)",
		Columns: []string{"quantity", "paper", "measured"},
	}
	t.AddRow("honest mean", "≈0", F(res.HonestM.Mean(), 2))
	t.AddRow("freerider mean", "<0 (separate mode)", F(res.FreeriderM.Mean(), 2))
	t.AddRow("gap between modes", ">0", F(res.HonestM.Mean()-res.FreeriderM.Mean(), 2))
	t.AddRow("detection α at η=-9.75", ">0.99", Pct(res.Detection))
	t.AddRow("false positives β", "<0.01", Pct(res.FalsePositives))
	t.Notes = append(t.Notes,
		"pdf modes must be disjoint: honest min "+F(res.Honest.Min(), 1)+
			" vs freerider max "+F(res.Freerider.Max(), 1))
	return t, res, nil
}

// CDFSeries renders a score CDF as (score, fraction) rows between lo and hi
// — the series of Figures 11b and 14.
func CDFSeries(e *stats.ECDF, lo, hi float64, points int) [][2]float64 {
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		out = append(out, [2]float64{x, e.At(x)})
	}
	return out
}

// Fig12Point is one sweep point of Figure 12.
type Fig12Point struct {
	Delta     float64
	Detection float64
	Gain      float64
	BoundLow  float64
}

// Fig12 reproduces Figure 12: detection probability α and upload-bandwidth
// gain as functions of the degree of freeriding δ (δ1=δ2=δ3=δ). The paper's
// anchors: α ≈ 0.65 at δ = 0.05; α > 0.99 beyond δ = 0.1; gain 10% at
// δ = 0.035 where α ≈ 0.5. Each sweep point is an independent Monte-Carlo
// trial batch with its own delta-derived stream, so the sweep parallelizes
// across cfg.Workers without changing any number.
func Fig12(ctx context.Context, cfg ScoreConfig, deltas []float64, samplesPerDelta int) (*Table, []Fig12Point, error) {
	if len(deltas) == 0 {
		for d := 0.0; d <= 0.201; d += 0.01 {
			deltas = append(deltas, d)
		}
	}
	comp := cfg.Params.WrongfulBlame()
	root := rng.New(cfg.Seed)
	t := &Table{
		Title:   "Figure 12 — detection and gain vs degree of freeriding δ",
		Columns: []string{"delta", "detection α", "gain", "Chebyshev bound"},
	}
	points := make([]Fig12Point, len(deltas))
	err := parallelRange(ctx, cfg.Workers, len(deltas), func(i int) {
		d := deltas[i]
		delta := analysis.Uniform(d)
		detected := 0
		bp := BlameProcess{P: cfg.Params, Delta: delta, Rand: root.Derive(F(d, 3))}
		for s := 0; s < samplesPerDelta; s++ {
			if bp.SampleScore(cfg.Periods, comp) < cfg.Eta {
				detected++
			}
		}
		points[i] = Fig12Point{
			Delta:     d,
			Detection: float64(detected) / float64(samplesPerDelta),
			Gain:      delta.Gain(),
			BoundLow:  cfg.Params.DetectionBound(delta, cfg.Periods, cfg.Eta),
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range points {
		t.AddRow(F(p.Delta, 3), Pct(p.Detection), Pct(p.Gain), Pct(p.BoundLow))
	}
	return t, points, nil
}
