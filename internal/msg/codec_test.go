package msg

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		&Propose{Sender: 1, Period: 9, Chunks: []ChunkID{3, 7, 9}, Origins: []NodeID{4, 5, 6}},
		&Propose{Sender: 2, Period: 0, Chunks: nil, Origins: nil},
		&Request{Sender: 3, Period: 9, Chunks: []ChunkID{3, 9}},
		&Serve{Sender: 4, Period: 9, Chunk: 3, PayloadSize: 1316},
		&Serve{Sender: 4, Period: 9, Chunk: 5, PayloadSize: 6,
			Hash: 0xdeadbeefcafef00d, Payload: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x0d}},
		&Ack{Sender: 5, Period: 10, Chunks: []ChunkID{3}, Partners: []NodeID{6, 7}},
		&Confirm{Sender: 6, Suspect: 5, Period: 10, Chunks: []ChunkID{3}},
		&ConfirmResp{Sender: 7, Suspect: 5, Period: 10, Confirmed: true},
		&ConfirmResp{Sender: 7, Suspect: 5, Period: 10, Confirmed: false},
		&Blame{Sender: 8, Target: 5, Value: 3.5, Reason: ReasonPartialServe},
		&ScoreReq{Sender: 9, Target: 5},
		&ScoreResp{Sender: 10, Target: 5, Score: -12.25, Expelled: true, Tracked: true},
		&ScoreResp{Sender: 10, Target: 6, Tracked: false},
		&Expel{Sender: 11, Target: 5, Reason: ReasonAuditEntropy},
		&AuditReq{Sender: 12, Horizon: 25 * time.Second},
		&AuditResp{Sender: 13, Proposals: []ProposalRecord{
			{Period: 1, Partner: 2, Chunks: []ChunkID{10, 11}},
			{Period: 2, Partner: 3, Chunks: nil},
		}, Serves: []ServeRecord{
			{Period: 1, Server: 4, Chunks: []ChunkID{10}},
		}},
		&AuditResp{Sender: 14},
		&AuditPoll{Sender: 15, Suspect: 5, Period: 2, Chunks: []ChunkID{1, 2, 3}},
		&AuditPollResp{Sender: 16, Suspect: 5, Period: 2, Confirmed: true, Askers: []NodeID{1, 9}},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range allMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%T): %v", m, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%T): %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip mismatch for %T:\n  sent %+v\n  got  %+v", m, m, got)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, m := range allMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Errorf("%T: decoding %d/%d bytes succeeded, want error", m, cut, len(b))
				break
			}
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	b, err := Encode(&ScoreReq{Sender: 1, Target: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(b, 0xFF)); err == nil {
		t.Fatal("decoding with trailing bytes succeeded, want error")
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	_, err := Decode([]byte{0xEE, 0, 0, 0, 1})
	if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestDecodeEmpty(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Decode(nil) err = %v, want ErrTruncated", err)
	}
}

func TestEncodeTooLongList(t *testing.T) {
	chunks := make([]ChunkID, maxListLen+1)
	_, err := Encode(&Request{Sender: 1, Chunks: chunks})
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestBlameValuePrecision(t *testing.T) {
	for _, v := range []float64{0, 1, -9.75, 12.0 / 7.0, math.MaxFloat64} {
		b, err := Encode(&Blame{Sender: 1, Target: 2, Value: v})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.(*Blame).Value != v {
			t.Errorf("blame value %v did not survive the round trip: %v", v, got.(*Blame).Value)
		}
	}
}

func TestProposeQuickRoundTrip(t *testing.T) {
	f := func(sender uint32, period uint32, chunks []uint32, origins []uint8) bool {
		m := &Propose{Sender: NodeID(sender), Period: Period(period)}
		for _, c := range chunks {
			m.Chunks = append(m.Chunks, ChunkID(c))
		}
		for _, o := range origins {
			m.Origins = append(m.Origins, NodeID(o))
		}
		b, err := Encode(m)
		if err != nil {
			return len(m.Chunks) > maxListLen || len(m.Origins) > maxListLen
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeMatchesScale(t *testing.T) {
	// WireSize is a model, not the codec's exact output, but it must grow
	// with content and dominate for serve payloads.
	small := (&Propose{Sender: 1, Chunks: []ChunkID{1}}).WireSize()
	big := (&Propose{Sender: 1, Chunks: make([]ChunkID, 100)}).WireSize()
	if big-small != 99*4 {
		t.Fatalf("propose wire size growth = %d, want %d", big-small, 99*4)
	}
	serve := &Serve{Sender: 1, Chunk: 1, PayloadSize: 1316}
	if serve.WireSize() < 1316 {
		t.Fatal("serve wire size must include payload")
	}
}

func TestServePayloadBounds(t *testing.T) {
	cases := []*Serve{
		{Sender: 1, PayloadSize: -1},
		{Sender: 1, PayloadSize: MaxChunkPayload + 1},
		{Sender: 1, PayloadSize: 10, Payload: make([]byte, MaxChunkPayload+1)},
	}
	for i, m := range cases {
		if _, err := Encode(m); !errors.Is(err, ErrPayloadBounds) {
			t.Errorf("case %d: err = %v, want ErrPayloadBounds", i, err)
		}
	}
	// A claimed payload length past the bound must error at decode too,
	// before any allocation.
	b, err := Encode(&Serve{Sender: 1, Period: 2, Chunk: 3, PayloadSize: 4, Payload: []byte{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	bomb := append([]byte(nil), b...)
	// The payload length prefix is the last u32 before the payload bytes.
	copy(bomb[len(bomb)-8:len(bomb)-4], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Decode(bomb); !errors.Is(err, ErrPayloadBounds) {
		t.Fatalf("decode of oversize payload length: err = %v, want ErrPayloadBounds", err)
	}
}

func TestDecodeServeAliasesInput(t *testing.T) {
	// The hot receive path depends on decode not copying payload bytes; the
	// transport clones once after reassembly instead.
	payload := []byte{9, 8, 7, 6, 5}
	b, err := Encode(&Serve{Sender: 1, Period: 2, Chunk: 3, PayloadSize: 5, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Serve).Payload
	if !reflect.DeepEqual(got, payload) {
		t.Fatalf("payload = %v, want %v", got, payload)
	}
	if &got[0] != &b[len(b)-5] {
		t.Fatal("decoded payload does not alias the input buffer")
	}
}

func TestServeEmptyPayloadCanonical(t *testing.T) {
	// A zero-length payload decodes as nil, so modelled-only serves stay the
	// canonical form and encode is a fixed point either way.
	b, err := Encode(&Serve{Sender: 1, Period: 2, Chunk: 3, PayloadSize: 1316})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.(*Serve).Payload != nil {
		t.Fatal("empty payload should decode as nil")
	}
	b2, err := Encode(m)
	if err != nil || !reflect.DeepEqual(b, b2) {
		t.Fatalf("modelled serve is not an encode fixed point (err %v)", err)
	}
}

func TestKindClassification(t *testing.T) {
	for _, m := range allMessages() {
		isProto := m.Kind() == KindPropose || m.Kind() == KindRequest || m.Kind() == KindServe
		if m.Kind().IsVerification() == isProto {
			t.Errorf("%v: IsVerification() = %v inconsistent", m.Kind(), m.Kind().IsVerification())
		}
	}
}

func TestKindAndReasonStrings(t *testing.T) {
	for _, m := range allMessages() {
		if m.Kind().String() == "unknown" {
			t.Errorf("kind %d has no name", m.Kind())
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("unknown kind should stringify as unknown")
	}
	for r := ReasonUnknown; r <= ReasonInvalidPayload; r++ {
		if r.String() == "" {
			t.Errorf("reason %d has empty name", r)
		}
	}
	if ReasonPartialServe.String() != "partial-serve" {
		t.Fatalf("ReasonPartialServe = %q", ReasonPartialServe.String())
	}
}

func TestEncodedSizeCloseToModel(t *testing.T) {
	// The model includes a 28-byte transport header the codec does not
	// emit; otherwise the two should be within a few bytes of each other
	// for non-payload messages.
	for _, m := range allMessages() {
		if m.Kind() == KindServe {
			continue // model includes payload bytes, codec does not
		}
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		model := m.WireSize() - 28
		if diff := model - len(b); diff < -4 || diff > 12 {
			t.Errorf("%T: model %d vs encoded %d (diff %d)", m, model, len(b), diff)
		}
	}
}
