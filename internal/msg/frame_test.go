package msg

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

func TestFrameRoundTripAllKinds(t *testing.T) {
	for _, m := range allMessages() {
		for _, flags := range []uint8{0, FlagReliable} {
			b, err := EncodeFrame(m, flags)
			if err != nil {
				t.Fatalf("EncodeFrame(%T): %v", m, err)
			}
			got, gotFlags, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("DecodeFrame(%T): %v", m, err)
			}
			if gotFlags != flags {
				t.Errorf("%T: flags %d, want %d", m, gotFlags, flags)
			}
			if !reflect.DeepEqual(m, got) {
				t.Errorf("frame round trip mismatch for %T:\n  sent %+v\n  got  %+v", m, m, got)
			}
		}
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	m := &Propose{Sender: 1, Period: 9, Chunks: []ChunkID{3, 7, 9}}
	buf, err := AppendFrame(nil, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := cap(buf)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendFrame(buf[:0], m, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	if cap(buf) != cap0 {
		t.Fatalf("buffer reallocated: cap %d → %d", cap0, cap(buf))
	}
	if allocs > 1 {
		t.Errorf("AppendFrame with a reused buffer allocates %.0f times per message", allocs)
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	valid, err := EncodeFrame(&Blame{Sender: 8, Target: 5, Value: 3.5, Reason: ReasonPartialServe}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		fn(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrameTooShort},
		{"short", valid[:FrameHeaderSize-1], ErrFrameTooShort},
		{"magic", mutate(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"version", mutate(func(b []byte) { b[2] = 99 }), ErrBadVersion},
		{"length-over", mutate(func(b []byte) { binary.BigEndian.PutUint16(b[4:], 9999) }), ErrFrameLength},
		{"length-under", mutate(func(b []byte) { binary.BigEndian.PutUint16(b[4:], 1) }), ErrFrameLength},
		{"checksum", mutate(func(b []byte) { b[len(b)-1] ^= 0x40 }), ErrBadChecksum},
		{"truncated-payload", valid[:len(valid)-2], ErrFrameLength},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeFrameRejectsBadPayload(t *testing.T) {
	// A well-formed frame around a truncated message must surface the codec
	// error, not panic.
	b, err := AppendFrame(nil, &ScoreReq{Sender: 1, Target: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cut := b[:len(b)-1]
	binary.BigEndian.PutUint16(cut[4:], uint16(len(cut)-FrameHeaderSize))
	// Recompute the checksum so only the payload is wrong.
	binary.BigEndian.PutUint32(cut[6:], crc32.ChecksumIEEE(cut[FrameHeaderSize:]))
	if _, _, err := DecodeFrame(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	huge := &AuditResp{Sender: 1}
	for i := 0; i < 3000; i++ {
		huge.Proposals = append(huge.Proposals, ProposalRecord{
			Period: Period(i), Partner: 2, Chunks: []ChunkID{1, 2, 3, 4},
		})
	}
	if _, err := AppendFrame(nil, huge, 0); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
}
