package msg

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

func TestFrameRoundTripAllKinds(t *testing.T) {
	for _, m := range allMessages() {
		for _, flags := range []uint8{0, FlagReliable} {
			b, err := EncodeFrame(m, flags)
			if err != nil {
				t.Fatalf("EncodeFrame(%T): %v", m, err)
			}
			got, gotFlags, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("DecodeFrame(%T): %v", m, err)
			}
			if gotFlags != flags {
				t.Errorf("%T: flags %d, want %d", m, gotFlags, flags)
			}
			if !reflect.DeepEqual(m, got) {
				t.Errorf("frame round trip mismatch for %T:\n  sent %+v\n  got  %+v", m, m, got)
			}
		}
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	m := &Propose{Sender: 1, Period: 9, Chunks: []ChunkID{3, 7, 9}}
	buf, err := AppendFrame(nil, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := cap(buf)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendFrame(buf[:0], m, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	if cap(buf) != cap0 {
		t.Fatalf("buffer reallocated: cap %d → %d", cap0, cap(buf))
	}
	if allocs > 1 {
		t.Errorf("AppendFrame with a reused buffer allocates %.0f times per message", allocs)
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	valid, err := EncodeFrame(&Blame{Sender: 8, Target: 5, Value: 3.5, Reason: ReasonPartialServe}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		fn(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrameTooShort},
		{"short", valid[:FrameHeaderSize-1], ErrFrameTooShort},
		{"magic", mutate(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"version", mutate(func(b []byte) { b[2] = 99 }), ErrBadVersion},
		{"length-over", mutate(func(b []byte) { binary.BigEndian.PutUint16(b[4:], 9999) }), ErrFrameLength},
		{"length-under", mutate(func(b []byte) { binary.BigEndian.PutUint16(b[4:], 1) }), ErrFrameLength},
		{"checksum", mutate(func(b []byte) { b[len(b)-1] ^= 0x40 }), ErrBadChecksum},
		{"truncated-payload", valid[:len(valid)-2], ErrFrameLength},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeFrameRejectsBadPayload(t *testing.T) {
	// A well-formed frame around a truncated message must surface the codec
	// error, not panic.
	b, err := AppendFrame(nil, &ScoreReq{Sender: 1, Target: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cut := b[:len(b)-1]
	binary.BigEndian.PutUint16(cut[4:], uint16(len(cut)-FrameHeaderSize))
	// Recompute the checksum so only the payload is wrong.
	binary.BigEndian.PutUint32(cut[6:], crc32.ChecksumIEEE(cut[FrameHeaderSize:]))
	if _, _, err := DecodeFrame(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestAppendFrameRejectsFlagFragment(t *testing.T) {
	if _, err := AppendFrame(nil, &ScoreReq{Sender: 1, Target: 2}, FlagFragment); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("err = %v, want ErrBadFragment", err)
	}
}

func TestFragmentRoundTrip(t *testing.T) {
	// Split a message across fragment frames the way the transport does and
	// reassemble by hand.
	m := &Serve{Sender: 1, Period: 2, Chunk: 3, PayloadSize: 100}
	body, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 7 // force several fragments from a small message
	count := (len(body) + chunk - 1) / chunk
	var frames [][]byte
	for i := 0; i < count; i++ {
		end := (i + 1) * chunk
		if end > len(body) {
			end = len(body)
		}
		f, err := AppendFragment(nil, 42, uint16(i), uint16(count), body[i*chunk:end], FlagReliable)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	var reassembled []byte
	for i, f := range frames {
		// Fragment frames must be invisible to DecodeFrame.
		if _, _, err := DecodeFrame(f); !errors.Is(err, ErrBadFragment) {
			t.Fatalf("DecodeFrame(fragment) err = %v, want ErrBadFragment", err)
		}
		payload, flags, err := RawFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if flags != FlagReliable|FlagFragment {
			t.Fatalf("flags = %#x, want %#x", flags, FlagReliable|FlagFragment)
		}
		msgID, index, n, part, err := ParseFragment(payload)
		if err != nil {
			t.Fatal(err)
		}
		if msgID != 42 || index != uint16(i) || n != uint16(count) {
			t.Fatalf("fragment header = (%d, %d, %d), want (42, %d, %d)", msgID, index, n, i, count)
		}
		reassembled = append(reassembled, part...)
	}
	got, err := Decode(reassembled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("reassembled mismatch: %+v vs %+v", m, got)
	}
}

func TestFragmentRejectsMalformed(t *testing.T) {
	if _, err := AppendFragment(nil, 1, 0, 0, []byte{1}, 0); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("count 0: err = %v, want ErrBadFragment", err)
	}
	if _, err := AppendFragment(nil, 1, 2, 2, []byte{1}, 0); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("index >= count: err = %v, want ErrBadFragment", err)
	}
	if _, err := AppendFragment(nil, 1, 0, 1, make([]byte, MaxFragmentBody+1), 0); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("oversize body: err = %v, want ErrBadFragment", err)
	}
	if _, _, _, _, err := ParseFragment([]byte{1, 2, 3}); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("short payload: err = %v, want ErrBadFragment", err)
	}
	if _, _, _, _, err := ParseFragment([]byte{0, 0, 0, 1, 0, 5, 0, 2}); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("index >= count: err = %v, want ErrBadFragment", err)
	}
}

func TestRawFrameRoundTrip(t *testing.T) {
	b, err := AppendRawFrame(nil, []byte("hello"), FlagReliable)
	if err != nil {
		t.Fatal(err)
	}
	payload, flags, err := RawFrame(b)
	if err != nil || string(payload) != "hello" || flags != FlagReliable {
		t.Fatalf("RawFrame = (%q, %#x, %v)", payload, flags, err)
	}
	if _, err := AppendRawFrame(nil, make([]byte, MaxFramePayload+1), 0); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize raw payload: err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestFramePayloadCarryingServe(t *testing.T) {
	// A full-size video chunk rides one datagram with room to spare.
	payload := make([]byte, 1316)
	for i := range payload {
		payload[i] = byte(i)
	}
	m := &Serve{Sender: 1, Period: 2, Chunk: 3, PayloadSize: len(payload), Hash: 7, Payload: payload}
	b, err := EncodeFrame(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("payload-carrying serve did not survive the frame round trip")
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	huge := &AuditResp{Sender: 1}
	for i := 0; i < 3000; i++ {
		huge.Proposals = append(huge.Proposals, ProposalRecord{
			Period: Period(i), Partner: 2, Chunks: []ChunkID{1, 2, 3, 4},
		})
	}
	if _, err := AppendFrame(nil, huge, 0); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
}
