package msg

import (
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random byte strings to the decoder: whatever
// arrives from the network must produce a message or an error, never a
// panic or a hang.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", data, r)
			}
		}()
		m, err := Decode(data)
		// Either a valid message or an error, not both nil.
		return (m != nil) != (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeValidPrefixMutations flips bytes of valid encodings: decoding
// must stay panic-free, and successful decodes must re-encode.
func TestDecodeValidPrefixMutations(t *testing.T) {
	seeds := allMessages()
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			for _, delta := range []byte{0x01, 0x80, 0xFF} {
				mut := append([]byte(nil), b...)
				mut[i] ^= delta
				decoded, err := Decode(mut)
				if err != nil {
					continue
				}
				if _, err := Encode(decoded); err != nil {
					t.Fatalf("re-encoding a decoded mutation failed: %v", err)
				}
			}
		}
	}
}

// TestDecodeLengthBomb checks that a huge claimed list length on a short
// message errors out instead of allocating unbounded memory and crashing.
func TestDecodeLengthBomb(t *testing.T) {
	// Propose with a claimed 65535-chunk list but no payload.
	b := []byte{
		byte(KindPropose),
		0, 0, 0, 1, // sender
		0, 0, 0, 2, // period
		0xFF, 0xFF, // chunk count 65535
	}
	if _, err := Decode(b); err == nil {
		t.Fatal("length bomb decoded successfully")
	}
}
