package msg

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random byte strings to the decoder: whatever
// arrives from the network must produce a message or an error, never a
// panic or a hang.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", data, r)
			}
		}()
		m, err := Decode(data)
		// Either a valid message or an error, not both nil.
		return (m != nil) != (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeValidPrefixMutations flips bytes of valid encodings: decoding
// must stay panic-free, and successful decodes must re-encode.
func TestDecodeValidPrefixMutations(t *testing.T) {
	seeds := allMessages()
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			for _, delta := range []byte{0x01, 0x80, 0xFF} {
				mut := append([]byte(nil), b...)
				mut[i] ^= delta
				decoded, err := Decode(mut)
				if err != nil {
					continue
				}
				if _, err := Encode(decoded); err != nil {
					t.Fatalf("re-encoding a decoded mutation failed: %v", err)
				}
			}
		}
	}
}

// FuzzDecode is the network-facing robustness target: arbitrary bytes go
// through both the raw codec and the datagram framing. Whatever a remote
// peer puts in a datagram must produce a message or an error — never a
// panic, a hang, or an unbounded allocation. Successful decodes must
// re-encode, and the re-encoding must be a fixed point (canonical form).
// The seed corpus under testdata/fuzz/FuzzDecode holds one framed encoding
// of every message kind plus the malformed shapes that matter (length
// bombs, bad checksums, truncations); `go test` replays it on every run.
func FuzzDecode(f *testing.F) {
	for _, m := range allMessages() {
		if b, err := Encode(m); err == nil {
			f.Add(b)
		}
		if b, err := EncodeFrame(m, 0); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindPropose), 0, 0, 0, 1, 0, 0, 0, 2, 0xFF, 0xFF}) // length bomb
	for _, seed := range malformedSeeds() {
		f.Add(seed.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if (m != nil) == (err != nil) {
			t.Fatalf("Decode: message %v, err %v — want exactly one", m, err)
		}
		if err == nil {
			b, err := Encode(m)
			if err != nil {
				t.Fatalf("re-encoding a decoded message failed: %v", err)
			}
			m2, err := Decode(b)
			if err != nil {
				t.Fatalf("decoding a re-encoded message failed: %v", err)
			}
			b2, err := Encode(m2)
			if err != nil || string(b) != string(b2) {
				t.Fatalf("encoding is not a fixed point: % x vs % x (err %v)", b, b2, err)
			}
		}
		fm, flags, ferr := DecodeFrame(data)
		if (fm != nil) == (ferr != nil) {
			t.Fatalf("DecodeFrame: message %v, err %v — want exactly one", fm, ferr)
		}
		if ferr == nil {
			if _, err := AppendFrame(nil, fm, flags); err != nil {
				t.Fatalf("re-framing a decoded frame failed: %v", err)
			}
		}
	})
}

type corpusSeed struct {
	name string
	data []byte
}

// malformedSeeds are the handcrafted corpus entries: the failure shapes that
// matter, each of which must decode to an error without panicking.
func malformedSeeds() []corpusSeed {
	payloadServe := &Serve{Sender: 4, Period: 9, Chunk: 5, PayloadSize: 1316,
		Hash: 0x1234, Payload: []byte("content plane payload")}
	served, err := Encode(payloadServe)
	if err != nil {
		panic(err)
	}
	// Claimed payload length far past what the buffer holds.
	truncated := append([]byte(nil), served...)
	truncated[len(truncated)-len(payloadServe.Payload)-4] = 0
	truncated[len(truncated)-len(payloadServe.Payload)-3] = 0x01
	// Claimed payload length past MaxChunkPayload.
	bomb := append([]byte(nil), served...)
	copy(bomb[len(bomb)-len(payloadServe.Payload)-4:], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	// A lone fragment frame: valid framing, but DecodeFrame must refuse it.
	fragment, err := AppendFragment(nil, 7, 0, 2, served[:10], 0)
	if err != nil {
		panic(err)
	}
	badsum, err := EncodeFrame(payloadServe, 0)
	if err != nil {
		panic(err)
	}
	badsum = append([]byte(nil), badsum...)
	badsum[len(badsum)-1] ^= 0x40
	framed, err := EncodeFrame(payloadServe, FlagReliable)
	if err != nil {
		panic(err)
	}
	return []corpusSeed{
		{"seed-empty", nil},
		{"seed-length-bomb", []byte{byte(KindPropose), 0, 0, 0, 1, 0, 0, 0, 2, 0xFF, 0xFF}},
		{"seed-unknown-kind", []byte{0xEE, 0, 0, 0, 1}},
		{"seed-serve-truncated-payload", truncated},
		{"seed-serve-payload-bomb", bomb},
		{"seed-frame-fragment", fragment},
		{"seed-frame-badsum", badsum},
		{"seed-frame-truncated", framed[:len(framed)-3]},
	}
}

// TestRegenFuzzCorpus rewrites testdata/fuzz/FuzzDecode from the live
// encoders. Run it after any wire-format change (like the v3 payload frame):
//
//	LIFTING_REGEN_CORPUS=1 go test ./internal/msg -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("LIFTING_REGEN_CORPUS") == "" {
		t.Skip("set LIFTING_REGEN_CORPUS=1 to rewrite the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var seeds []corpusSeed
	counts := map[string]int{}
	for _, m := range allMessages() {
		base := strings.ReplaceAll(m.Kind().String(), "_", "-")
		counts[base]++
		if counts[base] > 1 {
			base = fmt.Sprintf("%s-%d", base, counts[base])
		}
		raw, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		framed, err := EncodeFrame(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds,
			corpusSeed{"seed-raw-" + base, raw},
			corpusSeed{"seed-frame-" + base, framed})
	}
	seeds = append(seeds, malformedSeeds()...)
	for _, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.data)
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus files to %s", len(seeds), dir)
}

// TestDecodeLengthBomb checks that a huge claimed list length on a short
// message errors out instead of allocating unbounded memory and crashing.
func TestDecodeLengthBomb(t *testing.T) {
	// Propose with a claimed 65535-chunk list but no payload.
	b := []byte{
		byte(KindPropose),
		0, 0, 0, 1, // sender
		0, 0, 0, 2, // period
		0xFF, 0xFF, // chunk count 65535
	}
	if _, err := Decode(b); err == nil {
		t.Fatal("length bomb decoded successfully")
	}
}
