package msg

import "testing"

// benchMessages is the hot wire-path mix: the dissemination triple plus the
// chattiest verification messages, roughly in their live traffic proportions.
func benchMessages() []Message {
	return []Message{
		&Propose{Sender: 1, Period: 40, Chunks: []ChunkID{100, 101, 102, 103, 104, 105}},
		&Request{Sender: 2, Period: 40, Chunks: []ChunkID{100, 102, 105}},
		&Serve{Sender: 1, Period: 40, Chunk: 102, PayloadSize: 1316},
		&Ack{Sender: 2, Period: 40, Chunks: []ChunkID{100, 102, 105}, Partners: []NodeID{3, 4, 5, 6, 7, 8, 9}},
		&Confirm{Sender: 1, Suspect: 2, Period: 40, Chunks: []ChunkID{100, 102, 105}},
		&ConfirmResp{Sender: 3, Suspect: 2, Period: 40, Confirmed: true},
		&Blame{Sender: 1, Target: 2, Value: 1.5, Reason: ReasonPartialServe},
	}
}

func BenchmarkEncode(b *testing.B) {
	msgs := benchMessages()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEncode(buf[:0], msgs[i%len(msgs)])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeFresh(b *testing.B) {
	msgs := benchMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(msgs[i%len(msgs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	var encoded [][]byte
	for _, m := range benchMessages() {
		e, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		encoded = append(encoded, e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(encoded[i%len(encoded)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeServePayload measures the content-plane hot path: framing a
// full-size video chunk with a reused buffer must stay 0-alloc.
func BenchmarkEncodeServePayload(b *testing.B) {
	payload := make([]byte, 1316)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	m := &Serve{Sender: 1, Period: 40, Chunk: 102, PayloadSize: len(payload), Hash: 99, Payload: payload}
	var buf []byte
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], m, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeServePayload measures the zero-copy decode of a
// payload-carrying serve frame.
func BenchmarkDecodeServePayload(b *testing.B) {
	payload := make([]byte, 1316)
	m := &Serve{Sender: 1, Period: 40, Chunk: 102, PayloadSize: len(payload), Hash: 99, Payload: payload}
	frame, err := EncodeFrame(m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	msgs := benchMessages()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], msgs[i%len(msgs)], 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}
