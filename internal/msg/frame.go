package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Datagram framing for the UDP transport backend. Every datagram carries
// exactly one frame:
//
//	offset  size  field
//	0       2     magic "LF"
//	2       1     frame version (FrameVersion)
//	3       1     flags (bit 0: reliable-class traffic; rest reserved)
//	4       2     payload length, big-endian
//	6       4     CRC-32 (IEEE) of the payload
//	10      —     payload: one codec message (see Encode)
//
// The magic and version reject foreign traffic on a reused port, the length
// rejects truncated or concatenated reads, and the checksum rejects
// corruption that UDP's 16-bit checksum missed. DecodeFrame never panics on
// arbitrary input; anything malformed yields an error.

// Frame constants. Part of the wire format. FrameVersion 3 covers the
// content plane: Serve frames now carry real payload bytes plus a content
// hash, and oversized messages ship as fragment frames (FlagFragment)
// instead of being dropped. As with the v1→v2 bump, daemons from before the
// change must be rejected loudly (ErrBadVersion) instead of having every
// Serve die a silent codec death mid-deployment.
const (
	frameMagic0  = 'L'
	frameMagic1  = 'F'
	FrameVersion = 3
	// FrameHeaderSize is the number of bytes preceding the payload.
	FrameHeaderSize = 10
	// MaxFramePayload is the largest payload that fits a single IPv4 UDP
	// datagram alongside the frame header.
	MaxFramePayload = 65507 - FrameHeaderSize
)

// Frame flags.
const (
	// FlagReliable marks traffic the protocol would send over a reliable
	// transport (audits); the UDP backend still ships it as a datagram but
	// keeps the class visible on the wire.
	FlagReliable = 0x01
	// FlagFragment marks a frame carrying one fragment of an encoded
	// message too large for a single datagram, prefixed by a fragment
	// header (see AppendFragment). The transport reassembles fragments
	// before decoding.
	FlagFragment = 0x02
)

// FragmentHeaderSize is the size of the fragment header inside a
// FlagFragment frame payload: message id (4), fragment index (2), fragment
// count (2).
const FragmentHeaderSize = 8

// MaxFragmentBody is the message-byte capacity of one fragment frame.
const MaxFragmentBody = MaxFramePayload - FragmentHeaderSize

// Framing errors.
var (
	ErrFrameTooShort   = errors.New("msg: frame shorter than header")
	ErrBadMagic        = errors.New("msg: bad frame magic")
	ErrBadVersion      = errors.New("msg: unsupported frame version")
	ErrFrameLength     = errors.New("msg: frame length mismatch")
	ErrBadChecksum     = errors.New("msg: frame checksum mismatch")
	ErrPayloadTooLarge = errors.New("msg: payload exceeds max datagram size")
	ErrBadFragment     = errors.New("msg: malformed fragment")
)

// AppendFrame appends a framed encoding of m to dst and returns the extended
// slice. Passing a reused dst[:0] avoids per-message allocations on the send
// path. FlagFragment is rejected: a complete message is by definition not a
// fragment (use AppendFragment to build fragment frames).
func AppendFrame(dst []byte, m Message, flags uint8) ([]byte, error) {
	if flags&FlagFragment != 0 {
		return nil, fmt.Errorf("%w: FlagFragment on a complete message", ErrBadFragment)
	}
	start := len(dst)
	dst = append(dst, frameMagic0, frameMagic1, FrameVersion, flags, 0, 0, 0, 0, 0, 0)
	out, err := AppendEncode(dst, m)
	if err != nil {
		return nil, err
	}
	payload := out[start+FrameHeaderSize:]
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("%w: %T is %d bytes", ErrPayloadTooLarge, m, len(payload))
	}
	binary.BigEndian.PutUint16(out[start+4:], uint16(len(payload)))
	binary.BigEndian.PutUint32(out[start+6:], crc32.ChecksumIEEE(payload))
	return out, nil
}

// AppendRawFrame frames arbitrary payload bytes. The transport uses it to
// ship fragment payloads; the framing (magic, version, length, CRC) is
// identical to AppendFrame's.
func AppendRawFrame(dst, payload []byte, flags uint8) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	var hdr [FrameHeaderSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = frameMagic0, frameMagic1, FrameVersion, flags
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(payload)))
	binary.BigEndian.PutUint32(hdr[6:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// RawFrame validates the frame header and checksum of one datagram and
// returns its payload (aliasing b) and flags without decoding the message.
// The transport's receive path uses it so fragment frames can be reassembled
// before the codec runs.
func RawFrame(b []byte) ([]byte, uint8, error) {
	if len(b) < FrameHeaderSize {
		return nil, 0, ErrFrameTooShort
	}
	if b[0] != frameMagic0 || b[1] != frameMagic1 {
		return nil, 0, ErrBadMagic
	}
	if b[2] != FrameVersion {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	flags := b[3]
	payload := b[FrameHeaderSize:]
	if int(binary.BigEndian.Uint16(b[4:])) != len(payload) {
		return nil, 0, fmt.Errorf("%w: header says %d, datagram carries %d",
			ErrFrameLength, binary.BigEndian.Uint16(b[4:]), len(payload))
	}
	if binary.BigEndian.Uint32(b[6:]) != crc32.ChecksumIEEE(payload) {
		return nil, 0, ErrBadChecksum
	}
	return payload, flags, nil
}

// AppendFragment appends one fragment frame to dst: a FlagFragment frame
// whose payload is the fragment header (msgID, index, count) followed by
// body — a slice of a complete message encoding. flags are OR'd with
// FlagFragment.
func AppendFragment(dst []byte, msgID uint32, index, count uint16, body []byte, flags uint8) ([]byte, error) {
	if count == 0 || index >= count || len(body) > MaxFragmentBody {
		return nil, ErrBadFragment
	}
	var hdr [FragmentHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], msgID)
	binary.BigEndian.PutUint16(hdr[4:], index)
	binary.BigEndian.PutUint16(hdr[6:], count)
	payload := make([]byte, 0, FragmentHeaderSize+len(body))
	payload = append(payload, hdr[:]...)
	payload = append(payload, body...)
	return AppendRawFrame(dst, payload, flags|FlagFragment)
}

// ParseFragment splits a FlagFragment frame payload into its fragment
// header and body. The body aliases payload.
func ParseFragment(payload []byte) (msgID uint32, index, count uint16, body []byte, err error) {
	if len(payload) < FragmentHeaderSize {
		return 0, 0, 0, nil, ErrBadFragment
	}
	msgID = binary.BigEndian.Uint32(payload[0:])
	index = binary.BigEndian.Uint16(payload[4:])
	count = binary.BigEndian.Uint16(payload[6:])
	if count == 0 || index >= count {
		return 0, 0, 0, nil, ErrBadFragment
	}
	return msgID, index, count, payload[FragmentHeaderSize:], nil
}

// EncodeFrame frames m into a fresh byte slice ready to ship as one UDP
// datagram.
func EncodeFrame(m Message, flags uint8) ([]byte, error) {
	return AppendFrame(make([]byte, 0, FrameHeaderSize+64), m, flags)
}

// DecodeFrame parses one datagram previously produced by AppendFrame,
// returning the decoded message and the frame flags. A fragment frame is an
// error here — a single fragment is not a decodable message; the transport
// reassembles via RawFrame/ParseFragment.
func DecodeFrame(b []byte) (Message, uint8, error) {
	payload, flags, err := RawFrame(b)
	if err != nil {
		return nil, 0, err
	}
	if flags&FlagFragment != 0 {
		return nil, 0, fmt.Errorf("%w: fragment frame outside reassembly", ErrBadFragment)
	}
	m, err := Decode(payload)
	if err != nil {
		return nil, 0, err
	}
	return m, flags, nil
}
