package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Datagram framing for the UDP transport backend. Every datagram carries
// exactly one frame:
//
//	offset  size  field
//	0       2     magic "LF"
//	2       1     frame version (FrameVersion)
//	3       1     flags (bit 0: reliable-class traffic; rest reserved)
//	4       2     payload length, big-endian
//	6       4     CRC-32 (IEEE) of the payload
//	10      —     payload: one codec message (see Encode)
//
// The magic and version reject foreign traffic on a reused port, the length
// rejects truncated or concatenated reads, and the checksum rejects
// corruption that UDP's 16-bit checksum missed. DecodeFrame never panics on
// arbitrary input; anything malformed yields an error.

// Frame constants. Part of the wire format. FrameVersion 2 covers the
// ScoreResp Tracked flag: the payload codec grew a byte, so daemons from
// before the change must be rejected loudly (ErrBadVersion) instead of
// having every ScoreResp die a silent length-mismatch death mid-deployment.
const (
	frameMagic0  = 'L'
	frameMagic1  = 'F'
	FrameVersion = 2
	// FrameHeaderSize is the number of bytes preceding the payload.
	FrameHeaderSize = 10
	// MaxFramePayload is the largest payload that fits a single IPv4 UDP
	// datagram alongside the frame header.
	MaxFramePayload = 65507 - FrameHeaderSize
)

// FlagReliable marks traffic the protocol would send over a reliable
// transport (audits); the UDP backend still ships it as a datagram but keeps
// the class visible on the wire.
const FlagReliable = 0x01

// Framing errors.
var (
	ErrFrameTooShort   = errors.New("msg: frame shorter than header")
	ErrBadMagic        = errors.New("msg: bad frame magic")
	ErrBadVersion      = errors.New("msg: unsupported frame version")
	ErrFrameLength     = errors.New("msg: frame length mismatch")
	ErrBadChecksum     = errors.New("msg: frame checksum mismatch")
	ErrPayloadTooLarge = errors.New("msg: payload exceeds max datagram size")
)

// AppendFrame appends a framed encoding of m to dst and returns the extended
// slice. Passing a reused dst[:0] avoids per-message allocations on the send
// path.
func AppendFrame(dst []byte, m Message, flags uint8) ([]byte, error) {
	start := len(dst)
	dst = append(dst, frameMagic0, frameMagic1, FrameVersion, flags, 0, 0, 0, 0, 0, 0)
	out, err := AppendEncode(dst, m)
	if err != nil {
		return nil, err
	}
	payload := out[start+FrameHeaderSize:]
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("%w: %T is %d bytes", ErrPayloadTooLarge, m, len(payload))
	}
	binary.BigEndian.PutUint16(out[start+4:], uint16(len(payload)))
	binary.BigEndian.PutUint32(out[start+6:], crc32.ChecksumIEEE(payload))
	return out, nil
}

// EncodeFrame frames m into a fresh byte slice ready to ship as one UDP
// datagram.
func EncodeFrame(m Message, flags uint8) ([]byte, error) {
	return AppendFrame(make([]byte, 0, FrameHeaderSize+64), m, flags)
}

// DecodeFrame parses one datagram previously produced by AppendFrame,
// returning the decoded message and the frame flags.
func DecodeFrame(b []byte) (Message, uint8, error) {
	if len(b) < FrameHeaderSize {
		return nil, 0, ErrFrameTooShort
	}
	if b[0] != frameMagic0 || b[1] != frameMagic1 {
		return nil, 0, ErrBadMagic
	}
	if b[2] != FrameVersion {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	flags := b[3]
	payload := b[FrameHeaderSize:]
	if int(binary.BigEndian.Uint16(b[4:])) != len(payload) {
		return nil, 0, fmt.Errorf("%w: header says %d, datagram carries %d",
			ErrFrameLength, binary.BigEndian.Uint16(b[4:]), len(payload))
	}
	if binary.BigEndian.Uint32(b[6:]) != crc32.ChecksumIEEE(payload) {
		return nil, 0, ErrBadChecksum
	}
	m, err := Decode(payload)
	if err != nil {
		return nil, 0, err
	}
	return m, flags, nil
}
