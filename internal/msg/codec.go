package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Codec errors.
var (
	ErrTruncated     = errors.New("msg: truncated message")
	ErrUnknownKind   = errors.New("msg: unknown message kind")
	ErrTooLong       = errors.New("msg: list too long for wire format")
	ErrPayloadBounds = errors.New("msg: chunk payload exceeds MaxChunkPayload")
)

const maxListLen = 1<<16 - 1

// Encode serializes m into a fresh byte slice. The layout is
// kind(1) | sender(4) | kind-specific body, all big-endian.
func Encode(m Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, 64), m)
}

// AppendEncode serializes m onto the end of dst and returns the extended
// slice. The hot send paths pass a reused buffer (dst[:0]) so steady-state
// encoding allocates nothing.
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	w := &writer{buf: dst}
	w.u8(uint8(m.Kind()))
	w.u32(uint32(m.From()))
	switch v := m.(type) {
	case *Propose:
		w.u32(uint32(v.Period))
		if err := w.chunkList(v.Chunks); err != nil {
			return nil, err
		}
		if err := w.nodeList(v.Origins); err != nil {
			return nil, err
		}
	case *Request:
		w.u32(uint32(v.Period))
		if err := w.chunkList(v.Chunks); err != nil {
			return nil, err
		}
	case *Serve:
		if v.PayloadSize < 0 || v.PayloadSize > MaxChunkPayload || len(v.Payload) > MaxChunkPayload {
			return nil, ErrPayloadBounds
		}
		// Serves dominate wire traffic: reserve the fixed 24-byte body in
		// one grow instead of five appends, then append the payload bytes
		// directly after their 4-byte length (the zero-copy half of the
		// hot encode path).
		n := len(w.buf)
		w.buf = append(w.buf, make([]byte, 24)...)
		b := w.buf[n : n+24 : n+24]
		binary.BigEndian.PutUint32(b[0:], uint32(v.Period))
		binary.BigEndian.PutUint32(b[4:], uint32(v.Chunk))
		binary.BigEndian.PutUint32(b[8:], uint32(v.PayloadSize))
		binary.BigEndian.PutUint64(b[12:], v.Hash)
		binary.BigEndian.PutUint32(b[20:], uint32(len(v.Payload)))
		w.buf = append(w.buf, v.Payload...)
	case *Ack:
		w.u32(uint32(v.Period))
		if err := w.chunkList(v.Chunks); err != nil {
			return nil, err
		}
		if err := w.nodeList(v.Partners); err != nil {
			return nil, err
		}
	case *Confirm:
		w.u32(uint32(v.Suspect))
		w.u32(uint32(v.Period))
		if err := w.chunkList(v.Chunks); err != nil {
			return nil, err
		}
	case *ConfirmResp:
		w.u32(uint32(v.Suspect))
		w.u32(uint32(v.Period))
		w.bool(v.Confirmed)
	case *Blame:
		w.u32(uint32(v.Target))
		w.f64(v.Value)
		w.u8(uint8(v.Reason))
	case *ScoreReq:
		w.u32(uint32(v.Target))
	case *ScoreResp:
		w.u32(uint32(v.Target))
		w.f64(v.Score)
		w.bool(v.Expelled)
		w.bool(v.Tracked)
	case *Expel:
		w.u32(uint32(v.Target))
		w.u8(uint8(v.Reason))
	case *AuditReq:
		w.u64(uint64(v.Horizon))
	case *AuditResp:
		if len(v.Proposals) > maxListLen || len(v.Serves) > maxListLen {
			return nil, ErrTooLong
		}
		w.u16(uint16(len(v.Proposals)))
		for i := range v.Proposals {
			r := &v.Proposals[i]
			w.u32(uint32(r.Period))
			w.u32(uint32(r.Partner))
			if err := w.chunkList(r.Chunks); err != nil {
				return nil, err
			}
		}
		w.u16(uint16(len(v.Serves)))
		for i := range v.Serves {
			r := &v.Serves[i]
			w.u32(uint32(r.Period))
			w.u32(uint32(r.Server))
			if err := w.chunkList(r.Chunks); err != nil {
				return nil, err
			}
		}
	case *AuditPoll:
		w.u32(uint32(v.Suspect))
		w.u32(uint32(v.Period))
		if err := w.chunkList(v.Chunks); err != nil {
			return nil, err
		}
	case *AuditPollResp:
		w.u32(uint32(v.Suspect))
		w.u32(uint32(v.Period))
		w.bool(v.Confirmed)
		if err := w.nodeList(v.Askers); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, m)
	}
	return w.buf, nil
}

// Decode parses a message previously produced by Encode.
func Decode(b []byte) (Message, error) {
	r := &reader{buf: b}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	sender32, err := r.u32()
	if err != nil {
		return nil, err
	}
	sender := NodeID(sender32)
	var m Message
	switch Kind(kind) {
	case KindPropose:
		v := &Propose{Sender: sender}
		v.Period, err = r.period()
		if err == nil {
			v.Chunks, err = r.chunkList()
		}
		if err == nil {
			v.Origins, err = r.nodeList()
		}
		m = v
	case KindRequest:
		v := &Request{Sender: sender}
		v.Period, err = r.period()
		if err == nil {
			v.Chunks, err = r.chunkList()
		}
		m = v
	case KindServe:
		v := &Serve{Sender: sender}
		v.Period, err = r.period()
		var c, p uint32
		if err == nil {
			c, err = r.u32()
			v.Chunk = ChunkID(c)
		}
		if err == nil {
			p, err = r.u32()
			v.PayloadSize = int(p)
			if err == nil && p > MaxChunkPayload {
				err = ErrPayloadBounds
			}
		}
		if err == nil {
			v.Hash, err = r.u64()
		}
		if err == nil {
			v.Payload, err = r.payload()
		}
		m = v
	case KindAck:
		v := &Ack{Sender: sender}
		v.Period, err = r.period()
		if err == nil {
			v.Chunks, err = r.chunkList()
		}
		if err == nil {
			v.Partners, err = r.nodeList()
		}
		m = v
	case KindConfirm:
		v := &Confirm{Sender: sender}
		v.Suspect, err = r.node()
		if err == nil {
			v.Period, err = r.period()
		}
		if err == nil {
			v.Chunks, err = r.chunkList()
		}
		m = v
	case KindConfirmResp:
		v := &ConfirmResp{Sender: sender}
		v.Suspect, err = r.node()
		if err == nil {
			v.Period, err = r.period()
		}
		if err == nil {
			v.Confirmed, err = r.bool()
		}
		m = v
	case KindBlame:
		v := &Blame{Sender: sender}
		v.Target, err = r.node()
		if err == nil {
			v.Value, err = r.f64()
		}
		var reason uint8
		if err == nil {
			reason, err = r.u8()
			v.Reason = BlameReason(reason)
		}
		m = v
	case KindScoreReq:
		v := &ScoreReq{Sender: sender}
		v.Target, err = r.node()
		m = v
	case KindScoreResp:
		v := &ScoreResp{Sender: sender}
		v.Target, err = r.node()
		if err == nil {
			v.Score, err = r.f64()
		}
		if err == nil {
			v.Expelled, err = r.bool()
		}
		if err == nil {
			v.Tracked, err = r.bool()
		}
		m = v
	case KindExpel:
		v := &Expel{Sender: sender}
		v.Target, err = r.node()
		var reason uint8
		if err == nil {
			reason, err = r.u8()
			v.Reason = BlameReason(reason)
		}
		m = v
	case KindAuditReq:
		v := &AuditReq{Sender: sender}
		var h uint64
		h, err = r.u64()
		v.Horizon = time.Duration(h)
		m = v
	case KindAuditResp:
		v := &AuditResp{Sender: sender}
		var n uint16
		n, err = r.u16()
		if err == nil && n > 0 {
			v.Proposals = make([]ProposalRecord, n)
			for i := range v.Proposals {
				rec := &v.Proposals[i]
				rec.Period, err = r.period()
				if err == nil {
					rec.Partner, err = r.node()
				}
				if err == nil {
					rec.Chunks, err = r.chunkList()
				}
				if err != nil {
					break
				}
			}
		}
		if err == nil {
			n, err = r.u16()
		}
		if err == nil && n > 0 {
			v.Serves = make([]ServeRecord, n)
			for i := range v.Serves {
				rec := &v.Serves[i]
				rec.Period, err = r.period()
				if err == nil {
					rec.Server, err = r.node()
				}
				if err == nil {
					rec.Chunks, err = r.chunkList()
				}
				if err != nil {
					break
				}
			}
		}
		m = v
	case KindAuditPoll:
		v := &AuditPoll{Sender: sender}
		v.Suspect, err = r.node()
		if err == nil {
			v.Period, err = r.period()
		}
		if err == nil {
			v.Chunks, err = r.chunkList()
		}
		m = v
	case KindAuditPollResp:
		v := &AuditPollResp{Sender: sender}
		v.Suspect, err = r.node()
		if err == nil {
			v.Period, err = r.period()
		}
		if err == nil {
			v.Confirmed, err = r.bool()
		}
		if err == nil {
			v.Askers, err = r.nodeList()
		}
		m = v
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
	if err != nil {
		return nil, err
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("msg: %d trailing bytes after %s", len(r.buf)-r.off, Kind(kind))
	}
	return m, nil
}

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) chunkList(chunks []ChunkID) error {
	if len(chunks) > maxListLen {
		return ErrTooLong
	}
	w.u16(uint16(len(chunks)))
	for _, c := range chunks {
		w.u32(uint32(c))
	}
	return nil
}

func (w *writer) nodeList(nodes []NodeID) error {
	if len(nodes) > maxListLen {
		return ErrTooLong
	}
	w.u16(uint16(len(nodes)))
	for _, n := range nodes {
		w.u32(uint32(n))
	}
	return nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

func (r *reader) node() (NodeID, error) {
	v, err := r.u32()
	return NodeID(v), err
}

func (r *reader) period() (Period, error) {
	v, err := r.u32()
	return Period(v), err
}

func (r *reader) chunkList() ([]ChunkID, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]ChunkID, n)
	for i := range out {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		out[i] = ChunkID(v)
	}
	return out, nil
}

// payload reads a 4-byte-length-prefixed byte string, bounded by
// MaxChunkPayload. The returned slice aliases the input buffer (zero-copy);
// an empty payload decodes as nil so encodings stay canonical.
func (r *reader) payload() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxChunkPayload {
		return nil, ErrPayloadBounds
	}
	if n == 0 {
		return nil, nil
	}
	return r.take(int(n))
}

func (r *reader) nodeList() ([]NodeID, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]NodeID, n)
	for i := range out {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		out[i] = NodeID(v)
	}
	return out, nil
}
