// Package msg defines the protocol vocabulary of the three-phase gossip
// dissemination protocol (§3 of the paper) and of LiFTinG's verification
// machinery (§5): propose/request/serve, ack/confirm/confirm-response for
// direct cross-checking, blame/score traffic for the reputation substrate,
// and the audit messages of local history auditing.
//
// Every message carries an explicit wire-size model so the simulator can
// account bandwidth without serializing each event, and a real binary codec
// (see codec.go) used by the live runtime and the codec tests.
package msg

import "time"

// NodeID identifies a node in the system.
type NodeID uint32

// NoNode is the zero NodeID, used when a field is absent.
const NoNode NodeID = 0xFFFFFFFF

// ChunkID identifies a stream chunk. Chunks are numbered consecutively from
// zero by the source, so a ChunkID also encodes the chunk's position in the
// stream.
type ChunkID uint32

// Period is a gossip-period index (k in the paper's k·Tg).
type Period uint32

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. Values are part of the wire format.
const (
	KindPropose Kind = iota + 1
	KindRequest
	KindServe
	KindAck
	KindConfirm
	KindConfirmResp
	KindBlame
	KindScoreReq
	KindScoreResp
	KindExpel
	KindAuditReq
	KindAuditResp
	KindAuditPoll
	KindAuditPollResp
)

var kindNames = map[Kind]string{
	KindPropose:       "propose",
	KindRequest:       "request",
	KindServe:         "serve",
	KindAck:           "ack",
	KindConfirm:       "confirm",
	KindConfirmResp:   "confirm-resp",
	KindBlame:         "blame",
	KindScoreReq:      "score-req",
	KindScoreResp:     "score-resp",
	KindExpel:         "expel",
	KindAuditReq:      "audit-req",
	KindAuditResp:     "audit-resp",
	KindAuditPoll:     "audit-poll",
	KindAuditPollResp: "audit-poll-resp",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// IsVerification reports whether the kind belongs to LiFTinG (as opposed to
// the underlying dissemination protocol). Used by the overhead accounting of
// Table 5.
func (k Kind) IsVerification() bool {
	switch k {
	case KindPropose, KindRequest, KindServe:
		return false
	default:
		return true
	}
}

// Wire-size model constants, in bytes. headerSize approximates the UDP/IP
// header plus our own kind/sender framing; the exact values only matter for
// the relative overhead numbers of Table 5, which compare verification bytes
// against stream bytes under the same model.
const (
	headerSize   = 28 + 5 // IP+UDP header, kind byte, 4-byte sender
	nodeIDSize   = 4
	chunkIDSize  = 4
	periodSize   = 4
	float64Size  = 8
	boolSize     = 1
	lenPrefix    = 2
	durationSize = 8
)

// Message is implemented by every protocol and verification message.
type Message interface {
	Kind() Kind
	// From returns the sending node.
	From() NodeID
	// WireSize returns the modelled size of the message on the wire, in
	// bytes, including transport headers.
	WireSize() int
}

// Propose advertises the set of chunks received since the sender's last
// propose phase (§3, propose phase).
type Propose struct {
	Sender NodeID
	Period Period
	Chunks []ChunkID
	// Origins optionally carries, per chunk, the node the sender claims to
	// have received the chunk from. Honest nodes report their true servers;
	// a man-in-the-middle freerider (§5.2, Fig. 8b) substitutes a colluder.
	// len(Origins) is either 0 or len(Chunks).
	Origins []NodeID
}

// Kind implements Message.
func (m *Propose) Kind() Kind { return KindPropose }

// From implements Message.
func (m *Propose) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Propose) WireSize() int {
	return headerSize + periodSize + lenPrefix + len(m.Chunks)*chunkIDSize + lenPrefix + len(m.Origins)*nodeIDSize
}

// Request asks the proposer to serve the subset of proposed chunks the
// requester needs (§3, request phase).
type Request struct {
	Sender NodeID
	Period Period
	Chunks []ChunkID
}

// Kind implements Message.
func (m *Request) Kind() Kind { return KindRequest }

// From implements Message.
func (m *Request) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Request) WireSize() int {
	return headerSize + periodSize + lenPrefix + len(m.Chunks)*chunkIDSize
}

// MaxChunkPayload bounds the payload bytes one Serve may carry (and the
// modelled PayloadSize). It is a codec-level defense: a remote peer claiming
// a multi-gigabyte chunk must produce a decode error, not an allocation.
const MaxChunkPayload = 1 << 20

// Serve delivers one chunk (§3, serving phase). Since frame v3 the message
// carries the real payload bytes plus their 64-bit content hash, so
// receivers verify what they were served. Payload may be nil in
// modelled-only runs (bookkeeping without a content plane); PayloadSize then
// carries the modelled chunk size for bandwidth accounting.
type Serve struct {
	Sender NodeID
	Period Period
	Chunk  ChunkID
	// PayloadSize is the modelled chunk size in bytes. When Payload is
	// non-nil the wire carries the real bytes and this field equals
	// len(Payload).
	PayloadSize int
	// Hash is the 64-bit content hash (content.HashBytes) of the chunk payload
	// (content.HashBytes). Zero in modelled-only runs.
	Hash uint64
	// Payload is the chunk content. Decode aliases the input buffer —
	// callers that retain the message beyond the buffer's lifetime must
	// copy (the UDP transport clones it out of its reused receive buffer).
	Payload []byte
}

// Kind implements Message.
func (m *Serve) Kind() Kind { return KindServe }

// From implements Message.
func (m *Serve) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Serve) WireSize() int {
	p := m.PayloadSize
	if m.Payload != nil {
		p = len(m.Payload)
	}
	return headerSize + periodSize + chunkIDSize + 4 + 8 + 4 + p
}

// Ack tells a previous server which partners the sender forwarded the served
// chunks to (§5.2): "p1 acknowledges to p0 that it proposed ci to a set of f
// nodes". Always sent, even when pdcc = 0 (this is why Table 5 shows nonzero
// overhead at pdcc = 0).
type Ack struct {
	Sender NodeID
	// Period is the gossip period in which the sender proposed the chunks.
	Period Period
	// Chunks are the chunk ids received from the ack's destination.
	Chunks []ChunkID
	// Partners are the f nodes the sender claims to have proposed to.
	Partners []NodeID
}

// Kind implements Message.
func (m *Ack) Kind() Kind { return KindAck }

// From implements Message.
func (m *Ack) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Ack) WireSize() int {
	return headerSize + periodSize + lenPrefix + len(m.Chunks)*chunkIDSize + lenPrefix + len(m.Partners)*nodeIDSize
}

// Confirm asks a witness whether it received a proposal from Suspect
// containing Chunks (§5.2, sent with probability pdcc).
type Confirm struct {
	Sender  NodeID
	Suspect NodeID
	Period  Period
	Chunks  []ChunkID
}

// Kind implements Message.
func (m *Confirm) Kind() Kind { return KindConfirm }

// From implements Message.
func (m *Confirm) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Confirm) WireSize() int {
	return headerSize + nodeIDSize + periodSize + lenPrefix + len(m.Chunks)*chunkIDSize
}

// ConfirmResp is the witness's yes/no answer to a Confirm.
type ConfirmResp struct {
	Sender  NodeID
	Suspect NodeID
	Period  Period
	// Confirmed reports whether the witness received a proposal from Suspect
	// containing all the chunks in the Confirm.
	Confirmed bool
}

// Kind implements Message.
func (m *ConfirmResp) Kind() Kind { return KindConfirmResp }

// From implements Message.
func (m *ConfirmResp) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *ConfirmResp) WireSize() int {
	return headerSize + nodeIDSize + periodSize + boolSize
}

// BlameReason classifies why a blame was emitted (Table 1 / Table 2).
type BlameReason uint8

// Blame reasons.
const (
	ReasonUnknown          BlameReason = iota
	ReasonFanoutDecrease               // fewer than f partners acknowledged
	ReasonPartialPropose               // served chunks not further proposed
	ReasonPartialServe                 // requested chunks not served
	ReasonNoAck                        // no acknowledgement received at all
	ReasonAuditUnconfirmed             // history entry not confirmed by alleged receiver
	ReasonAuditEntropy                 // entropy check failed (leads to expulsion)
	ReasonPeriodStretch                // too few proposals in history
	ReasonInvalidPayload               // served payload missing or hash mismatch
)

var reasonNames = map[BlameReason]string{
	ReasonUnknown:          "unknown",
	ReasonFanoutDecrease:   "fanout-decrease",
	ReasonPartialPropose:   "partial-propose",
	ReasonPartialServe:     "partial-serve",
	ReasonNoAck:            "no-ack",
	ReasonAuditUnconfirmed: "audit-unconfirmed",
	ReasonAuditEntropy:     "audit-entropy",
	ReasonPeriodStretch:    "period-stretch",
	ReasonInvalidPayload:   "invalid-payload",
}

// String returns the lowercase name of the reason.
func (r BlameReason) String() string {
	if s, ok := reasonNames[r]; ok {
		return s
	}
	return "unknown"
}

// Blame carries a blame value against Target to one of Target's score
// managers (§5.1).
type Blame struct {
	Sender NodeID
	Target NodeID
	Value  float64
	Reason BlameReason
}

// Kind implements Message.
func (m *Blame) Kind() Kind { return KindBlame }

// From implements Message.
func (m *Blame) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Blame) WireSize() int {
	return headerSize + nodeIDSize + float64Size + 1
}

// ScoreReq asks a manager for its copy of Target's score.
type ScoreReq struct {
	Sender NodeID
	Target NodeID
}

// Kind implements Message.
func (m *ScoreReq) Kind() Kind { return KindScoreReq }

// From implements Message.
func (m *ScoreReq) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *ScoreReq) WireSize() int { return headerSize + nodeIDSize }

// ScoreResp returns a manager's copy of Target's score. Tracked reports
// whether the responding manager actually holds a score copy for Target: a
// manager that lost (or never received) the target through a churn handoff
// answers Tracked=false, and min-vote readers must discard such replies —
// a fabricated zero score would silently poison the minimum (§5.1).
type ScoreResp struct {
	Sender   NodeID
	Target   NodeID
	Score    float64
	Expelled bool
	Tracked  bool
}

// Kind implements Message.
func (m *ScoreResp) Kind() Kind { return KindScoreResp }

// From implements Message.
func (m *ScoreResp) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *ScoreResp) WireSize() int {
	return headerSize + nodeIDSize + float64Size + 2*boolSize
}

// Expel announces that Target has been expelled (score below η or failed
// entropy audit).
type Expel struct {
	Sender NodeID
	Target NodeID
	Reason BlameReason
}

// Kind implements Message.
func (m *Expel) Kind() Kind { return KindExpel }

// From implements Message.
func (m *Expel) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *Expel) WireSize() int { return headerSize + nodeIDSize + 1 }

// ProposalRecord is one fanout entry of a node's local history: a proposal
// sent to Partner during Period advertising Chunks.
type ProposalRecord struct {
	Period  Period
	Partner NodeID
	Chunks  []ChunkID
}

// WireSize returns the modelled serialized size of the record.
func (r *ProposalRecord) WireSize() int {
	return periodSize + nodeIDSize + lenPrefix + len(r.Chunks)*chunkIDSize
}

// ServeRecord is one fanin entry of a node's local history: Server served
// Chunks to the node during Period.
type ServeRecord struct {
	Period Period
	Server NodeID
	Chunks []ChunkID
}

// WireSize returns the modelled serialized size of the record.
func (r *ServeRecord) WireSize() int {
	return periodSize + nodeIDSize + lenPrefix + len(r.Chunks)*chunkIDSize
}

// AuditReq asks the target node for its bounded local history (§5.3). Sent
// over the reliable transport.
type AuditReq struct {
	Sender NodeID
	// Horizon is the number of seconds of history requested (h in the
	// paper); encoded as a duration.
	Horizon time.Duration
}

// Kind implements Message.
func (m *AuditReq) Kind() Kind { return KindAuditReq }

// From implements Message.
func (m *AuditReq) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *AuditReq) WireSize() int { return headerSize + durationSize }

// AuditResp carries the audited node's history snapshot: all fanout and
// fanin entries within the horizon.
type AuditResp struct {
	Sender    NodeID
	Proposals []ProposalRecord
	Serves    []ServeRecord
}

// Kind implements Message.
func (m *AuditResp) Kind() Kind { return KindAuditResp }

// From implements Message.
func (m *AuditResp) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *AuditResp) WireSize() int {
	n := headerSize + lenPrefix + lenPrefix
	for i := range m.Proposals {
		n += m.Proposals[i].WireSize()
	}
	for i := range m.Serves {
		n += m.Serves[i].WireSize()
	}
	return n
}

// AuditPoll asks an alleged receiver whether Suspect really proposed Chunks
// to it during Period (a-posteriori cross-checking, §5.3). Sent over the
// reliable transport.
type AuditPoll struct {
	Sender  NodeID
	Suspect NodeID
	Period  Period
	Chunks  []ChunkID
}

// Kind implements Message.
func (m *AuditPoll) Kind() Kind { return KindAuditPoll }

// From implements Message.
func (m *AuditPoll) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *AuditPoll) WireSize() int {
	return headerSize + nodeIDSize + periodSize + lenPrefix + len(m.Chunks)*chunkIDSize
}

// AuditPollResp answers an AuditPoll. Confirmed reports whether the polled
// node received the proposal; Askers lists the nodes that sent Confirm
// messages about Suspect to the polled node, which the auditor aggregates
// into the fanin multiset F'h (§5.3).
type AuditPollResp struct {
	Sender    NodeID
	Suspect   NodeID
	Period    Period
	Confirmed bool
	Askers    []NodeID
}

// Kind implements Message.
func (m *AuditPollResp) Kind() Kind { return KindAuditPollResp }

// From implements Message.
func (m *AuditPollResp) From() NodeID { return m.Sender }

// WireSize implements Message.
func (m *AuditPollResp) WireSize() int {
	return headerSize + nodeIDSize + periodSize + boolSize + lenPrefix + len(m.Askers)*nodeIDSize
}

// Compile-time interface compliance checks.
var (
	_ Message = (*Propose)(nil)
	_ Message = (*Request)(nil)
	_ Message = (*Serve)(nil)
	_ Message = (*Ack)(nil)
	_ Message = (*Confirm)(nil)
	_ Message = (*ConfirmResp)(nil)
	_ Message = (*Blame)(nil)
	_ Message = (*ScoreReq)(nil)
	_ Message = (*ScoreResp)(nil)
	_ Message = (*Expel)(nil)
	_ Message = (*AuditReq)(nil)
	_ Message = (*AuditResp)(nil)
	_ Message = (*AuditPoll)(nil)
	_ Message = (*AuditPollResp)(nil)
)
