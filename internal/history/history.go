// Package history implements the bounded accountability log every LiFTinG
// node maintains (§5 of the paper): a trace of the events of the last nh
// gossip periods. The log feeds three consumers:
//
//   - witness duty for direct cross-checking: "did node s propose chunks C
//     to me recently?" (§5.2);
//   - local history auditing: the fanout multiset Fh (nodes the owner
//     proposed to) and the fanin multiset F'h (nodes that served the owner),
//     whose entropies are checked against γ (§5.3);
//   - a-posteriori cross-checking: the list of proposals to be confirmed by
//     their alleged receivers (§5.3).
package history

import (
	"sort"

	"lifting/internal/msg"
	"lifting/internal/stats"
)

// Log is one node's bounded history. It retains the last Retention periods;
// older entries are pruned as the owner's period advances.
//
// Log is a plain data structure with no locking: each node touches only its
// own log from its own execution context.
type Log struct {
	retention int
	periods   map[msg.Period]*periodLog
	newest    msg.Period
}

type periodLog struct {
	// proposalsSent are the owner's fanout entries for the period.
	proposalsSent []msg.ProposalRecord
	// servesReceived are the owner's fanin entries (as recorded; a
	// freerider may have recorded forged origins).
	servesReceived []msg.ServeRecord
	// proposalsReceived indexes proposals the owner received, by sender,
	// for witness duty.
	proposalsReceived map[msg.NodeID][]msg.ChunkID
	// confirmAskers records, per suspect, the nodes that asked the owner to
	// confirm that suspect's proposals. For an honest suspect these askers
	// are exactly the suspect's servers, which is how the auditor
	// reconstructs F'h (§5.3).
	confirmAskers map[msg.NodeID][]msg.NodeID
}

// NewLog creates a log retaining the given number of gossip periods (nh).
// It panics if retention is not positive.
func NewLog(retention int) *Log {
	if retention <= 0 {
		panic("history: retention must be positive")
	}
	return &Log{
		retention: retention,
		periods:   make(map[msg.Period]*periodLog),
	}
}

// Retention returns nh, the number of periods retained.
func (l *Log) Retention() int { return l.retention }

func (l *Log) period(p msg.Period) *periodLog {
	pl, ok := l.periods[p]
	if !ok {
		pl = &periodLog{
			proposalsReceived: make(map[msg.NodeID][]msg.ChunkID),
			confirmAskers:     make(map[msg.NodeID][]msg.NodeID),
		}
		l.periods[p] = pl
		if p > l.newest {
			l.newest = p
		}
		l.prune()
	}
	return pl
}

func (l *Log) prune() {
	if len(l.periods) <= l.retention {
		return
	}
	//lint:allow ordered-map-range pruning deletes a key-determined subset; survivors are identical in any visit order
	for p := range l.periods {
		if l.newest >= msg.Period(l.retention) && p <= l.newest-msg.Period(l.retention) {
			delete(l.periods, p)
		}
	}
}

// RecordProposalSent logs that the owner proposed chunks to partner during
// period p.
func (l *Log) RecordProposalSent(p msg.Period, partner msg.NodeID, chunks []msg.ChunkID) {
	pl := l.period(p)
	cp := make([]msg.ChunkID, len(chunks))
	copy(cp, chunks)
	pl.proposalsSent = append(pl.proposalsSent, msg.ProposalRecord{Period: p, Partner: partner, Chunks: cp})
}

// RecordServeReceived logs that server delivered chunks to the owner during
// period p (a fanin entry).
func (l *Log) RecordServeReceived(p msg.Period, server msg.NodeID, chunks []msg.ChunkID) {
	pl := l.period(p)
	cp := make([]msg.ChunkID, len(chunks))
	copy(cp, chunks)
	pl.servesReceived = append(pl.servesReceived, msg.ServeRecord{Period: p, Server: server, Chunks: cp})
}

// RecordProposalReceived logs that from proposed chunks to the owner during
// period p, for later witness duty.
func (l *Log) RecordProposalReceived(p msg.Period, from msg.NodeID, chunks []msg.ChunkID) {
	pl := l.period(p)
	pl.proposalsReceived[from] = append(pl.proposalsReceived[from], chunks...)
}

// RecordConfirmAsker logs that asker sent a Confirm about suspect during
// period p.
func (l *Log) RecordConfirmAsker(p msg.Period, suspect, asker msg.NodeID) {
	pl := l.period(p)
	pl.confirmAskers[suspect] = append(pl.confirmAskers[suspect], asker)
}

// HasProposalFrom reports whether the owner received, during periods
// [from, to], a proposal from sender covering every chunk in chunks. This is
// the witness-side truth for direct cross-checking (§5.2).
func (l *Log) HasProposalFrom(sender msg.NodeID, from, to msg.Period, chunks []msg.ChunkID) bool {
	if len(chunks) == 0 {
		return true
	}
	got := make(map[msg.ChunkID]bool)
	for p := from; p <= to; p++ {
		pl, ok := l.periods[p]
		if !ok {
			continue
		}
		for _, c := range pl.proposalsReceived[sender] {
			got[c] = true
		}
	}
	for _, c := range chunks {
		if !got[c] {
			return false
		}
	}
	return true
}

// HasRecentProposalFrom is like HasProposalFrom over the whole retained
// window: it reports whether any combination of retained proposals from
// sender covers chunks. Witness duty uses it because sender and witness
// periods are not synchronized.
func (l *Log) HasRecentProposalFrom(sender msg.NodeID, chunks []msg.ChunkID) bool {
	if len(chunks) == 0 {
		return true
	}
	got := make(map[msg.ChunkID]bool)
	//lint:allow ordered-map-range builds a set; membership is order-insensitive
	for _, pl := range l.periods {
		for _, c := range pl.proposalsReceived[sender] {
			got[c] = true
		}
	}
	for _, c := range chunks {
		if !got[c] {
			return false
		}
	}
	return true
}

// FanoutMultiset returns Fh: the multiset of partners the owner proposed to
// during periods (since, newest].
func (l *Log) FanoutMultiset(since msg.Period) *stats.Multiset[msg.NodeID] {
	ms := stats.NewMultiset[msg.NodeID]()
	//lint:allow ordered-map-range multiset adds commute and Entropy folds over sorted counts
	for p, pl := range l.periods {
		if p <= since {
			continue
		}
		for i := range pl.proposalsSent {
			ms.Add(pl.proposalsSent[i].Partner)
		}
	}
	return ms
}

// FaninMultiset returns F'h: the multiset of servers recorded in the owner's
// fanin during periods (since, newest].
func (l *Log) FaninMultiset(since msg.Period) *stats.Multiset[msg.NodeID] {
	ms := stats.NewMultiset[msg.NodeID]()
	//lint:allow ordered-map-range multiset adds commute and Entropy folds over sorted counts
	for p, pl := range l.periods {
		if p <= since {
			continue
		}
		for i := range pl.servesReceived {
			ms.Add(pl.servesReceived[i].Server)
		}
	}
	return ms
}

// Proposals returns the owner's fanout records for periods (since, newest],
// in unspecified order. The returned records share chunk slices with the
// log; callers must not modify them.
func (l *Log) Proposals(since msg.Period) []msg.ProposalRecord {
	var out []msg.ProposalRecord
	for _, p := range l.periodsAfter(since) {
		out = append(out, l.periods[p].proposalsSent...)
	}
	return out
}

// periodsAfter returns the retained periods in (since, newest], ascending.
// Snapshot record order must not depend on map iteration: an audited
// freerider's forgery draws and the auditor's poll sampling both consume
// randomness in record order, so a wandering order would make seeded runs
// diverge.
func (l *Log) periodsAfter(since msg.Period) []msg.Period {
	out := make([]msg.Period, 0, len(l.periods))
	//lint:allow ordered-map-range collect-then-sort: keys are sorted before use
	for p := range l.periods {
		if p > since {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Serves returns the owner's fanin records for periods (since, newest].
func (l *Log) Serves(since msg.Period) []msg.ServeRecord {
	var out []msg.ServeRecord
	for _, p := range l.periodsAfter(since) {
		out = append(out, l.periods[p].servesReceived...)
	}
	return out
}

// ProposalPeriods returns the number of distinct periods in (since, newest]
// during which the owner sent at least one proposal. Comparing this count
// against the expected number of periods detects gossip-period stretching
// (§5.3: "checking the gossip period boils down to counting the number of
// proposals in the local history").
func (l *Log) ProposalPeriods(since msg.Period) int {
	n := 0
	//lint:allow ordered-map-range commutative count; order cannot affect the total
	for p, pl := range l.periods {
		if p <= since {
			continue
		}
		if len(pl.proposalsSent) > 0 {
			n++
		}
	}
	return n
}

// AskersFor returns the multiset of nodes that asked the owner to confirm
// proposals of suspect during periods (since, newest]. Askers are returned
// in ascending period order (arrival order within a period): the slice feeds
// the fanin entropy evidence and a snapshot accessor must not leak map
// iteration order into anything downstream.
func (l *Log) AskersFor(suspect msg.NodeID, since msg.Period) []msg.NodeID {
	var out []msg.NodeID
	for _, p := range l.periodsAfter(since) {
		out = append(out, l.periods[p].confirmAskers[suspect]...)
	}
	return out
}

// Snapshot builds the audit response for an AuditReq covering the most
// recent horizon periods: every fanout and fanin record retained. An honest
// node returns this snapshot verbatim; a freerider may forge it (§5.3
// discusses why forgery is caught by a-posteriori cross-checking).
func (l *Log) Snapshot(owner msg.NodeID, horizon int) *msg.AuditResp {
	since := msg.Period(0)
	if h := msg.Period(horizon); l.newest > h {
		since = l.newest - h
	}
	resp := &msg.AuditResp{Sender: owner}
	resp.Proposals = l.Proposals(since)
	resp.Serves = l.Serves(since)
	return resp
}

// Newest returns the most recent period recorded.
func (l *Log) Newest() msg.Period { return l.newest }

// PeriodsRetained returns the number of periods currently held (bounded by
// Retention).
func (l *Log) PeriodsRetained() int { return len(l.periods) }
