package history

import (
	"testing"

	"lifting/internal/msg"
)

func TestNewLogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLog(0) did not panic")
		}
	}()
	NewLog(0)
}

func TestFanoutMultiset(t *testing.T) {
	l := NewLog(10)
	l.RecordProposalSent(1, 7, []msg.ChunkID{1, 2})
	l.RecordProposalSent(1, 8, []msg.ChunkID{1, 2})
	l.RecordProposalSent(2, 7, []msg.ChunkID{3})
	ms := l.FanoutMultiset(0)
	if ms.Len() != 3 {
		t.Fatalf("Fh size = %d, want 3", ms.Len())
	}
	if ms.Count(7) != 2 || ms.Count(8) != 1 {
		t.Fatalf("Fh counts wrong: 7→%d, 8→%d", ms.Count(7), ms.Count(8))
	}
	// Filtering by since excludes older periods.
	if got := l.FanoutMultiset(1).Len(); got != 1 {
		t.Fatalf("Fh since period 1 = %d entries, want 1", got)
	}
}

func TestFaninMultiset(t *testing.T) {
	l := NewLog(10)
	l.RecordServeReceived(3, 4, []msg.ChunkID{9})
	l.RecordServeReceived(3, 4, []msg.ChunkID{10})
	l.RecordServeReceived(4, 5, []msg.ChunkID{11})
	ms := l.FaninMultiset(0)
	if ms.Count(4) != 2 || ms.Count(5) != 1 {
		t.Fatalf("F'h counts wrong: %d, %d", ms.Count(4), ms.Count(5))
	}
}

func TestHasProposalFrom(t *testing.T) {
	l := NewLog(10)
	l.RecordProposalReceived(5, 2, []msg.ChunkID{1, 2, 3})
	l.RecordProposalReceived(6, 2, []msg.ChunkID{4})
	cases := []struct {
		from, to msg.Period
		chunks   []msg.ChunkID
		want     bool
	}{
		{5, 5, []msg.ChunkID{1, 3}, true},
		{5, 6, []msg.ChunkID{1, 4}, true}, // spans two periods
		{5, 5, []msg.ChunkID{4}, false},   // wrong period
		{5, 6, []msg.ChunkID{9}, false},   // never proposed
		{5, 6, nil, true},                 // empty set vacuously covered
	}
	for i, c := range cases {
		if got := l.HasProposalFrom(2, c.from, c.to, c.chunks); got != c.want {
			t.Errorf("case %d: HasProposalFrom = %v, want %v", i, got, c.want)
		}
	}
	if l.HasProposalFrom(3, 5, 6, []msg.ChunkID{1}) {
		t.Fatal("proposal attributed to the wrong sender")
	}
}

func TestPruneKeepsRetentionWindow(t *testing.T) {
	l := NewLog(3)
	for p := msg.Period(1); p <= 10; p++ {
		l.RecordProposalSent(p, msg.NodeID(p), []msg.ChunkID{msg.ChunkID(p)})
	}
	if l.PeriodsRetained() > 3 {
		t.Fatalf("retained %d periods, want <= 3", l.PeriodsRetained())
	}
	ms := l.FanoutMultiset(0)
	if ms.Count(1) != 0 {
		t.Fatal("pruned period still visible in Fh")
	}
	if ms.Count(10) != 1 || ms.Count(9) != 1 || ms.Count(8) != 1 {
		t.Fatal("recent periods missing from Fh")
	}
	if l.Newest() != 10 {
		t.Fatalf("Newest = %d, want 10", l.Newest())
	}
}

func TestProposalPeriods(t *testing.T) {
	l := NewLog(20)
	l.RecordProposalSent(1, 2, []msg.ChunkID{1})
	l.RecordProposalSent(1, 3, []msg.ChunkID{1})
	l.RecordProposalSent(4, 2, []msg.ChunkID{2})
	// Period 3 exists but has no proposals sent (only a serve received):
	l.RecordServeReceived(3, 9, []msg.ChunkID{5})
	if got := l.ProposalPeriods(0); got != 2 {
		t.Fatalf("ProposalPeriods = %d, want 2", got)
	}
}

func TestAskersFor(t *testing.T) {
	l := NewLog(10)
	l.RecordConfirmAsker(2, 7, 100)
	l.RecordConfirmAsker(2, 7, 101)
	l.RecordConfirmAsker(3, 7, 102)
	l.RecordConfirmAsker(2, 8, 103)
	askers := l.AskersFor(7, 0)
	if len(askers) != 3 {
		t.Fatalf("askers for suspect 7 = %v, want 3 entries", askers)
	}
	if got := l.AskersFor(8, 0); len(got) != 1 || got[0] != 103 {
		t.Fatalf("askers for suspect 8 = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	l := NewLog(50)
	for p := msg.Period(1); p <= 10; p++ {
		l.RecordProposalSent(p, 5, []msg.ChunkID{msg.ChunkID(p)})
		l.RecordServeReceived(p, 6, []msg.ChunkID{msg.ChunkID(p)})
	}
	resp := l.Snapshot(42, 5)
	if resp.Sender != 42 {
		t.Fatalf("snapshot sender = %d", resp.Sender)
	}
	if len(resp.Proposals) != 5 || len(resp.Serves) != 5 {
		t.Fatalf("snapshot sizes = %d/%d, want 5/5", len(resp.Proposals), len(resp.Serves))
	}
	for _, r := range resp.Proposals {
		if r.Period <= 5 {
			t.Fatalf("snapshot includes period %d beyond horizon", r.Period)
		}
	}
	// Horizon larger than recorded history returns everything.
	all := l.Snapshot(42, 100)
	if len(all.Proposals) != 10 {
		t.Fatalf("full snapshot has %d proposals, want 10", len(all.Proposals))
	}
}

func TestRecordCopiesChunks(t *testing.T) {
	l := NewLog(5)
	chunks := []msg.ChunkID{1, 2}
	l.RecordProposalSent(1, 2, chunks)
	chunks[0] = 99
	got := l.Proposals(0)
	if got[0].Chunks[0] != 1 {
		t.Fatal("log aliases caller's chunk slice")
	}
}

func TestWitnessRecordsAccumulate(t *testing.T) {
	l := NewLog(5)
	l.RecordProposalReceived(2, 9, []msg.ChunkID{1})
	l.RecordProposalReceived(2, 9, []msg.ChunkID{2})
	if !l.HasProposalFrom(9, 2, 2, []msg.ChunkID{1, 2}) {
		t.Fatal("accumulated proposals from the same sender/period not merged")
	}
}
