package gossip

import (
	"slices"
	"testing"
	"testing/quick"

	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/rng"
)

// TestHonestTruthfulAtEveryDecisionPoint locks the baseline every matrix
// oracle assumes: under randomized inputs, the Honest behavior never
// deviates at any of the decision points of §4/§5 — full fanout, uniform
// selection, truthful proposals/serves/acks/confirms/origins, nominal
// period, identity audits, and no fabricated blames.
func TestHonestTruthfulAtEveryDecisionPoint(t *testing.T) {
	h := Honest{}
	dir := membership.Sequential(64)
	cfg := &quick.Config{MaxCount: 300}

	property := func(seed uint64, f uint8, nChunks uint8, dropEvery uint8, suspect uint16, truth bool, origin uint16) bool {
		s := rng.New(seed)

		// Fanout and period are the protocol's.
		if h.Fanout(int(f)) != int(f) {
			return false
		}
		if h.PeriodFactor() != 1 {
			return false
		}

		// Proposals and serves pass through untouched.
		chunks := make([]msg.ChunkID, int(nChunks))
		for i := range chunks {
			chunks[i] = msg.ChunkID(s.IntN(1000))
		}
		originOf := func(c msg.ChunkID) msg.NodeID { return msg.NodeID(c % 7) }
		if got := h.FilterProposal(s, chunks, originOf); !slices.Equal(got, chunks) {
			return false
		}
		if got := h.FilterServe(s, chunks); !slices.Equal(got, chunks) {
			return false
		}

		// Acks claim exactly the proposed subset of what was received.
		proposed := make([]msg.ChunkID, 0, len(chunks))
		inProposed := make(map[msg.ChunkID]bool)
		for i, c := range chunks {
			if dropEvery == 0 || i%(int(dropEvery)+1) != 0 {
				proposed = append(proposed, c)
				inProposed[c] = true
			}
		}
		acked := h.AckChunks(chunks, proposed)
		ackSet := make(map[msg.ChunkID]bool, len(acked))
		for _, c := range acked {
			if !inProposed[c] {
				return false // claimed a chunk that was never proposed
			}
			ackSet[c] = true
		}
		for _, c := range chunks {
			if inProposed[c] && !ackSet[c] {
				return false // withheld a truthfully proposed chunk
			}
		}

		// Partners, origins, confirmations and audits are reported as-is.
		partners := dir.Sample(s, 7, 0)
		if got := h.AckPartners(partners); !slices.Equal(got, partners) {
			return false
		}
		if h.ClaimedOrigin(msg.NodeID(origin)) != msg.NodeID(origin) {
			return false
		}
		if h.ConfirmAnswer(msg.NodeID(suspect), truth) != truth {
			return false
		}
		resp := &msg.AuditResp{Sender: 1, Proposals: []msg.ProposalRecord{
			{Period: msg.Period(suspect), Partner: msg.NodeID(origin), Chunks: chunks},
		}}
		if h.ForgeAudit(resp) != resp {
			return false // the identity forge returns the very same snapshot
		}

		// Honest nodes never fabricate blame.
		return h.SpamBlames(s) == nil
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHonestUniformSelection checks that honest partner selection stays a
// valid uniform sample: no self, no duplicates, only live members.
func TestHonestUniformSelection(t *testing.T) {
	h := Honest{}
	dir := membership.Sequential(30)
	f := func(seed uint16, count uint8) bool {
		k := int(count % 16)
		out := h.SelectPartners(rng.New(uint64(seed)), dir, 3, k)
		if len(out) != k {
			return false
		}
		seen := map[msg.NodeID]bool{}
		for _, p := range out {
			if p == 3 || seen[p] || !dir.Alive(p) {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
