// Package gossip implements the three-phase gossip dissemination protocol
// of §3 of the paper: every gossip period Tg a node proposes the chunks it
// received during the previous period to f uniform random partners; partners
// request the chunks they miss; the proposer serves the requested chunks.
// Dissemination is infect-and-die: a chunk is proposed exactly once.
//
// The protocol logic is written against sim.Context so the same node code
// runs deterministically under the discrete-event engine and under the
// goroutine-per-node live runtime.
package gossip

import (
	"fmt"
	"sort"
	"time"

	"lifting/internal/content"
	"lifting/internal/history"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

// Config holds the dissemination parameters.
type Config struct {
	// F is the fanout (7 on PlanetLab, 12 in the large simulations).
	F int
	// Period is the gossip period Tg (500 ms in the paper's deployment).
	Period time.Duration
	// ChunkPayload is the modelled chunk payload size in bytes.
	ChunkPayload int
	// MaxRequest caps |R|, the number of chunks requested per proposal
	// (0 = unlimited). The paper's analysis assumes a constant |R| = 4.
	MaxRequest int
	// RequestRetry is how long an outstanding request blocks re-requesting
	// the same chunk from a later proposal (loss recovery over UDP).
	// Defaults to Period/2.
	RequestRetry time.Duration
	// HistoryPeriods is nh, the number of gossip periods retained in the
	// accountability log (50 in the paper).
	HistoryPeriods int
	// StartOffset staggers the first propose phase to desynchronize nodes.
	StartOffset time.Duration
	// PhaseJitter adds a symmetric random component in [-j/2, j/2) to each
	// period, so phase positions drift instead of staying locked for the
	// whole run. Identical periods freeze the relative propose order, and
	// with it each node's share of the first-proposal race — and therefore
	// its service demand. Real deployments are not phase-locked; 0 keeps
	// the locked behavior.
	PhaseJitter time.Duration
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.F <= 0 {
		return fmt.Errorf("gossip: fanout must be positive, got %d", c.F)
	}
	if c.Period <= 0 {
		return fmt.Errorf("gossip: period must be positive, got %v", c.Period)
	}
	if c.HistoryPeriods <= 0 {
		return fmt.Errorf("gossip: history periods must be positive, got %d", c.HistoryPeriods)
	}
	return nil
}

// AuxHandler consumes non-dissemination messages (LiFTinG verification and
// reputation traffic). It reports whether it handled the message.
type AuxHandler interface {
	HandleAux(from msg.NodeID, m msg.Message) bool
}

// Deps wires a node to its environment.
type Deps struct {
	Ctx  sim.Context
	Net  net.Network
	Dir  *membership.Directory
	Rand *rng.Stream
	// Behavior defaults to Honest{}.
	Behavior Behavior
	// Monitor defaults to NopMonitor{}.
	Monitor Monitor
	// Aux receives verification/reputation messages; may be nil.
	Aux AuxHandler
	// History defaults to a fresh log with Config.HistoryPeriods retention.
	History *history.Log
	// OnChunk, if non-nil, fires once per distinct chunk received, with the
	// arrival time (feeds the playout/health metric).
	OnChunk func(c msg.ChunkID, at time.Duration)
	// Metrics, if non-nil, receives redundancy accounting: duplicate vs
	// useful serves and the propose→serve latency per accepted chunk.
	Metrics *metrics.Collector
	// Store, if non-nil, turns on the content plane: serves carry the real
	// payload bytes held in the store, and incoming serves are verified
	// against their content hash before acceptance — an invalid payload is
	// rejected and blamed like an undelivered serve. Nil keeps the
	// modelled-size behavior (serves carry only PayloadSize).
	Store *content.Store
}

// Node is one participant in the dissemination protocol.
type Node struct {
	id   msg.NodeID
	cfg  Config
	deps Deps

	period  msg.Period
	stopped bool

	have map[msg.ChunkID]bool
	// requestedFrom records every server a chunk was requested from, so
	// that serves are only accepted from nodes that proposed the chunk;
	// lastRequest lets a node re-request a chunk from a later proposal when
	// the serve was lost (the protocol runs over UDP).
	requestedFrom map[msg.ChunkID]map[msg.NodeID]bool
	lastRequest   map[msg.ChunkID]time.Duration
	originOf      map[msg.ChunkID]msg.NodeID // chunk → server that delivered it
	pending       []msg.ChunkID              // received since last propose phase

	// faninAccum groups chunks received in the current period by server;
	// flushed into the history as one fanin record per server per period.
	faninAccum map[msg.NodeID][]msg.ChunkID

	// outProposals tracks the last proposal sent to each partner so that
	// requests can be validated (nodes only serve chunks in P ∩ R, §3).
	outProposals map[msg.NodeID]*outProposal

	// offers remembers which other nodes proposed a still-missing chunk, so
	// a lost request or serve can be recovered by re-requesting elsewhere.
	offers  map[msg.ChunkID][]offer
	retries map[msg.ChunkID]int
}

type outProposal struct {
	period msg.Period
	chunks map[msg.ChunkID]bool
	// consumed marks chunks already requested from this proposal: each
	// chunk is served at most once per proposal.
	consumed map[msg.ChunkID]bool
}

type offer struct {
	from   msg.NodeID
	period msg.Period
}

// maxRetries bounds per-chunk recovery attempts; maxOffers bounds the
// remembered alternatives.
const (
	maxRetries = 3
	maxOffers  = 8
)

// NewNode creates a node. It panics if cfg is invalid (programmer error);
// use cfg.Validate to check configurations from external input.
func NewNode(id msg.NodeID, cfg Config, deps Deps) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if deps.Behavior == nil {
		deps.Behavior = Honest{}
	}
	if deps.Monitor == nil {
		deps.Monitor = NopMonitor{}
	}
	if deps.History == nil {
		deps.History = history.NewLog(cfg.HistoryPeriods)
	}
	if cfg.RequestRetry == 0 {
		cfg.RequestRetry = cfg.Period / 2
	}
	return &Node{
		id:            id,
		cfg:           cfg,
		deps:          deps,
		have:          make(map[msg.ChunkID]bool),
		requestedFrom: make(map[msg.ChunkID]map[msg.NodeID]bool),
		lastRequest:   make(map[msg.ChunkID]time.Duration),
		originOf:      make(map[msg.ChunkID]msg.NodeID),
		faninAccum:    make(map[msg.NodeID][]msg.ChunkID),
		outProposals:  make(map[msg.NodeID]*outProposal),
		offers:        make(map[msg.ChunkID][]offer),
		retries:       make(map[msg.ChunkID]int),
	}
}

// ID returns the node id.
func (n *Node) ID() msg.NodeID { return n.id }

// History returns the node's accountability log.
func (n *Node) History() *history.Log { return n.deps.History }

// Period returns the node's current gossip period index.
func (n *Node) Period() msg.Period { return n.period }

// Behavior returns the node's behavior.
func (n *Node) Behavior() Behavior { return n.deps.Behavior }

// Have reports whether the node holds chunk c.
func (n *Node) Have(c msg.ChunkID) bool { return n.have[c] }

// ChunkCount returns the number of distinct chunks held.
func (n *Node) ChunkCount() int { return len(n.have) }

// Start schedules the periodic propose phases. Call once.
func (n *Node) Start() {
	n.deps.Ctx.After(n.cfg.StartOffset, n.proposePhase)
}

// Stop halts the node: no further phases run and incoming messages are
// ignored. Used when a node is expelled.
func (n *Node) Stop() { n.stopped = true }

// Stopped reports whether the node has been stopped.
func (n *Node) Stopped() bool { return n.stopped }

// InjectChunk hands the node a chunk out-of-band, as if generated locally.
// The stream source uses this to introduce fresh chunks; they are proposed
// in the next propose phase.
func (n *Node) InjectChunk(c msg.ChunkID) {
	if n.have[c] {
		return
	}
	n.have[c] = true
	n.pending = append(n.pending, c)
}

// InjectChunkData hands the node a chunk together with its canonical payload
// bytes: the stream source's entry point under the content plane. The
// payload slice is retained by the store, not copied.
func (n *Node) InjectChunkData(c msg.ChunkID, payload []byte, hash uint64) {
	if n.have[c] {
		return
	}
	if n.deps.Store != nil {
		n.deps.Store.Put(c, payload, hash)
	}
	n.have[c] = true
	n.pending = append(n.pending, c)
}

// Store returns the node's chunk store (nil in modelled-only runs).
func (n *Node) Store() *content.Store { return n.deps.Store }

// proposePhase runs one propose phase and reschedules itself.
func (n *Node) proposePhase() {
	if n.stopped {
		return
	}
	n.period++

	// Flush last period's fanin into the accountability log, and keep the
	// grouping for the ack duty (§5.2). Iterate servers in sorted order so
	// runs are reproducible.
	serversLast := n.faninAccum
	n.faninAccum = make(map[msg.NodeID][]msg.ChunkID)
	for _, server := range sortedNodeKeys(serversLast) {
		n.deps.History.RecordServeReceived(n.period-1, server, serversLast[server])
	}

	proposal := n.pending
	n.pending = nil

	b := n.deps.Behavior
	var partners []msg.NodeID
	var advertised []msg.ChunkID
	if len(proposal) > 0 {
		advertised = b.FilterProposal(n.deps.Rand, proposal, func(c msg.ChunkID) msg.NodeID {
			return n.originOf[c]
		})
		if len(advertised) > 0 {
			count := b.Fanout(n.cfg.F)
			partners = b.SelectPartners(n.deps.Rand, n.deps.Dir, n.id, count)
			for _, p := range partners {
				origins := make([]msg.NodeID, len(advertised))
				for i, c := range advertised {
					origins[i] = b.ClaimedOrigin(n.originOf[c])
				}
				n.deps.Net.Send(n.id, p, &msg.Propose{
					Sender:  n.id,
					Period:  n.period,
					Chunks:  advertised,
					Origins: origins,
				}, net.Unreliable)
				n.deps.History.RecordProposalSent(n.period, p, advertised)
				n.outProposals[p] = &outProposal{
					period:   n.period,
					chunks:   chunkSet(advertised),
					consumed: make(map[msg.ChunkID]bool),
				}
			}
		}
	}

	n.deps.Monitor.OnProposePhase(n.period, partners, advertised, serversLast)

	next := time.Duration(float64(n.cfg.Period) * b.PeriodFactor())
	if j := n.cfg.PhaseJitter; j > 0 {
		next += time.Duration((n.deps.Rand.Float64() - 0.5) * float64(j))
	}
	if next <= 0 {
		next = n.cfg.Period
	}
	n.deps.Ctx.After(next, n.proposePhase)
}

// HandleMessage implements net.Handler: the dissemination dispatch. Unknown
// kinds go to the aux handler (LiFTinG, reputation).
func (n *Node) HandleMessage(from msg.NodeID, m msg.Message) {
	if n.stopped {
		return
	}
	switch v := m.(type) {
	case *msg.Propose:
		n.onPropose(from, v)
	case *msg.Request:
		n.onRequest(from, v)
	case *msg.Serve:
		n.onServe(from, v)
	default:
		if n.deps.Aux != nil {
			n.deps.Aux.HandleAux(from, m)
		}
	}
}

var _ net.Handler = (*Node)(nil)

func (n *Node) onPropose(from msg.NodeID, m *msg.Propose) {
	n.deps.History.RecordProposalReceived(n.period, from, m.Chunks)
	now := n.deps.Ctx.Now()
	var needed []msg.ChunkID
	for _, c := range m.Chunks {
		if n.have[c] {
			continue
		}
		// Remember the offer for loss recovery regardless of whether we
		// request now.
		if alts := n.offers[c]; len(alts) < maxOffers {
			n.offers[c] = append(alts, offer{from: from, period: m.Period})
		}
		// Skip chunks with an outstanding request that has not yet timed
		// out; the retry timer recovers them if the serve never arrives.
		if at, already := n.lastRequest[c]; already && now-at < n.cfg.RequestRetry {
			continue
		}
		needed = append(needed, c)
		if n.cfg.MaxRequest > 0 && len(needed) == n.cfg.MaxRequest {
			break
		}
	}
	if len(needed) == 0 {
		return
	}
	n.sendRequest(from, m.Period, needed)
}

// sendRequest issues a request and arms per-chunk recovery timers.
func (n *Node) sendRequest(to msg.NodeID, period msg.Period, chunks []msg.ChunkID) {
	now := n.deps.Ctx.Now()
	for _, c := range chunks {
		set, ok := n.requestedFrom[c]
		if !ok {
			set = make(map[msg.NodeID]bool, 1)
			n.requestedFrom[c] = set
		}
		set[to] = true
		n.lastRequest[c] = now
	}
	n.deps.Net.Send(n.id, to, &msg.Request{Sender: n.id, Period: period, Chunks: chunks}, net.Unreliable)
	n.deps.Monitor.OnRequestSent(to, period, chunks)
	for _, c := range chunks {
		c := c
		n.deps.Ctx.After(n.cfg.RequestRetry, func() { n.retry(c, to) })
	}
}

// retry re-requests a still-missing chunk from an alternative proposer.
func (n *Node) retry(c msg.ChunkID, lastServer msg.NodeID) {
	if n.stopped || n.have[c] {
		return
	}
	if n.retries[c] >= maxRetries {
		return
	}
	var alt *offer
	for i := range n.offers[c] {
		o := &n.offers[c][i]
		if o.from != lastServer && !n.requestedFrom[c][o.from] {
			alt = o
			break
		}
	}
	if alt == nil {
		return
	}
	n.retries[c]++
	n.sendRequest(alt.from, alt.period, []msg.ChunkID{c})
}

func (n *Node) onRequest(from msg.NodeID, m *msg.Request) {
	op, ok := n.outProposals[from]
	if !ok || op.period != m.Period {
		// Requests that do not correspond to a proposal are ignored (§4.2).
		return
	}
	var valid []msg.ChunkID
	for _, c := range m.Chunks {
		if op.chunks[c] && !op.consumed[c] {
			// Each chunk is served at most once per proposal, even across
			// repeated requests.
			op.consumed[c] = true
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return
	}
	served := n.deps.Behavior.FilterServe(n.deps.Rand, valid)
	for _, c := range served {
		serve := &msg.Serve{
			Sender:      n.id,
			Period:      m.Period,
			Chunk:       c,
			PayloadSize: n.cfg.ChunkPayload,
		}
		if n.deps.Store != nil {
			// A store miss (evicted, or never verified in) sends the serve
			// without payload; the receiver rejects and blames it, which is
			// exactly what proposing undeliverable chunks deserves.
			if payload, hash, ok := n.deps.Store.Get(c); ok {
				serve.PayloadSize = len(payload)
				serve.Hash = hash
				serve.Payload = payload
			}
		}
		n.deps.Net.Send(n.id, from, serve, net.Unreliable)
	}
	if len(served) > 0 {
		n.deps.Monitor.OnServed(from, m.Period, served)
	}
}

func (n *Node) onServe(from msg.NodeID, m *msg.Serve) {
	if n.have[m.Chunk] {
		// Pure redundancy on the wire: a second copy of a chunk this node
		// already holds (a lost ack, overlapping proposals, a retry race).
		if n.deps.Metrics != nil {
			n.deps.Metrics.OnDuplicateChunk(n.id)
		}
		return
	}
	if !n.requestedFrom[m.Chunk][from] {
		// Unsolicited serve; the protocol only accepts chunks in P ∩ R.
		return
	}
	if n.deps.Store != nil {
		if !content.Verify(m.Payload, m.Hash) {
			// Missing or corrupted payload: reject before accepting, leaving
			// lastRequest and the offer list intact so the armed retry timer
			// re-requests the chunk from a different proposer.
			if n.deps.Metrics != nil {
				n.deps.Metrics.OnInvalidServe(n.id)
			}
			n.deps.Monitor.OnServeInvalid(from, m.Chunk)
			return
		}
		n.deps.Store.Put(m.Chunk, m.Payload, m.Hash)
	}
	if n.deps.Metrics != nil {
		// lastRequest is about to be cleared below — read the latency now.
		payloadBytes := m.PayloadSize
		if m.Payload != nil {
			payloadBytes = len(m.Payload)
		}
		n.deps.Metrics.OnUsefulChunk(n.id, n.deps.Ctx.Now()-n.lastRequest[m.Chunk], payloadBytes)
	}
	delete(n.requestedFrom, m.Chunk)
	delete(n.lastRequest, m.Chunk)
	delete(n.offers, m.Chunk)
	delete(n.retries, m.Chunk)
	n.have[m.Chunk] = true
	n.originOf[m.Chunk] = from
	n.pending = append(n.pending, m.Chunk)
	n.faninAccum[from] = append(n.faninAccum[from], m.Chunk)
	if n.deps.OnChunk != nil {
		n.deps.OnChunk(m.Chunk, n.deps.Ctx.Now())
	}
	n.deps.Monitor.OnServeReceived(from, m.Chunk)
}

// sortedNodeKeys returns the keys of m in ascending order, for
// deterministic iteration.
func sortedNodeKeys(m map[msg.NodeID][]msg.ChunkID) []msg.NodeID {
	keys := make([]msg.NodeID, 0, len(m))
	//lint:allow ordered-map-range collect-then-sort: this helper exists to produce the sorted order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func chunkSet(chunks []msg.ChunkID) map[msg.ChunkID]bool {
	s := make(map[msg.ChunkID]bool, len(chunks))
	for _, c := range chunks {
		s[c] = true
	}
	return s
}
