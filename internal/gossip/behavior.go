package gossip

import (
	"lifting/internal/membership"
	"lifting/internal/msg"
	"lifting/internal/rng"
)

// Behavior is the set of decision points where a node can deviate from the
// protocol (§4 of the paper enumerates them). Honest nodes use Honest;
// freerider strategies in internal/freerider override individual choices:
// fanout decrease, partial propose, partial serve, gossip-period stretching,
// biased partner selection, lying in acknowledgements and confirmations, and
// history forgery.
type Behavior interface {
	// Fanout returns the number of partners to contact, given the protocol
	// fanout f (attack i of §4.1: a freerider returns f̂ < f).
	Fanout(f int) int

	// SelectPartners picks the propose-phase partners (attack iii of §4.1:
	// colluding freeriders bias the selection toward colluders).
	SelectPartners(s *rng.Stream, dir *membership.Directory, self msg.NodeID, count int) []msg.NodeID

	// FilterProposal returns the chunks actually advertised out of those
	// received in the last period (attack ii of §4.1: partial propose).
	// originOf reports which node served each chunk — the footnote in
	// §6.3.1 notes a freerider drops chunks from whole sources to minimize
	// the number of blaming servers.
	FilterProposal(s *rng.Stream, chunks []msg.ChunkID, originOf func(msg.ChunkID) msg.NodeID) []msg.ChunkID

	// FilterServe returns the chunks actually served out of those validly
	// requested (attack i of §4.3: partial serve).
	FilterServe(s *rng.Stream, requested []msg.ChunkID) []msg.ChunkID

	// PeriodFactor scales the gossip period Tg (attack iv of §4.1: a
	// freerider stretches its period by returning > 1).
	PeriodFactor() float64

	// AckChunks returns the chunk list to claim in the ack sent to a server
	// that delivered received; proposed is what was really advertised. An
	// honest node acknowledges exactly what it proposed; a freerider lies
	// and claims everything it received (§5.2).
	AckChunks(received, proposed []msg.ChunkID) []msg.ChunkID

	// AckPartners returns the partner list to claim in acks. A
	// man-in-the-middle freerider substitutes colluders (§5.2, Fig. 8b).
	AckPartners(actual []msg.NodeID) []msg.NodeID

	// ClaimedOrigin returns the origin to claim for a chunk when proposing
	// it (the MITM attack claims a colluder).
	ClaimedOrigin(trueServer msg.NodeID) msg.NodeID

	// ConfirmAnswer returns the witness's answer to a Confirm about
	// suspect, given the truthful answer. Colluders cover each other up by
	// answering yes regardless (§5.2).
	ConfirmAnswer(suspect msg.NodeID, truth bool) bool

	// ForgeAudit may rewrite the node's audit snapshot before it is
	// returned to an auditor (§5.3: a freerider replacing colluders by
	// honest nodes in its history will not be covered by them).
	ForgeAudit(resp *msg.AuditResp) *msg.AuditResp

	// SpamBlames returns wrongful accusations to emit this gossip period.
	// Blames are not authenticated (§5.1), so a malicious node can flood
	// the reputation managers of honest targets with fabricated blame (the
	// bad-mouthing attack); compensation and the threshold margin must
	// absorb it. Honest nodes return nil.
	SpamBlames(s *rng.Stream) []Accusation
}

// Accusation is one fabricated blame a bad-mouthing behavior emits through
// its node's blame sink. Reason is whatever the attacker masquerades as —
// managers do not verify it.
type Accusation struct {
	Target msg.NodeID
	Value  float64
	Reason msg.BlameReason
}

// Honest is the protocol-faithful behavior.
type Honest struct{}

var _ Behavior = Honest{}

// Fanout implements Behavior: the full protocol fanout.
func (Honest) Fanout(f int) int { return f }

// SelectPartners implements Behavior: uniform random selection.
func (Honest) SelectPartners(s *rng.Stream, dir *membership.Directory, self msg.NodeID, count int) []msg.NodeID {
	return dir.Sample(s, count, self)
}

// FilterProposal implements Behavior: propose everything received.
func (Honest) FilterProposal(_ *rng.Stream, chunks []msg.ChunkID, _ func(msg.ChunkID) msg.NodeID) []msg.ChunkID {
	return chunks
}

// FilterServe implements Behavior: serve everything requested.
func (Honest) FilterServe(_ *rng.Stream, requested []msg.ChunkID) []msg.ChunkID {
	return requested
}

// PeriodFactor implements Behavior: the nominal period.
func (Honest) PeriodFactor() float64 { return 1 }

// AckChunks implements Behavior: acknowledge what was proposed.
func (Honest) AckChunks(received, proposed []msg.ChunkID) []msg.ChunkID {
	if len(received) == len(proposed) {
		return received
	}
	set := make(map[msg.ChunkID]bool, len(proposed))
	for _, c := range proposed {
		set[c] = true
	}
	out := make([]msg.ChunkID, 0, len(received))
	for _, c := range received {
		if set[c] {
			out = append(out, c)
		}
	}
	return out
}

// AckPartners implements Behavior: report the real partners.
func (Honest) AckPartners(actual []msg.NodeID) []msg.NodeID { return actual }

// ClaimedOrigin implements Behavior: report the real server.
func (Honest) ClaimedOrigin(trueServer msg.NodeID) msg.NodeID { return trueServer }

// ConfirmAnswer implements Behavior: tell the truth.
func (Honest) ConfirmAnswer(_ msg.NodeID, truth bool) bool { return truth }

// ForgeAudit implements Behavior: return the snapshot unmodified.
func (Honest) ForgeAudit(resp *msg.AuditResp) *msg.AuditResp { return resp }

// SpamBlames implements Behavior: honest nodes only blame through the
// verification procedures.
func (Honest) SpamBlames(*rng.Stream) []Accusation { return nil }

// Monitor receives protocol events; LiFTinG's verification component
// (internal/core) implements it. NopMonitor is used when running the bare
// dissemination protocol.
type Monitor interface {
	// OnProposePhase fires after a propose phase: partners were sent the
	// proposed chunks; serversLastPeriod maps each server of the previous
	// period to the chunks it delivered (the ack duty input, §5.2).
	OnProposePhase(p msg.Period, partners []msg.NodeID, proposed []msg.ChunkID, serversLastPeriod map[msg.NodeID][]msg.ChunkID)
	// OnRequestSent fires when the node requests chunks from a proposer
	// (starts the direct verification of §5.2: requested chunks must
	// arrive).
	OnRequestSent(proposer msg.NodeID, p msg.Period, requested []msg.ChunkID)
	// OnServeReceived fires when a requested chunk arrives.
	OnServeReceived(server msg.NodeID, chunk msg.ChunkID)
	// OnServeInvalid fires when a requested chunk arrives with a missing or
	// hash-mismatched payload and is rejected (content-plane verification;
	// feeds the blame path like an undelivered serve).
	OnServeInvalid(server msg.NodeID, chunk msg.ChunkID)
	// OnServed fires when the node serves chunks to a requester (starts the
	// direct cross-checking of §5.2: the receiver must ack and further
	// propose).
	OnServed(receiver msg.NodeID, p msg.Period, served []msg.ChunkID)
}

// NopMonitor ignores all events.
type NopMonitor struct{}

var _ Monitor = NopMonitor{}

// OnProposePhase implements Monitor.
func (NopMonitor) OnProposePhase(msg.Period, []msg.NodeID, []msg.ChunkID, map[msg.NodeID][]msg.ChunkID) {
}

// OnRequestSent implements Monitor.
func (NopMonitor) OnRequestSent(msg.NodeID, msg.Period, []msg.ChunkID) {}

// OnServeReceived implements Monitor.
func (NopMonitor) OnServeReceived(msg.NodeID, msg.ChunkID) {}

// OnServeInvalid implements Monitor.
func (NopMonitor) OnServeInvalid(msg.NodeID, msg.ChunkID) {}

// OnServed implements Monitor.
func (NopMonitor) OnServed(msg.NodeID, msg.Period, []msg.ChunkID) {}
