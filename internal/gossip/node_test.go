package gossip

import (
	"testing"
	"time"

	"lifting/internal/content"
	"lifting/internal/membership"
	"lifting/internal/metrics"
	"lifting/internal/msg"
	"lifting/internal/net"
	"lifting/internal/rng"
	"lifting/internal/sim"
)

func testConfig() Config {
	return Config{
		F:              4,
		Period:         100 * time.Millisecond,
		ChunkPayload:   1000,
		HistoryPeriods: 50,
	}
}

// world is a small deterministic gossip system for tests.
type world struct {
	eng   *sim.Engine
	netw  *net.SimNet
	dir   *membership.Directory
	nodes map[msg.NodeID]*Node
	col   *metrics.Collector
}

func newWorld(t *testing.T, n int, cfg Config, loss float64) *world {
	t.Helper()
	w := &world{
		eng:   sim.NewEngine(),
		dir:   membership.Sequential(n),
		nodes: make(map[msg.NodeID]*Node, n),
		col:   metrics.NewCollector(),
	}
	root := rng.New(42)
	w.netw = net.NewSimNet(w.eng, root.Derive("net"), w.col, net.Uniform(loss, time.Millisecond))
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		node := NewNode(id, cfg, Deps{
			Ctx:  w.eng,
			Net:  w.netw,
			Dir:  w.dir,
			Rand: root.ForNode(uint32(i)),
		})
		w.nodes[id] = node
		w.netw.Attach(id, node)
		node.Start()
	}
	return w
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	bad := []Config{
		{F: 0, Period: time.Second, HistoryPeriods: 1},
		{F: 1, Period: 0, HistoryPeriods: 1},
		{F: 1, Period: time.Second, HistoryPeriods: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewNodePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNode with invalid config did not panic")
		}
	}()
	NewNode(1, Config{}, Deps{})
}

func TestDisseminationReachesEveryone(t *testing.T) {
	w := newWorld(t, 40, testConfig(), 0)
	w.nodes[0].InjectChunk(7)
	w.eng.Run(3 * time.Second)
	for id, n := range w.nodes {
		if !n.Have(7) {
			t.Fatalf("node %d never received the chunk", id)
		}
	}
}

func TestDisseminationUnderLoss(t *testing.T) {
	// With 7% loss and fanout 6 (≈ ln 60 + margin), a single chunk still
	// reaches nearly all of the system thanks to gossip redundancy.
	cfg := testConfig()
	cfg.F = 6
	w := newWorld(t, 60, cfg, 0.07)
	w.nodes[0].InjectChunk(1)
	w.eng.Run(4 * time.Second)
	got := 0
	for _, n := range w.nodes {
		if n.Have(1) {
			got++
		}
	}
	if got < 55 {
		t.Fatalf("only %d/60 nodes received the chunk under 7%% loss", got)
	}
}

func TestInfectAndDie(t *testing.T) {
	// A chunk is proposed exactly once by each node: once the whole system
	// has it, propose traffic for it stops.
	w := newWorld(t, 10, testConfig(), 0)
	w.nodes[0].InjectChunk(3)
	w.eng.Run(2 * time.Second)
	sent := w.col.SentMsgs(msg.KindPropose)
	w.eng.Run(4 * time.Second)
	if more := w.col.SentMsgs(msg.KindPropose); more != sent {
		t.Fatalf("proposals kept flowing after quiescence: %d → %d", sent, more)
	}
	// Every node proposed the chunk at most once: at most n·f proposals.
	if sent > 10*4 {
		t.Fatalf("more proposals (%d) than infect-and-die allows (%d)", sent, 40)
	}
}

func TestInjectDuplicateIgnored(t *testing.T) {
	w := newWorld(t, 5, testConfig(), 0)
	w.nodes[0].InjectChunk(1)
	w.nodes[0].InjectChunk(1)
	if w.nodes[0].ChunkCount() != 1 {
		t.Fatal("duplicate injection created a second chunk")
	}
}

func TestRequestOnlyMissingChunks(t *testing.T) {
	// A node that already has a chunk must not request it again.
	cfg := testConfig()
	w := newWorld(t, 6, cfg, 0)
	for id := range w.nodes {
		w.nodes[id].InjectChunk(5) // everyone already has it
	}
	w.eng.Run(time.Second)
	if w.col.SentMsgs(msg.KindRequest) != 0 {
		t.Fatalf("nodes requested a chunk everyone already has (%d requests)", w.col.SentMsgs(msg.KindRequest))
	}
}

func TestMaxRequestCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRequest = 2
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	var requested []msg.ChunkID
	receiver := NewNode(1, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(2)})
	netw.Attach(1, receiver)
	netw.Attach(0, handlerFunc(func(from msg.NodeID, m msg.Message) {
		if r, ok := m.(*msg.Request); ok {
			requested = r.Chunks
		}
	}))
	netw.Send(0, 1, &msg.Propose{Sender: 0, Period: 1, Chunks: []msg.ChunkID{1, 2, 3, 4, 5}}, net.Unreliable)
	eng.RunAll()
	if len(requested) != 2 {
		t.Fatalf("requested %d chunks, want 2 (MaxRequest)", len(requested))
	}
}

type handlerFunc func(from msg.NodeID, m msg.Message)

func (f handlerFunc) HandleMessage(from msg.NodeID, m msg.Message) { f(from, m) }

func TestServeOnlyProposedAndRequested(t *testing.T) {
	// A request not matching a proposal is ignored; a request for chunks
	// outside P ∩ R serves only the intersection.
	cfg := testConfig()
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	var served []msg.ChunkID
	server := NewNode(0, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(3)})
	netw.Attach(0, server)
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		if s, ok := m.(*msg.Serve); ok {
			served = append(served, s.Chunk)
		}
	}))
	// No proposal was ever sent: the request must be dropped (§4.2).
	netw.Send(1, 0, &msg.Request{Sender: 1, Period: 1, Chunks: []msg.ChunkID{9}}, net.Unreliable)
	eng.RunAll()
	if len(served) != 0 {
		t.Fatalf("server honored a request without a proposal: %v", served)
	}
}

func TestServeIntersectionOnly(t *testing.T) {
	// Build a 2-node world where node 0 proposes {1,2} and node 1 requests
	// {1,2,99}: only {1,2} may be served.
	cfg := testConfig()
	cfg.F = 1
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	server := NewNode(0, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(3)})
	netw.Attach(0, server)
	var served []msg.ChunkID
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		switch v := m.(type) {
		case *msg.Propose:
			// Request more than proposed.
			netw.Send(1, 0, &msg.Request{Sender: 1, Period: v.Period, Chunks: append(v.Chunks, 99)}, net.Unreliable)
		case *msg.Serve:
			served = append(served, v.Chunk)
		}
	}))
	server.InjectChunk(1)
	server.InjectChunk(2)
	server.Start()
	eng.Run(time.Second)
	if len(served) != 2 {
		t.Fatalf("served %v, want exactly chunks 1 and 2", served)
	}
	for _, c := range served {
		if c != 1 && c != 2 {
			t.Fatalf("served unproposed chunk %d", c)
		}
	}
}

func TestDuplicateRequestIgnored(t *testing.T) {
	cfg := testConfig()
	cfg.F = 1
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	server := NewNode(0, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(3)})
	netw.Attach(0, server)
	serves := 0
	netw.Attach(1, handlerFunc(func(from msg.NodeID, m msg.Message) {
		switch v := m.(type) {
		case *msg.Propose:
			netw.Send(1, 0, &msg.Request{Sender: 1, Period: v.Period, Chunks: v.Chunks}, net.Unreliable)
			netw.Send(1, 0, &msg.Request{Sender: 1, Period: v.Period, Chunks: v.Chunks}, net.Unreliable)
		case *msg.Serve:
			serves++
		}
	}))
	server.InjectChunk(1)
	server.Start()
	eng.Run(time.Second)
	if serves != 1 {
		t.Fatalf("duplicate request served %d times, want 1", serves)
	}
}

func TestUnsolicitedServeRejected(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	node := NewNode(0, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(3)})
	netw.Attach(0, node)
	netw.Send(1, 0, &msg.Serve{Sender: 1, Period: 1, Chunk: 77, PayloadSize: 10}, net.Unreliable)
	eng.RunAll()
	if node.Have(77) {
		t.Fatal("node accepted an unsolicited chunk")
	}
}

func TestStopHaltsNode(t *testing.T) {
	w := newWorld(t, 10, testConfig(), 0)
	w.nodes[3].Stop()
	w.nodes[0].InjectChunk(1)
	w.eng.Run(3 * time.Second)
	if w.nodes[3].Have(1) {
		t.Fatal("stopped node still received a chunk")
	}
	if !w.nodes[3].Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestHistoryRecordsFanoutAndFanin(t *testing.T) {
	w := newWorld(t, 20, testConfig(), 0)
	w.nodes[0].InjectChunk(1)
	w.eng.Run(2 * time.Second)
	// Node 0 proposed to F partners in its first phase.
	fh := w.nodes[0].History().FanoutMultiset(0)
	if fh.Len() != testConfig().F {
		t.Fatalf("source fanout history has %d entries, want %d", fh.Len(), testConfig().F)
	}
	// Some node received the chunk and has a fanin record naming a server.
	found := false
	for id, n := range w.nodes {
		if id == 0 {
			continue
		}
		if n.History().FaninMultiset(0).Len() > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no node recorded a fanin entry")
	}
}

func TestOnChunkCallback(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	var gotChunk msg.ChunkID
	var gotAt time.Duration
	node := NewNode(1, cfg, Deps{
		Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(2),
		OnChunk: func(c msg.ChunkID, at time.Duration) { gotChunk, gotAt = c, at },
	})
	netw.Attach(1, node)
	netw.Send(0, 1, &msg.Propose{Sender: 0, Period: 1, Chunks: []msg.ChunkID{5}}, net.Unreliable)
	eng.After(10*time.Millisecond, func() {
		netw.Send(0, 1, &msg.Serve{Sender: 0, Period: 1, Chunk: 5, PayloadSize: 10}, net.Unreliable)
	})
	eng.RunAll()
	if gotChunk != 5 {
		t.Fatalf("OnChunk chunk = %d, want 5", gotChunk)
	}
	if gotAt < 10*time.Millisecond {
		t.Fatalf("OnChunk time = %v, want >= 10ms", gotAt)
	}
}

type recordingMonitor struct {
	proposePhases int
	requests      int
	servesSeen    int
	servesInvalid int
	served        int
}

func (r *recordingMonitor) OnProposePhase(msg.Period, []msg.NodeID, []msg.ChunkID, map[msg.NodeID][]msg.ChunkID) {
	r.proposePhases++
}
func (r *recordingMonitor) OnRequestSent(msg.NodeID, msg.Period, []msg.ChunkID) { r.requests++ }
func (r *recordingMonitor) OnServeReceived(msg.NodeID, msg.ChunkID)             { r.servesSeen++ }
func (r *recordingMonitor) OnServeInvalid(msg.NodeID, msg.ChunkID)              { r.servesInvalid++ }
func (r *recordingMonitor) OnServed(msg.NodeID, msg.Period, []msg.ChunkID)      { r.served++ }

func TestMonitorHooksFire(t *testing.T) {
	cfg := testConfig()
	cfg.F = 1
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	mon0 := &recordingMonitor{}
	mon1 := &recordingMonitor{}
	n0 := NewNode(0, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(2), Monitor: mon0})
	n1 := NewNode(1, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(3), Monitor: mon1})
	netw.Attach(0, n0)
	netw.Attach(1, n1)
	n0.InjectChunk(9)
	n0.Start()
	n1.Start()
	eng.Run(500 * time.Millisecond)
	if mon0.proposePhases == 0 {
		t.Fatal("OnProposePhase never fired on the proposer")
	}
	if mon0.served == 0 {
		t.Fatal("OnServed never fired on the server")
	}
	if mon1.requests == 0 {
		t.Fatal("OnRequestSent never fired on the requester")
	}
	if mon1.servesSeen == 0 {
		t.Fatal("OnServeReceived never fired on the receiver")
	}
}

func TestPeriodStretchBehavior(t *testing.T) {
	// A behavior with PeriodFactor 2 halves the number of propose phases.
	cfg := testConfig()
	eng := sim.NewEngine()
	dir := membership.Sequential(2)
	netw := net.NewSimNet(eng, rng.New(1), nil, net.Uniform(0, time.Millisecond))
	monH := &recordingMonitor{}
	monS := &recordingMonitor{}
	honest := NewNode(0, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(2), Monitor: monH})
	stretch := NewNode(1, cfg, Deps{Ctx: eng, Net: netw, Dir: dir, Rand: rng.New(3), Monitor: monS, Behavior: stretchBehavior{}})
	netw.Attach(0, honest)
	netw.Attach(1, stretch)
	honest.Start()
	stretch.Start()
	eng.Run(2 * time.Second)
	if monS.proposePhases >= monH.proposePhases {
		t.Fatalf("stretched node ran %d phases, honest %d", monS.proposePhases, monH.proposePhases)
	}
}

type stretchBehavior struct{ Honest }

func (stretchBehavior) PeriodFactor() float64 { return 2 }

func TestDeterministicDissemination(t *testing.T) {
	run := func() uint64 {
		w := newWorld(t, 30, testConfig(), 0.05)
		w.nodes[0].InjectChunk(1)
		w.eng.Run(2 * time.Second)
		return w.col.SentMsgs(msg.KindPropose) + w.col.SentMsgs(msg.KindServe)*1000
	}
	if run() != run() {
		t.Fatal("two identical runs diverged")
	}
}

func TestContentPlaneDissemination(t *testing.T) {
	// With stores wired in, real payload bytes reach every node and verify
	// against the source's hashes; goodput accounts for each first copy.
	cfg := testConfig()
	w := &world{
		eng:   sim.NewEngine(),
		dir:   membership.Sequential(20),
		nodes: make(map[msg.NodeID]*Node, 20),
		col:   metrics.NewCollector(),
	}
	root := rng.New(42)
	w.netw = net.NewSimNet(w.eng, root.Derive("net"), w.col, net.Uniform(0, time.Millisecond))
	for i := 0; i < 20; i++ {
		id := msg.NodeID(i)
		node := NewNode(id, cfg, Deps{
			Ctx:     w.eng,
			Net:     w.netw,
			Dir:     w.dir,
			Rand:    root.ForNode(uint32(i)),
			Metrics: w.col,
			Store:   content.NewStore(0),
		})
		w.nodes[id] = node
		w.netw.Attach(id, node)
		node.Start()
	}
	src := content.NewSource(7, 512)
	payload, hash := src.Chunk(9)
	w.nodes[0].InjectChunkData(9, payload, hash)
	w.eng.Run(3 * time.Second)
	for id, n := range w.nodes {
		got, gotHash, ok := n.Store().Get(9)
		if !ok {
			t.Fatalf("node %d has no stored payload for chunk 9", id)
		}
		if gotHash != hash || !content.Verify(got, hash) {
			t.Fatalf("node %d stored an invalid payload", id)
		}
	}
	if g := w.col.GoodputBytes(); g != uint64(len(payload))*19 {
		t.Fatalf("goodput = %d, want %d", g, uint64(len(payload))*19)
	}
	if w.col.InvalidServes() != 0 {
		t.Fatalf("invalid serves = %d, want 0", w.col.InvalidServes())
	}
}

func TestInvalidServeRejectedAndBlamed(t *testing.T) {
	// A serve with a corrupted (or missing) payload must be rejected — the
	// chunk stays missing, the monitor hears about it, and the outstanding
	// request survives so the retry path can recover from another proposer.
	cfg := testConfig()
	eng := sim.NewEngine()
	col := metrics.NewCollector()
	netw := net.NewSimNet(eng, rng.New(1), col, net.Uniform(0, time.Millisecond))
	mon := &recordingMonitor{}
	r := NewNode(0, cfg, Deps{
		Ctx:     eng,
		Net:     netw,
		Dir:     membership.Sequential(3),
		Rand:    rng.New(2),
		Monitor: mon,
		Metrics: col,
		Store:   content.NewStore(0),
	})
	netw.Attach(0, r)

	payload, hash := content.NewSource(7, 256).Chunk(5)
	r.HandleMessage(1, &msg.Propose{Sender: 1, Period: 1, Chunks: []msg.ChunkID{5}, Origins: []msg.NodeID{1}})

	// Corrupted bytes under the right hash.
	corrupt := append([]byte(nil), payload...)
	corrupt[0] ^= 0xFF
	r.HandleMessage(1, &msg.Serve{Sender: 1, Period: 1, Chunk: 5, PayloadSize: len(corrupt), Hash: hash, Payload: corrupt})
	// A payload-less serve (store miss on the server side).
	r.HandleMessage(1, &msg.Serve{Sender: 1, Period: 1, Chunk: 5, PayloadSize: cfg.ChunkPayload})
	if r.Have(5) {
		t.Fatal("node accepted an invalid payload")
	}
	if mon.servesInvalid != 2 {
		t.Fatalf("OnServeInvalid fired %d times, want 2", mon.servesInvalid)
	}
	if col.InvalidServes() != 2 {
		t.Fatalf("invalid serves = %d, want 2", col.InvalidServes())
	}

	// The request record must survive rejection: the same server can redeem
	// itself (or a retry can go elsewhere) and the chunk is then accepted.
	r.HandleMessage(1, &msg.Serve{Sender: 1, Period: 1, Chunk: 5, PayloadSize: len(payload), Hash: hash, Payload: payload})
	if !r.Have(5) {
		t.Fatal("node rejected a valid payload after an invalid one")
	}
	if got, _, ok := r.Store().Get(5); !ok || !content.Verify(got, hash) {
		t.Fatal("accepted payload not stored")
	}
	if mon.servesSeen != 1 {
		t.Fatalf("OnServeReceived fired %d times, want 1", mon.servesSeen)
	}
	if col.GoodputBytes() != uint64(len(payload)) {
		t.Fatalf("goodput = %d, want %d", col.GoodputBytes(), len(payload))
	}
}
