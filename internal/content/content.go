// Package content is the data plane of the stream: deterministic chunk
// payload generation, content hashing, and a bounded per-node chunk store.
//
// Payloads are pure functions of (stream seed, chunk id, size), so every
// backend — the discrete-event sim, the live runtime, a fleet of OS
// processes — generates byte-identical chunks from the same seed and any
// receiver can verify a serve against its advertised hash without trusting
// the server. The store is a direct-mapped bounded cache: dissemination is
// infect-and-die (a chunk is proposed exactly once, the period after
// receipt), so only a recent window of chunks is ever serveable and old
// slots are recycled in stream order.
package content

import (
	"encoding/binary"
	"sort"
	"sync"
	"time"

	"lifting/internal/msg"
)

// Content-hash parameters: the FNV-1a 64 offset basis seeds the chain and
// the FNV prime advances it, but words — not bytes — are the unit. A
// byte-serial FNV-1a costs one dependent multiply per byte and profiled at
// ~40% of whole-workload CPU once serves carried real payloads; mixing
// 8-byte words through a splitmix64 finalizer before folding them into the
// chain is ~8x cheaper at the same "flip any bit, change the hash"
// integrity guarantee (neither is cryptographic). Word loads are explicit
// little-endian, so the hash is byte-stable across platforms.
const (
	hashOffset = 14695981039346656037
	hashPrime  = 1099511628211
)

// mixWord diffuses one 64-bit word (splitmix64's finalizer).
func mixWord(k uint64) uint64 {
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// HashBytes returns the 64-bit content hash of b. It is the hash carried in
// msg.Serve frames and the gateway's X-Lifting-Hash header, implemented
// inline and allocation-free for the per-serve verification hot path.
func HashBytes(b []byte) uint64 {
	h := uint64(hashOffset) ^ uint64(len(b))*0x9e3779b97f4a7c15
	for len(b) >= 8 {
		h = (h ^ mixWord(binary.LittleEndian.Uint64(b))) * hashPrime
		b = b[8:]
	}
	if len(b) > 0 {
		var k uint64
		for i := len(b) - 1; i >= 0; i-- {
			k = k<<8 | uint64(b[i])
		}
		h = (h ^ mixWord(k)) * hashPrime
	}
	return h ^ h>>32
}

// Verify reports whether payload matches the advertised content hash.
func Verify(payload []byte, hash uint64) bool {
	return payload != nil && HashBytes(payload) == hash
}

// Generate returns the canonical payload of chunk c for the stream rooted
// at seed: a splitmix64 keystream keyed by (seed, c), laid out 8 bytes at a
// time. Deterministic across runs, platforms and processes.
func Generate(seed uint64, c msg.ChunkID, size int) []byte {
	if size <= 0 {
		return nil
	}
	out := make([]byte, size)
	x := seed ^ (uint64(c)+1)*0x9e3779b97f4a7c15
	for i := 0; i < size; i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		for j := 0; j < 8 && i+j < size; j++ {
			out[i+j] = byte(z >> (8 * j))
		}
	}
	return out
}

// Source generates and memoizes the canonical payload of every chunk of one
// stream. The source node of a cluster injects these bytes; the origin
// gateway regenerates any chunk an HTTP client asks for, however old. The
// memoized slices are shared read-only: under the in-process sim they are
// the very slices every node's store holds, so a 10k-node run keeps one
// copy of the stream, not ten thousand.
type Source struct {
	seed uint64
	size int

	mu     sync.RWMutex
	chunks map[msg.ChunkID][]byte
	hashes map[msg.ChunkID]uint64
}

// NewSource returns a source for the stream rooted at seed emitting
// size-byte chunks.
func NewSource(seed uint64, size int) *Source {
	return &Source{
		seed:   seed,
		size:   size,
		chunks: make(map[msg.ChunkID][]byte),
		hashes: make(map[msg.ChunkID]uint64),
	}
}

// Seed returns the stream seed.
func (s *Source) Seed() uint64 { return s.seed }

// PayloadSize returns the per-chunk payload size in bytes.
func (s *Source) PayloadSize() int { return s.size }

// Chunk returns the canonical payload and content hash of chunk c. The
// returned slice is shared and must be treated as read-only.
func (s *Source) Chunk(c msg.ChunkID) ([]byte, uint64) {
	s.mu.RLock()
	payload, ok := s.chunks[c]
	hash := s.hashes[c]
	s.mu.RUnlock()
	if ok {
		return payload, hash
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if payload, ok = s.chunks[c]; ok {
		return payload, s.hashes[c]
	}
	payload = Generate(s.seed, c, s.size)
	hash = HashBytes(payload)
	s.chunks[c] = payload
	s.hashes[c] = hash
	return payload, hash
}

// DefaultStoreCapacity is the floor store size in chunks, used when no
// stream configuration is available to size the store from.
const DefaultStoreCapacity = 128

// serveWindowPeriods is the store sizing horizon in gossip periods. Under
// infect-and-die a chunk is proposed the period after receipt and served on
// request shortly after, but retries re-request a chunk several periods out
// and a congested uplink (the PlanetLab scenarios provision 2x the stream
// rate) queues serves further still. Sixteen periods absorbs all of it: at
// the paper's 674 kbps / 500 ms configuration the window is 512 chunks
// (~24 KB of slot metadata per node), and an honest node then never serves
// a chunk it verified in but already evicted — which a receiver would
// reject and blame.
const serveWindowPeriods = 16

// StoreCapacityFor sizes a node's chunk store to hold serveWindowPeriods
// gossip periods of stream, floored at DefaultStoreCapacity. Assemblies use
// it when no explicit capacity is configured.
func StoreCapacityFor(chunkInterval, gossipPeriod time.Duration) int {
	if chunkInterval <= 0 || gossipPeriod <= 0 {
		return DefaultStoreCapacity
	}
	n := int(serveWindowPeriods*gossipPeriod/chunkInterval) + 1
	if n < DefaultStoreCapacity {
		return DefaultStoreCapacity
	}
	return n
}

// Store is a bounded chunk store: a direct-mapped cache indexed by chunk id
// modulo capacity. Eviction is implicit and deterministic — chunk c
// recycles the slot of chunk c−capacity — which matches a streaming
// workload, where slots age out in stream order no matter when they were
// last read. Put never copies the payload: callers hand in a slice the
// store may retain (the sim shares the source's canonical slices; the
// transports hand in per-message buffers).
//
// All methods are safe for concurrent use: node callbacks write while
// gateway HTTP handlers read.
type Store struct {
	mu        sync.RWMutex
	slots     []storeSlot
	len       int
	puts      uint64
	evictions uint64
}

type storeSlot struct {
	id      msg.ChunkID
	payload []byte
	hash    uint64
	full    bool
}

// NewStore returns an empty store holding at most capacity chunks
// (DefaultStoreCapacity if capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{slots: make([]storeSlot, capacity)}
}

// Capacity returns the maximum number of chunks held.
func (s *Store) Capacity() int { return len(s.slots) }

// Put stores chunk c. The payload slice is retained, not copied.
func (s *Store) Put(c msg.ChunkID, payload []byte, hash uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := &s.slots[int(uint32(c))%len(s.slots)]
	if slot.full && slot.id != c {
		s.evictions++
	} else if !slot.full {
		s.len++
	}
	slot.id, slot.payload, slot.hash, slot.full = c, payload, hash, true
	s.puts++
}

// Get returns the payload and hash of chunk c if it is still stored. The
// returned slice is shared and must be treated as read-only.
func (s *Store) Get(c msg.ChunkID) ([]byte, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot := &s.slots[int(uint32(c))%len(s.slots)]
	if !slot.full || slot.id != c {
		return nil, 0, false
	}
	return slot.payload, slot.hash, true
}

// Len returns the number of chunks currently stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.len
}

// Evictions returns the number of chunks displaced by newer ones.
func (s *Store) Evictions() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evictions
}

// Puts returns the number of Put calls.
func (s *Store) Puts() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts
}

// Chunks returns the ids currently stored, in ascending order.
func (s *Store) Chunks() []msg.ChunkID {
	s.mu.RLock()
	out := make([]msg.ChunkID, 0, s.len)
	for i := range s.slots {
		if s.slots[i].full {
			out = append(out, s.slots[i].id)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
