package content

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"lifting/internal/msg"
)

// TestHashBytesProperties pins the contract the protocol depends on: the
// hash is a pure function of the bytes (length included), any single-bit
// flip changes it, and word/tail boundaries are all covered.
func TestHashBytesProperties(t *testing.T) {
	if HashBytes(nil) != HashBytes([]byte{}) {
		t.Fatal("nil and empty must hash identically")
	}
	seen := make(map[uint64][]byte)
	for size := 0; size <= 24; size++ {
		b := Generate(7, 3, size+1)[:size]
		h := HashBytes(b)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between %q and %q", prev, b)
		}
		seen[h] = append([]byte(nil), b...)
		if HashBytes(append([]byte(nil), b...)) != h {
			t.Fatalf("size %d: hash not a pure function of the bytes", size)
		}
	}
	payload := Generate(7, 3, 1316)
	h := HashBytes(payload)
	for _, i := range []int{0, 1, 7, 8, 9, 1314, 1315} {
		mutated := append([]byte(nil), payload...)
		mutated[i] ^= 1
		if HashBytes(mutated) == h {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
	if HashBytes(payload[:1315]) == h {
		t.Fatal("truncation not detected")
	}
}

// TestHashBytesGolden pins the exact values: the hash crosses processes
// (msg.Serve frames, the gateway's hash header), so it must be stable
// across platforms and releases.
func TestHashBytesGolden(t *testing.T) {
	for _, tc := range []struct {
		in   []byte
		want uint64
	}{
		{nil, 0xcbf29ce44fd0bfc1},
		{[]byte("a"), 0xff441772f21b5f59},
		{[]byte("lifting"), 0x73b478346c3720d5},
		{[]byte("liftingg"), 0xd409fd6baccd5c92},
		{Generate(7, 3, 1316), 0xd19975f6dc948f95},
	} {
		if got := HashBytes(tc.in); got != tc.want {
			t.Fatalf("HashBytes(%q) = %#x, want %#x", tc.in, got, tc.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 7, 1316)
	b := Generate(42, 7, 1316)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, chunk, size) produced different payloads")
	}
	if bytes.Equal(a, Generate(42, 8, 1316)) {
		t.Fatal("different chunks produced identical payloads")
	}
	if bytes.Equal(a, Generate(43, 7, 1316)) {
		t.Fatal("different seeds produced identical payloads")
	}
	if len(Generate(1, 1, 5264)) != 5264 {
		t.Fatal("payload size not honored")
	}
	if Generate(1, 1, 0) != nil {
		t.Fatal("zero size should generate nil")
	}
	// The keystream must not degenerate: a chunk should use most byte
	// values, not a constant filler.
	seen := map[byte]bool{}
	for _, c := range a {
		seen[c] = true
	}
	if len(seen) < 100 {
		t.Fatalf("payload uses only %d distinct byte values", len(seen))
	}
}

func TestSourceMemoizes(t *testing.T) {
	s := NewSource(9, 64)
	p1, h1 := s.Chunk(5)
	p2, h2 := s.Chunk(5)
	if &p1[0] != &p2[0] {
		t.Fatal("source did not memoize the canonical slice")
	}
	if h1 != h2 || h1 != HashBytes(p1) {
		t.Fatal("hash mismatch")
	}
	if !bytes.Equal(p1, Generate(9, 5, 64)) {
		t.Fatal("source payload differs from Generate")
	}
	if s.PayloadSize() != 64 || s.Seed() != 9 {
		t.Fatal("accessors broken")
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(8)
	if s.Len() != 0 || s.Capacity() != 8 {
		t.Fatal("fresh store not empty")
	}
	payload := Generate(1, 3, 32)
	s.Put(3, payload, HashBytes(payload))
	got, hash, ok := s.Get(3)
	if !ok || !bytes.Equal(got, payload) || hash != HashBytes(payload) {
		t.Fatal("get after put failed")
	}
	if &got[0] != &payload[0] {
		t.Fatal("store copied the payload; it must retain the caller's slice")
	}
	if _, _, ok := s.Get(4); ok {
		t.Fatal("get of a missing chunk succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestStoreEvictsInStreamOrder(t *testing.T) {
	s := NewStore(4)
	for c := msg.ChunkID(0); c < 10; c++ {
		s.Put(c, Generate(1, c, 16), 0)
	}
	// Chunks 6..9 occupy the 4 slots; everything older was displaced.
	for c := msg.ChunkID(0); c < 6; c++ {
		if _, _, ok := s.Get(c); ok {
			t.Fatalf("chunk %d survived eviction", c)
		}
	}
	for c := msg.ChunkID(6); c < 10; c++ {
		if _, _, ok := s.Get(c); !ok {
			t.Fatalf("chunk %d missing", c)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Evictions() != 6 {
		t.Fatalf("evictions = %d, want 6", s.Evictions())
	}
	want := []msg.ChunkID{6, 7, 8, 9}
	got := s.Chunks()
	if len(got) != len(want) {
		t.Fatalf("chunks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", got, want)
		}
	}
}

func TestStoreRePutSameChunk(t *testing.T) {
	s := NewStore(4)
	s.Put(1, []byte("a"), 1)
	s.Put(1, []byte("b"), 2)
	if s.Evictions() != 0 {
		t.Fatal("re-put of the same chunk counted as eviction")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	p, h, _ := s.Get(1)
	if string(p) != "b" || h != 2 {
		t.Fatal("re-put did not replace the payload")
	}
	if s.Puts() != 2 {
		t.Fatalf("puts = %d, want 2", s.Puts())
	}
}

// TestStoreConcurrent exercises the store the way a deployment does: node
// callbacks writing while gateway HTTP handlers read. Run under -race in CI.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(64)
	src := NewSource(3, 128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for c := msg.ChunkID(0); c < 500; c++ {
				payload, hash := src.Chunk(c)
				s.Put(c, payload, hash)
			}
		}()
		go func() {
			defer wg.Done()
			for c := msg.ChunkID(0); c < 500; c++ {
				if payload, hash, ok := s.Get(c); ok && !Verify(payload, hash) {
					t.Error("stored payload fails verification")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStoreCapacityFor(t *testing.T) {
	// The paper's configuration: 674 kbps / 1316 B chunks is a ~15.6 ms
	// chunk interval; 16 periods of 500 ms must hold 512 chunks.
	if got := StoreCapacityFor(15620178, 500*time.Millisecond); got != 513 {
		t.Fatalf("capacity = %d, want 513", got)
	}
	// Slow streams fall back to the floor.
	if got := StoreCapacityFor(time.Second, 500*time.Millisecond); got != DefaultStoreCapacity {
		t.Fatalf("capacity = %d, want floor %d", got, DefaultStoreCapacity)
	}
	// Degenerate inputs fall back to the floor.
	if got := StoreCapacityFor(0, time.Second); got != DefaultStoreCapacity {
		t.Fatalf("capacity = %d, want floor %d", got, DefaultStoreCapacity)
	}
	if got := StoreCapacityFor(time.Millisecond, 0); got != DefaultStoreCapacity {
		t.Fatalf("capacity = %d, want floor %d", got, DefaultStoreCapacity)
	}
}

func TestVerify(t *testing.T) {
	p := Generate(1, 1, 100)
	if !Verify(p, HashBytes(p)) {
		t.Fatal("valid payload rejected")
	}
	if Verify(p, HashBytes(p)^1) {
		t.Fatal("wrong hash accepted")
	}
	if Verify(nil, HashBytes(nil)) {
		t.Fatal("nil payload accepted")
	}
	mutated := append([]byte(nil), p...)
	mutated[50] ^= 0x01
	if Verify(mutated, HashBytes(p)) {
		t.Fatal("corrupted payload accepted")
	}
}

func BenchmarkHashBytes(b *testing.B) {
	payload := Generate(1, 1, 1316)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashBytes(payload)
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	s := NewStore(DefaultStoreCapacity)
	src := NewSource(1, 1316)
	// Pre-generate a window of chunks so the bench measures the store, not
	// the generator.
	payloads := make([][]byte, 256)
	hashes := make([]uint64, 256)
	for c := range payloads {
		payloads[c], hashes[c] = src.Chunk(msg.ChunkID(c))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := msg.ChunkID(i % 256)
		s.Put(c, payloads[c], hashes[c])
		if _, _, ok := s.Get(c); !ok {
			b.Fatal("miss after put")
		}
	}
}
