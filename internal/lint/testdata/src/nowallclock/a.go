// Package nowallclock is a golden fixture for the no-wallclock rule.
package nowallclock

import "time"

// Bad: direct wall-clock reads in a deterministic package.
func bad() time.Duration {
	start := time.Now()             // want "no-wallclock: time.Now reads the wall clock"
	_ = time.Until(start)           // want "no-wallclock: time.Until"
	t := time.NewTimer(time.Second) // want "no-wallclock: time.NewTimer"
	defer t.Stop()
	time.Sleep(time.Millisecond) // want "no-wallclock: time.Sleep"
	return time.Since(start)     // want "no-wallclock: time.Since reads the wall clock"
}

// Good: pure time constructors and conversions are deterministic.
func good() time.Duration {
	d, _ := time.ParseDuration("3s")
	at := time.Date(2010, time.November, 29, 0, 0, 0, 0, time.UTC)
	_ = at
	return d + 2*time.Second
}

// Suppressed: an allow on the line above covers the read.
func suppressed() time.Time {
	//lint:allow no-wallclock fixture exercises the suppression path
	return time.Now()
}

// SuppressedTrailing: an allow on the same line covers the read.
func suppressedTrailing() time.Time {
	return time.Now() //lint:allow no-wallclock trailing-comment form
}
