// Package pr4snapshot reproduces the PR 4 bug shape: history.Log snapshot
// accessors iterated their period map in hash order. Forgery rewrites and
// audit-poll sampling consumed randomness in whatever order the map served,
// and seeded runs diverged until the accessors were rewritten to return
// records in sorted period order. The ordered-map-range rule catches the
// original shape mechanically.
package pr4snapshot

// Record is one remembered proposal.
type Record struct {
	Period  uint64
	Targets []uint32
}

// Log mimics the pre-fix history.Log: per-period records in a map.
type Log struct {
	proposals map[uint64]Record
}

// Proposals is the buggy snapshot accessor: the returned slice order
// followed map hash order, run to run.
func (l *Log) Proposals() []Record {
	out := make([]Record, 0, len(l.proposals))
	for _, r := range l.proposals { // want "ordered-map-range: range over map\\[uint64\\]Record iterates in nondeterministic order"
		out = append(out, r)
	}
	return out
}
