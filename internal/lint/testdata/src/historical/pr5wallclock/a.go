// Package pr5wallclock reproduces the PR 5 bug shape: experiment runners
// measured wall-clock elapsed time into their result structs, and the
// timings leaked into rendered tables and the JSON document — so two
// identical seeded runs emitted different bytes. The no-time-in-results
// rule flags the field; the no-wallclock rule flags the measurement.
package pr5wallclock

import "time"

// ChurnResult mimics the pre-redesign result struct: a measured wall-clock
// duration sitting next to the deterministic outcome fields.
type ChurnResult struct {
	Joined   int           `json:"joined"`
	Expelled int           `json:"expelled"`
	Elapsed  time.Duration `json:"elapsed"` // want "no-time-in-results: wall-clock-typed field ChurnResult.Elapsed"
}

// Run mimics the pre-redesign runner: it times itself on the host clock.
func Run() ChurnResult {
	start := time.Now() // want "no-wallclock: time.Now reads the wall clock"
	res := ChurnResult{Joined: 10, Expelled: 3}
	res.Elapsed = time.Since(start) // want "no-wallclock: time.Since reads the wall clock"
	return res
}
