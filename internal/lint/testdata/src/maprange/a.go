// Package maprange is a golden fixture for the ordered-map-range rule.
package maprange

import "sort"

type counts map[string]int

// Bad: direct iteration of map storage.
func bad(m map[string]int, c counts) []string {
	var out []string
	for k := range m { // want "ordered-map-range: range over map\\[string\\]int iterates in nondeterministic order"
		out = append(out, k)
	}
	for k, v := range c { // want "ordered-map-range: range over counts"
		_ = k
		_ = v
	}
	for k := range mkMap() { // want "ordered-map-range: range over map\\[int\\]bool"
		_ = k
	}
	return out
}

func mkMap() map[int]bool { return nil }

// Good: the sorted-keys idiom ranges over a slice, never the map.
func good(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lint:allow ordered-map-range key collection order does not escape: the slice is sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"!")
	}
	return out
}

// Slices and channels never trigger the rule.
func notMaps(s []int, ch chan int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	for v := range ch {
		total += v
	}
	for i := range 3 {
		total += i
	}
	return total
}

// Suppressed: a commutative reduction annotated order-insensitive.
func suppressed(m map[string]int) int {
	total := 0
	for _, v := range m { //lint:allow ordered-map-range integer sum commutes; order cannot reach any output
		total += v
	}
	return total
}
