// Package allowlisted is the allowlist half of the no-wallclock fixture:
// the same reads count as findings only when the package is on the
// deterministic list. It carries no want comments — the test asserts the
// finding count under both configurations.
package allowlisted

import "time"

// Uptime reads the wall clock twice; legal in an allowlisted package.
func Uptime(start time.Time) (time.Time, time.Duration) {
	return time.Now(), time.Since(start)
}
