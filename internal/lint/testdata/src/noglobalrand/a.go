// Package noglobalrand is a golden fixture for the no-global-rand rule.
package noglobalrand

import (
	"math/rand"
	mrand "math/rand/v2"
)

// Bad: package-level functions draw from the process-global source.
func bad() {
	_ = rand.Intn(10)                  // want "no-global-rand: rand.Intn draws from the process-global"
	_ = rand.Float64()                 // want "no-global-rand: rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "no-global-rand: rand.Shuffle"
	_ = mrand.IntN(10)                 // want "no-global-rand: mrand.IntN"
	_ = mrand.N(uint8(4))              // want "no-global-rand: mrand.N"
}

// Good: locally constructed generators and type references.
func good() float64 {
	var r *rand.Rand = rand.New(rand.NewSource(1))
	r2 := mrand.New(mrand.NewPCG(1, 2))
	var src rand.Source = rand.NewSource(7)
	_ = src
	return r.Float64() + r2.Float64()
}

// Shadowed: a local identifier named like the import is not the package.
type fakeRand struct{ Intn func(int) int }

func shadowed(rand fakeRand) int {
	return rand.Intn(3)
}

// Suppressed: the allow covers a deliberate global draw.
func suppressed() int {
	//lint:allow no-global-rand fixture exercises the suppression path
	return mrand.IntN(2)
}
