// Test files are parsed without type information; the rule still applies —
// a global draw in a test makes its failure seeds unreproducible.
package noglobalrand

import "math/rand"

func helperForTests() int {
	_ = rand.New(rand.NewSource(1)) // constructors stay legal
	return rand.Int()               // want "no-global-rand: rand.Int draws from the process-global"
}
