// Package suppress is a golden fixture for the //lint:allow hygiene rules:
// the directives themselves are linted. Expectations that target a
// directive's own line use block-comment form so they stay out of the
// directive's reason text.
package suppress

import "time"

// used: a well-formed directive that suppresses a real finding.
func used() time.Time {
	//lint:allow no-wallclock fixture needs a suppressed read
	return time.Now()
}

// stale: nothing on this or the next line triggers no-wallclock.
func stale() int {
	/* want "lint-allow: unused suppression for no-wallclock" */ //lint:allow no-wallclock nothing here reads the clock
	return 42
}

// typo: the rule name does not exist.
func typo() time.Time {
	/* want "lint-allow: suppression names unknown rule no-wall-clock" */ //lint:allow no-wall-clock misspelled rule names must not silently suppress
	return time.Now()                                                     // want "no-wallclock: time.Now reads the wall clock"
}

// reasonless: an allow without a reason is malformed.
func reasonless() time.Time {
	/* want "lint-allow: malformed suppression" */ //lint:allow no-wallclock
	return time.Now()                              // want "no-wallclock: time.Now reads the wall clock"
}
