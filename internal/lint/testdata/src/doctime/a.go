// Package doctime is a golden fixture for the no-time-in-results rule.
package doctime

import "time"

// Document is the closure root.
type Document struct {
	Schema  string    `json:"schema"`
	Payload []Payload `json:"payload"`
}

// Payload is document-reachable; its name matches no result suffix, so
// every finding below comes from the closure walk alone.
type Payload struct {
	Periods uint64          `json:"periods"`
	Started time.Time       `json:"started"`  // want "no-time-in-results: wall-clock-typed field Payload.Started"
	Took    time.Duration   `json:"took_ns"`  // want "no-time-in-results: wall-clock-typed field Payload.Took"
	PerNode []time.Duration `json:"per_node"` // want "no-time-in-results: wall-clock-typed field Payload.PerNode"
	// Scratch is excluded from marshalling and Payload is not
	// result-shaped, so the closure skip applies.
	Scratch time.Duration `json:"-"`
	//lint:allow no-time-in-results configured sim-time offset echoed back; an input, not a measurement
	Offset time.Duration `json:"offset_ns"`
}

// SweepRun is unreferenced by the document, but its name is result-shaped:
// the pattern scan checks every field, marshalled or not.
type SweepRun struct {
	N       int
	Elapsed time.Duration // want "no-time-in-results: wall-clock-typed field SweepRun.Elapsed"
}

// helper is neither reachable nor result-shaped.
type helper struct {
	deadline time.Time
}

var _ = SweepRun{}
var _ = helper{}
