// Package docfloat is a golden fixture for the no-float-in-document rule:
// a miniature experiments document whose closure carries deliberate and
// accidental floats.
package docfloat

import (
	"fmt"
	"strconv"
)

// Document is the root the rule walks from.
type Document struct {
	Schema  string    `json:"schema"`
	Results []*Result `json:"results"`
}

// Result mixes legal integer fields with float hazards.
type Result struct {
	Name        string             `json:"name"`
	OverheadPpm uint64             `json:"overhead_ppm"`
	Score       float64            `json:"score"`   // want "no-float-in-document: float-typed field Result.Score reaches the experiments document"
	Ratios      []float32          `json:"ratios"`  // want "no-float-in-document: float-typed field Result.Ratios"
	ByNode      map[string]float64 `json:"by_node"` // want "no-float-in-document: float-typed field Result.ByNode"
	// Scratch is excluded from marshalling, so it never reaches the
	// document and the rule leaves it alone.
	Scratch float64 `json:"-"`
	// hidden is unexported: encoding/json ignores it.
	hidden float64
	Sub    Nested `json:"sub"`
	//lint:allow no-float-in-document echoed input parameter, copied not computed; cannot depend on execution order
	Delta float64 `json:"delta"`
}

// Nested is reached through Result.Sub.
type Nested struct {
	Mean float64 `json:"mean"` // want "no-float-in-document: float-typed field Nested.Mean"
	Ns   uint64  `json:"ns"`
}

// Orphan is not reachable from Document: its floats are fine.
type Orphan struct {
	X float64
}

// String formats integers only — legal.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d ppm", r.Name, r.OverheadPpm)
}

// Render smuggles float formatting into a document type's output.
func (r *Result) Render() string {
	s := fmt.Sprintf("score=%.3f", r.Score)          // want "no-float-in-document: float formatting in method Result.Render"
	s += strconv.FormatFloat(r.Scratch, 'g', -1, 64) // want "no-float-in-document: strconv.FormatFloat in method Result.Render"
	return s
}

// Describe is a method on the unreachable type — not checked.
func (o Orphan) Describe() string {
	return fmt.Sprintf("%f", o.X)
}

var _ = Orphan{}
