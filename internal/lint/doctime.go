package lint

import (
	"go/token"
	"go/types"
)

// NoTimeInResults forbids time.Time and time.Duration fields on result
// types: everything reachable from the document roots, plus — by name — the
// Result/Run/Row/Snapshot/Table structs of the configured packages even
// when a field is currently excluded from marshalling.
//
// This is the PR 5 bug class: wall-clock timings measured during a run sat
// on result structs and leaked into tables and JSON, so two identical
// seeded runs produced different documents. A duration that is genuinely an
// input (a configured sim-time offset echoed back) is annotated; a measured
// one is deleted or moved out to the driver.
type NoTimeInResults struct {
	// Roots are the document root types (shared with NoFloatInDocument).
	Roots []TypeRef
	// Packages are additionally scanned for result-shaped struct names.
	Packages PackageSet
	// NameSuffixes select the result-shaped structs ("Result", "Run",
	// "Row", "Snapshot", "Table" by default when nil).
	NameSuffixes []string
}

func (NoTimeInResults) Name() string { return "no-time-in-results" }
func (NoTimeInResults) Doc() string {
	return "forbid time.Time/time.Duration fields on result, row and snapshot structs; sim-time integers only"
}

// DefaultResultSuffixes are the struct-name suffixes treated as
// result-shaped when NameSuffixes is nil.
var DefaultResultSuffixes = []string{"Result", "Run", "Row", "Snapshot", "Table"}

func (a NoTimeInResults) RunModule(pass *Pass) {
	suffixes := a.NameSuffixes
	if suffixes == nil {
		suffixes = DefaultResultSuffixes
	}
	reported := make(map[token.Pos]bool)
	isTime := func(t types.Type) bool {
		return isNamedAs(t, "time", "Time") || isNamedAs(t, "time", "Duration")
	}
	check := func(owner *types.Named, field *types.Var) {
		if !typeHas(field.Type(), isTime) || reported[field.Pos()] {
			return
		}
		reported[field.Pos()] = true
		pass.Report(field.Pos(), "wall-clock-typed field %s.%s on a result struct; measured time must not reach the experiments document — delete it, move the measurement to a driver, or annotate why it is an input rather than a measurement",
			owner.Obj().Name(), field.Name())
	}

	walkDocument(pass, a.Roots, func(owner *types.Named, field *types.Var, tag string) {
		check(owner, field)
	})

	// Name-pattern scan: result-shaped structs are checked on every field,
	// marshalled or not — an unmarshalled wall-clock field on a Result is a
	// leak waiting for a json tag.
	for _, pkg := range pass.Module {
		if pkg.Types == nil || !a.Packages.Match(pkg.Path) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !hasSuffixAny(name, suffixes) {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				check(named, st.Field(i))
			}
		}
	}
}
