package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos    token.Position // position of the comment itself
	rule   string
	reason string
	used   bool
}

// allowIndex maps (filename, line) to the directives written there. A
// directive suppresses matching findings on its own line (trailing comment)
// and on the line directly below it (a comment line above the flagged code,
// typically the last line of a doc comment).
type allowIndex struct {
	byLine map[string]map[int][]*allowDirective
	// malformed collects //lint:allow comments missing a rule or a reason;
	// the runner reports them as findings of the built-in lint-allow rule.
	malformed []Diagnostic
}

const allowPrefix = "//lint:allow"

// scanAllows extracts every //lint:allow directive from the file's comments.
func (ix *allowIndex) scanAllows(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				ix.malformed = append(ix.malformed, Diagnostic{
					Pos:     pos,
					Rule:    "lint-allow",
					Message: "malformed suppression: want //lint:allow <rule> <reason>",
				})
				continue
			}
			d := &allowDirective{pos: pos, rule: fields[0], reason: strings.Join(fields[1:], " ")}
			if ix.byLine == nil {
				ix.byLine = make(map[string]map[int][]*allowDirective)
			}
			lines := ix.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int][]*allowDirective)
				ix.byLine[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], d)
		}
	}
}

// suppressed reports whether a finding at pos for rule is covered by a
// directive, marking the directive used.
func (ix *allowIndex) suppressed(pos token.Position, rule string) bool {
	lines := ix.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.rule == rule {
				d.used = true
				return true
			}
		}
	}
	return false
}

// hygiene returns findings about the directives themselves: unknown rule
// names (typos would otherwise silently suppress nothing) and unused
// directives (stale suppressions outlive the code they excused).
func (ix *allowIndex) hygiene(known map[string]bool) []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, ix.malformed...)
	for _, lines := range ix.byLine {
		for _, dirs := range lines {
			for _, d := range dirs {
				switch {
				case !known[d.rule]:
					ds = append(ds, Diagnostic{
						Pos:     d.pos,
						Rule:    "lint-allow",
						Message: "suppression names unknown rule " + d.rule,
					})
				case !d.used:
					ds = append(ds, Diagnostic{
						Pos:     d.pos,
						Rule:    "lint-allow",
						Message: "unused suppression for " + d.rule + ": nothing on this or the next line triggers it",
					})
				}
			}
		}
	}
	return ds
}
