package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully loaded, type-checked module: every package under the
// root (testdata and hidden directories excluded), parsed with comments and
// checked against its real dependencies.
type Module struct {
	Fset *token.FileSet
	// Path is the module path from go.mod ("lifting").
	Path string
	// Dir is the module root directory.
	Dir string
	// Pkgs are the module's packages, sorted by import path.
	Pkgs []*Package
}

// LoadModule loads and type-checks every package of the module rooted at
// dir. Intra-module imports resolve against the loaded packages themselves
// (each package is type-checked exactly once); standard-library imports are
// type-checked from GOROOT source. Test files are parsed for the syntactic
// analyzers but excluded from type checking.
func LoadModule(dir string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(modPath, dir)
	pkgDirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}
	for _, d := range pkgDirs {
		rel, err := filepath.Rel(dir, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if err := l.parseDir(path, d); err != nil {
			return nil, err
		}
	}
	m := &Module{Fset: l.fset, Path: modPath, Dir: dir}
	for path := range l.pkgs {
		if err := l.check(path); err != nil {
			return nil, err
		}
	}
	for _, p := range l.pkgs {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// LoadPackage loads one package directory as a standalone module of one
// package (imports restricted to the standard library). The fixture tests
// load their testdata packages through this, so fixtures exercise the same
// parse/type-check pipeline as a real run.
func LoadPackage(dir, path string) (*Module, error) {
	l := newLoader(path, dir)
	if err := l.parseDir(path, dir); err != nil {
		return nil, err
	}
	if err := l.check(path); err != nil {
		return nil, err
	}
	return &Module{Fset: l.fset, Path: path, Dir: dir, Pkgs: []*Package{l.pkgs[path]}}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs walks the tree collecting directories that contain Go files,
// skipping hidden directories and testdata (fixture packages are loaded by
// their own tests, not as part of the module).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// loader parses and type-checks packages, serving intra-module imports from
// its own results and delegating standard-library imports to a source
// importer over GOROOT.
type loader struct {
	fset     *token.FileSet
	modPath  string
	modDir   string
	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

func newLoader(modPath, modDir string) *loader {
	// The source importer type-checks the standard library from GOROOT
	// source through go/build. With cgo enabled it would shell out to a C
	// toolchain for packages like net; the pure-Go fallbacks type-check
	// identically for analysis purposes, so force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		modPath:  modPath,
		modDir:   modDir,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}
}

// parseDir parses every Go file of one package directory, separating test
// files from the files that will be type-checked.
func (l *loader) parseDir(path, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil
	}
	l.pkgs[path] = pkg
	return nil
}

// Import implements types.Importer over the loader's package set.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if err := l.check(path); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// check type-checks one loaded package (idempotent; detects import cycles).
func (l *loader) check(path string) error {
	pkg := l.pkgs[path]
	if pkg == nil {
		return fmt.Errorf("lint: unknown package %q", path)
	}
	if pkg.Types != nil {
		return nil
	}
	if len(pkg.Files) == 0 {
		// A directory with only test files has no package to check.
		pkg.Types = types.NewPackage(path, "_testonly")
		pkg.Info = &types.Info{}
		return nil
	}
	if l.checking[path] {
		return fmt.Errorf("lint: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("lint: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
