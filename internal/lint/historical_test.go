package lint_test

import (
	"testing"

	"lifting/internal/lint"
)

// TestHistoricalPR4SnapshotShape verifies the suite catches the bug class
// PR 4 fixed by hand: a history snapshot accessor iterating its period map
// in hash order, which made seeded runs consume randomness in wandering
// order and diverge.
func TestHistoricalPR4SnapshotShape(t *testing.T) {
	checkFixture(t, "historical/pr4snapshot", []lint.Analyzer{
		lint.OrderedMapRange{Packages: lint.PackageSet{"fixture/historical/..."}},
	})
}

// TestHistoricalPR5WallclockShape verifies the suite catches the bug class
// PR 5 fixed by hand: wall-clock timings measured into result structs and
// leaked into tables and JSON, so identical seeded runs emitted different
// bytes. Both halves of the shape are caught — the field by
// no-time-in-results, the measurement by no-wallclock.
func TestHistoricalPR5WallclockShape(t *testing.T) {
	checkFixture(t, "historical/pr5wallclock", []lint.Analyzer{
		lint.NoWallclock{Packages: lint.PackageSet{"fixture/historical/..."}},
		lint.NoTimeInResults{Packages: lint.PackageSet{"fixture/historical/..."}},
	})
}
