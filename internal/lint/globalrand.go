package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NoGlobalRand forbids the package-level math/rand and math/rand/v2
// functions everywhere in the module, test files included.
//
// The global generators are process-wide shared state: their draw order
// depends on goroutine scheduling and on every other caller in the binary,
// so a seeded run that touches them is reproducible only by accident.
// Deterministic code draws from internal/rng streams (split per node and
// per purpose from the root seed); code that genuinely wants local
// randomness constructs its own generator — the rand.New*/NewSource
// constructors and methods on constructed generators stay legal.
type NoGlobalRand struct{}

func (NoGlobalRand) Name() string { return "no-global-rand" }
func (NoGlobalRand) Doc() string {
	return "forbid package-level math/rand functions everywhere; draw from internal/rng streams or a locally constructed generator"
}

// randTypeNames are exported type (not function) identifiers of math/rand
// and math/rand/v2: referencing a type is not a draw from the global source.
var randTypeNames = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true,
	"ChaCha8":  true,
}

func (a NoGlobalRand) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		a.checkFile(pass, f, pass.Pkg.Info)
	}
	// Test files are parsed but not type-checked; the rule is syntactic
	// enough to cover them anyway — global-rand draws in tests make failure
	// seeds unreproducible too.
	for _, f := range pass.Pkg.TestFiles {
		a.checkFile(pass, f, nil)
	}
}

func (a NoGlobalRand) checkFile(pass *Pass, f *ast.File, info *types.Info) {
	// Local names under which math/rand{,/v2} is imported in this file.
	randNames := make(map[string]bool)
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || (path != "math/rand" && path != "math/rand/v2") {
			continue
		}
		name := "rand"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		randNames[name] = true
	}
	if len(randNames) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok || !randNames[x.Name] {
			return true
		}
		if info != nil {
			// With type information, require that the qualifier really is
			// the imported package (not a shadowing local).
			if _, isPkg := info.Uses[x].(*types.PkgName); !isPkg {
				return true
			}
		}
		name := sel.Sel.Name
		if randTypeNames[name] || strings.HasPrefix(name, "New") {
			return true
		}
		pass.Report(sel.Pos(), "%s.%s draws from the process-global math/rand source; use an internal/rng stream (or a locally constructed generator)", x.Name, name)
		return true
	})
}
