package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// NoFloatInDocument forbids float-typed fields on any type marshalled into
// the experiments document, and float formatting inside those types'
// methods.
//
// Floating-point accumulation is order-sensitive: fan the same reduction
// across workers or shards in a different order and the low bits move, and
// with them the formatted JSON. PR 6 and PR 7 chose integer parts-per-million
// and integer nanoseconds for every derived ratio in the snapshot path for
// exactly this reason. This rule pins that choice: a new float field on a
// document type is a build error, not a review comment. Deliberate floats —
// echoed input parameters, serially-reduced headline metrics — carry an
// annotation explaining why their value cannot depend on execution order.
type NoFloatInDocument struct {
	// Roots are the document root types; the rule covers every struct
	// reachable from them through marshalled fields.
	Roots []TypeRef
}

func (NoFloatInDocument) Name() string { return "no-float-in-document" }
func (NoFloatInDocument) Doc() string {
	return "forbid float fields and float formatting on types marshalled into the experiments document; integer ppm/ns only"
}

// floatVerb matches a fmt formatting verb that renders a float.
var floatVerb = regexp.MustCompile(`%[#+\- 0-9.*]*[eEfgG]`)

// fmtFormatArg maps fmt's formatting functions to the index of their format
// string argument.
var fmtFormatArg = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

func (a NoFloatInDocument) RunModule(pass *Pass) {
	isFloat := func(t types.Type) bool {
		u := types.Unalias(t).Underlying()
		if b, ok := u.(*types.Basic); ok {
			switch b.Kind() {
			case types.Float32, types.Float64, types.Complex64, types.Complex128:
				return true
			}
		}
		return false
	}
	closure := walkDocument(pass, a.Roots, func(owner *types.Named, field *types.Var, tag string) {
		if typeHas(field.Type(), isFloat) {
			pass.Report(field.Pos(), "float-typed field %s.%s reaches the experiments document; floats are order-sensitive under parallel reduction — store integer ppm/ns, or annotate why this value cannot depend on execution order",
				owner.Obj().Name(), field.Name())
		}
	})

	// Float formatting inside methods of document types: a String or render
	// method that prints %f smuggles float sensitivity into the document's
	// string cells even when every field is integral.
	for _, pkg := range pass.Module {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil {
					continue
				}
				rt := types.Unalias(recv.Type())
				if p, ok := rt.(*types.Pointer); ok {
					rt = types.Unalias(p.Elem())
				}
				named, ok := rt.(*types.Named)
				if !ok || !closure[named.Obj()] {
					continue
				}
				a.checkMethodBody(pass, pkg, named, fd)
			}
		}
	}
}

// checkMethodBody flags float-formatting calls inside one document-type
// method: fmt verbs %e/%f/%g with a constant format string, and
// strconv.FormatFloat/AppendFloat.
func (a NoFloatInDocument) checkMethodBody(pass *Pass, pkg *Package, recv *types.Named, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "fmt":
			argIdx, ok := fmtFormatArg[fn.Name()]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			tv, ok := pkg.Info.Types[call.Args[argIdx]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			if floatVerb.MatchString(constant.StringVal(tv.Value)) {
				pass.Report(call.Pos(), "float formatting in method %s.%s of a document type; format integers (ppm/ns) instead",
					recv.Obj().Name(), fd.Name.Name)
			}
		case "strconv":
			if fn.Name() == "FormatFloat" || fn.Name() == "AppendFloat" {
				pass.Report(call.Pos(), "strconv.%s in method %s.%s of a document type; format integers (ppm/ns) instead",
					fn.Name(), recv.Obj().Name(), fd.Name.Name)
			}
		}
		return true
	})
}
