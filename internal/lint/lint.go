// Package lint is a stdlib-only static-analysis framework that mechanically
// enforces the repository's byte-identical contract: seeded runs must emit
// the same lifting.experiments/v1 document across shard counts, worker
// counts and OS processes. The contract has been broken three times by the
// same bug classes — unsorted map-order snapshots (fixed by hand in PR 4),
// wall-clock fields leaking into result tables (PR 5), float and rng-order
// hazards in the snapshot path (PR 6–7) — and conventions that live only in
// reviewers' heads do not survive growth. Each analyzer in this package
// turns one of those conventions into a build-time check; cmd/lifting-lint
// runs the suite over the module and exits nonzero on any finding.
//
// The framework is built on go/ast, go/parser, go/types and go/token only —
// no dependency on golang.org/x/tools — so go.mod stays dependency-free.
//
// Findings are suppressed in place with an annotation comment:
//
//	//lint:allow <rule> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory: an allow without one is itself a finding, as is an allow that
// matches nothing (stale suppressions rot) or names an unknown rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule violation at a position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("lifting/internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// TestFiles are the parsed *_test.go sources (both in-package and
	// external test packages), with comments. They are parsed but not
	// type-checked: only syntactic analyzers see them.
	TestFiles []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object maps for Files.
	Info *types.Info
}

// Pass is one analyzer's view of one package. Report collects findings;
// suppression and sorting happen centrally in the runner.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Module lists every package of the module, for analyzers that reason
	// across package boundaries (document-closure rules).
	Module []*Package

	rule    string
	collect func(Diagnostic)
}

// Report records a finding at pos for the pass's rule.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.collect(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint rule. Concrete analyzers additionally implement
// PackageAnalyzer (invoked once per package) or ModuleAnalyzer (invoked once
// for the whole module — the document-closure rules cross package
// boundaries).
type Analyzer interface {
	// Name is the rule identifier used in diagnostics and allow comments.
	Name() string
	// Doc is a one-line description for `lifting-lint -rules`.
	Doc() string
}

// PackageAnalyzer is an Analyzer run once per loaded package.
type PackageAnalyzer interface {
	Analyzer
	Run(pass *Pass)
}

// PackageSet selects packages by import-path pattern. A pattern is either an
// exact import path ("lifting/internal/sim") or a prefix wildcard
// ("lifting/cmd/..." — matching the prefix itself and everything below it),
// mirroring the go tool's pattern syntax.
type PackageSet []string

// Match reports whether the import path is selected by the set.
func (s PackageSet) Match(path string) bool {
	for _, pat := range s {
		if pat == path {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		}
	}
	return false
}

// sortDiagnostics orders findings by file, line, column, rule, message.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
