package lint

import (
	"go/types"
	"reflect"
	"strings"
)

// TypeRef names a type by package path and type name, for configuring the
// document-closure rules ("lifting/internal/experiment".Document).
type TypeRef struct {
	Pkg  string
	Name string
}

// fieldVisitor is called for every marshalled field the document closure
// reaches. owner is the struct type declaring the field.
type fieldVisitor func(owner *types.Named, field *types.Var, tag string)

// walkDocument walks the marshalled-field graph from the root types: every
// exported field not tagged json:"-", recursing through pointers, slices,
// arrays, maps and module-local named struct types. It returns the set of
// module-local named types visited (keyed by their *types.TypeName), so
// callers can additionally inspect those types' methods.
//
// The walk deliberately stops at types defined outside the module: their
// fields are not ours to annotate, and the rules flag the offending std
// types (time.Time, float64) at the field that embeds them.
func walkDocument(pass *Pass, roots []TypeRef, visit fieldVisitor) map[*types.TypeName]bool {
	inModule := make(map[string]*Package, len(pass.Module))
	for _, p := range pass.Module {
		inModule[p.Path] = p
	}
	visited := make(map[*types.TypeName]bool)
	var queue []*types.Named

	enqueue := func(n *types.Named) {
		if obj := n.Obj(); obj.Pkg() != nil && inModule[obj.Pkg().Path()] != nil && !visited[obj] {
			visited[obj] = true
			queue = append(queue, n)
		}
	}

	for _, ref := range roots {
		pkg := inModule[ref.Pkg]
		if pkg == nil || pkg.Types == nil {
			pass.Report(0, "document root %s.%s: package not loaded", ref.Pkg, ref.Name)
			continue
		}
		obj, ok := pkg.Types.Scope().Lookup(ref.Name).(*types.TypeName)
		if !ok {
			pass.Report(0, "document root %s.%s: no such type", ref.Pkg, ref.Name)
			continue
		}
		if named, ok := obj.Type().(*types.Named); ok {
			enqueue(named)
		}
	}

	var descend func(t types.Type)
	var walkStruct func(owner *types.Named, st *types.Struct)
	descend = func(t types.Type) {
		switch t := types.Unalias(t).(type) {
		case *types.Pointer:
			descend(t.Elem())
		case *types.Slice:
			descend(t.Elem())
		case *types.Array:
			descend(t.Elem())
		case *types.Map:
			descend(t.Key())
			descend(t.Elem())
		case *types.Named:
			enqueue(t)
		case *types.Struct:
			// Anonymous struct literal: its fields marshal in place, but it
			// has no defining TypeName to queue — walk it against the
			// enclosing owner at visit time instead (handled by walkStruct).
		}
	}
	walkStruct = func(owner *types.Named, st *types.Struct) {
		for i := 0; i < st.NumFields(); i++ {
			field, tag := st.Field(i), st.Tag(i)
			if jsonSkipped(field, tag) {
				continue
			}
			visit(owner, field, tag)
			if anon, ok := types.Unalias(field.Type()).(*types.Struct); ok {
				walkStruct(owner, anon)
				continue
			}
			descend(field.Type())
		}
	}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if st, ok := named.Underlying().(*types.Struct); ok {
			walkStruct(named, st)
		}
	}
	return visited
}

// jsonSkipped reports whether encoding/json would omit the field entirely:
// unexported, or explicitly tagged json:"-".
func jsonSkipped(field *types.Var, tag string) bool {
	if !field.Exported() && !field.Embedded() {
		return true
	}
	jt := reflect.StructTag(tag).Get("json")
	return jt == "-"
}

// typeHas walks a field's type structurally — through pointers, slices,
// arrays and map key/elem — applying pred to every type encountered. It
// stops at named types without entering their declarations (the closure
// walk owns recursion into module structs).
func typeHas(t types.Type, pred func(types.Type) bool) bool {
	if pred(t) {
		return true
	}
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		return typeHas(t.Elem(), pred)
	case *types.Slice:
		return typeHas(t.Elem(), pred)
	case *types.Array:
		return typeHas(t.Elem(), pred)
	case *types.Map:
		return typeHas(t.Key(), pred) || typeHas(t.Elem(), pred)
	}
	return false
}

// isNamedAs reports whether t is the named type pkgPath.name.
func isNamedAs(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// hasSuffixAny reports whether s ends in one of the suffixes.
func hasSuffixAny(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
