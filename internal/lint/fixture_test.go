package lint_test

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"lifting/internal/lint"
)

// loadFixture loads one testdata package through the same pipeline a real
// run uses.
func loadFixture(t *testing.T, name string) *lint.Module {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(name))
	m, err := lint.LoadPackage(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return m
}

// wantRe extracts the expectation strings of a `// want "re1" "re2"`
// comment (block-comment form included, for expectations that target a
// //lint:allow directive's own line).
var wantRe = regexp.MustCompile(`\bwant((?: "(?:[^"\\]|\\.)*")+)`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// expectations collects every `// want "..."` comment of the fixture. The
// expectation applies to findings on the comment's own line; the quoted
// pattern is a regexp matched against "rule: message".
func expectations(t *testing.T, m *lint.Module) []*expectation {
	t.Helper()
	var exps []*expectation
	scan := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				match := wantRe.FindStringSubmatch(c.Text)
				if match == nil {
					continue
				}
				pos := m.Fset.Position(c.Pos())
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(match[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			scan(f)
		}
		for _, f := range pkg.TestFiles {
			scan(f)
		}
	}
	return exps
}

// checkFixture runs the analyzers over the fixture and diffs findings
// against the fixture's want comments: every finding must be wanted on its
// line, every want must be hit.
func checkFixture(t *testing.T, name string, analyzers []lint.Analyzer) {
	t.Helper()
	m := loadFixture(t, name)
	exps := expectations(t, m)
	for _, d := range lint.Run(m, analyzers) {
		matched := false
		for _, e := range exps {
			if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Rule+": "+d.Message) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range exps {
		if !e.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func TestNoWallclockFixture(t *testing.T) {
	checkFixture(t, "nowallclock", []lint.Analyzer{
		lint.NoWallclock{Packages: lint.PackageSet{"fixture/nowallclock"}},
	})
}

// TestNoWallclockAllowlisted pins the allowlist mechanism: the same
// wall-clock-reading package produces findings when selected and none when
// left off the deterministic set.
func TestNoWallclockAllowlisted(t *testing.T) {
	m := loadFixture(t, "nowallclock_allowlisted")
	if ds := lint.Run(m, []lint.Analyzer{
		lint.NoWallclock{Packages: lint.PackageSet{"fixture/nowallclock_allowlisted"}},
	}); len(ds) != 2 {
		t.Errorf("selected package: got %d findings, want 2: %v", len(ds), ds)
	}
	if ds := lint.Run(m, []lint.Analyzer{
		lint.NoWallclock{Packages: lint.PackageSet{"fixture/somewhere/else", "fixture/live/..."}},
	}); len(ds) != 0 {
		t.Errorf("allowlisted package: got findings %v, want none", ds)
	}
}

func TestNoGlobalRandFixture(t *testing.T) {
	checkFixture(t, "noglobalrand", []lint.Analyzer{lint.NoGlobalRand{}})
}

func TestOrderedMapRangeFixture(t *testing.T) {
	checkFixture(t, "maprange", []lint.Analyzer{
		lint.OrderedMapRange{Packages: lint.PackageSet{"fixture/..."}},
	})
}

func TestNoFloatInDocumentFixture(t *testing.T) {
	checkFixture(t, "docfloat", []lint.Analyzer{
		lint.NoFloatInDocument{Roots: []lint.TypeRef{{Pkg: "fixture/docfloat", Name: "Document"}}},
	})
}

func TestNoTimeInResultsFixture(t *testing.T) {
	checkFixture(t, "doctime", []lint.Analyzer{
		lint.NoTimeInResults{
			Roots:    []lint.TypeRef{{Pkg: "fixture/doctime", Name: "Document"}},
			Packages: lint.PackageSet{"fixture/doctime"},
		},
	})
}

// TestSuppressionHygiene pins the allow-comment contract: malformed
// directives, unknown rules and stale suppressions are findings themselves.
func TestSuppressionHygiene(t *testing.T) {
	checkFixture(t, "suppress", []lint.Analyzer{
		lint.NoWallclock{Packages: lint.PackageSet{"fixture/suppress"}},
	})
}

// TestPackageSetMatch pins the pattern syntax the configs rely on.
func TestPackageSetMatch(t *testing.T) {
	s := lint.PackageSet{"lifting/internal/sim", "lifting/cmd/..."}
	for path, want := range map[string]bool{
		"lifting/internal/sim":     true,
		"lifting/internal/simnet":  false,
		"lifting/cmd":              true,
		"lifting/cmd/lifting-sim":  true,
		"lifting/cmd/a/b":          true,
		"lifting/internal/gossip":  false,
		"othermodule/internal/sim": false,
	} {
		if got := s.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}
