package lint

import (
	"go/ast"
	"go/types"
)

// OrderedMapRange flags `for range` over maps in packages whose output can
// reach an emitted artifact — snapshots, tables, the JSON document — or
// whose iteration order can reorder randomness draws.
//
// This is the PR 4 bug class: history.Log snapshots iterated maps in hash
// order, which made forgery rewrites and audit-poll sampling consume rng in
// a wandering order, and seeded runs diverged. Sorting *after* collecting is
// fine; the sorted-keys idiom ranges over a slice and is never flagged. A
// loop whose order provably cannot matter (a commutative reduction, a
// collect-then-sort) is annotated in place:
//
//	//lint:allow ordered-map-range <why order cannot be observed>
type OrderedMapRange struct {
	// Packages are the packages the rule applies to.
	Packages PackageSet
}

func (OrderedMapRange) Name() string { return "ordered-map-range" }
func (OrderedMapRange) Doc() string {
	return "flag map iteration in snapshot/table/JSON-emitting packages unless sorted or annotated order-insensitive"
}

func (a OrderedMapRange) Run(pass *Pass) {
	if pass.Pkg.Info == nil || !a.Packages.Match(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Report(rs.For, "range over %s iterates in nondeterministic order; iterate sorted keys, or annotate the loop order-insensitive with //lint:allow",
				types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
			return true
		})
	}
}
