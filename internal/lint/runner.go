package lint

// ModuleAnalyzer is implemented by analyzers that reason across package
// boundaries (the document-closure rules: a root type in one package can
// reach fields declared in another). RunModule is invoked exactly once, with
// a pass whose Pkg is nil and whose Module holds every loaded package.
type ModuleAnalyzer interface {
	Analyzer
	RunModule(pass *Pass)
}

// Run executes the analyzers over the module and returns the surviving
// findings, sorted: raw findings minus //lint:allow-suppressed ones, plus
// hygiene findings about the suppressions themselves. An empty result is a
// clean tree.
func Run(m *Module, analyzers []Analyzer) []Diagnostic {
	ix := &allowIndex{}
	known := map[string]bool{"lint-allow": true}
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ix.scanAllows(m.Fset, f)
		}
		for _, f := range pkg.TestFiles {
			ix.scanAllows(m.Fset, f)
		}
	}

	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }
	for _, a := range analyzers {
		switch a := a.(type) {
		case ModuleAnalyzer:
			a.RunModule(&Pass{Fset: m.Fset, Module: m.Pkgs, rule: a.Name(), collect: collect})
		case PackageAnalyzer:
			for _, pkg := range m.Pkgs {
				a.Run(&Pass{Fset: m.Fset, Pkg: pkg, Module: m.Pkgs, rule: a.Name(), collect: collect})
			}
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if !ix.suppressed(d.Pos, d.Rule) {
			out = append(out, d)
		}
	}
	out = append(out, ix.hygiene(known)...)
	sortDiagnostics(out)
	return out
}
