package lint

import (
	"go/ast"
	"go/types"
)

// NoWallclock forbids reading the wall clock in deterministic packages.
//
// The simulation's byte-identical contract means every value that can reach
// the experiments document must derive from sim time (the runtime seam's
// Context.Now) or from the seeded rng — never from the host's clock. PR 5
// spent a redesign scrubbing wall-clock timings out of the Result tables;
// this rule keeps them from creeping back. Packages where wall clock is the
// point (the live runtime, the UDP transport, the ops HTTP servers, the CLI
// drivers) are simply not listed in Packages.
type NoWallclock struct {
	// Packages are the deterministic packages the rule applies to.
	Packages PackageSet
}

func (NoWallclock) Name() string { return "no-wallclock" }
func (NoWallclock) Doc() string {
	return "forbid time.Now/time.Since and friends in deterministic packages; derive time from the runtime seam"
}

// wallclockFuncs are the time-package functions that read or wait on the
// host clock. Constructors like time.Date and pure conversions (ParseDuration,
// Unix) are deterministic and stay legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func (a NoWallclock) Run(pass *Pass) {
	if pass.Pkg.Info == nil || !a.Packages.Match(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
				return true
			}
			pass.Report(sel.Pos(), "time.%s reads the wall clock in a deterministic package; use the runtime seam's sim time (Context.Now) or move the measurement to a driver", fn.Name())
			return true
		})
	}
}
