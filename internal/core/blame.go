package core

// Blame algebra: the values of Table 1 of the paper, as pure functions. The
// values of different verifications are designed to be directly comparable
// ("proportional to the number of invalid pushes") so they can be summed
// into one score.

// PartialServeBlame returns the blame emitted by a receiver against a server
// that delivered served out of requested chunks: f·(|R|−|S|)/|R|. If nothing
// was served this equals f — the same blame as not proposing at all.
func PartialServeBlame(f, requested, served int) float64 {
	if requested <= 0 || served >= requested {
		return 0
	}
	if served < 0 {
		served = 0
	}
	return float64(f) * float64(requested-served) / float64(requested)
}

// FanoutBlame returns the blame emitted by each verifier against a node that
// acknowledged proposing to reported < f partners: f − f̂.
func FanoutBlame(f, reported int) float64 {
	if reported >= f {
		return 0
	}
	if reported < 0 {
		reported = 0
	}
	return float64(f - reported)
}

// NoAckBlame returns the blame for a missing or incomplete acknowledgement:
// f, the same as an entirely invalid propose phase.
func NoAckBlame(f int) float64 { return float64(f) }

// InvalidPayloadBlame returns the blame for serving a chunk whose payload is
// missing or fails hash verification: f, the same as not serving at all —
// garbage bytes disseminate nothing.
func InvalidPayloadBlame(f int) float64 { return float64(f) }

// ContradictionBlame returns the blame for contradictory (or missing)
// confirm testimonies: 1 per invalid proposal, per Table 1.
func ContradictionBlame(contradictions int) float64 {
	if contradictions < 0 {
		return 0
	}
	return float64(contradictions)
}

// UnconfirmedHistoryBlame returns the a-posteriori cross-checking blame: 1
// per history proposal not acknowledged by its alleged receiver (§5.3).
func UnconfirmedHistoryBlame(unconfirmed int) float64 {
	if unconfirmed < 0 {
		return 0
	}
	return float64(unconfirmed)
}
